#!/usr/bin/env python3
"""Gather BENCH_*.json snapshots into one BENCH_summary.json.

Every bench writes its headline series as an obs registry snapshot
({"metrics": [{name, type, labels, value}, ...]}) next to where it was
run. This script collects every BENCH_*.json under a directory into a
single summary keyed by bench name, so CI can archive one artifact and
a regression diff is a single-file comparison:

    python3 scripts/collect_bench.py [--dir DIR] [--out FILE] [--rev REV]

The summary also carries a cross-PR "trajectory": one point per
revision, holding every bench gauge folded flat. Each run loads the
trajectory already in the --out file (the committed summary), carries
the prior points forward, and appends (or, rerun at the same revision,
replaces) the current point — so the committed BENCH_summary.json
accumulates the performance history of the repo, one point per PR.

Exits nonzero when a snapshot is unreadable (a bench that crashed
mid-write should fail the pipeline, not vanish from the summary), and
when benches were found but nothing could be folded into the
trajectory point — an empty trajectory after a successful bench run is
the bug this guard exists for, not a valid outcome.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def collect(directory: Path) -> tuple[dict, list[str]]:
    benches = {}
    errors = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        if path.name.endswith(".series.json"):
            continue  # time-series ring dumps are folded in below
        name = path.stem[len("BENCH_"):]
        try:
            snapshot = json.loads(path.read_text())
            metrics = snapshot["metrics"]
        except (OSError, json.JSONDecodeError, KeyError) as err:
            errors.append(f"{path}: {err}")
            continue
        benches[name] = {"path": str(path), "metrics": metrics}
    # A bench that ran with the telemetry plane live also dumps its
    # sampler ring (obs::TimeSeries::ToJson) as BENCH_<name>.series.json;
    # fold it under the matching bench so the summary carries the full
    # per-run time series, not just the endline gauges.
    for path in sorted(directory.glob("BENCH_*.series.json")):
        name = path.name[len("BENCH_"):-len(".series.json")]
        try:
            dump = json.loads(path.read_text())
            series = dump["series"]
        except (OSError, json.JSONDecodeError, KeyError) as err:
            errors.append(f"{path}: {err}")
            continue
        entry = benches.setdefault(name, {"path": str(path), "metrics": []})
        entry["series"] = series
        entry["series_path"] = str(path)
    return benches, errors


def git_rev(directory: Path) -> str:
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              cwd=directory, capture_output=True, text=True,
                              timeout=10)
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def metric_key(metric: dict) -> str:
    labels = metric.get("labels") or {}
    flat = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{metric['name']}{{{flat}}}" if flat else metric["name"]


def trajectory_point(rev: str, benches: dict) -> tuple[dict, int]:
    """Fold every bench gauge into one flat per-revision point."""
    point = {"rev": rev, "benches": {}}
    folded = 0
    for name, bench in sorted(benches.items()):
        values = {}
        for metric in bench["metrics"]:
            try:
                values[metric_key(metric)] = metric["value"]
            except KeyError:
                continue  # malformed metric: counted via folded == 0
        point["benches"][name] = values
        folded += len(values)
    return point, folded


def merge_trajectory(prior_summary, point: dict) -> list:
    """Prior points carried forward; the current rev's point replaced."""
    trajectory = []
    if isinstance(prior_summary, dict):
        prior = prior_summary.get("trajectory")
        if isinstance(prior, list):
            trajectory = [p for p in prior
                          if isinstance(p, dict) and p.get("rev") != point["rev"]]
    trajectory.append(point)
    return trajectory


def main() -> int:
    parser = argparse.ArgumentParser(
        description="gather BENCH_*.json into BENCH_summary.json")
    parser.add_argument("--dir", default=".",
                        help="directory to scan (default: cwd)")
    parser.add_argument("--out", default=None,
                        help="output path (default: <dir>/BENCH_summary.json)")
    parser.add_argument("--rev", default=None,
                        help="trajectory revision key (default: git HEAD)")
    args = parser.parse_args()

    directory = Path(args.dir)
    out = Path(args.out) if args.out else directory / "BENCH_summary.json"
    benches, errors = collect(directory)
    for error in errors:
        print(f"collect_bench: UNREADABLE {error}", file=sys.stderr)
    if not benches and not errors:
        print(f"collect_bench: no BENCH_*.json under {directory}",
              file=sys.stderr)
        return 1

    prior_summary = None
    if out.exists():
        try:
            prior_summary = json.loads(out.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"collect_bench: prior summary unreadable, trajectory "
                  f"restarts: {out}: {err}", file=sys.stderr)

    rev = args.rev if args.rev else git_rev(directory)
    point, folded = trajectory_point(rev, benches)
    if benches and folded == 0:
        print(f"collect_bench: found {len(benches)} bench(es) but folded "
              f"NONE into the trajectory — malformed snapshots?",
              file=sys.stderr)
        return 1
    trajectory = merge_trajectory(prior_summary, point)

    summary = {
        "generated_by": "scripts/collect_bench.py",
        "benches": benches,
        "trajectory": trajectory,
    }
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    total = sum(len(b["metrics"]) for b in benches.values())
    print(f"collect_bench: {len(benches)} bench(es), {total} metric(s), "
          f"trajectory {len(trajectory)} point(s) (rev {rev}) -> {out}")
    for name, bench in sorted(benches.items()):
        tail = f", {len(bench['series'])} series" if "series" in bench else ""
        print(f"  {name:24s} {len(bench['metrics']):4d} metrics{tail} "
              f"({bench['path']})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
