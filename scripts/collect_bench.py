#!/usr/bin/env python3
"""Gather BENCH_*.json snapshots into one BENCH_summary.json.

Every bench writes its headline series as an obs registry snapshot
({"metrics": [{name, type, labels, value}, ...]}) next to where it was
run. This script collects every BENCH_*.json under a directory into a
single summary keyed by bench name, so CI can archive one artifact and
a regression diff is a single-file comparison:

    python3 scripts/collect_bench.py [--dir DIR] [--out FILE]

Exits nonzero when a snapshot is unreadable (a bench that crashed
mid-write should fail the pipeline, not vanish from the summary).
"""

import argparse
import json
import sys
from pathlib import Path


def collect(directory: Path) -> tuple[dict, list[str]]:
    benches = {}
    errors = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        if path.name.endswith(".series.json"):
            continue  # time-series ring dumps are folded in below
        name = path.stem[len("BENCH_"):]
        try:
            snapshot = json.loads(path.read_text())
            metrics = snapshot["metrics"]
        except (OSError, json.JSONDecodeError, KeyError) as err:
            errors.append(f"{path}: {err}")
            continue
        benches[name] = {"path": str(path), "metrics": metrics}
    # A bench that ran with the telemetry plane live also dumps its
    # sampler ring (obs::TimeSeries::ToJson) as BENCH_<name>.series.json;
    # fold it under the matching bench so the summary carries the full
    # per-run time series, not just the endline gauges.
    for path in sorted(directory.glob("BENCH_*.series.json")):
        name = path.name[len("BENCH_"):-len(".series.json")]
        try:
            dump = json.loads(path.read_text())
            series = dump["series"]
        except (OSError, json.JSONDecodeError, KeyError) as err:
            errors.append(f"{path}: {err}")
            continue
        entry = benches.setdefault(name, {"path": str(path), "metrics": []})
        entry["series"] = series
        entry["series_path"] = str(path)
    return benches, errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="gather BENCH_*.json into BENCH_summary.json")
    parser.add_argument("--dir", default=".",
                        help="directory to scan (default: cwd)")
    parser.add_argument("--out", default=None,
                        help="output path (default: <dir>/BENCH_summary.json)")
    args = parser.parse_args()

    directory = Path(args.dir)
    out = Path(args.out) if args.out else directory / "BENCH_summary.json"
    benches, errors = collect(directory)
    for error in errors:
        print(f"collect_bench: UNREADABLE {error}", file=sys.stderr)
    if not benches and not errors:
        print(f"collect_bench: no BENCH_*.json under {directory}",
              file=sys.stderr)
        return 1

    summary = {
        "generated_by": "scripts/collect_bench.py",
        "benches": benches,
    }
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    total = sum(len(b["metrics"]) for b in benches.values())
    print(f"collect_bench: {len(benches)} bench(es), {total} metric(s) "
          f"-> {out}")
    for name, bench in sorted(benches.items()):
        tail = f", {len(bench['series'])} series" if "series" in bench else ""
        print(f"  {name:24s} {len(bench['metrics']):4d} metrics{tail} "
              f"({bench['path']})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
