#!/usr/bin/env python3
"""Smoke test for scripts/collect_bench.py against a fixture directory.

Covers the trajectory regression: a run over present BENCH_*.json files
must produce a NON-empty trajectory, carry prior points forward, replace
the current revision's point on rerun, and exit nonzero both on an empty
directory and on snapshots that fold no metrics.

    python3 scripts/collect_bench_test.py
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent / "collect_bench.py"


def run(*argv):
    return subprocess.run([sys.executable, str(SCRIPT), *argv],
                          capture_output=True, text=True)


def write_snapshot(path: Path, name: str, value: float):
    path.write_text(json.dumps({"metrics": [
        {"name": name, "type": "gauge", "labels": {}, "value": value},
        {"name": name + "_labeled", "type": "gauge",
         "labels": {"offered": "512"}, "value": value * 2},
    ]}))


def main() -> int:
    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)
            print(f"  FAIL: {what}")
        else:
            print(f"  ok: {what}")

    with tempfile.TemporaryDirectory() as tmp:
        fixture = Path(tmp)
        write_snapshot(fixture / "BENCH_alpha.json", "bench_alpha_rate", 3.5)
        write_snapshot(fixture / "BENCH_beta.json", "bench_beta_p99", 12.0)
        # A committed summary from an earlier revision: its trajectory
        # point must survive the new run.
        (fixture / "BENCH_summary.json").write_text(json.dumps({
            "generated_by": "scripts/collect_bench.py",
            "benches": {},
            "trajectory": [
                {"rev": "old1234", "benches": {"alpha": {"x": 1.0}}}],
        }))

        proc = run("--dir", str(fixture), "--rev", "new5678")
        check(proc.returncode == 0, f"collect exits 0 (stderr: {proc.stderr!r})")
        summary = json.loads((fixture / "BENCH_summary.json").read_text())
        check(set(summary["benches"]) == {"alpha", "beta"},
              "both benches folded")
        trajectory = summary.get("trajectory", [])
        check(len(trajectory) == 2, "prior point carried + new point appended")
        revs = [p["rev"] for p in trajectory]
        check(revs == ["old1234", "new5678"], f"trajectory revs {revs}")
        new_point = trajectory[-1]
        check(new_point["benches"]["alpha"]["bench_alpha_rate"] == 3.5,
              "unlabeled gauge folded into the point")
        check("bench_beta_p99_labeled{offered=512}"
              in new_point["benches"]["beta"],
              "labeled gauge folded with its labels in the key")

        # Rerun at the same revision: the point is replaced, not
        # duplicated — the committed summary stays one point per PR.
        proc = run("--dir", str(fixture), "--rev", "new5678")
        check(proc.returncode == 0, "rerun exits 0")
        summary = json.loads((fixture / "BENCH_summary.json").read_text())
        check(len(summary["trajectory"]) == 2, "rerun replaces, no duplicate")

    with tempfile.TemporaryDirectory() as tmp:
        proc = run("--dir", tmp)
        check(proc.returncode != 0, "empty directory exits nonzero")

    with tempfile.TemporaryDirectory() as tmp:
        # Benches present but every metric malformed (no value): the
        # "found benches but folded none" guard must fire.
        (Path(tmp) / "BENCH_hollow.json").write_text(
            json.dumps({"metrics": [{"name": "orphan", "type": "gauge"}]}))
        proc = run("--dir", tmp, "--rev", "r1")
        check(proc.returncode != 0,
              "benches-found-but-none-folded exits nonzero")
        check("folded" in proc.stderr.lower(), "guard names the failure")

    if failures:
        print(f"collect_bench_test: {len(failures)} FAILURE(S)")
        return 1
    print("collect_bench_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
