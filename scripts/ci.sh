#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the test suite,
# and hold the observability subsystem to -Werror (it is new code with
# no legacy-warning grandfathering).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

echo "== configure =="
cmake -B "${BUILD_DIR}" -S . "${GENERATOR_ARGS[@]}" >/dev/null

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== src/obs under -Wall -Wextra -Werror =="
for src in src/obs/*.cc; do
  echo "   ${src}"
  c++ -std=c++20 -Isrc -Wall -Wextra -Wshadow -Werror -fsyntax-only "${src}"
done

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "CI OK"
