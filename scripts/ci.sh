#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the test suite,
# and hold the observability + fault subsystems to -Werror (new code
# with no legacy-warning grandfathering).
#
# Extra jobs (opt-in, because they rebuild the tree):
#   CI_SANITIZE=1  scripts/ci.sh   — ASan+UBSan build + full ctest, then
#                                    a TSan build of the flush-thread
#                                    suites (ctest -L threads)
#   CI_CHAOS=1     scripts/ci.sh   — chaos smoke: the fault-injection
#                                    suites under a fixed seed, twice,
#                                    to catch nondeterminism
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

echo "== configure =="
cmake -B "${BUILD_DIR}" -S . "${GENERATOR_ARGS[@]}" >/dev/null

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== src/obs + src/fault + src/dnsbl + src/rep + mfs fast path + sharded server under -Wall -Wextra -Werror =="
MFS_FAST_PATH=(src/mfs/record_io.cc src/mfs/group_commit.cc
               src/mfs/volume.cc src/mfs/store.cc)
SHARD_PATH=(src/mta/smtp_server.cc src/net/tcp.cc src/net/event_loop.cc
            src/net/reactor_epoll.cc src/net/reactor_uring.cc
            src/net/buffer_pool.cc src/net/smtp_client.cc
            src/net/udp.cc src/net/admin_http.cc src/smtp/server_session.cc
            src/smtp/dotstuff.cc)
for src in src/obs/*.cc src/fault/*.cc src/dnsbl/*.cc src/rep/*.cc src/loadgen/*.cc "${MFS_FAST_PATH[@]}" "${SHARD_PATH[@]}"; do
  echo "   ${src}"
  c++ -std=c++20 -Isrc -Wall -Wextra -Wshadow -Werror -fsyntax-only "${src}"
done

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== group-commit smoke bench (fsyncs/mail < 1 at concurrency 8) =="
"${BUILD_DIR}/bench/bench_mfs_group_commit" --smoke

echo "== shard-scaling smoke bench (2 shards >= 1.5x, skipped on 1 core) =="
"${BUILD_DIR}/bench/bench_shard_scaling" --smoke

echo "== dnsbl-overlap smoke bench (>= 80% of DNS RTT hidden, warm < 1 ms) =="
"${BUILD_DIR}/bench/bench_dnsbl_overlap" --smoke

echo "== reputation-storm smoke bench (>= 30% fewer worker forks, ham p99 flat, fail-open; skipped on 1 core) =="
"${BUILD_DIR}/bench/bench_reputation_storm" --smoke

echo "== obs-overhead smoke bench (telemetry plane < 3% CPU/session, skipped on 1 core) =="
"${BUILD_DIR}/bench/bench_obs_overhead" --smoke

echo "== load-storm smoke bench (no congestion collapse, ham p99 bounded; skipped on 1 core) =="
"${BUILD_DIR}/bench/bench_load_storm" --smoke

echo "== data-throughput smoke bench (zero-copy DATA path >= 1.15x the copy path) =="
"${BUILD_DIR}/bench/bench_data_throughput" --smoke

# io_uring smoke: the uring-side backend tests (strict-create, the
# parameterized loop suite, the epoll-equivalence golden dialog) SKIP
# themselves cleanly on kernels or sandboxes without a usable ring, so
# this gate is green either way — it fails only when a ring comes up
# and misbehaves.
echo "== io_uring backend smoke (SKIPs when the ring is unavailable) =="
"${BUILD_DIR}/tests/net_backend_test" --gtest_filter='*Uring*:*io_uring*'

# Admin-endpoint smoke: boot the example server with the telemetry
# plane on, hit /healthz and /metrics over real HTTP, and require the
# exporter to publish at least 12 metric families — a one-subsystem
# wiring regression (net loop, MFS store, DNSBL cache, event log...)
# drops several families at once and trips this.
echo "== admin endpoint smoke (/healthz ok, >= 12 families on /metrics) =="
SMTP_PORT=$(( 20000 + RANDOM % 20000 ))
ADMIN_PORT=$(( 20000 + RANDOM % 20000 ))
"${BUILD_DIR}/examples/live_smtp_server" "${SMTP_PORT}" hybrid mfs \
  --admin-port "${ADMIN_PORT}" --event-log /dev/null &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT
python3 - "${ADMIN_PORT}" <<'PY'
import sys, time, urllib.request
port = sys.argv[1]
def fetch(path):
    url = f"http://127.0.0.1:{port}{path}"
    return urllib.request.urlopen(url, timeout=2).read().decode()
deadline = time.time() + 10
while True:
    try:
        health = fetch("/healthz")
        break
    except OSError:
        if time.time() > deadline:
            sys.exit("admin smoke: /healthz never came up")
        time.sleep(0.1)
assert '"status"' in health, health
families = sum(1 for line in fetch("/metrics").splitlines()
               if line.startswith("# TYPE"))
print(f"   /healthz ok, {families} metric families on /metrics")
assert families >= 12, f"expected >= 12 metric families, got {families}"
PY
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true
trap - EXIT

echo "== collect BENCH_*.json -> BENCH_summary.json =="
python3 scripts/collect_bench.py

# Chaos smoke: run every fault-injection suite (injector unit tests,
# MFS crash recovery, DNSBL hardening, server chaos) twice under the
# same fixed seeds; any flake between the runs is nondeterminism in
# the injector or in a recovery path.
if [[ "${CI_CHAOS:-0}" == "1" ]]; then
  echo "== chaos smoke (ctest -R fault, fixed seeds, x2) =="
  for round in 1 2; do
    echo "   round ${round}"
    ctest --test-dir "${BUILD_DIR}" --output-on-failure -R '[Ff]ault' \
      -j "$(nproc)"
  done
fi

# Sanitizer job: a separate build tree so the default build stays warm.
# ASan+UBSan catches the bugs fault injection is designed to flush out
# (use-after-free on teardown paths, signed overflow in backoff math).
if [[ "${CI_SANITIZE:-0}" == "1" ]]; then
  SAN_DIR="${BUILD_DIR}-asan"
  echo "== sanitizer build (ASan+UBSan) =="
  cmake -B "${SAN_DIR}" -S . "${GENERATOR_ARGS[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build "${SAN_DIR}" -j "$(nproc)"
  echo "== sanitizer ctest =="
  ASAN_OPTIONS=detect_leaks=0 ctest --test-dir "${SAN_DIR}" \
    --output-on-failure -j "$(nproc)"

  # TSan is incompatible with ASan, so the thread-heavy suites get a
  # third tree; `-L threads` limits it to the tests that actually race
  # threads: group-commit flushes, the sharded SMTP master, the async
  # DNSBL pipeline (shared cache + singleflight), and the reputation
  # engine's sharded history + greylist stores.
  TSAN_DIR="${BUILD_DIR}-tsan"
  echo "== sanitizer build (TSan) =="
  cmake -B "${TSAN_DIR}" -S . "${GENERATOR_ARGS[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
  cmake --build "${TSAN_DIR}" -j "$(nproc)" --target mfs_commit_test \
    --target smtp_shard_test --target dnsbl_async_test \
    --target rep_test --target greylist_test --target loadgen_test \
    --target net_backend_test
  echo "== sanitizer ctest (-L threads) =="
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -L threads -j "$(nproc)"
fi

echo "CI OK"
