# Empty dependencies file for mfs_test.
# This may be replaced when dependencies are built.
