
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mfs_corruption_test.cc" "tests/CMakeFiles/mfs_test.dir/mfs_corruption_test.cc.o" "gcc" "tests/CMakeFiles/mfs_test.dir/mfs_corruption_test.cc.o.d"
  "/root/repo/tests/mfs_paper_api_test.cc" "tests/CMakeFiles/mfs_test.dir/mfs_paper_api_test.cc.o" "gcc" "tests/CMakeFiles/mfs_test.dir/mfs_paper_api_test.cc.o.d"
  "/root/repo/tests/mfs_record_io_test.cc" "tests/CMakeFiles/mfs_test.dir/mfs_record_io_test.cc.o" "gcc" "tests/CMakeFiles/mfs_test.dir/mfs_record_io_test.cc.o.d"
  "/root/repo/tests/mfs_sim_store_test.cc" "tests/CMakeFiles/mfs_test.dir/mfs_sim_store_test.cc.o" "gcc" "tests/CMakeFiles/mfs_test.dir/mfs_sim_store_test.cc.o.d"
  "/root/repo/tests/mfs_store_test.cc" "tests/CMakeFiles/mfs_test.dir/mfs_store_test.cc.o" "gcc" "tests/CMakeFiles/mfs_test.dir/mfs_store_test.cc.o.d"
  "/root/repo/tests/mfs_volume_test.cc" "tests/CMakeFiles/mfs_test.dir/mfs_volume_test.cc.o" "gcc" "tests/CMakeFiles/mfs_test.dir/mfs_volume_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_mfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_fskit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
