file(REMOVE_RECURSE
  "CMakeFiles/mfs_test.dir/mfs_corruption_test.cc.o"
  "CMakeFiles/mfs_test.dir/mfs_corruption_test.cc.o.d"
  "CMakeFiles/mfs_test.dir/mfs_paper_api_test.cc.o"
  "CMakeFiles/mfs_test.dir/mfs_paper_api_test.cc.o.d"
  "CMakeFiles/mfs_test.dir/mfs_record_io_test.cc.o"
  "CMakeFiles/mfs_test.dir/mfs_record_io_test.cc.o.d"
  "CMakeFiles/mfs_test.dir/mfs_sim_store_test.cc.o"
  "CMakeFiles/mfs_test.dir/mfs_sim_store_test.cc.o.d"
  "CMakeFiles/mfs_test.dir/mfs_store_test.cc.o"
  "CMakeFiles/mfs_test.dir/mfs_store_test.cc.o.d"
  "CMakeFiles/mfs_test.dir/mfs_volume_test.cc.o"
  "CMakeFiles/mfs_test.dir/mfs_volume_test.cc.o.d"
  "mfs_test"
  "mfs_test.pdb"
  "mfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
