# Empty dependencies file for mta_test.
# This may be replaced when dependencies are built.
