file(REMOVE_RECURSE
  "CMakeFiles/mta_test.dir/mta_sim_test.cc.o"
  "CMakeFiles/mta_test.dir/mta_sim_test.cc.o.d"
  "CMakeFiles/mta_test.dir/queue_manager_test.cc.o"
  "CMakeFiles/mta_test.dir/queue_manager_test.cc.o.d"
  "mta_test"
  "mta_test.pdb"
  "mta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
