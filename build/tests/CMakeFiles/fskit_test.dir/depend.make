# Empty dependencies file for fskit_test.
# This may be replaced when dependencies are built.
