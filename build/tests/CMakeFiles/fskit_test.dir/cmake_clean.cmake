file(REMOVE_RECURSE
  "CMakeFiles/fskit_test.dir/fskit_test.cc.o"
  "CMakeFiles/fskit_test.dir/fskit_test.cc.o.d"
  "fskit_test"
  "fskit_test.pdb"
  "fskit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fskit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
