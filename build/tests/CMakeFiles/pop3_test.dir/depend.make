# Empty dependencies file for pop3_test.
# This may be replaced when dependencies are built.
