file(REMOVE_RECURSE
  "CMakeFiles/pop3_test.dir/pop3_test.cc.o"
  "CMakeFiles/pop3_test.dir/pop3_test.cc.o.d"
  "pop3_test"
  "pop3_test.pdb"
  "pop3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
