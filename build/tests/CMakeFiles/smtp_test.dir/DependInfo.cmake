
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/smtp_address_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_address_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_address_test.cc.o.d"
  "/root/repo/tests/smtp_client_session_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_client_session_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_client_session_test.cc.o.d"
  "/root/repo/tests/smtp_command_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_command_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_command_test.cc.o.d"
  "/root/repo/tests/smtp_dotstuff_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_dotstuff_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_dotstuff_test.cc.o.d"
  "/root/repo/tests/smtp_fuzz_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_fuzz_test.cc.o.d"
  "/root/repo/tests/smtp_reply_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_reply_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_reply_test.cc.o.d"
  "/root/repo/tests/smtp_server_session_test.cc" "tests/CMakeFiles/smtp_test.dir/smtp_server_session_test.cc.o" "gcc" "tests/CMakeFiles/smtp_test.dir/smtp_server_session_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_smtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
