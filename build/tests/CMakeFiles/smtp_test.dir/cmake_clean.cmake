file(REMOVE_RECURSE
  "CMakeFiles/smtp_test.dir/smtp_address_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_address_test.cc.o.d"
  "CMakeFiles/smtp_test.dir/smtp_client_session_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_client_session_test.cc.o.d"
  "CMakeFiles/smtp_test.dir/smtp_command_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_command_test.cc.o.d"
  "CMakeFiles/smtp_test.dir/smtp_dotstuff_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_dotstuff_test.cc.o.d"
  "CMakeFiles/smtp_test.dir/smtp_fuzz_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_fuzz_test.cc.o.d"
  "CMakeFiles/smtp_test.dir/smtp_reply_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_reply_test.cc.o.d"
  "CMakeFiles/smtp_test.dir/smtp_server_session_test.cc.o"
  "CMakeFiles/smtp_test.dir/smtp_server_session_test.cc.o.d"
  "smtp_test"
  "smtp_test.pdb"
  "smtp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
