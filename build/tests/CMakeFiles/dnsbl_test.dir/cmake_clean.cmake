file(REMOVE_RECURSE
  "CMakeFiles/dnsbl_test.dir/dnsbl_test.cc.o"
  "CMakeFiles/dnsbl_test.dir/dnsbl_test.cc.o.d"
  "CMakeFiles/dnsbl_test.dir/dnsbl_udp_test.cc.o"
  "CMakeFiles/dnsbl_test.dir/dnsbl_udp_test.cc.o.d"
  "dnsbl_test"
  "dnsbl_test.pdb"
  "dnsbl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
