# Empty dependencies file for dnsbl_test.
# This may be replaced when dependencies are built.
