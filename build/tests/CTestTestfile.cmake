# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fskit_test[1]_include.cmake")
include("/root/repo/build/tests/smtp_test[1]_include.cmake")
include("/root/repo/build/tests/mfs_test[1]_include.cmake")
include("/root/repo/build/tests/dnsbl_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/mta_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/pop3_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
