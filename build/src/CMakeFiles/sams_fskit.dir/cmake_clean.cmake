file(REMOVE_RECURSE
  "CMakeFiles/sams_fskit.dir/fskit/fs_model.cc.o"
  "CMakeFiles/sams_fskit.dir/fskit/fs_model.cc.o.d"
  "libsams_fskit.a"
  "libsams_fskit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_fskit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
