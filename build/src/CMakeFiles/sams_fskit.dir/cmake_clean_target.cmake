file(REMOVE_RECURSE
  "libsams_fskit.a"
)
