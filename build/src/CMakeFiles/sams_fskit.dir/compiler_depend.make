# Empty compiler generated dependencies file for sams_fskit.
# This may be replaced when dependencies are built.
