
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_loop.cc" "src/CMakeFiles/sams_net.dir/net/event_loop.cc.o" "gcc" "src/CMakeFiles/sams_net.dir/net/event_loop.cc.o.d"
  "/root/repo/src/net/smtp_client.cc" "src/CMakeFiles/sams_net.dir/net/smtp_client.cc.o" "gcc" "src/CMakeFiles/sams_net.dir/net/smtp_client.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/sams_net.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/sams_net.dir/net/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_smtp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
