file(REMOVE_RECURSE
  "CMakeFiles/sams_net.dir/net/event_loop.cc.o"
  "CMakeFiles/sams_net.dir/net/event_loop.cc.o.d"
  "CMakeFiles/sams_net.dir/net/smtp_client.cc.o"
  "CMakeFiles/sams_net.dir/net/smtp_client.cc.o.d"
  "CMakeFiles/sams_net.dir/net/tcp.cc.o"
  "CMakeFiles/sams_net.dir/net/tcp.cc.o.d"
  "libsams_net.a"
  "libsams_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
