file(REMOVE_RECURSE
  "libsams_net.a"
)
