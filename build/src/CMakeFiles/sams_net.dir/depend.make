# Empty dependencies file for sams_net.
# This may be replaced when dependencies are built.
