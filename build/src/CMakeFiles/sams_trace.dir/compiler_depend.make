# Empty compiler generated dependencies file for sams_trace.
# This may be replaced when dependencies are built.
