file(REMOVE_RECURSE
  "CMakeFiles/sams_trace.dir/trace/ecn.cc.o"
  "CMakeFiles/sams_trace.dir/trace/ecn.cc.o.d"
  "CMakeFiles/sams_trace.dir/trace/sinkhole.cc.o"
  "CMakeFiles/sams_trace.dir/trace/sinkhole.cc.o.d"
  "CMakeFiles/sams_trace.dir/trace/survey.cc.o"
  "CMakeFiles/sams_trace.dir/trace/survey.cc.o.d"
  "CMakeFiles/sams_trace.dir/trace/synthetic.cc.o"
  "CMakeFiles/sams_trace.dir/trace/synthetic.cc.o.d"
  "CMakeFiles/sams_trace.dir/trace/trace_io.cc.o"
  "CMakeFiles/sams_trace.dir/trace/trace_io.cc.o.d"
  "CMakeFiles/sams_trace.dir/trace/univ.cc.o"
  "CMakeFiles/sams_trace.dir/trace/univ.cc.o.d"
  "CMakeFiles/sams_trace.dir/trace/workload.cc.o"
  "CMakeFiles/sams_trace.dir/trace/workload.cc.o.d"
  "libsams_trace.a"
  "libsams_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
