
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ecn.cc" "src/CMakeFiles/sams_trace.dir/trace/ecn.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/ecn.cc.o.d"
  "/root/repo/src/trace/sinkhole.cc" "src/CMakeFiles/sams_trace.dir/trace/sinkhole.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/sinkhole.cc.o.d"
  "/root/repo/src/trace/survey.cc" "src/CMakeFiles/sams_trace.dir/trace/survey.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/survey.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/sams_trace.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/sams_trace.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/univ.cc" "src/CMakeFiles/sams_trace.dir/trace/univ.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/univ.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/CMakeFiles/sams_trace.dir/trace/workload.cc.o" "gcc" "src/CMakeFiles/sams_trace.dir/trace/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
