file(REMOVE_RECURSE
  "libsams_trace.a"
)
