file(REMOVE_RECURSE
  "libsams_smtp.a"
)
