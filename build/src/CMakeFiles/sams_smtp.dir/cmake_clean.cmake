file(REMOVE_RECURSE
  "CMakeFiles/sams_smtp.dir/smtp/address.cc.o"
  "CMakeFiles/sams_smtp.dir/smtp/address.cc.o.d"
  "CMakeFiles/sams_smtp.dir/smtp/client_session.cc.o"
  "CMakeFiles/sams_smtp.dir/smtp/client_session.cc.o.d"
  "CMakeFiles/sams_smtp.dir/smtp/command.cc.o"
  "CMakeFiles/sams_smtp.dir/smtp/command.cc.o.d"
  "CMakeFiles/sams_smtp.dir/smtp/dotstuff.cc.o"
  "CMakeFiles/sams_smtp.dir/smtp/dotstuff.cc.o.d"
  "CMakeFiles/sams_smtp.dir/smtp/reply.cc.o"
  "CMakeFiles/sams_smtp.dir/smtp/reply.cc.o.d"
  "CMakeFiles/sams_smtp.dir/smtp/server_session.cc.o"
  "CMakeFiles/sams_smtp.dir/smtp/server_session.cc.o.d"
  "libsams_smtp.a"
  "libsams_smtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_smtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
