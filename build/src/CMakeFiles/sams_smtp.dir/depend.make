# Empty dependencies file for sams_smtp.
# This may be replaced when dependencies are built.
