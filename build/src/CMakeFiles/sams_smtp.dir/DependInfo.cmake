
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smtp/address.cc" "src/CMakeFiles/sams_smtp.dir/smtp/address.cc.o" "gcc" "src/CMakeFiles/sams_smtp.dir/smtp/address.cc.o.d"
  "/root/repo/src/smtp/client_session.cc" "src/CMakeFiles/sams_smtp.dir/smtp/client_session.cc.o" "gcc" "src/CMakeFiles/sams_smtp.dir/smtp/client_session.cc.o.d"
  "/root/repo/src/smtp/command.cc" "src/CMakeFiles/sams_smtp.dir/smtp/command.cc.o" "gcc" "src/CMakeFiles/sams_smtp.dir/smtp/command.cc.o.d"
  "/root/repo/src/smtp/dotstuff.cc" "src/CMakeFiles/sams_smtp.dir/smtp/dotstuff.cc.o" "gcc" "src/CMakeFiles/sams_smtp.dir/smtp/dotstuff.cc.o.d"
  "/root/repo/src/smtp/reply.cc" "src/CMakeFiles/sams_smtp.dir/smtp/reply.cc.o" "gcc" "src/CMakeFiles/sams_smtp.dir/smtp/reply.cc.o.d"
  "/root/repo/src/smtp/server_session.cc" "src/CMakeFiles/sams_smtp.dir/smtp/server_session.cc.o" "gcc" "src/CMakeFiles/sams_smtp.dir/smtp/server_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
