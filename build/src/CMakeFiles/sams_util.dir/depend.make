# Empty dependencies file for sams_util.
# This may be replaced when dependencies are built.
