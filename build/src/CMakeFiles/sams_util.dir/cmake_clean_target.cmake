file(REMOVE_RECURSE
  "libsams_util.a"
)
