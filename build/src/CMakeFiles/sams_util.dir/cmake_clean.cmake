file(REMOVE_RECURSE
  "CMakeFiles/sams_util.dir/util/fd.cc.o"
  "CMakeFiles/sams_util.dir/util/fd.cc.o.d"
  "CMakeFiles/sams_util.dir/util/ipv4.cc.o"
  "CMakeFiles/sams_util.dir/util/ipv4.cc.o.d"
  "CMakeFiles/sams_util.dir/util/logging.cc.o"
  "CMakeFiles/sams_util.dir/util/logging.cc.o.d"
  "CMakeFiles/sams_util.dir/util/result.cc.o"
  "CMakeFiles/sams_util.dir/util/result.cc.o.d"
  "CMakeFiles/sams_util.dir/util/rng.cc.o"
  "CMakeFiles/sams_util.dir/util/rng.cc.o.d"
  "CMakeFiles/sams_util.dir/util/stats.cc.o"
  "CMakeFiles/sams_util.dir/util/stats.cc.o.d"
  "CMakeFiles/sams_util.dir/util/strings.cc.o"
  "CMakeFiles/sams_util.dir/util/strings.cc.o.d"
  "CMakeFiles/sams_util.dir/util/time.cc.o"
  "CMakeFiles/sams_util.dir/util/time.cc.o.d"
  "libsams_util.a"
  "libsams_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
