# Empty dependencies file for sams_pop3.
# This may be replaced when dependencies are built.
