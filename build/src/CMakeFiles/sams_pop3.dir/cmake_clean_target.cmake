file(REMOVE_RECURSE
  "libsams_pop3.a"
)
