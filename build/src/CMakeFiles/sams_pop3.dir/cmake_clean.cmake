file(REMOVE_RECURSE
  "CMakeFiles/sams_pop3.dir/pop3/pop3_server.cc.o"
  "CMakeFiles/sams_pop3.dir/pop3/pop3_server.cc.o.d"
  "CMakeFiles/sams_pop3.dir/pop3/pop3_session.cc.o"
  "CMakeFiles/sams_pop3.dir/pop3/pop3_session.cc.o.d"
  "libsams_pop3.a"
  "libsams_pop3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_pop3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
