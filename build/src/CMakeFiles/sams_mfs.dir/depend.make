# Empty dependencies file for sams_mfs.
# This may be replaced when dependencies are built.
