file(REMOVE_RECURSE
  "CMakeFiles/sams_mfs.dir/mfs/mail_id.cc.o"
  "CMakeFiles/sams_mfs.dir/mfs/mail_id.cc.o.d"
  "CMakeFiles/sams_mfs.dir/mfs/paper_api.cc.o"
  "CMakeFiles/sams_mfs.dir/mfs/paper_api.cc.o.d"
  "CMakeFiles/sams_mfs.dir/mfs/record_io.cc.o"
  "CMakeFiles/sams_mfs.dir/mfs/record_io.cc.o.d"
  "CMakeFiles/sams_mfs.dir/mfs/sim_store.cc.o"
  "CMakeFiles/sams_mfs.dir/mfs/sim_store.cc.o.d"
  "CMakeFiles/sams_mfs.dir/mfs/store.cc.o"
  "CMakeFiles/sams_mfs.dir/mfs/store.cc.o.d"
  "CMakeFiles/sams_mfs.dir/mfs/volume.cc.o"
  "CMakeFiles/sams_mfs.dir/mfs/volume.cc.o.d"
  "libsams_mfs.a"
  "libsams_mfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_mfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
