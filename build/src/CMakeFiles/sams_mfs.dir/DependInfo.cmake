
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mfs/mail_id.cc" "src/CMakeFiles/sams_mfs.dir/mfs/mail_id.cc.o" "gcc" "src/CMakeFiles/sams_mfs.dir/mfs/mail_id.cc.o.d"
  "/root/repo/src/mfs/paper_api.cc" "src/CMakeFiles/sams_mfs.dir/mfs/paper_api.cc.o" "gcc" "src/CMakeFiles/sams_mfs.dir/mfs/paper_api.cc.o.d"
  "/root/repo/src/mfs/record_io.cc" "src/CMakeFiles/sams_mfs.dir/mfs/record_io.cc.o" "gcc" "src/CMakeFiles/sams_mfs.dir/mfs/record_io.cc.o.d"
  "/root/repo/src/mfs/sim_store.cc" "src/CMakeFiles/sams_mfs.dir/mfs/sim_store.cc.o" "gcc" "src/CMakeFiles/sams_mfs.dir/mfs/sim_store.cc.o.d"
  "/root/repo/src/mfs/store.cc" "src/CMakeFiles/sams_mfs.dir/mfs/store.cc.o" "gcc" "src/CMakeFiles/sams_mfs.dir/mfs/store.cc.o.d"
  "/root/repo/src/mfs/volume.cc" "src/CMakeFiles/sams_mfs.dir/mfs/volume.cc.o" "gcc" "src/CMakeFiles/sams_mfs.dir/mfs/volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_fskit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sams_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
