file(REMOVE_RECURSE
  "libsams_mfs.a"
)
