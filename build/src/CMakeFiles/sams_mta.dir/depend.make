# Empty dependencies file for sams_mta.
# This may be replaced when dependencies are built.
