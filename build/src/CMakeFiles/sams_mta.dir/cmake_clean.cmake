file(REMOVE_RECURSE
  "CMakeFiles/sams_mta.dir/mta/drivers.cc.o"
  "CMakeFiles/sams_mta.dir/mta/drivers.cc.o.d"
  "CMakeFiles/sams_mta.dir/mta/queue_manager.cc.o"
  "CMakeFiles/sams_mta.dir/mta/queue_manager.cc.o.d"
  "CMakeFiles/sams_mta.dir/mta/recipient_db.cc.o"
  "CMakeFiles/sams_mta.dir/mta/recipient_db.cc.o.d"
  "CMakeFiles/sams_mta.dir/mta/sim_server.cc.o"
  "CMakeFiles/sams_mta.dir/mta/sim_server.cc.o.d"
  "CMakeFiles/sams_mta.dir/mta/smtp_server.cc.o"
  "CMakeFiles/sams_mta.dir/mta/smtp_server.cc.o.d"
  "libsams_mta.a"
  "libsams_mta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_mta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
