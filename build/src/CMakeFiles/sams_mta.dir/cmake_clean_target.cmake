file(REMOVE_RECURSE
  "libsams_mta.a"
)
