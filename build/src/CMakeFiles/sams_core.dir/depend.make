# Empty dependencies file for sams_core.
# This may be replaced when dependencies are built.
