file(REMOVE_RECURSE
  "libsams_core.a"
)
