file(REMOVE_RECURSE
  "CMakeFiles/sams_core.dir/core/server_stack.cc.o"
  "CMakeFiles/sams_core.dir/core/server_stack.cc.o.d"
  "libsams_core.a"
  "libsams_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
