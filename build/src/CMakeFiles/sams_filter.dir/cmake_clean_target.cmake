file(REMOVE_RECURSE
  "libsams_filter.a"
)
