# Empty dependencies file for sams_filter.
# This may be replaced when dependencies are built.
