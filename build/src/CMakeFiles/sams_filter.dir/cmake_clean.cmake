file(REMOVE_RECURSE
  "CMakeFiles/sams_filter.dir/filter/bayes.cc.o"
  "CMakeFiles/sams_filter.dir/filter/bayes.cc.o.d"
  "CMakeFiles/sams_filter.dir/filter/corpus.cc.o"
  "CMakeFiles/sams_filter.dir/filter/corpus.cc.o.d"
  "CMakeFiles/sams_filter.dir/filter/spam_filter.cc.o"
  "CMakeFiles/sams_filter.dir/filter/spam_filter.cc.o.d"
  "CMakeFiles/sams_filter.dir/filter/tokenizer.cc.o"
  "CMakeFiles/sams_filter.dir/filter/tokenizer.cc.o.d"
  "libsams_filter.a"
  "libsams_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
