# Empty compiler generated dependencies file for sams_sim.
# This may be replaced when dependencies are built.
