file(REMOVE_RECURSE
  "libsams_sim.a"
)
