
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cc" "src/CMakeFiles/sams_sim.dir/sim/cpu.cc.o" "gcc" "src/CMakeFiles/sams_sim.dir/sim/cpu.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/CMakeFiles/sams_sim.dir/sim/disk.cc.o" "gcc" "src/CMakeFiles/sams_sim.dir/sim/disk.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/sams_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/sams_sim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/sams_sim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/sams_sim.dir/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
