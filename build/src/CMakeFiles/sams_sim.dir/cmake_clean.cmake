file(REMOVE_RECURSE
  "CMakeFiles/sams_sim.dir/sim/cpu.cc.o"
  "CMakeFiles/sams_sim.dir/sim/cpu.cc.o.d"
  "CMakeFiles/sams_sim.dir/sim/disk.cc.o"
  "CMakeFiles/sams_sim.dir/sim/disk.cc.o.d"
  "CMakeFiles/sams_sim.dir/sim/network.cc.o"
  "CMakeFiles/sams_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/sams_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/sams_sim.dir/sim/simulator.cc.o.d"
  "libsams_sim.a"
  "libsams_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
