file(REMOVE_RECURSE
  "CMakeFiles/sams_dnsbl.dir/dnsbl/blacklist_db.cc.o"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/blacklist_db.cc.o.d"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/dns_wire.cc.o"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/dns_wire.cc.o.d"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/dnsbl_server.cc.o"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/dnsbl_server.cc.o.d"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/resolver.cc.o"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/resolver.cc.o.d"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/udp_daemon.cc.o"
  "CMakeFiles/sams_dnsbl.dir/dnsbl/udp_daemon.cc.o.d"
  "libsams_dnsbl.a"
  "libsams_dnsbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sams_dnsbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
