# Empty dependencies file for sams_dnsbl.
# This may be replaced when dependencies are built.
