file(REMOVE_RECURSE
  "libsams_dnsbl.a"
)
