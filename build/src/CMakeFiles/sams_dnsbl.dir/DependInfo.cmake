
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnsbl/blacklist_db.cc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/blacklist_db.cc.o" "gcc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/blacklist_db.cc.o.d"
  "/root/repo/src/dnsbl/dns_wire.cc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/dns_wire.cc.o" "gcc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/dns_wire.cc.o.d"
  "/root/repo/src/dnsbl/dnsbl_server.cc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/dnsbl_server.cc.o" "gcc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/dnsbl_server.cc.o.d"
  "/root/repo/src/dnsbl/resolver.cc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/resolver.cc.o" "gcc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/resolver.cc.o.d"
  "/root/repo/src/dnsbl/udp_daemon.cc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/udp_daemon.cc.o" "gcc" "src/CMakeFiles/sams_dnsbl.dir/dnsbl/udp_daemon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
