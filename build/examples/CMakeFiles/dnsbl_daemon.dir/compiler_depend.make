# Empty compiler generated dependencies file for dnsbl_daemon.
# This may be replaced when dependencies are built.
