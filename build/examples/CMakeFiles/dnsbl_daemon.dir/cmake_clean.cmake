file(REMOVE_RECURSE
  "CMakeFiles/dnsbl_daemon.dir/dnsbl_daemon.cpp.o"
  "CMakeFiles/dnsbl_daemon.dir/dnsbl_daemon.cpp.o.d"
  "dnsbl_daemon"
  "dnsbl_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsbl_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
