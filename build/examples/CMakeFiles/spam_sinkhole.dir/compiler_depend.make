# Empty compiler generated dependencies file for spam_sinkhole.
# This may be replaced when dependencies are built.
