file(REMOVE_RECURSE
  "CMakeFiles/spam_sinkhole.dir/spam_sinkhole.cpp.o"
  "CMakeFiles/spam_sinkhole.dir/spam_sinkhole.cpp.o.d"
  "spam_sinkhole"
  "spam_sinkhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_sinkhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
