# Empty compiler generated dependencies file for spam_filter_demo.
# This may be replaced when dependencies are built.
