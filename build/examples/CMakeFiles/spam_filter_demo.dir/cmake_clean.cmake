file(REMOVE_RECURSE
  "CMakeFiles/spam_filter_demo.dir/spam_filter_demo.cpp.o"
  "CMakeFiles/spam_filter_demo.dir/spam_filter_demo.cpp.o.d"
  "spam_filter_demo"
  "spam_filter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_filter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
