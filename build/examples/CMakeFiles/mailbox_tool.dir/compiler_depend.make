# Empty compiler generated dependencies file for mailbox_tool.
# This may be replaced when dependencies are built.
