file(REMOVE_RECURSE
  "CMakeFiles/mailbox_tool.dir/mailbox_tool.cpp.o"
  "CMakeFiles/mailbox_tool.dir/mailbox_tool.cpp.o.d"
  "mailbox_tool"
  "mailbox_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailbox_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
