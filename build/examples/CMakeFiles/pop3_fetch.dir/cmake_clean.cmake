file(REMOVE_RECURSE
  "CMakeFiles/pop3_fetch.dir/pop3_fetch.cpp.o"
  "CMakeFiles/pop3_fetch.dir/pop3_fetch.cpp.o.d"
  "pop3_fetch"
  "pop3_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop3_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
