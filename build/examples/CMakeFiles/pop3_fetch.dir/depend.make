# Empty dependencies file for pop3_fetch.
# This may be replaced when dependencies are built.
