file(REMOVE_RECURSE
  "CMakeFiles/live_smtp_server.dir/live_smtp_server.cpp.o"
  "CMakeFiles/live_smtp_server.dir/live_smtp_server.cpp.o.d"
  "live_smtp_server"
  "live_smtp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_smtp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
