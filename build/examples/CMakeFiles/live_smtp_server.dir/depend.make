# Empty dependencies file for live_smtp_server.
# This may be replaced when dependencies are built.
