# Empty compiler generated dependencies file for bench_fig12_prefix_spatial.
# This may be replaced when dependencies are built.
