file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_prefix_spatial.dir/bench_fig12_prefix_spatial.cc.o"
  "CMakeFiles/bench_fig12_prefix_spatial.dir/bench_fig12_prefix_spatial.cc.o.d"
  "bench_fig12_prefix_spatial"
  "bench_fig12_prefix_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_prefix_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
