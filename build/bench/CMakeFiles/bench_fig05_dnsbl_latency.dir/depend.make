# Empty dependencies file for bench_fig05_dnsbl_latency.
# This may be replaced when dependencies are built.
