file(REMOVE_RECURSE
  "CMakeFiles/bench_sec8_combined.dir/bench_sec8_combined.cc.o"
  "CMakeFiles/bench_sec8_combined.dir/bench_sec8_combined.cc.o.d"
  "bench_sec8_combined"
  "bench_sec8_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
