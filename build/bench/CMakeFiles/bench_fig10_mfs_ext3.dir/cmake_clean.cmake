file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mfs_ext3.dir/bench_fig10_mfs_ext3.cc.o"
  "CMakeFiles/bench_fig10_mfs_ext3.dir/bench_fig10_mfs_ext3.cc.o.d"
  "bench_fig10_mfs_ext3"
  "bench_fig10_mfs_ext3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mfs_ext3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
