# Empty compiler generated dependencies file for bench_fig10_mfs_ext3.
# This may be replaced when dependencies are built.
