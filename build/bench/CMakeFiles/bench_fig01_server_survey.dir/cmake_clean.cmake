file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_server_survey.dir/bench_fig01_server_survey.cc.o"
  "CMakeFiles/bench_fig01_server_survey.dir/bench_fig01_server_survey.cc.o.d"
  "bench_fig01_server_survey"
  "bench_fig01_server_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_server_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
