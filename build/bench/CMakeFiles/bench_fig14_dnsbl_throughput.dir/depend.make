# Empty dependencies file for bench_fig14_dnsbl_throughput.
# This may be replaced when dependencies are built.
