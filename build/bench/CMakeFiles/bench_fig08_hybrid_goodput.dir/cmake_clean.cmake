file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_hybrid_goodput.dir/bench_fig08_hybrid_goodput.cc.o"
  "CMakeFiles/bench_fig08_hybrid_goodput.dir/bench_fig08_hybrid_goodput.cc.o.d"
  "bench_fig08_hybrid_goodput"
  "bench_fig08_hybrid_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_hybrid_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
