# Empty dependencies file for bench_fig08_hybrid_goodput.
# This may be replaced when dependencies are built.
