# Empty dependencies file for bench_fig15_dnsbl_lookup_cdf.
# This may be replaced when dependencies are built.
