file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dnsbl_lookup_cdf.dir/bench_fig15_dnsbl_lookup_cdf.cc.o"
  "CMakeFiles/bench_fig15_dnsbl_lookup_cdf.dir/bench_fig15_dnsbl_lookup_cdf.cc.o.d"
  "bench_fig15_dnsbl_lookup_cdf"
  "bench_fig15_dnsbl_lookup_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dnsbl_lookup_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
