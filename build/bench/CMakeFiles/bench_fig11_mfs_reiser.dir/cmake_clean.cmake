file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mfs_reiser.dir/bench_fig11_mfs_reiser.cc.o"
  "CMakeFiles/bench_fig11_mfs_reiser.dir/bench_fig11_mfs_reiser.cc.o.d"
  "bench_fig11_mfs_reiser"
  "bench_fig11_mfs_reiser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mfs_reiser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
