# Empty dependencies file for bench_fig11_mfs_reiser.
# This may be replaced when dependencies are built.
