# Empty dependencies file for bench_fig04_rcpt_cdf.
# This may be replaced when dependencies are built.
