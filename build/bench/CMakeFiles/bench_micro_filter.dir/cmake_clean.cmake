file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_filter.dir/bench_micro_filter.cc.o"
  "CMakeFiles/bench_micro_filter.dir/bench_micro_filter.cc.o.d"
  "bench_micro_filter"
  "bench_micro_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
