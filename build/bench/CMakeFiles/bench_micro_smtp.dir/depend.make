# Empty dependencies file for bench_micro_smtp.
# This may be replaced when dependencies are built.
