file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_tuning.dir/bench_sec3_tuning.cc.o"
  "CMakeFiles/bench_sec3_tuning.dir/bench_sec3_tuning.cc.o.d"
  "bench_sec3_tuning"
  "bench_sec3_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
