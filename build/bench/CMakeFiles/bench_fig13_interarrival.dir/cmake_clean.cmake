file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_interarrival.dir/bench_fig13_interarrival.cc.o"
  "CMakeFiles/bench_fig13_interarrival.dir/bench_fig13_interarrival.cc.o.d"
  "bench_fig13_interarrival"
  "bench_fig13_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
