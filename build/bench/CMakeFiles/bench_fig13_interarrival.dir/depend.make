# Empty dependencies file for bench_fig13_interarrival.
# This may be replaced when dependencies are built.
