file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mfs.dir/bench_micro_mfs.cc.o"
  "CMakeFiles/bench_micro_mfs.dir/bench_micro_mfs.cc.o.d"
  "bench_micro_mfs"
  "bench_micro_mfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
