# Empty dependencies file for bench_micro_mfs.
# This may be replaced when dependencies are built.
