# Empty compiler generated dependencies file for bench_fig03_bounce_ratio.
# This may be replaced when dependencies are built.
