file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dnsbl.dir/bench_micro_dnsbl.cc.o"
  "CMakeFiles/bench_micro_dnsbl.dir/bench_micro_dnsbl.cc.o.d"
  "bench_micro_dnsbl"
  "bench_micro_dnsbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dnsbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
