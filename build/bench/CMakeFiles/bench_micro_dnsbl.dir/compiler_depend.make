# Empty compiler generated dependencies file for bench_micro_dnsbl.
# This may be replaced when dependencies are built.
