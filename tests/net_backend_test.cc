// Reactor-backend tests (DESIGN.md §14): the pooled receive-buffer
// arena, the epoll/io_uring backend split behind net::EventLoop, the
// adaptive ready-batch growth under fd saturation, epoll-vs-io_uring
// golden equivalence on a full scripted SMTP dialog, and the worker
// read deadline. io_uring cases SKIP (not fail) on kernels or
// sandboxes where a ring cannot be set up. Runs under TSan in CI
// (LABELS threads).
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "mta/smtp_server.h"
#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "util/fd.h"

namespace sams::net {
namespace {

// --- buffer pool -----------------------------------------------------

TEST(BufferPoolTest, AcquireGivesWritableChunkOfConfiguredSize) {
  BufferPool pool(4096, 4);
  BufferPool::Buffer buf = pool.Acquire();
  ASSERT_NE(buf.data, nullptr);
  EXPECT_EQ(buf.capacity, 4096u);
  EXPECT_EQ(pool.chunk_bytes(), 4096u);
  std::memset(buf.data, 0xAB, buf.capacity);
  EXPECT_EQ(static_cast<unsigned char>(buf.data[4095]), 0xABu);
}

TEST(BufferPoolTest, DroppedPinRecyclesTheChunk) {
  BufferPool pool(1024, 4);
  char* first = nullptr;
  {
    BufferPool::Buffer buf = pool.Acquire();
    first = buf.data;
  }  // pin dropped -> chunk back on the free list
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.stats().free_chunks, 1u);
  BufferPool::Buffer again = pool.Acquire();
  EXPECT_EQ(again.data, first);  // served from the free list
  EXPECT_EQ(pool.stats().minted, 1u);
  EXPECT_EQ(pool.stats().acquired, 2u);
}

TEST(BufferPoolTest, PinKeepsBytesAliveAfterPoolTeardown) {
  std::shared_ptr<const void> pin;
  char* data = nullptr;
  {
    BufferPool pool(512, 2);
    BufferPool::Buffer buf = pool.Acquire();
    std::memcpy(buf.data, "survives", 8);
    data = buf.data;
    pin = buf.pin;
  }  // pool destroyed; the pin must still own the chunk
  EXPECT_EQ(std::memcmp(data, "survives", 8), 0);
  pin.reset();
}

TEST(BufferPoolTest, ExhaustionMintsInsteadOfFailing) {
  // Hold every pin so nothing recycles: Acquire must keep minting.
  BufferPool pool(256, 2);
  std::vector<BufferPool::Buffer> held;
  for (int i = 0; i < 16; ++i) held.push_back(pool.Acquire());
  EXPECT_EQ(pool.stats().minted, 16u);
  for (auto& buf : held) ASSERT_NE(buf.data, nullptr);
  // Releasing all 16 keeps only max_free on the free list.
  held.clear();
  EXPECT_EQ(pool.stats().free_chunks, 2u);
  EXPECT_EQ(pool.stats().recycled, 2u);
}

// --- backend selection ----------------------------------------------

TEST(IoBackendKindTest, ParsesFlagValues) {
  EXPECT_EQ(ParseIoBackendKind("epoll"), IoBackendKind::kEpoll);
  EXPECT_EQ(ParseIoBackendKind("io_uring"), IoBackendKind::kIoUring);
  EXPECT_EQ(ParseIoBackendKind("uring"), IoBackendKind::kIoUring);
  EXPECT_EQ(ParseIoBackendKind("auto"), IoBackendKind::kAuto);
  EXPECT_FALSE(ParseIoBackendKind("kqueue").has_value());
  EXPECT_FALSE(ParseIoBackendKind("").has_value());
}

TEST(IoBackendKindTest, AutoAlwaysResolvesToAWorkingLoop) {
  auto loop = EventLoop::Create(IoBackendKind::kAuto);
  ASSERT_TRUE(loop.ok()) << loop.error().ToString();
  const std::string name = (*loop)->backend_name();
  if (IoUringAvailable()) {
    EXPECT_EQ(name, "io_uring");
  } else {
    EXPECT_EQ(name, "epoll");
  }
}

TEST(IoBackendKindTest, StrictUringFailsCleanlyWhenUnavailable) {
  if (IoUringAvailable()) GTEST_SKIP() << "io_uring works here";
  auto loop = EventLoop::Create(IoBackendKind::kIoUring);
  EXPECT_FALSE(loop.ok());
}

// --- loop semantics on both backends ---------------------------------

class BackendLoopTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kIoUring && !IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable (kernel/sandbox)";
    }
  }
};

// One eventfd, level-triggered: an undrained counter must re-fire the
// callback on the next loop iteration (epoll's level contract — the
// io_uring backend reproduces it by re-arming after dispatch).
TEST_P(BackendLoopTest, LevelTriggeredRefiresUntilDrained) {
  auto loop_or = EventLoop::Create(GetParam());
  ASSERT_TRUE(loop_or.ok()) << loop_or.error().ToString();
  EventLoop& loop = **loop_or;
  util::UniqueFd efd(::eventfd(1, EFD_NONBLOCK));
  ASSERT_TRUE(efd.valid());
  int fires = 0;
  ASSERT_TRUE(loop.Add(efd.get(), EPOLLIN, [&](std::uint32_t) {
    if (++fires < 3) return;  // leave it readable twice
    std::uint64_t v = 0;
    (void)::read(efd.get(), &v, sizeof(v));
    loop.Stop();
  }).ok());
  ASSERT_TRUE(loop.Run().ok());
  EXPECT_EQ(fires, 3);
}

// Edge-triggered: one readiness edge, one callback.
TEST_P(BackendLoopTest, EdgeTriggeredFiresOncePerEdge) {
  auto loop_or = EventLoop::Create(GetParam());
  ASSERT_TRUE(loop_or.ok()) << loop_or.error().ToString();
  EventLoop& loop = **loop_or;
  util::UniqueFd efd(::eventfd(1, EFD_NONBLOCK));
  ASSERT_TRUE(efd.valid());
  std::atomic<int> fires{0};
  ASSERT_TRUE(loop.Add(efd.get(), EPOLLIN | EPOLLET, [&](std::uint32_t) {
    fires.fetch_add(1);  // intentionally never drains
  }).ok());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    loop.Stop();
  });
  ASSERT_TRUE(loop.Run().ok());
  stopper.join();
  EXPECT_EQ(fires.load(), 1);
}

TEST_P(BackendLoopTest, RemoveSilencesAndDuplicateAddRejected) {
  auto loop_or = EventLoop::Create(GetParam());
  ASSERT_TRUE(loop_or.ok()) << loop_or.error().ToString();
  EventLoop& loop = **loop_or;
  util::UniqueFd efd(::eventfd(1, EFD_NONBLOCK));
  ASSERT_TRUE(efd.valid());
  int fires = 0;
  ASSERT_TRUE(loop.Add(efd.get(), EPOLLIN, [&](std::uint32_t) {
    ++fires;
    ASSERT_TRUE(loop.Remove(efd.get()).ok());
    loop.Post([&] { loop.Stop(); });
  }).ok());
  EXPECT_FALSE(loop.Add(efd.get(), EPOLLIN, [](std::uint32_t) {}).ok())
      << "duplicate Add must be rejected";
  ASSERT_TRUE(loop.Run().ok());
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(loop.Modify(efd.get(), EPOLLIN).ok())
      << "Modify after Remove must be ENOENT";
}

// More simultaneously-ready fds than the historical 64-entry harvest:
// every callback must still fire (the batch doubles on saturation) and
// the saturation counter must record the undersized rounds.
TEST_P(BackendLoopTest, ReadyBatchGrowsPastSixtyFourFds) {
  auto loop_or = EventLoop::Create(GetParam());
  ASSERT_TRUE(loop_or.ok()) << loop_or.error().ToString();
  EventLoop& loop = **loop_or;
  obs::Registry registry;
  loop.BindMetrics(registry);
  constexpr int kFds = 150;
  std::vector<util::UniqueFd> fds;
  std::atomic<int> drained{0};
  for (int i = 0; i < kFds; ++i) {
    fds.emplace_back(::eventfd(1, EFD_NONBLOCK));  // born readable
    ASSERT_TRUE(fds.back().valid());
    const int fd = fds.back().get();
    ASSERT_TRUE(loop.Add(fd, EPOLLIN, [&, fd](std::uint32_t) {
      std::uint64_t v = 0;
      (void)::read(fd, &v, sizeof(v));
      if (drained.fetch_add(1) + 1 == kFds) loop.Stop();
    }).ok());
  }
  ASSERT_TRUE(loop.Run().ok());
  EXPECT_EQ(drained.load(), kFds);
  const std::uint64_t saturated =
      registry
          .GetCounter(
              "sams_net_ready_saturated_total",
              "ready batches that came back full (batch then doubled)")
          .value();
  EXPECT_GE(saturated, 1u) << "64-entry first harvest must have been full";
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendLoopTest,
                         ::testing::Values(IoBackendKind::kEpoll,
                                           IoBackendKind::kIoUring),
                         [](const auto& info) {
                           return info.param == IoBackendKind::kEpoll
                                      ? std::string("epoll")
                                      : std::string("io_uring");
                         });

}  // namespace
}  // namespace sams::net

namespace sams::mta {
namespace {

// Reads from `fd` until `token` appears in the stream (or EOF/timeout).
std::string ReadUntil(int fd, const std::string& token) {
  std::string seen;
  char buf[512];
  while (seen.find(token) == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    seen.append(buf, static_cast<std::size_t>(n));
  }
  return seen;
}

struct ServerHarness {
  std::string root;
  std::unique_ptr<mfs::MailStore> store;
  std::unique_ptr<SmtpServer> server;
  std::uint16_t port = 0;

  static std::unique_ptr<ServerHarness> Start(RealServerConfig cfg,
                                              const std::string& tag) {
    auto h = std::make_unique<ServerHarness>();
    h->root = ::testing::TempDir() + "/backend_srv_" + tag;
    std::filesystem::remove_all(h->root);
    auto store = mfs::MakeMfsStore(h->root, {});
    if (!store.ok()) return nullptr;
    h->store = std::move(store).value();
    RecipientDb db;
    for (const char* user : {"alice", "bob"}) db.AddMailbox(user, "dept.test");
    h->server = std::make_unique<SmtpServer>(cfg, std::move(db), *h->store);
    auto port = h->server->Start();
    if (!port.ok()) return nullptr;
    h->port = *port;
    return h;
  }

  ~ServerHarness() {
    if (server) server->Stop();
    server.reset();
    store.reset();
    if (!root.empty()) std::filesystem::remove_all(root);
  }
};

// Runs one fully scripted dialog (dot-stuffed multi-chunk body) and
// returns the complete reply transcript.
std::string RunScriptedDialog(std::uint16_t port) {
  auto fd = net::TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return "CONNECT FAILED";
  std::string transcript = ReadUntil(fd->get(), "\r\n");  // 220 banner
  const auto say = [&](const std::string& bytes, const std::string& expect) {
    (void)util::SendAll(fd->get(), bytes.data(), bytes.size());
    transcript += ReadUntil(fd->get(), expect);
  };
  say("HELO golden.test\r\n", "\r\n");
  say("MAIL FROM:<sender@remote.test>\r\n", "\r\n");
  say("RCPT TO:<alice@dept.test>\r\n", "\r\n");
  say("RCPT TO:<bob@dept.test>\r\n", "\r\n");
  say("DATA\r\n", "\r\n");
  // Body sent in awkward pieces: a dot-stuffed line split mid-".." and
  // a CRLF straddling two sends — the decoder seams the backends must
  // agree on.
  (void)util::SendAll(fd->get(), "Subject: golden\r\n\r\nline one\r\n..", 31);
  (void)util::SendAll(fd->get(), "dot-stuffed line\r", 17);
  (void)util::SendAll(fd->get(), "\nlast line\r\n", 12);
  say(".\r\n", "\r\n");  // final reply after the terminator
  say("QUIT\r\n", "\r\n");
  return transcript;
}

// The tentpole's equivalence gate: a full dialog against an io_uring
// server must be reply-for-reply and byte-for-byte identical to the
// same dialog against the epoll server, including what lands in the
// mailboxes.
TEST(BackendGoldenTest, UringDialogMatchesEpollByteForByte) {
  if (!net::IoUringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/sandbox)";
  }
  std::string transcripts[2];
  std::vector<std::string> bodies[2];
  const net::IoBackendKind kinds[2] = {net::IoBackendKind::kEpoll,
                                       net::IoBackendKind::kIoUring};
  for (int i = 0; i < 2; ++i) {
    RealServerConfig cfg;
    cfg.architecture = Architecture::kForkAfterTrust;
    cfg.worker_count = 2;
    cfg.num_shards = 1;
    cfg.recv_timeout_ms = 3'000;
    cfg.io_backend = kinds[i];
    auto h =
        ServerHarness::Start(cfg, i == 0 ? "golden_epoll" : "golden_uring");
    ASSERT_NE(h, nullptr);
    transcripts[i] = RunScriptedDialog(h->port);
    h->server->Stop();
    for (const char* user : {"alice", "bob"}) {
      auto mails = h->store->ReadMailbox(user);
      ASSERT_TRUE(mails.ok()) << user;
      for (auto& m : *mails) bodies[i].push_back(std::move(m));
    }
  }
  EXPECT_FALSE(transcripts[0].empty());
  EXPECT_NE(transcripts[0], "CONNECT FAILED");
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(bodies[0], bodies[1]);
  ASSERT_EQ(bodies[0].size(), 2u);
  EXPECT_EQ(bodies[0][0],
            "Subject: golden\r\n\r\nline one\r\n.dot-stuffed line\r\n"
            "last line\r\n");
}

// Satellite 1: a client that goes silent after earning trust must be
// 421-evicted by the worker's session deadline instead of pinning the
// worker until recv_timeout (or forever).
TEST(WorkerDeadlineTest, WedgedClientGets421FromWorker) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.num_shards = 1;
  cfg.recv_timeout_ms = 30'000;          // deliberately long
  cfg.worker_session_deadline_ms = 400;  // the actual bound under test
  auto h = ServerHarness::Start(cfg, "deadline");
  ASSERT_NE(h, nullptr);

  auto fd = net::TcpConnect("127.0.0.1", h->port);
  ASSERT_TRUE(fd.ok());
  ReadUntil(fd->get(), "220");
  const auto say = [&](const char* cmd, const char* expect) {
    ASSERT_TRUE(util::SendAll(fd->get(), cmd, std::strlen(cmd)).ok());
    const std::string reply = ReadUntil(fd->get(), expect);
    ASSERT_NE(reply.find(expect), std::string::npos) << reply;
  };
  say("HELO wedge.test\r\n", "250");
  say("MAIL FROM:<s@remote.test>\r\n", "250");
  say("RCPT TO:<alice@dept.test>\r\n", "250");  // trust granted, delegated
  // ...and now say nothing. The worker must evict us with a 421.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string eviction = ReadUntil(fd->get(), "421");
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(eviction.find("421"), std::string::npos) << eviction;
  EXPECT_LT(
      std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(),
      5'000);
  EXPECT_GE(h->server->stats().worker_read_timeouts.load(), 1u);
}

}  // namespace
}  // namespace sams::mta
