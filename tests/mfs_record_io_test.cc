#include "mfs/record_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "fault/injector.h"
#include "mfs/mail_id.h"
#include "util/rng.h"

namespace sams::mfs {
namespace {

class RecordIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mfs_recio_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : dir_) {
      if (c == '/') c = '_';
    }
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  MailId Id() { return MailId::Generate(rng_); }

  std::string dir_;
  util::Rng rng_{42};
};

TEST(MailIdTest, GenerateIsUniqueAndParsable) {
  util::Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const MailId id = MailId::Generate(rng);
    EXPECT_FALSE(id.empty());
    EXPECT_LE(id.str().size(), MailId::kMaxLen);
    EXPECT_TRUE(MailId::Parse(id.str()).has_value());
    EXPECT_TRUE(seen.insert(id.str()).second) << "duplicate id " << id.str();
  }
}

TEST(MailIdTest, ParseRejectsBadIds) {
  EXPECT_FALSE(MailId::Parse("").has_value());
  EXPECT_FALSE(MailId::Parse(std::string(33, 'A')).has_value());
  EXPECT_FALSE(MailId::Parse("has space").has_value());
  EXPECT_FALSE(MailId::Parse("has\nnewline").has_value());
  EXPECT_FALSE(MailId::Parse(std::string("nul\0", 4)).has_value());
  EXPECT_TRUE(MailId::Parse("ABC123xyz-_.").has_value());
}

TEST_F(RecordIoTest, KeyFileAppendAndReload) {
  const std::string path = dir_ + "/box.key";
  const MailId a = Id(), b = Id();
  {
    auto kf = KeyFile::Open(path);
    ASSERT_TRUE(kf.ok()) << kf.error().ToString();
    ASSERT_TRUE(kf->Append({a, 0, 1}).ok());
    ASSERT_TRUE(kf->Append({b, 128, -1}).ok());
    EXPECT_EQ(kf->size(), 2u);
  }
  auto kf = KeyFile::Open(path);
  ASSERT_TRUE(kf.ok());
  ASSERT_EQ(kf->size(), 2u);
  EXPECT_EQ(kf->at(0).id, a);
  EXPECT_EQ(kf->at(0).offset, 0);
  EXPECT_EQ(kf->at(0).refcount, 1);
  EXPECT_EQ(kf->at(1).id, b);
  EXPECT_EQ(kf->at(1).offset, 128);
  EXPECT_TRUE(kf->at(1).IsRedirect());
}

TEST_F(RecordIoTest, KeyFileRefcountUpdatePersists) {
  const std::string path = dir_ + "/box.key";
  const MailId a = Id();
  {
    auto kf = KeyFile::Open(path);
    ASSERT_TRUE(kf.ok());
    ASSERT_TRUE(kf->Append({a, 0, 7}).ok());
    ASSERT_TRUE(kf->SetRefcount(0, 3).ok());
    EXPECT_EQ(kf->at(0).refcount, 3);
  }
  auto kf = KeyFile::Open(path);
  ASSERT_TRUE(kf.ok());
  EXPECT_EQ(kf->at(0).refcount, 3);
}

TEST_F(RecordIoTest, KeyFileOffsetUpdatePersists) {
  const std::string path = dir_ + "/box.key";
  auto kf = KeyFile::Open(path);
  ASSERT_TRUE(kf.ok());
  ASSERT_TRUE(kf->Append({Id(), 100, -1}).ok());
  ASSERT_TRUE(kf->SetOffset(0, 4242).ok());
  auto reloaded = KeyFile::Open(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->at(0).offset, 4242);
}

TEST_F(RecordIoTest, KeyFileFindSkipsTombstones) {
  auto kf = KeyFile::Open(dir_ + "/box.key");
  ASSERT_TRUE(kf.ok());
  const MailId a = Id();
  ASSERT_TRUE(kf->Append({a, 0, 1}).ok());
  EXPECT_EQ(kf->Find(a), 0u);
  ASSERT_TRUE(kf->SetRefcount(0, 0).ok());
  EXPECT_EQ(kf->Find(a), KeyFile::npos);
  EXPECT_EQ(kf->Find(Id()), KeyFile::npos);
}

TEST_F(RecordIoTest, KeyFileRejectsOutOfRangeUpdates) {
  auto kf = KeyFile::Open(dir_ + "/box.key");
  ASSERT_TRUE(kf.ok());
  EXPECT_EQ(kf->SetRefcount(0, 1).code(), util::ErrorCode::kOutOfRange);
  EXPECT_EQ(kf->SetOffset(5, 1).code(), util::ErrorCode::kOutOfRange);
}

TEST_F(RecordIoTest, KeyFileDetectsTruncation) {
  const std::string path = dir_ + "/box.key";
  {
    auto kf = KeyFile::Open(path);
    ASSERT_TRUE(kf.ok());
    ASSERT_TRUE(kf->Append({Id(), 0, 1}).ok());
  }
  std::filesystem::resize_file(path, KeyRecord::kWireSize - 3);
  auto kf = KeyFile::Open(path);
  ASSERT_FALSE(kf.ok());
  EXPECT_EQ(kf.error().code(), util::ErrorCode::kCorruption);
}

TEST_F(RecordIoTest, KeyFileRewriteDropsRecords) {
  const std::string path = dir_ + "/box.key";
  auto kf = KeyFile::Open(path);
  ASSERT_TRUE(kf.ok());
  const MailId keep = Id();
  ASSERT_TRUE(kf->Append({Id(), 0, 0}).ok());
  ASSERT_TRUE(kf->Append({keep, 10, 1}).ok());
  ASSERT_TRUE(kf->Rewrite(path, {{keep, 20, 1}}).ok());
  EXPECT_EQ(kf->size(), 1u);
  auto reloaded = KeyFile::Open(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), 1u);
  EXPECT_EQ(reloaded->at(0).id, keep);
  EXPECT_EQ(reloaded->at(0).offset, 20);
}

TEST_F(RecordIoTest, DataFileAppendReadRoundTrip) {
  auto df = DataFile::Open(dir_ + "/box.dat");
  ASSERT_TRUE(df.ok());
  auto off1 = df->Append("first mail body");
  ASSERT_TRUE(off1.ok());
  auto off2 = df->Append("second, longer mail body with more text");
  ASSERT_TRUE(off2.ok());
  EXPECT_GT(*off2, *off1);
  auto r1 = df->ReadAt(*off1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, "first mail body");
  auto r2 = df->ReadAt(*off2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "second, longer mail body with more text");
}

TEST_F(RecordIoTest, DataFileEmptyPayload) {
  auto df = DataFile::Open(dir_ + "/box.dat");
  ASSERT_TRUE(df.ok());
  auto off = df->Append("");
  ASSERT_TRUE(off.ok());
  auto r = df->ReadAt(*off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "");
}

TEST_F(RecordIoTest, DataFilePersistsAcrossReopen) {
  const std::string path = dir_ + "/box.dat";
  std::int64_t off;
  {
    auto df = DataFile::Open(path);
    ASSERT_TRUE(df.ok());
    auto r = df->Append("durable payload");
    ASSERT_TRUE(r.ok());
    off = *r;
  }
  auto df = DataFile::Open(path);
  ASSERT_TRUE(df.ok());
  auto r = df->ReadAt(off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "durable payload");
}

TEST_F(RecordIoTest, DataFileRejectsBadOffsets) {
  auto df = DataFile::Open(dir_ + "/box.dat");
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(df->Append("x").ok());
  EXPECT_FALSE(df->ReadAt(-1).ok());
  EXPECT_FALSE(df->ReadAt(df->end_offset()).ok());
  EXPECT_FALSE(df->ReadAt(1).ok());  // mid-record: length looks corrupt
}

TEST_F(RecordIoTest, DataFileRewriteReturnsNewOffsets) {
  const std::string path = dir_ + "/box.dat";
  auto df = DataFile::Open(path);
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(df->Append("junk to drop").ok());
  ASSERT_TRUE(df->Append("keep me").ok());
  auto offsets = df->Rewrite(path, {"keep me"});
  ASSERT_TRUE(offsets.ok());
  ASSERT_EQ(offsets->size(), 1u);
  auto r = df->ReadAt((*offsets)[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "keep me");
  EXPECT_LT(df->end_offset(), 30);
}

TEST_F(RecordIoTest, LargePayloadRoundTrip) {
  auto df = DataFile::Open(dir_ + "/box.dat");
  ASSERT_TRUE(df.ok());
  std::string big(1 << 20, 'M');
  for (std::size_t i = 0; i < big.size(); i += 7919) big[i] = 'x';
  auto off = df->Append(big);
  ASSERT_TRUE(off.ok());
  auto r = df->ReadAt(*off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, big);
}

TEST_F(RecordIoTest, DataFileRejectsOversizedRecord) {
  auto df = DataFile::Open(dir_ + "/box.dat");
  ASSERT_TRUE(df.ok());
  // One past the cap: rejected before any byte is written, so the
  // 4-byte length prefix can never silently truncate the size.
  std::string huge(kMaxDataRecordBytes + 1, 'h');
  auto off = df->Append(huge);
  ASSERT_FALSE(off.ok());
  EXPECT_EQ(off.error().code(), util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(df->end_offset(), 0);
  EXPECT_EQ(std::filesystem::file_size(dir_ + "/box.dat"), 0u);
  // The file is still usable for normal appends afterwards.
  auto ok = df->Append("fits fine");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*df->ReadAt(*ok), "fits fine");
}

TEST_F(RecordIoTest, KeyFileAppendBatchPersistsAll) {
  const std::string path = dir_ + "/box.key";
  const MailId a = Id(), b = Id(), c = Id();
  {
    auto kf = KeyFile::Open(path);
    ASSERT_TRUE(kf.ok());
    const KeyRecord batch[] = {{a, 0, 1}, {b, 100, -1}, {c, 200, 2}};
    ASSERT_TRUE(kf->AppendBatch(batch).ok());
    ASSERT_EQ(kf->size(), 3u);
  }
  auto kf = KeyFile::Open(path);
  ASSERT_TRUE(kf.ok());
  ASSERT_EQ(kf->size(), 3u);
  EXPECT_EQ(kf->at(0).id, a);
  EXPECT_EQ(kf->at(1).offset, 100);
  EXPECT_EQ(kf->at(1).refcount, -1);
  EXPECT_EQ(kf->at(2).id, c);
  EXPECT_EQ(kf->Find(b), 1u);
}

TEST_F(RecordIoTest, KeyFileAppendBatchOfZeroIsANoOp) {
  auto kf = KeyFile::Open(dir_ + "/box.key");
  ASSERT_TRUE(kf.ok());
  ASSERT_TRUE(kf->AppendBatch({}).ok());
  EXPECT_EQ(kf->size(), 0u);
}

// The "mfs.io.pwritev.short" point degrades every pwritev into a
// 1-byte pwrite: the continuation loop must advance through the iovec
// array and still produce byte-identical files.
TEST_F(RecordIoTest, ShortWritesRetriedToCompletion) {
  fault::ScopedArm arm(9);
  fault::Policy p;
  p.action = fault::Action::kError;
  fault::Injector::Global().Set("mfs.io.pwritev.short", p);

  auto df = DataFile::Open(dir_ + "/short.dat");
  ASSERT_TRUE(df.ok());
  std::string body(257, 'z');
  body.front() = 'a';
  body.back() = 'q';
  auto off = df->Append(body);
  ASSERT_TRUE(off.ok()) << off.error().ToString();
  auto r = df->ReadAt(*off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, body);

  auto kf = KeyFile::Open(dir_ + "/short.key");
  ASSERT_TRUE(kf.ok());
  const MailId a = Id(), b = Id();
  const KeyRecord batch[] = {{a, *off, 1}, {b, *off, -1}};
  ASSERT_TRUE(kf->AppendBatch(batch).ok());

  fault::Injector::Global().Disarm();
  auto reloaded = KeyFile::Open(dir_ + "/short.key");
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().ToString();
  ASSERT_EQ(reloaded->size(), 2u);
  EXPECT_EQ(reloaded->at(0).id, a);
  EXPECT_EQ(reloaded->at(1).id, b);
  EXPECT_EQ(reloaded->at(1).refcount, -1);
}

}  // namespace
}  // namespace sams::mfs
