// End-to-end tests of the REAL SMTP server over loopback TCP, in both
// concurrency architectures, delivering into real mail stores
// (including MFS). This is the paper's system actually running.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace {

// Polls `predicate` until true or ~2 s elapse (cross-thread counters
// may lag the client's view of the dialog by a scheduling quantum).
bool EventuallyTrue(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

}  // namespace

#include "fault/injector.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"

namespace sams::mta {
namespace {

using smtp::AbortStage;
using smtp::ClientOutcome;
using smtp::MailJob;
using smtp::Path;

struct ServerParam {
  const char* label;
  Architecture architecture;
};

class RealServerTest : public ::testing::TestWithParam<ServerParam> {
 protected:
  void SetUp() override {
    std::string tag = std::string(GetParam().label) + "_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/real_srv_" + tag;
    std::filesystem::remove_all(root_);
    auto store = mfs::MakeMfsStore(root_, {});
    ASSERT_TRUE(store.ok()) << store.error().ToString();
    store_ = std::move(store).value();

    RecipientDb db;
    for (const char* user : {"alice", "bob", "carol", "dave"}) {
      db.AddMailbox(user, "dept.test");
    }

    RealServerConfig cfg;
    cfg.architecture = GetParam().architecture;
    cfg.worker_count = 3;
    cfg.recv_timeout_ms = 3'000;
    server_ = std::make_unique<SmtpServer>(cfg, std::move(db), *store_);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.error().ToString();
    port_ = *port;
  }

  void TearDown() override {
    server_->Stop();
    server_.reset();
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  static MailJob Job(std::vector<std::string> rcpts, std::string body) {
    MailJob job;
    job.helo = "client.test";
    job.mail_from = *Path::Parse("<sender@remote.test>");
    for (const auto& rcpt : rcpts) {
      job.rcpts.push_back(*Path::Parse("<" + rcpt + ">"));
    }
    job.body = std::move(body);
    return job;
  }

  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
  std::unique_ptr<SmtpServer> server_;
  std::uint16_t port_ = 0;
};

TEST_P(RealServerTest, DeliversSingleRecipientMail) {
  auto result = net::SendMail("127.0.0.1", port_,
                              Job({"alice@dept.test"}, "hello over tcp\n"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  EXPECT_EQ(result->accepted_rcpts, 1);

  server_->Stop();  // flush
  auto mails = store_->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_EQ((*mails)[0], "hello over tcp\r\n");
  EXPECT_EQ(server_->stats().mails_delivered.load(), 1u);
}

TEST_P(RealServerTest, MultiRecipientSingleCopyInMfs) {
  auto result = net::SendMail(
      "127.0.0.1", port_,
      Job({"alice@dept.test", "bob@dept.test", "carol@dept.test"},
          "spam to many\n"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  EXPECT_EQ(result->accepted_rcpts, 3);
  server_->Stop();
  for (const char* user : {"alice", "bob", "carol"}) {
    auto mails = store_->ReadMailbox(user);
    ASSERT_TRUE(mails.ok()) << user;
    ASSERT_EQ(mails->size(), 1u) << user;
    EXPECT_EQ((*mails)[0], "spam to many\r\n");
  }
  // The single-copy property on the wire-delivered mail.
  EXPECT_LT(store_->stats().bytes_written, 2 * 14u);
  EXPECT_EQ(server_->stats().mailbox_deliveries.load(), 3u);
}

TEST_P(RealServerTest, BounceGets550AndNoDelivery) {
  auto result = net::SendMail("127.0.0.1", port_,
                              Job({"ghost@dept.test", "phantom@dept.test"},
                                  "undeliverable\n"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kAllRejected);
  EXPECT_EQ(result->rejected_rcpts, 2);
  EXPECT_EQ(server_->stats().mails_delivered.load(), 0u);
  EXPECT_EQ(server_->stats().rejected_rcpts.load(), 2u);
}

TEST_P(RealServerTest, ForeignDomainRejected) {
  auto result = net::SendMail("127.0.0.1", port_,
                              Job({"alice@elsewhere.test"}, "relay attempt\n"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ClientOutcome::kAllRejected);
}

TEST_P(RealServerTest, MixedRcptsDeliverToValidOnly) {
  auto result = net::SendMail(
      "127.0.0.1", port_,
      Job({"ghost@dept.test", "alice@dept.test", "bob@dept.test"},
          "partial\n"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  EXPECT_EQ(result->accepted_rcpts, 2);
  EXPECT_EQ(result->rejected_rcpts, 1);
  server_->Stop();
  EXPECT_EQ(store_->ReadMailbox("alice")->size(), 1u);
  EXPECT_EQ(store_->ReadMailbox("bob")->size(), 1u);
  EXPECT_TRUE(store_->ReadMailbox("ghost").error().ok() ||
              store_->ReadMailbox("ghost")->empty());
}

TEST_P(RealServerTest, UnfinishedSessionsCostNoDelivery) {
  for (AbortStage stage : {AbortStage::kAfterBanner, AbortStage::kAfterHelo,
                           AbortStage::kAfterMail}) {
    auto result = net::SendMail("127.0.0.1", port_,
                                Job({"alice@dept.test"}, "never sent\n"), stage);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->outcome, ClientOutcome::kAborted);
  }
  EXPECT_EQ(server_->stats().mails_delivered.load(), 0u);
  EXPECT_EQ(server_->stats().connections.load(), 3u);
}

TEST_P(RealServerTest, ManySequentialMails) {
  for (int i = 0; i < 20; ++i) {
    auto result = net::SendMail(
        "127.0.0.1", port_,
        Job({"alice@dept.test"}, "mail number " + std::to_string(i) + "\n"));
    ASSERT_TRUE(result.ok()) << i;
    ASSERT_EQ(result->outcome, ClientOutcome::kDelivered) << i;
  }
  server_->Stop();
  auto mails = store_->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 20u);
  EXPECT_EQ((*mails)[7], "mail number 7\r\n");
}

TEST_P(RealServerTest, ConcurrentClients) {
  constexpr int kClients = 12;
  std::vector<std::thread> clients;
  std::atomic<int> delivered{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, i, &delivered] {
      const char* user = (i % 2 == 0) ? "alice@dept.test" : "bob@dept.test";
      auto result = net::SendMail(
          "127.0.0.1", port_,
          Job({user, "carol@dept.test"},
              "concurrent mail " + std::to_string(i) + "\n"));
      if (result.ok() && result->outcome == ClientOutcome::kDelivered) {
        delivered.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(delivered.load(), kClients);
  server_->Stop();
  auto carol = store_->ReadMailbox("carol");
  ASSERT_TRUE(carol.ok());
  EXPECT_EQ(carol->size(), static_cast<std::size_t>(kClients));
}

TEST_P(RealServerTest, LargeBodySurvivesTransport) {
  std::string body;
  for (int i = 0; i < 2'000; ++i) {
    body += "line " + std::to_string(i) + " with some padding text\n";
  }
  body += ".leading dot line needs stuffing\n";
  auto result = net::SendMail("127.0.0.1", port_, Job({"dave@dept.test"}, body));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, ClientOutcome::kDelivered);
  server_->Stop();
  auto mails = store_->ReadMailbox("dave");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_NE((*mails)[0].find("line 1999 with some padding"), std::string::npos);
  EXPECT_NE((*mails)[0].find(".leading dot line"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, RealServerTest,
    ::testing::Values(
        ServerParam{"thread_per_conn", Architecture::kThreadPerConnection},
        ServerParam{"fork_after_trust", Architecture::kForkAfterTrust}),
    [](const ::testing::TestParamInfo<ServerParam>& info) {
      return info.param.label;
    });

// Architecture-specific behaviours.
TEST(ForkAfterTrustTest, BouncesNeverLeaveTheMaster) {
  const std::string root = ::testing::TempDir() + "/fat_bounce";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 2'000;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  MailJob bounce;
  bounce.mail_from = *Path::Parse("<s@x.test>");
  bounce.rcpts.push_back(*Path::Parse("<ghost@dept.test>"));
  bounce.body = "x\n";
  for (int i = 0; i < 5; ++i) {
    auto result = net::SendMail("127.0.0.1", *port, bounce);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->outcome, smtp::ClientOutcome::kAllRejected);
  }
  // No delegation happened: every bounce died in the event loop.
  EXPECT_EQ(server.stats().delegations.load(), 0u);
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().master_closed.load() == 5u; }))
      << server.stats().master_closed.load();

  MailJob good = bounce;
  good.rcpts = {*Path::Parse("<alice@dept.test>")};
  auto result = net::SendMail("127.0.0.1", *port, good);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, smtp::ClientOutcome::kDelivered);
  EXPECT_EQ(server.stats().delegations.load(), 1u);
  server.Stop();
  std::filesystem::remove_all(root);
}

TEST(ForkAfterTrustTest, PipelinedBytesSurviveHandoff) {
  // A client that blasts the entire transaction in one write: the
  // master pauses at the first valid RCPT and the unread bytes must
  // reach the worker intact through the handoff payload.
  const std::string root = ::testing::TempDir() + "/fat_pipeline";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMboxStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  db.AddMailbox("bob", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.recv_timeout_ms = 2'000;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  auto fd = net::TcpConnect("127.0.0.1", *port);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 3'000).ok());
  const std::string blast =
      "HELO blaster.test\r\n"
      "MAIL FROM:<s@x.test>\r\n"
      "RCPT TO:<alice@dept.test>\r\n"
      "RCPT TO:<bob@dept.test>\r\n"
      "DATA\r\n"
      "pipelined body\r\n"
      ".\r\n"
      "QUIT\r\n";
  ASSERT_TRUE(util::WriteAll(fd->get(), blast.data(), blast.size()).ok());
  // Drain replies until the server closes or we see 221.
  std::string wire;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd->get(), buf, sizeof(buf));
    if (n <= 0) break;
    wire.append(buf, static_cast<std::size_t>(n));
    if (wire.find("221 ") != std::string::npos) break;
  }
  EXPECT_NE(wire.find("354 "), std::string::npos) << wire;
  EXPECT_NE(wire.find("221 "), std::string::npos) << wire;
  server.Stop();
  auto alice = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_EQ(alice->size(), 1u);
  EXPECT_EQ((*alice)[0], "pipelined body\r\n");
  auto bob = (*store)->ReadMailbox("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->size(), 1u);
  std::filesystem::remove_all(root);
}

TEST(PregreetTest, EarlyTalkersRejectedPatientClientsServed) {
  const std::string root = ::testing::TempDir() + "/srv_pregreet";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 3'000;
  cfg.pregreet_delay_ms = 250;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // 1. A spam bot that blasts its dialog without waiting for the
  //    banner: must get 554 and nothing delivered.
  {
    auto fd = net::TcpConnect("127.0.0.1", *port);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 3'000).ok());
    const std::string blast =
        "HELO bot\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\n";
    ASSERT_TRUE(util::WriteAll(fd->get(), blast.data(), blast.size()).ok());
    std::string wire;
    char buf[512];
    for (;;) {
      const ssize_t n = ::read(fd->get(), buf, sizeof(buf));
      if (n <= 0) break;
      wire.append(buf, static_cast<std::size_t>(n));
      if (wire.find("\r\n") != std::string::npos) break;
    }
    EXPECT_EQ(wire.substr(0, 4), "554 ") << wire;
  }
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().pregreet_rejects.load() == 1u; }));

  // 2. A well-behaved client that waits for the banner sails through.
  MailJob job;
  job.mail_from = *Path::Parse("<s@remote.test>");
  job.rcpts = {*Path::Parse("<alice@dept.test>")};
  job.body = "patience pays\n";
  auto result = net::SendMail("127.0.0.1", *port, job);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  server.Stop();
  EXPECT_EQ(server.stats().mails_delivered.load(), 1u);
  EXPECT_EQ(server.stats().pregreet_rejects.load(), 1u);
  std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------
// Chaos tests: injected worker death, overload shedding, idle reaping
// and graceful drain — the failure modes a spam-facing server actually
// meets, exercised over real loopback TCP.
// ---------------------------------------------------------------------

namespace {

MailJob MakeJob(std::vector<std::string> rcpts, std::string body) {
  MailJob job;
  job.helo = "client.test";
  job.mail_from = *Path::Parse("<sender@remote.test>");
  for (const auto& rcpt : rcpts) {
    job.rcpts.push_back(*Path::Parse("<" + rcpt + ">"));
  }
  job.body = std::move(body);
  return job;
}

// Reads from `fd` until `token` appears, EOF, or the recv timeout.
std::string ReadUntil(int fd, const std::string& token) {
  std::string wire;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    wire.append(buf, static_cast<std::size_t>(n));
    if (wire.find(token) != std::string::npos) break;
  }
  return wire;
}

}  // namespace

TEST(ServerFaultTest, WorkerDeathRequeuesAndLosesNoAckedMail) {
  const std::string root = ::testing::TempDir() + "/srv_fault_workerdeath";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 3'000;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Kill exactly one smtpd: the first delegation its worker receives
  // aborts after the handoff, dropping the un-acked session and closing
  // the delegation channel the way a crashed process would.
  fault::ScopedArm arm(7);
  {
    fault::Policy p;
    p.max_triggers = 1;
    fault::Injector::Global().Set("mta.worker.after_recv", p);
  }

  int delivered = 0;
  int failed = 0;
  for (int i = 0; i < 4; ++i) {
    auto result = net::SendMail(
        "127.0.0.1", *port,
        MakeJob({"alice@dept.test"},
                            "survivor " + std::to_string(i) + "\n"));
    if (result.ok() && result->outcome == ClientOutcome::kDelivered) {
      ++delivered;
    } else {
      ++failed;  // the session the dead worker took: never acked
    }
  }
  // One session died un-acked with the worker; every later one was
  // requeued onto the surviving worker and acked.
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(server.stats().worker_deaths.load(), 1u);
  EXPECT_GE(server.stats().requeued_delegations.load(), 1u);

  server.Stop();
  // Zero accepted-and-acked mail lost, zero double delivery.
  auto mails = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  EXPECT_EQ(mails->size(), static_cast<std::size_t>(delivered));
  std::filesystem::remove_all(root);
}

TEST(ServerFaultTest, OverloadShedsWith421) {
  const std::string root = ::testing::TempDir() + "/srv_fault_overload";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.recv_timeout_ms = 3'000;
  cfg.max_inflight_sessions = 1;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Occupy the only session slot with a half-open dialog.
  auto holder = net::TcpConnect("127.0.0.1", *port);
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(net::SetRecvTimeout(holder->get(), 3'000).ok());
  ASSERT_NE(ReadUntil(holder->get(), "\r\n").substr(0, 4), "421 ");
  ASSERT_TRUE(EventuallyTrue([&] { return server.inflight() == 1; }));

  // The next client must be shed with 421, not queued and not served.
  {
    auto shed = net::TcpConnect("127.0.0.1", *port);
    ASSERT_TRUE(shed.ok());
    ASSERT_TRUE(net::SetRecvTimeout(shed->get(), 3'000).ok());
    const std::string wire = ReadUntil(shed->get(), "\r\n");
    EXPECT_EQ(wire.substr(0, 4), "421 ") << wire;
    EXPECT_NE(wire.find("overloaded"), std::string::npos) << wire;
  }
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().overload_sheds.load() == 1u; }));

  // Freeing the slot restores service.
  holder->Reset();
  ASSERT_TRUE(EventuallyTrue([&] { return server.inflight() == 0; }));
  auto result = net::SendMail("127.0.0.1", *port,
                              MakeJob({"alice@dept.test"},
                                                  "after the storm\n"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  server.Stop();
  std::filesystem::remove_all(root);
}

TEST(ServerFaultTest, IdleSessionsReapedWith421) {
  const std::string root = ::testing::TempDir() + "/srv_fault_idle";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.recv_timeout_ms = 3'000;
  cfg.master_idle_timeout_ms = 150;  // reaper ticks every ~37 ms
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // A slow-loris client: connects, reads the banner, then goes silent.
  // The master must evict it instead of holding the socket forever.
  auto fd = net::TcpConnect("127.0.0.1", *port);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 3'000).ok());
  std::string banner = ReadUntil(fd->get(), "\r\n");
  ASSERT_EQ(banner.substr(0, 4), "220 ") << banner;
  // Stay silent: the next bytes on the wire are the reaper's goodbye.
  const std::string goodbye = ReadUntil(fd->get(), "\r\n");
  EXPECT_EQ(goodbye.substr(0, 9), "421 4.4.2") << goodbye;
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().idle_reaped.load() == 1u; }));
  EXPECT_TRUE(EventuallyTrue([&] { return server.inflight() == 0; }));

  // A live client is untouched by the reaper.
  auto result = net::SendMail("127.0.0.1", *port,
                              MakeJob({"alice@dept.test"},
                                                  "prompt client\n"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  server.Stop();
  std::filesystem::remove_all(root);
}

TEST(ServerFaultTest, DrainFinishesInflightSessionsAndFlushes) {
  const std::string root = ::testing::TempDir() + "/srv_fault_drain";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  auto store = mfs::MakeMfsStore(root + "/store", {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 3'000;
  cfg.spool_dir = root + "/spool";
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Park a session mid-dialog, then start the drain: the listener must
  // close while the admitted session runs to completion inside the
  // grace period.
  auto fd = net::TcpConnect("127.0.0.1", *port);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 3'000).ok());
  ASSERT_EQ(ReadUntil(fd->get(), "\r\n").substr(0, 4), "220 ");
  ASSERT_TRUE(EventuallyTrue([&] { return server.inflight() == 1; }));

  std::thread drainer;
  int leftover = -1;
  drainer = std::thread([&] { leftover = server.Drain(/*grace_ms=*/5'000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // New clients are refused while the old session finishes normally.
  auto late = net::TcpConnect("127.0.0.1", *port);
  EXPECT_FALSE(late.ok());

  const std::string dialog =
      "HELO drain.test\r\n"
      "MAIL FROM:<s@x.test>\r\n"
      "RCPT TO:<alice@dept.test>\r\n"
      "DATA\r\n"
      "accepted during drain\r\n"
      ".\r\n"
      "QUIT\r\n";
  ASSERT_TRUE(util::WriteAll(fd->get(), dialog.data(), dialog.size()).ok());
  const std::string wire = ReadUntil(fd->get(), "221 ");
  EXPECT_NE(wire.find("250 Ok: queued"), std::string::npos) << wire;
  drainer.join();
  EXPECT_EQ(leftover, 0);

  // The acked mail reached its mailbox and the spool is empty: drain
  // flushed the queue before declaring the server stopped.
  auto mails = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_EQ((*mails)[0], "accepted during drain\r\n");
  EXPECT_TRUE(std::filesystem::is_empty(root + "/spool"));
  std::filesystem::remove_all(root);
}

TEST(SpoolModeTest, QueueManagerPathDeliversDurably) {
  const std::string root = ::testing::TempDir() + "/srv_spool";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  auto store = mfs::MakeMfsStore(root + "/store", {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 2'000;
  cfg.spool_dir = root + "/spool";
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.error().ToString();

  for (int i = 0; i < 5; ++i) {
    MailJob job;
    job.mail_from = *Path::Parse("<s@remote.test>");
    job.rcpts = {*Path::Parse("<alice@dept.test>")};
    job.body = "spooled " + std::to_string(i) + "\n";
    auto result = net::SendMail("127.0.0.1", *port, job);
    ASSERT_TRUE(result.ok()) << i;
    ASSERT_EQ(result->outcome, ClientOutcome::kDelivered) << i;
  }
  server.Stop();  // flushes the queue before returning
  auto mails = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 5u);
  EXPECT_EQ((*mails)[3], "spooled 3\r\n");
  // Spool fully drained.
  EXPECT_TRUE(std::filesystem::is_empty(root + "/spool"));
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace sams::mta
