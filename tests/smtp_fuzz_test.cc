// Robustness property tests: the server session must survive arbitrary
// byte streams without crashing, violating its state machine, or
// delivering mail that never completed a transaction — hostile input
// is the normal case for an MTA (§2: sendmail's history of parser
// CVEs motivated postfix's architecture in the first place).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "smtp/server_session.h"
#include "util/rng.h"

namespace sams::smtp {
namespace {

struct Harness {
  explicit Harness(SessionConfig cfg = {}) {
    ServerSession::Hooks hooks;
    hooks.send = [this](std::string bytes) { sent += bytes; return true; };
    hooks.validate_rcpt = [](const Address& addr) {
      return addr.local().starts_with("valid");
    };
    hooks.on_mail = [this](Envelope&& env) { mails.push_back(std::move(env)); };
    session = std::make_unique<ServerSession>(cfg, std::move(hooks), "1.2.3.4");
    session->Start();
  }

  std::string sent;
  std::vector<Envelope> mails;
  std::unique_ptr<ServerSession> session;
};

// Every emitted reply must be a well-formed SMTP reply line.
void ExpectWellFormedReplies(const std::string& wire) {
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t eol = wire.find("\r\n", pos);
    ASSERT_NE(eol, std::string::npos) << "reply without CRLF";
    const std::string line = wire.substr(pos, eol - pos);
    Reply reply;
    EXPECT_TRUE(ParseReply(line, &reply)) << "malformed reply: " << line;
    pos = eol + 2;
  }
}

class SmtpFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtpFuzzTest, RandomBytesNeverCrashOrDeliver) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Harness harness;
  for (int chunk = 0; chunk < 50; ++chunk) {
    std::string bytes;
    const int len = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    harness.session->Feed(bytes);
    if (harness.session->state() == SessionState::kClosed) break;
  }
  // Random bytes contain no valid MAIL/RCPT/DATA sequence with a
  // parseable address ending in a dot-terminator — no mail may appear.
  EXPECT_TRUE(harness.mails.empty());
  ExpectWellFormedReplies(harness.sent);
}

TEST_P(SmtpFuzzTest, RandomCommandSoupKeepsInvariants) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::vector<std::string> fragments = {
      "HELO x\r\n",
      "EHLO \r\n",
      "MAIL FROM:<valid.sender@x.test>\r\n",
      "MAIL FROM:garbage\r\n",
      "RCPT TO:<valid1@dept.test>\r\n",
      "RCPT TO:<invalid@dept.test>\r\n",
      "RCPT TO:<>\r\n",
      "DATA\r\n",
      "some body line\r\n",
      ".\r\n",
      "..stuffed\r\n",
      "RSET\r\n",
      "NOOP\r\n",
      "VRFY a\r\n",
      "BOGUS\r\n",
      "\r\n",
      "MAIL FROM:<>\r\n",
  };
  Harness harness;
  for (int step = 0; step < 300; ++step) {
    const auto& fragment = fragments[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(fragments.size()) - 1))];
    // Occasionally split a fragment across two Feed calls.
    if (fragment.size() > 2 && rng.Bernoulli(0.3)) {
      const std::size_t cut = static_cast<std::size_t>(
          rng.UniformInt(1, static_cast<std::int64_t>(fragment.size()) - 1));
      harness.session->Feed(fragment.substr(0, cut));
      harness.session->Feed(fragment.substr(cut));
    } else {
      harness.session->Feed(fragment);
    }
  }
  ExpectWellFormedReplies(harness.sent);
  // Invariant: every delivered envelope has >= 1 valid recipient and
  // every recipient passed validation.
  for (const Envelope& env : harness.mails) {
    ASSERT_FALSE(env.rcpt_to.empty());
    for (const Address& rcpt : env.rcpt_to) {
      EXPECT_TRUE(rcpt.local().starts_with("valid"));
    }
    EXPECT_EQ(env.client_ip, "1.2.3.4");
  }
  // Stats are consistent with observed deliveries.
  EXPECT_EQ(harness.session->stats().mails_delivered, harness.mails.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtpFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SmtpAbuseTest, HugeCommandLineBounded) {
  SessionConfig cfg;
  cfg.max_line_length = 512;
  Harness harness(cfg);
  harness.session->Feed(std::string(100'000, 'A'));  // no newline ever
  // The session must have rejected it rather than buffering forever.
  EXPECT_NE(harness.sent.find("500 "), std::string::npos);
}

TEST(SmtpAbuseTest, ObeysMaxRecipients) {
  SessionConfig cfg;
  cfg.max_recipients = 10;
  Harness harness(cfg);
  harness.session->Feed("HELO x\r\nMAIL FROM:<valid.s@x.test>\r\n");
  for (int i = 0; i < 200; ++i) {
    harness.session->Feed("RCPT TO:<valid" + std::to_string(i) +
                          "@dept.test>\r\n");
  }
  EXPECT_EQ(harness.session->rcpt_to().size(), 10u);
  EXPECT_NE(harness.sent.find("452 "), std::string::npos);
}

TEST(SmtpAbuseTest, OversizedBodyRejectedButSessionContinues) {
  SessionConfig cfg;
  cfg.max_message_bytes = 1'000;
  Harness harness(cfg);
  harness.session->Feed(
      "HELO x\r\nMAIL FROM:<valid.s@x.test>\r\nRCPT TO:<valid1@d.test>\r\n"
      "DATA\r\n");
  harness.session->Feed(std::string(100'000, 'B') + "\r\n.\r\n");
  EXPECT_TRUE(harness.mails.empty());
  EXPECT_NE(harness.sent.find("552 "), std::string::npos);
  // The connection is still usable for a correct transaction.
  harness.session->Feed(
      "MAIL FROM:<valid.s@x.test>\r\nRCPT TO:<valid1@d.test>\r\nDATA\r\n"
      "small\r\n.\r\n");
  EXPECT_EQ(harness.mails.size(), 1u);
}

TEST(SmtpAbuseTest, NulBytesInCommandsHandled) {
  Harness harness;
  std::string nul_line = "HELO x";
  nul_line.push_back('\0');
  nul_line += "y\r\n";
  harness.session->Feed(nul_line);
  harness.session->Feed("NOOP\r\n");
  EXPECT_NE(harness.sent.find("250 "), std::string::npos);
  ExpectWellFormedReplies(harness.sent);
}

}  // namespace
}  // namespace sams::smtp
