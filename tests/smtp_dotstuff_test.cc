#include "smtp/dotstuff.h"

#include <gtest/gtest.h>

namespace sams::smtp {
namespace {

TEST(DotStuffEncodeTest, SimpleBody) {
  EXPECT_EQ(DotStuffEncode("hello\nworld\n"), "hello\r\nworld\r\n.\r\n");
}

TEST(DotStuffEncodeTest, NormalizesCrlf) {
  EXPECT_EQ(DotStuffEncode("a\r\nb\n"), "a\r\nb\r\n.\r\n");
}

TEST(DotStuffEncodeTest, StuffsLeadingDots) {
  EXPECT_EQ(DotStuffEncode(".hidden\n..double\n"),
            "..hidden\r\n...double\r\n.\r\n");
}

TEST(DotStuffEncodeTest, LoneDotLineIsEscaped) {
  EXPECT_EQ(DotStuffEncode(".\n"), "..\r\n.\r\n");
}

TEST(DotStuffEncodeTest, EmptyBodyIsJustTerminator) {
  EXPECT_EQ(DotStuffEncode(""), ".\r\n");
}

TEST(DotStuffEncodeTest, UnterminatedLastLineGetsCrlf) {
  EXPECT_EQ(DotStuffEncode("no newline"), "no newline\r\n.\r\n");
}

TEST(DotStuffDecoderTest, DecodesSimpleMessage) {
  DotStuffDecoder dec;
  const auto r = dec.Feed("hello\r\nworld\r\n.\r\n");
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(dec.finished());
  EXPECT_EQ(dec.body(), "hello\r\nworld\r\n");
}

TEST(DotStuffDecoderTest, RemovesStuffing) {
  DotStuffDecoder dec;
  dec.Feed("..leading\r\n...two\r\n.\r\n");
  EXPECT_EQ(dec.body(), ".leading\r\n..two\r\n");
}

TEST(DotStuffDecoderTest, HandlesChunkedInput) {
  DotStuffDecoder dec;
  EXPECT_FALSE(dec.Feed("hel").finished);
  EXPECT_FALSE(dec.Feed("lo\r").finished);
  EXPECT_FALSE(dec.Feed("\nwor").finished);
  EXPECT_FALSE(dec.Feed("ld\r\n.").finished);
  EXPECT_TRUE(dec.Feed("\r\n").finished);
  EXPECT_EQ(dec.body(), "hello\r\nworld\r\n");
}

TEST(DotStuffDecoderTest, ReportsConsumedBytesAtTerminator) {
  DotStuffDecoder dec;
  const std::string wire = "body\r\n.\r\nQUIT\r\n";
  const auto r = dec.Feed(wire);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.consumed, 9u);  // up to and including ".\r\n"
  EXPECT_EQ(wire.substr(r.consumed), "QUIT\r\n");
}

TEST(DotStuffDecoderTest, NoFurtherConsumptionAfterFinish) {
  DotStuffDecoder dec;
  dec.Feed(".\r\n");
  const auto r = dec.Feed("more");
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.consumed, 0u);
}

TEST(DotStuffDecoderTest, BareLfTerminatorAccepted) {
  // Tolerate sloppy clients that send "\n.\n".
  DotStuffDecoder dec;
  const auto r = dec.Feed("line\n.\n");
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(dec.body(), "line\r\n");
}

TEST(DotStuffDecoderTest, ResetClearsState) {
  DotStuffDecoder dec;
  dec.Feed("x\r\n.\r\n");
  EXPECT_TRUE(dec.finished());
  dec.Reset();
  EXPECT_FALSE(dec.finished());
  EXPECT_EQ(dec.body(), "");
  dec.Feed("y\r\n.\r\n");
  EXPECT_EQ(dec.body(), "y\r\n");
}

TEST(DotStuffDecoderTest, TakeBodyMoves) {
  DotStuffDecoder dec;
  dec.Feed("abc\r\n.\r\n");
  EXPECT_EQ(dec.TakeBody(), "abc\r\n");
}

TEST(DotStuffRoundTripTest, EncodeDecodeIdentity) {
  const std::string bodies[] = {
      "",
      "simple\n",
      ".starts with dot\n",
      "multi\nline\n.\nwith dot line\n",
      "ends without newline",
      std::string(10000, 'x') + "\n.\n" + std::string(100, 'y') + "\n",
  };
  for (const std::string& body : bodies) {
    DotStuffDecoder dec;
    const auto r = dec.Feed(DotStuffEncode(body));
    EXPECT_TRUE(r.finished);
    // Decoder output uses CRLF endings; normalize the input likewise.
    std::string expected;
    std::size_t i = 0;
    while (i < body.size()) {
      std::size_t eol = body.find('\n', i);
      std::string_view line;
      if (eol == std::string::npos) {
        line = std::string_view(body).substr(i);
        i = body.size();
      } else {
        line = std::string_view(body).substr(i, eol - i);
        i = eol + 1;
      }
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      expected.append(line);
      expected.append("\r\n");
    }
    EXPECT_EQ(dec.body(), expected);
  }
}

TEST(DotStuffRoundTripTest, ByteAtATimeDecoding) {
  const std::string wire = DotStuffEncode("alpha\n.beta\ngamma\n");
  DotStuffDecoder dec;
  bool finished = false;
  for (char c : wire) {
    finished = dec.Feed(std::string_view(&c, 1)).finished;
  }
  EXPECT_TRUE(finished);
  EXPECT_EQ(dec.body(), "alpha\r\n.beta\r\ngamma\r\n");
}

}  // namespace
}  // namespace sams::smtp
