#include "smtp/dotstuff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace sams::smtp {
namespace {

TEST(DotStuffEncodeTest, SimpleBody) {
  EXPECT_EQ(DotStuffEncode("hello\nworld\n"), "hello\r\nworld\r\n.\r\n");
}

TEST(DotStuffEncodeTest, NormalizesCrlf) {
  EXPECT_EQ(DotStuffEncode("a\r\nb\n"), "a\r\nb\r\n.\r\n");
}

TEST(DotStuffEncodeTest, StuffsLeadingDots) {
  EXPECT_EQ(DotStuffEncode(".hidden\n..double\n"),
            "..hidden\r\n...double\r\n.\r\n");
}

TEST(DotStuffEncodeTest, LoneDotLineIsEscaped) {
  EXPECT_EQ(DotStuffEncode(".\n"), "..\r\n.\r\n");
}

TEST(DotStuffEncodeTest, EmptyBodyIsJustTerminator) {
  EXPECT_EQ(DotStuffEncode(""), ".\r\n");
}

TEST(DotStuffEncodeTest, UnterminatedLastLineGetsCrlf) {
  EXPECT_EQ(DotStuffEncode("no newline"), "no newline\r\n.\r\n");
}

TEST(DotStuffDecoderTest, DecodesSimpleMessage) {
  DotStuffDecoder dec;
  const auto r = dec.Feed("hello\r\nworld\r\n.\r\n");
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(dec.finished());
  EXPECT_EQ(dec.body(), "hello\r\nworld\r\n");
}

TEST(DotStuffDecoderTest, RemovesStuffing) {
  DotStuffDecoder dec;
  dec.Feed("..leading\r\n...two\r\n.\r\n");
  EXPECT_EQ(dec.body(), ".leading\r\n..two\r\n");
}

TEST(DotStuffDecoderTest, HandlesChunkedInput) {
  DotStuffDecoder dec;
  EXPECT_FALSE(dec.Feed("hel").finished);
  EXPECT_FALSE(dec.Feed("lo\r").finished);
  EXPECT_FALSE(dec.Feed("\nwor").finished);
  EXPECT_FALSE(dec.Feed("ld\r\n.").finished);
  EXPECT_TRUE(dec.Feed("\r\n").finished);
  EXPECT_EQ(dec.body(), "hello\r\nworld\r\n");
}

TEST(DotStuffDecoderTest, ReportsConsumedBytesAtTerminator) {
  DotStuffDecoder dec;
  const std::string wire = "body\r\n.\r\nQUIT\r\n";
  const auto r = dec.Feed(wire);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.consumed, 9u);  // up to and including ".\r\n"
  EXPECT_EQ(wire.substr(r.consumed), "QUIT\r\n");
}

TEST(DotStuffDecoderTest, NoFurtherConsumptionAfterFinish) {
  DotStuffDecoder dec;
  dec.Feed(".\r\n");
  const auto r = dec.Feed("more");
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.consumed, 0u);
}

TEST(DotStuffDecoderTest, BareLfTerminatorAccepted) {
  // Tolerate sloppy clients that send "\n.\n".
  DotStuffDecoder dec;
  const auto r = dec.Feed("line\n.\n");
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(dec.body(), "line\r\n");
}

TEST(DotStuffDecoderTest, ResetClearsState) {
  DotStuffDecoder dec;
  dec.Feed("x\r\n.\r\n");
  EXPECT_TRUE(dec.finished());
  dec.Reset();
  EXPECT_FALSE(dec.finished());
  EXPECT_EQ(dec.body(), "");
  dec.Feed("y\r\n.\r\n");
  EXPECT_EQ(dec.body(), "y\r\n");
}

TEST(DotStuffDecoderTest, TakeBodyMoves) {
  DotStuffDecoder dec;
  dec.Feed("abc\r\n.\r\n");
  EXPECT_EQ(dec.TakeBody(), "abc\r\n");
}

TEST(DotStuffRoundTripTest, EncodeDecodeIdentity) {
  const std::string bodies[] = {
      "",
      "simple\n",
      ".starts with dot\n",
      "multi\nline\n.\nwith dot line\n",
      "ends without newline",
      std::string(10000, 'x') + "\n.\n" + std::string(100, 'y') + "\n",
  };
  for (const std::string& body : bodies) {
    DotStuffDecoder dec;
    const auto r = dec.Feed(DotStuffEncode(body));
    EXPECT_TRUE(r.finished);
    // Decoder output uses CRLF endings; normalize the input likewise.
    std::string expected;
    std::size_t i = 0;
    while (i < body.size()) {
      std::size_t eol = body.find('\n', i);
      std::string_view line;
      if (eol == std::string::npos) {
        line = std::string_view(body).substr(i);
        i = body.size();
      } else {
        line = std::string_view(body).substr(i, eol - i);
        i = eol + 1;
      }
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      expected.append(line);
      expected.append("\r\n");
    }
    EXPECT_EQ(dec.body(), expected);
  }
}

TEST(DotStuffRoundTripTest, ByteAtATimeDecoding) {
  const std::string wire = DotStuffEncode("alpha\n.beta\ngamma\n");
  DotStuffDecoder dec;
  bool finished = false;
  for (char c : wire) {
    finished = dec.Feed(std::string_view(&c, 1)).finished;
  }
  EXPECT_TRUE(finished);
  EXPECT_EQ(dec.body(), "alpha\r\n.beta\r\ngamma\r\n");
}

// Split the wire stream into two chunks at EVERY byte offset — the
// terminator, stuffed dots, and CRLFs all land on chunk boundaries at
// some offset, and none of those splits may change the decoded body or
// how many trailing bytes are left unconsumed.
TEST(DotStuffChunkBoundaryTest, EverySplitOffsetDecodesIdentically) {
  const std::string body = "line one\r\n..\r\n.stuffed\r\n\r\nlast\r\n";
  const std::string trailer = "MAIL FROM:<next@pipelined.test>\r\n";
  const std::string wire = DotStuffEncode(body) + trailer;

  DotStuffDecoder reference;
  const auto ref = reference.Feed(wire);
  ASSERT_TRUE(ref.finished);
  const std::string want = reference.body();
  const std::size_t want_consumed = ref.consumed;
  ASSERT_EQ(wire.substr(want_consumed), trailer);

  for (std::size_t split = 0; split <= wire.size(); ++split) {
    DotStuffDecoder dec;
    const auto first = dec.Feed(std::string_view(wire).substr(0, split));
    std::size_t consumed = first.consumed;
    if (!first.finished) {
      ASSERT_EQ(first.consumed, split) << "split " << split;
      const auto second = dec.Feed(std::string_view(wire).substr(split));
      ASSERT_TRUE(second.finished) << "split " << split;
      consumed += second.consumed;
    }
    EXPECT_EQ(dec.body(), want) << "split " << split;
    EXPECT_EQ(consumed, want_consumed) << "split " << split;
  }
}

TEST(DotStuffChunkBoundaryTest, LoneDotLineMidBodyRoundTrips) {
  // A body line that IS "." must be stuffed on the wire and decoded
  // back — never mistaken for the terminator.
  const std::string body = "above\r\n.\r\nbelow\r\n";
  const std::string wire = DotStuffEncode(body);
  EXPECT_NE(wire.find("..\r\n"), std::string::npos);
  DotStuffDecoder dec;
  const auto r = dec.Feed(wire);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(dec.body(), body);
  EXPECT_EQ(r.consumed, wire.size());
}

TEST(DotStuffDecoderTest, LineOverflowLatchesAndParsingContinues) {
  DotStuffDecoder dec(16);
  dec.Feed(std::string(100, 'A'));  // newline-free torrent
  EXPECT_TRUE(dec.line_overflow());
  // The buffered partial line stays bounded by the cap.
  const auto r = dec.Feed("\r\nshort line\r\n.\r\n");
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(dec.line_overflow());
  // The oversized line's content is dropped; later lines still decode.
  EXPECT_EQ(dec.body(), "short line\r\n");
}

TEST(DotStuffDecoderTest, DecodedBytesMonotoneAcrossDiscardBody) {
  DotStuffDecoder dec;
  dec.Feed("aaaa\r\nbbbb\r\n");
  const std::uint64_t before = dec.decoded_bytes();
  EXPECT_EQ(before, 12u);
  dec.DiscardBody();
  EXPECT_TRUE(dec.body().empty());
  dec.Feed("cccc\r\n");
  EXPECT_GT(dec.decoded_bytes(), before);  // counting survives the drop
  const auto r = dec.Feed(".\r\n");
  EXPECT_TRUE(r.finished);
}

TEST(DotStuffDecoderTest, UncappedByDefault) {
  DotStuffDecoder dec;
  const std::string big(DotStuffDecoder::kDefaultMaxLineBytes * 2, 'x');
  const auto r = dec.Feed(big + "\r\n.\r\n");
  ASSERT_TRUE(r.finished);
  EXPECT_FALSE(dec.line_overflow());
  EXPECT_EQ(dec.body(), big + "\r\n");
}


// --- span mode (DESIGN.md §14) ----------------------------------------

// Reassembles a span-mode decode into a flat string, mimicking what
// BodyRope does: kChunk/kVolatile content is copied at callback time
// (the test chunk dies after Feed), kStatic appended directly.
std::string DecodeViaSpans(const std::string& wire,
                           const std::vector<std::size_t>& splits,
                           DotStuffDecoder* dec) {
  std::string assembled;
  dec->SetSpanSink([&assembled](std::string_view span,
                                DotStuffDecoder::SpanKind) {
    assembled.append(span);
  });
  std::size_t start = 0;
  for (const std::size_t cut : splits) {
    dec->Feed(wire.substr(start, cut - start));
    start = cut;
  }
  dec->Feed(wire.substr(start));
  return assembled;
}

TEST(DotStuffSpanTest, SpanModeMatchesByteModeOnEverySplitOffset) {
  // One wire with every seam that matters: dot-stuffing, a lone-dot
  // content line, an empty line, and CRLFs that any split can straddle.
  const std::string wire =
      "first\r\n..stuffed\r\n..\r\n\r\nlast line\r\n.\r\n";
  DotStuffDecoder reference;
  reference.Feed(wire);
  ASSERT_TRUE(reference.finished());
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    DotStuffDecoder dec;
    const std::string body = DecodeViaSpans(wire, {cut}, &dec);
    EXPECT_TRUE(dec.finished()) << "cut=" << cut;
    EXPECT_EQ(body, reference.body()) << "cut=" << cut;
    EXPECT_EQ(dec.decoded_bytes(), reference.decoded_bytes())
        << "cut=" << cut;
    EXPECT_TRUE(dec.body().empty()) << "span mode must not accumulate";
  }
}

TEST(DotStuffSpanTest, FuzzRandomBodiesAcrossRandomChunkSeams) {
  // Deterministic fuzz: random bodies (dot-heavy, CRLF-heavy, the
  // occasional near-cap line) encoded for the wire, then decoded twice
  // per trial — byte mode in one piece vs span mode over random splits.
  std::mt19937 rng(20260809);
  const char alphabet[] = ".x\r\no";
  for (int trial = 0; trial < 200; ++trial) {
    std::string body;
    const int lines = static_cast<int>(rng() % 8);
    for (int l = 0; l < lines; ++l) {
      const std::size_t len = rng() % 40;
      std::string line;
      for (std::size_t i = 0; i < len; ++i) {
        line += alphabet[rng() % (sizeof(alphabet) - 1)];
      }
      // Raw CR/LF inside a line would change framing; strip them so
      // the encoder's framing is the only framing.
      for (char& c : line) {
        if (c == '\r' || c == '\n') c = '.';
      }
      body += line;
      body += '\n';
    }
    const std::string wire = DotStuffEncode(body);

    DotStuffDecoder reference;
    const auto ref_result = reference.Feed(wire);
    ASSERT_TRUE(ref_result.finished) << "trial " << trial;

    std::vector<std::size_t> splits;
    const int n_splits = static_cast<int>(rng() % 6);
    for (int s = 0; s < n_splits; ++s) {
      splits.push_back(rng() % (wire.size() + 1));
    }
    std::sort(splits.begin(), splits.end());

    DotStuffDecoder dec;
    const std::string assembled = DecodeViaSpans(wire, splits, &dec);
    EXPECT_TRUE(dec.finished()) << "trial " << trial;
    EXPECT_EQ(assembled, reference.body()) << "trial " << trial;
    EXPECT_EQ(dec.decoded_bytes(), reference.decoded_bytes())
        << "trial " << trial;
  }
}

TEST(DotStuffSpanTest, CappedLinesAgreeBetweenModesAcrossSeams) {
  // Overflow accounting must match byte mode even when the oversized
  // line straddles chunk seams.
  const std::string big(300, 'y');
  const std::string wire = big + "\r\nok\r\n.\r\n";
  DotStuffDecoder reference(64);
  reference.Feed(wire);
  ASSERT_TRUE(reference.finished());
  ASSERT_TRUE(reference.line_overflow());
  for (const std::size_t cut : {std::size_t{1}, std::size_t{63},
                                std::size_t{64}, std::size_t{65},
                                std::size_t{200}, big.size() + 1}) {
    DotStuffDecoder dec(64);
    const std::string body = DecodeViaSpans(wire, {cut}, &dec);
    EXPECT_TRUE(dec.finished()) << "cut=" << cut;
    EXPECT_TRUE(dec.line_overflow()) << "cut=" << cut;
    EXPECT_EQ(body, reference.body()) << "cut=" << cut;
    EXPECT_EQ(dec.decoded_bytes(), reference.decoded_bytes())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace sams::smtp
