#include "smtp/dotstuff.h"

#include <gtest/gtest.h>

namespace sams::smtp {
namespace {

TEST(DotStuffEncodeTest, SimpleBody) {
  EXPECT_EQ(DotStuffEncode("hello\nworld\n"), "hello\r\nworld\r\n.\r\n");
}

TEST(DotStuffEncodeTest, NormalizesCrlf) {
  EXPECT_EQ(DotStuffEncode("a\r\nb\n"), "a\r\nb\r\n.\r\n");
}

TEST(DotStuffEncodeTest, StuffsLeadingDots) {
  EXPECT_EQ(DotStuffEncode(".hidden\n..double\n"),
            "..hidden\r\n...double\r\n.\r\n");
}

TEST(DotStuffEncodeTest, LoneDotLineIsEscaped) {
  EXPECT_EQ(DotStuffEncode(".\n"), "..\r\n.\r\n");
}

TEST(DotStuffEncodeTest, EmptyBodyIsJustTerminator) {
  EXPECT_EQ(DotStuffEncode(""), ".\r\n");
}

TEST(DotStuffEncodeTest, UnterminatedLastLineGetsCrlf) {
  EXPECT_EQ(DotStuffEncode("no newline"), "no newline\r\n.\r\n");
}

TEST(DotStuffDecoderTest, DecodesSimpleMessage) {
  DotStuffDecoder dec;
  const auto r = dec.Feed("hello\r\nworld\r\n.\r\n");
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(dec.finished());
  EXPECT_EQ(dec.body(), "hello\r\nworld\r\n");
}

TEST(DotStuffDecoderTest, RemovesStuffing) {
  DotStuffDecoder dec;
  dec.Feed("..leading\r\n...two\r\n.\r\n");
  EXPECT_EQ(dec.body(), ".leading\r\n..two\r\n");
}

TEST(DotStuffDecoderTest, HandlesChunkedInput) {
  DotStuffDecoder dec;
  EXPECT_FALSE(dec.Feed("hel").finished);
  EXPECT_FALSE(dec.Feed("lo\r").finished);
  EXPECT_FALSE(dec.Feed("\nwor").finished);
  EXPECT_FALSE(dec.Feed("ld\r\n.").finished);
  EXPECT_TRUE(dec.Feed("\r\n").finished);
  EXPECT_EQ(dec.body(), "hello\r\nworld\r\n");
}

TEST(DotStuffDecoderTest, ReportsConsumedBytesAtTerminator) {
  DotStuffDecoder dec;
  const std::string wire = "body\r\n.\r\nQUIT\r\n";
  const auto r = dec.Feed(wire);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.consumed, 9u);  // up to and including ".\r\n"
  EXPECT_EQ(wire.substr(r.consumed), "QUIT\r\n");
}

TEST(DotStuffDecoderTest, NoFurtherConsumptionAfterFinish) {
  DotStuffDecoder dec;
  dec.Feed(".\r\n");
  const auto r = dec.Feed("more");
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.consumed, 0u);
}

TEST(DotStuffDecoderTest, BareLfTerminatorAccepted) {
  // Tolerate sloppy clients that send "\n.\n".
  DotStuffDecoder dec;
  const auto r = dec.Feed("line\n.\n");
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(dec.body(), "line\r\n");
}

TEST(DotStuffDecoderTest, ResetClearsState) {
  DotStuffDecoder dec;
  dec.Feed("x\r\n.\r\n");
  EXPECT_TRUE(dec.finished());
  dec.Reset();
  EXPECT_FALSE(dec.finished());
  EXPECT_EQ(dec.body(), "");
  dec.Feed("y\r\n.\r\n");
  EXPECT_EQ(dec.body(), "y\r\n");
}

TEST(DotStuffDecoderTest, TakeBodyMoves) {
  DotStuffDecoder dec;
  dec.Feed("abc\r\n.\r\n");
  EXPECT_EQ(dec.TakeBody(), "abc\r\n");
}

TEST(DotStuffRoundTripTest, EncodeDecodeIdentity) {
  const std::string bodies[] = {
      "",
      "simple\n",
      ".starts with dot\n",
      "multi\nline\n.\nwith dot line\n",
      "ends without newline",
      std::string(10000, 'x') + "\n.\n" + std::string(100, 'y') + "\n",
  };
  for (const std::string& body : bodies) {
    DotStuffDecoder dec;
    const auto r = dec.Feed(DotStuffEncode(body));
    EXPECT_TRUE(r.finished);
    // Decoder output uses CRLF endings; normalize the input likewise.
    std::string expected;
    std::size_t i = 0;
    while (i < body.size()) {
      std::size_t eol = body.find('\n', i);
      std::string_view line;
      if (eol == std::string::npos) {
        line = std::string_view(body).substr(i);
        i = body.size();
      } else {
        line = std::string_view(body).substr(i, eol - i);
        i = eol + 1;
      }
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      expected.append(line);
      expected.append("\r\n");
    }
    EXPECT_EQ(dec.body(), expected);
  }
}

TEST(DotStuffRoundTripTest, ByteAtATimeDecoding) {
  const std::string wire = DotStuffEncode("alpha\n.beta\ngamma\n");
  DotStuffDecoder dec;
  bool finished = false;
  for (char c : wire) {
    finished = dec.Feed(std::string_view(&c, 1)).finished;
  }
  EXPECT_TRUE(finished);
  EXPECT_EQ(dec.body(), "alpha\r\n.beta\r\ngamma\r\n");
}

// Split the wire stream into two chunks at EVERY byte offset — the
// terminator, stuffed dots, and CRLFs all land on chunk boundaries at
// some offset, and none of those splits may change the decoded body or
// how many trailing bytes are left unconsumed.
TEST(DotStuffChunkBoundaryTest, EverySplitOffsetDecodesIdentically) {
  const std::string body = "line one\r\n..\r\n.stuffed\r\n\r\nlast\r\n";
  const std::string trailer = "MAIL FROM:<next@pipelined.test>\r\n";
  const std::string wire = DotStuffEncode(body) + trailer;

  DotStuffDecoder reference;
  const auto ref = reference.Feed(wire);
  ASSERT_TRUE(ref.finished);
  const std::string want = reference.body();
  const std::size_t want_consumed = ref.consumed;
  ASSERT_EQ(wire.substr(want_consumed), trailer);

  for (std::size_t split = 0; split <= wire.size(); ++split) {
    DotStuffDecoder dec;
    const auto first = dec.Feed(std::string_view(wire).substr(0, split));
    std::size_t consumed = first.consumed;
    if (!first.finished) {
      ASSERT_EQ(first.consumed, split) << "split " << split;
      const auto second = dec.Feed(std::string_view(wire).substr(split));
      ASSERT_TRUE(second.finished) << "split " << split;
      consumed += second.consumed;
    }
    EXPECT_EQ(dec.body(), want) << "split " << split;
    EXPECT_EQ(consumed, want_consumed) << "split " << split;
  }
}

TEST(DotStuffChunkBoundaryTest, LoneDotLineMidBodyRoundTrips) {
  // A body line that IS "." must be stuffed on the wire and decoded
  // back — never mistaken for the terminator.
  const std::string body = "above\r\n.\r\nbelow\r\n";
  const std::string wire = DotStuffEncode(body);
  EXPECT_NE(wire.find("..\r\n"), std::string::npos);
  DotStuffDecoder dec;
  const auto r = dec.Feed(wire);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(dec.body(), body);
  EXPECT_EQ(r.consumed, wire.size());
}

TEST(DotStuffDecoderTest, LineOverflowLatchesAndParsingContinues) {
  DotStuffDecoder dec(16);
  dec.Feed(std::string(100, 'A'));  // newline-free torrent
  EXPECT_TRUE(dec.line_overflow());
  // The buffered partial line stays bounded by the cap.
  const auto r = dec.Feed("\r\nshort line\r\n.\r\n");
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(dec.line_overflow());
  // The oversized line's content is dropped; later lines still decode.
  EXPECT_EQ(dec.body(), "short line\r\n");
}

TEST(DotStuffDecoderTest, DecodedBytesMonotoneAcrossDiscardBody) {
  DotStuffDecoder dec;
  dec.Feed("aaaa\r\nbbbb\r\n");
  const std::uint64_t before = dec.decoded_bytes();
  EXPECT_EQ(before, 12u);
  dec.DiscardBody();
  EXPECT_TRUE(dec.body().empty());
  dec.Feed("cccc\r\n");
  EXPECT_GT(dec.decoded_bytes(), before);  // counting survives the drop
  const auto r = dec.Feed(".\r\n");
  EXPECT_TRUE(r.finished);
}

TEST(DotStuffDecoderTest, UncappedByDefault) {
  DotStuffDecoder dec;
  const std::string big(DotStuffDecoder::kDefaultMaxLineBytes * 2, 'x');
  const auto r = dec.Feed(big + "\r\n.\r\n");
  ASSERT_TRUE(r.finished);
  EXPECT_FALSE(dec.line_overflow());
  EXPECT_EQ(dec.body(), big + "\r\n");
}

}  // namespace
}  // namespace sams::smtp
