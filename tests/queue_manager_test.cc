// Queue-manager tests: durable enqueue, delivery, deferral with
// backoff, drop-after-max-attempts, and crash recovery from the spool.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "mta/queue_manager.h"

namespace sams::mta {
namespace {

smtp::Envelope MakeEnvelope(std::vector<std::string> rcpts,
                            std::string body = "queued body\n") {
  smtp::Envelope envelope;
  envelope.client_ip = "192.0.2.1";
  envelope.helo = "client.test";
  envelope.mail_from = *smtp::Path::Parse("<s@remote.test>");
  for (const auto& rcpt : rcpts) {
    envelope.rcpt_to.push_back(*smtp::Address::Parse(rcpt));
  }
  envelope.body = std::move(body);
  return envelope;
}

// A store wrapper that fails the first `fail_count` deliveries.
class FlakyStore final : public mfs::MailStore {
 public:
  FlakyStore(mfs::MailStore& inner, int fail_count)
      : MailStore(mfs::StoreOptions{}), inner_(inner),
        failures_left_(fail_count) {}
  ~FlakyStore() override { StopCommitter(); }

  std::string_view name() const override { return "flaky"; }

  util::Error DoDeliver(const mfs::MailId& id, std::string_view body,
                        std::span<const std::string> mailboxes) override {
    ++attempts_;
    if (failures_left_ > 0) {
      --failures_left_;
      return util::Unavailable("injected failure");
    }
    return inner_.Deliver(id, body, mailboxes);
  }

  util::Result<int> SyncDirty() override { return 0; }

  util::Result<std::vector<std::string>> ReadMailbox(
      const std::string& mailbox) override {
    return inner_.ReadMailbox(mailbox);
  }

  util::Error Sync() override { return inner_.Sync(); }

  int attempts() const { return attempts_; }

 private:
  mfs::MailStore& inner_;
  std::atomic<int> failures_left_;
  std::atomic<int> attempts_{0};
};

class QueueManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/qmgr_" + tag;
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
    auto store = mfs::MakeMfsStore(root_ + "/store", {});
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  QueueConfig Config() {
    QueueConfig cfg;
    cfg.spool_dir = root_ + "/spool";
    cfg.base_retry_ms = 20;  // fast retries for tests
    return cfg;
  }

  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
};

TEST_F(QueueManagerTest, EnqueueDeliversToStore) {
  QueueManager manager(Config(), *store_);
  ASSERT_TRUE(manager.Start().ok());
  ASSERT_TRUE(manager.Enqueue(MakeEnvelope({"alice@d.test", "bob@d.test"})).ok());
  manager.Flush();
  EXPECT_EQ(manager.stats().delivered.load(), 1u);
  EXPECT_EQ(manager.depth(), 0u);
  manager.Stop();
  auto alice = store_->ReadMailbox("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_EQ(alice->size(), 1u);
  EXPECT_EQ((*alice)[0], "queued body\n");
  EXPECT_EQ(store_->ReadMailbox("bob")->size(), 1u);
  // The spool entry was reclaimed after delivery.
  EXPECT_TRUE(std::filesystem::is_empty(root_ + "/spool"));
}

TEST_F(QueueManagerTest, ManyMailsInOrder) {
  QueueManager manager(Config(), *store_);
  ASSERT_TRUE(manager.Start().ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(manager
                    .Enqueue(MakeEnvelope({"alice@d.test"},
                                          "mail " + std::to_string(i) + "\n"))
                    .ok());
  }
  manager.Flush();
  manager.Stop();
  auto mails = store_->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 25u);
  EXPECT_EQ((*mails)[13], "mail 13\n");
}

TEST_F(QueueManagerTest, TransientFailureDefersThenDelivers) {
  FlakyStore flaky(*store_, 2);
  QueueManager manager(Config(), flaky);
  ASSERT_TRUE(manager.Start().ok());
  ASSERT_TRUE(manager.Enqueue(MakeEnvelope({"alice@d.test"})).ok());
  manager.Flush();
  manager.Stop();
  EXPECT_EQ(manager.stats().delivered.load(), 1u);
  EXPECT_EQ(manager.stats().deferrals.load(), 2u);
  EXPECT_EQ(manager.stats().failed.load(), 0u);
  EXPECT_EQ(flaky.attempts(), 3);
  EXPECT_EQ(store_->ReadMailbox("alice")->size(), 1u);
}

TEST_F(QueueManagerTest, DropsAfterMaxAttempts) {
  FlakyStore flaky(*store_, 1'000);  // never succeeds
  QueueConfig cfg = Config();
  cfg.max_attempts = 3;
  QueueManager manager(cfg, flaky);
  ASSERT_TRUE(manager.Start().ok());
  ASSERT_TRUE(manager.Enqueue(MakeEnvelope({"alice@d.test"})).ok());
  manager.Flush();
  manager.Stop();
  EXPECT_EQ(manager.stats().failed.load(), 1u);
  EXPECT_EQ(manager.stats().delivered.load(), 0u);
  EXPECT_EQ(flaky.attempts(), 3);
  EXPECT_TRUE(std::filesystem::is_empty(root_ + "/spool"));
}

TEST_F(QueueManagerTest, CrashRecoveryReplaysSpool) {
  // Accept mail with delivery permanently failing, stop (simulating a
  // crash with mail still spooled)...
  {
    FlakyStore never(*store_, 1'000);
    QueueConfig cfg = Config();
    cfg.max_attempts = 1'000;
    cfg.base_retry_ms = 100'000;  // effectively: stuck in deferred
    QueueManager manager(cfg, never);
    ASSERT_TRUE(manager.Start().ok());
    ASSERT_TRUE(manager.Enqueue(MakeEnvelope({"alice@d.test"}, "survivor\n"))
                    .ok());
    ASSERT_TRUE(manager.Enqueue(MakeEnvelope({"bob@d.test"}, "second\n")).ok());
    // Give the thread a chance to attempt (and defer) at least one.
    for (int i = 0; i < 100 && never.attempts() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    manager.Stop();  // "crash": spool files remain
  }
  EXPECT_FALSE(std::filesystem::is_empty(root_ + "/spool"));

  // ...then restart with a healthy store: the mail must be recovered
  // and delivered.
  QueueManager manager(Config(), *store_);
  ASSERT_TRUE(manager.Start().ok());
  EXPECT_EQ(manager.stats().recovered.load(), 2u);
  manager.Flush();
  manager.Stop();
  EXPECT_EQ(manager.stats().delivered.load(), 2u);
  auto alice = store_->ReadMailbox("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_EQ(alice->size(), 1u);
  EXPECT_EQ((*alice)[0], "survivor\n");
  EXPECT_EQ(store_->ReadMailbox("bob")->size(), 1u);
}

TEST_F(QueueManagerTest, CorruptSpoolFileSkipped) {
  std::filesystem::create_directories(root_ + "/spool");
  {
    std::ofstream junk(root_ + "/spool/inc-0000000000-BADBADBAD");
    junk << "not a spool file";
  }
  QueueManager manager(Config(), *store_);
  ASSERT_TRUE(manager.Start().ok());
  EXPECT_EQ(manager.stats().recovered.load(), 0u);
  manager.Stop();
  EXPECT_TRUE(std::filesystem::is_empty(root_ + "/spool"));
}

TEST_F(QueueManagerTest, RejectsEnvelopeWithoutRecipients) {
  QueueManager manager(Config(), *store_);
  ASSERT_TRUE(manager.Start().ok());
  smtp::Envelope empty;
  empty.body = "x";
  EXPECT_EQ(manager.Enqueue(empty).code(), util::ErrorCode::kInvalidArgument);
  manager.Stop();
}

TEST_F(QueueManagerTest, ConcurrentEnqueuers) {
  QueueManager manager(Config(), *store_);
  ASSERT_TRUE(manager.Start().ok());
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&manager, t] {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(manager
                        .Enqueue(MakeEnvelope(
                            {"alice@d.test"},
                            "t" + std::to_string(t) + "-" + std::to_string(i)))
                        .ok());
      }
    });
  }
  for (auto& producer : producers) producer.join();
  manager.Flush();
  manager.Stop();
  EXPECT_EQ(manager.stats().delivered.load(), 40u);
  EXPECT_EQ(store_->ReadMailbox("alice")->size(), 40u);
}

}  // namespace
}  // namespace sams::mta
