// sams::fault — the deterministic fault-injection registry itself.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/result.h"
#include "util/time.h"

namespace sams::fault {
namespace {

util::Error Guarded() {
  SAMS_FAULT_POINT("test.guarded.site");
  return util::OkError();
}

util::Result<int> GuardedValue() {
  SAMS_FAULT_POINT("test.guarded.value");
  return 42;
}

TEST(FaultInjectorTest, DisarmedIsInvisible) {
  // Default state: every point is a no-op and nothing is counted.
  EXPECT_FALSE(Injector::ArmedFast());
  EXPECT_TRUE(Guarded().ok());
  EXPECT_EQ(Injector::Global().hits("test.guarded.site"), 0u);
}

TEST(FaultInjectorTest, ArmedCountsHitsEvenWithoutPolicy) {
  ScopedArm arm(7);
  EXPECT_TRUE(Guarded().ok());
  EXPECT_TRUE(Guarded().ok());
  EXPECT_EQ(Injector::Global().hits("test.guarded.site"), 2u);
  EXPECT_EQ(Injector::Global().triggers("test.guarded.site"), 0u);
}

TEST(FaultInjectorTest, ErrorPolicyReturnsConfiguredError) {
  ScopedArm arm(7);
  Policy p;
  p.action = Action::kError;
  p.code = util::ErrorCode::kIoError;
  p.message = "disk on fire";
  Injector::Global().Set("test.guarded.site", p);
  const util::Error err = Guarded();
  EXPECT_EQ(err.code(), util::ErrorCode::kIoError);
  EXPECT_NE(err.message().find("disk on fire"), std::string::npos);
  EXPECT_NE(err.message().find("test.guarded.site"), std::string::npos);
}

TEST(FaultInjectorTest, WorksInResultReturningFunctions) {
  ScopedArm arm(7);
  Injector::Global().Set("test.guarded.value", Policy{});
  auto r = GuardedValue();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kUnavailable);
  Injector::Global().Clear("test.guarded.value");
  auto ok = GuardedValue();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
}

TEST(FaultInjectorTest, SkipLetsEarlyHitsPass) {
  ScopedArm arm(7);
  Policy p;
  p.skip = 2;
  Injector::Global().Set("test.guarded.site", p);
  EXPECT_TRUE(Guarded().ok());
  EXPECT_TRUE(Guarded().ok());
  EXPECT_FALSE(Guarded().ok());
  EXPECT_EQ(Injector::Global().triggers("test.guarded.site"), 1u);
}

TEST(FaultInjectorTest, MaxTriggersBoundsTheDamage) {
  ScopedArm arm(7);
  Policy p;
  p.max_triggers = 2;
  Injector::Global().Set("test.guarded.site", p);
  EXPECT_FALSE(Guarded().ok());
  EXPECT_FALSE(Guarded().ok());
  EXPECT_TRUE(Guarded().ok());  // budget spent
  EXPECT_EQ(Injector::Global().triggers("test.guarded.site"), 2u);
}

TEST(FaultInjectorTest, CrashIsOneShot) {
  ScopedArm arm(7);
  Policy p;
  p.action = Action::kCrash;
  p.max_triggers = 99;  // forced back to 1 by Set()
  Injector::Global().Set("test.guarded.site", p);
  const util::Error err = Guarded();
  EXPECT_EQ(err.code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(err.message().find("simulated crash"), std::string::npos);
  EXPECT_TRUE(Guarded().ok());  // the process "restarted"
}

TEST(FaultInjectorTest, ProbabilisticTriggersAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    ScopedArm arm(seed);
    Policy p;
    p.probability = 0.3;
    Injector::Global().Set("test.guarded.site", p);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!Guarded().ok());
    return fired;
  };
  const auto a = run(1234);
  const auto b = run(1234);
  const auto c = run(5678);
  EXPECT_EQ(a, b);  // same seed -> identical fault sequence
  EXPECT_NE(a, c);  // different seed -> (overwhelmingly) different
  // Roughly 30% of hits should fire — sanity band, not a sharp bound.
  const int fired_a = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_a, 5);
  EXPECT_LT(fired_a, 40);
}

TEST(FaultInjectorTest, DelayPolicySleepsButSucceeds) {
  ScopedArm arm(7);
  Policy p;
  p.action = Action::kDelay;
  p.delay_ms = 20;
  Injector::Global().Set("test.guarded.site", p);
  const std::int64_t before = util::MonotonicNanos();
  EXPECT_TRUE(Guarded().ok());
  const std::int64_t elapsed = util::MonotonicNanos() - before;
  EXPECT_GE(elapsed, 15'000'000);  // ~20ms, scheduler slack allowed
}

TEST(FaultInjectorTest, DisarmClearsEverything) {
  {
    ScopedArm arm(7);
    Injector::Global().Set("test.guarded.site", Policy{});
    EXPECT_FALSE(Guarded().ok());
  }
  // ScopedArm's destructor disarmed: no policy, no counters, no cost.
  EXPECT_FALSE(Injector::ArmedFast());
  EXPECT_TRUE(Guarded().ok());
  EXPECT_EQ(Injector::Global().hits("test.guarded.site"), 0u);
}

TEST(FaultInjectorTest, TriggersExportedThroughMetricsRegistry) {
  obs::Registry registry;
  Injector::Global().BindMetrics(registry);
  {
    ScopedArm arm(7);
    Injector::Global().Set("test.guarded.site", Policy{});
    (void)Guarded();
    (void)Guarded();
  }
  const std::string text = obs::PrometheusText(registry);
  EXPECT_NE(text.find("sams_fault_triggers_total"), std::string::npos);
  EXPECT_NE(text.find("test.guarded.site"), std::string::npos);
}

TEST(FaultInjectorTest, DisabledHotPathIsOneRelaxedLoad) {
  // The acceptance bar for "no measurable overhead while disarmed": the
  // guard must not take locks or touch the map. We pin the observable
  // contract — disarmed hits never reach the registry (zero recorded
  // hits) — and time a burst as a coarse regression tripwire.
  ASSERT_FALSE(Injector::ArmedFast());
  constexpr int kBurst = 1'000'000;
  const std::int64_t before = util::MonotonicNanos();
  for (int i = 0; i < kBurst; ++i) {
    (void)SAMS_FAULT_ERROR("test.hotpath.site");
  }
  const std::int64_t elapsed = util::MonotonicNanos() - before;
  EXPECT_EQ(Injector::Global().hits("test.hotpath.site"), 0u);
  // 1M disarmed checks in well under 100ms even on a loaded CI box
  // (measured ~1-2ms); a mutex in the path would blow through this.
  EXPECT_LT(elapsed, 100'000'000) << "disarmed fault point got expensive";
}

}  // namespace
}  // namespace sams::fault
