// Failure-injection tests for MFS: on-disk corruption must be detected
// at open or by fsck — never silently served as mail content.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>

#include "mfs/volume.h"
#include "util/rng.h"

namespace sams::mfs {
namespace {

class MfsCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/mfs_corrupt_" + tag;
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  // Creates a volume with one private and one shared mail, then closes.
  void Populate() {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto alice = (*volume)->MailOpen("alice");
    auto bob = (*volume)->MailOpen("bob");
    MailFile* only_alice[] = {alice->get()};
    ASSERT_TRUE(
        (*volume)->MailNWrite(only_alice, "private body", Id()).ok());
    MailFile* both[] = {alice->get(), bob->get()};
    ASSERT_TRUE((*volume)->MailNWrite(both, "shared body", Id()).ok());
    ASSERT_TRUE((*volume)->SyncAll().ok());
  }

  MailId Id() { return MailId::Generate(rng_); }

  // Overwrites `count` bytes at `offset` in `path` with 0xFF.
  void Smash(const std::string& path, off_t offset, std::size_t count) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0) << path;
    std::string junk(count, '\xff');
    ASSERT_EQ(::pwrite(fd, junk.data(), junk.size(), offset),
              static_cast<ssize_t>(count));
    ::close(fd);
  }

  std::string root_;
  util::Rng rng_{77};
};

TEST_F(MfsCorruptionTest, TruncatedKeyFileDetectedAtOpen) {
  Populate();
  std::filesystem::resize_file(
      root_ + "/boxes/alice.key",
      std::filesystem::file_size(root_ + "/boxes/alice.key") - 5);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());  // volume opens; the box fails on access
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code(), util::ErrorCode::kCorruption);
}

TEST_F(MfsCorruptionTest, SmashedMailIdDetected) {
  Populate();
  // The id occupies the first 32 bytes of each key record; 0xFF bytes
  // are not printable ASCII, so decoding fails.
  Smash(root_ + "/boxes/alice.key", 0, 8);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code(), util::ErrorCode::kCorruption);
}

TEST_F(MfsCorruptionTest, TruncatedDataFileCaughtByFsckOrRead) {
  Populate();
  std::filesystem::resize_file(root_ + "/boxes/alice.dat", 2);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());  // unreadable record flagged
  // Reading the private mail fails cleanly; the shared mail (stored in
  // shared.dat) remains readable.
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_TRUE(handle.ok());
  auto first = (*volume)->MailRead(**handle);
  EXPECT_FALSE(first.ok());
}

TEST_F(MfsCorruptionTest, SmashedSharedDataLengthDetected) {
  Populate();
  // Corrupt the length prefix of the shared record: read must fail
  // with corruption, not return garbage.
  Smash(root_ + "/shared.dat", 0, 4);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto handle = (*volume)->MailOpen("bob");
  ASSERT_TRUE(handle.ok());
  auto mail = (*volume)->MailRead(**handle);
  ASSERT_FALSE(mail.ok());
  EXPECT_TRUE(mail.error().code() == util::ErrorCode::kCorruption ||
              mail.error().code() == util::ErrorCode::kOutOfRange)
      << mail.error().ToString();
}

TEST_F(MfsCorruptionTest, FsckFlagsRefcountMismatch) {
  Populate();
  {
    // Manually lower the shared record's refcount from 2 to 1 while
    // both redirects still exist.
    auto key = KeyFile::Open(root_ + "/shared.key");
    ASSERT_TRUE(key.ok());
    ASSERT_EQ(key->size(), 1u);
    ASSERT_TRUE(key->SetRefcount(0, 1).ok());
  }
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Fsck();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());
  EXPECT_NE(report->errors[0].find("refcount"), std::string::npos);
}

TEST_F(MfsCorruptionTest, FsckFlagsDanglingRedirect) {
  Populate();
  {
    // Tombstone the shared record while redirects still point at it.
    auto key = KeyFile::Open(root_ + "/shared.key");
    ASSERT_TRUE(key.ok());
    ASSERT_TRUE(key->SetRefcount(0, 0).ok());
  }
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Fsck();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());
  bool dangling = false;
  for (const auto& error : report->errors) {
    if (error.find("dangling redirect") != std::string::npos) dangling = true;
  }
  EXPECT_TRUE(dangling);
}

TEST_F(MfsCorruptionTest, CleanVolumeStaysCleanAcrossManyReopens) {
  Populate();
  for (int i = 0; i < 5; ++i) {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto report = (*volume)->Fsck();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok());
    auto mails = (*volume)->MailCount("alice");
    ASSERT_TRUE(mails.ok());
    EXPECT_EQ(*mails, 2u);
  }
}

}  // namespace
}  // namespace sams::mfs
