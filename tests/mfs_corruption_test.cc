// Failure-injection tests for MFS: on-disk corruption must be detected
// at open or by fsck — never silently served as mail content, and a
// crash torn mid-nwrite/mid-delete must be rolled back by Recover()
// without losing acked mail or delivering anything twice.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "mfs/volume.h"
#include "util/rng.h"

namespace sams::mfs {
namespace {

class MfsCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/mfs_corrupt_" + tag;
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  // Creates a volume with one private and one shared mail, then closes.
  void Populate() {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto alice = (*volume)->MailOpen("alice");
    auto bob = (*volume)->MailOpen("bob");
    MailFile* only_alice[] = {alice->get()};
    ASSERT_TRUE(
        (*volume)->MailNWrite(only_alice, "private body", Id()).ok());
    MailFile* both[] = {alice->get(), bob->get()};
    ASSERT_TRUE((*volume)->MailNWrite(both, "shared body", Id()).ok());
    ASSERT_TRUE((*volume)->SyncAll().ok());
  }

  MailId Id() { return MailId::Generate(rng_); }

  // Overwrites `count` bytes at `offset` in `path` with 0xFF.
  void Smash(const std::string& path, off_t offset, std::size_t count) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0) << path;
    std::string junk(count, '\xff');
    ASSERT_EQ(::pwrite(fd, junk.data(), junk.size(), offset),
              static_cast<ssize_t>(count));
    ::close(fd);
  }

  std::string root_;
  util::Rng rng_{77};
};

TEST_F(MfsCorruptionTest, TruncatedKeyFileDetectedAtOpen) {
  Populate();
  std::filesystem::resize_file(
      root_ + "/boxes/alice.key",
      std::filesystem::file_size(root_ + "/boxes/alice.key") - 5);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());  // volume opens; the box fails on access
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code(), util::ErrorCode::kCorruption);
}

TEST_F(MfsCorruptionTest, SmashedMailIdDetected) {
  Populate();
  // The id occupies the first 32 bytes of each key record; 0xFF bytes
  // are not printable ASCII, so decoding fails.
  Smash(root_ + "/boxes/alice.key", 0, 8);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code(), util::ErrorCode::kCorruption);
}

TEST_F(MfsCorruptionTest, TruncatedDataFileCaughtByFsckOrRead) {
  Populate();
  std::filesystem::resize_file(root_ + "/boxes/alice.dat", 2);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());  // unreadable record flagged
  // Reading the private mail fails cleanly; the shared mail (stored in
  // shared.dat) remains readable.
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_TRUE(handle.ok());
  auto first = (*volume)->MailRead(**handle);
  EXPECT_FALSE(first.ok());
}

TEST_F(MfsCorruptionTest, SmashedSharedDataLengthDetected) {
  Populate();
  // Corrupt the length prefix of the shared record: read must fail
  // with corruption, not return garbage.
  Smash(root_ + "/shared.dat", 0, 4);
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto handle = (*volume)->MailOpen("bob");
  ASSERT_TRUE(handle.ok());
  auto mail = (*volume)->MailRead(**handle);
  ASSERT_FALSE(mail.ok());
  EXPECT_TRUE(mail.error().code() == util::ErrorCode::kCorruption ||
              mail.error().code() == util::ErrorCode::kOutOfRange)
      << mail.error().ToString();
}

TEST_F(MfsCorruptionTest, FsckFlagsRefcountMismatch) {
  Populate();
  {
    // Manually lower the shared record's refcount from 2 to 1 while
    // both redirects still exist.
    auto key = KeyFile::Open(root_ + "/shared.key");
    ASSERT_TRUE(key.ok());
    ASSERT_EQ(key->size(), 1u);
    ASSERT_TRUE(key->SetRefcount(0, 1).ok());
  }
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Fsck();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());
  EXPECT_NE(report->errors[0].find("refcount"), std::string::npos);
}

TEST_F(MfsCorruptionTest, FsckFlagsDanglingRedirect) {
  Populate();
  {
    // Tombstone the shared record while redirects still point at it.
    auto key = KeyFile::Open(root_ + "/shared.key");
    ASSERT_TRUE(key.ok());
    ASSERT_TRUE(key->SetRefcount(0, 0).ok());
  }
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Fsck();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());
  bool dangling = false;
  for (const auto& error : report->errors) {
    if (error.find("dangling redirect") != std::string::npos) dangling = true;
  }
  EXPECT_TRUE(dangling);
}

TEST_F(MfsCorruptionTest, CleanVolumeStaysCleanAcrossManyReopens) {
  Populate();
  for (int i = 0; i < 5; ++i) {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto report = (*volume)->Fsck();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok());
    auto mails = (*volume)->MailCount("alice");
    ASSERT_TRUE(mails.ok());
    EXPECT_EQ(*mails, 2u);
  }
}

// ---------------------------------------------------------------------
// Crash-recovery chaos: kill the process (via the fault injector's
// one-shot crash points) at every stage of the shared-commit protocol,
// model the restart by reopening the volume from disk, and require that
// Recover() restores the invariants exactly — acked mail survives,
// un-acked mail vanishes, retries with the same id succeed.
// ---------------------------------------------------------------------

class MfsFaultRecoveryTest : public MfsCorruptionTest {
 protected:
  // Fails `op` at `point` exactly once (kCrash is forced one-shot).
  template <typename Op>
  util::Error CrashAt(const char* point, Op&& op) {
    fault::ScopedArm arm(41);
    fault::Policy p;
    p.action = fault::Action::kCrash;
    fault::Injector::Global().Set(point, p);
    return op();
  }

  // Reads every live mail in `name` through a fresh handle.
  std::vector<MailReadResult> Drain(MfsVolume& volume,
                                    const std::string& name) {
    std::vector<MailReadResult> out;
    auto handle = volume.MailOpen(name);
    EXPECT_TRUE(handle.ok());
    if (!handle.ok()) return out;
    for (;;) {
      auto mail = volume.MailRead(**handle);
      if (!mail.ok()) {
        EXPECT_EQ(mail.error().code(), util::ErrorCode::kOutOfRange)
            << mail.error().ToString();
        break;
      }
      out.push_back(std::move(*mail));
    }
    return out;
  }

  // Reopens the volume as a restarting server would: Recover first.
  std::unique_ptr<MfsVolume> Restart() {
    auto volume = MfsVolume::Open(root_);
    EXPECT_TRUE(volume.ok());
    if (!volume.ok()) return nullptr;
    auto report = (*volume)->Recover();
    EXPECT_TRUE(report.ok());
    return std::move(*volume);
  }
};

TEST_F(MfsFaultRecoveryTest, TornSharedWriteBeforeCommitIsRolledBack) {
  Populate();
  const MailId torn_id = Id();
  const std::string body = "torn body";
  {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto alice = (*volume)->MailOpen("alice");
    auto bob = (*volume)->MailOpen("bob");
    MailFile* both[] = {alice->get(), bob->get()};
    // Payload and both redirects land; the shared commit record never
    // does. This is the widest window the ordering leaves open.
    const util::Error err = CrashAt("mfs.nwrite.shared.before_commit", [&] {
      return (*volume)->MailNWrite(both, body, torn_id);
    });
    ASSERT_FALSE(err.ok());
  }  // crash: the volume object is dropped without a clean close

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dangling_redirects_tombstoned, 2u);
  EXPECT_EQ(report->duplicate_redirects_tombstoned, 0u);
  EXPECT_EQ(report->orphaned_data_bytes, 4u + body.size());
  auto fsck = (*volume)->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << (fsck->errors.empty() ? "" : fsck->errors[0]);

  // The write was never acked, so the mail must NOT be visible...
  for (const auto& mail : Drain(**volume, "alice")) {
    EXPECT_NE(mail.id, torn_id);
  }
  // ...and retrying the delivery with the SAME id must succeed.
  auto alice = (*volume)->MailOpen("alice");
  auto bob = (*volume)->MailOpen("bob");
  MailFile* both[] = {alice->get(), bob->get()};
  ASSERT_TRUE((*volume)->MailNWrite(both, body, torn_id).ok());
  auto alice_mails = Drain(**volume, "alice");
  auto bob_mails = Drain(**volume, "bob");
  ASSERT_EQ(alice_mails.size(), 3u);  // private + shared + retried
  ASSERT_EQ(bob_mails.size(), 2u);
  EXPECT_EQ(alice_mails.back().id, torn_id);
  EXPECT_EQ(alice_mails.back().body, body);
  EXPECT_EQ(bob_mails.back().id, torn_id);

  // Recovery is idempotent: a second pass finds nothing to do.
  auto again = (*volume)->Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->clean());
}

TEST_F(MfsFaultRecoveryTest, TornSharedWriteMidRedirectsIsRolledBack) {
  Populate();
  const MailId torn_id = Id();
  {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto alice = (*volume)->MailOpen("alice");
    auto bob = (*volume)->MailOpen("bob");
    MailFile* both[] = {alice->get(), bob->get()};
    // Crash after the FIRST redirect: alice has one, bob has none.
    const util::Error err = CrashAt("mfs.nwrite.shared.mid_redirects", [&] {
      return (*volume)->MailNWrite(both, "half delivered", torn_id);
    });
    ASSERT_FALSE(err.ok());
  }

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dangling_redirects_tombstoned, 1u);
  auto fsck = (*volume)->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok());
  // Neither recipient sees the half-delivered mail.
  EXPECT_EQ(Drain(**volume, "alice").size(), 2u);
  EXPECT_EQ(Drain(**volume, "bob").size(), 1u);
}

TEST_F(MfsFaultRecoveryTest, TornSharedWriteAfterDataLeavesOnlyOrphanBytes) {
  Populate();
  const MailId torn_id = Id();
  const std::string body = "payload only";
  {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto alice = (*volume)->MailOpen("alice");
    auto bob = (*volume)->MailOpen("bob");
    MailFile* both[] = {alice->get(), bob->get()};
    const util::Error err = CrashAt("mfs.nwrite.shared.after_data", [&] {
      return (*volume)->MailNWrite(both, body, torn_id);
    });
    ASSERT_FALSE(err.ok());
  }

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  // No key-side artifacts at all: just dead bytes for Compact.
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->orphaned_data_bytes, 4u + body.size());
  // Retrying with the same id is a normal delivery.
  auto alice = (*volume)->MailOpen("alice");
  auto bob = (*volume)->MailOpen("bob");
  MailFile* both[] = {alice->get(), bob->get()};
  ASSERT_TRUE((*volume)->MailNWrite(both, body, torn_id).ok());
  EXPECT_EQ(Drain(**volume, "bob").size(), 2u);
}

TEST_F(MfsFaultRecoveryTest, TornPrivateWriteLeavesOnlyOrphanBytes) {
  Populate();
  const MailId torn_id = Id();
  const std::string body = "private torn";
  {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto alice = (*volume)->MailOpen("alice");
    MailFile* only_alice[] = {alice->get()};
    const util::Error err = CrashAt("mfs.nwrite.private.after_data", [&] {
      return (*volume)->MailNWrite(only_alice, body, torn_id);
    });
    ASSERT_FALSE(err.ok());
  }

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->orphaned_data_bytes, 4u + body.size());
  auto alice = (*volume)->MailOpen("alice");
  MailFile* only_alice[] = {alice->get()};
  ASSERT_TRUE((*volume)->MailNWrite(only_alice, body, torn_id).ok());
  auto mails = Drain(**volume, "alice");
  ASSERT_EQ(mails.size(), 3u);
  EXPECT_EQ(mails.back().body, body);
}

TEST_F(MfsFaultRecoveryTest, TornSharedDeleteRepairsRefcount) {
  Populate();
  MailId shared_id;
  {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto bob = (*volume)->MailOpen("bob");
    auto first = (*volume)->MailRead(**bob);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first->shared);
    shared_id = first->id;
    auto alice = (*volume)->MailOpen("alice");
    // Crash between tombstoning alice's redirect and decrementing the
    // shared refcount: the record says 2 but only bob references it.
    const util::Error err = CrashAt("mfs.delete.after_tombstone", [&] {
      return (*volume)->MailDelete(**alice, shared_id);
    });
    ASSERT_FALSE(err.ok());
  }

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto broken = (*volume)->Fsck();
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(broken->ok());  // refcount mismatch is visible pre-repair
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->refcounts_repaired, 1u);
  EXPECT_EQ(report->orphaned_shared_reclaimed, 0u);
  auto fsck = (*volume)->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok());
  // Alice's delete took effect; bob still reads the shared body.
  EXPECT_EQ(Drain(**volume, "alice").size(), 1u);
  auto bob_mails = Drain(**volume, "bob");
  ASSERT_EQ(bob_mails.size(), 1u);
  EXPECT_EQ(bob_mails[0].body, "shared body");
}

TEST_F(MfsFaultRecoveryTest, TornDeleteOfLastReferenceReclaimsRecord) {
  Populate();
  MailId shared_id;
  {
    auto volume = MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    auto bob = (*volume)->MailOpen("bob");
    auto first = (*volume)->MailRead(**bob);
    ASSERT_TRUE(first.ok());
    shared_id = first->id;
    ASSERT_TRUE((*volume)->MailDelete(**bob, shared_id).ok());
    auto alice = (*volume)->MailOpen("alice");
    const util::Error err = CrashAt("mfs.delete.after_tombstone", [&] {
      return (*volume)->MailDelete(**alice, shared_id);
    });
    ASSERT_FALSE(err.ok());
  }

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  // Zero live redirects remain: the shared record itself is reclaimed
  // and its payload becomes dead bytes for Compact.
  EXPECT_EQ(report->orphaned_shared_reclaimed, 1u);
  EXPECT_EQ(report->orphaned_data_bytes,
            4u + std::string("shared body").size());
  auto fsck = (*volume)->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok());
  EXPECT_EQ(Drain(**volume, "alice").size(), 1u);
  EXPECT_EQ(Drain(**volume, "bob").size(), 0u);
}

TEST_F(MfsFaultRecoveryTest, RecoverOnCleanVolumeIsANoOp) {
  Populate();
  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->orphaned_data_bytes, 0u);
  EXPECT_EQ(Drain(**volume, "alice").size(), 2u);
  EXPECT_EQ(Drain(**volume, "bob").size(), 1u);
}

TEST_F(MfsFaultRecoveryTest, ChaosCrashLoopNeverLosesAckedMail) {
  // End-to-end exactly-once: crash a delivery at a rotating kill point
  // every other iteration, restart (reopen + Recover) each time, and
  // require the surviving mailboxes to contain precisely the acked
  // writes — in order, once each — and none of the torn ones.
  static const char* kKillPoints[] = {
      "mfs.nwrite.shared.after_data",
      "mfs.nwrite.shared.mid_redirects",
      "mfs.nwrite.shared.before_commit",
  };
  std::vector<MailId> acked;
  std::vector<std::string> acked_bodies;
  for (int i = 0; i < 24; ++i) {
    auto volume = Restart();
    ASSERT_NE(volume, nullptr);
    auto alice = volume->MailOpen("alice");
    auto bob = volume->MailOpen("bob");
    ASSERT_TRUE(alice.ok());
    ASSERT_TRUE(bob.ok());
    MailFile* both[] = {alice->get(), bob->get()};
    const MailId id = Id();
    const std::string body = "chaos mail " + std::to_string(i);
    util::Error err = util::OkError();
    {
      fault::ScopedArm arm(1000 + i);
      if (i % 2 == 0) {
        fault::Policy p;
        p.action = fault::Action::kCrash;
        fault::Injector::Global().Set(kKillPoints[(i / 2) % 3], p);
      }
      err = volume->MailNWrite(both, body, id);
    }
    if (err.ok()) {
      acked.push_back(id);
      acked_bodies.push_back(body);
    }
  }  // each loop exit without SyncAll models a hard restart

  auto volume = Restart();
  ASSERT_NE(volume, nullptr);
  auto fsck = volume->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << (fsck->errors.empty() ? "" : fsck->errors[0]);
  ASSERT_EQ(acked.size(), 12u);  // the odd iterations all succeeded
  for (const char* box : {"alice", "bob"}) {
    auto mails = Drain(*volume, box);
    ASSERT_EQ(mails.size(), acked.size()) << box;
    for (std::size_t i = 0; i < mails.size(); ++i) {
      EXPECT_EQ(mails[i].id, acked[i]) << box << " mail " << i;
      EXPECT_EQ(mails[i].body, acked_bodies[i]) << box << " mail " << i;
    }
  }
}

}  // namespace
}  // namespace sams::mfs
