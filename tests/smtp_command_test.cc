#include "smtp/command.h"

#include <gtest/gtest.h>

namespace sams::smtp {
namespace {

TEST(ParseCommandTest, Helo) {
  const Command cmd = ParseCommand("HELO mail.example.com");
  EXPECT_EQ(cmd.verb, Verb::kHelo);
  EXPECT_EQ(cmd.argument, "mail.example.com");
}

TEST(ParseCommandTest, EhloCaseInsensitive) {
  const Command cmd = ParseCommand("ehlo client.net");
  EXPECT_EQ(cmd.verb, Verb::kEhlo);
  EXPECT_EQ(cmd.argument, "client.net");
}

TEST(ParseCommandTest, MailFrom) {
  const Command cmd = ParseCommand("MAIL FROM:<alice@example.com>");
  EXPECT_EQ(cmd.verb, Verb::kMail);
  ASSERT_TRUE(cmd.path.has_value());
  EXPECT_EQ(cmd.path->address().ToString(), "alice@example.com");
  EXPECT_FALSE(cmd.bad_path);
}

TEST(ParseCommandTest, MailFromNullPath) {
  const Command cmd = ParseCommand("MAIL FROM:<>");
  EXPECT_EQ(cmd.verb, Verb::kMail);
  ASSERT_TRUE(cmd.path.has_value());
  EXPECT_TRUE(cmd.path->IsNull());
}

TEST(ParseCommandTest, MailFromLowercaseWithSpaces) {
  const Command cmd = ParseCommand("mail from: <bob@x.org> ");
  EXPECT_EQ(cmd.verb, Verb::kMail);
  ASSERT_TRUE(cmd.path.has_value());
  EXPECT_EQ(cmd.path->address().local(), "bob");
}

TEST(ParseCommandTest, MailFromWithSizeParameter) {
  const Command cmd = ParseCommand("MAIL FROM:<bob@x.org> SIZE=12345");
  EXPECT_EQ(cmd.verb, Verb::kMail);
  ASSERT_TRUE(cmd.path.has_value());
  EXPECT_EQ(cmd.path->address().local(), "bob");
}

TEST(ParseCommandTest, MailFromMalformed) {
  const Command cmd = ParseCommand("MAIL FROM:garbage");
  EXPECT_EQ(cmd.verb, Verb::kMail);
  EXPECT_FALSE(cmd.path.has_value());
  EXPECT_TRUE(cmd.bad_path);
}

TEST(ParseCommandTest, MailWithoutFromKeyword) {
  const Command cmd = ParseCommand("MAIL <bob@x.org>");
  EXPECT_EQ(cmd.verb, Verb::kMail);
  EXPECT_TRUE(cmd.bad_path);
}

TEST(ParseCommandTest, RcptTo) {
  const Command cmd = ParseCommand("RCPT TO:<carol@dept.example.edu>");
  EXPECT_EQ(cmd.verb, Verb::kRcpt);
  ASSERT_TRUE(cmd.path.has_value());
  EXPECT_EQ(cmd.path->address().ToString(), "carol@dept.example.edu");
}

TEST(ParseCommandTest, RcptToMalformed) {
  const Command cmd = ParseCommand("RCPT TO:no-brackets@x.com");
  EXPECT_EQ(cmd.verb, Verb::kRcpt);
  EXPECT_TRUE(cmd.bad_path);
}

TEST(ParseCommandTest, SimpleVerbs) {
  EXPECT_EQ(ParseCommand("DATA").verb, Verb::kData);
  EXPECT_EQ(ParseCommand("data").verb, Verb::kData);
  EXPECT_EQ(ParseCommand("RSET").verb, Verb::kRset);
  EXPECT_EQ(ParseCommand("NOOP").verb, Verb::kNoop);
  EXPECT_EQ(ParseCommand("QUIT").verb, Verb::kQuit);
}

TEST(ParseCommandTest, Vrfy) {
  const Command cmd = ParseCommand("VRFY postmaster");
  EXPECT_EQ(cmd.verb, Verb::kVrfy);
  EXPECT_EQ(cmd.argument, "postmaster");
}

TEST(ParseCommandTest, UnknownVerb) {
  const Command cmd = ParseCommand("XYZZY magic");
  EXPECT_EQ(cmd.verb, Verb::kUnknown);
  EXPECT_EQ(cmd.argument, "XYZZY");
}

TEST(ParseCommandTest, EmptyLineIsUnknown) {
  EXPECT_EQ(ParseCommand("").verb, Verb::kUnknown);
}

TEST(ParseCommandTest, LeadingWhitespaceTolerated) {
  EXPECT_EQ(ParseCommand("  QUIT  ").verb, Verb::kQuit);
}

TEST(VerbNameTest, NamesAll) {
  EXPECT_STREQ(VerbName(Verb::kMail), "MAIL");
  EXPECT_STREQ(VerbName(Verb::kRcpt), "RCPT");
  EXPECT_STREQ(VerbName(Verb::kUnknown), "UNKNOWN");
}

TEST(SerializersTest, WireFormats) {
  EXPECT_EQ(HeloLine("c.net"), "HELO c.net\r\n");
  EXPECT_EQ(EhloLine("c.net"), "EHLO c.net\r\n");
  EXPECT_EQ(MailFromLine(*Path::Parse("<a@b.c>")), "MAIL FROM:<a@b.c>\r\n");
  EXPECT_EQ(MailFromLine(Path()), "MAIL FROM:<>\r\n");
  EXPECT_EQ(RcptToLine(*Path::Parse("<x@y.z>")), "RCPT TO:<x@y.z>\r\n");
  EXPECT_EQ(DataLine(), "DATA\r\n");
  EXPECT_EQ(QuitLine(), "QUIT\r\n");
  EXPECT_EQ(RsetLine(), "RSET\r\n");
  EXPECT_EQ(NoopLine(), "NOOP\r\n");
}

// Table-driven hardening for HELO/EHLO argument classification (RFC
// 5321 §4.1.1.1 shapes plus the wire garbage a live port collects).
TEST(ClassifyHeloArgumentTest, Table) {
  struct Case {
    const char* arg;
    HeloKind want;
  };
  const std::string overlong(256, 'a');
  const std::string at_limit(255, 'a');
  const Case cases[] = {
      // Legitimate shapes.
      {"mail.example.com", HeloKind::kHostname},
      {"localhost", HeloKind::kHostname},
      {"a-b.c_d.example", HeloKind::kHostname},  // wild-but-seen: underscore
      {"xn--bcher-kva.example", HeloKind::kHostname},
      {at_limit.c_str(), HeloKind::kHostname},  // 255 bytes: at the cap
      {"[10.1.2.3]", HeloKind::kAddressLiteral},
      // Suspicious but parseable — kept as scorer features, not 501s.
      {"10.1.2.3", HeloKind::kBareIp},
      {"255.255.255.255", HeloKind::kBareIp},
      // Malformed: empty / overlong.
      {"", HeloKind::kMalformed},
      {overlong.c_str(), HeloKind::kMalformed},  // 256 bytes: over the cap
      // Malformed: whitespace and control bytes.
      {"host name", HeloKind::kMalformed},
      {"host\tname", HeloKind::kMalformed},
      {"host\x01name", HeloKind::kMalformed},
      {"host\x7fname", HeloKind::kMalformed},
      // Malformed: label-structure violations.
      {".example", HeloKind::kMalformed},
      {"example.", HeloKind::kMalformed},
      {"a..b", HeloKind::kMalformed},
      {"-leading.example", HeloKind::kMalformed},
      {"trailing-.example", HeloKind::kMalformed},
      {"host.-example", HeloKind::kMalformed},
      {"ends-with-hyphen-", HeloKind::kMalformed},
      // Malformed: broken address literals.
      {"[10.1.2]", HeloKind::kMalformed},
      {"[not.an.ip]", HeloKind::kMalformed},
      {"[10.1.2.3", HeloKind::kMalformed},
      // Malformed: stray punctuation.
      {"host!", HeloKind::kMalformed},
      {"a@b.c", HeloKind::kMalformed},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(ClassifyHeloArgument(c.arg), c.want)
        << "arg=\"" << c.arg << "\"";
  }
}

TEST(RoundTripTest, SerializedCommandsReparse) {
  EXPECT_EQ(ParseCommand("HELO c.net\r"[0] == 'H' ? "HELO c.net" : "").verb,
            Verb::kHelo);
  const Command mail = ParseCommand("MAIL FROM:<a@b.c>");
  ASSERT_TRUE(mail.path.has_value());
  EXPECT_EQ(MailFromLine(*mail.path), "MAIL FROM:<a@b.c>\r\n");
}

}  // namespace
}  // namespace sams::smtp
