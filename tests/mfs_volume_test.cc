#include "mfs/volume.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "util/rng.h"

namespace sams::mfs {
namespace {

class VolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/mfs_vol_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : root_) {
      if (c == '/') c = '_';
    }
    std::filesystem::remove_all(root_);
    auto vol = MfsVolume::Open(root_);
    ASSERT_TRUE(vol.ok()) << vol.error().ToString();
    vol_ = std::move(vol).value();
  }
  void TearDown() override {
    vol_.reset();
    std::filesystem::remove_all(root_);
  }

  MailId Id() { return MailId::Generate(rng_); }

  std::unique_ptr<MailFile> Box(const std::string& name) {
    auto h = vol_->MailOpen(name);
    EXPECT_TRUE(h.ok()) << h.error().ToString();
    return std::move(h).value();
  }

  util::Error Write(std::vector<MailFile*> boxes, std::string_view body,
                    const MailId& id) {
    return vol_->MailNWrite(boxes, body, id);
  }

  std::vector<std::string> ReadAll(const std::string& name) {
    auto h = Box(name);
    std::vector<std::string> out;
    for (;;) {
      auto r = vol_->MailRead(*h);
      if (!r.ok()) break;
      out.push_back(r->body);
    }
    return out;
  }

  std::string root_;
  std::unique_ptr<MfsVolume> vol_;
  util::Rng rng_{7};
};

// fd-cache behavior: bounded open mailboxes, LRU eviction, and dirty
// tracking that survives eviction.
class VolumeFdCacheTest : public VolumeTest {
 protected:
  void Reopen(std::size_t max_open_boxes) {
    vol_.reset();
    VolumeOptions opts;
    opts.max_open_boxes = max_open_boxes;
    auto vol = MfsVolume::Open(root_, opts);
    ASSERT_TRUE(vol.ok()) << vol.error().ToString();
    vol_ = std::move(vol).value();
  }
};

TEST_F(VolumeTest, SingleRecipientWriteAndRead) {
  auto alice = Box("alice");
  const MailId id = Id();
  ASSERT_TRUE(Write({alice.get()}, "hello alice", id).ok());
  auto r = vol_->MailRead(*alice);
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_EQ(r->body, "hello alice");
  EXPECT_EQ(r->id, id);
  EXPECT_FALSE(r->shared);
  EXPECT_EQ(vol_->stats().private_writes, 1u);
  EXPECT_EQ(vol_->stats().shared_writes, 0u);
}

TEST_F(VolumeTest, ReadPastEndIsOutOfRange) {
  auto alice = Box("alice");
  auto r = vol_->MailRead(*alice);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), util::ErrorCode::kOutOfRange);
}

TEST_F(VolumeTest, MultiRecipientStoresSingleCopy) {
  auto a = Box("alice"), b = Box("bob"), c = Box("carol");
  const MailId id = Id();
  const std::string body = "SPECIAL OFFER!!!";
  ASSERT_TRUE(Write({a.get(), b.get(), c.get()}, body, id).ok());

  for (auto* box : {a.get(), b.get(), c.get()}) {
    auto r = vol_->MailRead(*box);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->body, body);
    EXPECT_EQ(r->id, id);
    EXPECT_TRUE(r->shared);
  }
  EXPECT_EQ(vol_->stats().shared_writes, 1u);
  EXPECT_EQ(vol_->stats().redirects_written, 3u);
  EXPECT_EQ(vol_->stats().bytes_deduplicated, body.size() * 2);

  // Single copy on disk: shared.dat holds one body record.
  const auto shared_size = std::filesystem::file_size(root_ + "/shared.dat");
  EXPECT_EQ(shared_size, body.size() + 4);
  // Private data files hold nothing.
  EXPECT_EQ(std::filesystem::file_size(root_ + "/boxes/alice.dat"), 0u);
}

TEST_F(VolumeTest, MixOfPrivateAndSharedReadsInOrder) {
  auto a = Box("alice");
  auto b = Box("bob");
  const MailId m1 = Id(), m2 = Id(), m3 = Id();
  ASSERT_TRUE(Write({a.get()}, "private-1", m1).ok());
  ASSERT_TRUE(Write({a.get(), b.get()}, "shared-2", m2).ok());
  ASSERT_TRUE(Write({a.get()}, "private-3", m3).ok());
  const auto mails = ReadAll("alice");
  ASSERT_EQ(mails.size(), 3u);
  EXPECT_EQ(mails[0], "private-1");
  EXPECT_EQ(mails[1], "shared-2");
  EXPECT_EQ(mails[2], "private-3");
}

TEST_F(VolumeTest, SeekSetCurEnd) {
  auto a = Box("alice");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Write({a.get()}, "mail-" + std::to_string(i), Id()).ok());
  }
  ASSERT_TRUE(vol_->MailSeek(*a, 3, Whence::kSet).ok());
  auto r = vol_->MailRead(*a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "mail-3");
  ASSERT_TRUE(vol_->MailSeek(*a, -2, Whence::kCur).ok());
  r = vol_->MailRead(*a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "mail-2");
  ASSERT_TRUE(vol_->MailSeek(*a, -1, Whence::kEnd).ok());
  r = vol_->MailRead(*a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "mail-4");
}

TEST_F(VolumeTest, SeekOutOfBoundsRejected) {
  auto a = Box("alice");
  ASSERT_TRUE(Write({a.get()}, "only", Id()).ok());
  EXPECT_FALSE(vol_->MailSeek(*a, 2, Whence::kSet).ok());
  EXPECT_FALSE(vol_->MailSeek(*a, -1, Whence::kSet).ok());
  EXPECT_TRUE(vol_->MailSeek(*a, 1, Whence::kSet).ok());  // == end: legal
}

TEST_F(VolumeTest, DeletePrivateMail) {
  auto a = Box("alice");
  const MailId id = Id();
  ASSERT_TRUE(Write({a.get()}, "doomed", id).ok());
  ASSERT_TRUE(Write({a.get()}, "survivor", Id()).ok());
  ASSERT_TRUE(vol_->MailDelete(*a, id).ok());
  const auto mails = ReadAll("alice");
  ASSERT_EQ(mails.size(), 1u);
  EXPECT_EQ(mails[0], "survivor");
}

TEST_F(VolumeTest, DeleteMissingMailIsNotFound) {
  auto a = Box("alice");
  EXPECT_EQ(vol_->MailDelete(*a, Id()).code(), util::ErrorCode::kNotFound);
}

TEST_F(VolumeTest, SharedRefcountDropsOnDelete) {
  auto a = Box("alice"), b = Box("bob");
  const MailId id = Id();
  ASSERT_TRUE(Write({a.get(), b.get()}, "shared", id).ok());
  ASSERT_TRUE(vol_->MailDelete(*a, id).ok());
  // Bob still reads it.
  auto r = vol_->MailRead(*b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "shared");
  // Alice doesn't.
  EXPECT_TRUE(ReadAll("alice").empty());
  // Deleting the last reference tombstones the shared record.
  ASSERT_TRUE(vol_->MailDelete(*b, id).ok());
  auto fsck = vol_->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << fsck->errors[0];
  EXPECT_EQ(fsck->shared_records, 0u);
}

TEST_F(VolumeTest, CollidingSharedIdRejectedAsAttack) {
  auto a = Box("alice"), b = Box("bob"), m = Box("mallory"), m2 = Box("mal2");
  const MailId id = Id();
  ASSERT_TRUE(Write({a.get(), b.get()}, "legit", id).ok());
  // Mallory tries to nwrite junk with the same (guessed) id to reach
  // the shared mail (§6.4).
  const util::Error err = Write({m.get(), m2.get()}, "junk", id);
  EXPECT_EQ(err.code(), util::ErrorCode::kAlreadyExists);
  EXPECT_EQ(vol_->stats().collisions_rejected, 1u);
  // The shared mail is untouched and mallory's mailbox is empty.
  EXPECT_TRUE(ReadAll("mallory").empty());
  auto r = vol_->MailRead(*a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "legit");
}

TEST_F(VolumeTest, DuplicateIdInSameMailboxRejected) {
  auto a = Box("alice");
  const MailId id = Id();
  ASSERT_TRUE(Write({a.get()}, "one", id).ok());
  EXPECT_EQ(Write({a.get()}, "two", id).code(),
            util::ErrorCode::kAlreadyExists);
}

TEST_F(VolumeTest, DuplicateRecipientHandleRejected) {
  auto a1 = Box("alice"), a2 = Box("alice"), b = Box("bob");
  EXPECT_EQ(Write({a1.get(), a2.get(), b.get()}, "x", Id()).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST_F(VolumeTest, InvalidMailboxNamesRejected) {
  EXPECT_FALSE(vol_->MailOpen("").ok());
  EXPECT_FALSE(vol_->MailOpen("shared").ok());
  EXPECT_FALSE(vol_->MailOpen("../etc/passwd").ok());
  EXPECT_FALSE(vol_->MailOpen("a/b").ok());
  EXPECT_FALSE(vol_->MailOpen("semi;colon").ok());
  EXPECT_TRUE(vol_->MailOpen("alice.smith@dept-1_x+tag").ok());
}

TEST_F(VolumeTest, InvalidModeRejected) {
  EXPECT_FALSE(vol_->MailOpen("alice", "a+").ok());
  EXPECT_TRUE(vol_->MailOpen("alice", "r").ok());
  EXPECT_TRUE(vol_->MailOpen("alice", "w").ok());
}

TEST_F(VolumeTest, PersistsAcrossReopen) {
  const MailId shared_id = Id(), priv_id = Id();
  {
    auto a = Box("alice"), b = Box("bob");
    ASSERT_TRUE(Write({a.get(), b.get()}, "shared body", shared_id).ok());
    ASSERT_TRUE(Write({a.get()}, "private body", priv_id).ok());
    ASSERT_TRUE(vol_->SyncAll().ok());
  }
  vol_.reset();
  auto vol = MfsVolume::Open(root_);
  ASSERT_TRUE(vol.ok());
  vol_ = std::move(vol).value();
  const auto alice = ReadAll("alice");
  ASSERT_EQ(alice.size(), 2u);
  EXPECT_EQ(alice[0], "shared body");
  EXPECT_EQ(alice[1], "private body");
  const auto bob = ReadAll("bob");
  ASSERT_EQ(bob.size(), 1u);
  EXPECT_EQ(bob[0], "shared body");
}

TEST_F(VolumeTest, MailCount) {
  auto a = Box("alice"), b = Box("bob");
  ASSERT_TRUE(Write({a.get()}, "1", Id()).ok());
  const MailId id = Id();
  ASSERT_TRUE(Write({a.get(), b.get()}, "2", id).ok());
  auto count = vol_->MailCount("alice");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  ASSERT_TRUE(vol_->MailDelete(*a, id).ok());
  count = vol_->MailCount("alice");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST_F(VolumeTest, FsckCleanVolume) {
  auto a = Box("alice"), b = Box("bob");
  ASSERT_TRUE(Write({a.get()}, "p", Id()).ok());
  ASSERT_TRUE(Write({a.get(), b.get()}, "s", Id()).ok());
  auto report = vol_->Fsck();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->mailboxes, 2u);
  EXPECT_EQ(report->live_records, 3u);
  EXPECT_EQ(report->shared_records, 1u);
}

TEST_F(VolumeTest, CompactReclaimsDeletedMail) {
  auto a = Box("alice"), b = Box("bob");
  const MailId dead = Id(), alive = Id();
  ASSERT_TRUE(Write({a.get(), b.get()}, std::string(10000, 'D'), dead).ok());
  ASSERT_TRUE(Write({a.get(), b.get()}, "still here", alive).ok());
  ASSERT_TRUE(vol_->MailDelete(*a, dead).ok());
  ASSERT_TRUE(vol_->MailDelete(*b, dead).ok());

  const auto before = std::filesystem::file_size(root_ + "/shared.dat");
  auto cstats = vol_->Compact();
  ASSERT_TRUE(cstats.ok()) << cstats.error().ToString();
  EXPECT_EQ(cstats->shared_records_dropped, 1u);
  EXPECT_GT(cstats->bytes_reclaimed, 9000u);
  const auto after = std::filesystem::file_size(root_ + "/shared.dat");
  EXPECT_LT(after, before);

  // Surviving shared mail still reads correctly via patched redirects.
  const auto alice = ReadAll("alice");
  ASSERT_EQ(alice.size(), 1u);
  EXPECT_EQ(alice[0], "still here");
  auto fsck = vol_->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << fsck->errors[0];
}

TEST_F(VolumeTest, CompactThenReopenStillConsistent) {
  auto a = Box("alice");
  const MailId d = Id();
  ASSERT_TRUE(Write({a.get()}, "tombstone me", d).ok());
  ASSERT_TRUE(Write({a.get()}, "keep", Id()).ok());
  ASSERT_TRUE(vol_->MailDelete(*a, d).ok());
  ASSERT_TRUE(vol_->Compact().ok());
  vol_.reset();
  auto vol = MfsVolume::Open(root_);
  ASSERT_TRUE(vol.ok());
  vol_ = std::move(vol).value();
  const auto mails = ReadAll("alice");
  ASSERT_EQ(mails.size(), 1u);
  EXPECT_EQ(mails[0], "keep");
}

TEST_F(VolumeTest, EmptyBodyMailSupported) {
  auto a = Box("alice");
  ASSERT_TRUE(Write({a.get()}, "", Id()).ok());
  const auto mails = ReadAll("alice");
  ASSERT_EQ(mails.size(), 1u);
  EXPECT_EQ(mails[0], "");
}

TEST_F(VolumeTest, NWriteValidatesArguments) {
  auto a = Box("alice");
  EXPECT_EQ(Write({}, "x", Id()).code(), util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(Write({a.get()}, "x", MailId()).code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(Write({nullptr}, "x", Id()).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST_F(VolumeFdCacheTest, LruEvictsColdMailboxes) {
  Reopen(2);
  // Touch 3 distinct mailboxes: the 3rd load must evict the coldest.
  for (const char* name : {"a", "b", "c"}) {
    auto h = Box(name);
    ASSERT_TRUE(Write({h.get()}, std::string("to ") + name, Id()).ok());
  }
  EXPECT_EQ(vol_->stats().fd_cache_misses, 3u);
  EXPECT_GE(vol_->stats().fd_cache_evictions, 1u);
  // Re-reading an evicted mailbox is a miss, but still correct.
  EXPECT_EQ(ReadAll("a"), std::vector<std::string>{"to a"});
  EXPECT_GE(vol_->stats().fd_cache_misses, 4u);
  // A hot mailbox is served from cache.
  const std::uint64_t hits_before = vol_->stats().fd_cache_hits;
  EXPECT_EQ(ReadAll("a"), std::vector<std::string>{"to a"});
  EXPECT_GT(vol_->stats().fd_cache_hits, hits_before);
}

TEST_F(VolumeFdCacheTest, EvictionKeepsVolumeConsistent) {
  Reopen(2);
  // Interleave writes across more mailboxes than the cache holds, with
  // shared (multi-recipient) mails crossing eviction boundaries.
  const std::vector<std::string> names = {"u0", "u1", "u2", "u3", "u4"};
  for (int round = 0; round < 3; ++round) {
    for (const auto& name : names) {
      auto h = Box(name);
      ASSERT_TRUE(
          Write({h.get()}, name + " r" + std::to_string(round), Id()).ok());
    }
    auto first = Box(names[0]);
    auto last = Box(names.back());
    ASSERT_TRUE(Write({first.get(), last.get()},
                      "shared r" + std::to_string(round), Id())
                    .ok());
  }
  EXPECT_GT(vol_->stats().fd_cache_evictions, 0u);
  for (const auto& name : names) {
    const auto mails = ReadAll(name);
    const std::size_t expect = (name == "u0" || name == "u4") ? 6u : 3u;
    ASSERT_EQ(mails.size(), expect) << name;
  }
  auto fsck = vol_->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << (fsck->errors.empty() ? "" : fsck->errors[0]);
}

TEST_F(VolumeFdCacheTest, SyncDirtySyncsOnlyDirtyFilesOnce) {
  auto a = Box("alice");
  auto b = Box("bob");
  ASSERT_TRUE(Write({a.get()}, "one", Id()).ok());
  ASSERT_TRUE(Write({a.get()}, "two", Id()).ok());
  ASSERT_TRUE(Write({a.get(), b.get()}, "both", Id()).ok());
  auto synced = vol_->SyncDirty();
  ASSERT_TRUE(synced.ok()) << synced.error().ToString();
  // alice.{key,dat} + bob.{key,dat} + shared.{key,dat}: each file once
  // regardless of how many mails it absorbed.
  EXPECT_EQ(*synced, 6);
  EXPECT_EQ(vol_->stats().fsyncs, 6u);
  // Nothing dirty remains: the next round is free.
  auto again = vol_->SyncDirty();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
}

TEST_F(VolumeFdCacheTest, EvictedDirtyMailboxStillSynced) {
  Reopen(2);
  {
    auto a = Box("evictme");
    ASSERT_TRUE(Write({a.get()}, "dirty then cold", Id()).ok());
  }
  // Push "evictme" out of the fd cache before any sync happens.
  Box("warm1");
  Box("warm2");
  Box("warm3");
  EXPECT_GE(vol_->stats().fd_cache_evictions, 1u);
  auto synced = vol_->SyncDirty();
  ASSERT_TRUE(synced.ok()) << synced.error().ToString();
  EXPECT_EQ(*synced, 2);  // evictme.key + evictme.dat, via fresh fds
  EXPECT_EQ(ReadAll("evictme"), std::vector<std::string>{"dirty then cold"});
}

// Property test: a randomized interleaving of nwrite/delete across
// several mailboxes must (a) keep a model-checker view consistent and
// (b) pass Fsck at every checkpoint — including after compaction.
class VolumePropertyTest : public VolumeTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(VolumePropertyTest, RandomizedWritesDeletesStayConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::vector<std::string> names = {"u0", "u1", "u2", "u3", "u4"};
  std::vector<std::unique_ptr<MailFile>> handles;
  for (const auto& n : names) handles.push_back(Box(n));

  // Reference model: mailbox -> ordered list of (id, body).
  std::map<std::string, std::vector<std::pair<MailId, std::string>>> model;
  std::vector<std::pair<MailId, std::vector<std::string>>> live_ids;

  for (int step = 0; step < 200; ++step) {
    const bool do_delete = !live_ids.empty() && rng.Bernoulli(0.3);
    if (do_delete) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.UniformInt(0, live_ids.size() - 1));
      auto [id, members] = live_ids[pick];
      // Delete from one (random) member mailbox.
      const std::size_t mi =
          static_cast<std::size_t>(rng.UniformInt(0, members.size() - 1));
      const std::string& box = members[mi];
      const std::size_t box_idx =
          std::find(names.begin(), names.end(), box) - names.begin();
      ASSERT_TRUE(vol_->MailDelete(*handles[box_idx], id).ok());
      auto& mails = model[box];
      mails.erase(std::find_if(mails.begin(), mails.end(),
                               [&](const auto& p) { return p.first == id; }));
      live_ids[pick].second.erase(live_ids[pick].second.begin() + mi);
      if (live_ids[pick].second.empty()) {
        live_ids.erase(live_ids.begin() + pick);
      }
    } else {
      const int nrcpt = static_cast<int>(rng.UniformInt(1, 4));
      std::set<std::size_t> picked;
      while (static_cast<int>(picked.size()) < nrcpt) {
        picked.insert(static_cast<std::size_t>(
            rng.UniformInt(0, names.size() - 1)));
      }
      const MailId id = MailId::Generate(rng);
      const std::string body =
          "body-" + id.str().substr(0, 8) + "-" +
          std::string(static_cast<std::size_t>(rng.UniformInt(0, 2000)), 'x');
      std::vector<MailFile*> boxes;
      std::vector<std::string> members;
      for (std::size_t i : picked) {
        boxes.push_back(handles[i].get());
        members.push_back(names[i]);
      }
      ASSERT_TRUE(vol_->MailNWrite(boxes, body, id).ok());
      for (const auto& box : members) model[box].emplace_back(id, body);
      live_ids.emplace_back(id, members);
    }

    if (step % 50 == 49) {
      auto fsck = vol_->Fsck();
      ASSERT_TRUE(fsck.ok());
      ASSERT_TRUE(fsck->ok()) << "step " << step << ": " << fsck->errors[0];
    }
  }

  // Occasionally compact, then verify every mailbox matches the model.
  if (GetParam() % 2 == 0) {
    ASSERT_TRUE(vol_->Compact().ok());
  }
  for (const auto& name : names) {
    const auto got = ReadAll(name);
    const auto& want = model[name];
    ASSERT_EQ(got.size(), want.size()) << "mailbox " << name;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i].second) << "mailbox " << name << " mail " << i;
    }
  }
  auto fsck = vol_->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << fsck->errors[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolumePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sams::mfs
