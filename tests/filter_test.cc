// Content-filter tests: tokenizer, Bayes training/accuracy/persistence,
// rule scoring, and the end-to-end 554 content rejection through the
// real SMTP server.
#include <gtest/gtest.h>

#include <filesystem>

#include "filter/bayes.h"
#include "filter/corpus.h"
#include "filter/spam_filter.h"
#include "filter/tokenizer.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"

namespace sams::filter {
namespace {

TEST(TokenizerTest, BasicTokens) {
  const auto tokens = Tokenize("Hello, World! buy V1AGRA now-123");
  EXPECT_EQ(tokens, (std::vector<std::string>{"hello", "world", "buy",
                                              "v1agra", "now", "123"}));
}

TEST(TokenizerTest, LengthFilters) {
  const auto tokens = Tokenize("a bb " + std::string(30, 'x') + " ok");
  EXPECT_EQ(tokens, (std::vector<std::string>{"bb", "ok"}));
}

TEST(TokenizerTest, TokenCapBoundsWork) {
  std::string huge;
  for (int i = 0; i < 10'000; ++i) huge += "word ";
  TokenizerConfig cfg;
  cfg.max_tokens = 100;
  EXPECT_EQ(Tokenize(huge, cfg).size(), 100u);
}

TEST(BayesTest, EmptyModelIsNeutral) {
  BayesClassifier model;
  EXPECT_DOUBLE_EQ(model.Score("anything at all"), 0.5);
}

TEST(BayesTest, LearnsSeparableVocabulary) {
  BayesClassifier model;
  for (int i = 0; i < 20; ++i) {
    model.Train("cheap pills casino jackpot", true);
    model.Train("project meeting semester review", false);
  }
  EXPECT_GT(model.Score("pills and casino tonight"), 0.9);
  EXPECT_LT(model.Score("review the project before the meeting"), 0.1);
}

TEST(BayesTest, AccuracyOnSyntheticCorpus) {
  util::Rng rng(11);
  BayesClassifier model;
  for (int i = 0; i < 300; ++i) {
    model.Train(MakeSpamBody(rng), true);
    model.Train(MakeHamBody(rng), false);
  }
  int correct = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    if (model.Score(MakeSpamBody(rng)) > 0.5) ++correct;
    if (model.Score(MakeHamBody(rng)) < 0.5) ++correct;
  }
  // Despite deliberate 15% vocabulary cross-contamination in the
  // corpus, separation should be nearly perfect at this training size.
  EXPECT_GT(correct, static_cast<int>(2 * trials * 0.93));
}

TEST(BayesTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bayes_model.txt";
  std::filesystem::remove(path);
  util::Rng rng(13);
  BayesClassifier model;
  for (int i = 0; i < 50; ++i) {
    model.Train(MakeSpamBody(rng), true);
    model.Train(MakeHamBody(rng), false);
  }
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = BayesClassifier::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  EXPECT_EQ(loaded->spam_documents(), 50u);
  EXPECT_EQ(loaded->ham_documents(), 50u);
  EXPECT_EQ(loaded->vocabulary_size(), model.vocabulary_size());
  const std::string probe = MakeSpamBody(rng);
  EXPECT_NEAR(loaded->Score(probe), model.Score(probe), 1e-9);
  std::filesystem::remove(path);
}

TEST(BayesTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/bayes_junk.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a model\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(BayesClassifier::Load(path).ok());
  EXPECT_FALSE(BayesClassifier::Load(path + ".missing").ok());
  std::filesystem::remove(path);
}

smtp::Envelope EnvelopeWithBody(std::string body, int rcpts = 1) {
  smtp::Envelope envelope;
  envelope.client_ip = "192.0.2.9";
  envelope.mail_from = *smtp::Path::Parse("<s@x.test>");
  for (int i = 0; i < rcpts; ++i) {
    envelope.rcpt_to.push_back(
        *smtp::Address::Parse("u" + std::to_string(i) + "@d.test"));
  }
  envelope.body = std::move(body);
  return envelope;
}

TEST(SpamFilterTest, CleanMailScoresLow) {
  SpamFilter filter;
  const auto verdict = filter.Classify(EnvelopeWithBody(
      "Subject: lunch\r\n\r\nSee you at noon by the seminar room?\r\n"));
  EXPECT_LT(verdict.score, 2.0);
  EXPECT_FALSE(verdict.spam);
  EXPECT_FALSE(verdict.reject);
}

TEST(SpamFilterTest, KeywordStackingTagsAndRejects) {
  SpamFilter filter;
  const auto verdict = filter.Classify(EnvelopeWithBody(
      "Subject: WINNER WINNER BIG PRIZE\r\n\r\n"
      "Buy now! Viagra no prescription, free money, act now, cheap!\r\n"
      "http://a http://b http://c\r\n",
      8));
  EXPECT_TRUE(verdict.spam);
  EXPECT_TRUE(verdict.reject);
  EXPECT_GE(verdict.hits.size(), 5u);
  // Named rules fired.
  const auto has = [&](const char* name) {
    for (const auto& hit : verdict.hits) {
      if (hit == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("DRUG_SPAM"));
  EXPECT_TRUE(has("SHOUTING_SUBJECT"));
  EXPECT_TRUE(has("MANY_URLS"));
  EXPECT_TRUE(has("MANY_RCPTS"));
}

TEST(SpamFilterTest, BayesShiftsBorderlineMail) {
  util::Rng rng(17);
  SpamFilter filter;
  for (int i = 0; i < 200; ++i) {
    filter.bayes().Train(MakeSpamBody(rng), true);
    filter.bayes().Train(MakeHamBody(rng), false);
  }
  const auto spammy = filter.Classify(EnvelopeWithBody(MakeSpamBody(rng)));
  const auto hammy = filter.Classify(EnvelopeWithBody(MakeHamBody(rng)));
  EXPECT_GT(spammy.score, hammy.score + 3.0);
}

TEST(ContentRejectTest, ServerReturns554ForFilteredMail) {
  const std::string root = ::testing::TempDir() + "/filter_srv";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  mta::RecipientDb db;
  db.AddMailbox("alice", "dept.test");

  auto filter = std::make_shared<SpamFilter>();
  mta::RealServerConfig cfg;
  cfg.architecture = mta::Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 2'000;
  cfg.content_check = [filter](const smtp::Envelope& envelope) {
    return !filter->Classify(envelope).reject;
  };
  mta::SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Clean mail goes through.
  smtp::MailJob clean;
  clean.mail_from = *smtp::Path::Parse("<s@x.test>");
  clean.rcpts = {*smtp::Path::Parse("<alice@dept.test>")};
  clean.body = "Subject: agenda\n\nnotes attached\n";
  auto ok = net::SendMail("127.0.0.1", *port, clean);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->outcome, smtp::ClientOutcome::kDelivered);

  // Blatant spam is rejected after DATA with 554.
  smtp::MailJob spam = clean;
  spam.body =
      "Subject: FREE MONEY WINNER TODAY\n\n"
      "viagra no prescription buy now click here lottery nigerian prince\n"
      "http://x http://y http://z\n";
  auto rejected = net::SendMail("127.0.0.1", *port, spam);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->outcome, smtp::ClientOutcome::kServerError);

  server.Stop();
  EXPECT_EQ(server.stats().mails_delivered.load(), 1u);
  EXPECT_EQ(server.stats().content_rejects.load(), 1u);
  auto mails = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  EXPECT_EQ(mails->size(), 1u);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace sams::filter
