// Tests of the async DNSBL pipeline (DESIGN.md §10): the shared
// concurrent prefix cache, singleflight coalescing, the non-blocking
// UDP client against a real UdpDnsblDaemon, its fault points, and the
// end-to-end server integration (lookup overlapped with the dialog,
// blacklisted clients 554'd at RCPT).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "dnsbl/async_pipeline.h"
#include "dnsbl/blacklist_db.h"
#include "dnsbl/concurrent_cache.h"
#include "dnsbl/udp_daemon.h"
#include "fault/injector.h"
#include "mta/smtp_server.h"
#include "net/event_loop.h"
#include "net/smtp_client.h"
#include "net/tcp.h"
#include "util/time.h"

namespace sams::dnsbl {
namespace {

using util::Ipv4;
using util::Prefix25;

// --- ConcurrentPrefixCache ---------------------------------------------

TEST(ConcurrentCacheTest, HitRefreshAndTtlExpiry) {
  ConcurrentPrefixCache cache(/*capacity=*/8, /*ttl_ns=*/1'000,
                              /*lock_shards=*/1);
  PrefixBitmap bitmap;
  bitmap.Set(5);
  const Prefix25 prefix(Ipv4(10, 0, 0, 1));
  EXPECT_FALSE(cache.Lookup(prefix, 0).has_value());
  cache.Insert(prefix, bitmap, /*now_ns=*/0);
  auto hit = cache.Lookup(prefix, 500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->Test(5));
  // Past the TTL the entry is dropped on probe.
  EXPECT_FALSE(cache.Lookup(prefix, 2'000).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().expirations.load(), 1u);
}

TEST(ConcurrentCacheTest, LruEvictionAtCapacity) {
  ConcurrentPrefixCache cache(/*capacity=*/2, /*ttl_ns=*/1'000'000,
                              /*lock_shards=*/1);
  const Prefix25 a(Ipv4(10, 0, 0, 1));
  const Prefix25 b(Ipv4(10, 0, 1, 1));
  const Prefix25 c(Ipv4(10, 0, 2, 1));
  PrefixBitmap bitmap;
  cache.Insert(a, bitmap, 0);
  cache.Insert(b, bitmap, 0);
  // Touch `a` so `b` is the cold entry, then overflow.
  EXPECT_TRUE(cache.Lookup(a, 1).has_value());
  cache.Insert(c, bitmap, 2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions.load(), 1u);
  EXPECT_TRUE(cache.Lookup(a, 3).has_value());
  EXPECT_FALSE(cache.Lookup(b, 3).has_value());  // evicted
  EXPECT_TRUE(cache.Lookup(c, 3).has_value());
}

TEST(ConcurrentCacheTest, ConcurrentMixedLoadStaysBounded) {
  ConcurrentPrefixCache cache(/*capacity=*/64, /*ttl_ns=*/1'000'000'000,
                              /*lock_shards=*/4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      PrefixBitmap bitmap;
      bitmap.Set(t);
      for (int i = 0; i < 2'000; ++i) {
        const Prefix25 prefix(
            Ipv4(static_cast<std::uint32_t>((i * 131 + t) << 7)));
        if (i % 3 == 0) {
          cache.Insert(prefix, bitmap, i);
        } else {
          (void)cache.Lookup(prefix, i);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u);
  // Per thread: 667 inserts (i = 0, 3, ..., 1998), 1333 lookups.
  EXPECT_EQ(cache.stats().lookups.load(), 4u * 1'333u);
  EXPECT_EQ(cache.stats().insertions.load(), 4u * 667u);
}

// --- pipeline against a real daemon ------------------------------------

// Runs an EventLoop on its own thread with one AsyncLookupPipeline and
// synchronous Begin helpers (Begin must run on the loop thread).
class PipelineHarness {
 public:
  PipelineHarness(AsyncDnsblService& service) {
    auto loop = net::EventLoop::Create();
    EXPECT_TRUE(loop.ok());
    loop_ = std::move(*loop);
    pipeline_ = std::make_unique<AsyncLookupPipeline>(service, *loop_);
    EXPECT_TRUE(pipeline_->Init().ok());
    thread_ = std::thread([this] { (void)loop_->Run(); });
  }

  ~PipelineHarness() {
    loop_->Post([this] { pipeline_.reset(); });
    loop_->Stop();
    thread_.join();
    pipeline_.reset();  // in case the posted task never ran
  }

  // Begin on the loop thread; the future resolves on inline cache hits
  // and async verdicts alike.
  std::future<AsyncVerdict> Begin(Ipv4 ip) {
    auto promise = std::make_shared<std::promise<AsyncVerdict>>();
    auto future = promise->get_future();
    loop_->Post([this, ip, promise] {
      auto inline_verdict = pipeline_->Begin(
          ip, [promise](const AsyncVerdict& v) { promise->set_value(v); });
      if (inline_verdict.has_value()) promise->set_value(*inline_verdict);
    });
    return future;
  }

  AsyncLookupPipeline& pipeline() { return *pipeline_; }

 private:
  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<AsyncLookupPipeline> pipeline_;
  std::thread thread_;
};

class AsyncPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Add(Ipv4(192, 0, 2, 10), 2);
    daemon_ = std::make_unique<UdpDnsblDaemon>("async.bl.test", db_);
    auto port = daemon_->Start();
    ASSERT_TRUE(port.ok()) << port.error().ToString();
    cfg_.enabled = true;
    cfg_.zones = {{"async.bl.test", *port}};
    cfg_.timeout_ms = 2'000;
  }
  void TearDown() override { daemon_->Stop(); }

  BlacklistDb db_;
  std::unique_ptr<UdpDnsblDaemon> daemon_;
  AsyncDnsblConfig cfg_;
};

TEST_F(AsyncPipelineTest, ResolvesListedAndCleanOverRealDns) {
  AsyncDnsblService service(cfg_);
  PipelineHarness harness(service);
  auto listed = harness.Begin(Ipv4(192, 0, 2, 10)).get();
  EXPECT_TRUE(listed.blacklisted);
  EXPECT_FALSE(listed.degraded);
  EXPECT_FALSE(listed.cache_hit);
  EXPECT_GT(listed.latency_ns, 0);
  // The /25 bitmap now answers a neighbour inline from the cache.
  auto neighbour = harness.Begin(Ipv4(192, 0, 2, 11)).get();
  EXPECT_FALSE(neighbour.blacklisted);
  EXPECT_TRUE(neighbour.cache_hit);
  EXPECT_EQ(service.stats().cache_hits.load(), 1u);
  EXPECT_EQ(service.stats().lookups.load(), 2u);
  EXPECT_EQ(harness.pipeline().owned_flights(), 0u);
}

TEST_F(AsyncPipelineTest, SingleflightCoalescesConcurrentMisses) {
  // Hold answers back long enough that the second Begin lands while the
  // first round is still in flight.
  daemon_->Stop();
  daemon_ = std::make_unique<UdpDnsblDaemon>("async.bl.test", db_,
                                             /*ttl_seconds=*/3600,
                                             /*response_delay_ms=*/60);
  auto port = daemon_->Start();
  ASSERT_TRUE(port.ok());
  cfg_.zones = {{"async.bl.test", *port}};
  AsyncDnsblService service(cfg_);
  PipelineHarness harness(service);
  auto first = harness.Begin(Ipv4(192, 0, 2, 10));
  auto second = harness.Begin(Ipv4(192, 0, 2, 33));  // same /25
  EXPECT_TRUE(first.get().blacklisted);
  EXPECT_FALSE(second.get().blacklisted);  // per-IP verdict within the /25
  EXPECT_EQ(service.stats().coalesced.load(), 1u);
  // One DNS round served both callers.
  EXPECT_EQ(daemon_->stats().prefix_queries.load(), 1u);
}

TEST_F(AsyncPipelineTest, DroppedDatagramsFailOpenFault) {
  cfg_.timeout_ms = 40;
  cfg_.max_retries = 1;
  AsyncDnsblService service(cfg_);
  fault::ScopedArm arm(7);
  fault::Injector::Global().Set("dnsbl.udp.drop", {});  // drop every send
  PipelineHarness harness(service);
  auto verdict = harness.Begin(Ipv4(192, 0, 2, 10)).get();
  EXPECT_TRUE(verdict.degraded);
  EXPECT_FALSE(verdict.blacklisted);  // fail-open
  EXPECT_GE(service.stats().timeouts.load(), 1u);
  EXPECT_GE(service.stats().retries.load(), 1u);
  EXPECT_EQ(service.stats().degraded.load(), 1u);
  // Degraded verdicts are never cached: the next lookup is a fresh
  // round, which succeeds once the fault is cleared.
  fault::Injector::Global().Clear("dnsbl.udp.drop");
  auto retry = harness.Begin(Ipv4(192, 0, 2, 10)).get();
  EXPECT_FALSE(retry.cache_hit);
  EXPECT_TRUE(retry.blacklisted);
  EXPECT_FALSE(retry.degraded);
}

TEST_F(AsyncPipelineTest, DelayedSendStillCompletesFault) {
  fault::ScopedArm arm(8);
  fault::Policy delay;
  delay.action = fault::Action::kDelay;
  delay.delay_ms = 30;
  fault::Injector::Global().Set("dnsbl.udp.delay", delay);
  AsyncDnsblService service(cfg_);
  PipelineHarness harness(service);
  auto verdict = harness.Begin(Ipv4(192, 0, 2, 10)).get();
  EXPECT_TRUE(verdict.blacklisted);
  EXPECT_FALSE(verdict.degraded);
  EXPECT_GE(verdict.latency_ns, 30'000'000);
  EXPECT_GE(fault::Injector::Global().triggers("dnsbl.udp.delay"), 1u);
}

TEST_F(AsyncPipelineTest, FailClosedTreatsLostZoneAsListedFault) {
  cfg_.timeout_ms = 40;
  cfg_.max_retries = 0;
  cfg_.fail_open = false;
  AsyncDnsblService service(cfg_);
  fault::ScopedArm arm(9);
  fault::Injector::Global().Set("dnsbl.udp.drop", {});
  PipelineHarness harness(service);
  auto verdict = harness.Begin(Ipv4(203, 0, 113, 5)).get();
  EXPECT_TRUE(verdict.degraded);
  EXPECT_TRUE(verdict.blacklisted);
}

// --- end-to-end: the real server ---------------------------------------

class ServerDnsblTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Add(Ipv4(198, 51, 100, 7), 2);
    daemon_ = std::make_unique<UdpDnsblDaemon>("server.bl.test", db_);
    auto port = daemon_->Start();
    ASSERT_TRUE(port.ok());
    dns_port_ = *port;
    root_ = (std::filesystem::temp_directory_path() / "sams_dnsbl_async_test")
                .string();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override {
    daemon_->Stop();
    std::filesystem::remove_all(root_);
  }

  // Starts the server with every accepted connection posing as
  // `client_ip` for DNSBL purposes.
  std::unique_ptr<mta::SmtpServer> StartServer(Ipv4 client_ip, bool overlap,
                                               std::uint16_t& port) {
    auto store = mfs::MakeMfsStore(root_, {});
    EXPECT_TRUE(store.ok());
    store_ = std::move(*store);
    mta::RecipientDb recipients;
    recipients.AddMailbox("alice", "dept.test");
    mta::RealServerConfig cfg;
    cfg.architecture = mta::Architecture::kForkAfterTrust;
    cfg.worker_count = 1;
    cfg.num_shards = 1;
    cfg.recv_timeout_ms = 5'000;
    cfg.dnsbl.enabled = true;
    cfg.dnsbl.zones = {{"server.bl.test", dns_port_}};
    cfg.dnsbl_overlap = overlap;
    cfg.dnsbl_ip_mapper = [client_ip](const std::string&) { return client_ip; };
    auto server =
        std::make_unique<mta::SmtpServer>(cfg, std::move(recipients), *store_);
    auto bound = server->Start();
    EXPECT_TRUE(bound.ok()) << bound.error().ToString();
    port = bound.ok() ? *bound : 0;
    return server;
  }

  static smtp::MailJob Job() {
    smtp::MailJob job;
    job.helo = "client.test";
    job.mail_from = *smtp::Path::Parse("<a@client.test>");
    job.rcpts.push_back(*smtp::Path::Parse("<alice@dept.test>"));
    job.body = "hello\n";
    return job;
  }

  // Raw dialog up to RCPT; returns the RCPT reply line. A blacklisted
  // client's 554 closes the session, which SendMail would report as a
  // transport error on the QUIT it still tries to send.
  static std::string RcptReply(std::uint16_t port) {
    auto fd = net::TcpConnect("127.0.0.1", port);
    if (!fd.ok()) return "connect failed";
    if (!net::SetRecvTimeout(fd->get(), 5'000).ok()) return "sockopt failed";
    auto read_line = [&fd]() {
      std::string line;
      char ch = 0;
      while (line.size() < 512 && ::read(fd->get(), &ch, 1) == 1) {
        if (ch == '\n') return line;
        if (ch != '\r') line.push_back(ch);
      }
      return std::string("read failed");
    };
    auto send = [&fd](const char* cmd) {
      return ::write(fd->get(), cmd, std::strlen(cmd)) > 0;
    };
    (void)read_line();  // banner
    if (!send("HELO client.test\r\n")) return "send failed";
    (void)read_line();
    if (!send("MAIL FROM:<a@client.test>\r\n")) return "send failed";
    (void)read_line();
    if (!send("RCPT TO:<alice@dept.test>\r\n")) return "send failed";
    return read_line();
  }

  BlacklistDb db_;
  std::unique_ptr<UdpDnsblDaemon> daemon_;
  std::uint16_t dns_port_ = 0;
  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
};

TEST_F(ServerDnsblTest, BlacklistedClientGets554AtRcpt) {
  std::uint16_t port = 0;
  auto server = StartServer(Ipv4(198, 51, 100, 7), /*overlap=*/true, port);
  ASSERT_NE(port, 0);
  const std::string reply = RcptReply(port);
  EXPECT_EQ(reply.rfind("554", 0), 0u) << reply;
  server->Stop();
  EXPECT_EQ(server->stats().dnsbl_rejects.load(), 1u);
  EXPECT_EQ(server->stats().mails_delivered.load(), 0u);
}

TEST_F(ServerDnsblTest, CleanClientDeliversWithOverlappedLookup) {
  std::uint16_t port = 0;
  auto server = StartServer(Ipv4(198, 51, 100, 99), /*overlap=*/true, port);
  ASSERT_NE(port, 0);
  auto outcome = net::SendMail("127.0.0.1", port, Job());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->outcome, smtp::ClientOutcome::kDelivered);
  server->Stop();
  ASSERT_NE(server->dnsbl_service(), nullptr);
  EXPECT_GE(server->dnsbl_service()->stats().lookups.load(), 1u);
  EXPECT_EQ(server->stats().dnsbl_rejects.load(), 0u);
}

TEST_F(ServerDnsblTest, BlockingModeLaunchesLookupAtRcpt) {
  std::uint16_t port = 0;
  auto server = StartServer(Ipv4(198, 51, 100, 7), /*overlap=*/false, port);
  ASSERT_NE(port, 0);
  const std::string reply = RcptReply(port);
  EXPECT_EQ(reply.rfind("554", 0), 0u) << reply;
  server->Stop();
  EXPECT_EQ(server->stats().dnsbl_rejects.load(), 1u);
  // Without overlap the RCPT had to wait for the round: the session was
  // deferred at the gate.
  EXPECT_EQ(server->stats().dnsbl_deferred.load(), 1u);
}

TEST_F(ServerDnsblTest, VerdictsComeFromSharedCacheAcrossSessions) {
  std::uint16_t port = 0;
  auto server = StartServer(Ipv4(198, 51, 100, 40), /*overlap=*/true, port);
  ASSERT_NE(port, 0);
  for (int i = 0; i < 3; ++i) {
    auto outcome = net::SendMail("127.0.0.1", port, Job());
    ASSERT_TRUE(outcome.ok()) << i;
    EXPECT_EQ(outcome->outcome, smtp::ClientOutcome::kDelivered) << i;
  }
  server->Stop();
  ASSERT_NE(server->dnsbl_service(), nullptr);
  const auto& stats = server->dnsbl_service()->stats();
  EXPECT_EQ(stats.lookups.load(), 3u);
  EXPECT_GE(stats.cache_hits.load(), 2u);  // one miss fills the /25
  EXPECT_EQ(daemon_->stats().prefix_queries.load(), 1u);
}

}  // namespace
}  // namespace sams::dnsbl
