#include <gtest/gtest.h>

#include "dnsbl/blacklist_db.h"
#include "dnsbl/cache.h"
#include "dnsbl/dnsbl_server.h"
#include "dnsbl/resolver.h"
#include "fault/injector.h"

namespace sams::dnsbl {
namespace {

using util::Ipv4;
using util::Prefix24;
using util::Prefix25;
using util::SimTime;

TEST(PrefixBitmapTest, SetAndTest) {
  PrefixBitmap bm;
  EXPECT_FALSE(bm.Any());
  bm.Set(0);
  bm.Set(127);
  bm.Set(64);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(127));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.PopCount(), 3);
  EXPECT_TRUE(bm.Any());
}

TEST(PrefixBitmapTest, OrMerges) {
  PrefixBitmap a, b;
  a.Set(3);
  b.Set(100);
  a |= b;
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(100));
  EXPECT_EQ(a.PopCount(), 2);
}

TEST(BlacklistDbTest, AddLookupRemove) {
  BlacklistDb db;
  const Ipv4 ip(10, 1, 2, 3);
  EXPECT_FALSE(db.IsListed(ip));
  db.Add(ip, 4);
  EXPECT_EQ(db.Lookup(ip), 4);
  EXPECT_EQ(db.size(), 1u);
  db.Remove(ip);
  EXPECT_FALSE(db.IsListed(ip));
  EXPECT_EQ(db.size(), 0u);
}

TEST(BlacklistDbTest, ZeroCodeCoercedToListed) {
  BlacklistDb db;
  db.Add(Ipv4(1, 2, 3, 4), 0);
  EXPECT_TRUE(db.IsListed(Ipv4(1, 2, 3, 4)));
}

TEST(BlacklistDbTest, PrefixBitmapMatchesPerIpAnswers) {
  // The §7.1 guarantee: the bitmap identifies exactly the blacklisted
  // IPs — no IP not blacklisted is punished.
  BlacklistDb db;
  util::Rng rng(99);
  const Prefix25 p(Ipv4(192, 168, 7, 0));
  std::set<int> listed_bits;
  for (int i = 0; i < 40; ++i) {
    const int bit = static_cast<int>(rng.UniformInt(0, 127));
    listed_bits.insert(bit);
    db.Add(Ipv4(p.First().value() + static_cast<std::uint32_t>(bit)));
  }
  const PrefixBitmap bm = db.LookupPrefix(p);
  for (int bit = 0; bit < 128; ++bit) {
    const Ipv4 ip(p.First().value() + static_cast<std::uint32_t>(bit));
    EXPECT_EQ(bm.Test(bit), db.IsListed(ip)) << "bit " << bit;
    EXPECT_EQ(bm.TestIp(ip), db.IsListed(ip)) << "bit " << bit;
  }
  EXPECT_EQ(bm.PopCount(), static_cast<int>(listed_bits.size()));
}

TEST(BlacklistDbTest, RemoveUpdatesBitmap) {
  BlacklistDb db;
  const Ipv4 a(10, 0, 0, 5), b(10, 0, 0, 9);
  db.Add(a);
  db.Add(b);
  db.Remove(a);
  const PrefixBitmap bm = db.LookupPrefix(Prefix25(a));
  EXPECT_FALSE(bm.TestIp(a));
  EXPECT_TRUE(bm.TestIp(b));
}

TEST(BlacklistDbTest, CountInPrefix24) {
  BlacklistDb db;
  for (int i = 0; i < 30; ++i) {
    db.Add(Ipv4(172, 16, 5, static_cast<std::uint8_t>(i * 8)));
  }
  db.Add(Ipv4(172, 16, 6, 1));
  EXPECT_EQ(db.CountInPrefix24(Prefix24(Ipv4(172, 16, 5, 0))), 30);
  EXPECT_EQ(db.CountInPrefix24(Prefix24(Ipv4(172, 16, 6, 0))), 1);
  EXPECT_EQ(db.CountInPrefix24(Prefix24(Ipv4(172, 16, 7, 0))), 0);
  db.Remove(Ipv4(172, 16, 6, 1));
  EXPECT_EQ(db.CountInPrefix24(Prefix24(Ipv4(172, 16, 6, 0))), 0);
}

TEST(BlacklistDbTest, DuplicateAddKeepsSingleEntry) {
  BlacklistDb db;
  db.Add(Ipv4(1, 1, 1, 1), 2);
  db.Add(Ipv4(1, 1, 1, 1), 4);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.Lookup(Ipv4(1, 1, 1, 1)), 4);
  EXPECT_EQ(db.CountInPrefix24(Prefix24(Ipv4(1, 1, 1, 1))), 1);
}

TEST(LatencyProfileTest, SamplesWithinConfiguredRange) {
  util::Rng rng(5);
  LatencyProfile profile{3.0, 0.5, 0.3, 100.0, 500.0};
  int beyond_knee = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const SimTime t = profile.Sample(rng);
    EXPECT_GT(t.nanos(), 0);
    EXPECT_LE(t.millis(), 500.0 + 1e-9);
    if (t.millis() > 100.0) ++beyond_knee;
  }
  // Tail probability ~0.3 (body is clamped at the knee).
  EXPECT_NEAR(static_cast<double>(beyond_knee) / n, 0.3, 0.03);
}

TEST(DnsblServerTest, AnswersMatchDatabase) {
  auto db = std::make_shared<BlacklistDb>();
  db->Add(Ipv4(66, 55, 44, 33), 7);
  util::Rng rng(3);
  DnsblServer server("test.zone", db, LatencyProfile{});
  EXPECT_EQ(server.QueryIp(Ipv4(66, 55, 44, 33), rng).code, 7);
  EXPECT_EQ(server.QueryIp(Ipv4(66, 55, 44, 34), rng).code, 0);
  EXPECT_EQ(server.queries_received(), 2u);
}

TEST(DnsblServerTest, PrefixAnswerConsistentWithIpAnswers) {
  auto db = std::make_shared<BlacklistDb>();
  const Prefix25 p(Ipv4(20, 30, 40, 128));
  db->Add(Ipv4(20, 30, 40, 130));
  db->Add(Ipv4(20, 30, 40, 200));
  util::Rng rng(3);
  DnsblServer server("test.zone", db, LatencyProfile{});
  const auto answer = server.QueryPrefix(p, rng);
  for (int bit = 0; bit < 128; ++bit) {
    const Ipv4 ip(p.First().value() + static_cast<std::uint32_t>(bit));
    EXPECT_EQ(answer.bitmap.Test(bit), db->IsListed(ip));
  }
}

TEST(FigureFiveServersTest, SixListsWithDistinctCoverage) {
  util::Rng rng(17);
  std::vector<Ipv4> ips;
  for (int i = 0; i < 5000; ++i) {
    ips.push_back(Ipv4(static_cast<std::uint32_t>(rng.NextU64())));
  }
  auto servers = MakeFigureFiveServers(ips, rng);
  ASSERT_EQ(servers.size(), 6u);
  const auto& specs = FigureFiveListSpecs();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    EXPECT_EQ(servers[i]->zone(), specs[i].zone);
    const double coverage =
        static_cast<double>(servers[i]->db().size()) / ips.size();
    EXPECT_NEAR(coverage, specs[i].coverage, 0.03) << specs[i].zone;
  }
}

TEST(TtlCacheTest, MissThenHit) {
  IpCache cache(SimTime::Hours(24));
  const Ipv4 ip(9, 9, 9, 9);
  EXPECT_EQ(cache.Lookup(ip, SimTime::Seconds(0)), nullptr);
  cache.Insert(ip, IpVerdict{true}, SimTime::Seconds(0));
  const IpVerdict* v = cache.Lookup(ip, SimTime::Seconds(10));
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->blacklisted);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TtlCacheTest, EntriesExpire) {
  IpCache cache(SimTime::Hours(24));
  const Ipv4 ip(9, 9, 9, 9);
  cache.Insert(ip, IpVerdict{true}, SimTime::Seconds(0));
  EXPECT_NE(cache.Lookup(ip, SimTime::Hours(24)), nullptr);
  EXPECT_EQ(cache.Lookup(ip, SimTime::Hours(25)), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST(TtlCacheTest, ReinsertRefreshesTtl) {
  IpCache cache(SimTime::Hours(1));
  const Ipv4 ip(9, 9, 9, 9);
  cache.Insert(ip, IpVerdict{false}, SimTime::Seconds(0));
  cache.Insert(ip, IpVerdict{true}, SimTime::Minutes(50));
  const IpVerdict* v = cache.Lookup(ip, SimTime::Minutes(100));
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->blacklisted);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TtlCacheTest, CapacityEvictsLeastRecentlyUsed) {
  IpCache cache(SimTime::Hours(24), /*capacity=*/2);
  EXPECT_EQ(cache.capacity(), 2u);
  const Ipv4 a(10, 0, 0, 1);
  const Ipv4 b(10, 0, 0, 2);
  const Ipv4 c(10, 0, 0, 3);
  cache.Insert(a, IpVerdict{true}, SimTime::Seconds(0));
  cache.Insert(b, IpVerdict{false}, SimTime::Seconds(1));
  // Touch `a`; `b` becomes the cold entry and is displaced by `c`.
  EXPECT_NE(cache.Lookup(a, SimTime::Seconds(2)), nullptr);
  cache.Insert(c, IpVerdict{true}, SimTime::Seconds(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(a, SimTime::Seconds(4)), nullptr);
  EXPECT_EQ(cache.Lookup(b, SimTime::Seconds(4)), nullptr);
  EXPECT_NE(cache.Lookup(c, SimTime::Seconds(4)), nullptr);
}

TEST(TtlCacheTest, OverwriteRefreshesRecencyNotEvictionCount) {
  IpCache cache(SimTime::Hours(24), /*capacity=*/2);
  const Ipv4 a(10, 0, 0, 1);
  const Ipv4 b(10, 0, 0, 2);
  cache.Insert(a, IpVerdict{true}, SimTime::Seconds(0));
  cache.Insert(b, IpVerdict{false}, SimTime::Seconds(1));
  // Overwriting `a` must not evict anyone and must mark it hot...
  cache.Insert(a, IpVerdict{false}, SimTime::Seconds(2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // ...so the next displacement hits `b`.
  cache.Insert(Ipv4(10, 0, 0, 3), IpVerdict{true}, SimTime::Seconds(3));
  EXPECT_NE(cache.Lookup(a, SimTime::Seconds(4)), nullptr);
  EXPECT_EQ(cache.Lookup(b, SimTime::Seconds(4)), nullptr);
}

TEST(TtlCacheTest, ExpiredEntryLeavesLruConsistent) {
  IpCache cache(SimTime::Hours(1), /*capacity=*/2);
  const Ipv4 a(10, 0, 0, 1);
  const Ipv4 b(10, 0, 0, 2);
  cache.Insert(a, IpVerdict{true}, SimTime::Seconds(0));
  cache.Insert(b, IpVerdict{false}, SimTime::Seconds(0));
  // `a` expires on probe; the freed slot admits a new entry without an
  // eviction, and the cache keeps working at capacity afterwards.
  EXPECT_EQ(cache.Lookup(a, SimTime::Hours(2)), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.Insert(Ipv4(10, 0, 0, 3), IpVerdict{true}, SimTime::Hours(2));
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.Insert(Ipv4(10, 0, 0, 4), IpVerdict{true}, SimTime::Hours(2));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TtlCacheTest, UnboundedByDefaultNeverEvicts) {
  IpCache cache(SimTime::Hours(24));
  for (int i = 0; i < 1'000; ++i) {
    cache.Insert(Ipv4(static_cast<std::uint32_t>(i)), IpVerdict{false},
                 SimTime::Seconds(0));
  }
  EXPECT_EQ(cache.size(), 1'000u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.capacity(), 0u);
}

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_shared<BlacklistDb>();
    db_->Add(Ipv4(10, 0, 0, 1));
    db_->Add(Ipv4(10, 0, 0, 50));   // same /25 as .1
    db_->Add(Ipv4(10, 0, 0, 200));  // other half of the /24
    LatencyProfile quick{2.0, 0.1, 0.0, 100.0, 200.0};
    server_a_ = std::make_unique<DnsblServer>("a.zone", db_, quick);
    server_b_ = std::make_unique<DnsblServer>("b.zone", db_, quick);
  }

  Resolver Make(CacheMode mode) {
    return Resolver(mode, {server_a_.get(), server_b_.get()},
                    SimTime::Hours(24), rng_);
  }

  std::shared_ptr<BlacklistDb> db_;
  std::unique_ptr<DnsblServer> server_a_;
  std::unique_ptr<DnsblServer> server_b_;
  util::Rng rng_{31};
};

TEST_F(ResolverTest, NoCacheAlwaysQueries) {
  Resolver r = Make(CacheMode::kNoCache);
  for (int i = 0; i < 3; ++i) {
    const auto out = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(i));
    EXPECT_TRUE(out.blacklisted);
    EXPECT_FALSE(out.cache_hit);
    EXPECT_EQ(out.dns_queries, 2);
    EXPECT_GT(out.latency.nanos(), 0);
  }
  EXPECT_EQ(r.stats().dns_queries_sent, 6u);
  EXPECT_EQ(r.stats().cache_hits, 0u);
}

TEST_F(ResolverTest, IpCacheHitsOnRepeat) {
  Resolver r = Make(CacheMode::kIpCache);
  const auto miss = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  EXPECT_FALSE(miss.cache_hit);
  const auto hit = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(5));
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.blacklisted);
  EXPECT_EQ(hit.latency.nanos(), 0);
  EXPECT_EQ(hit.dns_queries, 0);
  // A different IP in the same /25 still misses under IP caching.
  const auto neighbour = r.Lookup(Ipv4(10, 0, 0, 50), SimTime::Seconds(6));
  EXPECT_FALSE(neighbour.cache_hit);
}

TEST_F(ResolverTest, PrefixCacheHitsForNeighbours) {
  Resolver r = Make(CacheMode::kPrefixCache);
  const auto miss = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(miss.blacklisted);
  // The rest of the /25 now hits — including non-listed neighbours.
  const auto hit_listed = r.Lookup(Ipv4(10, 0, 0, 50), SimTime::Seconds(1));
  EXPECT_TRUE(hit_listed.cache_hit);
  EXPECT_TRUE(hit_listed.blacklisted);
  const auto hit_clean = r.Lookup(Ipv4(10, 0, 0, 77), SimTime::Seconds(2));
  EXPECT_TRUE(hit_clean.cache_hit);
  EXPECT_FALSE(hit_clean.blacklisted);  // no punishment of unlisted IPs
  // The other /25 half misses (separate bitmap).
  const auto other_half = r.Lookup(Ipv4(10, 0, 0, 200), SimTime::Seconds(3));
  EXPECT_FALSE(other_half.cache_hit);
  EXPECT_TRUE(other_half.blacklisted);
}

TEST_F(ResolverTest, PrefixVerdictsEqualIpVerdicts) {
  // Exactness property: for every IP, the prefix-cached verdict must
  // equal the direct per-IP verdict.
  Resolver ip_r = Make(CacheMode::kIpCache);
  Resolver px_r = Make(CacheMode::kPrefixCache);
  for (int host = 0; host < 256; ++host) {
    const Ipv4 ip(10, 0, 0, static_cast<std::uint8_t>(host));
    const auto a = ip_r.Lookup(ip, SimTime::Seconds(host));
    const auto b = px_r.Lookup(ip, SimTime::Seconds(host));
    EXPECT_EQ(a.blacklisted, b.blacklisted) << ip.ToString();
  }
}

TEST_F(ResolverTest, PrefixModeSendsFewerQueries) {
  Resolver ip_r = Make(CacheMode::kIpCache);
  Resolver px_r = Make(CacheMode::kPrefixCache);
  // A botnet burst: 60 distinct IPs from the same /25.
  for (int i = 0; i < 60; ++i) {
    const Ipv4 ip(10, 0, 0, static_cast<std::uint8_t>(i));
    ip_r.Lookup(ip, SimTime::Seconds(i));
    px_r.Lookup(ip, SimTime::Seconds(i));
  }
  EXPECT_EQ(px_r.stats().dns_queries_sent, 2u);            // one round
  EXPECT_EQ(ip_r.stats().dns_queries_sent, 60u * 2u);      // every time
  EXPECT_GT(px_r.stats().HitRatio(), 0.95);
  EXPECT_EQ(ip_r.stats().HitRatio(), 0.0);
}

TEST_F(ResolverTest, TtlExpiryForcesRequery) {
  Resolver r = Make(CacheMode::kIpCache);
  r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  const auto hit = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Hours(23));
  EXPECT_TRUE(hit.cache_hit);
  const auto expired = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Hours(25));
  EXPECT_FALSE(expired.cache_hit);
}

TEST_F(ResolverTest, PrefixCacheLiftsHitRatioAsInSection7) {
  // §7 Figure 13: over the sinkhole trace the per-IP cache answers
  // 73.8% of lookups; /25-prefix caching lifts that to 83.9% because
  // fresh bot IPs keep arriving from already-seen prefixes. Reproduce
  // the shape with a synthetic workload of ~74% repeat IPs and ~26%
  // fresh IPs drawn from a bounded pool of /25 prefixes, and read the
  // ratios back through the metrics registry each resolver exports to.
  // (Each resolver gets its own registry: the inner ip/prefix cache
  // counters are labelled only by cache kind, so two resolvers in one
  // registry would share them.)
  util::Rng workload_rng(1234);
  const int kPrefixPool = 800;
  std::vector<Ipv4> sequence;
  std::vector<Ipv4> seen;
  for (int i = 0; i < 4000; ++i) {
    if (!seen.empty() && workload_rng.NextDouble() < 0.74) {
      sequence.push_back(seen[static_cast<std::size_t>(workload_rng.UniformInt(
          0, static_cast<std::int64_t>(seen.size()) - 1))]);
    } else {
      const auto prefix =
          static_cast<std::uint32_t>(workload_rng.UniformInt(0, kPrefixPool - 1));
      const auto host =
          static_cast<std::uint32_t>(workload_rng.UniformInt(0, 127));
      const Ipv4 ip((0x0A000000u | (prefix << 7)) + host);
      sequence.push_back(ip);
      seen.push_back(ip);
    }
  }

  obs::Registry ip_registry, px_registry;
  Resolver ip_r = Make(CacheMode::kIpCache);
  Resolver px_r = Make(CacheMode::kPrefixCache);
  ip_r.BindMetrics(ip_registry);
  px_r.BindMetrics(px_registry);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const SimTime now = SimTime::Seconds(static_cast<double>(i));
    ip_r.Lookup(sequence[i], now);
    px_r.Lookup(sequence[i], now);
  }

  const double ip_ratio = ip_r.stats().HitRatio();
  const double px_ratio = px_r.stats().HitRatio();
  EXPECT_GT(ip_ratio, 0.68);
  EXPECT_LT(ip_ratio, 0.80);
  EXPECT_GT(px_ratio, ip_ratio + 0.04) << "prefix cache must lift the ratio";
  EXPECT_LT(px_ratio, 0.92);
  // Fewer misses → fewer DNS rounds on the wire.
  EXPECT_LT(px_r.stats().dns_queries_sent, ip_r.stats().dns_queries_sent);

  // The registry view agrees with the resolver's own stats.
  auto counter = [](const obs::Registry& registry, const char* name,
                    const char* mode) {
    const obs::Counter* c =
        registry.FindCounter(name, {{"mode", mode}});
    return c != nullptr ? c->value() : ~std::uint64_t{0};
  };
  EXPECT_EQ(counter(ip_registry, "sams_dnsbl_lookups_total", "ip-cache"),
            ip_r.stats().lookups);
  EXPECT_EQ(counter(ip_registry, "sams_dnsbl_cache_hits_total", "ip-cache"),
            ip_r.stats().cache_hits);
  EXPECT_EQ(
      counter(ip_registry, "sams_dnsbl_queries_sent_total", "ip-cache"),
      ip_r.stats().dns_queries_sent);
  EXPECT_EQ(
      counter(px_registry, "sams_dnsbl_lookups_total", "prefix-cache"),
      px_r.stats().lookups);
  EXPECT_EQ(
      counter(px_registry, "sams_dnsbl_cache_hits_total", "prefix-cache"),
      px_r.stats().cache_hits);
  EXPECT_EQ(
      counter(px_registry, "sams_dnsbl_queries_sent_total", "prefix-cache"),
      px_r.stats().dns_queries_sent);
}

TEST(CacheModeNameTest, Names) {
  EXPECT_STREQ(CacheModeName(CacheMode::kNoCache), "no-cache");
  EXPECT_STREQ(CacheModeName(CacheMode::kIpCache), "ip-cache");
  EXPECT_STREQ(CacheModeName(CacheMode::kPrefixCache), "prefix-cache");
}

// --- hardened query round: timeout, retry, circuit breaker -------------

class ResolverFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_shared<BlacklistDb>();
    db_->Add(Ipv4(10, 0, 0, 1));
    LatencyProfile quick{2.0, 0.1, 0.0, 100.0, 200.0};
    server_a_ = std::make_unique<DnsblServer>("a.zone", db_, quick);
    server_b_ = std::make_unique<DnsblServer>("b.zone", db_, quick);
  }

  Resolver Make(CacheMode mode) {
    return Resolver(mode, {server_a_.get(), server_b_.get()},
                    SimTime::Hours(24), rng_);
  }

  static QueryPolicy HardenedPolicy() {
    QueryPolicy p;
    p.enabled = true;
    p.timeout = SimTime::Millis(800);
    p.max_retries = 1;
    p.retry_backoff = SimTime::Millis(40);
    p.breaker_threshold = 3;
    p.breaker_cooldown = SimTime::Seconds(30);
    return p;
  }

  // Blackholes every query to server b (the injected error = the query
  // was sent and no answer ever comes back).
  static void BlackholeB() {
    fault::Injector::Global().Set("dnsbl.query.b.zone", fault::Policy{});
  }

  std::shared_ptr<BlacklistDb> db_;
  std::unique_ptr<DnsblServer> server_a_;
  std::unique_ptr<DnsblServer> server_b_;
  util::Rng rng_{31};
};

TEST_F(ResolverFaultTest, PolicyOffPreservesLegacyBehaviour) {
  Resolver r = Make(CacheMode::kNoCache);
  EXPECT_FALSE(r.query_policy().enabled);
  const auto out = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  EXPECT_TRUE(out.blacklisted);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.dns_queries, 2);
  EXPECT_EQ(r.stats().timeouts, 0u);
}

TEST_F(ResolverFaultTest, BlackholedServerBoundedByBudget) {
  fault::ScopedArm arm(42);
  BlackholeB();
  Resolver r = Make(CacheMode::kNoCache);
  const QueryPolicy policy = HardenedPolicy();
  r.SetQueryPolicy(policy);

  const auto out = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  // Server a still answers, so the listed verdict survives fail-open.
  EXPECT_TRUE(out.blacklisted);
  EXPECT_TRUE(out.degraded);
  // The wait is bounded by the per-server budget — never unbounded as
  // in the legacy wait-for-the-slowest round.
  EXPECT_LE(out.latency, policy.Budget());
  // b burned timeout+retry: 2 attempts timed out, 1 retry issued.
  EXPECT_EQ(r.stats().timeouts, 2u);
  EXPECT_EQ(r.stats().retries, 1u);
  EXPECT_EQ(r.server_health(1).consecutive_failures, 1);
}

TEST_F(ResolverFaultTest, BreakerOpensAfterThresholdAndSkips) {
  fault::ScopedArm arm(42);
  BlackholeB();
  Resolver r = Make(CacheMode::kNoCache);
  const QueryPolicy policy = HardenedPolicy();
  r.SetQueryPolicy(policy);

  // Each lookup = one consecutive failure for b; threshold trips at 3.
  for (int i = 0; i < 3; ++i) {
    (void)r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(i));
  }
  EXPECT_EQ(r.stats().breaker_trips, 1u);
  EXPECT_EQ(r.server_health(1).trips, 1u);

  // While open, b is skipped without waiting: the round is now as fast
  // as server a alone.
  const auto out = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(5));
  EXPECT_TRUE(out.degraded);
  EXPECT_LT(out.latency, policy.timeout);
  EXPECT_GE(r.stats().breaker_skips, 1u);

  // After the cooldown the breaker half-closes: b is probed again (and
  // fails again, re-tripping).
  (void)r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(60));
  EXPECT_GT(r.stats().timeouts, 6u);
}

TEST_F(ResolverFaultTest, FailOpenVersusFailClosedVerdicts) {
  fault::ScopedArm arm(42);
  // Blackhole BOTH servers: the verdict is pure policy.
  fault::Injector::Global().Set("dnsbl.query.a.zone", fault::Policy{});
  BlackholeB();

  Resolver open = Make(CacheMode::kNoCache);
  QueryPolicy p = HardenedPolicy();
  p.fail_open = true;
  open.SetQueryPolicy(p);
  const auto open_out = open.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  EXPECT_FALSE(open_out.blacklisted);  // unlisted: let the mail in
  EXPECT_TRUE(open_out.degraded);

  Resolver closed = Make(CacheMode::kNoCache);
  p.fail_open = false;
  closed.SetQueryPolicy(p);
  const auto closed_out =
      closed.Lookup(Ipv4(192, 168, 7, 7), SimTime::Seconds(0));
  EXPECT_TRUE(closed_out.blacklisted);  // listed: paranoid reject
  EXPECT_TRUE(closed_out.degraded);
}

TEST_F(ResolverFaultTest, DegradedVerdictsAreNotCached) {
  fault::ScopedArm arm(42);
  BlackholeB();
  Resolver r = Make(CacheMode::kIpCache);
  r.SetQueryPolicy(HardenedPolicy());

  // Degraded lookup: must NOT poison the 24h cache.
  const auto first = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  EXPECT_TRUE(first.degraded);
  EXPECT_EQ(r.stats().degraded_lookups, 1u);

  // Heal b; the next lookup must re-query (no cache hit) and, now
  // healthy, the full verdict is cached.
  fault::Injector::Global().Clear("dnsbl.query.b.zone");
  const auto second = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(10));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_FALSE(second.degraded);
  const auto third = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(20));
  EXPECT_TRUE(third.cache_hit);
}

TEST_F(ResolverFaultTest, PrefixModeDegradedAlsoUncached) {
  fault::ScopedArm arm(42);
  BlackholeB();
  Resolver r = Make(CacheMode::kPrefixCache);
  r.SetQueryPolicy(HardenedPolicy());
  const auto first = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(0));
  EXPECT_TRUE(first.degraded);
  fault::Injector::Global().Clear("dnsbl.query.b.zone");
  const auto second = r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(10));
  EXPECT_FALSE(second.cache_hit) << "degraded bitmap was cached";
  EXPECT_TRUE(second.blacklisted);
}

TEST_F(ResolverFaultTest, ChaosRunIsSeedDeterministic) {
  auto run = [this](std::uint64_t seed) {
    fault::ScopedArm arm(seed);
    fault::Policy flaky;
    flaky.probability = 0.5;  // half the queries to b vanish
    fault::Injector::Global().Set("dnsbl.query.b.zone", flaky);
    util::Rng rng(99);
    Resolver r(CacheMode::kNoCache, {server_a_.get(), server_b_.get()},
               SimTime::Hours(24), rng);
    r.SetQueryPolicy(HardenedPolicy());
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 32; ++i) {
      (void)r.Lookup(Ipv4(10, 0, 0, 1), SimTime::Seconds(i));
      trace.push_back(r.stats().timeouts);
    }
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace sams::dnsbl
