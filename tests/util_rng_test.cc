#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace sams::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::map<std::int64_t, int> hist;
  for (int i = 0; i < 60'000; ++i) ++hist[rng.UniformInt(3, 8)];
  ASSERT_EQ(hist.size(), 6u);
  EXPECT_EQ(hist.begin()->first, 3);
  EXPECT_EQ(hist.rbegin()->first, 8);
  // Each bucket should get roughly 10k; allow wide tolerance.
  for (const auto& [k, v] : hist) {
    EXPECT_GT(v, 8'000) << "value " << k;
    EXPECT_LT(v, 12'000) << "value " << k;
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(25.0);
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(rng.LogNormal(8.0, 1.5), 0.0);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, ParetoIsHeavyTailed) {
  Rng rng(29);
  int beyond10x = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.Pareto(1.0, 1.0) > 10.0) ++beyond10x;
  }
  // For alpha=1, P(X > 10) = 0.1.
  EXPECT_NEAR(static_cast<double>(beyond10x) / n, 0.1, 0.01);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> hist(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++hist[rng.WeightedIndex(w)];
  EXPECT_NEAR(hist[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hist[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(hist[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(37);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

TEST(ZipfTest, RankOneIsMostPopular) {
  Rng rng(41);
  ZipfDistribution zipf(1.2, 100);
  std::vector<int> hist(101, 0);
  for (int i = 0; i < 50'000; ++i) ++hist[zipf.Sample(rng)];
  EXPECT_GT(hist[1], hist[2]);
  EXPECT_GT(hist[2], hist[10]);
  EXPECT_GT(hist[10], hist[90] - 50);  // monotone up to noise
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(43);
  ZipfDistribution zipf(0.8, 17);
  for (int i = 0; i < 10'000; ++i) {
    const std::size_t r = zipf.Sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 17u);
  }
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Rng rng(47);
  ZipfDistribution zipf(0.0, 4);
  std::vector<int> hist(5, 0);
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++hist[zipf.Sample(rng)];
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(hist[k] / static_cast<double>(n), 0.25, 0.01);
  }
}

}  // namespace
}  // namespace sams::util
