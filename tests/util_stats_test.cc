#include "util/stats.h"

#include <gtest/gtest.h>

namespace sams::util {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MeanMinMaxSum) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 6.0}) s.Add(x);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(OnlineStatsTest, VarianceMatchesClosedForm) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  // Population variance of {1,2,3,4} is 1.25.
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_NEAR(s.stddev(), 1.1180339887, 1e-9);
}

TEST(SamplerTest, PercentilesOfKnownData) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SamplerTest, PercentileSingleElement) {
  Sampler s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(SamplerTest, TailPercentilesAreMonotonicAndBounded) {
  Sampler s;
  // 999 fast observations plus one extreme outlier: p99.9 must sit
  // between p99 and the max, never beyond it.
  for (int i = 0; i < 999; ++i) s.Add(1.0 + 0.001 * i);
  s.Add(5'000.0);
  const double p50 = s.Percentile(50);
  const double p99 = s.Percentile(99);
  const double p999 = s.Percentile(99.9);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, s.Percentile(100));
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5'000.0);
}

TEST(SamplerTest, PercentileEmptyIsZero) {
  Sampler s;
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.9), 0.0);
}

TEST(SamplerTest, CdfAt) {
  Sampler s;
  for (int i = 1; i <= 10; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(100.0), 1.0);
}

TEST(SamplerTest, CdfSeriesMonotone) {
  Sampler s;
  for (int i = 0; i < 1000; ++i) s.Add((i * 37) % 101);
  const auto series = s.CdfSeries(20);
  ASSERT_EQ(series.size(), 20u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].value, series[i].value);
    EXPECT_LT(series[i - 1].fraction, series[i].fraction);
  }
  EXPECT_DOUBLE_EQ(series.back().fraction, 1.0);
}

TEST(SamplerTest, AddAfterQueryResorts) {
  Sampler s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
}

TEST(SamplerTest, MeanOfEmptyIsZero) {
  Sampler s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(CountersTest, IncrementAndGet) {
  Counters c;
  c.Inc("forks");
  c.Inc("forks", 2);
  c.Inc("ctx_switches", 10);
  EXPECT_EQ(c.Get("forks"), 3);
  EXPECT_EQ(c.Get("ctx_switches"), 10);
  EXPECT_EQ(c.Get("missing"), 0);
}

TEST(CountersTest, SortedOutput) {
  Counters c;
  c.Inc("zeta");
  c.Inc("alpha");
  const auto sorted = c.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "alpha");
  EXPECT_EQ(sorted[1].first, "zeta");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "23"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTableTest, NumAndPctFormat) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(10, 0), "10");
  EXPECT_EQ(TextTable::Pct(0.401, 1), "40.1%");
}

}  // namespace
}  // namespace sams::util
