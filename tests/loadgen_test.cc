// Load-storm harness tests: workload determinism (same seed → same
// dialog schedule), the storm driver against live server shards, the
// server's partial-write reply continuation under a slow-reading peer,
// mid-dialog disconnects with buffered replies, errno-classified
// transport failures, and the EMFILE accept re-drain (fd exhaustion
// must never starve already-accepted sessions). Runs under TSan in CI
// (LABELS threads).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "loadgen/load_storm.h"
#include "loadgen/workload.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"
#include "net/tcp.h"
#include "util/fd.h"

namespace sams::loadgen {
namespace {

using mta::Architecture;
using mta::RealServerConfig;
using mta::RecipientDb;
using mta::SmtpServer;

bool EventuallyTrue(const std::function<bool()>& predicate) {
  for (int i = 0; i < 300; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

// ---------------------------------------------------------------------
// Workload model: pure, deterministic plan synthesis.

TEST(WorkloadModel, SameSeedSameSchedule) {
  WorkloadConfig cfg;
  WorkloadModel a(cfg, 1234);
  WorkloadModel b(cfg, 1234);
  for (int i = 0; i < 200; ++i) {
    const SessionPlan pa = a.Next();
    const SessionPlan pb = b.Next();
    ASSERT_EQ(pa.digest, pb.digest) << "plan " << i << " diverged";
    ASSERT_EQ(pa.steps.size(), pb.steps.size());
    for (std::size_t s = 0; s < pa.steps.size(); ++s) {
      ASSERT_EQ(pa.steps[s].bytes, pb.steps[s].bytes);
    }
  }
}

TEST(WorkloadModel, DifferentSeedsDiverge) {
  WorkloadConfig cfg;
  WorkloadModel a(cfg, 1);
  WorkloadModel b(cfg, 2);
  std::uint64_t ha = kFnvOffset, hb = kFnvOffset;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t da = a.Next().digest;
    const std::uint64_t db = b.Next().digest;
    ha = Fnv1a(ha, &da, sizeof(da));
    hb = Fnv1a(hb, &db, sizeof(db));
  }
  EXPECT_NE(ha, hb);
}

TEST(WorkloadModel, PipelinedFusionKeepsReplyAccounting) {
  WorkloadConfig cfg;
  cfg.spam_weight = 1;
  cfg.ham_weight = 0;
  cfg.bounce_weight = 0;
  cfg.spam_pipeline_frac = 1.0;  // every spam plan fuses
  WorkloadModel model(cfg, 99);
  for (int i = 0; i < 40; ++i) {
    const SessionPlan plan = model.Next();
    ASSERT_TRUE(plan.pipelined);
    int replies = 0;
    std::size_t tags = 0;
    int commands = 0;
    for (const auto& step : plan.steps) {
      replies += step.expect_replies;
      tags += step.reply_tags.size();
      for (std::size_t p = 0; p + 1 < step.bytes.size(); ++p) {
        if (step.bytes[p] == '\r' && step.bytes[p + 1] == '\n' &&
            !step.is_body) {
          ++commands;
        }
      }
    }
    // One reply expected (and one tag) per command line in the blast;
    // the body step carries exactly one of each.
    EXPECT_EQ(static_cast<std::size_t>(replies), tags);
    EXPECT_GE(replies, 5);  // HELO MAIL RCPT+ DATA body QUIT
  }
}

TEST(WorkloadModel, ClassShapesMatchTheFlowModel) {
  WorkloadConfig cfg;
  cfg.ham_weight = 1;
  cfg.spam_weight = 0;
  cfg.bounce_weight = 0;
  WorkloadModel ham(cfg, 5);
  for (int i = 0; i < 20; ++i) {
    const SessionPlan plan = ham.Next();
    EXPECT_EQ(plan.klass, TrafficClass::kHam);
    EXPECT_FALSE(plan.pregreet);   // ham always waits for the banner
    EXPECT_FALSE(plan.pipelined);
  }
  cfg.ham_weight = 0;
  cfg.bounce_weight = 1;
  WorkloadModel bounce(cfg, 5);
  const SessionPlan plan = bounce.Next();
  bool null_sender = false;
  for (const auto& step : plan.steps) {
    if (step.bytes.find("MAIL FROM:<>") != std::string::npos) {
      null_sender = true;
    }
  }
  EXPECT_TRUE(null_sender);  // DSNs use the null reverse-path
}

// ---------------------------------------------------------------------
// Live-server fixtures.

class LoadgenServerTest : public ::testing::Test {
 protected:
  void StartServer(RealServerConfig cfg) {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/loadgen_srv_" + tag;
    std::filesystem::remove_all(root_);
    auto store = mfs::MakeMfsStore(root_, {});
    ASSERT_TRUE(store.ok()) << store.error().ToString();
    store_ = std::move(store).value();
    RecipientDb db;
    db.AddMailbox("alice", "dept.test");
    db.AddMailbox("bob", "dept.test");
    server_ = std::make_unique<SmtpServer>(cfg, std::move(db), *store_);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.error().ToString();
    port_ = *port;
  }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    store_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
  std::unique_ptr<SmtpServer> server_;
  std::uint16_t port_ = 0;
};

StormConfig SmallStorm(std::uint16_t port, std::uint64_t seed) {
  StormConfig storm;
  storm.port = port;
  storm.concurrency = 8;
  storm.total_sessions = 40;
  storm.seed = seed;
  storm.reply_timeout_ms = 10'000;
  storm.connect_timeout_ms = 10'000;
  storm.deadline_ms = 30'000;
  return storm;
}

TEST_F(LoadgenServerTest, StormDrivesTheShardedServer) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.num_shards = 1;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 10'000;
  StartServer(cfg);

  StormConfig storm = SmallStorm(port_, 7);
  storm.workload.ham_weight = 1;  // all-valid dialogs: every one delivers
  storm.workload.spam_weight = 0;
  storm.workload.bounce_weight = 0;
  auto result = LoadStorm(std::move(storm)).Run();
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->launched, 40u);
  EXPECT_EQ(result->completed, 40u);
  EXPECT_EQ(result->delivered, 40u);
  EXPECT_GT(result->rcpt_250, 0u);
  EXPECT_GT(result->ham_rcpt_stall_ms.count(), 0u);
  EXPECT_TRUE(result->errors.empty());
  EXPECT_EQ(server_->stats().mails_delivered.load(), 40u);
}

TEST_F(LoadgenServerTest, SameSeedSameScheduleDigest) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.num_shards = 1;
  cfg.worker_count = 2;
  cfg.recv_timeout_ms = 10'000;
  StartServer(cfg);

  auto first = LoadStorm(SmallStorm(port_, 21)).Run();
  ASSERT_TRUE(first.ok()) << first.error().ToString();
  auto second = LoadStorm(SmallStorm(port_, 21)).Run();
  ASSERT_TRUE(second.ok()) << second.error().ToString();
  EXPECT_EQ(first->launched, 40u);
  EXPECT_EQ(second->launched, 40u);
  // Wire timing differs run to run; the PLAN schedule may not.
  EXPECT_EQ(first->schedule_digest, second->schedule_digest);

  auto other = LoadStorm(SmallStorm(port_, 22)).Run();
  ASSERT_TRUE(other.ok()) << other.error().ToString();
  EXPECT_NE(first->schedule_digest, other->schedule_digest);
}

TEST(LoadStormErrors, ConnectionRefusedIsClassified) {
  // Grab an ephemeral port, then close the listener: connects to it
  // must be refused, and the storm must classify (not hang on) them.
  std::uint16_t dead_port = 0;
  {
    auto listener = net::TcpListen(0);
    ASSERT_TRUE(listener.ok());
    auto port = net::LocalPort(listener->get());
    ASSERT_TRUE(port.ok());
    dead_port = *port;
  }
  StormConfig storm;
  storm.port = dead_port;
  storm.concurrency = 4;
  storm.total_sessions = 12;
  storm.deadline_ms = 20'000;
  auto result = LoadStorm(std::move(storm)).Run();
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->launched, 12u);
  EXPECT_EQ(result->completed, 0u);
  EXPECT_GT(result->errors["ECONNREFUSED"], 0u);
}

// ---------------------------------------------------------------------
// Server reply-path backpressure (partial-write continuation).

// Raw client that negotiates a tiny receive window so the server's
// reply writes hit EAGAIN after a handful of unread replies.
util::Result<util::UniqueFd> ConnectSmallWindow(std::uint16_t port) {
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  if (raw < 0) return util::IoError("socket");
  util::UniqueFd fd(raw);
  const int rcvbuf = 2048;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                     sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return util::IoError("connect");
  }
  return fd;
}

// Reads until `lines` LF-terminated lines arrived (or timeout/EOF).
int ReadLines(int fd, int lines) {
  int seen = 0;
  char buf[4096];
  while (seen < lines) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') ++seen;
    }
  }
  return seen;
}

constexpr int kBlastNoops = 1500;  // ~21 KiB of replies, under the cap

TEST_F(LoadgenServerTest, SlowReaderGetsEveryBufferedReply) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.num_shards = 1;
  cfg.worker_count = 1;
  cfg.recv_timeout_ms = 20'000;
  cfg.client_sndbuf = 4096;  // small server-side send buffer
  StartServer(cfg);

  auto fd = ConnectSmallWindow(port_);
  ASSERT_TRUE(fd.ok()) << fd.error().ToString();
  ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 10'000).ok());
  ASSERT_EQ(ReadLines(fd->get(), 1), 1);  // banner

  // Blast NOOPs without reading: the replies overrun the shrunken
  // send buffer and must park in the per-session outbound buffer
  // instead of being dropped or wedging the shard reactor.
  std::string blast;
  for (int i = 0; i < kBlastNoops; ++i) blast += "NOOP\r\n";
  std::size_t off = 0;
  while (off < blast.size()) {
    const ssize_t n = ::send(fd->get(), blast.data() + off,
                             blast.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  ASSERT_TRUE(EventuallyTrue([&] {
    return server_->stats().reply_backpressured.load() > 0;
  })) << "server never hit reply-path EAGAIN";

  // Now drain: every blasted command's reply must arrive, in order,
  // and the session must still be usable.
  EXPECT_EQ(ReadLines(fd->get(), kBlastNoops), kBlastNoops);
  ASSERT_EQ(::send(fd->get(), "QUIT\r\n", 6, MSG_NOSIGNAL), 6);
  EXPECT_EQ(ReadLines(fd->get(), 1), 1);
  EXPECT_EQ(server_->stats().reply_overflow_closed.load(), 0u);
}

TEST_F(LoadgenServerTest, DisconnectWithBufferedRepliesIsCleanedUp) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.num_shards = 1;
  cfg.worker_count = 1;
  cfg.recv_timeout_ms = 20'000;
  cfg.client_sndbuf = 4096;
  StartServer(cfg);

  {
    auto fd = ConnectSmallWindow(port_);
    ASSERT_TRUE(fd.ok()) << fd.error().ToString();
    ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 10'000).ok());
    ASSERT_EQ(ReadLines(fd->get(), 1), 1);
    std::string blast;
    for (int i = 0; i < kBlastNoops; ++i) blast += "NOOP\r\n";
    std::size_t off = 0;
    while (off < blast.size()) {
      const ssize_t n = ::send(fd->get(), blast.data() + off,
                               blast.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
    ASSERT_TRUE(EventuallyTrue([&] {
      return server_->stats().reply_backpressured.load() > 0;
    }));
    // Vanish mid-flush: the shard must tear the session down rather
    // than keep EPOLLOUT-spinning on a dead peer.
  }
  ASSERT_TRUE(EventuallyTrue([&] {
    return server_->stats().master_closed.load() >= 1 &&
           server_->inflight() == 0;
  }));

  // The shard is still healthy: a normal dialog completes.
  smtp::MailJob job;
  job.helo = "client.test";
  job.mail_from = *smtp::Path::Parse("<sender@remote.test>");
  job.rcpts.push_back(*smtp::Path::Parse("<alice@dept.test>"));
  job.body = "after the storm\n";
  auto sent = net::SendMail("127.0.0.1", port_, job);
  ASSERT_TRUE(sent.ok()) << sent.error().ToString();
  EXPECT_EQ(sent->outcome, smtp::ClientOutcome::kDelivered);
}

// ---------------------------------------------------------------------
// fd exhaustion: EMFILE must never starve already-accepted sessions.

int OpenFdCount() {
  int n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST_F(LoadgenServerTest, EmfileStallsAcceptsNotAcceptedSessions) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.num_shards = 1;
  cfg.worker_count = 1;
  cfg.recv_timeout_ms = 20'000;
  StartServer(cfg);
  if (server_->handoff_fallback()) {
    GTEST_SKIP() << "re-drain path needs the SO_REUSEPORT shard listener";
  }

  // Session A is accepted and alive before the descriptor famine.
  auto first = net::TcpConnect("127.0.0.1", port_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(net::SetRecvTimeout(first->get(), 10'000).ok());
  ASSERT_EQ(ReadLines(first->get(), 1), 1);

  struct rlimit saved {};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct RestoreLimit {
    struct rlimit value;
    ~RestoreLimit() { ::setrlimit(RLIMIT_NOFILE, &value); }
  } restore{saved};

  // Clamp the process (generator AND server share it) to a few spare
  // descriptors, then connect until the famine: late connects park in
  // the listener's backlog because accept() has no fd to give them.
  struct rlimit tight = saved;
  tight.rlim_cur = static_cast<rlim_t>(OpenFdCount() + 6);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  std::vector<util::UniqueFd> parked;
  for (int i = 0; i < 12; ++i) {
    auto fd = net::TcpConnect("127.0.0.1", port_);
    if (!fd.ok()) break;  // local fd space gone too — famine reached
    parked.push_back(std::move(*fd));
  }
  if (!EventuallyTrue(
          [&] { return server_->stats().accept_errors.load() > 0; })) {
    GTEST_SKIP() << "could not provoke accept-path EMFILE on this host";
  }

  // The famine must not touch session A: it still gets service.
  ASSERT_EQ(::send(first->get(), "HELO still.alive\r\n", 18, MSG_NOSIGNAL),
            18);
  EXPECT_EQ(ReadLines(first->get(), 1), 1);

  // Free descriptors, then close session A: its close_conn must
  // re-drain the stalled accept queue (no new SYN required).
  const std::uint64_t redrains_before =
      server_->stats().accept_redrains.load();
  parked.clear();
  (void)::send(first->get(), "QUIT\r\n", 6, MSG_NOSIGNAL);
  (void)ReadLines(first->get(), 1);
  first->Reset();
  EXPECT_TRUE(EventuallyTrue([&] {
    return server_->stats().accept_redrains.load() > redrains_before;
  })) << "stalled accept queue was never re-drained";
}

}  // namespace
}  // namespace sams::loadgen
