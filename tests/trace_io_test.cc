#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/sinkhole.h"
#include "trace/synthetic.h"

namespace sams::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    path_ = ::testing::TempDir() + "/trace_io_" + tag + ".trace";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  BounceSweepConfig cfg;
  cfg.n_sessions = 500;
  cfg.bounce_ratio = 0.4;
  const auto sessions = MakeBounceSweepTrace(cfg);
  ASSERT_TRUE(SaveTrace(path_, sessions).ok());

  auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded->size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ((*loaded)[i].arrival, sessions[i].arrival) << i;
    EXPECT_EQ((*loaded)[i].client_ip, sessions[i].client_ip) << i;
    EXPECT_EQ((*loaded)[i].kind, sessions[i].kind) << i;
    EXPECT_EQ((*loaded)[i].is_spam, sessions[i].is_spam) << i;
    EXPECT_EQ((*loaded)[i].size_bytes, sessions[i].size_bytes) << i;
    EXPECT_EQ((*loaded)[i].n_rcpts, sessions[i].n_rcpts) << i;
    EXPECT_EQ((*loaded)[i].n_valid_rcpts, sessions[i].n_valid_rcpts) << i;
  }
}

TEST_F(TraceIoTest, SinkholeSliceRoundTrip) {
  SinkholeConfig cfg;
  cfg.n_connections = 2'000;
  cfg.n_ips = 500;
  cfg.n_prefixes = 220;
  const SinkholeModel model(cfg);
  ASSERT_TRUE(SaveTrace(path_, model.sessions()).ok());
  auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Summarize("x", *loaded).unique_ips,
            Summarize("x", model.sessions()).unique_ips);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrip) {
  ASSERT_TRUE(SaveTrace(path_, {}).ok());
  auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(TraceIoTest, MissingFileFails) {
  auto loaded = LoadTrace(path_ + ".nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code(), util::ErrorCode::kIoError);
}

TEST_F(TraceIoTest, WrongMagicRejected) {
  std::ofstream(path_) << "not-a-trace\n1|2|3\n";
  auto loaded = LoadTrace(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(TraceIoTest, MalformedRecordsRejected) {
  const char* bad_bodies[] = {
      "1000|1.2.3.4|N|1|100",              // too few fields
      "x|1.2.3.4|N|1|100|1|1",             // bad arrival
      "1000|999.2.3.4|N|1|100|1|1",        // bad ip
      "1000|1.2.3.4|Z|1|100|1|1",          // bad kind
      "1000|1.2.3.4|N|1|100|1|5",          // valid > attempted
  };
  for (const char* body : bad_bodies) {
    std::ofstream(path_) << "sams-trace-v1\n" << body << "\n";
    auto loaded = LoadTrace(path_);
    EXPECT_FALSE(loaded.ok()) << body;
  }
}

TEST_F(TraceIoTest, ToleratesBlankLines) {
  std::ofstream(path_) << "sams-trace-v1\n\n1000|1.2.3.4|N|1|100|2|2\n\n";
  auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].n_rcpts, 2);
}

}  // namespace
}  // namespace sams::trace
