// Tests of sams::obs — registry identity, histogram math, span
// tracing, the two exporters (golden strings), and the end-to-end
// wiring through core::ServerStack.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/server_stack.h"
#include "mta/drivers.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/synthetic.h"

namespace sams::obs {
namespace {

TEST(RegistryTest, SameIdentityReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.GetCounter("reqs_total", "requests");
  Counter& b = registry.GetCounter("reqs_total", "requests");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);

  // Different labels → different instrument; label order is canonical.
  Counter& red = registry.GetCounter("reqs_total", "", {{"color", "red"}});
  EXPECT_NE(&red, &a);
  Counter& two = registry.GetCounter(
      "reqs_total", "", {{"b", "2"}, {"a", "1"}});
  Counter& two_again = registry.GetCounter(
      "reqs_total", "", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&two, &two_again);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(RegistryTest, FindMatchesNameLabelsAndType) {
  Registry registry;
  registry.GetCounter("c_total", "", {{"k", "v"}});
  registry.GetGauge("g", "");

  EXPECT_NE(registry.FindCounter("c_total", {{"k", "v"}}), nullptr);
  EXPECT_EQ(registry.FindCounter("c_total"), nullptr);  // labels differ
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  // Wrong instrument kind for the registered identity → nullptr, not
  // a reinterpretation.
  EXPECT_EQ(registry.FindGauge("c_total", {{"k", "v"}}), nullptr);
  EXPECT_NE(registry.FindGauge("g"), nullptr);
  EXPECT_EQ(registry.FindHistogram("g"), nullptr);
}

TEST(RegistryTest, CountersAndGaugesHoldValues) {
  Registry registry;
  Counter& c = registry.GetCounter("c_total", "");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Overwrite(7);
  EXPECT_EQ(c.value(), 7u);

  Gauge& g = registry.GetGauge("g", "");
  g.Set(2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(RegistryTest, CollectorsRunAtCollectTime) {
  Registry registry;
  Counter& snapshot = registry.GetCounter("snap_total", "");
  std::uint64_t source = 5;
  registry.AddCollector([&] { snapshot.Overwrite(source); });
  EXPECT_EQ(snapshot.value(), 0u);
  registry.Collect();
  EXPECT_EQ(snapshot.value(), 5u);
  source = 9;
  registry.Collect();
  EXPECT_EQ(snapshot.value(), 9u);
}

TEST(HistogramTest, ExponentialBucketsAndCumulativeCounts) {
  Registry registry;
  Histogram& h = registry.GetHistogram("lat", "", {1.0, 2.0, 4});
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));

  h.Observe(0.5);   // le=1
  h.Observe(1.5);   // le=2
  h.Observe(3.0);   // le=4
  h.Observe(20.0);  // +Inf
  EXPECT_EQ(h.CumulativeCounts(),
            (std::vector<std::uint64_t>{1, 2, 3, 3, 4}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 25.0);
}

TEST(HistogramTest, PercentileInterpolatesInsideBucket) {
  Registry registry;
  Histogram& h = registry.GetHistogram("lat", "", {1.0, 2.0, 4});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.Observe(3.0);
  // All mass in (2,4]; the median interpolates to the bucket middle.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.0);
  EXPECT_LE(h.Percentile(99), 4.0);
  EXPECT_GT(h.Percentile(99), 2.0);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Registry registry;
  // Empty histogram: every percentile is 0.
  Histogram& empty = registry.GetHistogram("empty", "", {1.0, 2.0, 4});
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(99.9), 0.0);

  // All mass in a single finite bucket: p50 through p999 stay inside
  // its bounds.
  Histogram& single = registry.GetHistogram("single", "", {1.0, 2.0, 4});
  for (int i = 0; i < 1000; ++i) single.Observe(1.5);
  EXPECT_GT(single.Percentile(50), 1.0);
  EXPECT_LE(single.Percentile(50), 2.0);
  EXPECT_GT(single.Percentile(99.9), 1.0);
  EXPECT_LE(single.Percentile(99.9), 2.0);

  // Overflow (+Inf) bucket: an observation beyond the last bound must
  // not produce an infinite percentile; the estimate is clamped to the
  // last finite bound.
  Histogram& overflow = registry.GetHistogram("overflow", "", {1.0, 2.0, 4});
  overflow.Observe(1'000.0);
  const double top = overflow.bounds().back();
  EXPECT_LE(overflow.Percentile(99.9), top + 1e-9);
  EXPECT_GT(overflow.Percentile(99.9), 0.0);
}

TEST(HistogramTest, PercentilesAreMonotonic) {
  Registry registry;
  Histogram& h = registry.GetHistogram("mono", "", {0.5, 2.0, 12});
  // Skewed tail: most observations small, a few huge.
  for (int i = 0; i < 990; ++i) h.Observe(0.3);
  for (int i = 0; i < 9; ++i) h.Observe(50.0);
  h.Observe(900.0);
  const double p50 = h.Percentile(50);
  const double p99 = h.Percentile(99);
  const double p999 = h.Percentile(99.9);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_GT(p999, p50);  // the tail must actually register
}

TEST(TraceSinkTest, RingWrapKeepsNewestAndCountsDropped) {
  TraceSink sink(/*capacity=*/4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    sink.Record({i, Stage::kAccept, 0, 1});
  }
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest retained first: sessions 3,4,5,6 survive the wrap.
  EXPECT_EQ(records.front().session_id, 3u);
  EXPECT_EQ(records.back().session_id, 6u);
}

TEST(SessionSpanTest, EnterAndCloseEmitContiguousStages) {
  TraceSink sink;
  SessionSpan span(&sink, 7, Stage::kAccept, 100);
  EXPECT_TRUE(span.attached());
  span.Enter(Stage::kHelo, 150);
  span.Enter(Stage::kData, 200);
  span.Close(250);
  EXPECT_FALSE(span.attached());
  span.Close(300);  // closed span is inert
  EXPECT_EQ(sink.recorded(), 3u);

  const auto records = sink.SessionRecords(7);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].stage, Stage::kAccept);
  EXPECT_EQ(records[1].stage, Stage::kHelo);
  EXPECT_EQ(records[2].stage, Stage::kData);
  // Stages tile the session: each starts where the previous ended.
  EXPECT_EQ(records[0].start_ns, 100);
  EXPECT_EQ(records[0].end_ns, records[1].start_ns);
  EXPECT_EQ(records[1].end_ns, records[2].start_ns);
  EXPECT_EQ(records[2].end_ns, 250);
  EXPECT_EQ(records[1].duration_ns(), 50);
}

TEST(SessionSpanTest, DetachedSpanIsInert) {
  SessionSpan span;
  EXPECT_FALSE(span.attached());
  span.Enter(Stage::kData, 10);  // must not crash or record
  span.Close(20);
}

Registry& GoldenRegistry(Registry& registry) {
  Counter& c = registry.GetCounter("test_counter_total", "events seen",
                                   {{"arch", "hybrid"}});
  c.Inc(3);
  Gauge& g = registry.GetGauge("test_gauge", "current depth");
  g.Set(2.5);
  Histogram& h =
      registry.GetHistogram("test_hist", "latency", {1.0, 2.0, 2});
  h.Observe(0.5);
  h.Observe(3.0);
  return registry;
}

TEST(ExportTest, PrometheusTextGolden) {
  Registry registry;
  const std::string text = PrometheusText(GoldenRegistry(registry));
  EXPECT_EQ(text,
            "# HELP test_counter_total events seen\n"
            "# TYPE test_counter_total counter\n"
            "test_counter_total{arch=\"hybrid\"} 3\n"
            "# HELP test_gauge current depth\n"
            "# TYPE test_gauge gauge\n"
            "test_gauge 2.5\n"
            "# HELP test_hist latency\n"
            "# TYPE test_hist histogram\n"
            "test_hist_bucket{le=\"1\"} 1\n"
            "test_hist_bucket{le=\"2\"} 1\n"
            "test_hist_bucket{le=\"+Inf\"} 2\n"
            "test_hist_sum 3.5\n"
            "test_hist_count 2\n");
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  Registry registry;
  registry.GetCounter("c_total", "", {{"path", "a\\b\"c\nd"}});
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("c_total{path=\"a\\\\b\\\"c\\nd\"} 0"),
            std::string::npos)
      << text;
}

TEST(ExportTest, JsonSnapshotGolden) {
  Registry registry;
  const std::string json = JsonSnapshot(GoldenRegistry(registry));
  EXPECT_EQ(json,
            "{\n  \"metrics\": [\n"
            "    {\"name\":\"test_counter_total\",\"type\":\"counter\","
            "\"labels\":{\"arch\":\"hybrid\"},\"value\":3},\n"
            "    {\"name\":\"test_gauge\",\"type\":\"gauge\","
            "\"labels\":{},\"value\":2.5},\n"
            "    {\"name\":\"test_hist\",\"type\":\"histogram\","
            "\"labels\":{},\"count\":2,\"sum\":3.5,\"p50\":1,\"p99\":2,"
            "\"p999\":2}"
            "\n  ]\n}\n");
}

TEST(ExportTest, WriteJsonSnapshotRoundTrips) {
  Registry registry;
  GoldenRegistry(registry);
  const std::string path = ::testing::TempDir() + "obs_test_snapshot.json";
  const util::Error err = WriteJsonSnapshot(registry, path);
  ASSERT_TRUE(err.ok()) << err.ToString();
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), JsonSnapshot(registry));
  std::remove(path.c_str());
}

// --- End-to-end: the stack publishes every subsystem -----------------

core::ServerStack& DrivenStack(core::ServerStack& stack) {
  trace::BounceSweepConfig cfg;
  cfg.n_sessions = 2'000;
  cfg.bounce_ratio = 0.3;
  const auto sessions = trace::MakeBounceSweepTrace(cfg);
  std::vector<util::Ipv4> listed;
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    listed.push_back(util::Ipv4(static_cast<std::uint32_t>(rng.NextU64())));
  }
  mta::RunClosedLoop(stack.machine(), stack.server(), sessions, 100,
                     util::SimTime::Seconds(5), util::SimTime::Seconds(15),
                     stack.resolver());
  return stack;
}

TEST(StackObservabilityTest, RegistryCoversAtLeastFourSubsystems) {
  const std::vector<util::Ipv4> listed = {util::Ipv4(10, 0, 0, 1)};
  core::StackConfig cfg;
  core::ServerStack stack(cfg, listed);
  DrivenStack(stack);
  stack.registry().Collect();

  std::set<std::string> names;
  for (const MetricFamily& family : stack.registry().Families()) {
    names.insert(family.name);
  }
  EXPECT_GE(names.size(), 12u) << "distinct metric names";

  const std::vector<std::string> prefixes = {
      "sams_net_", "sams_smtp_", "sams_dnsbl_", "sams_mfs_",
      "sams_cpu_", "sams_disk_", "sams_fs_"};
  int covered = 0;
  for (const std::string& prefix : prefixes) {
    for (const std::string& name : names) {
      if (name.rfind(prefix, 0) == 0) {
        ++covered;
        break;
      }
    }
  }
  EXPECT_GE(covered, 4) << "subsystem prefixes represented";

  // The workload actually moved the counters.
  const Counter* connections = stack.registry().FindCounter(
      "sams_smtp_connections_total", {{"arch", "hybrid"}});
  ASSERT_NE(connections, nullptr);
  EXPECT_GT(connections->value(), 0u);
  const Counter* lookups = stack.registry().FindCounter(
      "sams_dnsbl_lookups_total", {{"mode", "prefix-cache"}});
  ASSERT_NE(lookups, nullptr);
  EXPECT_GT(lookups->value(), 0u);
  const Counter* mails = stack.registry().FindCounter(
      "sams_mfs_mails_delivered_total",
      {{"layout", std::string(stack.store().name())}});
  ASSERT_NE(mails, nullptr);
  EXPECT_GT(mails->value(), 0u);

  const std::string dump = stack.DumpMetrics();
  EXPECT_NE(dump.find("# TYPE sams_smtp_connections_total counter"),
            std::string::npos);
  EXPECT_NE(dump.find("session "), std::string::npos) << "trace dump";
}

TEST(StackObservabilityTest, DeliveredSessionWalksStagesInOrder) {
  const std::vector<util::Ipv4> listed = {util::Ipv4(10, 0, 0, 1)};
  core::StackConfig cfg;
  core::ServerStack stack(cfg, listed);
  DrivenStack(stack);

  // Find a fully-retained delivered session (kAccept survived the
  // ring wrap) and check its stage walk.
  auto index_of = [](const std::vector<SpanRecord>& records, Stage stage) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].stage == stage) return static_cast<int>(i);
    }
    return -1;
  };
  std::set<std::uint64_t> seen;
  bool checked = false;
  for (const SpanRecord& r : stack.trace().Snapshot()) {
    if (!seen.insert(r.session_id).second) continue;
    const auto records = stack.trace().SessionRecords(r.session_id);
    if (records.front().stage != Stage::kAccept) continue;  // truncated
    const int delivery = index_of(records, Stage::kDelivery);
    if (delivery < 0) continue;  // bounced or unfinished session
    const int dnsbl = index_of(records, Stage::kDnsbl);
    const int data = index_of(records, Stage::kData);
    const int store = index_of(records, Stage::kStoreWrite);
    ASSERT_GT(dnsbl, 0);
    ASSERT_GT(data, dnsbl);
    ASSERT_GT(store, data);
    ASSERT_GT(delivery, store);
    // Stages tile the session timeline.
    for (std::size_t i = 1; i < records.size(); ++i) {
      EXPECT_EQ(records[i].start_ns, records[i - 1].end_ns);
      EXPECT_GE(records[i].duration_ns(), 0);
    }
    checked = true;
    break;
  }
  EXPECT_TRUE(checked) << "no complete delivered session in the trace ring";
}

}  // namespace
}  // namespace sams::obs
