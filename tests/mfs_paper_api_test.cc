#include "mfs/paper_api.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "util/rng.h"

namespace sams::mfs {
namespace {

class PaperApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/mfs_papi_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : root_) {
      if (c == '/') c = '_';
    }
    std::filesystem::remove_all(root_);
    auto vol = MfsVolume::Open(root_);
    ASSERT_TRUE(vol.ok());
    vol_ = std::move(vol).value();
  }
  void TearDown() override {
    vol_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string NewId() { return MailId::Generate(rng_).str(); }

  std::string root_;
  std::unique_ptr<MfsVolume> vol_;
  util::Rng rng_{11};
};

TEST_F(PaperApiTest, OpenWriteReadClose) {
  mail_file* mfd = mail_open(vol_.get(), "alice", "rw");
  ASSERT_NE(mfd, nullptr);

  const std::string id = NewId();
  const char body[] = "paper api body";
  mail_file* boxes[] = {mfd};
  ASSERT_EQ(mail_nwrite(boxes, 1, body, id.c_str(),
                        static_cast<int>(sizeof(body) - 1),
                        static_cast<int>(id.size())),
            MFS_OK);

  char buf[64];
  char got_id[MailId::kMaxLen];
  int buf_len = sizeof(buf);
  int id_len = sizeof(got_id);
  ASSERT_EQ(mail_read(mfd, buf, got_id, &buf_len, &id_len), MFS_OK);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(buf_len)),
            "paper api body");
  EXPECT_EQ(std::string(got_id, static_cast<std::size_t>(id_len)), id);

  EXPECT_EQ(mail_close(mfd), MFS_OK);
}

TEST_F(PaperApiTest, NWriteToMultipleMailboxes) {
  mail_file* a = mail_open(vol_.get(), "alice", "rw");
  mail_file* b = mail_open(vol_.get(), "bob", "rw");
  mail_file* c = mail_open(vol_.get(), "carol", "rw");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);

  const std::string id = NewId();
  const std::string body = "make money fast";
  mail_file* boxes[] = {a, b, c};
  ASSERT_EQ(mail_nwrite(boxes, 3, body.data(), id.c_str(),
                        static_cast<int>(body.size()),
                        static_cast<int>(id.size())),
            MFS_OK);

  for (mail_file* mfd : {a, b, c}) {
    char buf[64];
    char got_id[MailId::kMaxLen];
    int buf_len = sizeof(buf);
    int id_len = sizeof(got_id);
    ASSERT_EQ(mail_read(mfd, buf, got_id, &buf_len, &id_len), MFS_OK);
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(buf_len)), body);
  }
  mail_close(a);
  mail_close(b);
  mail_close(c);
}

TEST_F(PaperApiTest, ReadInSmallChunksReturnsMore) {
  // "The API may need to be called multiple times to read a mail if
  // the provided buffer is smaller than the mail." (§6.2)
  mail_file* mfd = mail_open(vol_.get(), "alice", "rw");
  ASSERT_NE(mfd, nullptr);
  const std::string id = NewId();
  const std::string body(100, 'Z');
  mail_file* boxes[] = {mfd};
  ASSERT_EQ(mail_nwrite(boxes, 1, body.data(), id.c_str(), 100,
                        static_cast<int>(id.size())),
            MFS_OK);

  std::string assembled;
  char buf[33];
  char got_id[MailId::kMaxLen];
  int rc;
  do {
    int buf_len = sizeof(buf);
    int id_len = sizeof(got_id);
    rc = mail_read(mfd, buf, got_id, &buf_len, &id_len);
    ASSERT_NE(rc, MFS_ERR) << mfs_last_error();
    assembled.append(buf, static_cast<std::size_t>(buf_len));
  } while (rc == MFS_MORE);
  EXPECT_EQ(assembled, body);
  mail_close(mfd);
}

TEST_F(PaperApiTest, SeekAtMailGranularity) {
  mail_file* mfd = mail_open(vol_.get(), "alice", "rw");
  ASSERT_NE(mfd, nullptr);
  for (int i = 0; i < 4; ++i) {
    const std::string id = NewId();
    const std::string body = "mail-" + std::to_string(i);
    mail_file* boxes[] = {mfd};
    ASSERT_EQ(mail_nwrite(boxes, 1, body.data(), id.c_str(),
                          static_cast<int>(body.size()),
                          static_cast<int>(id.size())),
              MFS_OK);
  }
  ASSERT_EQ(mail_seek(mfd, 2, MFS_SEEK_SET), MFS_OK);
  char buf[32];
  char got_id[MailId::kMaxLen];
  int buf_len = sizeof(buf);
  int id_len = sizeof(got_id);
  ASSERT_EQ(mail_read(mfd, buf, got_id, &buf_len, &id_len), MFS_OK);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(buf_len)), "mail-2");

  ASSERT_EQ(mail_seek(mfd, -1, MFS_SEEK_END), MFS_OK);
  buf_len = sizeof(buf);
  id_len = sizeof(got_id);
  ASSERT_EQ(mail_read(mfd, buf, got_id, &buf_len, &id_len), MFS_OK);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(buf_len)), "mail-3");
  mail_close(mfd);
}

TEST_F(PaperApiTest, DeleteRemovesMail) {
  mail_file* mfd = mail_open(vol_.get(), "alice", "rw");
  ASSERT_NE(mfd, nullptr);
  const std::string id = NewId();
  mail_file* boxes[] = {mfd};
  ASSERT_EQ(mail_nwrite(boxes, 1, "x", id.c_str(), 1,
                        static_cast<int>(id.size())),
            MFS_OK);
  ASSERT_EQ(mail_delete(mfd, id.c_str(), static_cast<int>(id.size())), MFS_OK);
  ASSERT_EQ(mail_seek(mfd, 0, MFS_SEEK_SET), MFS_OK);
  char buf[8];
  char got_id[MailId::kMaxLen];
  int buf_len = sizeof(buf);
  int id_len = sizeof(got_id);
  EXPECT_EQ(mail_read(mfd, buf, got_id, &buf_len, &id_len), MFS_ERR);
  mail_close(mfd);
}

TEST_F(PaperApiTest, ErrorPathsSetLastError) {
  EXPECT_EQ(mail_open(nullptr, "x", "rw"), nullptr);
  EXPECT_NE(std::string(mfs_last_error()).find("null"), std::string::npos);

  mail_file* mfd = mail_open(vol_.get(), "alice", "rw");
  ASSERT_NE(mfd, nullptr);
  EXPECT_EQ(mail_seek(mfd, 0, 99), MFS_ERR);
  EXPECT_EQ(mail_nwrite(nullptr, 1, "x", "id", 1, 2), MFS_ERR);
  mail_file* boxes[] = {mfd};
  EXPECT_EQ(mail_nwrite(boxes, 0, "x", "id", 1, 2), MFS_ERR);
  EXPECT_EQ(mail_nwrite(boxes, 1, "x", "bad id", 1, 6), MFS_ERR);
  EXPECT_EQ(mail_delete(mfd, "no-such-id", 10), MFS_ERR);
  mail_close(mfd);
}

TEST_F(PaperApiTest, BadModeFailsOpen) {
  EXPECT_EQ(mail_open(vol_.get(), "alice", "z"), nullptr);
}

}  // namespace
}  // namespace sams::mfs
