#include "util/time.h"

#include <gtest/gtest.h>

namespace sams::util {
namespace {

TEST(SimTimeTest, UnitConstructors) {
  EXPECT_EQ(SimTime::Nanos(5).nanos(), 5);
  EXPECT_EQ(SimTime::Micros(3).nanos(), 3'000);
  EXPECT_EQ(SimTime::Millis(2).nanos(), 2'000'000);
  EXPECT_EQ(SimTime::Seconds(1).nanos(), 1'000'000'000);
  EXPECT_EQ(SimTime::Minutes(1).nanos(), 60ll * 1'000'000'000);
  EXPECT_EQ(SimTime::Hours(1).nanos(), 3600ll * 1'000'000'000);
  EXPECT_EQ(SimTime::Days(1).nanos(), 86400ll * 1'000'000'000);
}

TEST(SimTimeTest, FractionalConstructors) {
  EXPECT_EQ(SimTime::MicrosF(1.5).nanos(), 1'500);
  EXPECT_EQ(SimTime::MillisF(0.25).nanos(), 250'000);
  EXPECT_EQ(SimTime::SecondsF(0.001).nanos(), 1'000'000);
}

TEST(SimTimeTest, ConversionAccessors) {
  const SimTime t = SimTime::Millis(1500);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.millis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.micros(), 1'500'000.0);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::Millis(10);
  const SimTime b = SimTime::Millis(4);
  EXPECT_EQ((a + b).nanos(), SimTime::Millis(14).nanos());
  EXPECT_EQ((a - b).nanos(), SimTime::Millis(6).nanos());
  EXPECT_EQ((a * 3).nanos(), SimTime::Millis(30).nanos());
  EXPECT_EQ((3 * a).nanos(), SimTime::Millis(30).nanos());
  EXPECT_EQ((a / 2).nanos(), SimTime::Millis(5).nanos());
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::Seconds(1);
  t += SimTime::Millis(500);
  EXPECT_EQ(t.nanos(), SimTime::MillisF(1500).nanos());
  t -= SimTime::Seconds(1);
  EXPECT_EQ(t.nanos(), SimTime::Millis(500).nanos());
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::Millis(1), SimTime::Millis(2));
  EXPECT_GT(SimTime::Seconds(1), SimTime::Millis(999));
  EXPECT_EQ(SimTime::Micros(1000), SimTime::Millis(1));
  EXPECT_LE(SimTime(), SimTime::Nanos(0));
}

TEST(SimTimeTest, Scaled) {
  EXPECT_EQ(SimTime::Millis(10).Scaled(1.5).nanos(), SimTime::Millis(15).nanos());
  EXPECT_EQ(SimTime::Millis(10).Scaled(0.0).nanos(), 0);
}

TEST(SimTimeTest, ToStringSelectsUnit) {
  EXPECT_EQ(SimTime::Nanos(42).ToString(), "42ns");
  EXPECT_EQ(SimTime::Micros(5).ToString(), "5.00us");
  EXPECT_EQ(SimTime::Millis(7).ToString(), "7.00ms");
  EXPECT_EQ(SimTime::Seconds(3).ToString(), "3.000s");
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime().nanos(), 0);
}

TEST(SimTimeTest, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(SimTime::Max(), SimTime::Days(365 * 100));
}

}  // namespace
}  // namespace sams::util
