#include "mfs/store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/rng.h"

namespace sams::mfs {
namespace {

// Parameterized over the four store layouts: every backend must agree
// on observable mailbox contents; they differ only in I/O shape.
using StoreFactory =
    util::Result<std::unique_ptr<MailStore>> (*)(const std::string&, StoreOptions);

struct StoreParam {
  const char* label;
  StoreFactory factory;
};

class StoreTest : public ::testing::TestWithParam<StoreParam> {
 protected:
  void SetUp() override {
    std::string tag = std::string(GetParam().label) + "_" +
                      ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/mfs_store_" + tag;
    std::filesystem::remove_all(root_);
    auto store = GetParam().factory(root_, StoreOptions{});
    ASSERT_TRUE(store.ok()) << store.error().ToString();
    store_ = std::move(store).value();
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(root_);
  }

  MailId Id() { return MailId::Generate(rng_); }

  std::string root_;
  std::unique_ptr<MailStore> store_;
  util::Rng rng_{23};
};

TEST_P(StoreTest, SingleRecipientDeliveryReadsBack) {
  const std::string boxes[] = {"alice"};
  ASSERT_TRUE(store_->Deliver(Id(), "hello world\n", boxes).ok());
  auto mails = store_->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok()) << mails.error().ToString();
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_EQ((*mails)[0], "hello world\n");
}

TEST_P(StoreTest, MultiRecipientAllReceive) {
  const std::string boxes[] = {"alice", "bob", "carol"};
  const std::string body = "V1AGRA CHEAP\n";
  ASSERT_TRUE(store_->Deliver(Id(), body, boxes).ok());
  for (const auto& box : boxes) {
    auto mails = store_->ReadMailbox(box);
    ASSERT_TRUE(mails.ok()) << box << ": " << mails.error().ToString();
    ASSERT_EQ(mails->size(), 1u) << box;
    EXPECT_EQ((*mails)[0], body) << box;
  }
  EXPECT_EQ(store_->stats().mails_delivered, 1u);
  EXPECT_EQ(store_->stats().mailbox_deliveries, 3u);
}

TEST_P(StoreTest, DeliveryOrderPreserved) {
  const std::string boxes[] = {"alice"};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        store_->Deliver(Id(), "mail number " + std::to_string(i) + "\n", boxes)
            .ok());
  }
  auto mails = store_->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*mails)[i], "mail number " + std::to_string(i) + "\n");
  }
}

TEST_P(StoreTest, InterleavedSingleAndMulti) {
  const std::string all[] = {"alice", "bob"};
  const std::string only_a[] = {"alice"};
  ASSERT_TRUE(store_->Deliver(Id(), "to both 1\n", all).ok());
  ASSERT_TRUE(store_->Deliver(Id(), "only alice\n", only_a).ok());
  ASSERT_TRUE(store_->Deliver(Id(), "to both 2\n", all).ok());
  auto alice = store_->ReadMailbox("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_EQ(alice->size(), 3u);
  EXPECT_EQ((*alice)[0], "to both 1\n");
  EXPECT_EQ((*alice)[1], "only alice\n");
  EXPECT_EQ((*alice)[2], "to both 2\n");
  auto bob = store_->ReadMailbox("bob");
  ASSERT_TRUE(bob.ok());
  ASSERT_EQ(bob->size(), 2u);
}

TEST_P(StoreTest, EmptyRecipientsRejected) {
  EXPECT_EQ(store_->Deliver(Id(), "x", {}).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST_P(StoreTest, BinaryBodySurvives) {
  std::string body;
  for (int i = 1; i < 256; ++i) {
    if (i == '\n') continue;
    body.push_back(static_cast<char>(i));
  }
  body.push_back('\n');
  const std::string boxes[] = {"alice"};
  ASSERT_TRUE(store_->Deliver(Id(), body, boxes).ok());
  auto mails = store_->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_EQ((*mails)[0], body);
}

TEST_P(StoreTest, LargeBodyRoundTrip) {
  std::string body(512 * 1024, 'L');
  body += "\n";
  const std::string boxes[] = {"alice", "bob"};
  ASSERT_TRUE(store_->Deliver(Id(), body, boxes).ok());
  auto mails = store_->ReadMailbox("bob");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_EQ((*mails)[0].size(), body.size());
  EXPECT_EQ((*mails)[0], body);
}

TEST_P(StoreTest, SyncSucceeds) {
  const std::string boxes[] = {"alice"};
  ASSERT_TRUE(store_->Deliver(Id(), "durable\n", boxes).ok());
  EXPECT_TRUE(store_->Sync().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, StoreTest,
    ::testing::Values(StoreParam{"mbox", &MakeMboxStore},
                      StoreParam{"maildir", &MakeMaildirStore},
                      StoreParam{"hardlink", &MakeHardlinkMaildirStore},
                      StoreParam{"mfs", &MakeMfsStore}),
    [](const ::testing::TestParamInfo<StoreParam>& info) {
      return info.param.label;
    });

// Layout-specific I/O shape assertions: the whole point of MFS is that
// a 15-recipient mail is written once, not 15 times (§6.3).
TEST(StoreIoShapeTest, MfsWritesSingleCopyMboxWritesN) {
  const std::string base = ::testing::TempDir() + "/mfs_ioshape";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  util::Rng rng(3);
  auto mbox = MakeMboxStore(base + "/mbox", {});
  auto mfs = MakeMfsStore(base + "/mfs", {});
  ASSERT_TRUE(mbox.ok());
  ASSERT_TRUE(mfs.ok());

  std::vector<std::string> boxes;
  for (int i = 0; i < 15; ++i) boxes.push_back("user" + std::to_string(i));
  const std::string body(10000, 'S');
  ASSERT_TRUE((*mbox)->Deliver(MailId::Generate(rng), body, boxes).ok());
  ASSERT_TRUE((*mfs)->Deliver(MailId::Generate(rng), body, boxes).ok());

  // mbox wrote ~15x the body; MFS wrote ~1x.
  EXPECT_GE((*mbox)->stats().bytes_written, 15 * body.size());
  EXPECT_LT((*mfs)->stats().bytes_written, 2 * body.size());
  std::filesystem::remove_all(base);
}

TEST(StoreIoShapeTest, HardlinkCreatesOneFilePerMail) {
  const std::string base = ::testing::TempDir() + "/mfs_linkshape";
  std::filesystem::remove_all(base);
  util::Rng rng(5);
  auto hardlink = MakeHardlinkMaildirStore(base, {});
  ASSERT_TRUE(hardlink.ok());
  std::vector<std::string> boxes = {"a", "b", "c", "d", "e"};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*hardlink)->Deliver(MailId::Generate(rng), "body\n", boxes).ok());
  }
  EXPECT_EQ((*hardlink)->stats().files_created, 4u);
  EXPECT_EQ((*hardlink)->stats().hard_links, 20u);
  std::filesystem::remove_all(base);
}

TEST(StoreIoShapeTest, MaildirCreatesOneFilePerRecipient) {
  const std::string base = ::testing::TempDir() + "/mfs_maildirshape";
  std::filesystem::remove_all(base);
  util::Rng rng(5);
  auto maildir = MakeMaildirStore(base, {});
  ASSERT_TRUE(maildir.ok());
  std::vector<std::string> boxes = {"a", "b", "c"};
  ASSERT_TRUE((*maildir)->Deliver(MailId::Generate(rng), "body\n", boxes).ok());
  EXPECT_EQ((*maildir)->stats().files_created, 3u);
  std::filesystem::remove_all(base);
}

TEST(MboxQuotingTest, FromLinesQuotedAndRestored) {
  const std::string base = ::testing::TempDir() + "/mfs_mboxquote";
  std::filesystem::remove_all(base);
  util::Rng rng(9);
  auto store = MakeMboxStore(base, {});
  ASSERT_TRUE(store.ok());
  const std::string body = "line one\nFrom me to you\nlast\n";
  const std::string boxes[] = {"alice"};
  ASSERT_TRUE((*store)->Deliver(MailId::Generate(rng), body, boxes).ok());
  auto mails = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  ASSERT_EQ(mails->size(), 1u);
  EXPECT_EQ((*mails)[0], body);
  std::filesystem::remove_all(base);
}

TEST(StoreOptionsTest, FsyncEachMailCountsFsyncs) {
  const std::string base = ::testing::TempDir() + "/mfs_fsyncopt";
  std::filesystem::remove_all(base);
  util::Rng rng(13);
  StoreOptions opts;
  opts.fsync_each_mail = true;
  auto store = MakeMaildirStore(base, opts);
  ASSERT_TRUE(store.ok());
  const std::string boxes[] = {"alice", "bob"};
  ASSERT_TRUE((*store)->Deliver(MailId::Generate(rng), "x\n", boxes).ok());
  EXPECT_EQ((*store)->stats().fsyncs, 2u);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace sams::mfs
