#include "fskit/fs_model.h"
#include "fskit/sim_fs.h"

#include <gtest/gtest.h>

#include "sim/disk.h"
#include "sim/simulator.h"

namespace sams::fskit {
namespace {

using util::SimTime;

TEST(FsModelTest, FactoryByName) {
  auto ext3 = MakeFsModel("ext3");
  ASSERT_NE(ext3, nullptr);
  EXPECT_EQ(ext3->name(), "ext3");
  auto reiser = MakeFsModel("Reiser");
  ASSERT_NE(reiser, nullptr);
  EXPECT_EQ(reiser->name(), "reiser");
  EXPECT_EQ(MakeFsModel("ntfs"), nullptr);
}

TEST(FsModelTest, Ext3FileCreationMuchSlowerThanReiser) {
  // The entire Figure 10 vs 11 contrast hangs on this relation [16].
  Ext3Model ext3;
  ReiserModel reiser;
  EXPECT_GT(ext3.CreateFileCost().nanos(), 3 * reiser.CreateFileCost().nanos());
  EXPECT_GT(ext3.HardLinkCost().nanos(), 2 * reiser.HardLinkCost().nanos());
}

TEST(FsModelTest, AppendCheaperThanCreateOnBoth) {
  // mbox-style appends beating maildir-style creates is the premise of
  // the store comparison.
  Ext3Model ext3;
  ReiserModel reiser;
  EXPECT_LT(ext3.AppendMetaCost(8192).nanos(), ext3.CreateFileCost().nanos());
  EXPECT_LT(reiser.AppendMetaCost(8192).nanos(), reiser.CreateFileCost().nanos());
}

TEST(FsModelTest, Ext3RoundsToBlocks) {
  Ext3Model ext3;
  EXPECT_EQ(ext3.EffectiveWriteBytes(1), 4096u);
  EXPECT_EQ(ext3.EffectiveWriteBytes(4096), 4096u);
  EXPECT_EQ(ext3.EffectiveWriteBytes(4097), 8192u);
  EXPECT_EQ(ext3.EffectiveWriteBytes(0), 0u);
}

TEST(FsModelTest, ReiserPacksTails) {
  ReiserModel reiser;
  // A 1 KiB mail costs ~1 KiB on Reiser, a full block on Ext3.
  EXPECT_LT(reiser.EffectiveWriteBytes(1024), 2048u);
  Ext3Model ext3;
  EXPECT_EQ(ext3.EffectiveWriteBytes(1024), 4096u);
}

TEST(FsModelTest, AppendMetaGrowsWithSize) {
  Ext3Model ext3;
  EXPECT_GT(ext3.AppendMetaCost(10 << 20).nanos(),
            ext3.AppendMetaCost(4096).nanos());
}

class SimFsTest : public ::testing::Test {
 protected:
  SimFsTest() : disk_(sim_, DiskCfg()), fs_(disk_, model_) {}

  static sim::DiskConfig DiskCfg() {
    sim::DiskConfig cfg;
    cfg.commit_base = SimTime::Millis(5);
    cfg.write_mb_per_sec = 1.0;
    return cfg;
  }

  sim::Simulator sim_;
  sim::Disk disk_;
  Ext3Model model_;
  SimFs fs_;
};

TEST_F(SimFsTest, OperationsCountInStats) {
  fs_.CreateFile();
  fs_.HardLink();
  fs_.DeleteFile();
  fs_.Rename();
  fs_.Append(1000);
  EXPECT_EQ(fs_.stats().files_created, 1u);
  EXPECT_EQ(fs_.stats().hard_links, 1u);
  EXPECT_EQ(fs_.stats().deletes, 1u);
  EXPECT_EQ(fs_.stats().renames, 1u);
  EXPECT_EQ(fs_.stats().appends, 1u);
  EXPECT_EQ(fs_.stats().logical_bytes, 1000u);
  EXPECT_EQ(fs_.stats().effective_bytes, 4096u);
}

TEST_F(SimFsTest, MetadataChargesLandInCommit) {
  fs_.CreateFile();
  SimTime done_at;
  fs_.Fsync([&] { done_at = sim_.Now(); });
  sim_.Run();
  EXPECT_EQ(done_at,
            SimTime::Millis(5) + model_.CreateFileCost());
}

TEST_F(SimFsTest, DataBytesLandInCommit) {
  fs_.Append(1024 * 1024 - 1);  // rounds to 1 MiB on ext3
  SimTime done_at;
  fs_.Fsync([&] { done_at = sim_.Now(); });
  sim_.Run();
  // commit_base + 1 MiB at 1 MiB/s + append meta (~94 us for 1 MiB).
  EXPECT_GE(done_at, SimTime::Millis(5) + SimTime::Seconds(1));
  EXPECT_LT(done_at, SimTime::Millis(7) + SimTime::Seconds(1));
}

TEST_F(SimFsTest, ManySmallCreatesDominateCommitOnExt3) {
  // 100 maildir-style creations: ~160 ms of journal metadata, the
  // Figure 10 effect in miniature.
  for (int i = 0; i < 100; ++i) {
    fs_.CreateFile();
    fs_.Append(2048);
  }
  SimTime done_at;
  fs_.Fsync([&] { done_at = sim_.Now(); });
  sim_.Run();
  EXPECT_GT(done_at, SimTime::Millis(290));
}

TEST(SimFsReiserTest, SameWorkloadFarCheaperOnReiser) {
  sim::Simulator sim;
  sim::DiskConfig dcfg;
  dcfg.commit_base = SimTime::Millis(5);
  dcfg.write_mb_per_sec = 50.0;
  sim::Disk disk(sim, dcfg);
  ReiserModel reiser;
  SimFs fs(disk, reiser);
  for (int i = 0; i < 100; ++i) {
    fs.CreateFile();
    fs.Append(2048);
  }
  SimTime done_at;
  fs.Fsync([&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_LT(done_at, SimTime::Millis(120));
}

}  // namespace
}  // namespace sams::fskit
