// GroupCommitter tests: epoch batching, explicit Flush determinism,
// error propagation, fault-injected crashes mid-flush, and the
// end-to-end store guarantee — N concurrent deliveries pay far fewer
// than 2N fsyncs while never acking a mail a crash can lose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "mfs/group_commit.h"
#include "mfs/store.h"
#include "mfs/volume.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace sams::mfs {
namespace {

GroupCommitter::Options Foreground() {
  GroupCommitter::Options opts;
  opts.background = false;
  return opts;
}

TEST(GroupCommitterTest, ForegroundCommitRunsOneRound) {
  int syncs = 0;
  GroupCommitter gc([&]() -> util::Result<int> { ++syncs; return 2; },
                    Foreground());
  ASSERT_TRUE(gc.Commit().ok());
  ASSERT_TRUE(gc.Commit().ok());
  EXPECT_EQ(syncs, 2);  // no concurrency: each commit is its own round
  const auto stats = gc.stats();
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_EQ(stats.flushes, 2u);
  EXPECT_EQ(stats.fsyncs, 4u);
  EXPECT_EQ(stats.batch_max, 1u);
}

TEST(GroupCommitterTest, ExplicitFlushIsDeterministic) {
  int syncs = 0;
  GroupCommitter gc([&]() -> util::Result<int> { ++syncs; return 1; },
                    Foreground());
  ASSERT_TRUE(gc.Flush().ok());
  EXPECT_EQ(syncs, 1);
  EXPECT_EQ(gc.stats().flushes, 1u);
}

TEST(GroupCommitterTest, SyncErrorPropagatesToCommitter) {
  GroupCommitter gc(
      []() -> util::Result<int> { return util::IoError("disk on fire"); },
      Foreground());
  const auto err = gc.Commit();
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), util::ErrorCode::kIoError);
  EXPECT_EQ(gc.stats().fsyncs, 0u);
}

TEST(GroupCommitterTest, ConcurrentCommitsBatchIntoFewRounds) {
  // The first round holds the flush slot for 30ms; every commit that
  // arrives meanwhile must ride a single later round rather than each
  // paying its own.
  constexpr int kThreads = 8;
  std::atomic<int> syncs{0};
  GroupCommitter gc(
      [&]() -> util::Result<int> {
        ++syncs;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return 1;
      },
      GroupCommitter::Options{});  // background flush thread
  std::vector<std::thread> committers;
  std::vector<util::Error> results(kThreads, util::OkError());
  for (int i = 0; i < kThreads; ++i) {
    committers.emplace_back([&gc, &results, i] { results[i] = gc.Commit(); });
  }
  for (auto& t : committers) t.join();
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  const auto stats = gc.stats();
  EXPECT_EQ(stats.commits, 8u);
  EXPECT_LT(stats.flushes, 8u);  // batching happened
  EXPECT_GT(stats.batch_max, 1u);
  EXPECT_EQ(stats.fsyncs, static_cast<std::uint64_t>(syncs.load()));
}

TEST(GroupCommitterTest, BindMetricsExportsBatchHistogram) {
  obs::Registry registry;
  GroupCommitter gc([]() -> util::Result<int> { return 1; }, Foreground());
  const obs::Labels layout = {{"layout", "test"}};
  gc.BindMetrics(registry, layout);
  ASSERT_TRUE(gc.Commit().ok());
  registry.Collect();
  const auto* tokens =
      registry.FindCounter("sams_mfs_commit_tokens_total", layout);
  ASSERT_NE(tokens, nullptr);
  EXPECT_EQ(tokens->value(), 1u);
  const auto* flushes =
      registry.FindCounter("sams_mfs_commit_flushes_total", layout);
  ASSERT_NE(flushes, nullptr);
  EXPECT_EQ(flushes->value(), 1u);
  const auto* hist = registry.FindHistogram("sams_mfs_commit_batch_size", layout);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
}

TEST(GroupCommitterTest, EnqueueFaultFailsFastWithoutFlushing) {
  fault::ScopedArm arm(3);
  fault::Policy p;
  p.action = fault::Action::kError;
  fault::Injector::Global().Set("mfs.commit.enqueue", p);
  int syncs = 0;
  GroupCommitter gc([&]() -> util::Result<int> { ++syncs; return 1; },
                    Foreground());
  EXPECT_FALSE(gc.Commit().ok());
  EXPECT_EQ(syncs, 0);
  EXPECT_EQ(gc.stats().commits, 0u);
}

TEST(GroupCommitterTest, CrashDuringFlushFailsTheBatch) {
  fault::ScopedArm arm(4);
  fault::Policy p;
  p.action = fault::Action::kCrash;
  fault::Injector::Global().Set("mfs.commit.flush", p);
  int syncs = 0;
  GroupCommitter gc([&]() -> util::Result<int> { ++syncs; return 1; },
                    Foreground());
  EXPECT_FALSE(gc.Commit().ok());  // the mail must NOT be acked
  EXPECT_EQ(syncs, 0);             // died before the fsyncs
  // kCrash is one-shot: the committer keeps working afterwards.
  EXPECT_TRUE(gc.Commit().ok());
  EXPECT_EQ(syncs, 1);
}

// ---------------------------------------------------------------------
// Store-level: concurrent group-commit deliveries against the real MFS
// backend, and crash-mid-batch recovery.
// ---------------------------------------------------------------------

class GroupCommitStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/mfs_gc_" + tag;
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  MailId Id() {
    std::lock_guard<std::mutex> lk(rng_mutex_);
    return MailId::Generate(rng_);
  }

  StoreOptions GroupOptions() {
    StoreOptions opts;
    opts.group_commit = true;
    opts.commit.window = std::chrono::microseconds(2000);
    return opts;
  }

  std::string root_;
  std::mutex rng_mutex_;
  util::Rng rng_{99};
};

TEST_F(GroupCommitStoreTest, ConcurrentDeliveriesShareFsyncs) {
  // All threads deliver to the same mailbox: a flush round pays
  // 2 fsyncs (inbox.key + inbox.dat) however many mails it covers, so
  // batching must push the fsync bill well under 2 per mail.
  constexpr int kThreads = 8;
  constexpr int kMailsPerThread = 4;
  StoreOptions opts = GroupOptions();
  opts.commit.window = std::chrono::microseconds(5000);
  auto store = MakeMfsStore(root_, opts);
  ASSERT_TRUE(store.ok());
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kMailsPerThread; ++i) {
        const std::string boxes[] = {"inbox"};
        if (!(*store)
                 ->Deliver(Id(),
                           "mail t" + std::to_string(t) + "." +
                               std::to_string(i),
                           boxes)
                 .ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_EQ(failures.load(), 0);
  // Every mail is durable and readable...
  constexpr std::uint64_t kMails = kThreads * kMailsPerThread;
  auto mails = (*store)->ReadMailbox("inbox");
  ASSERT_TRUE(mails.ok());
  EXPECT_EQ(mails->size(), kMails);
  // ...at well under the 2-fsyncs-per-mail cost of per-mail durability.
  const auto commit = (*store)->committer()->stats();
  EXPECT_EQ(commit.commits, kMails);
  EXPECT_LT((*store)->stats().fsyncs, 2 * kMails);
  EXPECT_GT(commit.batch_max, 1u);
}

TEST_F(GroupCommitStoreTest, StageThenCommitMatchesDeliver) {
  StoreOptions opts = GroupOptions();
  opts.commit.background = false;  // deterministic: Commit flushes inline
  auto store = MakeMfsStore(root_, opts);
  ASSERT_TRUE(store.ok());
  const std::string boxes[] = {"alice"};
  ASSERT_TRUE((*store)->StageDelivery(Id(), "staged 1", boxes).ok());
  ASSERT_TRUE((*store)->StageDelivery(Id(), "staged 2", boxes).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  const auto commit = (*store)->committer()->stats();
  EXPECT_EQ(commit.flushes, 1u);
  // alice.{key,dat}: both staged mails covered by one round's 2 fsyncs.
  EXPECT_EQ((*store)->stats().fsyncs, 2u);
  auto mails = (*store)->ReadMailbox("alice");
  ASSERT_TRUE(mails.ok());
  EXPECT_EQ(mails->size(), 2u);
}

TEST_F(GroupCommitStoreTest, CrashMidBatchLosesNoAckedMail) {
  // Deliver (and ack) one mail, then crash the flush of a second
  // batch. The un-acked mail may or may not survive; the acked one
  // MUST, and Recover() must leave a clean volume either way.
  StoreOptions opts = GroupOptions();
  opts.commit.background = false;
  {
    auto store = MakeMfsStore(root_, opts);
    ASSERT_TRUE(store.ok());
    const std::string boxes[] = {"alice"};
    ASSERT_TRUE((*store)->Deliver(Id(), "acked mail", boxes).ok());

    fault::ScopedArm arm(11);
    fault::Policy p;
    p.action = fault::Action::kCrash;
    fault::Injector::Global().Set("mfs.commit.flush", p);
    const auto err = (*store)->Deliver(Id(), "torn mail", boxes);
    EXPECT_FALSE(err.ok());  // never acked to the client
  }  // store dropped without a clean shutdown: the "crash"

  auto volume = MfsVolume::Open(root_);
  ASSERT_TRUE(volume.ok());
  auto report = (*volume)->Recover();
  ASSERT_TRUE(report.ok());
  auto fsck = (*volume)->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << (fsck->errors.empty() ? "" : fsck->errors[0]);
  auto handle = (*volume)->MailOpen("alice");
  ASSERT_TRUE(handle.ok());
  auto first = (*volume)->MailRead(**handle);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body, "acked mail");
}

TEST_F(GroupCommitStoreTest, AllBackendsSupportGroupCommit) {
  using Factory = util::Result<std::unique_ptr<MailStore>> (*)(
      const std::string&, StoreOptions);
  const Factory factories[] = {MakeMboxStore, MakeMaildirStore,
                               MakeHardlinkMaildirStore, MakeMfsStore};
  int n = 0;
  for (Factory factory : factories) {
    StoreOptions opts = GroupOptions();
    opts.commit.background = false;
    auto store = factory(root_ + "/s" + std::to_string(n++), opts);
    ASSERT_TRUE(store.ok());
    const std::string boxes[] = {"alice", "bob"};
    ASSERT_TRUE((*store)->Deliver(Id(), "group mail\n", boxes).ok());
    EXPECT_GT((*store)->stats().fsyncs, 0u) << (*store)->name();
    for (const auto& box : boxes) {
      auto mails = (*store)->ReadMailbox(box);
      ASSERT_TRUE(mails.ok()) << (*store)->name() << "/" << box;
      ASSERT_EQ(mails->size(), 1u) << (*store)->name() << "/" << box;
      EXPECT_EQ((*mails)[0], "group mail\n");
    }
  }
}

}  // namespace
}  // namespace sams::mfs
