#include "util/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace sams::util {
namespace {

TEST(ErrorTest, DefaultIsOk) {
  Error e;
  EXPECT_TRUE(e.ok());
  EXPECT_EQ(e.code(), ErrorCode::kOk);
  EXPECT_EQ(e.ToString(), "OK");
}

TEST(ErrorTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(NotFound("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(PermissionDenied("x").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(Corruption("x").code(), ErrorCode::kCorruption);
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(OutOfRange("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(Unavailable("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ProtocolError("x").code(), ErrorCode::kProtocolError);
  EXPECT_EQ(ResourceExhausted("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(NotFound("missing mailbox").message(), "missing mailbox");
}

TEST(ErrorTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Corruption("bad key file").ToString(), "CORRUPTION: bad key file");
}

TEST(ErrorCodeNameTest, AllNamesDistinct) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kProtocolError), "PROTOCOL_ERROR");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.error().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Error FailsIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return OkError();
}

Error UsesReturnIfError(int x) {
  SAMS_RETURN_IF_ERROR(FailsIfNegative(x));
  return OkError();
}

TEST(ResultMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), ErrorCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return OutOfRange("not positive");
  return x;
}

Error UsesAssignOrReturn(int x, int* out) {
  SAMS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return OkError();
}

TEST(ResultMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(UsesAssignOrReturn(0, &out).code(), ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace sams::util
