#include "smtp/client_session.h"

#include <gtest/gtest.h>

#include "smtp/server_session.h"

namespace sams::smtp {
namespace {

MailJob MakeJob(int rcpts = 1) {
  MailJob job;
  job.helo = "bot.example";
  job.mail_from = *Path::Parse("<spammer@offers.test>");
  for (int i = 0; i < rcpts; ++i) {
    job.rcpts.push_back(*Path::Parse("<user" + std::to_string(i) + "@dept.test>"));
  }
  job.body = "BUY NOW\n";
  return job;
}

Reply R(ReplyCode code) { return Reply{code, ""}; }

TEST(ClientSessionTest, HappyPathDialog) {
  ClientSession c(MakeJob(2));
  auto out = c.OnReply(R(ReplyCode::kServiceReady));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "HELO bot.example\r\n");
  out = c.OnReply(R(ReplyCode::kOk));
  EXPECT_EQ(*out, "MAIL FROM:<spammer@offers.test>\r\n");
  out = c.OnReply(R(ReplyCode::kOk));
  EXPECT_EQ(*out, "RCPT TO:<user0@dept.test>\r\n");
  out = c.OnReply(R(ReplyCode::kOk));
  EXPECT_EQ(*out, "RCPT TO:<user1@dept.test>\r\n");
  out = c.OnReply(R(ReplyCode::kOk));
  EXPECT_EQ(*out, "DATA\r\n");
  out = c.OnReply(R(ReplyCode::kStartMailInput));
  EXPECT_EQ(*out, "BUY NOW\r\n.\r\n");
  out = c.OnReply(R(ReplyCode::kOk));
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kDelivered);
  out = c.OnReply(R(ReplyCode::kClosing));
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.accepted_rcpts(), 2);
}

TEST(ClientSessionTest, AllRcptsRejectedSkipsData) {
  ClientSession c(MakeJob(3));
  c.OnReply(R(ReplyCode::kServiceReady));
  c.OnReply(R(ReplyCode::kOk));  // HELO ack
  auto out = c.OnReply(R(ReplyCode::kOk));  // MAIL ack -> first RCPT
  for (int i = 0; i < 2; ++i) {
    out = c.OnReply(R(ReplyCode::kUserUnknown));
    ASSERT_TRUE(out);
    EXPECT_EQ(out->substr(0, 4), "RCPT");
  }
  out = c.OnReply(R(ReplyCode::kUserUnknown));  // last rejection
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kAllRejected);
  EXPECT_EQ(c.rejected_rcpts(), 3);
  EXPECT_EQ(c.accepted_rcpts(), 0);
}

TEST(ClientSessionTest, PartialRejectionStillDelivers) {
  ClientSession c(MakeJob(2));
  c.OnReply(R(ReplyCode::kServiceReady));
  c.OnReply(R(ReplyCode::kOk));
  c.OnReply(R(ReplyCode::kOk));                       // -> RCPT 0
  c.OnReply(R(ReplyCode::kUserUnknown));              // -> RCPT 1
  auto out = c.OnReply(R(ReplyCode::kOk));            // -> DATA
  EXPECT_EQ(*out, "DATA\r\n");
  EXPECT_EQ(c.accepted_rcpts(), 1);
  EXPECT_EQ(c.rejected_rcpts(), 1);
}

TEST(ClientSessionTest, AbortAfterBanner) {
  ClientSession c(MakeJob(), AbortStage::kAfterBanner);
  auto out = c.OnReply(R(ReplyCode::kServiceReady));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kAborted);
}

TEST(ClientSessionTest, AbortAfterHelo) {
  ClientSession c(MakeJob(), AbortStage::kAfterHelo);
  c.OnReply(R(ReplyCode::kServiceReady));
  auto out = c.OnReply(R(ReplyCode::kOk));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kAborted);
}

TEST(ClientSessionTest, AbortAfterMail) {
  ClientSession c(MakeJob(), AbortStage::kAfterMail);
  c.OnReply(R(ReplyCode::kServiceReady));
  c.OnReply(R(ReplyCode::kOk));
  auto out = c.OnReply(R(ReplyCode::kOk));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kAborted);
}

TEST(ClientSessionTest, ServerErrorOnMailAbortsPolitely) {
  ClientSession c(MakeJob());
  c.OnReply(R(ReplyCode::kServiceReady));
  c.OnReply(R(ReplyCode::kOk));
  auto out = c.OnReply(R(ReplyCode::kBadSequence));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kServerError);
}

TEST(ClientSessionTest, NegativeBannerEndsImmediately) {
  ClientSession c(MakeJob());
  auto out = c.OnReply(R(ReplyCode::kServiceUnavailable));
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.outcome(), ClientOutcome::kServerError);
}

TEST(ClientSessionTest, RejectedDataGoEndsWithError) {
  ClientSession c(MakeJob());
  c.OnReply(R(ReplyCode::kServiceReady));
  c.OnReply(R(ReplyCode::kOk));
  c.OnReply(R(ReplyCode::kOk));
  c.OnReply(R(ReplyCode::kOk));  // RCPT accepted -> DATA
  auto out = c.OnReply(R(ReplyCode::kBadSequence));  // no 354
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "QUIT\r\n");
  EXPECT_EQ(c.outcome(), ClientOutcome::kServerError);
}

// End-to-end: wire the client FSM straight into the server FSM.
TEST(SmtpDialogTest, ClientAgainstServerDeliversMail) {
  std::vector<Envelope> mails;
  std::string to_client;
  ServerSession::Hooks hooks;
  hooks.send = [&](std::string b) { to_client += b; return true; };
  hooks.validate_rcpt = [](const Address& a) { return a.local() != "ghost"; };
  hooks.on_mail = [&](Envelope&& env) { mails.push_back(std::move(env)); };
  ServerSession server({}, std::move(hooks), "192.0.2.9");

  MailJob job = MakeJob(2);
  job.rcpts.push_back(*Path::Parse("<ghost@dept.test>"));
  ClientSession client(job);

  server.Start();
  // Pump replies through the client until it finishes.
  int guard = 0;
  while (!client.done() && guard++ < 100) {
    // Pop one reply line from the server's outbound buffer.
    const std::size_t eol = to_client.find("\r\n");
    ASSERT_NE(eol, std::string::npos) << "server produced no reply";
    Reply reply;
    ASSERT_TRUE(ParseReply(to_client.substr(0, eol + 2), &reply));
    to_client.erase(0, eol + 2);
    auto out = client.OnReply(reply);
    if (out) server.Feed(*out);
  }
  ASSERT_LT(guard, 100);
  EXPECT_EQ(client.outcome(), ClientOutcome::kDelivered);
  EXPECT_EQ(client.accepted_rcpts(), 2);
  EXPECT_EQ(client.rejected_rcpts(), 1);
  ASSERT_EQ(mails.size(), 1u);
  EXPECT_EQ(mails[0].rcpt_to.size(), 2u);
  EXPECT_EQ(mails[0].body, "BUY NOW\r\n");
  EXPECT_EQ(server.state(), SessionState::kClosed);
}

}  // namespace
}  // namespace sams::smtp
