#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "trace/ecn.h"
#include "trace/sinkhole.h"
#include "trace/survey.h"
#include "trace/synthetic.h"
#include "trace/univ.h"
#include "trace/workload.h"
#include "util/stats.h"

namespace sams::trace {
namespace {

// Scaled-down sinkhole for fast unit tests; full-size statistics are
// verified once in SinkholeFullSizeTest below.
SinkholeConfig SmallSinkhole() {
  SinkholeConfig cfg;
  cfg.n_connections = 20'000;
  cfg.n_ips = 4'000;
  cfg.n_prefixes = 1'800;
  cfg.n_botnets = 20;
  return cfg;
}

TEST(SizeModelTest, SpamSmallerThanHamOnAverage) {
  util::Rng rng(1);
  double spam = 0, ham = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    spam += SampleSpamSize(rng);
    ham += SampleHamSize(rng);
  }
  EXPECT_LT(spam / n, ham / n);
  EXPECT_GT(spam / n, 1'000);   // not degenerate
  EXPECT_LT(ham / n, 200'000);  // tail clamped
}

TEST(RcptDistributionTest, MatchesFigureFour) {
  util::Rng rng(2);
  util::Sampler sampler;
  for (int i = 0; i < 100'000; ++i) {
    sampler.Add(SampleSinkholeRcpts(rng));
  }
  // §6.3: "the average number of recipients per connection in this
  // trace is about 7"; Figure 4: bulk between 5 and 15.
  EXPECT_NEAR(sampler.mean(), 7.0, 0.3);
  EXPECT_GE(sampler.Percentile(25), 4.0);
  EXPECT_LE(sampler.Percentile(90), 12.0);
  EXPECT_LE(sampler.Percentile(100), 20.0);
  EXPECT_GE(sampler.Percentile(1), 1.0);
}

TEST(SinkholeTest, TableOneCountsExact) {
  SinkholeModel model(SmallSinkhole());
  const TraceSummary s = model.Summary();
  EXPECT_EQ(s.connections, 20'000u);
  EXPECT_EQ(s.unique_ips, 4'000u);  // every bot appears (campaigns cycle)
  EXPECT_EQ(model.bot_ips().size(), 4'000u);
  std::unordered_set<Prefix24> prefixes;
  for (const Ipv4 ip : model.bot_ips()) prefixes.insert(Prefix24(ip));
  EXPECT_EQ(prefixes.size(), 1'800u);
}

TEST(SinkholeTest, ArrivalsSortedAndSpanDuration) {
  SinkholeModel model(SmallSinkhole());
  const auto& sessions = model.sessions();
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    EXPECT_LE(sessions[i - 1].arrival, sessions[i].arrival);
  }
  EXPECT_EQ(sessions.back().arrival, SimTime::Days(61));
}

TEST(SinkholeTest, CblDensityMatchesFigureTwelve) {
  SinkholeModel model(SmallSinkhole());
  int over10 = 0, over100 = 0, total = 0;
  for (const auto& [prefix, density] : model.cbl_density()) {
    ++total;
    if (density > 10) ++over10;
    if (density > 100) ++over100;
    EXPECT_GE(density, 1);
    EXPECT_LE(density, 254);
  }
  // "40% of the prefixes contained more than 10 IPs blacklisted" and
  // "about 3% contained more than 100" (§7.1).
  EXPECT_NEAR(static_cast<double>(over10) / total, 0.40, 0.05);
  EXPECT_NEAR(static_cast<double>(over100) / total, 0.03, 0.02);
}

TEST(SinkholeTest, ListedIpsCoverBotsAndDensity) {
  SinkholeConfig cfg = SmallSinkhole();
  cfg.n_connections = 5'000;
  cfg.n_ips = 1'000;
  cfg.n_prefixes = 450;
  SinkholeModel model(cfg);
  const auto listed = model.ListedIps();
  std::unordered_set<Ipv4> listed_set(listed.begin(), listed.end());
  EXPECT_EQ(listed_set.size(), listed.size());  // no duplicates
  for (const Ipv4 bot : model.bot_ips()) {
    EXPECT_TRUE(listed_set.contains(bot));
  }
  // Per-prefix counts match the density map.
  std::unordered_map<Prefix24, int> counts;
  for (const Ipv4 ip : listed) ++counts[Prefix24(ip)];
  for (const auto& [prefix, density] : model.cbl_density()) {
    EXPECT_EQ(counts[prefix], density) << prefix.ToString();
  }
}

TEST(SinkholeTest, PrefixInterarrivalShorterThanIp) {
  // Figure 13: temporal locality is stronger at /24 granularity.
  SinkholeModel model(SmallSinkhole());
  std::unordered_map<Ipv4, SimTime> last_ip;
  std::unordered_map<Prefix24, SimTime> last_prefix;
  util::Sampler ip_gaps, prefix_gaps;
  for (const SessionSpec& s : model.sessions()) {
    if (auto it = last_ip.find(s.client_ip); it != last_ip.end()) {
      ip_gaps.Add((s.arrival - it->second).seconds());
    }
    last_ip[s.client_ip] = s.arrival;
    const Prefix24 p(s.client_ip);
    if (auto it = last_prefix.find(p); it != last_prefix.end()) {
      prefix_gaps.Add((s.arrival - it->second).seconds());
    }
    last_prefix[p] = s.arrival;
  }
  ASSERT_GT(ip_gaps.count(), 100u);
  ASSERT_GT(prefix_gaps.count(), 100u);
  EXPECT_LT(prefix_gaps.Percentile(50), ip_gaps.Percentile(50));
  EXPECT_LT(prefix_gaps.mean(), ip_gaps.mean());
}

TEST(SinkholeTest, DeterministicForSameSeed) {
  SinkholeModel a(SmallSinkhole());
  SinkholeModel b(SmallSinkhole());
  ASSERT_EQ(a.sessions().size(), b.sessions().size());
  for (std::size_t i = 0; i < a.sessions().size(); i += 997) {
    EXPECT_EQ(a.sessions()[i].client_ip, b.sessions()[i].client_ip);
    EXPECT_EQ(a.sessions()[i].arrival, b.sessions()[i].arrival);
    EXPECT_EQ(a.sessions()[i].size_bytes, b.sessions()[i].size_bytes);
  }
}

// One full-size generation pass pinning the exact Table 1 numbers.
TEST(SinkholeFullSizeTest, TableOneNumbers) {
  SinkholeModel model;  // defaults = paper values
  const TraceSummary s = model.Summary();
  EXPECT_EQ(s.connections, 101'692u);
  EXPECT_EQ(s.unique_ips, 19'492u);
  EXPECT_EQ(s.unique_prefixes24, 8'832u);
  EXPECT_NEAR(s.mean_rcpts, 7.0, 0.3);
  EXPECT_EQ(s.spam_ratio, 1.0);
}

UnivConfig SmallUniv() {
  UnivConfig cfg;
  cfg.n_connections = 60'000;
  cfg.n_spam_ips = 18'000;
  cfg.n_ham_ips = 1'000;
  return cfg;
}

TEST(UnivTest, RatiosMatchConfig) {
  UnivModel model(SmallUniv());
  const TraceSummary s = model.Summary();
  EXPECT_EQ(s.connections, 60'000u);
  EXPECT_NEAR(s.bounce_ratio, 0.22, 0.02);
  EXPECT_NEAR(s.unfinished_ratio, 0.10, 0.02);
  // Among delivered (normal) sessions, 67% are spam.
  std::size_t normal = 0, normal_spam = 0;
  for (const SessionSpec& spec : model.sessions()) {
    if (spec.kind == SessionKind::kNormal) {
      ++normal;
      if (spec.is_spam) ++normal_spam;
    }
  }
  EXPECT_NEAR(static_cast<double>(normal_spam) / normal, 0.67, 0.02);
}

TEST(UnivTest, HamRcptMeanNearOne) {
  UnivModel model(SmallUniv());
  double rcpts = 0;
  std::size_t n = 0;
  for (const SessionSpec& spec : model.sessions()) {
    if (spec.kind == SessionKind::kNormal && !spec.is_spam) {
      rcpts += spec.n_rcpts;
      ++n;
    }
  }
  EXPECT_NEAR(rcpts / static_cast<double>(n), 1.02, 0.01);
}

TEST(UnivTest, SpamPopulationIsWide) {
  UnivModel model(SmallUniv());
  // ~1.8 spam IPs per /24: per-IP caching will not help much (§4.3).
  std::unordered_set<Prefix24> prefixes;
  for (const Ipv4 ip : model.spam_ips()) prefixes.insert(Prefix24(ip));
  const double per_prefix =
      static_cast<double>(model.spam_ips().size()) / prefixes.size();
  EXPECT_LT(per_prefix, 2.2);
  EXPECT_GT(per_prefix, 1.2);
}

TEST(UnivTest, BouncesNeverHaveValidRcpts) {
  UnivModel model(SmallUniv());
  for (const SessionSpec& spec : model.sessions()) {
    if (spec.kind == SessionKind::kBounce) {
      EXPECT_EQ(spec.n_valid_rcpts, 0);
      EXPECT_GE(spec.n_rcpts, 1);
    }
    if (spec.kind == SessionKind::kUnfinished) {
      EXPECT_EQ(spec.n_rcpts, 0);
    }
  }
}

TEST(EcnTest, FigureThreeBands) {
  EcnBounceModel model;
  ASSERT_EQ(model.days().size(), 395u);
  for (const EcnDay& day : model.days()) {
    EXPECT_GE(day.bounce_ratio, 0.17);
    EXPECT_LE(day.bounce_ratio, 0.28);
    EXPECT_GE(day.unfinished_ratio, 0.04);
    EXPECT_LE(day.unfinished_ratio, 0.16);
  }
  EXPECT_NEAR(model.MeanBounceRatio(), 0.225, 0.015);
  EXPECT_NEAR(model.MeanUnfinishedRatio(), 0.10, 0.02);
}

TEST(EcnTest, SlightUpwardTrend) {
  EcnBounceModel model;
  // First vs last quarter averages.
  double early = 0, late = 0;
  const std::size_t q = model.days().size() / 4;
  for (std::size_t i = 0; i < q; ++i) early += model.days()[i].bounce_ratio;
  for (std::size_t i = model.days().size() - q; i < model.days().size(); ++i) {
    late += model.days()[i].bounce_ratio;
  }
  EXPECT_GT(late / q, early / q + 0.01);
}

TEST(BounceSweepTest, RatioControlsKinds) {
  for (double ratio : {0.0, 0.4, 0.9, 1.0}) {
    BounceSweepConfig cfg;
    cfg.n_sessions = 20'000;
    cfg.bounce_ratio = ratio;
    const auto sessions = MakeBounceSweepTrace(cfg);
    std::size_t rogue = 0;
    for (const SessionSpec& s : sessions) {
      if (s.kind != SessionKind::kNormal) ++rogue;
    }
    EXPECT_NEAR(static_cast<double>(rogue) / sessions.size(), ratio, 0.02)
        << "ratio " << ratio;
  }
}

TEST(BounceSweepTest, NormalSessionsSingleRecipient) {
  BounceSweepConfig cfg;
  cfg.bounce_ratio = 0.0;
  cfg.n_sessions = 1'000;
  for (const SessionSpec& s : MakeBounceSweepTrace(cfg)) {
    EXPECT_EQ(s.kind, SessionKind::kNormal);
    EXPECT_EQ(s.n_rcpts, 1);
    EXPECT_GT(s.size_bytes, 0u);
  }
}

TEST(RecipientSweepTest, SequencesShareSizeAndSplitIntoConnections) {
  RecipientSweepConfig cfg;
  cfg.n_mails = 100;
  cfg.sequence_len = 15;
  cfg.rcpts_per_connection = 5;
  const auto sessions = MakeRecipientSweepTrace(cfg);
  // 15 recipients at 5 per connection = 3 connections per sequence.
  ASSERT_EQ(sessions.size(), 300u);
  for (std::size_t i = 0; i < sessions.size(); i += 3) {
    EXPECT_EQ(sessions[i].size_bytes, sessions[i + 1].size_bytes);
    EXPECT_EQ(sessions[i].size_bytes, sessions[i + 2].size_bytes);
    EXPECT_EQ(sessions[i].n_rcpts, 5);
  }
  // Different sequences (almost surely) differ in size.
  EXPECT_NE(sessions[0].size_bytes, sessions[3].size_bytes);
}

TEST(RecipientSweepTest, UnevenSplitLastConnectionSmaller) {
  RecipientSweepConfig cfg;
  cfg.n_mails = 1;
  cfg.sequence_len = 15;
  cfg.rcpts_per_connection = 4;
  const auto sessions = MakeRecipientSweepTrace(cfg);
  ASSERT_EQ(sessions.size(), 4u);  // 4+4+4+3
  EXPECT_EQ(sessions[3].n_rcpts, 3);
}

TEST(SurveyTest, FigureOneDataSane) {
  const auto& survey = FigureOneSurvey();
  ASSERT_EQ(survey.size(), 11u);
  EXPECT_EQ(survey.back().name, "Sendmail");  // largest share
  double prev = 0, total = 0;
  for (const MtaShare& share : survey) {
    EXPECT_GE(share.percent, prev);  // plotted ascending
    prev = share.percent;
    total += share.percent;
  }
  EXPECT_LT(total, 100.0);  // remainder is other/unknown software
  EXPECT_GT(total, 30.0);
}

TEST(SummarizeTest, EmptyTrace) {
  const TraceSummary s = Summarize("empty", {});
  EXPECT_EQ(s.connections, 0u);
  EXPECT_EQ(s.spam_ratio, 0.0);
}

}  // namespace
}  // namespace sams::trace
