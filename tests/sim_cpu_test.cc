#include "sim/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace sams::sim {
namespace {

using util::SimTime;

CpuConfig ZeroOverheadConfig() {
  CpuConfig cfg;
  cfg.ctx_switch_base = SimTime{};
  cfg.ctx_switch_per_runnable = SimTime{};
  cfg.quantum = SimTime::Millis(1);
  return cfg;
}

TEST(CpuTest, SingleBurstTakesItsCost) {
  Simulator sim;
  Cpu cpu(sim, ZeroOverheadConfig());
  SimTime done_at;
  cpu.Submit(1, SimTime::MicrosF(2500), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::MicrosF(2500));
  EXPECT_EQ(cpu.stats().bursts_completed, 1u);
  EXPECT_EQ(cpu.stats().busy, SimTime::MicrosF(2500));
}

TEST(CpuTest, ZeroBurstCompletesImmediately) {
  Simulator sim;
  Cpu cpu(sim, ZeroOverheadConfig());
  bool done = false;
  cpu.Submit(1, SimTime{}, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now().nanos(), 0);
}

TEST(CpuTest, TwoProcessesShareCpuFairly) {
  Simulator sim;
  Cpu cpu(sim, ZeroOverheadConfig());
  SimTime a_done, b_done;
  // Two 5 ms bursts with a 1 ms quantum: they interleave, both finish
  // near 10 ms (B last).
  cpu.Submit(1, SimTime::Millis(5), [&] { a_done = sim.Now(); });
  cpu.Submit(2, SimTime::Millis(5), [&] { b_done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(a_done, SimTime::Millis(9));
  EXPECT_EQ(b_done, SimTime::Millis(10));
}

TEST(CpuTest, ContextSwitchChargedOnProcessChange) {
  Simulator sim;
  CpuConfig cfg = ZeroOverheadConfig();
  cfg.ctx_switch_base = SimTime::Micros(10);
  Cpu cpu(sim, cfg);
  cpu.Submit(1, SimTime::Millis(1), nullptr);
  cpu.Submit(2, SimTime::Millis(1), nullptr);
  sim.Run();
  // Two switches: idle->1, 1->2.
  EXPECT_EQ(cpu.stats().context_switches, 2u);
  EXPECT_EQ(cpu.stats().switch_overhead, SimTime::Micros(20));
  EXPECT_EQ(sim.Now(), SimTime::Millis(2) + SimTime::Micros(20));
}

TEST(CpuTest, NoSwitchWhenSameProcessContinues) {
  Simulator sim;
  CpuConfig cfg = ZeroOverheadConfig();
  cfg.ctx_switch_base = SimTime::Micros(10);
  Cpu cpu(sim, cfg);
  // One process, 3 ms burst = 3 quanta, but no inter-process switching.
  cpu.Submit(7, SimTime::Millis(3), nullptr);
  sim.Run();
  EXPECT_EQ(cpu.stats().context_switches, 1u);  // idle -> 7 only
}

TEST(CpuTest, InterleavingCausesSwitchPerQuantum) {
  Simulator sim;
  CpuConfig cfg = ZeroOverheadConfig();
  cfg.ctx_switch_base = SimTime::Micros(1);
  Cpu cpu(sim, cfg);
  cpu.Submit(1, SimTime::Millis(3), nullptr);
  cpu.Submit(2, SimTime::Millis(3), nullptr);
  sim.Run();
  // Round-robin 1,2,1,2,1,2: six slices, six switches.
  EXPECT_EQ(cpu.stats().context_switches, 6u);
}

TEST(CpuTest, PressureTermScalesWithRunnable) {
  Simulator sim;
  CpuConfig cfg = ZeroOverheadConfig();
  cfg.ctx_switch_per_runnable = SimTime::Micros(1);
  Cpu cpu(sim, cfg);
  // Submit 10 short bursts from distinct processes. The first Submit
  // starts service immediately (1 runnable); the remaining nine queue
  // up, so switches to them see 9, 8, ..., 1 runnable.
  for (int p = 0; p < 10; ++p) cpu.Submit(p, SimTime::Micros(100), nullptr);
  sim.Run();
  // Overhead = 1 + (9 + 8 + ... + 1) us = 46 us.
  EXPECT_EQ(cpu.stats().switch_overhead, SimTime::Micros(46));
}

TEST(CpuTest, CompletionOrderFifoForEqualBursts) {
  Simulator sim;
  Cpu cpu(sim, ZeroOverheadConfig());
  std::vector<int> order;
  for (int p = 0; p < 4; ++p) {
    cpu.Submit(p, SimTime::Micros(200), [&order, p] { order.push_back(p); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CpuTest, ForkChargesForkCost) {
  Simulator sim;
  CpuConfig cfg = ZeroOverheadConfig();
  cfg.fork_cost = SimTime::Micros(300);
  Cpu cpu(sim, cfg);
  SimTime forked_at;
  cpu.Fork(0, [&] { forked_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(forked_at, SimTime::Micros(300));
  EXPECT_EQ(cpu.stats().forks, 1u);
}

TEST(CpuTest, DoneCallbackMaySubmitMoreWork) {
  Simulator sim;
  Cpu cpu(sim, ZeroOverheadConfig());
  SimTime second_done;
  cpu.Submit(1, SimTime::Millis(1), [&] {
    cpu.Submit(1, SimTime::Millis(1), [&] { second_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, SimTime::Millis(2));
}

TEST(CpuTest, BusyTimeExcludesSwitchOverhead) {
  Simulator sim;
  CpuConfig cfg = ZeroOverheadConfig();
  cfg.ctx_switch_base = SimTime::Micros(50);
  Cpu cpu(sim, cfg);
  cpu.Submit(1, SimTime::Millis(2), nullptr);
  cpu.Submit(2, SimTime::Millis(2), nullptr);
  sim.Run();
  EXPECT_EQ(cpu.stats().busy, SimTime::Millis(4));
  EXPECT_GT(cpu.stats().switch_overhead.nanos(), 0);
}

TEST(CpuTest, RunnableCountsQueuedAndActive) {
  Simulator sim;
  Cpu cpu(sim, ZeroOverheadConfig());
  EXPECT_EQ(cpu.runnable(), 0u);
  cpu.Submit(1, SimTime::Millis(10), nullptr);
  cpu.Submit(2, SimTime::Millis(10), nullptr);
  // Before running events: one active (popped by ServeNext), one queued.
  EXPECT_EQ(cpu.runnable(), 2u);
}

}  // namespace
}  // namespace sams::sim
