// End-to-end tests of the pre-trust reputation gate on the REAL server
// over loopback TCP: greylist 450s and retry windows through the RCPT
// gate, deferred-RCPT resolution racing a slow async DNSBL verdict,
// and the scored (non-reaping) pregreet mode with its per-shard
// counters and event-log records.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dnsbl/blacklist_db.h"
#include "dnsbl/udp_daemon.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"
#include "net/tcp.h"
#include "obs/event_log.h"
#include "util/fd.h"
#include "util/ipv4.h"

namespace sams::mta {
namespace {

using dnsbl::BlacklistDb;
using dnsbl::UdpDnsblDaemon;
using util::Ipv4;

constexpr std::int64_t kMs = 1'000'000LL;

bool EventuallyTrue(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

struct CapturedLog {
  std::mutex mutex;
  std::vector<std::string> lines;
  std::function<void(const std::string&)> Sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  bool AnyContains(const std::string& needle) {
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

// One raw SMTP exchange up to the first RCPT reply. SendMail treats a
// 450 as fatal for the job, so the deferral tests speak wire protocol
// directly and read exactly the reply they care about.
class RawClient {
 public:
  bool Connect(std::uint16_t port) {
    auto fd = net::TcpConnect("127.0.0.1", port);
    if (!fd.ok()) return false;
    fd_ = std::move(*fd);
    return net::SetRecvTimeout(fd_.get(), 5'000).ok();
  }
  std::string ReadLine() {
    std::string line;
    char ch = 0;
    while (line.size() < 512 && ::read(fd_.get(), &ch, 1) == 1) {
      if (ch == '\n') return line;
      if (ch != '\r') line.push_back(ch);
    }
    return "read failed";
  }
  bool Send(const std::string& bytes) {
    return ::write(fd_.get(), bytes.data(), bytes.size()) ==
           static_cast<ssize_t>(bytes.size());
  }
  // banner → HELO → MAIL → RCPT; returns the RCPT reply line.
  std::string RcptReply(std::uint16_t port) {
    if (!Connect(port)) return "connect failed";
    (void)ReadLine();  // banner
    if (!Send("HELO client.test\r\n")) return "send failed";
    (void)ReadLine();
    if (!Send("MAIL FROM:<a@client.test>\r\n")) return "send failed";
    (void)ReadLine();
    if (!Send("RCPT TO:<alice@dept.test>\r\n")) return "send failed";
    return ReadLine();
  }
  void Quit() {
    if (fd_.get() >= 0) (void)Send("QUIT\r\n");
    fd_.Reset();
  }

 private:
  util::UniqueFd fd_;
};

class RepServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/rep_srv_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    store_.reset();
    if (daemon_) daemon_->Stop();
    daemon_.reset();
    std::filesystem::remove_all(root_);
  }

  // Starts a DNSBL daemon that lists 198.51.100.7 and answers after
  // `delay_ms` — long enough for the dialog to outrun the verdict.
  void StartSlowDnsbl(int delay_ms) {
    db_.Add(Ipv4(198, 51, 100, 7), 2);
    daemon_ = std::make_unique<UdpDnsblDaemon>("rep.bl.test", db_,
                                               /*ttl_seconds=*/24 * 3600,
                                               delay_ms);
    auto port = daemon_->Start();
    ASSERT_TRUE(port.ok());
    dns_port_ = *port;
  }

  // Starts the server with the reputation gate on; every accepted
  // connection poses as `client_ip` (the loopback peer would otherwise
  // put every test in 127.0.0.0/24).
  void StartServer(rep::RepConfig rep, Ipv4 client_ip,
                   int pregreet_delay_ms = 0) {
    auto store = mfs::MakeMfsStore(root_, {});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    RecipientDb recipients;
    recipients.AddMailbox("alice", "dept.test");
    RealServerConfig cfg;
    cfg.architecture = Architecture::kForkAfterTrust;
    cfg.worker_count = 1;
    cfg.num_shards = 1;
    cfg.recv_timeout_ms = 5'000;
    cfg.pregreet_delay_ms = pregreet_delay_ms;
    rep.enabled = true;
    cfg.reputation = rep;
    if (daemon_) {
      cfg.dnsbl.enabled = true;
      cfg.dnsbl.zones = {{"rep.bl.test", dns_port_}};
      cfg.dnsbl_overlap = true;
    }
    cfg.dnsbl_ip_mapper = [client_ip](const std::string&) { return client_ip; };
    server_ = std::make_unique<SmtpServer>(cfg, std::move(recipients), *store_);
    server_->BindEventLog(&event_log_);
    auto bound = server_->Start();
    ASSERT_TRUE(bound.ok()) << bound.error().ToString();
    port_ = *bound;
  }

  static smtp::MailJob Job() {
    smtp::MailJob job;
    job.helo = "client.test";
    job.mail_from = *smtp::Path::Parse("<a@client.test>");
    job.rcpts.push_back(*smtp::Path::Parse("<alice@dept.test>"));
    job.body = "hello\n";
    return job;
  }

  BlacklistDb db_;
  std::unique_ptr<UdpDnsblDaemon> daemon_;
  std::uint16_t dns_port_ = 0;
  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
  std::unique_ptr<SmtpServer> server_;
  std::uint16_t port_ = 0;
  CapturedLog captured_;
  obs::EventLog event_log_{[this] {
    obs::EventLog::Options opts;
    opts.sink = captured_.Sink();
    return opts;
  }()};
};

TEST_F(RepServerTest, GreylistDefersThenInWindowRetryDelivers) {
  rep::RepConfig rep;
  rep.greylist_threshold = 0.0;  // every dialog lands in the band
  rep.greylist.min_retry_ns = 50 * kMs;
  StartServer(rep, Ipv4(203, 0, 113, 9));

  // First sighting of the triple: 450, transaction stays open.
  RawClient first;
  const std::string reply = first.RcptReply(port_);
  EXPECT_EQ(reply.substr(0, 3), "450") << reply;
  first.Quit();
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().rep_greylisted.load() == 1u; }));
  EXPECT_EQ(server_->stats().mails_delivered.load(), 0u);

  // The legitimate-MTA move: come back after the retry floor with the
  // same (net, from, rcpt) triple — promoted, accepted, delivered.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto result = net::SendMail("127.0.0.1", port_, Job());
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, smtp::ClientOutcome::kDelivered);
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().mails_delivered.load() == 1u; }));
  ASSERT_NE(server_->reputation_engine(), nullptr);
  EXPECT_EQ(server_->reputation_engine()->greylist().stats().passes.load(), 1u);
  // The 450 session's outcome made the event log as "greylisted".
  server_->Stop();
  EXPECT_TRUE(captured_.AnyContains("\"verdict\":\"greylisted\""));
}

TEST_F(RepServerTest, TooEarlyRetryIsRedeferred) {
  rep::RepConfig rep;
  rep.greylist_threshold = 0.0;
  rep.greylist.min_retry_ns = 60'000 * kMs;  // 60 s floor
  StartServer(rep, Ipv4(203, 0, 113, 10));

  RawClient first;
  EXPECT_EQ(first.RcptReply(port_).substr(0, 3), "450");
  first.Quit();
  // A bot hammering the same triple right away is not a queue run.
  RawClient second;
  EXPECT_EQ(second.RcptReply(port_).substr(0, 3), "450");
  second.Quit();
  ASSERT_NE(server_->reputation_engine(), nullptr);
  const auto& gl = server_->reputation_engine()->greylist().stats();
  EXPECT_EQ(gl.first_sightings.load(), 1u);
  EXPECT_EQ(gl.too_early.load(), 1u);
  EXPECT_EQ(server_->stats().mails_delivered.load(), 0u);
}

TEST_F(RepServerTest, OutOfWindowRetryRestartsTheCycle) {
  rep::RepConfig rep;
  rep.greylist_threshold = 0.0;
  rep.greylist.min_retry_ns = 0;
  rep.greylist.max_window_ns = 100 * kMs;
  StartServer(rep, Ipv4(203, 0, 113, 11));

  RawClient first;
  EXPECT_EQ(first.RcptReply(port_).substr(0, 3), "450");
  first.Quit();
  // Miss the window entirely: the retry is re-deferred (kExpired) and
  // re-seeds the cycle...
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  RawClient late;
  EXPECT_EQ(late.RcptReply(port_).substr(0, 3), "450");
  late.Quit();
  ASSERT_NE(server_->reputation_engine(), nullptr);
  EXPECT_EQ(
      server_->reputation_engine()->greylist().stats().expirations.load(), 1u);
  // ...so an in-window retry from the re-seed passes.
  auto result = net::SendMail("127.0.0.1", port_, Job());
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, smtp::ClientOutcome::kDelivered);
}

TEST_F(RepServerTest, LateDnsblVerdictResolvesDeferredRcptToReject) {
  // The verdict is 150 ms out; the loopback dialog reaches RCPT in a
  // few ms, so the RCPT parks and the reply is written by the async
  // resolution path — through the same weighted gate.
  StartSlowDnsbl(/*delay_ms=*/150);
  StartServer(rep::RepConfig{}, Ipv4(198, 51, 100, 7));  // listed

  RawClient client;
  const std::string reply = client.RcptReply(port_);
  EXPECT_EQ(reply.substr(0, 3), "554") << reply;
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().rep_rejects.load() == 1u; }));
  // The reject is attributed to both judges: the score folded the
  // DNSBL verdict in.
  EXPECT_EQ(server_->stats().dnsbl_rejects.load(), 1u);
  EXPECT_EQ(server_->stats().mails_delivered.load(), 0u);
}

TEST_F(RepServerTest, LateVerdictOnCleanClientResolvesToGreylist) {
  // Same race, clean client, greylist band at 0: the parked RCPT must
  // resolve to a 450 deferral — not an accept, not a close.
  StartSlowDnsbl(/*delay_ms=*/150);
  rep::RepConfig rep;
  rep.greylist_threshold = 0.0;
  StartServer(rep, Ipv4(198, 51, 100, 99));  // not listed

  RawClient client;
  const std::string reply = client.RcptReply(port_);
  EXPECT_EQ(reply.substr(0, 3), "450") << reply;
  // The dialog continues after the deferral: QUIT still draws 221.
  ASSERT_TRUE(client.Send("QUIT\r\n"));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "221");
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().rep_greylisted.load() == 1u; }));
  EXPECT_EQ(server_->stats().rep_rejects.load(), 0u);
}

TEST_F(RepServerTest, PregreetIsScoredNotReapedUnderReputation) {
  rep::RepConfig rep;
  rep.reject_threshold = 3.0;  // pregreet alone (3.0) clears it
  StartServer(rep, Ipv4(203, 0, 113, 12), /*pregreet_delay_ms=*/150);

  // Blast the whole dialog before the banner. In scored mode the
  // session survives to the RCPT gate, where the violation is spent.
  RawClient client;
  ASSERT_TRUE(client.Connect(port_));
  ASSERT_TRUE(client.Send(
      "HELO bot\r\nMAIL FROM:<a@client.test>\r\nRCPT TO:<alice@dept.test>\r\n"));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "220");  // late banner, not 554
  EXPECT_EQ(client.ReadLine().substr(0, 3), "250");  // HELO
  EXPECT_EQ(client.ReadLine().substr(0, 3), "250");  // MAIL
  EXPECT_EQ(client.ReadLine().substr(0, 3), "554");  // the gate, not the reap
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().rep_rejects.load() == 1u; }));
  EXPECT_EQ(server_->stats().pregreet_scored.load(), 1u);
  EXPECT_EQ(server_->stats().pregreet_rejects.load(), 0u);
  const std::vector<std::uint64_t> per_shard = server_->ShardPregreets();
  ASSERT_EQ(per_shard.size(), 1u);
  EXPECT_EQ(per_shard[0], 1u);
  server_->Stop();
  EXPECT_TRUE(captured_.AnyContains("\"event\":\"pregreet\""));
  EXPECT_TRUE(captured_.AnyContains("\"action\":\"scored\""));
}

TEST_F(RepServerTest, LegacyPregreetStillReapsAndLogs) {
  // Without the engine the postscreen behaviour is unchanged — but the
  // event now lands in the log and the per-shard counter (satellite of
  // the silently-closing era).
  auto store = mfs::MakeMfsStore(root_, {});
  ASSERT_TRUE(store.ok());
  store_ = std::move(*store);
  RecipientDb recipients;
  recipients.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.num_shards = 1;
  cfg.recv_timeout_ms = 5'000;
  cfg.pregreet_delay_ms = 150;
  server_ = std::make_unique<SmtpServer>(cfg, std::move(recipients), *store_);
  server_->BindEventLog(&event_log_);
  auto bound = server_->Start();
  ASSERT_TRUE(bound.ok());
  port_ = *bound;

  RawClient client;
  ASSERT_TRUE(client.Connect(port_));
  ASSERT_TRUE(client.Send("HELO bot\r\n"));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "554");
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().pregreet_rejects.load() == 1u; }));
  const std::vector<std::uint64_t> per_shard = server_->ShardPregreets();
  ASSERT_EQ(per_shard.size(), 1u);
  EXPECT_EQ(per_shard[0], 1u);
  server_->Stop();
  EXPECT_TRUE(captured_.AnyContains("\"event\":\"pregreet\""));
  EXPECT_TRUE(captured_.AnyContains("\"action\":\"rejected\""));
}

}  // namespace
}  // namespace sams::mta
