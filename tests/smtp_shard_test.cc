// Tests of the sharded fork-after-trust master: SO_REUSEPORT shard
// distribution, the single-listener fd-handoff fallback, errno-aware
// accept backoff, thread-handle reaping, per-shard overload gates and
// graceful drain under load. Runs under TSan in CI (LABELS threads).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "mta/smtp_server.h"
#include "net/smtp_client.h"
#include "net/tcp.h"
#include "util/fd.h"

namespace sams::mta {
namespace {

using smtp::ClientOutcome;
using smtp::MailJob;
using smtp::Path;

bool EventuallyTrue(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

MailJob MakeJob(std::vector<std::string> rcpts, std::string body) {
  MailJob job;
  job.helo = "client.test";
  job.mail_from = *Path::Parse("<sender@remote.test>");
  for (const auto& rcpt : rcpts) {
    job.rcpts.push_back(*Path::Parse("<" + rcpt + ">"));
  }
  job.body = std::move(body);
  return job;
}

// Reads from `fd` until `token` appears in the stream (or EOF/timeout).
std::string ReadUntil(int fd, const std::string& token) {
  std::string seen;
  char buf[512];
  while (seen.find(token) == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    seen.append(buf, static_cast<std::size_t>(n));
  }
  return seen;
}

class ShardServerTest : public ::testing::Test {
 protected:
  void StartServer(RealServerConfig cfg) {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/shard_srv_" + tag;
    std::filesystem::remove_all(root_);
    auto store = mfs::MakeMfsStore(root_, {});
    ASSERT_TRUE(store.ok()) << store.error().ToString();
    store_ = std::move(store).value();

    RecipientDb db;
    for (const char* user : {"alice", "bob", "carol", "dave"}) {
      db.AddMailbox(user, "dept.test");
    }
    server_ = std::make_unique<SmtpServer>(cfg, std::move(db), *store_);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.error().ToString();
    port_ = *port;
  }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    store_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
  std::unique_ptr<SmtpServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(ShardServerTest, ReuseportShardsShareTheLoad) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.num_shards = 4;
  cfg.recv_timeout_ms = 3'000;
  StartServer(cfg);
  ASSERT_EQ(server_->num_shards(), 4);
  EXPECT_FALSE(server_->handoff_fallback());

  constexpr int kMails = 32;
  for (int i = 0; i < kMails; ++i) {
    auto result = net::SendMail(
        "127.0.0.1", port_,
        MakeJob({"alice@dept.test"}, "shard " + std::to_string(i) + "\n"));
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  }

  const auto accepted = server_->ShardAccepted();
  ASSERT_EQ(accepted.size(), 4u);
  EXPECT_EQ(std::accumulate(accepted.begin(), accepted.end(),
                            std::uint64_t{0}),
            static_cast<std::uint64_t>(kMails));
  // The kernel hashes each connection's 4-tuple across the listeners;
  // 32 distinct ephemeral ports landing on one shard out of four is a
  // ~4e-18 event, so demand at least two shards saw traffic.
  int active_shards = 0;
  for (const std::uint64_t n : accepted) active_shards += n > 0 ? 1 : 0;
  EXPECT_GE(active_shards, 2);
  EXPECT_EQ(server_->stats().mails_delivered.load(),
            static_cast<std::uint64_t>(kMails));
  // Every shard drained its sessions after the dialogs completed.
  EXPECT_TRUE(EventuallyTrue([&] {
    const auto open = server_->ShardSessions();
    return std::accumulate(open.begin(), open.end(), 0) == 0;
  }));
}

TEST_F(ShardServerTest, FallbackHandoffRoundRobinsAcrossShards) {
  // Force the SO_REUSEPORT probe to fail: the server must come up in
  // the single-listener fd-handoff mode and still deliver mail.
  fault::ScopedArm arm(11);
  {
    fault::Policy policy;
    policy.max_triggers = 1;
    fault::Injector::Global().Set("mta.shard.reuseport", policy);
  }
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.num_shards = 3;
  cfg.recv_timeout_ms = 3'000;
  StartServer(cfg);
  ASSERT_EQ(server_->num_shards(), 3);
  EXPECT_TRUE(server_->handoff_fallback());

  constexpr int kMails = 9;
  for (int i = 0; i < kMails; ++i) {
    auto result = net::SendMail(
        "127.0.0.1", port_,
        MakeJob({"bob@dept.test"}, "fallback " + std::to_string(i) + "\n"));
    ASSERT_TRUE(result.ok()) << result.error().ToString();
    EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  }
  // The handoff accept thread deals connections strictly round-robin.
  EXPECT_TRUE(EventuallyTrue([&] {
    const auto accepted = server_->ShardAccepted();
    return accepted == std::vector<std::uint64_t>{3, 3, 3};
  })) << "accepted: " << ::testing::PrintToString(server_->ShardAccepted());

  server_->Stop();
  auto mails = store_->ReadMailbox("bob");
  ASSERT_TRUE(mails.ok());
  EXPECT_EQ(mails->size(), static_cast<std::size_t>(kMails));
}

TEST_F(ShardServerTest, PerShardGateShedsWith421) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.num_shards = 1;
  cfg.max_sessions_per_shard = 1;
  cfg.recv_timeout_ms = 3'000;
  StartServer(cfg);

  // First connection parks in the (only) shard...
  auto first = net::TcpConnect("127.0.0.1", port_);
  ASSERT_TRUE(first.ok());
  ASSERT_NE(ReadUntil(first->get(), "220 ").find("220 "), std::string::npos);
  ASSERT_TRUE(EventuallyTrue([&] { return server_->ShardSessions()[0] == 1; }));
  // ...so the second one trips the per-shard gate and is shed.
  auto second = net::TcpConnect("127.0.0.1", port_);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(ReadUntil(second->get(), "421 ").find("421 "),
            std::string::npos);
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server_->stats().overload_sheds.load() == 1; }));
}

TEST(ShardAcceptTest, EmfileBackoffDoesNotSpin) {
  // Thread-per-connection accept loop with accept() failing EMFILE for
  // a whole armed window: the errno-aware backoff must keep the retry
  // count tiny (the seed would re-poll tens of thousands of times).
  const std::string root = ::testing::TempDir() + "/shard_emfile";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());
  RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  RealServerConfig cfg;
  cfg.architecture = Architecture::kThreadPerConnection;
  cfg.recv_timeout_ms = 3'000;
  SmtpServer server(cfg, std::move(db), **store);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  std::uint64_t attempts = 0;
  {
    fault::ScopedArm arm(23);
    {
      fault::Policy policy;  // unlimited triggers while armed
      fault::Injector::Global().Set("mta.accept", policy);
    }
    // One client tries during the outage; it sits in the listen queue
    // (its SYN is accepted by the kernel, not the application).
    auto waiting = net::TcpConnect("127.0.0.1", *port);
    ASSERT_TRUE(waiting.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    attempts = fault::Injector::Global().hits("mta.accept");
  }
  // 400 ms of exponential backoff (10,20,40,...) is ~6 attempts; even
  // with scheduling jitter it stays orders of magnitude below a spin.
  EXPECT_GE(attempts, 1u);
  EXPECT_LE(attempts, 40u);
  EXPECT_GE(server.stats().accept_errors.load(), attempts);

  // Recovery: once accept() works again the next dialog completes.
  auto result = net::SendMail("127.0.0.1", *port,
                              MakeJob({"alice@dept.test"}, "after outage\n"));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, ClientOutcome::kDelivered);
  server.Stop();
  std::filesystem::remove_all(root);
}

TEST_F(ShardServerTest, SoakKeepsThreadHandlesBounded) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kThreadPerConnection;
  cfg.recv_timeout_ms = 3'000;
  StartServer(cfg);

  // 1000 short-lived connections. The seed held every std::thread
  // handle until Stop(); the reaper must keep the table bounded by
  // *open* connections instead.
  constexpr int kConnections = 1'000;
  int max_handles = 0;
  for (int i = 0; i < kConnections; ++i) {
    auto fd = net::TcpConnect("127.0.0.1", port_);
    ASSERT_TRUE(fd.ok());
    (void)util::SendAll(fd->get(), "QUIT\r\n", 6);
    (void)ReadUntil(fd->get(), "221 ");
    max_handles = std::max(max_handles, server_->ConnThreadHandles());
  }
  EXPECT_TRUE(EventuallyTrue([&] {
    return server_->stats().connections.load() ==
           static_cast<std::uint64_t>(kConnections);
  }));
  // Sequential clients: a handful of handles can be pending reap at
  // any instant, but never anything close to the connection count.
  EXPECT_LE(max_handles, 64);
  EXPECT_TRUE(EventuallyTrue([&] {
    // One extra connection gives the accept loop a reap pass.
    auto fd = net::TcpConnect("127.0.0.1", port_);
    if (fd.ok()) {
      (void)util::SendAll(fd->get(), "QUIT\r\n", 6);
      (void)ReadUntil(fd->get(), "221 ");
    }
    return server_->ConnThreadHandles() <= 8;
  }));
}

TEST_F(ShardServerTest, DrainUnderLoadLosesNoAckedMail) {
  RealServerConfig cfg;
  cfg.architecture = Architecture::kForkAfterTrust;
  cfg.worker_count = 2;
  cfg.num_shards = 2;
  cfg.recv_timeout_ms = 3'000;
  StartServer(cfg);

  // Client threads hammer the server; every 250-acked mail is counted.
  // Drain() mid-stream: the invariant is that each acked mail is in
  // the store afterwards — shard shutdown may refuse sessions but may
  // not lose accepted ones.
  std::atomic<bool> stop{false};
  std::atomic<int> acked{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto result = net::SendMail(
            "127.0.0.1", port_,
            MakeJob({"carol@dept.test"},
                    "load " + std::to_string(t) + ":" + std::to_string(i++) +
                        "\n"),
            smtp::AbortStage::kNone, 2'000);
        if (result.ok() && result->outcome == ClientOutcome::kDelivered) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  ASSERT_TRUE(EventuallyTrue([&] { return acked.load() >= 30; }));
  const int leftover = server_->Drain(2'000);
  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  EXPECT_EQ(leftover, 0);

  const int total_acked = acked.load();
  auto mails = store_->ReadMailbox("carol");
  ASSERT_TRUE(mails.ok());
  // Every ack implies a durable store write (inline delivery precedes
  // the 250); the store may additionally hold mails whose ack raced
  // the client teardown, hence >=.
  EXPECT_GE(mails->size(), static_cast<std::size_t>(total_acked));
  EXPECT_GT(total_acked, 0);
}

}  // namespace
}  // namespace sams::mta
