#include "sim/disk.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace sams::sim {
namespace {

using util::SimTime;

DiskConfig SimpleConfig() {
  DiskConfig cfg;
  cfg.commit_base = SimTime::Millis(10);
  cfg.write_mb_per_sec = 1.0;  // 1 MiB/s: easy arithmetic
  cfg.read_seek = SimTime::Millis(5);
  cfg.read_mb_per_sec = 1.0;
  return cfg;
}

TEST(DiskTest, FsyncTakesCommitBase) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  SimTime done_at;
  disk.Fsync([&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Millis(10));
  EXPECT_EQ(disk.stats().commits, 1u);
  EXPECT_EQ(disk.stats().fsyncs, 1u);
}

TEST(DiskTest, DirtyBytesExtendCommit) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  disk.BufferWrite(1024 * 1024);  // 1 MiB at 1 MiB/s = 1 s transfer
  SimTime done_at;
  disk.Fsync([&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Millis(10) + SimTime::Seconds(1));
  EXPECT_EQ(disk.stats().bytes_written, 1024u * 1024u);
}

TEST(DiskTest, MetadataCostExtendsCommit) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  disk.BufferMetadata(SimTime::Millis(7));
  SimTime done_at;
  disk.Fsync([&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Millis(17));
}

TEST(DiskTest, GroupCommitBatchesConcurrentFsyncs) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  std::vector<SimTime> done_times;
  for (int i = 0; i < 5; ++i) {
    disk.Fsync([&] { done_times.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done_times.size(), 5u);
  for (const auto& t : done_times) EXPECT_EQ(t, SimTime::Millis(10));
  EXPECT_EQ(disk.stats().commits, 1u);  // one commit served all five
  EXPECT_EQ(disk.stats().fsyncs, 5u);
}

TEST(DiskTest, FsyncDuringCommitJoinsNextEpoch) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  SimTime first_done, second_done;
  disk.Fsync([&] {
    first_done = sim.Now();
  });
  // Arrives mid-commit (at 3 ms): must complete at 20 ms, not 10 ms.
  sim.At(SimTime::Millis(3), [&] {
    disk.Fsync([&] { second_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(first_done, SimTime::Millis(10));
  EXPECT_EQ(second_done, SimTime::Millis(20));
  EXPECT_EQ(disk.stats().commits, 2u);
}

TEST(DiskTest, CommitClearsPendingState) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  disk.BufferWrite(1024 * 1024);
  disk.Fsync(nullptr);
  sim.Run();
  // Second fsync with no new dirty data: base cost only.
  SimTime done_at;
  disk.Fsync([&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Millis(10) + SimTime::Seconds(1) + SimTime::Millis(10));
}

TEST(DiskTest, ReadCostsSeekPlusTransfer) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  SimTime done_at;
  disk.Read(1024 * 1024, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Millis(5) + SimTime::Seconds(1));
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().bytes_read, 1024u * 1024u);
}

TEST(DiskTest, ReadsAreFifoSerialized) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  std::vector<SimTime> times;
  disk.Read(0, [&] { times.push_back(sim.Now()); });
  disk.Read(0, [&] { times.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], SimTime::Millis(5));
  EXPECT_EQ(times[1], SimTime::Millis(10));
}

TEST(DiskTest, WriteBusyAccumulates) {
  Simulator sim;
  Disk disk(sim, SimpleConfig());
  disk.Fsync(nullptr);
  sim.Run();
  disk.Fsync(nullptr);
  sim.Run();
  EXPECT_EQ(disk.stats().write_busy, SimTime::Millis(20));
}

}  // namespace
}  // namespace sams::sim
