// ReputationEngine unit tests: feature scoring, /24 history dynamics
// (decay, TTL, clamp, LRU), greylist-band handoff, snapshots, and the
// fail-open posture of the rep.store.* fault points. The engine is
// clock-agnostic, so every test drives it on a hand-rolled nanosecond
// clock — no sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "rep/reputation.h"
#include "util/ipv4.h"

namespace sams::rep {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000LL;

util::Ipv4 Ip(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return util::Ipv4(a, b, c, d);
}

RepConfig TestConfig() {
  RepConfig cfg;
  cfg.enabled = true;
  return cfg;
}

Evaluation Eval(ReputationEngine& engine, util::Ipv4 client,
                const DialogFeatures& f, std::int64_t now_ns,
                const std::string& rcpt = "rcpt@example.test") {
  return engine.Evaluate(client, f, "sender@remote.test", rcpt, now_ns);
}

TEST(ReputationEngineTest, CleanDialogAccepted) {
  ReputationEngine engine(TestConfig());
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), {}, kSecond);
  EXPECT_EQ(ev.verdict, Verdict::kAccept);
  EXPECT_DOUBLE_EQ(ev.score, 0.0);
  EXPECT_FALSE(ev.degraded);
  EXPECT_FALSE(ev.greylist_consulted);
  // Accept with no prior bucket must not materialize one: ham credit
  // alone never creates state.
  EXPECT_EQ(engine.history_size(), 0u);
}

TEST(ReputationEngineTest, DnsblListedAloneRejects) {
  // Calibration anchor: a listed host must clear reject_threshold on
  // the DNSBL weight alone, so PR-5's binary gate is a subset.
  ReputationEngine engine(TestConfig());
  DialogFeatures f;
  f.dnsbl_listed = true;
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), f, kSecond);
  EXPECT_EQ(ev.verdict, Verdict::kReject);
  EXPECT_GE(ev.score, engine.config().reject_threshold);
}

TEST(ReputationEngineTest, OneSoftAnomalyAloneAccepts) {
  // The other calibration anchor: sloppy-but-legitimate senders (one
  // bare-IP HELO, one syntax slip) pass untouched.
  ReputationEngine engine(TestConfig());
  DialogFeatures bare_ip;
  bare_ip.helo_bare_ip = true;
  EXPECT_EQ(Eval(engine, Ip(10, 0, 0, 1), bare_ip, kSecond).verdict,
            Verdict::kAccept);
  DialogFeatures one_typo;
  one_typo.syntax_errors = 1;
  EXPECT_EQ(Eval(engine, Ip(10, 0, 1, 1), one_typo, kSecond).verdict,
            Verdict::kAccept);
}

TEST(ReputationEngineTest, StackedAnomaliesLandInGreylistBand) {
  ReputationEngine engine(TestConfig());
  DialogFeatures f;
  f.helo_malformed = true;  // 1.5
  f.pipelined = 3;          // +1.5 (flag, not per-command)
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), f, kSecond);
  EXPECT_EQ(ev.verdict, Verdict::kGreylist);
  EXPECT_TRUE(ev.greylist_consulted);
  EXPECT_EQ(ev.greylist, GreylistOutcome::kNew);
}

TEST(ReputationEngineTest, MalformedHeloSubsumesBareIp) {
  ReputationEngine engine(TestConfig());
  DialogFeatures f;
  f.helo_malformed = true;
  f.helo_bare_ip = true;
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), f, kSecond);
  // The two HELO terms never stack: 1.5, not 2.5.
  EXPECT_DOUBLE_EQ(ev.score, engine.config().weights.helo_malformed);
}

TEST(ReputationEngineTest, ErrorTermsAreCapped) {
  ReputationEngine engine(TestConfig());
  DialogFeatures f;
  f.syntax_errors = 40;  // uncapped would be 20.0 — deep into reject
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), f, kSecond);
  EXPECT_DOUBLE_EQ(ev.score, engine.config().weights.error_cap);
  EXPECT_EQ(ev.verdict, Verdict::kGreylist);  // capped at the band edge
}

TEST(ReputationEngineTest, FastTalkerNeedsOptIn) {
  DialogFeatures f;
  f.min_cmd_gap_ns = 1000;  // answered the banner in a microsecond
  {
    ReputationEngine engine(TestConfig());  // min_cmd_gap_ns = 0: off
    EXPECT_DOUBLE_EQ(Eval(engine, Ip(10, 0, 0, 1), f, kSecond).score, 0.0);
  }
  RepConfig cfg = TestConfig();
  cfg.min_cmd_gap_ns = 50'000'000;  // 50 ms floor
  ReputationEngine engine(cfg);
  EXPECT_DOUBLE_EQ(Eval(engine, Ip(10, 0, 0, 1), f, kSecond).score,
                   cfg.weights.fast_talker);
  DialogFeatures unknown;  // gap never measured: -1 must not trip it
  EXPECT_DOUBLE_EQ(Eval(engine, Ip(10, 0, 1, 1), unknown, kSecond).score, 0.0);
}

TEST(ReputationEngineTest, RejectsReinforceTheSlash24) {
  ReputationEngine engine(TestConfig());
  DialogFeatures listed;
  listed.dnsbl_listed = true;
  // Three rejects from 10.0.0.x bank ~3 hostile_delta units on the /24
  // (minus a sliver of decay between reinforcements).
  Eval(engine, Ip(10, 0, 0, 1), listed, kSecond);
  Eval(engine, Ip(10, 0, 0, 2), listed, 2 * kSecond);
  Eval(engine, Ip(10, 0, 0, 3), listed, 3 * kSecond);
  const double history = engine.HistoryScore(Ip(10, 0, 0, 99), 3 * kSecond);
  EXPECT_GT(history, 2.5);
  // A clean dialog from a fourth host in the same /24 now lands in the
  // greylist band on history alone — the engine's whole point.
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 99), {}, 3 * kSecond);
  EXPECT_EQ(ev.verdict, Verdict::kGreylist);
  EXPECT_GT(ev.history, 0.0);
  // A different /24 is untouched.
  EXPECT_DOUBLE_EQ(engine.HistoryScore(Ip(10, 0, 1, 1), 3 * kSecond), 0.0);
}

TEST(ReputationEngineTest, HistoryDecaysWithHalfLife) {
  RepConfig cfg = TestConfig();
  cfg.history_half_life_ns = 10 * kSecond;
  cfg.history_ttl_ns = 0;  // no TTL: isolate decay
  ReputationEngine engine(cfg);
  engine.RecordOutcome(Ip(10, 0, 0, 1), 2.0, 0);
  EXPECT_NEAR(engine.HistoryScore(Ip(10, 0, 0, 1), 0), 2.0, 1e-9);
  EXPECT_NEAR(engine.HistoryScore(Ip(10, 0, 0, 1), 10 * kSecond), 1.0, 1e-9);
  EXPECT_NEAR(engine.HistoryScore(Ip(10, 0, 0, 1), 20 * kSecond), 0.5, 1e-9);
}

TEST(ReputationEngineTest, IdleBucketsExpireOnTtl) {
  RepConfig cfg = TestConfig();
  cfg.history_ttl_ns = 60 * kSecond;
  ReputationEngine engine(cfg);
  engine.RecordOutcome(Ip(10, 0, 0, 1), 2.0, 0);
  EXPECT_EQ(engine.history_size(), 1u);
  EXPECT_DOUBLE_EQ(engine.HistoryScore(Ip(10, 0, 0, 1), 61 * kSecond), 0.0);
  EXPECT_EQ(engine.history_size(), 0u);
  EXPECT_EQ(engine.stats().expirations.load(), 1u);
}

TEST(ReputationEngineTest, BucketScoreIsClamped) {
  ReputationEngine engine(TestConfig());
  for (int i = 0; i < 50; ++i) {
    engine.RecordOutcome(Ip(10, 0, 0, 1), 1.0, kSecond);
  }
  EXPECT_LE(engine.HistoryScore(Ip(10, 0, 0, 1), kSecond),
            engine.config().history_max);
  for (int i = 0; i < 100; ++i) {
    engine.RecordOutcome(Ip(10, 0, 0, 1), -1.0, kSecond);
  }
  EXPECT_GE(engine.HistoryScore(Ip(10, 0, 0, 1), kSecond),
            engine.config().history_min);
}

TEST(ReputationEngineTest, HamCreditNeverMaterializesABucket) {
  ReputationEngine engine(TestConfig());
  engine.RecordOutcome(Ip(10, 0, 0, 1), engine.config().ham_delta, kSecond);
  EXPECT_EQ(engine.history_size(), 0u);
}

TEST(ReputationEngineTest, CapacityBoundEvictsLru) {
  RepConfig cfg = TestConfig();
  cfg.lock_shards = 1;  // single shard makes the LRU bound exact
  cfg.history_capacity = 4;
  ReputationEngine engine(cfg);
  for (int c = 0; c < 8; ++c) {
    engine.RecordOutcome(Ip(10, 0, static_cast<std::uint8_t>(c), 1), 1.0,
                         kSecond);
  }
  EXPECT_EQ(engine.history_size(), 4u);
  EXPECT_EQ(engine.stats().evictions.load(), 4u);
  // The oldest /24s were displaced; the newest survive.
  EXPECT_DOUBLE_EQ(engine.HistoryScore(Ip(10, 0, 0, 1), kSecond), 0.0);
  EXPECT_GT(engine.HistoryScore(Ip(10, 0, 7, 1), kSecond), 0.0);
}

TEST(ReputationEngineTest, SnapshotOrdersByDecayedScore) {
  ReputationEngine engine(TestConfig());
  engine.RecordOutcome(Ip(10, 0, 0, 1), 1.0, kSecond);
  engine.RecordOutcome(Ip(10, 0, 1, 1), 3.0, kSecond);
  engine.RecordOutcome(Ip(10, 0, 2, 1), 2.0, kSecond);
  const std::vector<BucketSnapshot> top = engine.Snapshot(2, kSecond);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].net, util::Prefix24(Ip(10, 0, 1, 1)));
  EXPECT_EQ(top[1].net, util::Prefix24(Ip(10, 0, 2, 1)));
  EXPECT_GT(top[0].score, top[1].score);
  EXPECT_EQ(top[0].rejects, 1u);

  const std::string json = engine.SnapshotJson(2, kSecond);
  EXPECT_NE(json.find("\"history_size\":3"), std::string::npos);
  EXPECT_NE(json.find("\"net\":\"10.0.1.0/24\""), std::string::npos);
  EXPECT_NE(json.find("\"greylist_size\":0"), std::string::npos);
}

TEST(ReputationEngineTest, GateOnHistoryIsRejectOrAcceptOnly) {
  ReputationEngine engine(TestConfig());
  // Listed → reject (and the /24 is reinforced).
  EXPECT_EQ(engine.GateOnHistory(Ip(10, 0, 0, 1), true, kSecond).verdict,
            Verdict::kReject);
  EXPECT_GT(engine.HistoryScore(Ip(10, 0, 0, 2), kSecond), 0.0);
  // Unlisted from the same /24: one reject's history is below the
  // reject threshold, and there is no greylist band in this gate.
  const Evaluation ev = engine.GateOnHistory(Ip(10, 0, 0, 2), false, kSecond);
  EXPECT_EQ(ev.verdict, Verdict::kAccept);
  EXPECT_FALSE(ev.greylist_consulted);
}

TEST(ReputationEngineTest, StoreFaultFailsOpenAndCachesNothing) {
  ReputationEngine engine(TestConfig());
  DialogFeatures listed;
  listed.dnsbl_listed = true;
  {
    fault::ScopedArm arm(7);
    fault::Injector::Global().Set("rep.store.error", {});
    // Dialog evidence still decides: a listed host is rejected even
    // with the history store dark...
    const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), listed, kSecond);
    EXPECT_EQ(ev.verdict, Verdict::kReject);
    EXPECT_TRUE(ev.degraded);
    EXPECT_DOUBLE_EQ(ev.history, 0.0);
    // ...and a clean host sails through rather than erroring out.
    const Evaluation clean = Eval(engine, Ip(10, 0, 1, 1), {}, kSecond);
    EXPECT_EQ(clean.verdict, Verdict::kAccept);
    EXPECT_TRUE(clean.degraded);
    EXPECT_EQ(engine.stats().degraded.load(), 2u);
    // Degraded verdicts are never written back: no bucket exists.
    EXPECT_EQ(engine.history_size(), 0u);
  }
  // Store back: the same evaluation is whole again and reinforces.
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), listed, 2 * kSecond);
  EXPECT_FALSE(ev.degraded);
  EXPECT_EQ(engine.history_size(), 1u);
}

TEST(ReputationEngineTest, DelayFaultAlsoDegrades) {
  ReputationEngine engine(TestConfig());
  fault::ScopedArm arm(7);
  fault::Policy delay;
  delay.action = fault::Action::kDelay;
  delay.delay_ms = 1;
  fault::Injector::Global().Set("rep.store.delay", delay);
  // kDelay sleeps and continues — the store is slow, not dark.
  const Evaluation ev = Eval(engine, Ip(10, 0, 0, 1), {}, kSecond);
  EXPECT_FALSE(ev.degraded);
  // Flip the same point to an error policy: now it degrades.
  fault::Injector::Global().Set("rep.store.delay", {});
  EXPECT_TRUE(Eval(engine, Ip(10, 0, 0, 2), {}, kSecond).degraded);
}

TEST(ReputationEngineTest, ConcurrentEvaluationsAreCoherent) {
  // The shared-across-shards contract: many threads hammering the same
  // few /24s must neither crash nor lose counts (run under TSan via
  // the `threads` ctest label).
  ReputationEngine engine(TestConfig());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> clock{kSecond};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &clock, t] {
      DialogFeatures listed;
      listed.dnsbl_listed = true;
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t now = clock.fetch_add(1000);
        const util::Ipv4 ip(10, 0, static_cast<std::uint8_t>(i % 4),
                            static_cast<std::uint8_t>(t + 1));
        if (i % 2 == 0) {
          engine.Evaluate(ip, listed, "a@b.test", "c@d.test", now);
        } else {
          engine.GateOnHistory(ip, false, now);
          engine.HistoryScore(ip, now);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(engine.stats().evaluations.load(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Only the Evaluate path (even i → /24s 0 and 2) rejects and thus
  // materializes buckets; the unlisted GateOnHistory path accepts.
  EXPECT_EQ(engine.history_size(), 2u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_LE(engine.HistoryScore(Ip(10, 0, static_cast<std::uint8_t>(c), 1),
                                  clock.load()),
              engine.config().history_max);
  }
}

}  // namespace
}  // namespace sams::rep
