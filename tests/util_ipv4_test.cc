#include "util/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sams::util {
namespace {

TEST(Ipv4Test, ParseValid) {
  auto ip = Ipv4::Parse("192.168.1.200");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->octet(0), 192);
  EXPECT_EQ(ip->octet(1), 168);
  EXPECT_EQ(ip->octet(2), 1);
  EXPECT_EQ(ip->octet(3), 200);
  EXPECT_EQ(ip->ToString(), "192.168.1.200");
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::Parse("").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::Parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4::Parse("1..3.4").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.-4").has_value());
}

TEST(Ipv4Test, ParseFormatRoundTrip) {
  for (const char* s : {"0.0.0.0", "255.255.255.255", "10.0.0.1", "127.0.0.2"}) {
    auto ip = Ipv4::Parse(s);
    ASSERT_TRUE(ip.has_value()) << s;
    EXPECT_EQ(ip->ToString(), s);
  }
}

TEST(Ipv4Test, OctetConstructorMatchesValue) {
  const Ipv4 ip(1, 2, 3, 4);
  EXPECT_EQ(ip.value(), 0x01020304u);
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4(1, 2, 3, 4), Ipv4(1, 2, 3, 5));
  EXPECT_LT(Ipv4(1, 2, 3, 255), Ipv4(1, 2, 4, 0));
}

TEST(Prefix24Test, GroupsSameSlash24) {
  const Ipv4 a(10, 20, 30, 1), b(10, 20, 30, 200), c(10, 20, 31, 1);
  EXPECT_EQ(Prefix24(a), Prefix24(b));
  EXPECT_NE(Prefix24(a), Prefix24(c));
  EXPECT_EQ(Prefix24(a).ToString(), "10.20.30.0/24");
  EXPECT_EQ(Prefix24(a).First(), Ipv4(10, 20, 30, 0));
  EXPECT_EQ(Prefix24(a).Nth(77), Ipv4(10, 20, 30, 77));
}

TEST(Prefix25Test, SplitsSlash24InHalves) {
  const Ipv4 lo(10, 20, 30, 5), hi(10, 20, 30, 200);
  EXPECT_NE(Prefix25(lo), Prefix25(hi));
  EXPECT_EQ(Prefix25(lo).HalfOfSlash24(), 0);
  EXPECT_EQ(Prefix25(hi).HalfOfSlash24(), 1);
  EXPECT_EQ(Prefix25(lo).First(), Ipv4(10, 20, 30, 0));
  EXPECT_EQ(Prefix25(hi).First(), Ipv4(10, 20, 30, 128));
}

TEST(Prefix25Test, BitIndexWithinHalf) {
  EXPECT_EQ(Prefix25::BitIndex(Ipv4(1, 2, 3, 0)), 0);
  EXPECT_EQ(Prefix25::BitIndex(Ipv4(1, 2, 3, 127)), 127);
  EXPECT_EQ(Prefix25::BitIndex(Ipv4(1, 2, 3, 128)), 0);
  EXPECT_EQ(Prefix25::BitIndex(Ipv4(1, 2, 3, 255)), 127);
}

TEST(Prefix25Test, SameBucketSameBitmapSlot) {
  // Two IPs in the same /25 must map to the same prefix but distinct bits.
  const Ipv4 a(5, 6, 7, 10), b(5, 6, 7, 100);
  EXPECT_EQ(Prefix25(a), Prefix25(b));
  EXPECT_NE(Prefix25::BitIndex(a), Prefix25::BitIndex(b));
}

TEST(DnsblNameTest, ClassicEncoding) {
  const Ipv4 ip(11, 22, 33, 44);
  EXPECT_EQ(DnsblQueryName(ip, "cbl.abuseat.org"), "44.33.22.11.cbl.abuseat.org");
}

TEST(DnsblNameTest, V6EncodingUsesHalfLabel) {
  EXPECT_EQ(Dnsblv6QueryName(Ipv4(11, 22, 33, 44), "bl.example"),
            "0.33.22.11.bl.example");
  EXPECT_EQ(Dnsblv6QueryName(Ipv4(11, 22, 33, 200), "bl.example"),
            "1.33.22.11.bl.example");
}

TEST(DnsblNameTest, ClassicRoundTrip) {
  const Ipv4 ip(98, 76, 54, 32);
  auto back = ParseDnsblQueryName(DnsblQueryName(ip, "zone.test"), "zone.test");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ip);
}

TEST(DnsblNameTest, V6RoundTrip) {
  const Ipv4 ip(98, 76, 54, 150);
  auto back = ParseDnsblv6QueryName(Dnsblv6QueryName(ip, "zone.test"), "zone.test");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, Prefix25(ip));
}

TEST(DnsblNameTest, ParseRejectsWrongZone) {
  EXPECT_FALSE(
      ParseDnsblQueryName("4.3.2.1.other.zone", "zone.test").has_value());
}

TEST(DnsblNameTest, ParseRejectsMalformedLabels) {
  EXPECT_FALSE(ParseDnsblQueryName("4.3.2.zone.test", "zone.test").has_value());
  EXPECT_FALSE(ParseDnsblQueryName("300.3.2.1.zone.test", "zone.test").has_value());
  EXPECT_FALSE(ParseDnsblv6QueryName("2.3.2.1.zone.test", "zone.test").has_value());
}

TEST(HashTest, DistinctHashesMostly) {
  std::unordered_set<Ipv4> ips;
  std::unordered_set<Prefix24> p24s;
  std::unordered_set<Prefix25> p25s;
  for (int i = 0; i < 1000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(i * 2654435761u));
    ips.insert(ip);
    p24s.insert(Prefix24(ip));
    p25s.insert(Prefix25(ip));
  }
  EXPECT_EQ(ips.size(), 1000u);
  EXPECT_GT(p24s.size(), 900u);
  EXPECT_GT(p25s.size(), 900u);
}

}  // namespace
}  // namespace sams::util
