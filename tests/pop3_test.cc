// POP3 session + server tests, including the full mail loop:
// SMTP delivery into MFS, POP3 retrieval, shared-mail refcounting on
// DELE.
#include <gtest/gtest.h>

#include <filesystem>

#include "mta/smtp_server.h"
#include "net/smtp_client.h"
#include "net/tcp.h"
#include "pop3/pop3_server.h"
#include "pop3/pop3_session.h"
#include "util/rng.h"

namespace sams::pop3 {
namespace {

class Pop3SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/pop3_" + tag;
    std::filesystem::remove_all(root_);
    auto volume = mfs::MfsVolume::Open(root_);
    ASSERT_TRUE(volume.ok());
    volume_ = std::move(volume).value();
    credentials_["alice"] = "secret";
    credentials_["bob"] = "hunter2";
  }
  void TearDown() override {
    volume_.reset();
    std::filesystem::remove_all(root_);
  }

  void Deliver(const std::vector<std::string>& boxes, const std::string& body) {
    std::vector<std::unique_ptr<mfs::MailFile>> handles;
    std::vector<mfs::MailFile*> raw;
    for (const auto& box : boxes) {
      auto handle = volume_->MailOpen(box);
      ASSERT_TRUE(handle.ok());
      raw.push_back(handle->get());
      handles.push_back(std::move(handle).value());
    }
    ASSERT_TRUE(
        volume_->MailNWrite(raw, body, mfs::MailId::Generate(rng_)).ok());
  }

  Pop3Session MakeSession() {
    Pop3Session::Hooks hooks;
    hooks.send = [this](std::string bytes) { wire_ += bytes; };
    return Pop3Session(*volume_, credentials_, std::move(hooks));
  }

  // Drains and returns accumulated output.
  std::string Take() {
    std::string out;
    out.swap(wire_);
    return out;
  }

  std::string root_;
  std::unique_ptr<mfs::MfsVolume> volume_;
  CredentialMap credentials_;
  util::Rng rng_{101};
  std::string wire_;
};

TEST_F(Pop3SessionTest, GreetingAndAuth) {
  auto session = MakeSession();
  session.Start();
  EXPECT_EQ(Take().substr(0, 3), "+OK");
  session.Feed("USER alice\r\n");
  EXPECT_EQ(Take().substr(0, 3), "+OK");
  session.Feed("PASS secret\r\n");
  const std::string reply = Take();
  EXPECT_EQ(reply.substr(0, 3), "+OK");
  EXPECT_NE(reply.find("0 messages"), std::string::npos);
  EXPECT_EQ(session.state(), Pop3State::kTransaction);
}

TEST_F(Pop3SessionTest, WrongPasswordRejected) {
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS wrong\r\n");
  EXPECT_NE(Take().find("-ERR invalid credentials"), std::string::npos);
  EXPECT_EQ(session.state(), Pop3State::kAuthorization);
  // Can retry.
  session.Feed("USER alice\r\nPASS secret\r\n");
  EXPECT_EQ(session.state(), Pop3State::kTransaction);
}

TEST_F(Pop3SessionTest, PassWithoutUserRejected) {
  auto session = MakeSession();
  session.Start();
  session.Feed("PASS secret\r\n");
  EXPECT_NE(Take().find("-ERR"), std::string::npos);
}

TEST_F(Pop3SessionTest, TransactionCommandsBeforeAuthRejected) {
  auto session = MakeSession();
  session.Start();
  session.Feed("STAT\r\n");
  EXPECT_NE(Take().find("-ERR"), std::string::npos);
}

TEST_F(Pop3SessionTest, StatListRetr) {
  Deliver({"alice"}, "first mail body");
  Deliver({"alice"}, "second mail, longer body text");
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\n");
  Take();

  session.Feed("STAT\r\n");
  const std::string stat = Take();
  EXPECT_EQ(stat.substr(0, 6), "+OK 2 ");

  session.Feed("LIST\r\n");
  const std::string list = Take();
  EXPECT_NE(list.find("+OK 2 messages"), std::string::npos);
  EXPECT_NE(list.find("1 15"), std::string::npos);
  EXPECT_NE(list.find(".\r\n"), std::string::npos);

  session.Feed("RETR 1\r\n");
  const std::string retr = Take();
  EXPECT_NE(retr.find("+OK 15 octets"), std::string::npos);
  EXPECT_NE(retr.find("first mail body\r\n"), std::string::npos);
  EXPECT_EQ(retr.substr(retr.size() - 3), ".\r\n");

  session.Feed("LIST 2\r\n");
  EXPECT_NE(Take().find("+OK 2 "), std::string::npos);
}

TEST_F(Pop3SessionTest, RetrByteStuffsDotLines) {
  Deliver({"alice"}, ".hidden\nvisible\n");
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\nRETR 1\r\n");
  const std::string wire = Take();
  EXPECT_NE(wire.find("..hidden\r\n"), std::string::npos);
  EXPECT_NE(wire.find("visible\r\n"), std::string::npos);
}

TEST_F(Pop3SessionTest, DeleQuitRemovesMail) {
  Deliver({"alice"}, "doomed");
  Deliver({"alice"}, "kept");
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\nDELE 1\r\n");
  EXPECT_NE(Take().find("+OK message 1 deleted"), std::string::npos);
  EXPECT_EQ(session.deleted_count(), 1u);
  session.Feed("QUIT\r\n");
  EXPECT_EQ(session.state(), Pop3State::kClosed);

  auto count = volume_->MailCount("alice");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST_F(Pop3SessionTest, RsetUndeletes) {
  Deliver({"alice"}, "mail");
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\nDELE 1\r\nRSET\r\nQUIT\r\n");
  auto count = volume_->MailCount("alice");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);  // nothing deleted
}

TEST_F(Pop3SessionTest, DeletedMessageInaccessible) {
  Deliver({"alice"}, "mail");
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\nDELE 1\r\n");
  Take();
  session.Feed("RETR 1\r\n");
  EXPECT_NE(Take().find("-ERR message deleted"), std::string::npos);
  session.Feed("DELE 1\r\n");
  EXPECT_NE(Take().find("-ERR message deleted"), std::string::npos);
  session.Feed("STAT\r\n");
  EXPECT_EQ(Take().substr(0, 6), "+OK 0 ");
}

TEST_F(Pop3SessionTest, BadMessageNumbers) {
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\n");
  Take();
  for (const char* cmd : {"RETR 0", "RETR 5", "RETR x", "DELE -1", "LIST 9"}) {
    session.Feed(std::string(cmd) + "\r\n");
    EXPECT_NE(Take().find("-ERR"), std::string::npos) << cmd;
  }
}

TEST_F(Pop3SessionTest, SharedMailRefcountDropsOnPop3Delete) {
  // A multi-recipient mail: alice deletes her copy over POP3; bob's
  // copy survives; the shared record's refcount drops (fsck clean).
  Deliver({"alice", "bob"}, "shared spam");
  auto session = MakeSession();
  session.Start();
  session.Feed("USER alice\r\nPASS secret\r\nDELE 1\r\nQUIT\r\n");
  EXPECT_EQ(session.state(), Pop3State::kClosed);

  EXPECT_EQ(*volume_->MailCount("alice"), 0u);
  EXPECT_EQ(*volume_->MailCount("bob"), 1u);
  auto fsck = volume_->Fsck();
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->ok()) << fsck->errors[0];

  // Bob deletes too: the shared record becomes garbage, compaction
  // reclaims it.
  auto bob_session = [&] {
    Pop3Session::Hooks hooks;
    hooks.send = [this](std::string bytes) { wire_ += bytes; };
    return Pop3Session(*volume_, credentials_, std::move(hooks));
  }();
  bob_session.Start();
  bob_session.Feed("USER bob\r\nPASS hunter2\r\nDELE 1\r\nQUIT\r\n");
  auto compacted = volume_->Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->shared_records_dropped, 1u);
}

TEST_F(Pop3SessionTest, QuitBeforeAuthClosesCleanly) {
  auto session = MakeSession();
  session.Start();
  session.Feed("QUIT\r\n");
  EXPECT_EQ(session.state(), Pop3State::kClosed);
  EXPECT_NE(Take().find("+OK"), std::string::npos);
}

// --- the full loop: SMTP in, POP3 out, over real TCP -------------------

TEST(MailLoopTest, SmtpDeliverThenPop3Retrieve) {
  const std::string root = ::testing::TempDir() + "/mail_loop";
  std::filesystem::remove_all(root);
  auto store = mfs::MakeMfsStore(root, {});
  ASSERT_TRUE(store.ok());

  // SMTP side.
  mta::RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  db.AddMailbox("bob", "dept.test");
  mta::RealServerConfig smtp_cfg;
  smtp_cfg.architecture = mta::Architecture::kForkAfterTrust;
  smtp_cfg.worker_count = 2;
  smtp_cfg.recv_timeout_ms = 3'000;
  mta::SmtpServer smtp_server(smtp_cfg, std::move(db), **store);
  auto smtp_port = smtp_server.Start();
  ASSERT_TRUE(smtp_port.ok());

  smtp::MailJob job;
  job.mail_from = *smtp::Path::Parse("<sender@remote.test>");
  job.rcpts = {*smtp::Path::Parse("<alice@dept.test>"),
               *smtp::Path::Parse("<bob@dept.test>")};
  job.body = "Subject: loop\n\nround trip body\n";
  auto sent = net::SendMail("127.0.0.1", *smtp_port, job);
  ASSERT_TRUE(sent.ok()) << sent.error().ToString();
  ASSERT_EQ(sent->outcome, smtp::ClientOutcome::kDelivered);
  smtp_server.Stop();

  // POP3 side, over the same volume directory.
  auto volume = mfs::MfsVolume::Open(root);
  ASSERT_TRUE(volume.ok());
  CredentialMap creds{{"alice", "pw"}};
  Pop3ServerConfig pop_cfg;
  pop_cfg.recv_timeout_ms = 3'000;
  Pop3Server pop_server(pop_cfg, **volume, creds);
  auto pop_port = pop_server.Start();
  ASSERT_TRUE(pop_port.ok());

  auto fd = net::TcpConnect("127.0.0.1", *pop_port);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 3'000).ok());
  const std::string dialog = "USER alice\r\nPASS pw\r\nRETR 1\r\nQUIT\r\n";
  ASSERT_TRUE(util::WriteAll(fd->get(), dialog.data(), dialog.size()).ok());
  std::string wire;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd->get(), buf, sizeof(buf));
    if (n <= 0) break;
    wire.append(buf, static_cast<std::size_t>(n));
    if (wire.find("signing off") != std::string::npos) break;
  }
  EXPECT_NE(wire.find("round trip body\r\n"), std::string::npos) << wire;
  EXPECT_NE(wire.find("maildrop has 1 messages"), std::string::npos);
  pop_server.Stop();
  EXPECT_EQ(pop_server.sessions_served(), 1u);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace sams::pop3
