// Tests of the raw networking layer: TCP helpers and the epoll loop.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <thread>
#include <vector>

#include "mta/recipient_db.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "util/fd.h"

namespace sams::net {
namespace {

TEST(TcpTest, ListenConnectAcceptRoundTrip) {
  auto listener = TcpListen(0);
  ASSERT_TRUE(listener.ok()) << listener.error().ToString();
  auto port = LocalPort(listener->get());
  ASSERT_TRUE(port.ok());
  ASSERT_GT(*port, 0);

  std::thread client([port] {
    auto fd = TcpConnect("127.0.0.1", *port);
    ASSERT_TRUE(fd.ok());
    const char msg[] = "ping";
    ASSERT_TRUE(util::WriteAll(fd->get(), msg, 4).ok());
    char buf[4];
    ASSERT_TRUE(util::ReadAll(fd->get(), buf, 4).ok());
    EXPECT_EQ(std::string(buf, 4), "pong");
  });

  auto accepted = TcpAccept(listener->get());
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->peer_ip, "127.0.0.1");
  char buf[4];
  ASSERT_TRUE(util::ReadAll(accepted->fd.get(), buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "ping");
  ASSERT_TRUE(util::WriteAll(accepted->fd.get(), "pong", 4).ok());
  client.join();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Bind-then-close to find a (very likely) dead port.
  std::uint16_t dead_port;
  {
    auto listener = TcpListen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = *LocalPort(listener->get());
  }
  auto fd = TcpConnect("127.0.0.1", dead_port);
  EXPECT_FALSE(fd.ok());
}

TEST(TcpTest, BadAddressRejected) {
  auto fd = TcpConnect("not-an-ip", 25);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error().code(), util::ErrorCode::kInvalidArgument);
}

TEST(TcpTest, RecvTimeoutFires) {
  auto listener = TcpListen(0);
  ASSERT_TRUE(listener.ok());
  const auto port = *LocalPort(listener->get());
  auto client = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto accepted = TcpAccept(listener->get());
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(SetRecvTimeout(client->get(), 100).ok());
  char buf[1];
  const ssize_t n = ::read(client->get(), buf, 1);  // nothing will arrive
  EXPECT_LT(n, 0);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
}

TEST(EventLoopTest, DispatchesReadEvents) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok()) << loop.error().ToString();
  auto pipe_pair = util::MakeSocketPair();
  ASSERT_TRUE(pipe_pair.ok());

  std::string received;
  ASSERT_TRUE((*loop)
                  ->Add(pipe_pair->first.get(), EPOLLIN,
                        [&](std::uint32_t) {
                          char buf[16];
                          const ssize_t n =
                              ::read(pipe_pair->first.get(), buf, sizeof(buf));
                          if (n > 0) {
                            received.assign(buf, static_cast<std::size_t>(n));
                          }
                          (*loop)->Stop();
                        })
                  .ok());

  std::thread writer([&] {
    const char msg[] = "hello";
    (void)util::WriteAll(pipe_pair->second.get(), msg, 5);
  });
  ASSERT_TRUE((*loop)->Run().ok());
  writer.join();
  EXPECT_EQ(received, "hello");
}

TEST(EventLoopTest, StopFromAnotherThread) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (*loop)->Stop();
  });
  EXPECT_TRUE((*loop)->Run().ok());  // returns once stopped
  stopper.join();
}

TEST(EventLoopTest, RemoveStopsDispatch) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  auto pair = util::MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  int calls = 0;
  ASSERT_TRUE((*loop)
                  ->Add(pair->first.get(), EPOLLIN,
                        [&](std::uint32_t) {
                          ++calls;
                          char buf[16];
                          (void)::read(pair->first.get(), buf, sizeof(buf));
                          ASSERT_TRUE((*loop)->Remove(pair->first.get()).ok());
                          (*loop)->Stop();
                        })
                  .ok());
  EXPECT_EQ((*loop)->watched(), 1u);
  (void)util::WriteAll(pair->second.get(), "x", 1);
  ASSERT_TRUE((*loop)->Run().ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ((*loop)->watched(), 0u);
}

TEST(TcpTest, ReusePortListenersShareOnePort) {
  ListenOptions options;
  options.reuse_port = true;
  auto first = TcpListen(0, options);
  ASSERT_TRUE(first.ok()) << first.error().ToString();
  const std::uint16_t port = *LocalPort(first->get());
  // A second SO_REUSEPORT listener binds the same port — the sharded
  // master relies on this to give every reactor its own accept queue.
  auto second = TcpListen(port, options);
  ASSERT_TRUE(second.ok()) << second.error().ToString();
  // Without the option the same bind must fail.
  auto plain = TcpListen(port);
  EXPECT_FALSE(plain.ok());
}

TEST(TcpTest, NonBlockingAcceptReportsEagain) {
  auto listener = TcpListen(0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(util::SetNonBlocking(listener->get()).ok());
  int err = 0;
  auto accepted = TcpAcceptNonBlocking(listener->get(), &err);
  ASSERT_FALSE(accepted.ok());
  EXPECT_TRUE(err == EAGAIN || err == EWOULDBLOCK);

  auto client = TcpConnect("127.0.0.1", *LocalPort(listener->get()));
  ASSERT_TRUE(client.ok());
  // The connection is in the accept queue (loopback completes the
  // handshake synchronously); accept4 must return a non-blocking fd.
  accepted = TcpAcceptNonBlocking(listener->get(), &err);
  ASSERT_TRUE(accepted.ok()) << accepted.error().ToString();
  char buf[1];
  const ssize_t n = ::read(accepted->fd.get(), buf, 1);
  EXPECT_EQ(n, -1);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
}

TEST(TcpTest, AcceptErrnoNames) {
  EXPECT_EQ(AcceptErrnoName(EMFILE), "EMFILE");
  EXPECT_EQ(AcceptErrnoName(ECONNABORTED), "ECONNABORTED");
  EXPECT_EQ(AcceptErrnoName(12345), "12345");
}

TEST(EventLoopTest, PostRunsTaskOnLoopThread) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  std::thread::id loop_thread;
  std::thread::id task_thread;
  std::thread runner([&] {
    loop_thread = std::this_thread::get_id();
    ASSERT_TRUE((*loop)->Run().ok());
  });
  (*loop)->Post([&] {
    task_thread = std::this_thread::get_id();
    (*loop)->Stop();
  });
  runner.join();
  EXPECT_EQ(task_thread, loop_thread);
  EXPECT_NE(task_thread, std::this_thread::get_id());
}

TEST(EventLoopTest, PostFromManyThreadsRunsEveryTask) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  std::atomic<int> ran{0};
  std::thread runner([&] { ASSERT_TRUE((*loop)->Run().ok()); });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        (*loop)->Post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& poster : posters) poster.join();
  // Flush: a final task observed in-order behind all of the above.
  std::atomic<bool> flushed{false};
  (*loop)->Post([&] {
    flushed.store(true);
    (*loop)->Stop();
  });
  runner.join();
  EXPECT_TRUE(flushed.load());
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
}

TEST(RecipientDbTest, ValidatesMailboxes) {
  sams::mta::RecipientDb db;
  db.AddMailbox("alice", "dept.test");
  ASSERT_TRUE(db.AddMailbox("bob@dept.test"));
  EXPECT_FALSE(db.AddMailbox("not-an-address"));

  EXPECT_TRUE(db.IsValid(*sams::smtp::Address::Parse("alice@dept.test")));
  EXPECT_TRUE(db.IsValid(*sams::smtp::Address::Parse("ALICE@DEPT.TEST")));
  EXPECT_TRUE(db.IsValid(*sams::smtp::Address::Parse("bob@dept.test")));
  EXPECT_FALSE(db.IsValid(*sams::smtp::Address::Parse("ghost@dept.test")));
  EXPECT_FALSE(db.IsValid(*sams::smtp::Address::Parse("alice@other.test")));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.ServesDomain("dept.test"));
  EXPECT_FALSE(db.ServesDomain("other.test"));
}

}  // namespace
}  // namespace sams::net
