#include <gtest/gtest.h>

#include "fskit/fs_model.h"
#include "mta/drivers.h"
#include "mta/sim_server.h"
#include "trace/synthetic.h"

namespace sams::mta {
namespace {

using trace::SessionKind;
using trace::SessionSpec;
using util::SimTime;

// A self-contained rig: machine + ext3 mbox store + server.
struct Rig {
  explicit Rig(SimServerConfig cfg, dnsbl::Resolver* resolver = nullptr)
      : fs(machine.disk(), ext3),
        store(fs),
        server(machine, cfg, store, resolver) {}

  sim::Machine machine;
  fskit::Ext3Model ext3;
  fskit::SimFs fs;
  mfs::SimMboxStore store;
  SimMailServer server;
};

SessionSpec NormalSession(std::uint32_t size = 8'000, int rcpts = 1) {
  SessionSpec spec;
  spec.client_ip = util::Ipv4(1, 2, 3, 4);
  spec.kind = SessionKind::kNormal;
  spec.size_bytes = size;
  spec.n_rcpts = static_cast<std::uint16_t>(rcpts);
  spec.n_valid_rcpts = spec.n_rcpts;
  return spec;
}

SessionSpec BounceSession(int rcpts = 2) {
  SessionSpec spec;
  spec.client_ip = util::Ipv4(5, 6, 7, 8);
  spec.kind = SessionKind::kBounce;
  spec.n_rcpts = static_cast<std::uint16_t>(rcpts);
  spec.n_valid_rcpts = 0;
  return spec;
}

SessionSpec UnfinishedSession() {
  SessionSpec spec;
  spec.client_ip = util::Ipv4(9, 9, 9, 9);
  spec.kind = SessionKind::kUnfinished;
  spec.n_rcpts = 0;
  spec.n_valid_rcpts = 0;
  return spec;
}

TEST(SimServerTest, VanillaDeliversNormalSession) {
  Rig rig(SimServerConfig{});
  bool delivered = false;
  rig.server.Connect(NormalSession(), [&](bool d) { delivered = d; });
  rig.machine.sim().Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 1u);
  EXPECT_EQ(rig.server.metrics().connections_closed, 1u);
  EXPECT_EQ(rig.server.metrics().forks, 1u);
  EXPECT_EQ(rig.store.mails_delivered(), 1u);
  // Session time: ~7 round trips at 30 ms + processing.
  EXPECT_GT(rig.machine.sim().Now().millis(), 180.0);
  EXPECT_LT(rig.machine.sim().Now().millis(), 400.0);
}

TEST(SimServerTest, BounceSessionDeliversNothing) {
  Rig rig(SimServerConfig{});
  bool delivered = true;
  rig.server.Connect(BounceSession(), [&](bool d) { delivered = d; });
  rig.machine.sim().Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 0u);
  EXPECT_EQ(rig.server.metrics().bounce_sessions, 1u);
  EXPECT_EQ(rig.store.mails_delivered(), 0u);
}

TEST(SimServerTest, UnfinishedSessionHoldsForConfiguredTime) {
  SimServerConfig cfg;
  cfg.unfinished_hold = SimTime::Seconds(5);
  Rig rig(cfg);
  rig.server.Connect(UnfinishedSession(), nullptr);
  rig.machine.sim().Run();
  EXPECT_GT(rig.machine.sim().Now().seconds(), 5.0);
  EXPECT_EQ(rig.server.metrics().unfinished_sessions, 1u);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 0u);
}

TEST(SimServerTest, VanillaRecyclesProcesses) {
  SimServerConfig cfg;
  cfg.process_limit = 4;
  Rig rig(cfg);
  int closed = 0;
  for (int i = 0; i < 10; ++i) {
    rig.server.Connect(NormalSession(), [&](bool) { ++closed; });
  }
  rig.machine.sim().Run();
  EXPECT_EQ(closed, 10);
  // Only `process_limit` forks ever happen; the rest recycle.
  EXPECT_EQ(rig.server.metrics().forks, 4u);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 10u);
}

TEST(SimServerTest, VanillaBacklogsBeyondProcessLimit) {
  SimServerConfig cfg;
  cfg.process_limit = 2;
  Rig rig(cfg);
  for (int i = 0; i < 6; ++i) rig.server.Connect(NormalSession(), nullptr);
  rig.machine.sim().RunUntil(SimTime::Millis(100));
  EXPECT_GT(rig.server.metrics().backlog_enqueued, 0u);
  rig.machine.sim().Run();
  EXPECT_EQ(rig.server.metrics().mails_delivered, 6u);
}

TEST(SimServerTest, HybridDeliversAndDelegates) {
  SimServerConfig cfg;
  cfg.hybrid = true;
  cfg.process_limit = 8;
  Rig rig(cfg);
  bool delivered = false;
  rig.server.Connect(NormalSession(9'000, 3), [&](bool d) { delivered = d; });
  rig.machine.sim().Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(rig.server.metrics().delegations, 1u);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 1u);
}

TEST(SimServerTest, HybridHandlesBounceWithoutFork) {
  SimServerConfig cfg;
  cfg.hybrid = true;
  Rig rig(cfg);
  for (int i = 0; i < 20; ++i) rig.server.Connect(BounceSession(), nullptr);
  rig.machine.sim().Run();
  EXPECT_EQ(rig.server.metrics().bounce_sessions, 20u);
  EXPECT_EQ(rig.server.metrics().forks, 0u);        // never left the master
  EXPECT_EQ(rig.server.metrics().delegations, 0u);
}

TEST(SimServerTest, HybridBouncesCostFarFewerSwitchesThanVanilla) {
  // §5.4: "the total number of context switches is reduced by close to
  // a factor of two" under a bounce-heavy mix; for pure bounces the
  // master handles everything in one process.
  auto run_bounces = [](bool hybrid) {
    SimServerConfig cfg;
    cfg.hybrid = hybrid;
    cfg.process_limit = 50;
    Rig rig(cfg);
    for (int i = 0; i < 100; ++i) rig.server.Connect(BounceSession(), nullptr);
    rig.machine.sim().Run();
    return rig.machine.cpu().stats().context_switches;
  };
  const auto vanilla = run_bounces(false);
  const auto hybrid = run_bounces(true);
  EXPECT_LT(hybrid * 3, vanilla);
}

TEST(SimServerTest, HybridMasterConnectionLimitBackpressure) {
  SimServerConfig cfg;
  cfg.hybrid = true;
  cfg.master_connection_limit = 3;
  cfg.unfinished_hold = SimTime::Seconds(2);
  Rig rig(cfg);
  for (int i = 0; i < 10; ++i) rig.server.Connect(UnfinishedSession(), nullptr);
  rig.machine.sim().RunUntil(SimTime::Millis(500));
  EXPECT_GT(rig.server.metrics().backlog_enqueued, 0u);
  rig.machine.sim().Run();
  EXPECT_EQ(rig.server.metrics().unfinished_sessions, 10u);
}

TEST(SimServerTest, BlacklistRejectionWhenEnabled) {
  auto db = std::make_shared<dnsbl::BlacklistDb>();
  db->Add(util::Ipv4(1, 2, 3, 4));
  dnsbl::LatencyProfile quick{2.0, 0.1, 0.0, 100.0, 200.0};
  dnsbl::DnsblServer list("bl.test", db, quick);
  util::Rng rng(1);
  dnsbl::Resolver resolver(dnsbl::CacheMode::kIpCache, {&list},
                           SimTime::Hours(24), rng);
  SimServerConfig cfg;
  cfg.reject_blacklisted = true;
  Rig rig(cfg, &resolver);
  bool delivered = true;
  rig.server.Connect(NormalSession(), [&](bool d) { delivered = d; });
  rig.machine.sim().Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(rig.server.metrics().blacklist_rejects, 1u);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 0u);
}

TEST(SimServerTest, DnsblLatencyDelaysSession) {
  auto db = std::make_shared<dnsbl::BlacklistDb>();
  dnsbl::LatencyProfile slow{5.0, 0.01, 1.0, 400.0, 401.0};  // ~400 ms always
  dnsbl::DnsblServer list("slow.test", db, slow);
  util::Rng rng(1);
  dnsbl::Resolver resolver(dnsbl::CacheMode::kNoCache, {&list},
                           SimTime::Hours(24), rng);
  Rig rig(SimServerConfig{}, &resolver);
  rig.server.Connect(NormalSession(), nullptr);
  rig.machine.sim().Run();
  EXPECT_GT(rig.machine.sim().Now().millis(), 550.0);  // 400 DNS + dialog
}

TEST(SimServerTest, HybridDelegateQueueCarriesPendingRcpts) {
  // Worker scarcity forces delegated sessions through the task queue;
  // sessions handed off mid-RCPT must resume with their remaining
  // RCPT commands intact (pending_rcpts plumbing).
  SimServerConfig cfg;
  cfg.hybrid = true;
  cfg.process_limit = 1;  // single worker: everything queues
  Rig rig(cfg);
  int delivered = 0;
  for (int i = 0; i < 12; ++i) {
    rig.server.Connect(NormalSession(6'000, 5), [&](bool d) {
      if (d) ++delivered;
    });
  }
  rig.machine.sim().Run();
  EXPECT_EQ(delivered, 12);
  EXPECT_EQ(rig.server.metrics().mails_delivered, 12u);
  EXPECT_EQ(rig.server.metrics().delegations, 12u);
  EXPECT_EQ(rig.server.metrics().forks, 1u);
}

TEST(ClosedLoopTest, SteadyGoodputAndDeterminism) {
  auto run = [] {
    SimServerConfig cfg;
    cfg.process_limit = 50;
    Rig rig(cfg);
    trace::BounceSweepConfig tcfg;
    tcfg.n_sessions = 2'000;
    tcfg.bounce_ratio = 0.0;
    const auto sessions = trace::MakeBounceSweepTrace(tcfg);
    return RunClosedLoop(rig.machine, rig.server, sessions, 40,
                         SimTime::Seconds(5), SimTime::Seconds(20));
  };
  const LoadResult a = run();
  const LoadResult b = run();
  EXPECT_GT(a.goodput_mails_per_sec, 10.0);
  EXPECT_EQ(a.mails_delivered, b.mails_delivered);  // deterministic
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_GT(a.cpu_utilization, 0.0);
  EXPECT_LE(a.cpu_utilization, 1.0);
}

TEST(ClosedLoopTest, MoreConcurrencyMoreThroughputUntilSaturation) {
  auto goodput = [](int concurrency) {
    SimServerConfig cfg;
    cfg.process_limit = 1'000;
    Rig rig(cfg);
    trace::BounceSweepConfig tcfg;
    tcfg.n_sessions = 2'000;
    const auto sessions = trace::MakeBounceSweepTrace(tcfg);
    return RunClosedLoop(rig.machine, rig.server, sessions, concurrency,
                         SimTime::Seconds(5), SimTime::Seconds(15))
        .goodput_mails_per_sec;
  };
  const double g10 = goodput(10);
  const double g80 = goodput(80);
  EXPECT_GT(g80, g10 * 2);
}

TEST(OpenLoopTest, ThroughputTracksOfferedLoadWhenUnderutilized) {
  SimServerConfig cfg;
  cfg.process_limit = 200;
  Rig rig(cfg);
  trace::BounceSweepConfig tcfg;
  tcfg.n_sessions = 2'000;
  const auto sessions = trace::MakeBounceSweepTrace(tcfg);
  util::Rng rng(77);
  const LoadResult result =
      RunOpenLoop(rig.machine, rig.server, sessions, 20.0,
                  SimTime::Seconds(5), SimTime::Seconds(30), rng);
  EXPECT_NEAR(result.sessions_per_sec, 20.0, 3.0);
  EXPECT_NEAR(result.goodput_mails_per_sec, 20.0, 3.0);
}

TEST(OpenLoopTest, SaturationCapsThroughput) {
  auto run = [](double rate) {
    SimServerConfig cfg;
    cfg.process_limit = 400;
    Rig rig(cfg);
    trace::BounceSweepConfig tcfg;
    tcfg.n_sessions = 2'000;
    const auto sessions = trace::MakeBounceSweepTrace(tcfg);
    util::Rng rng(77);
    return RunOpenLoop(rig.machine, rig.server, sessions, rate,
                       SimTime::Seconds(5), SimTime::Seconds(20), rng);
  };
  const double low = run(50.0).goodput_mails_per_sec;
  const double high = run(5'000.0).goodput_mails_per_sec;
  EXPECT_NEAR(low, 50.0, 8.0);
  // At 5000/s offered the CPU saturates well below the offered rate.
  EXPECT_LT(high, 1'000.0);
  EXPECT_GT(high, low);
}

}  // namespace
}  // namespace sams::mta
