// Tests of the telemetry plane (DESIGN.md §11): time-series rings and
// the sampler thread, the structured event log, the build-info gauge,
// the admin HTTP endpoint, SmtpServer health rows, and the stall
// watchdog catching a session wedged by DNSBL fault injection. Runs
// reactor loops and client threads concurrently (LABELS threads).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/server_stack.h"
#include "fault/injector.h"
#include "mta/smtp_server.h"
#include "net/admin_http.h"
#include "net/tcp.h"
#include "obs/build_info.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "util/logging.h"

namespace sams {
namespace {

bool EventuallyTrue(const std::function<bool()>& predicate,
                    int rounds = 500) {
  for (int i = 0; i < rounds; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

// --- SeriesRing ---------------------------------------------------------

TEST(SeriesRingTest, WrapsAndSnapshotsOldestFirst) {
  obs::SeriesRing ring(4);
  for (int i = 0; i < 6; ++i) ring.Push(1000 + i, i * 1.0);
  EXPECT_EQ(ring.total(), 6u);
  const auto samples = ring.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // 0 and 1 were overwritten; 2..5 survive, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].t_ms, 1002 + i);
    EXPECT_DOUBLE_EQ(samples[i].value, (i + 2) * 1.0);
  }
}

TEST(SeriesRingTest, PartialFillReturnsOnlyPushed) {
  obs::SeriesRing ring(8);
  ring.Push(1, 0.5);
  ring.Push(2, 1.5);
  const auto samples = ring.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].t_ms, 1);
  EXPECT_EQ(samples[1].t_ms, 2);
}

// --- TimeSeries ---------------------------------------------------------

TEST(TimeSeriesTest, RegistryProbesSampleCurrentValues) {
  obs::Registry registry;
  auto& counter = registry.GetCounter("req_total", "requests");
  auto& gauge = registry.GetGauge("depth", "queue depth");
  auto& histo = registry.GetHistogram("lat_ms", "latency", {});
  counter.Inc(3);
  gauge.Set(7.5);
  for (int i = 0; i < 100; ++i) histo.Observe(1.0);

  obs::TimeSeries series({/*interval_ms=*/100, /*capacity=*/16});
  series.AddCounterProbe(registry, "req", "req_total");
  series.AddGaugeProbe(registry, "depth", "depth");
  series.AddPercentileProbe(registry, "lat_p99", "lat_ms", 99.0);
  series.AddProbe("derived", [] { return 42.0; });
  // Registered before the instrument exists: must sample as 0, not
  // fault (per-shard gauges appear only after Start()).
  series.AddGaugeProbe(registry, "late", "not_yet_registered");
  EXPECT_EQ(series.series_count(), 5u);

  series.SampleOnce(/*t_ms=*/5000);
  counter.Inc(2);
  series.SampleOnce(/*t_ms=*/5100);
  EXPECT_EQ(series.samples_taken(), 2u);

  const std::string json = series.ToJson();
  EXPECT_NE(json.find("\"name\":\"req\""), std::string::npos);
  EXPECT_NE(json.find("[5000,3]"), std::string::npos);
  EXPECT_NE(json.find("[5100,5]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"depth\""), std::string::npos);
  EXPECT_NE(json.find("[5000,7.5]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"derived\""), std::string::npos);
  EXPECT_NE(json.find("[5000,42]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"late\""), std::string::npos);
  EXPECT_NE(json.find("[5000,0]"), std::string::npos);
}

TEST(TimeSeriesTest, SamplerThreadTicksUntilStopped) {
  obs::TimeSeries series({/*interval_ms=*/5, /*capacity=*/64});
  std::atomic<int> calls{0};
  series.AddProbe("ticks", [&calls] {
    return static_cast<double>(calls.fetch_add(1) + 1);
  });
  series.Start();
  EXPECT_TRUE(EventuallyTrue([&] { return series.samples_taken() >= 3; }));
  series.Stop();
  const auto after = series.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(series.samples_taken(), after);  // sampler actually stopped
  series.Stop();                             // idempotent
}

TEST(TimeSeriesTest, BindMetricsPublishesSampleCounters) {
  obs::Registry registry;
  obs::TimeSeries series;
  series.AddProbe("x", [] { return 1.0; });
  series.BindMetrics(registry);
  series.SampleOnce(100);
  registry.Collect();
  const auto* samples =
      registry.FindCounter("sams_obs_series_samples_total");
  ASSERT_NE(samples, nullptr);
  EXPECT_GE(samples->value(), 1u);
}

// --- EventLog -----------------------------------------------------------

struct CapturedLog {
  std::mutex mutex;
  std::vector<std::string> lines;

  std::function<void(const std::string&)> Sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  std::vector<std::string> Lines() {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
  bool AnyContains(const std::string& needle) {
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

obs::EventLog::Options SinkOptions(CapturedLog& captured,
                                   std::int64_t fixed_ms = 1234) {
  obs::EventLog::Options opts;
  opts.sink = captured.Sink();
  opts.clock_ms = [fixed_ms] { return fixed_ms; };
  return opts;
}

TEST(EventLogTest, RecordSchemaPreservesFieldOrder) {
  CapturedLog captured;
  obs::EventLog log(SinkOptions(captured));
  obs::EventRecord record("smtp", "session", obs::EventSeverity::kInfo);
  record.Str("verdict", "delivered")
      .Int("rcpts", 2)
      .Num("ms_data", 1.5)
      .Bool("traced", true)
      .Str("quote", "a\"b\nc");
  EXPECT_TRUE(log.Emit(record));
  const auto lines = captured.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{\"ts_ms\":1234,\"subsystem\":\"smtp\",\"event\":\"session\","
            "\"severity\":\"info\",\"verdict\":\"delivered\",\"rcpts\":2,"
            "\"ms_data\":1.5,\"traced\":true,"
            "\"quote\":\"a\\\"b\\nc\"}\n");
  EXPECT_EQ(log.emitted(), 1u);
}

TEST(EventLogTest, SubsystemSeverityFloorsOverrideGlobal) {
  CapturedLog captured;
  auto opts = SinkOptions(captured);
  opts.min_severity = obs::EventSeverity::kWarn;
  obs::EventLog log(std::move(opts));
  log.SetSubsystemLevel("smtp", obs::EventSeverity::kDebug);

  // Global floor warn: info from an unconfigured subsystem drops...
  EXPECT_FALSE(
      log.Emit(obs::EventRecord("mfs", "x", obs::EventSeverity::kInfo)));
  // ...but the smtp override admits even debug...
  EXPECT_TRUE(
      log.Emit(obs::EventRecord("smtp", "y", obs::EventSeverity::kDebug)));
  // ...and warn passes the global floor everywhere.
  EXPECT_TRUE(
      log.Emit(obs::EventRecord("mfs", "z", obs::EventSeverity::kWarn)));
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.suppressed(), 1u);
}

TEST(EventLogTest, TokenBucketBoundsRecordRate) {
  CapturedLog captured;
  std::int64_t now_ms = 10'000;
  obs::EventLog::Options opts;
  opts.sink = captured.Sink();
  opts.clock_ms = [&now_ms] { return now_ms; };
  opts.max_records_per_sec = 5;
  obs::EventLog log(std::move(opts));

  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (log.Emit(obs::EventRecord("smtp", "e"))) ++admitted;
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(log.rate_limited(), 15u);
  // A new wall second refills the bucket.
  now_ms += 1'000;
  EXPECT_TRUE(log.Emit(obs::EventRecord("smtp", "e")));
}

TEST(EventLogTest, LogBridgeRoutesSamsLogMacros) {
  CapturedLog captured;
  {
    obs::EventLog log(SinkOptions(captured));
    log.InstallLogBridge();
    SAMS_LOG(kWarn) << "bridged line";
    EXPECT_TRUE(EventuallyTrue(
        [&] { return captured.AnyContains("bridged line"); }, 50));
    EXPECT_TRUE(captured.AnyContains("\"subsystem\":\"log\""));
    EXPECT_TRUE(captured.AnyContains("\"severity\":\"warn\""));
  }
  // Destructor restored the default sink: this must not crash or
  // reach the dead capture.
  const auto count = captured.Lines().size();
  SAMS_LOG(kWarn) << "after teardown";
  EXPECT_EQ(captured.Lines().size(), count);
}

TEST(EventLogTest, FileSinkWritesAndCounts) {
  const std::string path =
      ::testing::TempDir() + "/obs_event_log_test.jsonl";
  std::filesystem::remove(path);
  {
    obs::EventLog::Options opts;
    opts.path = path;
    obs::EventLog log(std::move(opts));
    log.Emit(obs::EventRecord("smtp", "one"));
    log.Emit(obs::EventRecord("smtp", "two", obs::EventSeverity::kWarn));
    log.Flush();
    EXPECT_EQ(log.emitted(), 2u);
  }
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"event\":\"one\""), std::string::npos);
  EXPECT_NE(contents.find("\"event\":\"two\""), std::string::npos);
  std::filesystem::remove(path);
}

// --- build info ---------------------------------------------------------

TEST(BuildInfoTest, GaugeCarriesShaAndFaultState) {
  obs::Registry registry;
  auto& gauge = obs::RegisterBuildInfo(registry);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
  EXPECT_EQ(&obs::RegisterBuildInfo(registry), &gauge);  // idempotent
  const std::string text = obs::PrometheusText(registry);
  EXPECT_NE(text.find("sams_build_info{"), std::string::npos);
  EXPECT_NE(text.find("sha=\""), std::string::npos);
  EXPECT_NE(text.find("build=\""), std::string::npos);
  EXPECT_NE(text.find("faults=\""), std::string::npos);
  EXPECT_STRNE(obs::BuildGitSha(), "");
}

// --- AdminHttpServer ----------------------------------------------------

// One raw HTTP exchange; returns everything the server sent.
std::string HttpExchange(std::uint16_t port, const std::string& request) {
  auto fd = net::TcpConnect("127.0.0.1", port);
  if (!fd.ok()) return "connect failed";
  if (!net::SetRecvTimeout(fd->get(), 5'000).ok()) return "sockopt failed";
  if (::write(fd->get(), request.data(), request.size()) !=
      static_cast<ssize_t>(request.size())) {
    return "write failed";
  }
  std::string reply;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd->get(), buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  return reply;
}

TEST(AdminHttpTest, RoutesStatusCodesAndQueryStripping) {
  obs::Registry registry;
  net::AdminHttpServer admin(0);
  admin.BindMetrics(registry);
  admin.Route("/ping", [] {
    net::AdminResponse resp;
    resp.body = "pong\n";
    return resp;
  });
  admin.Route("/busy", [] {
    net::AdminResponse resp;
    resp.status = 503;
    resp.body = "degraded\n";
    return resp;
  });
  auto port = admin.Start();
  ASSERT_TRUE(port.ok()) << port.error().ToString();
  ASSERT_NE(*port, 0);
  EXPECT_EQ(admin.port(), *port);

  const std::string ok = HttpExchange(*port, "GET /ping HTTP/1.0\r\n\r\n");
  EXPECT_NE(ok.find("200"), std::string::npos);
  EXPECT_NE(ok.find("pong"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  // The query string is stripped before routing.
  const std::string query =
      HttpExchange(*port, "GET /ping?verbose=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(query.find("200"), std::string::npos);
  EXPECT_NE(query.find("pong"), std::string::npos);

  EXPECT_NE(HttpExchange(*port, "GET /nope HTTP/1.0\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(HttpExchange(*port, "POST /ping HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(HttpExchange(*port, "GET /busy HTTP/1.0\r\n\r\n").find("503"),
            std::string::npos);

  EXPECT_TRUE(EventuallyTrue([&] { return admin.requests() >= 5; }));
  registry.Collect();
  const auto* served = registry.FindCounter("sams_admin_requests_total",
                                            {{"path", "/ping"}});
  ASSERT_NE(served, nullptr);
  EXPECT_GE(served->value(), 2u);
  admin.Stop();
}

TEST(AdminHttpTest, WatchedFdIsDrainedOnTheAdminLoop) {
  net::AdminHttpServer admin(0);
  const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  ASSERT_GE(efd, 0);
  std::atomic<int> fired{0};
  admin.AddWatch(efd, [efd, &fired] {
    std::uint64_t value = 0;
    while (::read(efd, &value, sizeof(value)) == sizeof(value)) {
      fired.fetch_add(1);
    }
  });
  auto port = admin.Start();
  ASSERT_TRUE(port.ok()) << port.error().ToString();

  const std::uint64_t one = 1;
  ASSERT_EQ(::write(efd, &one, sizeof(one)), sizeof(one));
  EXPECT_TRUE(EventuallyTrue([&] { return fired.load() >= 1; }));
  admin.Stop();
  ::close(efd);
}

// --- ServerStack admin endpoint ----------------------------------------

TEST(StackAdminTest, FiveEndpointsServeThePlane) {
  core::StackConfig cfg;
  const std::vector<util::Ipv4> listed = {util::Ipv4(192, 0, 2, 1)};
  core::ServerStack stack(cfg, listed);
  auto port = stack.StartAdminServer(0);
  ASSERT_TRUE(port.ok()) << port.error().ToString();
  EXPECT_EQ(stack.admin_port(), *port);

  const std::string metrics =
      HttpExchange(*port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("sams_build_info"), std::string::npos);

  const std::string vars = HttpExchange(*port, "GET /vars HTTP/1.0\r\n\r\n");
  EXPECT_NE(vars.find("200"), std::string::npos);
  EXPECT_NE(vars.find("application/json"), std::string::npos);

  const std::string health =
      HttpExchange(*port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

  EXPECT_NE(HttpExchange(*port, "GET /spans HTTP/1.0\r\n\r\n").find("200"),
            std::string::npos);

  const std::string series =
      HttpExchange(*port, "GET /series HTTP/1.0\r\n\r\n");
  EXPECT_NE(series.find("200"), std::string::npos);
  EXPECT_NE(series.find("\"series\""), std::string::npos);

  stack.StopAdminServer();
}

// --- SmtpServer health + stall watchdog --------------------------------

class TelemetryServerTest : public ::testing::Test {
 protected:
  void StartServer(mta::RealServerConfig cfg) {
    std::string tag = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();
    for (char& c : tag) {
      if (!isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    root_ = ::testing::TempDir() + "/obs_srv_" + tag;
    std::filesystem::remove_all(root_);
    auto store = mfs::MakeMfsStore(root_, {});
    ASSERT_TRUE(store.ok()) << store.error().ToString();
    store_ = std::move(store).value();

    mta::RecipientDb db;
    db.AddMailbox("alice", "dept.test");
    server_ = std::make_unique<mta::SmtpServer>(cfg, std::move(db), *store_);
    server_->BindObservability(registry_, &trace_);
    server_->BindEventLog(&event_log_);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.error().ToString();
    port_ = *port;
  }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    store_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  obs::Registry registry_;
  obs::TraceSink trace_;
  CapturedLog captured_;
  obs::EventLog event_log_{[this] {
    obs::EventLog::Options opts;
    opts.sink = captured_.Sink();
    return opts;
  }()};
  std::string root_;
  std::unique_ptr<mfs::MailStore> store_;
  std::unique_ptr<mta::SmtpServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(TelemetryServerTest, HealthRowsCoverSubsystems) {
  mta::RealServerConfig cfg;
  cfg.architecture = mta::Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.num_shards = 2;
  cfg.recv_timeout_ms = 3'000;
  StartServer(cfg);

  const auto health = server_->Health();
  ASSERT_GE(health.size(), 3u);
  bool saw_server = false, saw_shards = false, saw_store = false;
  for (const auto& row : health) {
    EXPECT_TRUE(row.ok) << row.name << ": " << row.detail;
    if (row.name == "server") saw_server = true;
    if (row.name == "shards") saw_shards = true;
    if (row.name == "store") saw_store = true;
  }
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_shards);
  EXPECT_TRUE(saw_store);
  EXPECT_GE(server_->LiveWorkers(), 1);
}

// The acceptance scenario: a session wedged mid-pipeline by fault
// injection must surface in the event log with its span history. The
// DNSBL zone points at a silent UDP socket and dnsbl.udp.drop eats the
// datagrams, so the RCPT verdict never arrives; with a 10 s DNS
// timeout the session sits dnsbl-deferred long past the 100 ms
// watchdog threshold.
TEST_F(TelemetryServerTest, WatchdogLogsStalledSessionWithSpans) {
  // A bound-but-never-read UDP socket: a real port, no answers, no
  // ICMP port-unreachable noise.
  const int dead_udp = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(dead_udp, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(dead_udp, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(dead_udp, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);

  fault::ScopedArm arm(11);
  fault::Injector::Global().Set("dnsbl.udp.drop", {});

  mta::RealServerConfig cfg;
  cfg.architecture = mta::Architecture::kForkAfterTrust;
  cfg.worker_count = 1;
  cfg.num_shards = 1;
  cfg.recv_timeout_ms = 30'000;
  cfg.stall_watchdog_ms = 100;
  cfg.dnsbl.enabled = true;
  cfg.dnsbl.zones = {{"stall.bl.test", dead_port}};
  cfg.dnsbl.timeout_ms = 10'000;
  cfg.dnsbl.max_retries = 0;
  StartServer(cfg);

  // Drive the dialog to the RCPT whose reply waits on the lost DNS
  // round, then hold the connection open.
  auto fd = net::TcpConnect("127.0.0.1", port_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::SetRecvTimeout(fd->get(), 5'000).ok());
  auto read_line = [&fd] {
    std::string line;
    char ch = 0;
    while (line.size() < 512 && ::read(fd->get(), &ch, 1) == 1) {
      if (ch == '\n') return line;
      if (ch != '\r') line.push_back(ch);
    }
    return line;
  };
  auto send = [&fd](const char* cmd) {
    ASSERT_GT(::write(fd->get(), cmd, std::strlen(cmd)), 0);
  };
  EXPECT_NE(read_line().find("220"), std::string::npos);
  send("HELO client.test\r\n");
  EXPECT_NE(read_line().find("250"), std::string::npos);
  send("MAIL FROM:<a@client.test>\r\n");
  EXPECT_NE(read_line().find("250"), std::string::npos);
  send("RCPT TO:<alice@dept.test>\r\n");  // reply parked on the gate

  EXPECT_TRUE(EventuallyTrue(
      [&] { return captured_.AnyContains("\"event\":\"stall\""); }));
  EXPECT_TRUE(captured_.AnyContains("\"spans\""));
  EXPECT_TRUE(captured_.AnyContains("\"severity\":\"warn\""));
  EXPECT_GE(server_->stats().stalled_sessions.load(), 1u);

  // Once logged, the same session is not re-reported every tick.
  const auto StallLines = [&] {
    int n = 0;
    for (const auto& line : captured_.Lines()) {
      if (line.find("\"event\":\"stall\"") != std::string::npos) ++n;
    }
    return n;
  };
  const int logged = StallLines();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(StallLines(), logged);

  fault::Injector::Global().Clear("dnsbl.udp.drop");
  ::close(dead_udp);
}

}  // namespace
}  // namespace sams
