#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace sams::sim {
namespace {

using util::SimTime;

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now().nanos(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(SimTime::Millis(30), [&] { order.push_back(3); });
  sim.At(SimTime::Millis(10), [&] { order.push_back(1); });
  sim.At(SimTime::Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime::Millis(30));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(SimTime::Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  SimTime fired;
  sim.At(SimTime::Millis(10), [&] {
    sim.After(SimTime::Millis(5), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, SimTime::Millis(15));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.After(SimTime::Micros(1), recurse);
  };
  sim.After(SimTime::Micros(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), SimTime::Micros(100));
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Seconds(1), [&] { ++fired; });
  sim.At(SimTime::Seconds(3), [&] { ++fired; });
  sim.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(2));
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilIncludesBoundary) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Seconds(2), [&] { ++fired; });
  sim.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(SimTime::Millis(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulatorTest, EventsAtCurrentTimeRunBeforeLater) {
  Simulator sim;
  std::vector<int> order;
  sim.At(SimTime::Millis(10), [&] {
    sim.At(sim.Now(), [&] { order.push_back(1); });
    sim.At(sim.Now() + SimTime::Nanos(1), [&] { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator sim;
  sim.At(SimTime::Millis(10), [&] {
    EXPECT_DEATH(sim.At(SimTime::Millis(5), [] {}), "past");
  });
  sim.Run();
}

}  // namespace
}  // namespace sams::sim
