#include "smtp/server_session.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace sams::smtp {
namespace {

// Test fixture capturing replies/mails and validating recipients
// against a fixed mailbox set — a miniature access database (§2).
class ServerSessionTest : public ::testing::Test {
 protected:
  ServerSession MakeSession(SessionConfig cfg = {}) {
    ServerSession::Hooks hooks;
    hooks.send = [this](std::string bytes) {
      wire_ += bytes;
      return !fail_sends_;
    };
    hooks.validate_rcpt = [this](const Address& a) {
      return mailboxes_.count(a.ToString()) > 0;
    };
    hooks.on_mail = [this](Envelope&& env) { mails_.push_back(std::move(env)); };
    hooks.on_quit = [this] { quit_ = true; };
    hooks.on_first_valid_rcpt = [this] { ++first_rcpt_events_; };
    return ServerSession(cfg, std::move(hooks), "10.1.2.3");
  }

  // Returns the last complete reply line.
  std::string LastReply() const {
    if (wire_.empty()) return "";
    std::size_t end = wire_.rfind("\r\n");
    if (end == std::string::npos) return wire_;
    std::size_t begin = wire_.rfind("\r\n", end - 1);
    begin = begin == std::string::npos ? 0 : begin + 2;
    return wire_.substr(begin, end - begin);
  }

  std::set<std::string> mailboxes_ = {"alice@dept.test", "bob@dept.test",
                                      "carol@dept.test"};
  std::string wire_;
  std::vector<Envelope> mails_;
  bool quit_ = false;
  bool fail_sends_ = false;  // makes the send hook report a dead peer
  int first_rcpt_events_ = 0;
};

TEST_F(ServerSessionTest, SendFailureAbortsSession) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO host.example\r\nMAIL FROM:<x@spam.test>\r\n");
  fail_sends_ = true;
  const std::size_t wire_before = wire_.size();
  s.Feed("RCPT TO:<alice@dept.test>\r\n");
  // The failed 250 marks the peer dead: session closed, no delegation
  // trigger, and the doomed reply bytes were the last ones generated.
  EXPECT_TRUE(s.peer_dead());
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(first_rcpt_events_, 0);
  const std::size_t wire_after_abort = wire_.size();
  EXPECT_GT(wire_after_abort, wire_before);
  s.Feed("DATA\r\nQUIT\r\n");
  EXPECT_EQ(wire_.size(), wire_after_abort);  // no replies past the abort
  EXPECT_FALSE(quit_);
}

TEST_F(ServerSessionTest, SendFailureDuringDataDoesNotResurrect) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO h\r\nMAIL FROM:<x@spam.test>\r\nRCPT TO:<alice@dept.test>\r\n");
  s.Feed("DATA\r\n");
  fail_sends_ = true;
  s.Feed("body\r\n.\r\n");
  // The 250 ack failed: the session must stay closed, not bounce back
  // to kGreeted at the end of the DATA handler.
  EXPECT_TRUE(s.peer_dead());
  EXPECT_EQ(s.state(), SessionState::kClosed);
}

TEST_F(ServerSessionTest, StartSendsBanner) {
  auto s = MakeSession();
  s.Start();
  EXPECT_EQ(wire_.substr(0, 4), "220 ");
  EXPECT_EQ(s.state(), SessionState::kConnected);
}

TEST_F(ServerSessionTest, FullTransactionDeliversMail) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO spammer.example\r\n");
  EXPECT_EQ(s.state(), SessionState::kGreeted);
  s.Feed("MAIL FROM:<sender@spam.test>\r\n");
  EXPECT_EQ(s.state(), SessionState::kMailGiven);
  s.Feed("RCPT TO:<alice@dept.test>\r\n");
  EXPECT_EQ(s.state(), SessionState::kRcptGiven);
  s.Feed("DATA\r\n");
  EXPECT_EQ(s.state(), SessionState::kData);
  s.Feed("Subject: hi\r\n\r\nbody line\r\n.\r\n");
  EXPECT_EQ(s.state(), SessionState::kGreeted);
  s.Feed("QUIT\r\n");
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_TRUE(quit_);

  ASSERT_EQ(mails_.size(), 1u);
  const Envelope& env = mails_[0];
  EXPECT_EQ(env.client_ip, "10.1.2.3");
  EXPECT_EQ(env.helo, "spammer.example");
  EXPECT_EQ(env.mail_from.ToString(), "<sender@spam.test>");
  ASSERT_EQ(env.rcpt_to.size(), 1u);
  EXPECT_EQ(env.rcpt_to[0].ToString(), "alice@dept.test");
  EXPECT_EQ(env.body, "Subject: hi\r\n\r\nbody line\r\n");
}

TEST_F(ServerSessionTest, BounceGets550) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<ghost@dept.test>\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "550 ");
  EXPECT_EQ(s.state(), SessionState::kMailGiven);  // not advanced
  EXPECT_EQ(s.stats().rejected_rcpts, 1u);
  EXPECT_EQ(first_rcpt_events_, 0);
}

TEST_F(ServerSessionTest, MixedRcptsKeepOnlyValid) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\n");
  s.Feed("RCPT TO:<ghost@dept.test>\r\n");
  s.Feed("RCPT TO:<alice@dept.test>\r\n");
  s.Feed("RCPT TO:<bob@dept.test>\r\n");
  s.Feed("RCPT TO:<phantom@dept.test>\r\n");
  EXPECT_EQ(s.rcpt_to().size(), 2u);
  EXPECT_EQ(s.stats().accepted_rcpts, 2u);
  EXPECT_EQ(s.stats().rejected_rcpts, 2u);
  // Delegation trigger fires exactly once, on the FIRST valid RCPT.
  EXPECT_EQ(first_rcpt_events_, 1);
}

TEST_F(ServerSessionTest, MailBeforeHeloRejectedWhenRequired) {
  auto s = MakeSession();
  s.Start();
  s.Feed("MAIL FROM:<s@x.test>\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "503 ");
  EXPECT_EQ(s.state(), SessionState::kConnected);
}

TEST_F(ServerSessionTest, MailBeforeHeloAllowedWhenNotRequired) {
  SessionConfig cfg;
  cfg.require_helo = false;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed("MAIL FROM:<s@x.test>\r\n");
  EXPECT_EQ(s.state(), SessionState::kMailGiven);
}

TEST_F(ServerSessionTest, RcptBeforeMailRejected) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nRCPT TO:<alice@dept.test>\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "503 ");
}

TEST_F(ServerSessionTest, NestedMailRejected) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<a@x.test>\r\nMAIL FROM:<b@x.test>\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "503 ");
  EXPECT_EQ(s.mail_from().ToString(), "<a@x.test>");
}

TEST_F(ServerSessionTest, DataWithAllRcptsBouncedGets554) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<ghost@dept.test>\r\nDATA\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "554 ");
}

TEST_F(ServerSessionTest, DataWithoutRcptGets503) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nDATA\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "503 ");
}

TEST_F(ServerSessionTest, NullSenderAcceptedForBounceNotifications) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<>\r\nRCPT TO:<alice@dept.test>\r\n");
  EXPECT_EQ(s.state(), SessionState::kRcptGiven);
  EXPECT_TRUE(s.mail_from().IsNull());
}

TEST_F(ServerSessionTest, NullRcptRejected) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<>\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "501 ");
}

TEST_F(ServerSessionTest, MalformedMailFromGets501) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:junk\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "501 ");
  EXPECT_EQ(s.stats().syntax_errors, 1u);
}

TEST_F(ServerSessionTest, UnknownCommandGets500) {
  auto s = MakeSession();
  s.Start();
  s.Feed("XYZZY\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "500 ");
}

TEST_F(ServerSessionTest, VrfyDisabled) {
  auto s = MakeSession();
  s.Start();
  s.Feed("VRFY alice\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "502 ");
}

TEST_F(ServerSessionTest, NoopAndRset) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\n");
  s.Feed("RSET\r\n");
  EXPECT_EQ(s.state(), SessionState::kGreeted);
  EXPECT_TRUE(s.rcpt_to().empty());
  s.Feed("NOOP\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "250 ");
}

TEST_F(ServerSessionTest, RecipientCapEnforced) {
  SessionConfig cfg;
  cfg.max_recipients = 2;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\n");
  s.Feed("RCPT TO:<alice@dept.test>\r\nRCPT TO:<bob@dept.test>\r\n");
  s.Feed("RCPT TO:<carol@dept.test>\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "452 ");
  EXPECT_EQ(s.rcpt_to().size(), 2u);
}

TEST_F(ServerSessionTest, OversizedMessageGets552AndIsDropped) {
  SessionConfig cfg;
  cfg.max_message_bytes = 10;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n");
  s.Feed("this line is much longer than ten bytes\r\n.\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "552 ");
  EXPECT_TRUE(mails_.empty());
  EXPECT_EQ(s.state(), SessionState::kGreeted);
}

TEST_F(ServerSessionTest, OverlongDataLineGets500AndSessionContinues) {
  SessionConfig cfg;
  cfg.max_data_line_bytes = 64;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n");
  // A single body line far past the cap: rejected with 500 once the
  // message completes, and never handed to on_mail.
  s.Feed(std::string(10'000, 'L') + "\r\n.\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "500 ");
  EXPECT_TRUE(mails_.empty());
  EXPECT_EQ(s.stats().line_overflows, 1u);
  // The connection survives for a well-formed transaction.
  s.Feed("MAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n"
         "ok\r\n.\r\n");
  ASSERT_EQ(mails_.size(), 1u);
  EXPECT_EQ(mails_[0].body, "ok\r\n");
}

TEST_F(ServerSessionTest, OversizedBeatsLineOverflowInReplyChoice) {
  SessionConfig cfg;
  cfg.max_message_bytes = 50;
  cfg.max_data_line_bytes = 64;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n");
  // Violates both limits: the size limit is the actionable reply.
  s.Feed(std::string(10'000, 'B') + "\r\n.\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "552 ");
  EXPECT_TRUE(mails_.empty());
}

TEST_F(ServerSessionTest, NewlineFreeDataStreamStaysBounded) {
  SessionConfig cfg;
  cfg.max_data_line_bytes = 1024;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n");
  // A hostile client streams body bytes without ever sending a
  // newline. The decoder must not buffer beyond the line cap (this is
  // the memory-DoS the cap exists for) — and the terminator must still
  // be honored afterwards.
  for (int i = 0; i < 100; ++i) {
    s.Feed(std::string(64 * 1024, 'x'));
  }
  s.Feed("\r\n.\r\n");
  EXPECT_EQ(LastReply().substr(0, 4), "500 ");
  EXPECT_TRUE(mails_.empty());
  EXPECT_EQ(s.state(), SessionState::kGreeted);
}

TEST_F(ServerSessionTest, PipelinedCommandsInOneChunk) {
  auto s = MakeSession();
  s.Start();
  s.Feed(
      "HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\n"
      "DATA\r\nhi\r\n.\r\nQUIT\r\n");
  ASSERT_EQ(mails_.size(), 1u);
  EXPECT_EQ(mails_[0].body, "hi\r\n");
  EXPECT_TRUE(quit_);
}

TEST_F(ServerSessionTest, BytePerByteFeeding) {
  auto s = MakeSession();
  s.Start();
  const std::string wire =
      "HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<bob@dept.test>\r\n"
      "DATA\r\nslow body\r\n.\r\nQUIT\r\n";
  for (char c : wire) s.Feed(std::string_view(&c, 1));
  ASSERT_EQ(mails_.size(), 1u);
  EXPECT_EQ(mails_[0].body, "slow body\r\n");
}

TEST_F(ServerSessionTest, MultipleTransactionsPerConnection) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\n");
  for (int i = 0; i < 3; ++i) {
    s.Feed("MAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n");
    s.Feed("mail " + std::to_string(i) + "\r\n.\r\n");
  }
  EXPECT_EQ(mails_.size(), 3u);
  EXPECT_EQ(mails_[2].body, "mail 2\r\n");
  EXPECT_EQ(s.stats().mails_delivered, 3u);
}

TEST_F(ServerSessionTest, OverlongCommandLineRejected) {
  SessionConfig cfg;
  cfg.max_line_length = 64;
  auto s = MakeSession(cfg);
  s.Start();
  s.Feed(std::string(100, 'A'));  // no newline
  EXPECT_EQ(LastReply().substr(0, 4), "500 ");
}

TEST_F(ServerSessionTest, NoCommandsProcessedAfterQuit) {
  auto s = MakeSession();
  s.Start();
  s.Feed("QUIT\r\nHELO x\r\n");
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.stats().commands, 1u);
}

TEST_F(ServerSessionTest, DotStuffedBodyUnstuffed) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\n");
  s.Feed("..dot line\r\n.\r\n");
  ASSERT_EQ(mails_.size(), 1u);
  EXPECT_EQ(mails_[0].body, ".dot line\r\n");
}

// --- fork-after-trust handoff ---------------------------------------

TEST_F(ServerSessionTest, HandoffRequiresRcptGiven) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO x\r\n");
  auto payload = s.SerializeHandoff();
  EXPECT_FALSE(payload.ok());
  EXPECT_EQ(payload.error().code(), util::ErrorCode::kFailedPrecondition);
}

TEST_F(ServerSessionTest, HandoffRoundTripPreservesEnvelope) {
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO relay.example\r\nMAIL FROM:<s@x.test>\r\n");
  s.Feed("RCPT TO:<alice@dept.test>\r\nRCPT TO:<bob@dept.test>\r\n");
  auto payload = s.SerializeHandoff();
  ASSERT_TRUE(payload.ok()) << payload.error().ToString();

  std::string worker_wire;
  std::vector<Envelope> worker_mails;
  ServerSession::Hooks hooks;
  hooks.send = [&](std::string b) { worker_wire += b; return true; };
  hooks.validate_rcpt = [](const Address&) { return true; };
  hooks.on_mail = [&](Envelope&& env) { worker_mails.push_back(std::move(env)); };
  auto resumed = ServerSession::ResumeFromHandoff({}, std::move(hooks), *payload);
  ASSERT_TRUE(resumed.ok()) << resumed.error().ToString();

  EXPECT_EQ(resumed->state(), SessionState::kRcptGiven);
  EXPECT_EQ(resumed->client_ip(), "10.1.2.3");
  EXPECT_EQ(resumed->mail_from().ToString(), "<s@x.test>");
  ASSERT_EQ(resumed->rcpt_to().size(), 2u);

  // The worker finishes the transaction.
  resumed->Feed("DATA\r\nhanded off\r\n.\r\nQUIT\r\n");
  ASSERT_EQ(worker_mails.size(), 1u);
  EXPECT_EQ(worker_mails[0].body, "handed off\r\n");
  EXPECT_EQ(worker_mails[0].client_ip, "10.1.2.3");
  EXPECT_EQ(worker_mails[0].helo, "relay.example");
  EXPECT_EQ(worker_mails[0].rcpt_to.size(), 2u);
}

TEST_F(ServerSessionTest, HandoffCarriesPipelinedBytes) {
  auto s = MakeSession();
  s.Start();
  // Client pipelines DATA (and more) right behind RCPT.
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDATA\r\npipelined");
  auto payload = s.SerializeHandoff();
  // Session already advanced past RCPT into DATA due to pipelining —
  // handoff must fail (master only delegates from RCPT_GIVEN).
  EXPECT_FALSE(payload.ok());
}

TEST_F(ServerSessionTest, HandoffWithPartialNextLineBuffered) {
  auto s = MakeSession();
  s.Start();
  // A partial next command sits in the buffer at delegation time.
  s.Feed("HELO x\r\nMAIL FROM:<s@x.test>\r\nRCPT TO:<alice@dept.test>\r\nDA");
  ASSERT_EQ(s.state(), SessionState::kRcptGiven);
  auto payload = s.SerializeHandoff();
  ASSERT_TRUE(payload.ok());

  std::vector<Envelope> worker_mails;
  ServerSession::Hooks hooks;
  hooks.send = [](std::string) { return true; };
  hooks.validate_rcpt = [](const Address&) { return true; };
  hooks.on_mail = [&](Envelope&& env) { worker_mails.push_back(std::move(env)); };
  auto resumed = ServerSession::ResumeFromHandoff({}, std::move(hooks), *payload);
  ASSERT_TRUE(resumed.ok());
  resumed->Feed("TA\r\nbody\r\n.\r\n");
  ASSERT_EQ(worker_mails.size(), 1u);
  EXPECT_EQ(worker_mails[0].body, "body\r\n");
}

TEST_F(ServerSessionTest, ResumeRejectsCorruptPayloads) {
  ServerSession::Hooks hooks;
  hooks.send = [](std::string) { return true; };
  hooks.validate_rcpt = [](const Address&) { return true; };
  const std::string bad_payloads[] = {
      "",
      "ip=1.2.3.4\n",                                    // incomplete
      "garbage\n",                                       // no '='
      "ip=1.2.3.4\nfrom=<s@x>\nrcpt=bad\nbuf=\n",        // bad rcpt
      "ip=1.2.3.4\nfrom=junk\nrcpt=<a@b.c>\nbuf=\n",     // bad from
      "zz=1\nip=1.2.3.4\nfrom=<s@x.y>\nrcpt=<a@b.c>\nbuf=\n",  // unknown key
      "ip=1.2.3.4\nfrom=<s@x.y>\nbuf=\n",                // no rcpt
  };
  for (const auto& payload : bad_payloads) {
    auto hooks_copy = hooks;
    auto r = ServerSession::ResumeFromHandoff({}, std::move(hooks_copy), payload);
    EXPECT_FALSE(r.ok()) << "payload accepted: " << payload;
  }
}


TEST_F(ServerSessionTest, MalformedHeloDraws501AndCounts) {
  auto s = MakeSession();
  s.Start();
  struct Case {
    std::string arg;
    const char* why;
  };
  const Case cases[] = {
      {"", "empty"},
      {std::string(256, 'a'), "overlong"},
      {"host\x01name", "control byte"},
      {"a..b", "empty label"},
  };
  std::uint64_t rejects = 0;
  for (const Case& c : cases) {
    s.Feed("HELO " + c.arg + "\r\n");
    EXPECT_EQ(LastReply().substr(0, 3), "501") << c.why;
    EXPECT_EQ(s.stats().helo_rejects, ++rejects) << c.why;
  }
  // The rejected arguments were never stored: the session still has no
  // greeting, so MAIL is out of sequence when require_helo is on.
  EXPECT_EQ(s.helo(), "");
  SessionConfig require;
  require.require_helo = true;
  auto strict = MakeSession(require);
  strict.Start();
  strict.Feed("HELO \x7f\r\nMAIL FROM:<s@x.test>\r\n");
  EXPECT_EQ(LastReply().substr(0, 3), "503");
}

TEST_F(ServerSessionTest, HeloKindSurvivesForTheScorer) {
  // Bare-IP and address-literal greetings pass the dialog but keep
  // their classification for the reputation gate's anomaly features.
  auto s = MakeSession();
  s.Start();
  s.Feed("HELO 10.1.2.3\r\n");
  EXPECT_EQ(LastReply().substr(0, 3), "250");
  EXPECT_EQ(s.helo_kind(), HeloKind::kBareIp);
  s.Feed("EHLO [10.1.2.3]\r\n");
  EXPECT_EQ(s.helo_kind(), HeloKind::kAddressLiteral);
  s.Feed("EHLO mail.example.com\r\n");
  EXPECT_EQ(s.helo_kind(), HeloKind::kHostname);
  EXPECT_EQ(s.helo(), "mail.example.com");
  EXPECT_EQ(s.stats().helo_rejects, 0u);
}

}  // namespace
}  // namespace sams::smtp
