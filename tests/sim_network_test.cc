#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/simulator.h"

namespace sams::sim {
namespace {

using util::SimTime;

TEST(NetworkTest, SmallMessageTakesOneWayDelay) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.one_way_delay = SimTime::Millis(15);
  cfg.mb_per_sec = 1024.0;  // effectively infinite
  Network net(sim, cfg);
  SimTime at;
  net.Send(64, [&] { at = sim.Now(); });
  sim.Run();
  // 64 bytes at 1 GiB/s is < 100 ns; delay dominates.
  EXPECT_GE(at, SimTime::Millis(15));
  EXPECT_LT(at, SimTime::Millis(15) + SimTime::Micros(1));
}

TEST(NetworkTest, LargePayloadAddsSerialization) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.one_way_delay = SimTime::Millis(10);
  cfg.mb_per_sec = 1.0;
  Network net(sim, cfg);
  SimTime at;
  net.Send(1024 * 1024, [&] { at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(at, SimTime::Millis(10) + SimTime::Seconds(1));
}

TEST(NetworkTest, RttIsTwiceOneWay) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.one_way_delay = SimTime::Millis(15);
  Network net(sim, cfg);
  EXPECT_EQ(net.Rtt(), SimTime::Millis(30));
  EXPECT_EQ(net.OneWay(), SimTime::Millis(15));
}

TEST(NetworkTest, StatsCountMessagesAndBytes) {
  Simulator sim;
  Network net(sim, NetworkConfig{});
  net.Send(100, nullptr);
  net.Send(200, nullptr);
  sim.Run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 300u);
}

TEST(NetworkTest, MessagesDoNotQueueOnEachOther) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.one_way_delay = SimTime::Millis(15);
  cfg.mb_per_sec = 1024.0;
  Network net(sim, cfg);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) net.Send(64, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 10);
  // All arrive ~15 ms, not 10 * 15 ms.
  EXPECT_LT(sim.Now(), SimTime::Millis(16));
}

TEST(MachineTest, BundlesComponents) {
  Machine m;
  EXPECT_EQ(m.sim().Now().nanos(), 0);
  bool fired = false;
  m.net().Send(1, [&] { fired = true; });
  m.sim().Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(m.cpu().stats().bursts_completed, 0u);
  EXPECT_EQ(m.disk().stats().commits, 0u);
}

}  // namespace
}  // namespace sams::sim
