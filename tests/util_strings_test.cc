#include "util/logging.h"
#include "util/strings.h"

#include <gtest/gtest.h>

namespace sams::util {
namespace {

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToUpperAscii("Mail From"), "MAIL FROM");
  EXPECT_EQ(ToLowerAscii("RCPT To"), "rcpt to");
  EXPECT_EQ(ToUpperAscii("123!@#abc"), "123!@#ABC");
}

TEST(StringsTest, IEquals) {
  EXPECT_TRUE(IEquals("helo", "HELO"));
  EXPECT_TRUE(IEquals("", ""));
  EXPECT_FALSE(IEquals("helo", "ehlo"));
  EXPECT_FALSE(IEquals("helo", "hel"));
}

TEST(StringsTest, IStartsWith) {
  EXPECT_TRUE(IStartsWith("MAIL FROM:<a@b>", "mail from:"));
  EXPECT_TRUE(IStartsWith("rcpt to:<x>", "RCPT TO:"));
  EXPECT_FALSE(IStartsWith("RC", "RCPT"));
  EXPECT_TRUE(IStartsWith("anything", ""));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t x\t"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = Split("lonely", ';');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "lonely");
}

TEST(StringsTest, SplitEmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, IsPrintableAscii) {
  EXPECT_TRUE(IsPrintableAscii("Hello, World! ~"));
  EXPECT_FALSE(IsPrintableAscii("tab\there"));
  EXPECT_FALSE(IsPrintableAscii(std::string("nul\0byte", 8)));
  EXPECT_FALSE(IsPrintableAscii("\x80"));
  EXPECT_TRUE(IsPrintableAscii(""));
}

TEST(LoggingTest, SinkCapturesAtOrAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, const std::string& text) {
    captured.emplace_back(level, text);
  });
  SetLogLevel(LogLevel::kInfo);
  SAMS_LOG(kDebug) << "dropped";
  SAMS_LOG(kInfo) << "info " << 42;
  SAMS_LOG(kError) << "error!";
  SetLogLevel(LogLevel::kWarn);  // restore the test-suite default
  SetLogSink(nullptr);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("info 42"), std::string::npos);
  EXPECT_NE(captured[0].second.find("util_strings_test.cc"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace sams::util
