// Tests of the DNS wire codec and the real UDP DNSBL daemon — the
// DNSBLv6 scheme the paper emulated, here running over actual DNS
// datagrams on loopback.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "dnsbl/dns_wire.h"
#include "dnsbl/udp_daemon.h"
#include "util/rng.h"

namespace sams::dnsbl {
namespace {

using util::Ipv4;
using util::Prefix25;

TEST(DnsWireTest, QueryEncodeParseRoundTrip) {
  DnsQuery query;
  query.id = 0xBEEF;
  query.question.qname = "4.3.2.1.cbl.abuseat.org";
  query.question.qtype = QType::kA;
  auto wire = EncodeQuery(query);
  ASSERT_TRUE(wire.ok()) << wire.error().ToString();
  auto parsed = ParseQuery(wire->data(), wire->size());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed->id, 0xBEEF);
  EXPECT_EQ(parsed->question.qname, "4.3.2.1.cbl.abuseat.org");
  EXPECT_EQ(parsed->question.qtype, QType::kA);
}

TEST(DnsWireTest, ResponseEncodeParseRoundTripA) {
  DnsQuery query;
  query.id = 7;
  query.question.qname = "4.3.2.1.bl.test";
  query.question.qtype = QType::kA;
  DnsAnswer answer;
  answer.rdata = {127, 0, 0, 2};
  answer.ttl = 86'400;
  auto wire = EncodeResponse(query, answer);
  ASSERT_TRUE(wire.ok());
  auto parsed = ParseResponse(wire->data(), wire->size());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed->id, 7);
  EXPECT_EQ(parsed->rcode, RCode::kNoError);
  EXPECT_EQ(parsed->question.qname, "4.3.2.1.bl.test");
  ASSERT_EQ(parsed->answers.size(), 1u);
  EXPECT_EQ(parsed->answers[0].rdata, (std::vector<std::uint8_t>{127, 0, 0, 2}));
  EXPECT_EQ(parsed->answers[0].ttl, 86'400u);
}

TEST(DnsWireTest, NxDomainResponse) {
  DnsQuery query;
  query.id = 9;
  query.question.qname = "9.9.9.9.bl.test";
  query.question.qtype = QType::kA;
  DnsAnswer answer;
  answer.rcode = RCode::kNxDomain;
  auto wire = EncodeResponse(query, answer);
  ASSERT_TRUE(wire.ok());
  auto parsed = ParseResponse(wire->data(), wire->size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rcode, RCode::kNxDomain);
  EXPECT_TRUE(parsed->answers.empty());
}

TEST(DnsWireTest, BitmapRdataRoundTrip) {
  PrefixBitmap bitmap;
  bitmap.Set(0);
  bitmap.Set(63);
  bitmap.Set(127);
  const auto rdata = BitmapToRdata(bitmap);
  ASSERT_EQ(rdata.size(), 16u);
  auto back = RdataToBitmap(rdata);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bitmap);
}

TEST(DnsWireTest, ParseRejectsGarbage) {
  const std::uint8_t junk[] = {1, 2, 3};
  EXPECT_FALSE(ParseQuery(junk, sizeof(junk)).ok());
  EXPECT_FALSE(ParseResponse(junk, sizeof(junk)).ok());
  // A response is not a query and vice versa.
  DnsQuery query;
  query.question.qname = "a.b";
  auto wire = EncodeQuery(query);
  ASSERT_TRUE(wire.ok());
  EXPECT_FALSE(ParseResponse(wire->data(), wire->size()).ok());
}

TEST(DnsWireTest, RejectsOverlongLabels) {
  DnsQuery query;
  query.question.qname = std::string(64, 'a') + ".test";
  EXPECT_FALSE(EncodeQuery(query).ok());
  query.question.qname = "a..b";
  EXPECT_FALSE(EncodeQuery(query).ok());
}

class UdpDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Add(Ipv4(192, 0, 2, 10), 2);
    db_.Add(Ipv4(192, 0, 2, 55), 4);
    db_.Add(Ipv4(192, 0, 2, 200), 2);  // other /25 half
    daemon_ = std::make_unique<UdpDnsblDaemon>("bl.sams.test", db_);
    auto port = daemon_->Start();
    ASSERT_TRUE(port.ok()) << port.error().ToString();
    port_ = *port;
  }
  void TearDown() override { daemon_->Stop(); }

  BlacklistDb db_;
  std::unique_ptr<UdpDnsblDaemon> daemon_;
  std::uint16_t port_ = 0;
};

TEST_F(UdpDaemonTest, ClassicLookupListedAndClean) {
  UdpDnsblClient client(port_, "bl.sams.test");
  auto listed = client.QueryIp(Ipv4(192, 0, 2, 10));
  ASSERT_TRUE(listed.ok()) << listed.error().ToString();
  EXPECT_EQ(*listed, 2);
  auto listed4 = client.QueryIp(Ipv4(192, 0, 2, 55));
  ASSERT_TRUE(listed4.ok());
  EXPECT_EQ(*listed4, 4);
  auto clean = client.QueryIp(Ipv4(192, 0, 2, 11));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, 0);  // NXDOMAIN -> not listed
  EXPECT_EQ(daemon_->stats().ip_queries.load(), 3u);
  EXPECT_EQ(daemon_->stats().listed_answers.load(), 2u);
  EXPECT_EQ(daemon_->stats().nxdomain_answers.load(), 1u);
}

TEST_F(UdpDaemonTest, PrefixBitmapOverRealDns) {
  UdpDnsblClient client(port_, "bl.sams.test");
  // Lower /25 of 192.0.2.0/24: hosts 10 and 55 are listed.
  auto bitmap = client.QueryPrefix(Ipv4(192, 0, 2, 1));
  ASSERT_TRUE(bitmap.ok()) << bitmap.error().ToString();
  EXPECT_TRUE(bitmap->Test(10));
  EXPECT_TRUE(bitmap->Test(55));
  EXPECT_FALSE(bitmap->Test(11));
  EXPECT_EQ(bitmap->PopCount(), 2);
  // Upper /25: host 200 -> bit 72.
  auto upper = client.QueryPrefix(Ipv4(192, 0, 2, 129));
  ASSERT_TRUE(upper.ok());
  EXPECT_TRUE(upper->TestIp(Ipv4(192, 0, 2, 200)));
  EXPECT_EQ(upper->PopCount(), 1);
}

TEST_F(UdpDaemonTest, BitmapExactlyMatchesPerIpAnswersOverWire) {
  // The §7.1 exactness property, verified END TO END over real DNS:
  // one AAAA bitmap answer agrees with 128 individual A answers.
  UdpDnsblClient client(port_, "bl.sams.test");
  auto bitmap = client.QueryPrefix(Ipv4(192, 0, 2, 0));
  ASSERT_TRUE(bitmap.ok());
  for (int host = 0; host < 128; ++host) {
    auto code = client.QueryIp(Ipv4(192, 0, 2, static_cast<std::uint8_t>(host)));
    ASSERT_TRUE(code.ok()) << host;
    EXPECT_EQ(bitmap->Test(host), *code != 0) << "host " << host;
  }
}

TEST_F(UdpDaemonTest, UnknownZoneGetsNxDomain) {
  UdpDnsblClient client(port_, "other.zone");
  auto code = client.QueryIp(Ipv4(192, 0, 2, 10));
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 0);  // name doesn't parse under the daemon's zone
}

TEST_F(UdpDaemonTest, MalformedDatagramsIgnored) {
  // Poke the daemon with garbage; it must survive and keep serving.
  UdpDnsblClient client(port_, "bl.sams.test");
  {
    // Raw junk datagram.
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    const std::uint8_t junk[] = {0xde, 0xad, 0xbe};
    ::sendto(fd, junk, sizeof(junk), 0,
             reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  }
  auto listed = client.QueryIp(Ipv4(192, 0, 2, 10));
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, 2);
  EXPECT_GE(daemon_->stats().malformed.load(), 1u);
}

TEST_F(UdpDaemonTest, MalformedDatagramVariantsAllCountedAndSurvived) {
  // A zoo of datagrams that each fail a different ParseQuery check; the
  // daemon must count every one as malformed and keep serving.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  auto poke = [&](const std::vector<std::uint8_t>& datagram) {
    ::sendto(fd, datagram.data(), datagram.size(), 0,
             reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  };

  // Truncated header (11 of 12 bytes).
  poke({0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0});
  // Valid header, qdcount=1, but the question is missing entirely.
  poke({0, 2, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0});
  // qdcount=0 (parser demands exactly one question).
  poke({0, 3, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  // QR bit set: a response sent where a query belongs.
  poke({0, 4, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0,
        1, 'a', 0, 0, 1, 0, 1});
  // Compression pointer loop in the qname (points at itself).
  poke({0, 5, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0,
        0xc0, 12, 0, 1, 0, 1});
  // Label runs off the end of the packet.
  poke({0, 6, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0,
        9, 'a', 'b'});
  // Good name, unsupported qclass (CH=3).
  poke({0, 7, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0,
        1, 'a', 4, 't', 'e', 's', 't', 0, 0, 1, 0, 3});
  // Good name, unsupported qtype (TXT=16).
  poke({0, 8, 0x01, 0, 0, 1, 0, 0, 0, 0, 0, 0,
        1, 'a', 4, 't', 'e', 's', 't', 0, 0, 16, 0, 1});
  ::close(fd);

  // A real query still round-trips, so none of the garbage wedged the
  // serve loop; every variant above was counted.
  UdpDnsblClient client(port_, "bl.sams.test");
  auto listed = client.QueryIp(Ipv4(192, 0, 2, 10));
  ASSERT_TRUE(listed.ok()) << listed.error().ToString();
  EXPECT_EQ(*listed, 2);
  EXPECT_EQ(daemon_->stats().malformed.load(), 8u);
  EXPECT_EQ(daemon_->stats().queries.load(), 1u);
}

TEST_F(UdpDaemonTest, ClientSkipsForgedAndAlienDatagrams) {
  // An off-path attacker races the daemon: a socket that learns the
  // client's source port from the daemon side can't exist off-path, so
  // model the attack as garbage + wrong-id datagrams arriving first.
  // The client must skip them and return the genuine answer.
  // A proxy daemon port: receive the client's query, inject noise back
  // to the client first, then forward the real answer.
  int proxy = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(proxy, 0);
  struct sockaddr_in any {};
  any.sin_family = AF_INET;
  any.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  any.sin_port = 0;
  ASSERT_EQ(::bind(proxy, reinterpret_cast<struct sockaddr*>(&any),
                   sizeof(any)), 0);
  struct sockaddr_in bound {};
  socklen_t bound_len = sizeof(bound);
  ASSERT_EQ(::getsockname(proxy, reinterpret_cast<struct sockaddr*>(&bound),
                          &bound_len), 0);

  std::thread attacker([&] {
    std::uint8_t buf[1500];
    struct sockaddr_in client_addr {};
    socklen_t client_len = sizeof(client_addr);
    const ssize_t n =
        ::recvfrom(proxy, buf, sizeof(buf), 0,
                   reinterpret_cast<struct sockaddr*>(&client_addr),
                   &client_len);
    ASSERT_GT(n, 0);
    auto query = ParseQuery(buf, static_cast<std::size_t>(n));
    ASSERT_TRUE(query.ok());

    // 1: unparsable junk. 2: well-formed "not listed" answer with the
    // WRONG id. 3: right id, wrong question name. All must be skipped.
    const std::uint8_t junk[] = {0xff, 0xfe};
    ::sendto(proxy, junk, sizeof(junk), 0,
             reinterpret_cast<struct sockaddr*>(&client_addr), client_len);
    DnsQuery forged = *query;
    forged.id = static_cast<std::uint16_t>(query->id + 1);
    DnsAnswer nx;
    nx.rcode = RCode::kNxDomain;
    auto wrong_id = EncodeResponse(forged, nx);
    ASSERT_TRUE(wrong_id.ok());
    ::sendto(proxy, wrong_id->data(), wrong_id->size(), 0,
             reinterpret_cast<struct sockaddr*>(&client_addr), client_len);
    DnsQuery alien = *query;
    alien.question.qname = "9.9.9.9.bl.sams.test";
    auto wrong_name = EncodeResponse(alien, nx);
    ASSERT_TRUE(wrong_name.ok());
    ::sendto(proxy, wrong_name->data(), wrong_name->size(), 0,
             reinterpret_cast<struct sockaddr*>(&client_addr), client_len);

    // Finally the genuine listed answer.
    DnsAnswer real;
    real.rdata = {127, 0, 0, 2};
    real.ttl = 60;
    auto genuine = EncodeResponse(*query, real);
    ASSERT_TRUE(genuine.ok());
    ::sendto(proxy, genuine->data(), genuine->size(), 0,
             reinterpret_cast<struct sockaddr*>(&client_addr), client_len);
  });

  UdpDnsblClient client(ntohs(bound.sin_port), "bl.sams.test");
  auto listed = client.QueryIp(Ipv4(192, 0, 2, 10));
  attacker.join();
  ::close(proxy);
  ASSERT_TRUE(listed.ok()) << listed.error().ToString();
  EXPECT_EQ(*listed, 2);
  EXPECT_EQ(client.mismatched(), 3u);
}

TEST_F(UdpDaemonTest, ClientTimesOutWithoutAnAnswer) {
  // A bound-but-silent port: the client must give up at its deadline.
  int silent = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(silent, 0);
  struct sockaddr_in any {};
  any.sin_family = AF_INET;
  any.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(silent, reinterpret_cast<struct sockaddr*>(&any),
                   sizeof(any)), 0);
  struct sockaddr_in bound {};
  socklen_t bound_len = sizeof(bound);
  ASSERT_EQ(::getsockname(silent, reinterpret_cast<struct sockaddr*>(&bound),
                          &bound_len), 0);
  UdpDnsblClient client(ntohs(bound.sin_port), "bl.sams.test",
                        /*timeout_ms=*/80);
  const auto start = std::chrono::steady_clock::now();
  auto result = client.QueryIp(Ipv4(192, 0, 2, 10));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ::close(silent);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(), 70);
}

TEST_F(UdpDaemonTest, ResponseDelayHoldsAnswersBackInParallel) {
  UdpDnsblDaemon slow("slow.bl.test", db_, /*ttl_seconds=*/3600,
                      /*response_delay_ms=*/60);
  auto port = slow.Start();
  ASSERT_TRUE(port.ok());
  // Two concurrent queries each see ~the delay, not 2x: the serve loop
  // keeps receiving while answers age in the delay queue.
  const auto start = std::chrono::steady_clock::now();
  std::thread other([&] {
    UdpDnsblClient client(*port, "slow.bl.test");
    auto code = client.QueryIp(Ipv4(192, 0, 2, 55));
    EXPECT_TRUE(code.ok());
  });
  UdpDnsblClient client(*port, "slow.bl.test");
  auto code = client.QueryIp(Ipv4(192, 0, 2, 10));
  other.join();
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  slow.Stop();
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 2);
  EXPECT_GE(elapsed_ms, 55);
  EXPECT_LT(elapsed_ms, 118);  // well under 2x the delay
}

TEST_F(UdpDaemonTest, ManyQueriesStressAndDeterministicAnswers) {
  UdpDnsblClient client(port_, "bl.sams.test");
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Ipv4 ip(192, 0, 2, static_cast<std::uint8_t>(rng.UniformInt(0, 255)));
    auto code = client.QueryIp(ip);
    ASSERT_TRUE(code.ok()) << i;
    EXPECT_EQ(*code, db_.Lookup(ip));
  }
  EXPECT_EQ(daemon_->stats().queries.load(), 200u);
}

}  // namespace
}  // namespace sams::dnsbl
