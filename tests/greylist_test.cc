// GreylistStore unit tests: the postgrey-style triple state machine
// (new → too-early → pass → whitelisted → expired), per-component
// triple identity, the LRU bound, and cross-thread coherence on one
// shared store. Clock-agnostic: every Check takes explicit now_ns.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rep/greylist.h"
#include "util/ipv4.h"

namespace sams::rep {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000LL;

util::Prefix24 Net(std::uint8_t c) {
  return util::Prefix24(util::Ipv4(10, 0, c, 0));
}

GreylistConfig TestConfig() {
  GreylistConfig cfg;
  cfg.min_retry_ns = 60 * kSecond;
  cfg.max_window_ns = 3600 * kSecond;
  cfg.pass_ttl_ns = 7200 * kSecond;
  return cfg;
}

TEST(GreylistStoreTest, FirstSightingDefers) {
  GreylistStore store(TestConfig());
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", kSecond),
            GreylistOutcome::kNew);
  EXPECT_TRUE(GreylistDefers(GreylistOutcome::kNew));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().first_sightings.load(), 1u);
}

TEST(GreylistStoreTest, RetryBeforeMinRetryDefersAgain) {
  GreylistStore store(TestConfig());
  store.Check(Net(0), "a@b.test", "c@d.test", kSecond);
  // A bot hammering the triple two seconds later is not a queue run.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 3 * kSecond),
            GreylistOutcome::kTooEarly);
  // Hammering must not push the window forward: a retry measured from
  // the FIRST sighting still passes.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 62 * kSecond),
            GreylistOutcome::kPass);
}

TEST(GreylistStoreTest, RetryInsideWindowPassesThenWhitelists) {
  GreylistStore store(TestConfig());
  store.Check(Net(0), "a@b.test", "c@d.test", kSecond);
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 300 * kSecond),
            GreylistOutcome::kPass);
  EXPECT_FALSE(GreylistDefers(GreylistOutcome::kPass));
  // Every later sighting inside pass_ttl rides the whitelist.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 301 * kSecond),
            GreylistOutcome::kWhitelisted);
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 7000 * kSecond),
            GreylistOutcome::kWhitelisted);
}

TEST(GreylistStoreTest, RetryAfterWindowRestartsTheCycle) {
  GreylistStore store(TestConfig());
  store.Check(Net(0), "a@b.test", "c@d.test", kSecond);
  // 2 h later: outside max_window, the first sighting went stale.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 7200 * kSecond),
            GreylistOutcome::kExpired);
  EXPECT_TRUE(GreylistDefers(GreylistOutcome::kExpired));
  // The expired sighting re-seeded the cycle: an in-window retry from
  // that point passes.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 7300 * kSecond),
            GreylistOutcome::kPass);
}

TEST(GreylistStoreTest, WhitelistTtlRunsOut) {
  GreylistStore store(TestConfig());
  store.Check(Net(0), "a@b.test", "c@d.test", kSecond);
  store.Check(Net(0), "a@b.test", "c@d.test", 300 * kSecond);  // kPass
  // pass_ttl runs from the pass (expires at 300 + 7200): still inside.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 7000 * kSecond),
            GreylistOutcome::kWhitelisted);
  // Past the whitelist's end: back to square one.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 8000 * kSecond),
            GreylistOutcome::kExpired);
}

TEST(GreylistStoreTest, TripleComponentsAreIndependent) {
  GreylistStore store(TestConfig());
  store.Check(Net(0), "a@b.test", "c@d.test", kSecond);
  // Change any one component and it is a different triple.
  EXPECT_EQ(store.Check(Net(1), "a@b.test", "c@d.test", kSecond),
            GreylistOutcome::kNew);
  EXPECT_EQ(store.Check(Net(0), "x@b.test", "c@d.test", kSecond),
            GreylistOutcome::kNew);
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "y@d.test", kSecond),
            GreylistOutcome::kNew);
  EXPECT_EQ(store.size(), 4u);
  // Hosts inside one /24 share the triple (bots rotate last octets).
  EXPECT_EQ(store.Check(util::Prefix24(util::Ipv4(10, 0, 0, 77)), "a@b.test",
                        "c@d.test", 2 * kSecond),
            GreylistOutcome::kTooEarly);
}

TEST(GreylistStoreTest, CapacityBoundEvictsLru) {
  GreylistConfig cfg = TestConfig();
  cfg.capacity = 4;
  cfg.lock_shards = 1;
  GreylistStore store(cfg);
  for (int i = 0; i < 8; ++i) {
    store.Check(Net(static_cast<std::uint8_t>(i)), "a@b.test", "c@d.test",
                kSecond);
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.stats().evictions.load(), 4u);
  // An evicted triple's retry reads as new — it defers again, which is
  // the safe failure direction for a bounded store.
  EXPECT_EQ(store.Check(Net(0), "a@b.test", "c@d.test", 300 * kSecond),
            GreylistOutcome::kNew);
}

TEST(GreylistStoreTest, ConcurrentChecksStaySane) {
  // Shards race on the same triple: exactly one thread may win the
  // first sighting, and counters must balance (TSan via the `threads`
  // ctest label).
  GreylistStore store(TestConfig());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::vector<GreylistOutcome>> outcomes(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &outcomes, t] {
      for (int i = 0; i < kPerThread; ++i) {
        outcomes[t].push_back(store.Check(
            Net(static_cast<std::uint8_t>(i % 16)), "a@b.test", "c@d.test",
            kSecond + i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::uint64_t news = 0;
  for (const auto& per_thread : outcomes) {
    for (GreylistOutcome o : per_thread) {
      if (o == GreylistOutcome::kNew) ++news;
    }
  }
  // 16 distinct triples → exactly 16 first sightings across all
  // threads; everything else inside the min_retry window is too-early.
  EXPECT_EQ(news, 16u);
  EXPECT_EQ(store.size(), 16u);
  EXPECT_EQ(store.stats().checks.load(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(store.stats().first_sightings.load() +
                store.stats().too_early.load(),
            store.stats().checks.load());
}

}  // namespace
}  // namespace sams::rep
