#include "mfs/sim_store.h"

#include <gtest/gtest.h>

#include "fskit/fs_model.h"
#include "sim/disk.h"
#include "sim/simulator.h"

namespace sams::mfs {
namespace {

using util::SimTime;

struct Rig {
  explicit Rig(const fskit::FsModel& model)
      : disk(sim, DiskCfg()), fs(disk, model) {}

  static sim::DiskConfig DiskCfg() {
    sim::DiskConfig cfg;
    cfg.commit_base = SimTime::Millis(5);
    cfg.write_mb_per_sec = 50.0;
    return cfg;
  }

  // Delivers `mails` mails sequentially and returns total sim time.
  SimTime RunSequential(SimMailStore& store, int mails, std::uint64_t bytes,
                        int nrcpts) {
    for (int i = 0; i < mails; ++i) {
      bool done = false;
      store.Deliver(bytes, nrcpts, [&] { done = true; });
      sim.Run();
      EXPECT_TRUE(done);
    }
    return sim.Now();
  }

  sim::Simulator sim;
  sim::Disk disk;
  fskit::SimFs fs;
};

TEST(SimStoreTest, FactoryKnowsAllLayouts) {
  fskit::Ext3Model model;
  sim::Simulator sim;
  sim::Disk disk(sim, {});
  fskit::SimFs fs(disk, model);
  for (const char* layout : {"mbox", "maildir", "hardlink", "mfs"}) {
    auto store = MakeSimStore(layout, fs);
    ASSERT_NE(store, nullptr) << layout;
    EXPECT_EQ(store->name(), layout);
  }
  EXPECT_EQ(MakeSimStore("zfs", fs), nullptr);
}

TEST(SimStoreTest, MboxWritesBodyPerRecipient) {
  fskit::Ext3Model model;
  Rig rig(model);
  SimMboxStore store(rig.fs);
  bool done = false;
  store.Deliver(8000, 15, [&] { done = true; });
  rig.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.fs.stats().appends, 15u);
  EXPECT_EQ(rig.fs.stats().logical_bytes, 15u * 8000u);
  EXPECT_EQ(rig.fs.stats().files_created, 0u);
}

TEST(SimStoreTest, MfsWritesBodyOnce) {
  fskit::Ext3Model model;
  Rig rig(model);
  SimMfsStore store(rig.fs);
  store.Deliver(8000, 15, nullptr);
  rig.sim.Run();
  // One body append + 1 shared key tuple + 15 redirects.
  EXPECT_EQ(rig.fs.stats().appends, 17u);
  EXPECT_LT(rig.fs.stats().logical_bytes, 8000u + 17u * 44u + 1);
}

TEST(SimStoreTest, MaildirCreatesFilePerRecipient) {
  fskit::Ext3Model model;
  Rig rig(model);
  SimMaildirStore store(rig.fs);
  store.Deliver(8000, 15, nullptr);
  rig.sim.Run();
  EXPECT_EQ(rig.fs.stats().files_created, 15u);
  EXPECT_EQ(rig.fs.stats().renames, 15u);
}

TEST(SimStoreTest, HardlinkCreatesOnceLinksN) {
  fskit::Ext3Model model;
  Rig rig(model);
  SimHardlinkStore store(rig.fs);
  store.Deliver(8000, 15, nullptr);
  rig.sim.Run();
  EXPECT_EQ(rig.fs.stats().files_created, 1u);
  EXPECT_EQ(rig.fs.stats().hard_links, 15u);
  EXPECT_EQ(rig.fs.stats().deletes, 1u);
}

// The Figure 10 ordering on Ext3: MFS > mbox > hardlink ~ maildir.
TEST(SimStoreOrderingTest, Ext3At15Recipients) {
  fskit::Ext3Model model;
  std::map<std::string, double> elapsed;
  for (const char* layout : {"mbox", "maildir", "hardlink", "mfs"}) {
    Rig rig(model);
    auto store = MakeSimStore(layout, rig.fs);
    elapsed[layout] =
        rig.RunSequential(*store, 50, 8000, 15).seconds();
  }
  EXPECT_LT(elapsed["mfs"], elapsed["mbox"]);
  EXPECT_LT(elapsed["mbox"], elapsed["hardlink"]);
  EXPECT_LT(elapsed["mbox"], elapsed["maildir"]);
}

// The Figure 11 change on Reiser: hardlink recovers dramatically
// (cheap links/creates) while MFS stays fastest.
TEST(SimStoreOrderingTest, ReiserHardlinkRecovers) {
  fskit::Ext3Model ext3;
  fskit::ReiserModel reiser;
  double hardlink_ext3, hardlink_reiser, mfs_reiser, maildir_reiser;
  {
    Rig rig(ext3);
    SimHardlinkStore store(rig.fs);
    hardlink_ext3 = rig.RunSequential(store, 50, 8000, 15).seconds();
  }
  {
    Rig rig(reiser);
    SimHardlinkStore store(rig.fs);
    hardlink_reiser = rig.RunSequential(store, 50, 8000, 15).seconds();
  }
  {
    Rig rig(reiser);
    SimMfsStore store(rig.fs);
    mfs_reiser = rig.RunSequential(store, 50, 8000, 15).seconds();
  }
  {
    Rig rig(reiser);
    SimMaildirStore store(rig.fs);
    maildir_reiser = rig.RunSequential(store, 50, 8000, 15).seconds();
  }
  EXPECT_LT(hardlink_reiser, hardlink_ext3 / 2);  // "improves significantly"
  EXPECT_LT(mfs_reiser, hardlink_reiser);          // MFS still wins
  EXPECT_GT(maildir_reiser, mfs_reiser * 2);       // maildir still worst
}

TEST(SimStoreTest, GroupCommitBatchesConcurrentDeliveries) {
  fskit::Ext3Model model;
  Rig rig(model);
  SimMboxStore store(rig.fs);
  int done = 0;
  // 20 deliveries issued at the same instant: group commit should
  // complete them in ~1 commit, far faster than 20 sequential ones.
  for (int i = 0; i < 20; ++i) store.Deliver(5000, 1, [&] { ++done; });
  rig.sim.Run();
  EXPECT_EQ(done, 20);
  EXPECT_LT(rig.sim.Now().millis(), 20.0);  // not 20 * commit_base
  EXPECT_EQ(store.mails_delivered(), 20u);
}

}  // namespace
}  // namespace sams::mfs
