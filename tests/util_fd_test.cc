#include "util/fd.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

namespace sams::util {
namespace {

TEST(UniqueFdTest, DefaultInvalid) {
  UniqueFd fd;
  EXPECT_FALSE(fd.valid());
  EXPECT_EQ(fd.get(), -1);
}

TEST(UniqueFdTest, ClosesOnDestruction) {
  int raw;
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    UniqueFd a(fds[0]), b(fds[1]);
    raw = fds[0];
    EXPECT_TRUE(a.valid());
  }
  // fd should now be closed: fcntl fails with EBADF.
  EXPECT_EQ(::fcntl(raw, F_GETFD), -1);
}

TEST(UniqueFdTest, MoveTransfersOwnership) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd a(fds[0]);
  UniqueFd c(fds[1]);
  UniqueFd b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.get(), fds[0]);
}

TEST(UniqueFdTest, ReleaseDetaches) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  UniqueFd b(fds[1]);
  int raw;
  {
    UniqueFd a(fds[0]);
    raw = a.Release();
    EXPECT_FALSE(a.valid());
  }
  // Still open after destruction because ownership was released.
  EXPECT_NE(::fcntl(raw, F_GETFD), -1);
  ::close(raw);
}

TEST(SocketPairTest, BidirectionalBytes) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok()) << pair.error().ToString();
  auto& [a, b] = *pair;
  const std::string msg = "ping";
  ASSERT_TRUE(WriteAll(a.get(), msg.data(), msg.size()).ok());
  char buf[4];
  ASSERT_TRUE(ReadAll(b.get(), buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "ping");
}

TEST(FdPassingTest, TransfersDescriptorAndPayload) {
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  auto payload_pipe = MakeSocketPair();
  ASSERT_TRUE(payload_pipe.ok());

  // Send one end of payload_pipe across the channel, as the
  // fork-after-trust master does with an accepted client socket.
  const std::string task = "ip=1.2.3.4 from=<s@x> rcpt=<u@y>";
  ASSERT_TRUE(
      SendFdWithPayload(channel->first.get(), payload_pipe->second.get(), task)
          .ok());

  auto received = RecvFdWithPayload(channel->second.get());
  ASSERT_TRUE(received.ok()) << received.error().ToString();
  EXPECT_EQ(received->payload, task);
  ASSERT_TRUE(received->fd.valid());

  // The transferred descriptor must be live: write through the original
  // end, read from the received duplicate.
  const std::string probe = "hello-through-scm-rights";
  ASSERT_TRUE(WriteAll(payload_pipe->first.get(), probe.data(), probe.size()).ok());
  std::string got(probe.size(), '\0');
  ASSERT_TRUE(ReadAll(received->fd.get(), got.data(), got.size()).ok());
  EXPECT_EQ(got, probe);
}

TEST(FdPassingTest, MultipleTasksQueueOnChannel) {
  // The paper's master batches several delegated tasks into one worker
  // socket (vector sends, §5.3); each recvmsg must pop exactly one.
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());

  constexpr int kTasks = 5;
  std::vector<UniqueFd> keep;
  for (int i = 0; i < kTasks; ++i) {
    auto p = MakeSocketPair();
    ASSERT_TRUE(p.ok());
    const std::string task = "task-" + std::to_string(i);
    ASSERT_TRUE(
        SendFdWithPayload(channel->first.get(), p->second.get(), task).ok());
    keep.push_back(std::move(p->first));
    keep.push_back(std::move(p->second));
  }
  for (int i = 0; i < kTasks; ++i) {
    auto r = RecvFdWithPayload(channel->second.get());
    ASSERT_TRUE(r.ok()) << r.error().ToString();
    EXPECT_EQ(r->payload, "task-" + std::to_string(i));
    EXPECT_TRUE(r->fd.valid());
  }
}

TEST(FdPassingTest, EofReportsUnavailable) {
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  channel->first.Reset();  // close writer
  auto r = RecvFdWithPayload(channel->second.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kUnavailable);
}

TEST(FdPassingTest, EmptyPayloadRejected) {
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  EXPECT_EQ(SendFdWithPayload(channel->first.get(), 0, "").code(),
            ErrorCode::kInvalidArgument);
}

TEST(FdPassingTest, CrossThreadDelegation) {
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  auto data_pair = MakeSocketPair();
  ASSERT_TRUE(data_pair.ok());

  std::thread worker([fd = channel->second.get()] {
    auto r = RecvFdWithPayload(fd);
    ASSERT_TRUE(r.ok());
    // Echo a confirmation through the delegated socket.
    const std::string ack = "250 OK";
    ASSERT_TRUE(WriteAll(r->fd.get(), ack.data(), ack.size()).ok());
  });

  ASSERT_TRUE(SendFdWithPayload(channel->first.get(), data_pair->second.get(),
                                "delegate")
                  .ok());
  char buf[6];
  ASSERT_TRUE(ReadAll(data_pair->first.get(), buf, 6).ok());
  EXPECT_EQ(std::string(buf, 6), "250 OK");
  worker.join();
}

TEST(FdPassingFaultTest, LargePayloadSurvivesPartialSendmsg) {
  // Shrink the channel's socket buffers so the first sendmsg can only
  // accept part of the frame: the length-prefix framing and the
  // continuation sends must reassemble the task intact, with the
  // descriptor from the first message.
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  const int small = 4 * 1024;
  ASSERT_EQ(::setsockopt(channel->first.get(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  ASSERT_EQ(::setsockopt(channel->second.get(), SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);
  auto data_pair = MakeSocketPair();
  ASSERT_TRUE(data_pair.ok());

  // Far larger than the shrunken buffers (kernel doubles the value, so
  // go well past 2x).
  std::string big(256 * 1024, 'x');
  for (std::size_t i = 0; i < big.size(); i += 977) big[i] = 'A' + (i % 26);

  std::thread receiver([fd = channel->second.get(), &big] {
    auto r = RecvFdWithPayload(fd);
    ASSERT_TRUE(r.ok()) << r.error().ToString();
    EXPECT_TRUE(r->fd.valid());
    EXPECT_EQ(r->payload.size(), big.size());
    EXPECT_EQ(r->payload, big);
  });
  ASSERT_TRUE(
      SendFdWithPayload(channel->first.get(), data_pair->second.get(), big)
          .ok());
  receiver.join();
}

TEST(FdPassingFaultTest, QueuedTasksKeepBoundariesUnderSmallBuffers) {
  // Several back-to-back frames over a tiny-buffer channel: receiver
  // pops them concurrently; every boundary must hold.
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  const int small = 4 * 1024;
  ASSERT_EQ(::setsockopt(channel->first.get(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  constexpr int kTasks = 8;
  std::vector<std::string> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::string(20'000 + 1'000 * i, static_cast<char>('a' + i)));
  }
  std::thread receiver([fd = channel->second.get(), &tasks] {
    for (const std::string& want : tasks) {
      auto r = RecvFdWithPayload(fd);
      ASSERT_TRUE(r.ok()) << r.error().ToString();
      EXPECT_TRUE(r->fd.valid());
      EXPECT_EQ(r->payload, want);
    }
  });
  std::vector<UniqueFd> keep;
  for (const std::string& task : tasks) {
    auto p = MakeSocketPair();
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(
        SendFdWithPayload(channel->first.get(), p->second.get(), task).ok());
    keep.push_back(std::move(p->first));
    keep.push_back(std::move(p->second));
  }
  receiver.join();
}

TEST(FdPassingFaultTest, DeadReceiverYieldsUnavailableNotSigpipe) {
  // The master's worker-death detection depends on getting EPIPE back
  // as kUnavailable — not on the process dying of SIGPIPE.
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  auto data_pair = MakeSocketPair();
  ASSERT_TRUE(data_pair.ok());
  channel->second.Reset();  // the "worker" is gone
  const Error err = SendFdWithPayload(channel->first.get(),
                                      data_pair->second.get(), "task");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kUnavailable);
}

TEST(FdPassingFaultTest, OversizePayloadRejectedBySender) {
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  const std::string too_big(kMaxFdPayload + 1, 'x');
  EXPECT_EQ(SendFdWithPayload(channel->first.get(), 0, too_big).code(),
            ErrorCode::kInvalidArgument);
}

TEST(FdPassingFaultTest, ReceiverBoundsDeclaredLength) {
  // A frame whose declared length exceeds the receiver's cap must be
  // rejected as a protocol error, not trusted into a huge allocation.
  auto channel = MakeSocketPair();
  ASSERT_TRUE(channel.ok());
  auto data_pair = MakeSocketPair();
  ASSERT_TRUE(data_pair.ok());
  const std::string task(2'000, 'y');
  ASSERT_TRUE(
      SendFdWithPayload(channel->first.get(), data_pair->second.get(), task)
          .ok());
  auto r = RecvFdWithPayload(channel->second.get(), /*max_payload=*/1'000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kProtocolError);
}

TEST(SendAllTest, DeadPeerYieldsUnavailableNotSigpipe) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  pair->second.Reset();  // client slammed the connection
  const std::string reply = "250 OK\r\n";
  const Error err = SendAll(pair->first.get(), reply.data(), reply.size());
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kUnavailable);
}

TEST(SendAllTest, FullNonBlockingBufferGivesUpInsteadOfParking) {
  // A reply path must never wait indefinitely for a peer that stopped
  // draining: EAGAIN is "give up on this client".
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair->first.get()).ok());
  const int small = 4 * 1024;
  ::setsockopt(pair->first.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  const std::string chunk(64 * 1024, 'z');
  Error err = OkError();
  for (int i = 0; i < 64 && err.ok(); ++i) {
    err = SendAll(pair->first.get(), chunk.data(), chunk.size());
  }
  ASSERT_FALSE(err.ok()) << "send never hit the full buffer";
  EXPECT_EQ(err.code(), ErrorCode::kUnavailable);
}

TEST(SetNonBlockingTest, SetsFlag) {
  auto pair = MakeSocketPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SetNonBlocking(pair->first.get()).ok());
  const int flags = ::fcntl(pair->first.get(), F_GETFL, 0);
  EXPECT_TRUE(flags & O_NONBLOCK);
}

}  // namespace
}  // namespace sams::util
