#include "smtp/address.h"

#include <gtest/gtest.h>

namespace sams::smtp {
namespace {

TEST(AddressTest, ParsesSimpleAddress) {
  auto a = Address::Parse("alice@example.edu");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->local(), "alice");
  EXPECT_EQ(a->domain(), "example.edu");
  EXPECT_EQ(a->ToString(), "alice@example.edu");
}

TEST(AddressTest, ParsesDotsAndSpecials) {
  EXPECT_TRUE(Address::Parse("first.last@cs.example.edu").has_value());
  EXPECT_TRUE(Address::Parse("user+tag@example.com").has_value());
  EXPECT_TRUE(Address::Parse("o'brien@example.ie").has_value());
  EXPECT_TRUE(Address::Parse("x_1-2=3@host-name.org").has_value());
}

TEST(AddressTest, RejectsMalformed) {
  EXPECT_FALSE(Address::Parse("").has_value());
  EXPECT_FALSE(Address::Parse("nodomain").has_value());
  EXPECT_FALSE(Address::Parse("@example.com").has_value());
  EXPECT_FALSE(Address::Parse("user@").has_value());
  EXPECT_FALSE(Address::Parse(".leadingdot@x.com").has_value());
  EXPECT_FALSE(Address::Parse("trailingdot.@x.com").has_value());
  EXPECT_FALSE(Address::Parse("double..dot@x.com").has_value());
  EXPECT_FALSE(Address::Parse("user@.leadingdot.com").has_value());
  EXPECT_FALSE(Address::Parse("user@dom..com").has_value());
  EXPECT_FALSE(Address::Parse("sp ace@x.com").has_value());
  EXPECT_FALSE(Address::Parse("user@under_score.com").has_value());
}

TEST(AddressTest, RejectsOverlongLocalPart) {
  const std::string long_local(65, 'a');
  EXPECT_FALSE(Address::Parse(long_local + "@x.com").has_value());
  const std::string ok_local(64, 'a');
  EXPECT_TRUE(Address::Parse(ok_local + "@x.com").has_value());
}

TEST(AddressTest, LastAtSignSplits) {
  // "a@b@c.com" — RFC allows quoted @; we take the last @ as separator
  // and then reject the local part containing a bare @.
  EXPECT_FALSE(Address::Parse("a@b@c.com").has_value());
}

TEST(PathTest, ParsesBracketedAddress) {
  auto p = Path::Parse("<bob@example.org>");
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->IsNull());
  EXPECT_EQ(p->address().ToString(), "bob@example.org");
  EXPECT_EQ(p->ToString(), "<bob@example.org>");
}

TEST(PathTest, ParsesNullPath) {
  auto p = Path::Parse("<>");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->IsNull());
  EXPECT_EQ(p->ToString(), "<>");
}

TEST(PathTest, TrimsWhitespace) {
  auto p = Path::Parse("  <bob@example.org>  ");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->address().local(), "bob");
}

TEST(PathTest, RejectsUnbracketed) {
  EXPECT_FALSE(Path::Parse("bob@example.org").has_value());
  EXPECT_FALSE(Path::Parse("<bob@example.org").has_value());
  EXPECT_FALSE(Path::Parse("bob@example.org>").has_value());
  EXPECT_FALSE(Path::Parse("").has_value());
  EXPECT_FALSE(Path::Parse("<").has_value());
}

TEST(PathTest, RejectsSourceRoutes) {
  EXPECT_FALSE(Path::Parse("<@relay.com:bob@example.org>").has_value());
}

TEST(PathTest, Equality) {
  EXPECT_EQ(*Path::Parse("<a@b.com>"), *Path::Parse("<a@b.com>"));
  EXPECT_NE(*Path::Parse("<a@b.com>"), *Path::Parse("<c@b.com>"));
  EXPECT_EQ(*Path::Parse("<>"), Path());
}

}  // namespace
}  // namespace sams::smtp
