#include "smtp/reply.h"

#include <gtest/gtest.h>

namespace sams::smtp {
namespace {

TEST(ReplyTest, SerializeFormatsCodeTextCrlf) {
  Reply r{ReplyCode::kOk, "Ok"};
  EXPECT_EQ(r.Serialize(), "250 Ok\r\n");
}

TEST(ReplyTest, Classification) {
  EXPECT_TRUE((Reply{ReplyCode::kOk, ""}).IsPositive());
  EXPECT_TRUE((Reply{ReplyCode::kStartMailInput, ""}).IsPositive());
  EXPECT_FALSE((Reply{ReplyCode::kUserUnknown, ""}).IsPositive());
  EXPECT_TRUE((Reply{ReplyCode::kUserUnknown, ""}).IsPermanentFailure());
  EXPECT_TRUE((Reply{ReplyCode::kMailboxBusy, ""}).IsTransientFailure());
  EXPECT_FALSE((Reply{ReplyCode::kMailboxBusy, ""}).IsPermanentFailure());
}

TEST(ParseReplyTest, ParsesSimpleReply) {
  Reply r;
  ASSERT_TRUE(ParseReply("250 Ok\r\n", &r));
  EXPECT_EQ(r.code, ReplyCode::kOk);
  EXPECT_EQ(r.text, "Ok");
}

TEST(ParseReplyTest, ParsesWithoutCrlf) {
  Reply r;
  ASSERT_TRUE(ParseReply("550 User unknown", &r));
  EXPECT_EQ(r.code, ReplyCode::kUserUnknown);
  EXPECT_EQ(r.text, "User unknown");
}

TEST(ParseReplyTest, ParsesBareCode) {
  Reply r;
  ASSERT_TRUE(ParseReply("221", &r));
  EXPECT_EQ(r.code, ReplyCode::kClosing);
  EXPECT_EQ(r.text, "");
}

TEST(ParseReplyTest, DetectsContinuation) {
  Reply r;
  bool more = false;
  ASSERT_TRUE(ParseReply("250-PIPELINING\r\n", &r, &more));
  EXPECT_TRUE(more);
  ASSERT_TRUE(ParseReply("250 DSN\r\n", &r, &more));
  EXPECT_FALSE(more);
}

TEST(ParseReplyTest, RejectsGarbage) {
  Reply r;
  EXPECT_FALSE(ParseReply("", &r));
  EXPECT_FALSE(ParseReply("ab", &r));
  EXPECT_FALSE(ParseReply("2x0 Ok", &r));
  EXPECT_FALSE(ParseReply("199 too low", &r));
  EXPECT_FALSE(ParseReply("600 too high", &r));
  EXPECT_FALSE(ParseReply("250_bad separator", &r));
}

TEST(CannedRepliesTest, BounceReplyIs550) {
  const Reply r = UserUnknownReply("ghost@example.edu");
  EXPECT_EQ(r.code, ReplyCode::kUserUnknown);
  EXPECT_NE(r.text.find("ghost@example.edu"), std::string::npos);
  EXPECT_NE(r.text.find("User unknown"), std::string::npos);
}

TEST(CannedRepliesTest, BannerAndByeCarryHostname) {
  EXPECT_NE(BannerReply("mx.purdue.test").text.find("mx.purdue.test"),
            std::string::npos);
  EXPECT_EQ(BannerReply("h").code, ReplyCode::kServiceReady);
  EXPECT_EQ(ByeReply("h").code, ReplyCode::kClosing);
}

TEST(CannedRepliesTest, BlacklistedReplyNamesZone) {
  const Reply r = BlacklistedReply("1.2.3.4", "cbl.abuseat.org");
  EXPECT_EQ(r.code, ReplyCode::kTransactionFailed);
  EXPECT_NE(r.text.find("cbl.abuseat.org"), std::string::npos);
  EXPECT_NE(r.text.find("1.2.3.4"), std::string::npos);
}

TEST(CannedRepliesTest, RoundTripThroughParse) {
  for (const Reply& canned :
       {OkReply(), StartMailInputReply(), SyntaxErrorReply(),
        TooManyRecipientsReply(), MessageTooBigReply()}) {
    Reply parsed;
    ASSERT_TRUE(ParseReply(canned.Serialize(), &parsed));
    EXPECT_EQ(parsed.code, canned.code);
    EXPECT_EQ(parsed.text, canned.text);
  }
}

}  // namespace
}  // namespace sams::smtp
