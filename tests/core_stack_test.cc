// Tests of core::ServerStack — the §8 composition with ablation
// switches.
#include <gtest/gtest.h>

#include "core/server_stack.h"
#include "mta/drivers.h"
#include "trace/synthetic.h"

namespace sams::core {
namespace {

using util::Ipv4;
using util::SimTime;

std::vector<Ipv4> SomeListedIps() {
  std::vector<Ipv4> ips;
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    ips.push_back(Ipv4(static_cast<std::uint32_t>(rng.NextU64())));
  }
  return ips;
}

std::vector<trace::SessionSpec> SomeTrace(double bounce_ratio = 0.3) {
  trace::BounceSweepConfig cfg;
  cfg.n_sessions = 3'000;
  cfg.bounce_ratio = bounce_ratio;
  return trace::MakeBounceSweepTrace(cfg);
}

TEST(ServerStackTest, DescribeNamesTheConfiguration) {
  const auto listed = SomeListedIps();
  {
    StackConfig cfg;
    ServerStack stack(cfg, listed);
    EXPECT_EQ(stack.Describe(), "fork-after-trust + MFS + prefix-DNSBL");
  }
  {
    StackConfig cfg;
    cfg.hybrid_concurrency = false;
    cfg.mfs_store = false;
    cfg.prefix_dnsbl = false;
    ServerStack stack(cfg, listed);
    EXPECT_EQ(stack.Describe(), "process-per-conn + mbox + ip-DNSBL");
  }
  {
    StackConfig cfg;
    cfg.dnsbl_enabled = false;
    ServerStack stack(cfg, listed);
    EXPECT_EQ(stack.Describe(), "fork-after-trust + MFS");
    EXPECT_EQ(stack.resolver(), nullptr);
  }
}

TEST(ServerStackTest, StoreFollowsSwitch) {
  const auto listed = SomeListedIps();
  StackConfig cfg;
  cfg.mfs_store = true;
  ServerStack mfs_stack(cfg, listed);
  EXPECT_EQ(mfs_stack.store().name(), "mfs");
  cfg.mfs_store = false;
  ServerStack mbox_stack(cfg, listed);
  EXPECT_EQ(mbox_stack.store().name(), "mbox");
}

TEST(ServerStackTest, ResolverModeFollowsSwitch) {
  const auto listed = SomeListedIps();
  StackConfig cfg;
  cfg.prefix_dnsbl = true;
  ServerStack prefix_stack(cfg, listed);
  ASSERT_NE(prefix_stack.resolver(), nullptr);
  EXPECT_EQ(prefix_stack.resolver()->mode(), dnsbl::CacheMode::kPrefixCache);
  cfg.prefix_dnsbl = false;
  ServerStack ip_stack(cfg, listed);
  EXPECT_EQ(ip_stack.resolver()->mode(), dnsbl::CacheMode::kIpCache);
}

TEST(ServerStackTest, RunsAWorkloadEndToEnd) {
  const auto listed = SomeListedIps();
  const auto sessions = SomeTrace();
  StackConfig cfg;
  cfg.unfinished_hold = SimTime::MillisF(100);
  ServerStack stack(cfg, listed);
  const auto result =
      mta::RunClosedLoop(stack.machine(), stack.server(), sessions, 100,
                         SimTime::Seconds(5), SimTime::Seconds(20),
                         stack.resolver());
  EXPECT_GT(result.goodput_mails_per_sec, 10.0);
  EXPECT_GT(result.mails_delivered, 0u);
  EXPECT_GT(result.bounce_sessions, 0u);
  EXPECT_GT(result.dns_queries, 0u);
}

TEST(ServerStackTest, DeterministicAcrossRuns) {
  const auto listed = SomeListedIps();
  const auto sessions = SomeTrace();
  auto run = [&] {
    StackConfig cfg;
    ServerStack stack(cfg, listed);
    return mta::RunClosedLoop(stack.machine(), stack.server(), sessions, 100,
                              SimTime::Seconds(5), SimTime::Seconds(15),
                              stack.resolver());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.mails_delivered, b.mails_delivered);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.dns_queries, b.dns_queries);
}

TEST(ServerStackTest, PrewarmRaisesHitRatio) {
  const auto listed = SomeListedIps();
  const auto sessions = SomeTrace(0.0);
  StackConfig cfg;
  ServerStack cold(cfg, listed);
  ServerStack warm(cfg, listed);
  warm.PrewarmResolver(sessions);
  // Re-looking-up the same trace: warm stack answers from cache.
  std::uint64_t cold_queries = 0, warm_queries = 0;
  for (const auto& session : sessions) {
    cold.resolver()->Lookup(session.client_ip, session.arrival);
    warm.resolver()->Lookup(session.client_ip, session.arrival);
  }
  cold_queries = cold.resolver()->stats().dns_queries_sent;
  warm_queries = warm.resolver()->stats().dns_queries_sent;
  // Warm did the prewarm queries once, then everything hit.
  EXPECT_GT(warm.resolver()->stats().HitRatio(), 0.45);
  EXPECT_EQ(warm_queries, cold_queries);  // same unique misses overall
}

TEST(ServerStackTest, FullStackBeatsVanillaOnBouncyWorkload) {
  const auto listed = SomeListedIps();
  const auto sessions = SomeTrace(0.5);
  auto goodput = [&](bool spam_aware) {
    StackConfig cfg;
    cfg.hybrid_concurrency = spam_aware;
    cfg.mfs_store = spam_aware;
    cfg.prefix_dnsbl = spam_aware;
    ServerStack stack(cfg, listed);
    return mta::RunClosedLoop(stack.machine(), stack.server(), sessions, 300,
                              SimTime::Seconds(5), SimTime::Seconds(20),
                              stack.resolver())
        .goodput_mails_per_sec;
  };
  EXPECT_GT(goodput(true), goodput(false) * 1.05);
}

}  // namespace
}  // namespace sams::core
