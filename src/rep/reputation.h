// sams::rep — the pre-trust reputation engine (DESIGN.md §12).
//
// Turns the first-valid-RCPT gate from a binary DNSBL check into a
// weighted verdict: accept / greylist-defer (450) / reject (554). The
// score combines point-in-time dialog evidence (the async DNSBL
// verdict, pregreet and pipelining violations, HELO anomalies, command
// ordering and error counts, inter-command timing — the botnet
// SMTP-conversation features of Bazydło et al., arXiv 1903.11400) with
// aggregated per-/24 history in the spirit of Menahem & Puzis (arXiv
// 1205.1357): every verdict reinforces its source network's bucket,
// and buckets decay exponentially so a network that stops misbehaving
// earns its way back. (IPv6 would key on /64; the stack is IPv4-only
// today, so Prefix24 is the one granularity wired.)
//
// The history cache reuses the ConcurrentPrefixCache machinery shape:
// sharded mutexes picked by multiplicative prefix hash, per-lock-shard
// LRU bound, TTL expiry on probe. It is shared across all reactor
// shards, so evidence a hostile /24 leaves on shard 0 raises the score
// shard 3 sees on the very next connection.
//
// Fault posture: the history store is advisory. Both store fault
// points (rep.store.error, rep.store.delay) fail OPEN — a dark store
// yields a degraded verdict computed from dialog evidence alone, and
// degraded verdicts are never written back (a fault must not poison
// the cache or, via missing ham credit, penalize a clean network).
//
// Clock-agnostic: every entry point takes explicit now_ns, so the real
// server drives it with MonotonicNanos and the simulation with
// SimTime.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "rep/greylist.h"
#include "util/ipv4.h"

namespace sams::rep {

// Per-feature score contributions. Calibration anchor: a listed DNSBL
// host alone must clear reject_threshold (the PR-5 behaviour is a
// strict subset of this engine), and one soft anomaly alone must stay
// under greylist_threshold so ordinary sloppy-but-legitimate senders
// pass untouched.
struct RepWeights {
  double dnsbl = 4.0;          // async DNSBL verdict: listed
  double pregreet = 3.0;       // talked before the 220 banner
  double pipeline = 1.5;       // pipelined commands before trust
  double helo_bare_ip = 1.0;   // HELO argument is a naked IP
  double helo_malformed = 1.5; // HELO argument failed validation
  double bad_sequence = 0.75;  // per out-of-order command (503)
  double syntax_error = 0.5;   // per 500/501 drawn pre-trust
  double error_cap = 2.0;      // ceiling on the summed error terms
  double fast_talker = 1.0;    // inter-command gap under min_cmd_gap
  double history = 1.0;        // multiplier on the decayed /24 bucket
};

struct RepConfig {
  bool enabled = false;
  RepWeights weights;
  // score >= reject_threshold  -> 554 reject
  // score >= greylist_threshold -> greylist triple-store decides
  double greylist_threshold = 2.0;
  double reject_threshold = 4.0;

  // /24 history bucket dynamics.
  std::int64_t history_half_life_ns = 600LL * 1000 * 1000 * 1000;  // 10 min
  std::int64_t history_ttl_ns = 2LL * 3600 * 1000 * 1000 * 1000;   // 2 h idle
  std::size_t history_capacity = 65536;
  std::size_t lock_shards = 16;
  double hostile_delta = 1.0;    // bucket delta on a reject verdict
  double greylist_delta = 0.25;  // bucket delta on a greylist verdict
  double ham_delta = -0.5;       // bucket delta on accept (ham credit)
  double history_max = 8.0;      // bucket clamp, so one /24 can't
  double history_min = -4.0;     //   saturate or bank unlimited credit

  // Inter-command gap under this marks a fast talker; 0 disables the
  // feature (loopback tests would all trip it).
  std::int64_t min_cmd_gap_ns = 0;

  GreylistConfig greylist;
};

// Dialog evidence gathered by the transport up to the first valid
// RCPT; the engine itself never touches sockets or sessions.
struct DialogFeatures {
  bool dnsbl_listed = false;
  bool dnsbl_degraded = false;  // DNSBL verdict itself was fail-open
  bool pregreet = false;
  std::uint32_t pipelined = 0;       // commands read ahead of replies
  bool helo_bare_ip = false;
  bool helo_malformed = false;
  std::uint32_t syntax_errors = 0;   // 500/501 replies drawn so far
  std::uint32_t bad_sequence = 0;    // 503 replies drawn so far
  std::int64_t min_cmd_gap_ns = -1;  // smallest observed gap; -1 unknown
};

enum class Verdict { kAccept, kGreylist, kReject };
const char* VerdictName(Verdict verdict);

struct Evaluation {
  Verdict verdict = Verdict::kAccept;
  double score = 0.0;
  double history = 0.0;  // decayed bucket value folded into score
  bool degraded = false;  // history store was dark; nothing written back
  GreylistOutcome greylist = GreylistOutcome::kNew;  // when consulted
  bool greylist_consulted = false;
};

struct RepStats {
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> accepts{0};
  std::atomic<std::uint64_t> greylists{0};
  std::atomic<std::uint64_t> rejects{0};
  std::atomic<std::uint64_t> degraded{0};      // store-dark evaluations
  std::atomic<std::uint64_t> history_hits{0};  // bucket present & fresh
  std::atomic<std::uint64_t> expirations{0};
  std::atomic<std::uint64_t> evictions{0};
};

// One /24 bucket as exported by Snapshot (admin GET /reputation).
struct BucketSnapshot {
  util::Prefix24 net;
  double score = 0.0;        // decayed to now_ns
  std::int64_t age_ns = 0;   // since the bucket was created
  std::int64_t idle_ns = 0;  // since the last reinforcement
  std::uint64_t accepts = 0;
  std::uint64_t greylists = 0;
  std::uint64_t rejects = 0;
};

class ReputationEngine {
 public:
  explicit ReputationEngine(RepConfig cfg);

  ReputationEngine(const ReputationEngine&) = delete;
  ReputationEngine& operator=(const ReputationEngine&) = delete;

  // Full gate evaluation at the first valid RCPT. Reads (and, unless
  // degraded, reinforces) the client's /24 bucket, consults the
  // greylist store when the score lands in the greylist band, and
  // returns the verdict the transport should act on.
  Evaluation Evaluate(util::Ipv4 client, const DialogFeatures& features,
                      const std::string& mail_from, const std::string& rcpt,
                      std::int64_t now_ns);

  // History-only gate for transports with no dialog evidence (the
  // simulation stack): DNSBL flag + decayed /24 bucket, no greylist.
  Evaluation GateOnHistory(util::Ipv4 client, bool dnsbl_listed,
                           std::int64_t now_ns);

  // Post-hoc reinforcement from outcomes the gate could not see
  // (delivered ham, bounce storms): adds `delta` to the /24 bucket.
  void RecordOutcome(util::Ipv4 client, double delta, std::int64_t now_ns);

  // Read-only decayed bucket value; 0 when absent/expired/dark.
  double HistoryScore(util::Ipv4 client, std::int64_t now_ns);

  // Top-N buckets by decayed score (admin endpoint / tests).
  std::vector<BucketSnapshot> Snapshot(std::size_t top_n,
                                       std::int64_t now_ns) const;
  std::string SnapshotJson(std::size_t top_n, std::int64_t now_ns) const;

  GreylistStore& greylist() { return greylist_; }
  const RepStats& stats() const { return stats_; }
  const RepConfig& config() const { return cfg_; }
  std::size_t history_size() const;

  // Publishes sams_rep_* metrics (live counters + size gauges).
  void BindMetrics(obs::Registry& registry);

 private:
  struct Bucket {
    double score = 0.0;
    std::int64_t created_ns = 0;
    std::int64_t updated_ns = 0;
    std::uint64_t accepts = 0;
    std::uint64_t greylists = 0;
    std::uint64_t rejects = 0;
    std::list<util::Prefix24>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<util::Prefix24, Bucket> map;
    std::list<util::Prefix24> lru;  // front = most recently used
  };

  Shard& ShardFor(util::Prefix24 net) {
    const std::uint64_t h = net.value() * 0x9E3779B97F4A7C15ULL;
    return shards_[(h >> 32) & shard_mask_];
  }
  const Shard& ShardFor(util::Prefix24 net) const {
    const std::uint64_t h = net.value() * 0x9E3779B97F4A7C15ULL;
    return shards_[(h >> 32) & shard_mask_];
  }

  double DecayedScore(const Bucket& b, std::int64_t now_ns) const;

  // Loads the decayed bucket value. Returns false when the store is
  // dark (fault injected): the caller must treat the evaluation as
  // degraded — score without history, write nothing back.
  bool LoadHistory(util::Prefix24 net, std::int64_t now_ns, double* out);

  // Applies `delta` (clamped) and bumps the per-verdict counter.
  // Returns false (no-op) when the store is dark.
  bool ReinforceBucket(util::Prefix24 net, double delta, Verdict verdict,
                       std::int64_t now_ns);

  double FeatureScore(const DialogFeatures& f) const;
  Verdict VerdictFor(double score) const;

  RepConfig cfg_;
  std::size_t capacity_per_shard_;  // 0 = unbounded
  std::size_t shard_mask_;
  std::vector<Shard> shards_;
  GreylistStore greylist_;
  RepStats stats_;
};

}  // namespace sams::rep
