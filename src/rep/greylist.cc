#include "rep/greylist.h"

namespace sams::rep {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// FNV-1a, seeded per component so (net, from, rcpt) and a permutation
// of the same bytes hash apart.
std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

const char* GreylistOutcomeName(GreylistOutcome outcome) {
  switch (outcome) {
    case GreylistOutcome::kNew: return "new";
    case GreylistOutcome::kTooEarly: return "too_early";
    case GreylistOutcome::kPass: return "pass";
    case GreylistOutcome::kWhitelisted: return "whitelisted";
    case GreylistOutcome::kExpired: return "expired";
  }
  return "?";
}

GreylistStore::GreylistStore(GreylistConfig cfg) : cfg_(cfg) {
  const std::size_t n = RoundUpPow2(cfg_.lock_shards == 0 ? 1 : cfg_.lock_shards);
  shard_mask_ = n - 1;
  shards_ = std::vector<Shard>(n);
  capacity_per_shard_ = cfg_.capacity == 0 ? 0 : (cfg_.capacity + n - 1) / n;
}

std::uint64_t GreylistStore::TripleKey(util::Prefix24 net,
                                       const std::string& mail_from,
                                       const std::string& rcpt) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const std::uint32_t nv = net.value();
  h = Fnv1a(h, &nv, sizeof(nv));
  h = Fnv1a(h, mail_from.data(), mail_from.size());
  h = Fnv1a(h, "\x1f", 1);  // separator: ("ab","c") != ("a","bc")
  h = Fnv1a(h, rcpt.data(), rcpt.size());
  return h;
}

GreylistOutcome GreylistStore::Check(util::Prefix24 net,
                                     const std::string& mail_from,
                                     const std::string& rcpt,
                                     std::int64_t now_ns) {
  stats_.checks.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t key = TripleKey(net, mail_from, rcpt);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);

  auto record_new = [&](Entry& e) {
    e.first_seen_ns = now_ns;
    e.expires_ns = now_ns + cfg_.max_window_ns;
    e.passed = false;
  };

  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    if (capacity_per_shard_ != 0 && shard.map.size() >= capacity_per_shard_ &&
        !shard.lru.empty()) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(key);
    Entry e;
    record_new(e);
    e.lru_pos = shard.lru.begin();
    shard.map.emplace(key, e);
    stats_.first_sightings.fetch_add(1, std::memory_order_relaxed);
    return GreylistOutcome::kNew;
  }

  Entry& e = it->second;
  shard.lru.splice(shard.lru.begin(), shard.lru, e.lru_pos);

  if (e.passed) {
    if (now_ns < e.expires_ns) {
      stats_.whitelisted_hits.fetch_add(1, std::memory_order_relaxed);
      return GreylistOutcome::kWhitelisted;
    }
    record_new(e);  // whitelist TTL ran out: cycle restarts
    stats_.expirations.fetch_add(1, std::memory_order_relaxed);
    return GreylistOutcome::kExpired;
  }

  const std::int64_t elapsed = now_ns - e.first_seen_ns;
  if (elapsed < cfg_.min_retry_ns) {
    stats_.too_early.fetch_add(1, std::memory_order_relaxed);
    return GreylistOutcome::kTooEarly;
  }
  if (elapsed <= cfg_.max_window_ns) {
    e.passed = true;
    e.expires_ns = now_ns + cfg_.pass_ttl_ns;
    stats_.passes.fetch_add(1, std::memory_order_relaxed);
    return GreylistOutcome::kPass;
  }
  record_new(e);  // window missed entirely: treat as new
  stats_.expirations.fetch_add(1, std::memory_order_relaxed);
  return GreylistOutcome::kExpired;
}

std::size_t GreylistStore::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.map.size();
  }
  return n;
}

void GreylistStore::BindMetrics(obs::Registry& registry) {
  auto& checks = registry.GetCounter("sams_rep_greylist_checks_total",
                                     "Greylist triple lookups");
  auto& first = registry.GetCounter("sams_rep_greylist_first_total",
                                    "Triples deferred on first sighting");
  auto& early = registry.GetCounter("sams_rep_greylist_too_early_total",
                                    "Retries re-deferred (before min_retry)");
  auto& passes = registry.GetCounter("sams_rep_greylist_passes_total",
                                     "Triples promoted by an in-window retry");
  auto& white = registry.GetCounter("sams_rep_greylist_whitelisted_total",
                                    "Checks answered by a passed triple");
  auto& expired = registry.GetCounter("sams_rep_greylist_expired_total",
                                      "Triples whose window or pass TTL lapsed");
  auto& evict = registry.GetCounter("sams_rep_greylist_evictions_total",
                                    "LRU entries displaced when full");
  auto& sz = registry.GetGauge("sams_rep_greylist_entries",
                               "Live greylist triples");
  registry.AddCollector([this, &checks, &first, &early, &passes, &white,
                         &expired, &evict, &sz] {
    checks.Overwrite(stats_.checks.load(std::memory_order_relaxed));
    first.Overwrite(stats_.first_sightings.load(std::memory_order_relaxed));
    early.Overwrite(stats_.too_early.load(std::memory_order_relaxed));
    passes.Overwrite(stats_.passes.load(std::memory_order_relaxed));
    white.Overwrite(stats_.whitelisted_hits.load(std::memory_order_relaxed));
    expired.Overwrite(stats_.expirations.load(std::memory_order_relaxed));
    evict.Overwrite(stats_.evictions.load(std::memory_order_relaxed));
    sz.Set(static_cast<double>(size()));
  });
}

}  // namespace sams::rep
