#include "rep/reputation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fault/injector.h"

namespace sams::rep {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendNum(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccept: return "accept";
    case Verdict::kGreylist: return "greylist";
    case Verdict::kReject: return "reject";
  }
  return "?";
}

ReputationEngine::ReputationEngine(RepConfig cfg)
    : cfg_(cfg), greylist_(cfg.greylist) {
  const std::size_t n =
      RoundUpPow2(cfg_.lock_shards == 0 ? 1 : cfg_.lock_shards);
  shard_mask_ = n - 1;
  shards_ = std::vector<Shard>(n);
  capacity_per_shard_ =
      cfg_.history_capacity == 0 ? 0 : (cfg_.history_capacity + n - 1) / n;
}

double ReputationEngine::DecayedScore(const Bucket& b,
                                      std::int64_t now_ns) const {
  const std::int64_t idle = now_ns - b.updated_ns;
  if (idle <= 0 || cfg_.history_half_life_ns <= 0) return b.score;
  const double halves =
      static_cast<double>(idle) / static_cast<double>(cfg_.history_half_life_ns);
  return b.score * std::exp2(-halves);
}

bool ReputationEngine::LoadHistory(util::Prefix24 net, std::int64_t now_ns,
                                   double* out) {
  *out = 0.0;
  // kDelay policies sleep inside Hit and return OK; kError makes the
  // store dark for this evaluation (fail-open, handled by the caller).
  if (!SAMS_FAULT_ERROR("rep.store.delay").ok() ||
      !SAMS_FAULT_ERROR("rep.store.error").ok()) {
    return false;
  }
  Shard& shard = ShardFor(net);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(net);
  if (it == shard.map.end()) return true;
  Bucket& b = it->second;
  if (cfg_.history_ttl_ns > 0 && now_ns - b.updated_ns > cfg_.history_ttl_ns) {
    shard.lru.erase(b.lru_pos);
    shard.map.erase(it);
    stats_.expirations.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, b.lru_pos);
  stats_.history_hits.fetch_add(1, std::memory_order_relaxed);
  *out = DecayedScore(b, now_ns);
  return true;
}

bool ReputationEngine::ReinforceBucket(util::Prefix24 net, double delta,
                                       Verdict verdict, std::int64_t now_ns) {
  if (!SAMS_FAULT_ERROR("rep.store.delay").ok() ||
      !SAMS_FAULT_ERROR("rep.store.error").ok()) {
    return false;
  }
  Shard& shard = ShardFor(net);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(net);
  if (it == shard.map.end()) {
    // Nothing to decay away and nothing to credit: don't materialize a
    // bucket just to hold ham credit for a network we've never flagged.
    if (delta <= 0.0) return true;
    if (capacity_per_shard_ != 0 && shard.map.size() >= capacity_per_shard_ &&
        !shard.lru.empty()) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(net);
    Bucket b;
    b.created_ns = now_ns;
    b.lru_pos = shard.lru.begin();
    it = shard.map.emplace(net, b).first;
  } else {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  }
  Bucket& b = it->second;
  b.score = std::clamp(DecayedScore(b, now_ns) + delta, cfg_.history_min,
                       cfg_.history_max);
  b.updated_ns = now_ns;
  switch (verdict) {
    case Verdict::kAccept: ++b.accepts; break;
    case Verdict::kGreylist: ++b.greylists; break;
    case Verdict::kReject: ++b.rejects; break;
  }
  return true;
}

double ReputationEngine::FeatureScore(const DialogFeatures& f) const {
  const RepWeights& w = cfg_.weights;
  double score = 0.0;
  if (f.dnsbl_listed) score += w.dnsbl;
  if (f.pregreet) score += w.pregreet;
  if (f.pipelined > 0) score += w.pipeline;
  if (f.helo_malformed) {
    score += w.helo_malformed;
  } else if (f.helo_bare_ip) {
    score += w.helo_bare_ip;
  }
  const double errors = std::min(
      f.syntax_errors * w.syntax_error + f.bad_sequence * w.bad_sequence,
      w.error_cap);
  score += errors;
  if (cfg_.min_cmd_gap_ns > 0 && f.min_cmd_gap_ns >= 0 &&
      f.min_cmd_gap_ns < cfg_.min_cmd_gap_ns) {
    score += w.fast_talker;
  }
  return score;
}

Verdict ReputationEngine::VerdictFor(double score) const {
  if (score >= cfg_.reject_threshold) return Verdict::kReject;
  if (score >= cfg_.greylist_threshold) return Verdict::kGreylist;
  return Verdict::kAccept;
}

Evaluation ReputationEngine::Evaluate(util::Ipv4 client,
                                      const DialogFeatures& features,
                                      const std::string& mail_from,
                                      const std::string& rcpt,
                                      std::int64_t now_ns) {
  stats_.evaluations.fetch_add(1, std::memory_order_relaxed);
  const util::Prefix24 net(client);

  Evaluation ev;
  ev.score = FeatureScore(features);

  double history = 0.0;
  ev.degraded = !LoadHistory(net, now_ns, &history);
  if (!ev.degraded) {
    ev.history = history;
    ev.score += cfg_.weights.history * history;
  }

  ev.verdict = VerdictFor(ev.score);

  if (ev.verdict == Verdict::kGreylist) {
    // The triple store has the final say inside the greylist band: a
    // sender that already proved it retries is let through.
    ev.greylist = greylist_.Check(net, mail_from, rcpt, now_ns);
    ev.greylist_consulted = true;
    if (!GreylistDefers(ev.greylist)) ev.verdict = Verdict::kAccept;
  }

  if (ev.degraded) {
    // Fail-open bookkeeping only: nothing cached, no reinforcement.
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
  } else {
    const double delta = ev.verdict == Verdict::kReject ? cfg_.hostile_delta
                         : ev.verdict == Verdict::kGreylist
                             ? cfg_.greylist_delta
                             : cfg_.ham_delta;
    ReinforceBucket(net, delta, ev.verdict, now_ns);
  }

  switch (ev.verdict) {
    case Verdict::kAccept:
      stats_.accepts.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kGreylist:
      stats_.greylists.fetch_add(1, std::memory_order_relaxed);
      break;
    case Verdict::kReject:
      stats_.rejects.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return ev;
}

Evaluation ReputationEngine::GateOnHistory(util::Ipv4 client,
                                           bool dnsbl_listed,
                                           std::int64_t now_ns) {
  stats_.evaluations.fetch_add(1, std::memory_order_relaxed);
  Evaluation ev;
  if (dnsbl_listed) ev.score += cfg_.weights.dnsbl;
  double history = 0.0;
  ev.degraded = !LoadHistory(util::Prefix24(client), now_ns, &history);
  if (!ev.degraded) {
    ev.history = history;
    ev.score += cfg_.weights.history * history;
  } else {
    stats_.degraded.fetch_add(1, std::memory_order_relaxed);
  }
  // No dialog evidence, no envelope: reject-or-accept only.
  ev.verdict = ev.score >= cfg_.reject_threshold ? Verdict::kReject
                                                 : Verdict::kAccept;
  if (ev.verdict == Verdict::kReject) {
    stats_.rejects.fetch_add(1, std::memory_order_relaxed);
    if (!ev.degraded) {
      ReinforceBucket(util::Prefix24(client), cfg_.hostile_delta, ev.verdict,
                      now_ns);
    }
  } else {
    stats_.accepts.fetch_add(1, std::memory_order_relaxed);
  }
  return ev;
}

void ReputationEngine::RecordOutcome(util::Ipv4 client, double delta,
                                     std::int64_t now_ns) {
  const Verdict v = delta > 0 ? Verdict::kReject : Verdict::kAccept;
  ReinforceBucket(util::Prefix24(client), delta, v, now_ns);
}

double ReputationEngine::HistoryScore(util::Ipv4 client, std::int64_t now_ns) {
  double h = 0.0;
  LoadHistory(util::Prefix24(client), now_ns, &h);
  return h;
}

std::size_t ReputationEngine::history_size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.map.size();
  }
  return n;
}

std::vector<BucketSnapshot> ReputationEngine::Snapshot(
    std::size_t top_n, std::int64_t now_ns) const {
  std::vector<BucketSnapshot> all;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [net, b] : s.map) {
      BucketSnapshot snap;
      snap.net = net;
      snap.score = DecayedScore(b, now_ns);
      snap.age_ns = now_ns - b.created_ns;
      snap.idle_ns = now_ns - b.updated_ns;
      snap.accepts = b.accepts;
      snap.greylists = b.greylists;
      snap.rejects = b.rejects;
      all.push_back(snap);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const BucketSnapshot& a, const BucketSnapshot& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.net.value() < b.net.value();
            });
  if (top_n != 0 && all.size() > top_n) all.resize(top_n);
  return all;
}

std::string ReputationEngine::SnapshotJson(std::size_t top_n,
                                           std::int64_t now_ns) const {
  const std::vector<BucketSnapshot> buckets = Snapshot(top_n, now_ns);
  std::string out = "{\"history_size\":";
  out += std::to_string(history_size());
  out += ",\"greylist_size\":";
  out += std::to_string(greylist_.size());
  out += ",\"buckets\":[";
  bool first = true;
  for (const BucketSnapshot& b : buckets) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"net\":\"";
    AppendJsonEscaped(&out, b.net.ToString());
    out += "\",\"score\":";
    AppendNum(&out, b.score);
    out += ",\"age_s\":";
    AppendNum(&out, static_cast<double>(b.age_ns) / 1e9);
    out += ",\"idle_s\":";
    AppendNum(&out, static_cast<double>(b.idle_ns) / 1e9);
    out += ",\"accepts\":";
    out += std::to_string(b.accepts);
    out += ",\"greylists\":";
    out += std::to_string(b.greylists);
    out += ",\"rejects\":";
    out += std::to_string(b.rejects);
    out += "}";
  }
  out += "]}";
  return out;
}

void ReputationEngine::BindMetrics(obs::Registry& registry) {
  auto& evals = registry.GetCounter("sams_rep_evaluations_total",
                                    "Reputation gate evaluations");
  auto& accepts = registry.GetCounter("sams_rep_verdicts_total",
                                      "Gate verdicts by kind",
                                      {{"verdict", "accept"}});
  auto& greys = registry.GetCounter("sams_rep_verdicts_total",
                                    "Gate verdicts by kind",
                                    {{"verdict", "greylist"}});
  auto& rejects = registry.GetCounter("sams_rep_verdicts_total",
                                      "Gate verdicts by kind",
                                      {{"verdict", "reject"}});
  auto& degraded = registry.GetCounter(
      "sams_rep_degraded_total",
      "Evaluations completed fail-open with the history store dark");
  auto& hits = registry.GetCounter("sams_rep_history_hits_total",
                                   "History lookups answered by a live bucket");
  auto& expired = registry.GetCounter("sams_rep_history_expired_total",
                                      "Buckets dropped on TTL at probe");
  auto& evict = registry.GetCounter("sams_rep_history_evictions_total",
                                    "Buckets displaced by the LRU bound");
  auto& sz = registry.GetGauge("sams_rep_history_buckets",
                               "Live /24 reputation buckets");
  registry.AddCollector([this, &evals, &accepts, &greys, &rejects, &degraded,
                         &hits, &expired, &evict, &sz] {
    evals.Overwrite(stats_.evaluations.load(std::memory_order_relaxed));
    accepts.Overwrite(stats_.accepts.load(std::memory_order_relaxed));
    greys.Overwrite(stats_.greylists.load(std::memory_order_relaxed));
    rejects.Overwrite(stats_.rejects.load(std::memory_order_relaxed));
    degraded.Overwrite(stats_.degraded.load(std::memory_order_relaxed));
    hits.Overwrite(stats_.history_hits.load(std::memory_order_relaxed));
    expired.Overwrite(stats_.expirations.load(std::memory_order_relaxed));
    evict.Overwrite(stats_.evictions.load(std::memory_order_relaxed));
    sz.Set(static_cast<double>(history_size()));
  });
  greylist_.BindMetrics(registry);
}

}  // namespace sams::rep
