// sams::rep greylist triple-store (DESIGN.md §12).
//
// Classic postgrey-style greylisting adapted to the pre-trust gate: a
// triple (client /24, MAIL FROM, first RCPT) seen for the first time is
// deferred with 450, a legitimate MTA retries after its queue delay and
// passes, and a botnet sender — which almost never retries — simply
// never comes back. The store is shared across reactor shards, so it is
// thread-safe the same way ConcurrentPrefixCache is: sharded mutexes
// chosen by triple hash, each lock shard keeping an LRU list so a
// hostile sweep of random envelopes cannot grow the table without
// bound. Clock-agnostic: every call takes explicit now_ns, so the
// simulation can drive it on virtual time.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/ipv4.h"

namespace sams::rep {

struct GreylistConfig {
  // Retries earlier than this after the first sighting are re-deferred
  // (a retry inside seconds is a bot hammering, not a queue run).
  std::int64_t min_retry_ns = 60LL * 1000 * 1000 * 1000;  // 60 s
  // Retries later than this restart the cycle: the triple is treated
  // as new again and re-deferred.
  std::int64_t max_window_ns = 4LL * 3600 * 1000 * 1000 * 1000;  // 4 h
  // How long a passed triple stays whitelisted (no further deferrals).
  std::int64_t pass_ttl_ns = 24LL * 3600 * 1000 * 1000 * 1000;  // 24 h
  std::size_t capacity = 65536;  // total entries across lock shards; 0 = unbounded
  std::size_t lock_shards = 16;  // rounded up to a power of two
};

// What Check() decided about a triple. kNew / kTooEarly / kExpired all
// mean "defer with 450"; kPass / kWhitelisted mean "let it through".
enum class GreylistOutcome {
  kNew,          // first sighting recorded, defer
  kTooEarly,     // retry before min_retry, defer again
  kPass,         // retry inside [min_retry, max_window] — promoted
  kWhitelisted,  // previously passed, still inside pass_ttl
  kExpired,      // window or whitelist TTL ran out, cycle restarts
};

const char* GreylistOutcomeName(GreylistOutcome outcome);

inline bool GreylistDefers(GreylistOutcome o) {
  return o == GreylistOutcome::kNew || o == GreylistOutcome::kTooEarly ||
         o == GreylistOutcome::kExpired;
}

struct GreylistStats {
  std::atomic<std::uint64_t> checks{0};
  std::atomic<std::uint64_t> first_sightings{0};
  std::atomic<std::uint64_t> too_early{0};
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> whitelisted_hits{0};
  std::atomic<std::uint64_t> expirations{0};
  std::atomic<std::uint64_t> evictions{0};
};

class GreylistStore {
 public:
  explicit GreylistStore(GreylistConfig cfg);

  GreylistStore(const GreylistStore&) = delete;
  GreylistStore& operator=(const GreylistStore&) = delete;

  // Looks up and advances the triple's state machine in one shot (the
  // two are inseparable: a first sighting must be recorded atomically
  // with the decision to defer, or two shards racing on the same
  // triple would both answer kNew).
  GreylistOutcome Check(util::Prefix24 net, const std::string& mail_from,
                        const std::string& rcpt, std::int64_t now_ns);

  std::size_t size() const;
  const GreylistStats& stats() const { return stats_; }

  // Publishes sams_rep_greylist_* counters (live totals).
  void BindMetrics(obs::Registry& registry);

 private:
  struct Entry {
    std::int64_t first_seen_ns = 0;
    std::int64_t expires_ns = 0;  // window end, or whitelist end if passed
    bool passed = false;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> lru;  // front = most recently used
  };

  static std::uint64_t TripleKey(util::Prefix24 net,
                                 const std::string& mail_from,
                                 const std::string& rcpt);

  Shard& ShardFor(std::uint64_t key) {
    return shards_[(key >> 32) & shard_mask_];
  }
  const Shard& ShardFor(std::uint64_t key) const {
    return shards_[(key >> 32) & shard_mask_];
  }

  GreylistConfig cfg_;
  std::size_t capacity_per_shard_;  // 0 = unbounded
  std::size_t shard_mask_;
  std::vector<Shard> shards_;
  GreylistStats stats_;
};

}  // namespace sams::rep
