// ServerStack — the composed "spam-aware mail server" of §8, with each
// of the paper's three optimizations behind an independent switch so
// the combined experiment can ablate them:
//
//   hybrid_concurrency — fork-after-trust master (§5) vs
//                        process-per-connection
//   mfs_store          — single-copy MFS mailboxes (§6) vs vanilla
//                        one-file-per-mailbox (mbox)
//   prefix_dnsbl       — /25-bitmap DNSBLv6 caching (§7) vs classic
//                        per-IP caching
//
// A stack owns the whole simulated machine: testbed, file system,
// store, DNSBL servers, resolver, and the MTA. Construct one per
// experimental run.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dnsbl/dnsbl_server.h"
#include "dnsbl/resolver.h"
#include "fskit/fs_model.h"
#include "fskit/sim_fs.h"
#include "mfs/sim_store.h"
#include "mta/sim_server.h"
#include "net/admin_http.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/span.h"
#include "sim/machine.h"
#include "trace/workload.h"
#include "util/result.h"
#include "util/rng.h"

namespace sams::core {

struct StackConfig {
  // The three §8 switches. All on = the paper's modified postfix;
  // all off = vanilla postfix.
  bool hybrid_concurrency = true;
  bool mfs_store = true;
  bool prefix_dnsbl = true;

  // Whether the server performs DNSBL checks at all.
  bool dnsbl_enabled = true;

  // Substrate knobs.
  std::string fs_model = "ext3";
  int process_limit = 500;            // vanilla optimum (§3)
  int master_connection_limit = 700;  // hybrid sockets (§5.4), per shard
  // Sharded pre-trust master (DESIGN.md §9): the simulation models N
  // reactors as N independent per-shard socket budgets, so the
  // effective master capacity is master_connection_limit x shards.
  // 1 = the paper's single-master Figure 8 baseline, unchanged.
  int master_shards = 1;
  util::SimTime unfinished_hold;
  util::SimTime dnsbl_ttl = util::SimTime::Hours(24);
  // > 0 bounds each DNSBL cache (LRU at the cap); 0 = unbounded, the
  // paper's emulation setup.
  std::size_t dnsbl_cache_capacity = 0;
  std::uint64_t seed = 42;

  // Pre-trust reputation engine (DESIGN.md §12). Off by default so the
  // paper-figure experiments stay bit-for-bit; when enabled the sim
  // server gates each connection on the /24's accumulated history
  // (GateOnHistory) and reinforces buckets from session outcomes.
  rep::RepConfig reputation;
};

class ServerStack {
 public:
  // `listed_ips` seeds the six DNSBL lists (ignored when dnsbl_enabled
  // is false).
  ServerStack(const StackConfig& cfg, std::span<const util::Ipv4> listed_ips);

  sim::Machine& machine() { return machine_; }
  mta::SimMailServer& server() { return *server_; }
  dnsbl::Resolver* resolver() { return resolver_.get(); }
  mfs::SimMailStore& store() { return *store_; }
  // Null unless cfg.reputation.enabled.
  rep::ReputationEngine* reputation_engine() { return rep_engine_.get(); }

  // The stack-wide metrics registry and session trace ring. Every
  // component (resolver, store, MTA, simulated machine) is bound at
  // construction, so one Collect() refreshes the whole stack.
  obs::Registry& registry() { return registry_; }
  obs::TraceSink& trace() { return trace_; }
  // Stack-wide time-series rings (sampler not started by default; the
  // admin server starts it).
  obs::TimeSeries& series() { return series_; }

  // --- telemetry plane (DESIGN.md §11) -------------------------------
  // Spawns the admin HTTP endpoint serving this stack's registry,
  // trace ring and time-series rings on /metrics, /vars, /healthz,
  // /spans and /series, and starts the series sampler. port 0 =
  // ephemeral; returns the bound port.
  util::Result<std::uint16_t> StartAdminServer(std::uint16_t port = 0);
  void StopAdminServer();
  // 0 unless the admin server is running.
  std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

  // Prometheus-style text dump of every metric, followed by the most
  // recent session traces. What bench_sec8_combined and the live
  // server print on demand.
  std::string DumpMetrics();
  // Writes the registry as a JSON snapshot (BENCH_*.json convention).
  util::Error WriteMetricsJson(const std::string& path);

  // Replays sessions' (ip, arrival) pairs through the resolver so a
  // driven run starts from steady-state cache ratios.
  void PrewarmResolver(std::span<const trace::SessionSpec> sessions);

  const StackConfig& config() const { return cfg_; }
  std::string Describe() const;

 private:
  void BindMachineMetrics();

  StackConfig cfg_;
  // Declared before the components it observes so bound counter
  // pointers stay valid for the components' whole lifetime.
  obs::Registry registry_;
  obs::TraceSink trace_;
  obs::TimeSeries series_;
  std::unique_ptr<net::AdminHttpServer> admin_;
  sim::Machine machine_;
  std::unique_ptr<fskit::FsModel> fs_model_;
  std::unique_ptr<fskit::SimFs> fs_;
  std::unique_ptr<mfs::SimMailStore> store_;
  std::vector<std::unique_ptr<dnsbl::DnsblServer>> dnsbl_lists_;
  std::unique_ptr<util::Rng> resolver_rng_;
  std::unique_ptr<dnsbl::Resolver> resolver_;
  std::unique_ptr<rep::ReputationEngine> rep_engine_;
  std::unique_ptr<mta::SimMailServer> server_;
};

}  // namespace sams::core
