#include "core/server_stack.h"

#include <algorithm>

#include "obs/build_info.h"
#include "obs/export.h"
#include "util/logging.h"

namespace sams::core {

ServerStack::ServerStack(const StackConfig& cfg,
                         std::span<const util::Ipv4> listed_ips)
    : cfg_(cfg) {
  obs::RegisterBuildInfo(registry_);
  fs_model_ = fskit::MakeFsModel(cfg_.fs_model);
  SAMS_CHECK(fs_model_ != nullptr) << "unknown fs model: " << cfg_.fs_model;
  fs_ = std::make_unique<fskit::SimFs>(machine_.disk(), *fs_model_);
  store_ = mfs::MakeSimStore(cfg_.mfs_store ? "mfs" : "mbox", *fs_);

  if (cfg_.dnsbl_enabled) {
    util::Rng list_rng(cfg_.seed);
    dnsbl_lists_ = dnsbl::MakeFigureFiveServers(listed_ips, list_rng);
    std::vector<const dnsbl::DnsblServer*> servers;
    for (const auto& list : dnsbl_lists_) servers.push_back(list.get());
    resolver_rng_ = std::make_unique<util::Rng>(cfg_.seed + 1);
    resolver_ = std::make_unique<dnsbl::Resolver>(
        cfg_.prefix_dnsbl ? dnsbl::CacheMode::kPrefixCache
                          : dnsbl::CacheMode::kIpCache,
        std::move(servers), cfg_.dnsbl_ttl, *resolver_rng_,
        cfg_.dnsbl_cache_capacity);
  }

  if (cfg_.reputation.enabled) {
    rep_engine_ = std::make_unique<rep::ReputationEngine>(cfg_.reputation);
  }

  mta::SimServerConfig server_cfg;
  server_cfg.hybrid = cfg_.hybrid_concurrency;
  server_cfg.process_limit =
      cfg_.hybrid_concurrency ? 200 : cfg_.process_limit;
  server_cfg.master_connection_limit =
      cfg_.master_connection_limit * std::max(1, cfg_.master_shards);
  server_cfg.unfinished_hold = cfg_.unfinished_hold;
  server_cfg.reputation = rep_engine_.get();
  server_ = std::make_unique<mta::SimMailServer>(machine_, server_cfg, *store_,
                                                 resolver_.get());

  store_->BindMetrics(registry_);
  if (resolver_) resolver_->BindMetrics(registry_);
  if (rep_engine_) rep_engine_->BindMetrics(registry_);
  server_->BindObservability(registry_, &trace_);
  BindMachineMetrics();
  series_.BindMetrics(registry_);
}

util::Result<std::uint16_t> ServerStack::StartAdminServer(std::uint16_t port) {
  if (admin_) return admin_->port();
  admin_ = std::make_unique<net::AdminHttpServer>(port);
  admin_->BindMetrics(registry_);
  admin_->Route("/metrics", [this] {
    registry_.Collect();
    return net::AdminResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                              obs::PrometheusText(registry_)};
  });
  admin_->Route("/vars", [this] {
    registry_.Collect();
    return net::AdminResponse{200, "application/json",
                              obs::JsonSnapshot(registry_)};
  });
  admin_->Route("/healthz", [this] {
    // The simulated stack's components are constructed together and
    // have no independent failure modes; readiness is "constructed".
    std::string body = "{\"status\":\"ok\",\"subsystems\":[";
    body += "{\"name\":\"machine\",\"ok\":true},";
    body += "{\"name\":\"store\",\"ok\":true},";
    body += std::string("{\"name\":\"dnsbl\",\"ok\":true,\"enabled\":") +
            (resolver_ ? "true" : "false") + "},";
    body += "{\"name\":\"server\",\"ok\":true}]}\n";
    return net::AdminResponse{200, "application/json", std::move(body)};
  });
  admin_->Route("/spans", [this] {
    return net::AdminResponse{200, "text/plain; charset=utf-8",
                              trace_.DumpText()};
  });
  admin_->Route("/series", [this] {
    return net::AdminResponse{200, "application/json", series_.ToJson()};
  });
  if (rep_engine_ != nullptr) {
    // Top reputation buckets, live (the sim's clock drives decay, so
    // snapshot at the machine's current instant).
    admin_->Route("/reputation", [this] {
      return net::AdminResponse{
          200, "application/json",
          rep_engine_->SnapshotJson(32, machine_.sim().Now().nanos())};
    });
  }
  auto started = admin_->Start();
  if (!started.ok()) {
    admin_.reset();
    return started.error();
  }
  series_.Start();
  return *started;
}

void ServerStack::StopAdminServer() {
  series_.Stop();
  if (admin_) {
    admin_->Stop();
    admin_.reset();
  }
}

void ServerStack::BindMachineMetrics() {
  // Snapshot-style instruments for the simulated machine, refreshed at
  // collect time from the substrate's stats structs.
  auto* net_msgs = &registry_.GetCounter("sams_net_messages_total",
                                         "simulated network sends");
  auto* net_bytes = &registry_.GetCounter("sams_net_bytes_total",
                                          "simulated network payload bytes");
  auto* cpu_switches = &registry_.GetCounter("sams_cpu_context_switches_total",
                                             "simulated context switches");
  auto* cpu_forks =
      &registry_.GetCounter("sams_cpu_forks_total", "simulated fork(2) calls");
  auto* cpu_busy_ms = &registry_.GetGauge(
      "sams_cpu_busy_millis", "simulated CPU time doing useful work (ms)");
  auto* cpu_switch_ms = &registry_.GetGauge(
      "sams_cpu_switch_overhead_millis",
      "simulated CPU time lost to context switches (ms)");
  auto* disk_fsyncs = &registry_.GetCounter("sams_disk_fsyncs_total",
                                            "simulated fsync barriers");
  auto* disk_bytes = &registry_.GetCounter("sams_disk_bytes_written_total",
                                           "simulated bytes committed");
  auto* fs_appends =
      &registry_.GetCounter("sams_fs_appends_total", "file-system appends");
  auto* fs_creates = &registry_.GetCounter("sams_fs_files_created_total",
                                           "file-system creates");
  auto* fsyncs_per_mail = &registry_.GetGauge(
      "sams_mfs_fsyncs_per_mail",
      "store durability barriers divided by mails delivered");
  registry_.AddCollector([this, net_msgs, net_bytes, cpu_switches, cpu_forks,
                          cpu_busy_ms, cpu_switch_ms, disk_fsyncs, disk_bytes,
                          fs_appends, fs_creates, fsyncs_per_mail] {
    net_msgs->Overwrite(machine_.net().stats().messages);
    net_bytes->Overwrite(machine_.net().stats().bytes);
    cpu_switches->Overwrite(machine_.cpu().stats().context_switches);
    cpu_forks->Overwrite(machine_.cpu().stats().forks);
    cpu_busy_ms->Set(machine_.cpu().stats().busy.millis());
    cpu_switch_ms->Set(machine_.cpu().stats().switch_overhead.millis());
    disk_fsyncs->Overwrite(machine_.disk().stats().fsyncs);
    disk_bytes->Overwrite(machine_.disk().stats().bytes_written);
    fs_appends->Overwrite(fs_->stats().appends);
    fs_creates->Overwrite(fs_->stats().files_created);
    const std::uint64_t mails = store_->mails_delivered();
    fsyncs_per_mail->Set(
        mails == 0 ? 0.0
                   : static_cast<double>(store_->fsyncs()) /
                         static_cast<double>(mails));
  });
}

std::string ServerStack::DumpMetrics() {
  std::string out = obs::PrometheusText(registry_);
  out += "\n";
  out += trace_.DumpText();
  return out;
}

util::Error ServerStack::WriteMetricsJson(const std::string& path) {
  return obs::WriteJsonSnapshot(registry_, path);
}

void ServerStack::PrewarmResolver(
    std::span<const trace::SessionSpec> sessions) {
  if (!resolver_) return;
  for (const auto& session : sessions) {
    resolver_->Lookup(session.client_ip, session.arrival);
  }
}

std::string ServerStack::Describe() const {
  std::string out;
  out += cfg_.hybrid_concurrency ? "fork-after-trust" : "process-per-conn";
  if (cfg_.hybrid_concurrency && cfg_.master_shards > 1) {
    out += " x" + std::to_string(cfg_.master_shards) + "-shard";
  }
  out += cfg_.mfs_store ? " + MFS" : " + mbox";
  if (cfg_.dnsbl_enabled) {
    out += cfg_.prefix_dnsbl ? " + prefix-DNSBL" : " + ip-DNSBL";
  }
  if (cfg_.reputation.enabled) out += " + reputation";
  return out;
}

}  // namespace sams::core
