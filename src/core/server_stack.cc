#include "core/server_stack.h"

#include "util/logging.h"

namespace sams::core {

ServerStack::ServerStack(const StackConfig& cfg,
                         std::span<const util::Ipv4> listed_ips)
    : cfg_(cfg) {
  fs_model_ = fskit::MakeFsModel(cfg_.fs_model);
  SAMS_CHECK(fs_model_ != nullptr) << "unknown fs model: " << cfg_.fs_model;
  fs_ = std::make_unique<fskit::SimFs>(machine_.disk(), *fs_model_);
  store_ = mfs::MakeSimStore(cfg_.mfs_store ? "mfs" : "mbox", *fs_);

  if (cfg_.dnsbl_enabled) {
    util::Rng list_rng(cfg_.seed);
    dnsbl_lists_ = dnsbl::MakeFigureFiveServers(listed_ips, list_rng);
    std::vector<const dnsbl::DnsblServer*> servers;
    for (const auto& list : dnsbl_lists_) servers.push_back(list.get());
    resolver_rng_ = std::make_unique<util::Rng>(cfg_.seed + 1);
    resolver_ = std::make_unique<dnsbl::Resolver>(
        cfg_.prefix_dnsbl ? dnsbl::CacheMode::kPrefixCache
                          : dnsbl::CacheMode::kIpCache,
        std::move(servers), cfg_.dnsbl_ttl, *resolver_rng_);
  }

  mta::SimServerConfig server_cfg;
  server_cfg.hybrid = cfg_.hybrid_concurrency;
  server_cfg.process_limit =
      cfg_.hybrid_concurrency ? 200 : cfg_.process_limit;
  server_cfg.master_connection_limit = cfg_.master_connection_limit;
  server_cfg.unfinished_hold = cfg_.unfinished_hold;
  server_ = std::make_unique<mta::SimMailServer>(machine_, server_cfg, *store_,
                                                 resolver_.get());
}

void ServerStack::PrewarmResolver(
    std::span<const trace::SessionSpec> sessions) {
  if (!resolver_) return;
  for (const auto& session : sessions) {
    resolver_->Lookup(session.client_ip, session.arrival);
  }
}

std::string ServerStack::Describe() const {
  std::string out;
  out += cfg_.hybrid_concurrency ? "fork-after-trust" : "process-per-conn";
  out += cfg_.mfs_store ? " + MFS" : " + mbox";
  if (cfg_.dnsbl_enabled) {
    out += cfg_.prefix_dnsbl ? " + prefix-DNSBL" : " + ip-DNSBL";
  }
  return out;
}

}  // namespace sams::core
