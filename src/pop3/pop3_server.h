// Pop3Server — real TCP POP3 service over an MfsVolume (thread per
// connection; retrieval concurrency is not the paper's bottleneck).
#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "mfs/volume.h"
#include "pop3/pop3_session.h"
#include "util/fd.h"
#include "util/result.h"

namespace sams::pop3 {

struct Pop3ServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral
  int recv_timeout_ms = 30'000;
};

class Pop3Server {
 public:
  // The volume must outlive the server. MFS access is serialized with
  // an internal mutex (MfsVolume is single-threaded by contract).
  Pop3Server(Pop3ServerConfig cfg, mfs::MfsVolume& volume,
             CredentialMap credentials);
  ~Pop3Server();

  Pop3Server(const Pop3Server&) = delete;
  Pop3Server& operator=(const Pop3Server&) = delete;

  util::Result<std::uint16_t> Start();
  void Stop();

  std::uint64_t sessions_served() const {
    return sessions_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(util::UniqueFd fd);

  Pop3ServerConfig cfg_;
  mfs::MfsVolume& volume_;
  std::mutex volume_mutex_;
  CredentialMap credentials_;

  util::UniqueFd listener_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::atomic<std::uint64_t> sessions_{0};
};

}  // namespace sams::pop3
