// POP3 (RFC 1939 subset) server-side session state machine.
//
// The paper positions MFS as the mailbox layer for "mail server/POP/
// IMAP servers" (§6.1): delivery writes mails, retrieval reads and
// deletes them at mail granularity. This module implements the
// retrieval side — a POP3 session over an MfsVolume maildrop — which
// closes the loop on the MFS API: RETR exercises mail_read, DELE/QUIT
// exercise mail_delete with shared-mail refcounting.
//
// Supported: USER, PASS, STAT, LIST [msg], RETR msg, DELE msg, NOOP,
// RSET, QUIT. Transport-agnostic, like smtp::ServerSession.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mfs/volume.h"

namespace sams::pop3 {

// user -> password (the paper's prototype scope: local auth).
using CredentialMap = std::unordered_map<std::string, std::string>;

enum class Pop3State {
  kAuthorization,  // expecting USER/PASS
  kTransaction,    // authenticated; maildrop locked
  kUpdate,         // QUIT received; deletions applied
  kClosed,
};

class Pop3Session {
 public:
  struct Hooks {
    // Sends response bytes to the client. Required.
    std::function<void(std::string)> send;
  };

  // The volume must outlive the session.
  Pop3Session(mfs::MfsVolume& volume, const CredentialMap& credentials,
              Hooks hooks);

  // Emits the +OK greeting.
  void Start();

  // Consumes raw client bytes (line-buffered internally).
  void Feed(std::string_view bytes);

  Pop3State state() const { return state_; }
  std::size_t deleted_count() const;

 private:
  struct Entry {
    mfs::MailId id;
    std::size_t size = 0;
    bool deleted = false;
  };

  void HandleLine(std::string_view line);
  void Ok(const std::string& text);
  void Err(const std::string& text);
  void SendMultiline(const std::string& body);
  bool LoadMaildrop();
  Entry* FindEntry(std::string_view arg);

  mfs::MfsVolume& volume_;
  const CredentialMap& credentials_;
  Hooks hooks_;

  Pop3State state_ = Pop3State::kAuthorization;
  std::string pending_user_;
  std::string user_;
  std::vector<Entry> entries_;
  std::string inbuf_;
};

}  // namespace sams::pop3
