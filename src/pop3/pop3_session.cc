#include "pop3/pop3_session.h"

#include <charconv>

#include "util/logging.h"
#include "util/strings.h"

namespace sams::pop3 {
namespace {

// Parses a 1-based message number.
int ParseMsgNumber(std::string_view arg) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), value);
  if (ec != std::errc() || ptr != arg.data() + arg.size() || value < 1) {
    return -1;
  }
  return value;
}

}  // namespace

Pop3Session::Pop3Session(mfs::MfsVolume& volume,
                         const CredentialMap& credentials, Hooks hooks)
    : volume_(volume), credentials_(credentials), hooks_(std::move(hooks)) {
  SAMS_CHECK(static_cast<bool>(hooks_.send)) << "send hook required";
}

void Pop3Session::Start() { Ok("sams POP3 server ready"); }

void Pop3Session::Ok(const std::string& text) {
  hooks_.send("+OK " + text + "\r\n");
}

void Pop3Session::Err(const std::string& text) {
  hooks_.send("-ERR " + text + "\r\n");
}

void Pop3Session::SendMultiline(const std::string& body) {
  // Byte-stuff lines starting with '.' and terminate with ".\r\n".
  std::string out;
  out.reserve(body.size() + 16);
  std::size_t i = 0;
  while (i < body.size()) {
    std::size_t eol = body.find('\n', i);
    std::string_view line;
    if (eol == std::string::npos) {
      line = std::string_view(body).substr(i);
      i = body.size();
    } else {
      line = std::string_view(body).substr(i, eol - i);
      i = eol + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line.front() == '.') out.push_back('.');
    out.append(line);
    out.append("\r\n");
  }
  out.append(".\r\n");
  hooks_.send(std::move(out));
}

void Pop3Session::Feed(std::string_view bytes) {
  inbuf_.append(bytes);
  std::size_t start = 0;
  while (state_ != Pop3State::kClosed) {
    const std::size_t eol = inbuf_.find('\n', start);
    if (eol == std::string::npos) break;
    std::string_view line(inbuf_.data() + start, eol - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = eol + 1;
    HandleLine(line);
  }
  inbuf_.erase(0, start);
}

bool Pop3Session::LoadMaildrop() {
  auto handle = volume_.MailOpen(user_);
  if (!handle.ok()) return false;
  entries_.clear();
  for (;;) {
    auto mail = volume_.MailRead(**handle);
    if (!mail.ok()) break;  // end of mailbox
    entries_.push_back(Entry{mail->id, mail->body.size(), false});
  }
  volume_.MailClose(std::move(*handle));
  return true;
}

std::size_t Pop3Session::deleted_count() const {
  std::size_t n = 0;
  for (const Entry& entry : entries_) {
    if (entry.deleted) ++n;
  }
  return n;
}

Pop3Session::Entry* Pop3Session::FindEntry(std::string_view arg) {
  const int msg = ParseMsgNumber(arg);
  if (msg < 1 || static_cast<std::size_t>(msg) > entries_.size()) {
    Err("no such message");
    return nullptr;
  }
  Entry& entry = entries_[static_cast<std::size_t>(msg - 1)];
  if (entry.deleted) {
    Err("message deleted");
    return nullptr;
  }
  return &entry;
}

void Pop3Session::HandleLine(std::string_view line) {
  line = util::Trim(line);
  const std::size_t sp = line.find(' ');
  const std::string_view verb =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  const std::string_view arg =
      sp == std::string_view::npos ? std::string_view{}
                                   : util::Trim(line.substr(sp + 1));

  if (util::IEquals(verb, "QUIT")) {
    if (state_ == Pop3State::kTransaction) {
      // UPDATE state: apply deletions through mail_delete (decrements
      // shared refcounts for multi-recipient mails, §6.1).
      auto handle = volume_.MailOpen(user_);
      if (handle.ok()) {
        for (const Entry& entry : entries_) {
          if (entry.deleted) {
            (void)volume_.MailDelete(**handle, entry.id);
          }
        }
        volume_.MailClose(std::move(*handle));
      }
      state_ = Pop3State::kUpdate;
    }
    Ok("sams POP3 server signing off");
    state_ = Pop3State::kClosed;
    return;
  }

  if (state_ == Pop3State::kAuthorization) {
    if (util::IEquals(verb, "USER")) {
      if (arg.empty()) {
        Err("USER requires a name");
        return;
      }
      pending_user_ = std::string(arg);
      Ok("password required for " + pending_user_);
      return;
    }
    if (util::IEquals(verb, "PASS")) {
      if (pending_user_.empty()) {
        Err("USER first");
        return;
      }
      auto it = credentials_.find(pending_user_);
      if (it == credentials_.end() || it->second != arg) {
        pending_user_.clear();
        Err("invalid credentials");
        return;
      }
      user_ = pending_user_;
      if (!LoadMaildrop()) {
        Err("maildrop unavailable");
        return;
      }
      state_ = Pop3State::kTransaction;
      Ok("maildrop has " + std::to_string(entries_.size()) + " messages");
      return;
    }
    if (util::IEquals(verb, "NOOP")) {
      Ok("");
      return;
    }
    Err("command not valid before authentication");
    return;
  }

  if (state_ != Pop3State::kTransaction) {
    Err("session ended");
    return;
  }

  if (util::IEquals(verb, "STAT")) {
    std::size_t count = 0, bytes = 0;
    for (const Entry& entry : entries_) {
      if (!entry.deleted) {
        ++count;
        bytes += entry.size;
      }
    }
    Ok(std::to_string(count) + " " + std::to_string(bytes));
    return;
  }
  if (util::IEquals(verb, "LIST")) {
    if (!arg.empty()) {
      Entry* entry = FindEntry(arg);
      if (entry == nullptr) return;
      Ok(std::string(arg) + " " + std::to_string(entry->size));
      return;
    }
    std::string body;
    std::size_t count = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].deleted) continue;
      ++count;
      body += std::to_string(i + 1) + " " + std::to_string(entries_[i].size) +
              "\n";
    }
    Ok(std::to_string(count) + " messages");
    SendMultiline(body.empty() ? "" : body.substr(0, body.size() - 1));
    return;
  }
  if (util::IEquals(verb, "RETR")) {
    Entry* entry = FindEntry(arg);
    if (entry == nullptr) return;
    // Locate the mail by seeking to its live index and reading.
    auto handle = volume_.MailOpen(user_);
    if (!handle.ok()) {
      Err("maildrop unavailable");
      return;
    }
    std::string body;
    bool found = false;
    for (;;) {
      auto mail = volume_.MailRead(**handle);
      if (!mail.ok()) break;
      if (mail->id == entry->id) {
        body = std::move(mail->body);
        found = true;
        break;
      }
    }
    volume_.MailClose(std::move(*handle));
    if (!found) {
      Err("message vanished");
      return;
    }
    Ok(std::to_string(entry->size) + " octets");
    SendMultiline(body);
    return;
  }
  if (util::IEquals(verb, "DELE")) {
    Entry* entry = FindEntry(arg);
    if (entry == nullptr) return;
    entry->deleted = true;
    Ok("message " + std::string(arg) + " deleted");
    return;
  }
  if (util::IEquals(verb, "RSET")) {
    for (Entry& entry : entries_) entry.deleted = false;
    Ok("maildrop reset");
    return;
  }
  if (util::IEquals(verb, "NOOP")) {
    Ok("");
    return;
  }
  Err("unknown command");
}

}  // namespace sams::pop3
