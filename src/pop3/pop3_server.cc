#include "pop3/pop3_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/tcp.h"

namespace sams::pop3 {

Pop3Server::Pop3Server(Pop3ServerConfig cfg, mfs::MfsVolume& volume,
                       CredentialMap credentials)
    : cfg_(cfg), volume_(volume), credentials_(std::move(credentials)) {}

Pop3Server::~Pop3Server() { Stop(); }

util::Result<std::uint16_t> Pop3Server::Start() {
  auto listener = net::TcpListen(cfg_.port);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener).value();
  auto port = net::LocalPort(listener_.get());
  if (!port.ok()) return port.error();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return *port;
}

void Pop3Server::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listener_.get(), SHUT_RDWR);
  listener_.Reset();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conn_threads_);
  }
  for (std::thread& conn : conns) {
    if (conn.joinable()) conn.join();
  }
}

void Pop3Server::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = net::TcpAccept(listener_.get());
    if (!accepted.ok()) {
      if (!running_.load()) break;
      continue;
    }
    sessions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_threads_.emplace_back([this, fd = std::move(accepted->fd)]() mutable {
      HandleConnection(std::move(fd));
    });
  }
}

void Pop3Server::HandleConnection(util::UniqueFd fd) {
  (void)net::SetRecvTimeout(fd.get(), cfg_.recv_timeout_ms);
  Pop3Session::Hooks hooks;
  const int raw = fd.get();
  hooks.send = [raw](std::string bytes) {
    (void)util::WriteAll(raw, bytes.data(), bytes.size());
  };
  // All volume access happens inside Feed/Start; serialize sessions on
  // the shared volume. Holding the lock per-Feed keeps RETR atomic.
  Pop3Session session(volume_, credentials_, std::move(hooks));
  {
    std::lock_guard<std::mutex> lock(volume_mutex_);
    session.Start();
  }
  char buf[8 * 1024];
  while (running_.load(std::memory_order_acquire) &&
         session.state() != Pop3State::kClosed) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    std::lock_guard<std::mutex> lock(volume_mutex_);
    session.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace sams::pop3
