// File-system cost models.
//
// Figures 10 and 11 of the paper compare four mailbox store layouts on
// two base file systems (Ext3-journal and ReiserFS). We cannot pick the
// host kernel's file system inside this environment, so the figure
// benches run the store layouts against *cost models* of the two file
// systems, calibrated to the relative per-operation behaviour the paper
// cites from Piszcz's benchmark [16]:
//   - Ext3 journals metadata; creating/deleting files and adding
//     directory entries is expensive (inode + bitmap + dirent journal
//     records), which is why maildir (file per mail) collapses on Ext3.
//   - ReiserFS packs tails and handles small files well: file creation
//     and hard links are roughly an order of magnitude cheaper.
//   - Appends to existing files cost block-allocation metadata only,
//     similar on both.
//   - Ext3 rounds data up to 4 KiB blocks; Reiser's tail packing
//     stores small files/tails compactly.
// The absolute values are anchored so a commodity 2007 disk yields
// mbox-store throughput in the few-hundred-mails/s range (Figure 10's
// y-axis); EXPERIMENTS.md records the calibration.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/time.h"

namespace sams::fskit {

using util::SimTime;

class FsModel {
 public:
  virtual ~FsModel() = default;

  virtual std::string_view name() const = 0;

  // Journal/metadata charge for creating a file (inode alloc, dirent).
  virtual SimTime CreateFileCost() const = 0;
  // Charge for adding a hard link (dirent + inode refcount update).
  virtual SimTime HardLinkCost() const = 0;
  // Charge for unlinking a file.
  virtual SimTime DeleteFileCost() const = 0;
  // Charge for a rename (maildir tmp/ -> new/).
  virtual SimTime RenameCost() const = 0;
  // Metadata charge for appending `bytes` to an existing file (block
  // allocation, bitmap and indirect-block updates).
  virtual SimTime AppendMetaCost(std::uint64_t bytes) const = 0;
  // Effective bytes hitting the platter for a `bytes`-sized logical
  // write (block rounding vs tail packing).
  virtual std::uint64_t EffectiveWriteBytes(std::uint64_t bytes) const = 0;
};

// Ext3 with the default ordered-data journal, as in Table 1.
class Ext3Model final : public FsModel {
 public:
  std::string_view name() const override { return "ext3"; }
  SimTime CreateFileCost() const override { return SimTime::MicrosF(3000); }
  SimTime HardLinkCost() const override { return SimTime::MicrosF(1600); }
  SimTime DeleteFileCost() const override { return SimTime::MicrosF(1200); }
  SimTime RenameCost() const override { return SimTime::MicrosF(700); }
  SimTime AppendMetaCost(std::uint64_t bytes) const override {
    // One block-group bitmap/indirect update per 128 KiB extent.
    return SimTime::MicrosF(30) + SimTime::MicrosF(8).Scaled(
        static_cast<double>(bytes) / (128.0 * 1024.0));
  }
  std::uint64_t EffectiveWriteBytes(std::uint64_t bytes) const override {
    constexpr std::uint64_t kBlock = 4096;
    return (bytes + kBlock - 1) / kBlock * kBlock;
  }
};

// ReiserFS v3: fast small-file creation, tail packing.
class ReiserModel final : public FsModel {
 public:
  std::string_view name() const override { return "reiser"; }
  SimTime CreateFileCost() const override { return SimTime::MicrosF(800); }
  SimTime HardLinkCost() const override { return SimTime::MicrosF(610); }
  SimTime DeleteFileCost() const override { return SimTime::MicrosF(300); }
  SimTime RenameCost() const override { return SimTime::MicrosF(200); }
  SimTime AppendMetaCost(std::uint64_t bytes) const override {
    return SimTime::MicrosF(25) + SimTime::MicrosF(6).Scaled(
        static_cast<double>(bytes) / (128.0 * 1024.0));
  }
  std::uint64_t EffectiveWriteBytes(std::uint64_t bytes) const override {
    // Tail packing: no block rounding beyond a small b-tree overhead.
    return bytes + bytes / 32 + 64;
  }
};

std::unique_ptr<FsModel> MakeFsModel(std::string_view name);

}  // namespace sams::fskit
