#include "fskit/fs_model.h"

#include "util/strings.h"

namespace sams::fskit {

std::unique_ptr<FsModel> MakeFsModel(std::string_view name) {
  if (util::IEquals(name, "ext3")) return std::make_unique<Ext3Model>();
  if (util::IEquals(name, "reiser")) return std::make_unique<ReiserModel>();
  return nullptr;
}

}  // namespace sams::fskit
