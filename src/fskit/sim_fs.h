// SimFs binds a file-system cost model to the simulated disk: store
// layouts call logical operations (create/append/link/rename/fsync)
// and SimFs buffers the corresponding data bytes and metadata charges
// into the disk's next journal commit.
#pragma once

#include <cstdint>
#include <functional>

#include "fskit/fs_model.h"
#include "sim/disk.h"

namespace sams::fskit {

struct SimFsStats {
  std::uint64_t files_created = 0;
  std::uint64_t hard_links = 0;
  std::uint64_t deletes = 0;
  std::uint64_t renames = 0;
  std::uint64_t appends = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t effective_bytes = 0;
};

class SimFs {
 public:
  using Done = std::function<void()>;

  SimFs(sim::Disk& disk, const FsModel& model) : disk_(disk), model_(model) {}
  SimFs(const SimFs&) = delete;
  SimFs& operator=(const SimFs&) = delete;

  void CreateFile() {
    ++stats_.files_created;
    disk_.BufferMetadata(model_.CreateFileCost());
  }
  void HardLink() {
    ++stats_.hard_links;
    disk_.BufferMetadata(model_.HardLinkCost());
  }
  void DeleteFile() {
    ++stats_.deletes;
    disk_.BufferMetadata(model_.DeleteFileCost());
  }
  void Rename() {
    ++stats_.renames;
    disk_.BufferMetadata(model_.RenameCost());
  }
  void Append(std::uint64_t bytes) {
    ++stats_.appends;
    stats_.logical_bytes += bytes;
    const std::uint64_t effective = model_.EffectiveWriteBytes(bytes);
    stats_.effective_bytes += effective;
    disk_.BufferWrite(effective);
    disk_.BufferMetadata(model_.AppendMetaCost(bytes));
  }
  void Fsync(Done done) { disk_.Fsync(std::move(done)); }

  const FsModel& model() const { return model_; }
  const SimFsStats& stats() const { return stats_; }
  sim::Disk& disk() { return disk_; }

 private:
  sim::Disk& disk_;
  const FsModel& model_;
  SimFsStats stats_;
};

}  // namespace sams::fskit
