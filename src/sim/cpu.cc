#include "sim/cpu.h"

#include <algorithm>
#include <utility>

namespace sams::sim {

void Cpu::Submit(int pid, SimTime burst, Done done) {
  queue_.push_back(Demand{pid, burst, std::move(done)});
  if (!busy_) ServeNext();
}

void Cpu::Fork(int parent_pid, Done done) {
  ++stats_.forks;
  Submit(parent_pid, cfg_.fork_cost, std::move(done));
}

void Cpu::ServeNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Demand d = std::move(queue_.front());
  queue_.pop_front();

  SimTime overhead{};
  if (d.pid != last_pid_) {
    overhead = cfg_.ctx_switch_base +
               cfg_.ctx_switch_per_runnable *
                   static_cast<std::int64_t>(queue_.size() + 1);
    ++stats_.context_switches;
    stats_.switch_overhead += overhead;
    last_pid_ = d.pid;
  }

  const SimTime slice = std::min(d.remaining, cfg_.quantum);
  d.remaining -= slice;
  stats_.busy += slice;

  sim_.After(overhead + slice, [this, d = std::move(d)]() mutable {
    if (d.remaining.nanos() <= 0) {
      ++stats_.bursts_completed;
      Done done = std::move(d.done);
      ServeNext();
      if (done) done();
    } else {
      queue_.push_back(std::move(d));
      ServeNext();
    }
  });
}

}  // namespace sams::sim
