#include "sim/simulator.h"

#include "util/logging.h"

namespace sams::sim {

void Simulator::At(SimTime t, Callback cb) {
  SAMS_CHECK(t >= now_) << "event scheduled in the past: " << t.ToString()
                        << " < " << now_.ToString();
  queue_.push(Event{t, seq_++, std::move(cb)});
}

bool Simulator::PopAndRunNext() {
  // The queue holds const refs; move out via const_cast-free copy of
  // the callback by re-wrapping: top() is const, so take a copy of the
  // metadata and swap the callback out through a mutable reference.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++processed_;
  ev.cb();
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) PopAndRunNext();
}

void Simulator::RunUntil(SimTime t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= t) PopAndRunNext();
  if (!stopped_ && now_ < t) now_ = t;
}

}  // namespace sams::sim
