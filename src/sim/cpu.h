// Simulated single-socket CPU with quantum-based round-robin
// scheduling, the resource the paper's concurrency experiments contend
// on (§3, §5).
//
// Model: each simulated process submits CPU *bursts*; the CPU serves
// the run queue round-robin in slices of at most one quantum. Whenever
// service switches between different processes a context-switch cost is
// charged; the cost has a base component plus a cache/TLB-pressure term
// that grows with the number of runnable processes — this is what makes
// throughput peak at a finite smtpd process limit (≈500 in the paper)
// instead of growing monotonically. fork() is modeled as a fixed-cost
// burst on the parent plus bookkeeping.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.h"
#include "util/time.h"

namespace sams::sim {

struct CpuConfig {
  // Scheduler time slice (Linux 2.6 default HZ=250 era: ~1-4 ms).
  SimTime quantum = SimTime::Millis(1);
  // Direct cost of a context switch (register/kernel path).
  SimTime ctx_switch_base = SimTime::MicrosF(4.0);
  // Indirect cache/TLB repopulation cost per runnable process.
  SimTime ctx_switch_per_runnable = SimTime::Nanos(40);
  // Cost of fork() charged to the parent (page-table copy etc.).
  SimTime fork_cost = SimTime::MicrosF(250.0);
};

struct CpuStats {
  std::uint64_t context_switches = 0;
  std::uint64_t forks = 0;
  std::uint64_t bursts_completed = 0;
  SimTime busy;             // time spent doing useful work
  SimTime switch_overhead;  // time lost to context switches
};

class Cpu {
 public:
  using Done = std::function<void()>;

  Cpu(Simulator& sim, CpuConfig cfg) : sim_(sim), cfg_(cfg) {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Enqueues a burst of `burst` CPU time on behalf of process `pid`;
  // `done` fires when the burst has fully executed. A zero-length burst
  // completes after the queueing delay only.
  void Submit(int pid, SimTime burst, Done done);

  // Models fork(): charges fork_cost as a burst on `parent_pid`, then
  // fires `done` (the child is just a new pid chosen by the caller).
  void Fork(int parent_pid, Done done);

  const CpuStats& stats() const { return stats_; }
  std::size_t runnable() const { return queue_.size() + (busy_ ? 1 : 0); }
  // Utilization over the window since the last ResetStats (busy /
  // elapsed); caller tracks elapsed.
  void ResetStats() { stats_ = CpuStats{}; }

 private:
  struct Demand {
    int pid;
    SimTime remaining;
    Done done;
  };

  void ServeNext();

  Simulator& sim_;
  CpuConfig cfg_;
  std::deque<Demand> queue_;
  bool busy_ = false;
  int last_pid_ = -1;
  CpuStats stats_;
};

}  // namespace sams::sim
