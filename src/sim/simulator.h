// Discrete-event simulation core.
//
// The paper's evaluation ran on a 2007 testbed (3 GHz Xeon, 10K SCSI
// disk, 30 ms emulated WAN delay). We reproduce the *dynamics* of that
// machine with a deterministic event-driven simulator: the figure
// benches schedule SMTP protocol steps, CPU bursts, disk commits and
// DNS waits as events, and measure goodput in simulated time. Events
// at equal timestamps fire in scheduling order (FIFO tie-break), so a
// run is a pure function of its RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace sams::sim {

using util::SimTime;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` at absolute simulated time `t` (>= Now()).
  void At(SimTime t, Callback cb);

  // Schedules `cb` after simulated delay `d` (>= 0).
  void After(SimTime d, Callback cb) { At(now_ + d, std::move(cb)); }

  // Runs until the event queue drains or Stop() is called.
  void Run();

  // Runs all events with timestamp <= t; afterwards Now() == t (unless
  // stopped early). Events scheduled beyond t stay pending.
  void RunUntil(SimTime t);

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopAndRunNext();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sams::sim
