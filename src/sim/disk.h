// Simulated disk with journaling group commit.
//
// Mail servers are fsync-bound: postfix syncs a mail into the incoming
// queue and again at delivery. On the paper's Ext3-journal setup the
// cost structure is (a) buffered writes are free at write() time, (b)
// an fsync triggers a journal commit whose duration covers a seek, the
// dirty bytes accumulated since the previous commit, and a per-metadata
// -operation charge (inode/dirent journal records — this is where
// maildir's file-per-mail hurts on Ext3, Figure 10), and (c) every
// fsync waiting when a commit *starts* completes when it finishes —
// group commit, which is why throughput grows with writer concurrency.
// Reads are served from a separate FIFO with seek + transfer cost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/time.h"

namespace sams::sim {

struct DiskConfig {
  // Fixed cost of a journal commit (seek + rotational latency on the
  // 10K RPM U320 drive).
  SimTime commit_base = SimTime::MillisF(6.0);
  // Effective transfer rate for journal/data flushing: a 2007 10K RPM
  // U320 drive sustains ~55-70 MB/s sequentially; group commits that
  // touch many mailbox files see somewhat less after elevator-batched
  // seeking.
  double write_mb_per_sec = 40.0;
  // Read service: average seek + per-byte transfer.
  SimTime read_seek = SimTime::MillisF(4.5);
  double read_mb_per_sec = 60.0;
};

struct DiskStats {
  std::uint64_t commits = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  SimTime write_busy;
  SimTime read_busy;
};

class Disk {
 public:
  using Done = std::function<void()>;

  Disk(Simulator& sim, DiskConfig cfg) : sim_(sim), cfg_(cfg) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Buffers `bytes` of dirty data (no simulated time passes; the cost
  // is paid at the next commit).
  void BufferWrite(std::uint64_t bytes) {
    pending_bytes_ += bytes;
    stats_.bytes_written += bytes;
  }

  // Adds a metadata charge (file create, dirent update, inode init) to
  // the next commit. File-system cost models compute the value.
  void BufferMetadata(SimTime cost) { pending_meta_ += cost; }

  // Requests durability for everything buffered so far; `done` fires
  // when the covering commit finishes. Joins the in-flight commit's
  // *next* epoch if one is running (standard group-commit semantics).
  void Fsync(Done done);

  // Queued read of `bytes`: seek + transfer, FIFO with other reads.
  void Read(std::uint64_t bytes, Done done);

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

 private:
  void StartCommit();
  void StartNextRead();

  Simulator& sim_;
  DiskConfig cfg_;

  std::uint64_t pending_bytes_ = 0;
  SimTime pending_meta_;
  std::vector<Done> waiters_;
  bool commit_running_ = false;

  struct ReadReq {
    SimTime service;
    Done done;
  };
  std::deque<ReadReq> read_queue_;
  bool read_running_ = false;

  DiskStats stats_;
};

}  // namespace sams::sim
