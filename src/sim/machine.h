// The simulated testbed of Table 1: one server machine (CPU + disk)
// and the network path from the client machine. Benches construct a
// Machine, attach a server model from sams::mta, and drive it with a
// client model from sams::trace.
#pragma once

#include <memory>

#include "sim/cpu.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sams::sim {

struct MachineConfig {
  CpuConfig cpu;
  DiskConfig disk;
  NetworkConfig network;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {})
      : cpu_(sim_, cfg.cpu), disk_(sim_, cfg.disk), net_(sim_, cfg.network) {}

  Simulator& sim() { return sim_; }
  Cpu& cpu() { return cpu_; }
  Disk& disk() { return disk_; }
  Network& net() { return net_; }

 private:
  Simulator sim_;
  Cpu cpu_;
  Disk disk_;
  Network net_;
};

}  // namespace sams::sim
