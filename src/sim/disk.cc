#include "sim/disk.h"

#include <utility>

namespace sams::sim {
namespace {

SimTime TransferTime(std::uint64_t bytes, double mb_per_sec) {
  const double seconds =
      static_cast<double>(bytes) / (mb_per_sec * 1024.0 * 1024.0);
  return SimTime::SecondsF(seconds);
}

}  // namespace

void Disk::Fsync(Done done) {
  ++stats_.fsyncs;
  waiters_.push_back(std::move(done));
  if (!commit_running_) {
    commit_running_ = true;
    // Start via a zero-delay event so every fsync issued at the same
    // simulated instant joins this commit (group commit batches
    // same-tick arrivals).
    sim_.After(SimTime{}, [this] { StartCommit(); });
  }
}

void Disk::StartCommit() {
  ++stats_.commits;

  // Snapshot this epoch: fsyncs arriving during the commit join the
  // next one.
  std::vector<Done> epoch = std::move(waiters_);
  waiters_.clear();
  const SimTime duration = cfg_.commit_base +
                           TransferTime(pending_bytes_, cfg_.write_mb_per_sec) +
                           pending_meta_;
  pending_bytes_ = 0;
  pending_meta_ = SimTime{};
  stats_.write_busy += duration;

  sim_.After(duration, [this, epoch = std::move(epoch)]() mutable {
    for (auto& done : epoch) {
      if (done) done();
    }
    if (!waiters_.empty()) {
      StartCommit();
    } else {
      commit_running_ = false;
    }
  });
}

void Disk::Read(std::uint64_t bytes, Done done) {
  ++stats_.reads;
  stats_.bytes_read += bytes;
  const SimTime service =
      cfg_.read_seek + TransferTime(bytes, cfg_.read_mb_per_sec);
  read_queue_.push_back(ReadReq{service, std::move(done)});
  if (!read_running_) StartNextRead();
}

void Disk::StartNextRead() {
  if (read_queue_.empty()) {
    read_running_ = false;
    return;
  }
  read_running_ = true;
  ReadReq req = std::move(read_queue_.front());
  read_queue_.pop_front();
  stats_.read_busy += req.service;
  sim_.After(req.service, [this, done = std::move(req.done)]() mutable {
    if (done) done();
    StartNextRead();
  });
}

}  // namespace sams::sim
