// Simulated network path between the SMTP client machine and the mail
// server: fixed one-way propagation delay (the paper emulates a 30 ms
// WAN with tc on a gigabit switch) plus serialization at a configurable
// bandwidth. Bandwidth only matters for DATA payloads; command lines
// are latency-bound.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.h"
#include "util/time.h"

namespace sams::sim {

struct NetworkConfig {
  SimTime one_way_delay = SimTime::Millis(15);  // 30 ms RTT / 2
  double mb_per_sec = 100.0;                    // effective gigabit path
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Network {
 public:
  using Done = std::function<void()>;

  Network(Simulator& sim, NetworkConfig cfg) : sim_(sim), cfg_(cfg) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Delivers a `bytes`-sized message to the other side after
  // propagation + serialization delay. Messages do not queue on each
  // other (the link is far from saturated in all experiments).
  void Send(std::uint64_t bytes, Done deliver);

  // One full round trip (request + response of negligible size).
  SimTime Rtt() const { return cfg_.one_way_delay * 2; }
  SimTime OneWay() const { return cfg_.one_way_delay; }

  const NetworkStats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  NetworkConfig cfg_;
  NetworkStats stats_;
};

}  // namespace sams::sim
