#include "sim/network.h"

namespace sams::sim {

void Network::Send(std::uint64_t bytes, Done deliver) {
  ++stats_.messages;
  stats_.bytes += bytes;
  const SimTime serialization = SimTime::SecondsF(
      static_cast<double>(bytes) / (cfg_.mb_per_sec * 1024.0 * 1024.0));
  if (!deliver) return;  // stats-only send (e.g. fire-and-forget reply)
  sim_.After(cfg_.one_way_delay + serialization, std::move(deliver));
}

}  // namespace sams::sim
