// Structured JSONL event log — the narrative half of the telemetry
// plane (DESIGN.md §11).
//
// Metrics aggregate; events explain. One record per session outcome
// (verdict, per-stage durations, bytes, shard, peer /24) makes the
// spam-vs-ham flow separation of Schatzmann et al. (arXiv 0808.4104)
// computable offline, and one record per operational event (worker
// death, shed, stall, recovery) replaces the ad-hoc stderr writes that
// previously vanished into the console.
//
// Records are single JSON lines:
//   {"ts_ms":…,"subsystem":"smtp","event":"session","severity":"info",…}
//
// Defenses against the log becoming its own overload vector:
//   * per-subsystem severity floors (SetSubsystemLevel) drop records
//     before they are formatted;
//   * a global token bucket (max_records_per_sec) bounds the write
//     rate under a session storm — dropped records are counted, never
//     blocked on.
//
// Thread-safe; the hot path is one mutex acquisition plus a buffered
// fwrite. Emit() never blocks on I/O completion (no fsync).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sams::obs {

enum class EventSeverity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* EventSeverityName(EventSeverity severity);

// Builder for one record; field order is preserved in the output line.
class EventRecord {
 public:
  EventRecord(std::string subsystem, std::string event,
              EventSeverity severity = EventSeverity::kInfo);

  EventRecord& Str(const std::string& key, const std::string& value);
  EventRecord& Int(const std::string& key, std::int64_t value);
  EventRecord& Num(const std::string& key, double value);
  EventRecord& Bool(const std::string& key, bool value);

  const std::string& subsystem() const { return subsystem_; }
  EventSeverity severity() const { return severity_; }

 private:
  friend class EventLog;
  std::string subsystem_;
  std::string event_;
  EventSeverity severity_;
  // (key, already-JSON-encoded value) in insertion order.
  std::vector<std::pair<std::string, std::string>> fields_;
};

class EventLog {
 public:
  struct Options {
    // Output: `sink` (test seam) wins over `path` (append mode) wins
    // over stderr.
    std::string path;
    std::function<void(const std::string& line)> sink;
    // Global token bucket, records per wall second; 0 = unlimited.
    int max_records_per_sec = 2000;
    // Records below this severity are suppressed unless a subsystem
    // override says otherwise.
    EventSeverity min_severity = EventSeverity::kInfo;
    // Wall-clock milliseconds for ts_ms; test seam (default: real).
    std::function<std::int64_t()> clock_ms;
  };

  EventLog();  // default Options (stderr sink)
  explicit EventLog(Options opts);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Per-subsystem severity floor (overrides min_severity either way).
  void SetSubsystemLevel(const std::string& subsystem, EventSeverity min);

  // Formats and writes one record. False when leveled out or rate
  // limited (counted, never an error).
  bool Emit(const EventRecord& record);

  // Lazy variant for hot paths: admission (severity floor + token
  // bucket) is decided FIRST and `fill` runs only on admitted records,
  // so a rate-limited session never pays for field formatting. At
  // 2000 records/s cap and >10k sessions/s, that is most of them.
  bool Emit(const std::string& subsystem, const std::string& event,
            EventSeverity severity,
            const std::function<void(EventRecord&)>& fill);

  // Routes SAMS_LOG output through this log as subsystem "log"
  // records; the destructor restores the default stderr sink. At most
  // one EventLog may hold the bridge at a time.
  void InstallLogBridge();

  void Flush();

  std::uint64_t emitted() const;
  std::uint64_t suppressed() const;     // below the severity floor
  std::uint64_t rate_limited() const;   // dropped by the token bucket

  // Publishes sams_obs_events_{emitted,suppressed,rate_limited}_total.
  void BindMetrics(Registry& registry);

 private:
  bool Admit(const std::string& subsystem, EventSeverity severity,
             std::int64_t now_ms);
  void WriteLine(const EventRecord& record, std::int64_t now_ms);

  Options opts_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;   // owned when opened from opts_.path
  bool owns_file_ = false;
  bool bridge_installed_ = false;
  std::unordered_map<std::string, EventSeverity> subsystem_levels_;
  std::int64_t window_start_ms_ = 0;
  int window_count_ = 0;
  std::int64_t last_flush_ms_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t rate_limited_ = 0;

  // Optional observability (null until BindMetrics).
  Counter* emitted_total_ = nullptr;
  Counter* suppressed_total_ = nullptr;
  Counter* rate_limited_total_ = nullptr;
};

}  // namespace sams::obs
