#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sams::obs {
namespace {

// Prometheus label values escape backslash, double-quote and newline.
std::string EscapeLabel(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string LabelBlock(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeLabel(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string PrometheusText(Registry& registry) {
  registry.Collect();
  std::string out;
  std::string last_family;
  for (const MetricFamily& family : registry.Families()) {
    if (family.name != last_family) {
      if (!family.help.empty()) {
        out += "# HELP " + family.name + " " + family.help + "\n";
      }
      out += "# TYPE " + family.name + " " +
             MetricTypeName(family.type) + "\n";
      last_family = family.name;
    }
    char buf[64];
    switch (family.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, family.counter->value());
        out += family.name + LabelBlock(family.labels) + " " + buf + "\n";
        break;
      case MetricType::kGauge:
        out += family.name + LabelBlock(family.labels) + " " +
               FormatDouble(family.gauge->value()) + "\n";
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *family.histogram;
        const auto cum = h.CumulativeCounts();
        const auto& bounds = h.bounds();
        for (std::size_t i = 0; i < cum.size(); ++i) {
          const std::string le =
              i < bounds.size() ? FormatDouble(bounds[i]) : "+Inf";
          std::snprintf(buf, sizeof(buf), "%" PRIu64, cum[i]);
          out += family.name + "_bucket" +
                 LabelBlock(family.labels, "le", le) + " " + buf + "\n";
        }
        out += family.name + "_sum" + LabelBlock(family.labels) + " " +
               FormatDouble(h.sum()) + "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
        out += family.name + "_count" + LabelBlock(family.labels) + " " +
               buf + "\n";
        break;
      }
    }
  }
  return out;
}

std::string JsonSnapshot(Registry& registry) {
  registry.Collect();
  std::string out = "{\n  \"metrics\": [\n";
  bool first = true;
  char buf[64];
  for (const MetricFamily& family : registry.Families()) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\":\"" + JsonEscape(family.name) + "\",\"type\":\"" +
           MetricTypeName(family.type) + "\",\"labels\":" +
           JsonLabels(family.labels);
    switch (family.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, family.counter->value());
        out += std::string(",\"value\":") + buf;
        break;
      case MetricType::kGauge:
        out += ",\"value\":" + FormatDouble(family.gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *family.histogram;
        out += ",\"count\":";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
        out += buf;
        out += ",\"sum\":" + FormatDouble(h.sum());
        out += ",\"p50\":" + FormatDouble(h.Percentile(50));
        out += ",\"p99\":" + FormatDouble(h.Percentile(99));
        out += ",\"p999\":" + FormatDouble(h.Percentile(99.9));
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

util::Error WriteJsonSnapshot(Registry& registry, const std::string& path) {
  const std::string body = JsonSnapshot(registry);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return util::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return util::IoError("write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::IoError("rename " + tmp + " -> " + path);
  }
  return util::OkError();
}

}  // namespace sams::obs
