// sams_build_info — makes every scrape/snapshot attributable to a
// commit. The gauge's value is always 1; the payload is its labels:
//
//   sams_build_info{sha="…",build="…",faults="enabled|disabled"} 1
//
// `sha` and `build` come from compile definitions the build system
// stamps onto build_info.cc (SAMS_GIT_SHA / SAMS_BUILD_TYPE), falling
// back to "unknown" when compiled bare (e.g. the CI -fsyntax-only
// gate); `faults` reflects the compile-time SAMS_FAULT_DISABLED state
// so a production scrape proves the chaos hooks are compiled out.
#pragma once

#include "obs/metrics.h"

namespace sams::obs {

const char* BuildGitSha();
const char* BuildType();
bool BuildFaultInjectionDisabled();

// Registers (idempotently) and returns the build-info gauge.
Gauge& RegisterBuildInfo(Registry& registry);

}  // namespace sams::obs
