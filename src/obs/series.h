// In-process time-series rings — the sampling half of the telemetry
// plane (DESIGN.md §11).
//
// A Registry answers "what is the value NOW"; saturation analysis
// (ROADMAP item 1's load-storm curves) needs "how did it get there".
// TimeSeries closes that gap without an external scraper: a sampler
// thread snapshots a registered set of probes every interval_ms into
// fixed-capacity per-series rings, so a bench or the admin endpoint's
// /series handler can dump the whole saturation trajectory after the
// fact. Capacity is bounded (default 600 samples ≈ one minute at
// 100 ms), old samples are overwritten, and the sampler touches only
// atomics and short mutexed sections — cheap enough to leave on in
// production (bench_obs_overhead gates the cost at <3%).
//
// Probes are read lazily by (metric name, labels) at sample time, so a
// series may be registered before the instrument exists (per-shard
// gauges appear only after Start()); a missing instrument samples as
// NaN-free 0.0 rather than faulting.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sams::obs {

// One fixed-capacity ring of (unix_ms, value) samples.
class SeriesRing {
 public:
  struct Sample {
    std::int64_t t_ms = 0;
    double value = 0.0;
  };

  explicit SeriesRing(std::size_t capacity);

  void Push(std::int64_t t_ms, double value);

  // Retained samples, oldest first.
  std::vector<Sample> Snapshot() const;

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total() const { return total_; }  // ever pushed

 private:
  std::vector<Sample> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

class TimeSeries {
 public:
  struct Options {
    int interval_ms = 100;      // sampler thread period
    std::size_t capacity = 600; // samples retained per series
  };

  TimeSeries();  // default Options
  explicit TimeSeries(Options opts);
  ~TimeSeries();  // Stop()s the sampler

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  // Registers a named series fed by `probe` at every sample tick.
  // Duplicate names replace the probe but keep the ring.
  void AddProbe(const std::string& name, std::function<double()> probe);

  // Registry-driven probes, looked up lazily at sample time. The
  // registry must outlive this TimeSeries; Collect() runs once per
  // sample tick so collector-backed instruments are fresh.
  void AddCounterProbe(Registry& registry, const std::string& series,
                       const std::string& metric, Labels labels = {});
  void AddGaugeProbe(Registry& registry, const std::string& series,
                     const std::string& metric, Labels labels = {});
  void AddPercentileProbe(Registry& registry, const std::string& series,
                          const std::string& metric, double percentile,
                          Labels labels = {});

  // Takes one sample of every probe. `t_ms` < 0 means wall-clock now
  // (tests pass explicit timestamps for determinism).
  void SampleOnce(std::int64_t t_ms = -1);

  // Starts/stops the background sampler thread. Idempotent.
  void Start();
  void Stop();

  // {"interval_ms":..,"capacity":..,"samples":..,"series":[
  //   {"name":"..","points":[[t_ms,value],..]},..]}
  std::string ToJson() const;

  std::size_t series_count() const;
  std::uint64_t samples_taken() const;

  // Publishes sams_obs_series_count / sams_obs_series_samples_total /
  // sams_obs_sample_duration_us.
  void BindMetrics(Registry& registry);

 private:
  struct Series {
    std::string name;
    std::function<double()> probe;
    SeriesRing ring;
  };

  void RunSampler();
  void CollectRegistries();

  Options opts_;
  mutable std::mutex mutex_;
  std::vector<Series> series_;
  std::vector<Registry*> registries_;  // Collect()ed before each sample
  std::uint64_t samples_taken_ = 0;

  std::thread sampler_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;

  // Optional observability (null until BindMetrics).
  Counter* samples_total_ = nullptr;
  Gauge* count_gauge_ = nullptr;
  Histogram* sample_us_ = nullptr;
};

}  // namespace sams::obs
