// sams::obs — the unified metrics registry.
//
// Every subsystem of the reproduction (event loop, SMTP sessions,
// DNSBL resolver, MFS stores, queue manager, simulated machine)
// publishes its numbers through one process-visible Registry so the
// figure benches, the live server and the tests all read the same
// counters the paper's tables quote. Three instrument kinds:
//
//   Counter   — monotonic event count (lock-free atomic increment).
//   Gauge     — instantaneous level (queue depth, busy workers).
//   Histogram — fixed exponential buckets; powers latency percentiles
//               without storing samples (the hot path pays one atomic
//               add per observation).
//
// Identity is (name, sorted labels); registering the same identity
// twice returns the same instrument, so components may bind lazily.
// Components whose stats live in legacy structs register a *collector*
// instead: a callback run at export time that refreshes snapshot-style
// instruments (Counter::Overwrite / Gauge::Set). Collectors must not
// outlive the component they read from — bind to a registry that is
// dumped only while the component is alive.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sams::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

class Counter {
 public:
  void Inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  // Snapshot refresh from a legacy stats struct (collector use only);
  // the caller guarantees monotonicity.
  void Overwrite(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double by) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + by,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Bucket upper bounds grow exponentially: bounds[i] = start * growth^i,
// with a final +Inf bucket. Observations clamp into the last bucket.
struct HistogramSpec {
  double start = 1.0;    // first bucket upper bound
  double growth = 2.0;   // ratio between consecutive bounds
  int buckets = 16;      // finite buckets (excluding +Inf)
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void Observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  // Upper bounds of the finite buckets, ascending.
  const std::vector<double>& bounds() const { return bounds_; }
  // Cumulative counts aligned with bounds(), plus the +Inf bucket as
  // the final element (== count()).
  std::vector<std::uint64_t> CumulativeCounts() const;

  // Percentile estimate (p in [0,100]) by linear interpolation inside
  // the containing bucket; exact enough for latency reporting.
  double Percentile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // one per bound + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// One registered instrument, as seen by exporters.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Process-wide registry for components without an owner stack (the
  // live server binds here).
  static Registry& Default();

  // Get-or-create. Returned references stay valid for the registry's
  // lifetime. Re-registering an identity with a different type aborts.
  Counter& GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          HistogramSpec spec, Labels labels = {});

  // Snapshot-style publishers; run (in registration order) by
  // Collect() before every export.
  void AddCollector(std::function<void()> fn);
  void Collect();

  // Lookup for tests/exporters; nullptr when absent.
  const Counter* FindCounter(const std::string& name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels = {}) const;

  // Stable-order (name, then labels) view of everything registered.
  std::vector<MetricFamily> Families() const;

  std::size_t size() const;

 private:
  struct Entry {
    MetricFamily family;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::string Key(const std::string& name, const Labels& labels);
  Entry* Find(const std::string& name, const Labels& labels);
  Entry& Register(const std::string& name, const std::string& help,
                  MetricType type, Labels labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace sams::obs
