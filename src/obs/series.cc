#include "obs/series.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/time.h"

namespace sams::obs {
namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonString(const std::string& v) {
  std::string out = "\"";
  for (char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

SeriesRing::SeriesRing(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void SeriesRing::Push(std::int64_t t_ms, double value) {
  ring_[next_] = {t_ms, value};
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

std::vector<SeriesRing::Sample> SeriesRing::Snapshot() const {
  std::vector<Sample> out;
  const std::size_t held = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(held);
  // Oldest retained sample sits at next_ once the ring has wrapped.
  std::size_t idx = total_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(ring_[idx]);
    idx = (idx + 1) % ring_.size();
  }
  return out;
}

TimeSeries::TimeSeries() : TimeSeries(Options{}) {}

TimeSeries::TimeSeries(Options opts) : opts_(opts) {
  opts_.interval_ms = std::max(1, opts_.interval_ms);
}

TimeSeries::~TimeSeries() { Stop(); }

void TimeSeries::AddProbe(const std::string& name,
                          std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Series& s : series_) {
    if (s.name == name) {
      s.probe = std::move(probe);
      return;
    }
  }
  series_.push_back({name, std::move(probe), SeriesRing(opts_.capacity)});
  if (count_gauge_ != nullptr) {
    count_gauge_->Set(static_cast<double>(series_.size()));
  }
}

void TimeSeries::AddCounterProbe(Registry& registry, const std::string& series,
                                 const std::string& metric, Labels labels) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(registries_.begin(), registries_.end(), &registry) ==
        registries_.end()) {
      registries_.push_back(&registry);
    }
  }
  AddProbe(series, [&registry, metric, labels] {
    const Counter* c = registry.FindCounter(metric, labels);
    return c != nullptr ? static_cast<double>(c->value()) : 0.0;
  });
}

void TimeSeries::AddGaugeProbe(Registry& registry, const std::string& series,
                               const std::string& metric, Labels labels) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(registries_.begin(), registries_.end(), &registry) ==
        registries_.end()) {
      registries_.push_back(&registry);
    }
  }
  AddProbe(series, [&registry, metric, labels] {
    const Gauge* g = registry.FindGauge(metric, labels);
    return g != nullptr ? g->value() : 0.0;
  });
}

void TimeSeries::AddPercentileProbe(Registry& registry,
                                    const std::string& series,
                                    const std::string& metric,
                                    double percentile, Labels labels) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(registries_.begin(), registries_.end(), &registry) ==
        registries_.end()) {
      registries_.push_back(&registry);
    }
  }
  AddProbe(series, [&registry, metric, percentile, labels] {
    const Histogram* h = registry.FindHistogram(metric, labels);
    return h != nullptr ? h->Percentile(percentile) : 0.0;
  });
}

void TimeSeries::CollectRegistries() {
  std::vector<Registry*> registries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    registries = registries_;
  }
  for (Registry* registry : registries) registry->Collect();
}

void TimeSeries::SampleOnce(std::int64_t t_ms) {
  const std::int64_t begin_ns = util::MonotonicNanos();
  CollectRegistries();
  if (t_ms < 0) {
    t_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
               .count();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (Series& s : series_) {
    // Probes read registry instruments (atomics behind the registry
    // mutex); a throwing probe would be a programming error, and the
    // codebase is -fno-exceptions-style by convention.
    s.ring.Push(t_ms, s.probe ? s.probe() : 0.0);
  }
  ++samples_taken_;
  if (samples_total_ != nullptr) samples_total_->Inc();
  if (sample_us_ != nullptr) {
    sample_us_->Observe(
        static_cast<double>(util::MonotonicNanos() - begin_ns) / 1e3);
  }
}

void TimeSeries::Start() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  sampler_ = std::thread([this] { RunSampler(); });
}

void TimeSeries::Stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  std::lock_guard<std::mutex> lock(wake_mutex_);
  running_ = false;
}

void TimeSeries::RunSampler() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                     [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    SampleOnce();
  }
}

std::string TimeSeries::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"interval_ms\":" + std::to_string(opts_.interval_ms) +
                    ",\"capacity\":" + std::to_string(opts_.capacity) +
                    ",\"samples\":" + std::to_string(samples_taken_) +
                    ",\n  \"series\": [\n";
  bool first_series = true;
  for (const Series& s : series_) {
    if (!first_series) out += ",\n";
    first_series = false;
    out += "    {\"name\":" + JsonString(s.name) + ",\"points\":[";
    bool first_point = true;
    for (const SeriesRing::Sample& sample : s.ring.Snapshot()) {
      if (!first_point) out += ',';
      first_point = false;
      out += '[' + std::to_string(sample.t_ms) + ',' +
             JsonNumber(sample.value) + ']';
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::size_t TimeSeries::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::uint64_t TimeSeries::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_taken_;
}

void TimeSeries::BindMetrics(Registry& registry) {
  samples_total_ = &registry.GetCounter("sams_obs_series_samples_total",
                                        "time-series sampler ticks");
  count_gauge_ = &registry.GetGauge("sams_obs_series_count",
                                    "registered time-series probes");
  sample_us_ = &registry.GetHistogram(
      "sams_obs_sample_duration_us",
      "wall time of one sampler tick across every probe",
      HistogramSpec{1.0, 2.0, 16});
  std::lock_guard<std::mutex> lock(mutex_);
  count_gauge_->Set(static_cast<double>(series_.size()));
}

}  // namespace sams::obs
