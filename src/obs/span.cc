#include "obs/span.h"

#include <algorithm>
#include <cstdio>

#include "util/time.h"

namespace sams::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAccept:
      return "accept";
    case Stage::kBanner:
      return "banner";
    case Stage::kHelo:
      return "helo";
    case Stage::kMail:
      return "mail";
    case Stage::kRcpt:
      return "rcpt";
    case Stage::kDnsbl:
      return "dnsbl";
    case Stage::kHandoff:
      return "handoff";
    case Stage::kData:
      return "data";
    case Stage::kStoreWrite:
      return "store_write";
    case Stage::kDelivery:
      return "delivery";
    case Stage::kBounce:
      return "bounce";
    case Stage::kUnfinished:
      return "unfinished";
    case Stage::kQuit:
      return "quit";
  }
  return "unknown";
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void TraceSink::Record(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = record;
  next_ = (next_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<SpanRecord> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  const std::size_t n = std::min<std::uint64_t>(recorded_, ring_.size());
  out.reserve(n);
  // Oldest retained record first: when the ring has wrapped that is
  // ring_[next_], otherwise index 0.
  const std::size_t first = recorded_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> TraceSink::SessionRecords(
    std::uint64_t session_id) const {
  std::vector<SpanRecord> out;
  for (const SpanRecord& r : Snapshot()) {
    if (r.session_id == session_id) out.push_back(r);
  }
  return out;
}

std::string TraceSink::DumpText(std::size_t max_sessions) const {
  const std::vector<SpanRecord> records = Snapshot();
  // Most recent sessions, by last appearance in the ring.
  std::vector<std::uint64_t> session_order;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (std::find(session_order.begin(), session_order.end(),
                  it->session_id) == session_order.end()) {
      session_order.push_back(it->session_id);
      if (session_order.size() >= max_sessions) break;
    }
  }
  std::reverse(session_order.begin(), session_order.end());

  std::string out;
  char buf[160];
  for (std::uint64_t id : session_order) {
    std::snprintf(buf, sizeof(buf), "session %llu\n",
                  static_cast<unsigned long long>(id));
    out += buf;
    for (const SpanRecord& r : records) {
      if (r.session_id != id) continue;
      std::snprintf(buf, sizeof(buf), "  %-11s start=%s dur=%s\n",
                    StageName(r.stage),
                    util::SimTime(r.start_ns).ToString().c_str(),
                    util::SimTime(r.duration_ns()).ToString().c_str());
      out += buf;
    }
  }
  return out;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

}  // namespace sams::obs
