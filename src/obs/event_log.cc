#include "obs/event_log.h"

#include <chrono>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace sams::obs {
namespace {

std::int64_t WallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string JsonQuote(const std::string& v) {
  std::string out = "\"";
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

EventSeverity FromLogLevel(util::LogLevel level) {
  switch (level) {
    case util::LogLevel::kDebug:
      return EventSeverity::kDebug;
    case util::LogLevel::kInfo:
      return EventSeverity::kInfo;
    case util::LogLevel::kWarn:
      return EventSeverity::kWarn;
    default:
      return EventSeverity::kError;
  }
}

}  // namespace

const char* EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug:
      return "debug";
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "?";
}

EventRecord::EventRecord(std::string subsystem, std::string event,
                         EventSeverity severity)
    : subsystem_(std::move(subsystem)), event_(std::move(event)),
      severity_(severity) {}

EventRecord& EventRecord::Str(const std::string& key,
                              const std::string& value) {
  fields_.emplace_back(key, JsonQuote(value));
  return *this;
}

EventRecord& EventRecord::Int(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

EventRecord& EventRecord::Num(const std::string& key, double value) {
  fields_.emplace_back(key, JsonNumber(value));
  return *this;
}

EventRecord& EventRecord::Bool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

EventLog::EventLog() : EventLog(Options{}) {}

EventLog::EventLog(Options opts) : opts_(std::move(opts)) {
  if (!opts_.sink && !opts_.path.empty()) {
    file_ = std::fopen(opts_.path.c_str(), "a");
    if (file_ != nullptr) {
      owns_file_ = true;
    } else {
      std::fprintf(stderr, "event log: open %s: %s — falling back to stderr\n",
                   opts_.path.c_str(), std::strerror(errno));
    }
  }
  if (!opts_.sink && file_ == nullptr) file_ = stderr;
}

EventLog::~EventLog() {
  if (bridge_installed_) util::SetLogSink(nullptr);
  Flush();
  if (owns_file_ && file_ != nullptr) std::fclose(file_);
}

void EventLog::SetSubsystemLevel(const std::string& subsystem,
                                 EventSeverity min) {
  std::lock_guard<std::mutex> lock(mutex_);
  subsystem_levels_[subsystem] = min;
}

bool EventLog::Admit(const std::string& subsystem, EventSeverity severity,
                     std::int64_t now_ms) {
  EventSeverity floor = opts_.min_severity;
  auto it = subsystem_levels_.find(subsystem);
  if (it != subsystem_levels_.end()) floor = it->second;
  if (severity < floor) {
    ++suppressed_;
    if (suppressed_total_ != nullptr) suppressed_total_->Inc();
    return false;
  }
  if (opts_.max_records_per_sec > 0) {
    if (now_ms - window_start_ms_ >= 1000) {
      window_start_ms_ = now_ms;
      window_count_ = 0;
    }
    if (window_count_ >= opts_.max_records_per_sec) {
      ++rate_limited_;
      if (rate_limited_total_ != nullptr) rate_limited_total_->Inc();
      return false;
    }
    ++window_count_;
  }
  return true;
}

bool EventLog::Emit(const EventRecord& record) {
  const std::int64_t now_ms =
      opts_.clock_ms ? opts_.clock_ms() : WallMillis();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!Admit(record.subsystem_, record.severity_, now_ms)) return false;
    ++emitted_;
  }
  if (emitted_total_ != nullptr) emitted_total_->Inc();
  WriteLine(record, now_ms);
  return true;
}

bool EventLog::Emit(const std::string& subsystem, const std::string& event,
                    EventSeverity severity,
                    const std::function<void(EventRecord&)>& fill) {
  const std::int64_t now_ms =
      opts_.clock_ms ? opts_.clock_ms() : WallMillis();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!Admit(subsystem, severity, now_ms)) return false;
    ++emitted_;
  }
  if (emitted_total_ != nullptr) emitted_total_->Inc();
  EventRecord record(subsystem, event, severity);
  if (fill) fill(record);
  WriteLine(record, now_ms);
  return true;
}

void EventLog::WriteLine(const EventRecord& record, std::int64_t now_ms) {
  std::string line;
  line = "{\"ts_ms\":" + std::to_string(now_ms) +
         ",\"subsystem\":" + JsonQuote(record.subsystem_) +
         ",\"event\":" + JsonQuote(record.event_) + ",\"severity\":\"" +
         EventSeverityName(record.severity_) + "\"";
  for (const auto& [key, encoded] : record.fields_) {
    line += ',';
    line += JsonQuote(key);
    line += ':';
    line += encoded;
  }
  line += "}\n";
  if (opts_.sink) {
    opts_.sink(line);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  // Operational records (warn+) are what an operator tails for; make
  // them visible immediately. Info-rate session records stay buffered,
  // but never for more than a second — a tailed file at low traffic
  // must still show the last session promptly.
  if (record.severity_ >= EventSeverity::kWarn ||
      now_ms - last_flush_ms_ >= 1000) {
    std::fflush(file_);
    last_flush_ms_ = now_ms;
  }
}

void EventLog::InstallLogBridge() {
  bridge_installed_ = true;
  util::SetLogSink([this](util::LogLevel level, const std::string& text) {
    Emit(EventRecord("log", "message", FromLogLevel(level)).Str("text", text));
  });
}

void EventLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

std::uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t EventLog::suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

std::uint64_t EventLog::rate_limited() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_limited_;
}

void EventLog::BindMetrics(Registry& registry) {
  emitted_total_ = &registry.GetCounter("sams_obs_events_emitted_total",
                                        "event-log records written");
  suppressed_total_ = &registry.GetCounter(
      "sams_obs_events_suppressed_total",
      "event-log records dropped below the severity floor");
  rate_limited_total_ = &registry.GetCounter(
      "sams_obs_events_rate_limited_total",
      "event-log records dropped by the per-second token bucket");
}

}  // namespace sams::obs
