// Exporters for the metrics registry.
//
//   PrometheusText — the standard text exposition format (one family
//                    per # TYPE block, histogram as _bucket/_sum/_count
//                    with cumulative le labels). The live server prints
//                    this on SIGUSR1; scrapers and humans both read it.
//   JsonSnapshot   — a flat JSON document the figure benches write as
//                    BENCH_<name>.json so the perf trajectory across
//                    PRs is machine-diffable.
//
// Both exporters call Registry::Collect() first so snapshot-style
// instruments are fresh, and emit families in (name, labels) order so
// output is deterministic and golden-testable.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "util/result.h"

namespace sams::obs {

std::string PrometheusText(Registry& registry);

std::string JsonSnapshot(Registry& registry);

// Writes JsonSnapshot(registry) to `path` (atomically via rename).
util::Error WriteJsonSnapshot(Registry& registry, const std::string& path);

}  // namespace sams::obs
