#include "obs/build_info.h"

namespace sams::obs {

#ifndef SAMS_GIT_SHA
#define SAMS_GIT_SHA "unknown"
#endif
#ifndef SAMS_BUILD_TYPE
#define SAMS_BUILD_TYPE "unknown"
#endif

const char* BuildGitSha() { return SAMS_GIT_SHA; }

const char* BuildType() { return SAMS_BUILD_TYPE; }

bool BuildFaultInjectionDisabled() {
#ifdef SAMS_FAULT_DISABLED
  return true;
#else
  return false;
#endif
}

Gauge& RegisterBuildInfo(Registry& registry) {
  Gauge& info = registry.GetGauge(
      "sams_build_info", "build identity (value is always 1)",
      {{"build", BuildType()},
       {"faults", BuildFaultInjectionDisabled() ? "disabled" : "enabled"},
       {"sha", BuildGitSha()}});
  info.Set(1.0);
  return info;
}

}  // namespace sams::obs
