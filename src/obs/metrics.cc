#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sams::obs {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// --- Histogram --------------------------------------------------------

Histogram::Histogram(HistogramSpec spec)
    : counts_(static_cast<std::size_t>(std::max(spec.buckets, 1)) + 1) {
  SAMS_CHECK(spec.start > 0.0);
  SAMS_CHECK(spec.growth > 1.0);
  double bound = spec.start;
  for (int i = 0; i < std::max(spec.buckets, 1); ++i) {
    bounds_.push_back(bound);
    bound *= spec.growth;
  }
}

void Histogram::Observe(double v) {
  // Exponential bounds make the bucket index a log, but a linear scan
  // over <=32 doubles beats the transcendental on every miss path we
  // instrument; the common case exits early.
  std::size_t idx = bounds_.size();  // +Inf bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::CumulativeCounts() const {
  std::vector<std::uint64_t> out(counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

double Histogram::Percentile(double p) const {
  const std::vector<std::uint64_t> cum = CumulativeCounts();
  const std::uint64_t total = cum.empty() ? 0 : cum.back();
  if (total == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(total);
  for (std::size_t i = 0; i < cum.size(); ++i) {
    if (static_cast<double>(cum[i]) >= rank) {
      const double hi = i < bounds_.size() ? bounds_[i] : bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const std::uint64_t below = i == 0 ? 0 : cum[i - 1];
      const std::uint64_t in_bucket = cum[i] - below;
      if (in_bucket == 0) return hi;
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
  }
  return bounds_.back();
}

// --- Registry ---------------------------------------------------------

Registry& Registry::Default() {
  static Registry* instance = new Registry();
  return *instance;
}

std::string Registry::Key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Registry::Entry* Registry::Find(const std::string& name,
                                const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const std::string key = Key(name, sorted);
  for (auto& entry : entries_) {
    if (Key(entry->family.name, entry->family.labels) == key) {
      return entry.get();
    }
  }
  return nullptr;
}

Registry::Entry& Registry::Register(const std::string& name,
                                    const std::string& help, MetricType type,
                                    Labels labels) {
  std::sort(labels.begin(), labels.end());
  auto entry = std::make_unique<Entry>();
  entry->family.name = name;
  entry->family.help = help;
  entry->family.type = type;
  entry->family.labels = std::move(labels);
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::GetCounter(const std::string& name, const std::string& help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* found = Find(name, labels)) {
    SAMS_CHECK(found->family.type == MetricType::kCounter)
        << "metric " << name << " re-registered with a different type";
    return *found->counter;
  }
  Entry& entry = Register(name, help, MetricType::kCounter, std::move(labels));
  entry.counter = std::make_unique<Counter>();
  entry.family.counter = entry.counter.get();
  return *entry.counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help,
                          Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* found = Find(name, labels)) {
    SAMS_CHECK(found->family.type == MetricType::kGauge)
        << "metric " << name << " re-registered with a different type";
    return *found->gauge;
  }
  Entry& entry = Register(name, help, MetricType::kGauge, std::move(labels));
  entry.gauge = std::make_unique<Gauge>();
  entry.family.gauge = entry.gauge.get();
  return *entry.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help, HistogramSpec spec,
                                  Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* found = Find(name, labels)) {
    SAMS_CHECK(found->family.type == MetricType::kHistogram)
        << "metric " << name << " re-registered with a different type";
    return *found->histogram;
  }
  Entry& entry =
      Register(name, help, MetricType::kHistogram, std::move(labels));
  entry.histogram = std::make_unique<Histogram>(spec);
  entry.family.histogram = entry.histogram.get();
  return *entry.histogram;
}

void Registry::AddCollector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(fn));
}

void Registry::Collect() {
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn();
}

const Counter* Registry::FindCounter(const std::string& name,
                                     const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = const_cast<Registry*>(this)->Find(name, labels);
  return entry ? entry->counter.get() : nullptr;
}

const Gauge* Registry::FindGauge(const std::string& name,
                                 const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = const_cast<Registry*>(this)->Find(name, labels);
  return entry ? entry->gauge.get() : nullptr;
}

const Histogram* Registry::FindHistogram(const std::string& name,
                                         const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = const_cast<Registry*>(this)->Find(name, labels);
  return entry ? entry->histogram.get() : nullptr;
}

std::vector<MetricFamily> Registry::Families() const {
  std::vector<MetricFamily> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& entry : entries_) out.push_back(entry->family);
  }
  std::sort(out.begin(), out.end(),
            [](const MetricFamily& a, const MetricFamily& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace sams::obs
