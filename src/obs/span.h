// Per-session span tracing across the SMTP pipeline.
//
// A mail session walks a fixed sequence of stages (the paper's Figures
// 6/7 pipeline): accept → HELO → MAIL → RCPT → DNSBL wait →
// fork-after-trust handoff → DATA → store write → delivery or
// bounce/unfinished teardown. Each stage becomes one SpanRecord
// (session id, stage, start, end) pushed into a fixed-capacity ring
// sink; timestamps are raw nanoseconds so the same tracer runs against
// both the real clock (util::MonotonicNanos) and the simulated clock
// (sim::Simulator::Now().nanos()).
//
// The sink is a debugging instrument, not an analytics store: when the
// ring wraps, old sessions are overwritten (dropped() counts them), and
// DumpText() renders the most recent sessions — which is exactly what
// one wants when asking "why was this session rejected/unfinished?".
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sams::obs {

enum class Stage {
  kAccept,
  kBanner,
  kHelo,
  kMail,
  kRcpt,
  kDnsbl,
  kHandoff,
  kData,
  kStoreWrite,
  kDelivery,
  kBounce,
  kUnfinished,
  kQuit,
};

// Number of Stage values; sized for per-stage accumulation arrays.
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kQuit) + 1;

const char* StageName(Stage stage);

struct SpanRecord {
  std::uint64_t session_id = 0;
  Stage stage = Stage::kAccept;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 4096);

  void Record(const SpanRecord& record);

  // All retained records in recording order (oldest first).
  std::vector<SpanRecord> Snapshot() const;
  // Retained records for one session, in recording order.
  std::vector<SpanRecord> SessionRecords(std::uint64_t session_id) const;

  // Human-readable dump of the most recent `max_sessions` sessions,
  // one line per span, grouped by session.
  std::string DumpText(std::size_t max_sessions = 16) const;

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;  // overwritten by ring wrap
  std::size_t capacity() const { return ring_.size(); }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

// Moves one session through its stages, emitting a SpanRecord each
// time the stage changes. Plain value type: safe to copy/move inside
// session state that travels through std::function continuations; only
// explicit Enter/Close calls record, so a stale copy is inert.
class SessionSpan {
 public:
  SessionSpan() = default;  // detached: all calls no-op
  SessionSpan(TraceSink* sink, std::uint64_t session_id, Stage first,
              std::int64_t now_ns)
      : sink_(sink), session_id_(session_id), stage_(first), start_ns_(now_ns),
        open_(sink != nullptr) {}

  // Closes the current stage at `now_ns` and opens `next`.
  void Enter(Stage next, std::int64_t now_ns) {
    if (open_) {
      sink_->Record({session_id_, stage_, start_ns_, now_ns});
    }
    stage_ = next;
    start_ns_ = now_ns;
  }

  // Closes the current stage; the session is over.
  void Close(std::int64_t now_ns) {
    if (open_) {
      sink_->Record({session_id_, stage_, start_ns_, now_ns});
      open_ = false;
    }
  }

  bool attached() const { return open_; }
  std::uint64_t session_id() const { return session_id_; }
  Stage stage() const { return stage_; }
  std::int64_t stage_start_ns() const { return start_ns_; }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t session_id_ = 0;
  Stage stage_ = Stage::kAccept;
  std::int64_t start_ns_ = 0;
  bool open_ = false;
};

}  // namespace sams::obs
