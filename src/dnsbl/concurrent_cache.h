// ConcurrentPrefixCache — the shared DNSBLv6 verdict cache of the real
// server (DESIGN.md §10).
//
// All reactor shards consult one cache, so a /25 bitmap fetched by any
// shard answers every shard's next connection from that prefix — the
// §7.2 hit-ratio gain survives sharding. Unlike the simulation's
// TtlCache this one is thread-safe (sharded mutexes: the lock a lookup
// takes is chosen by prefix hash, so shards rarely contend), runs on
// the wall clock (monotonic nanoseconds), and is bounded: each lock
// shard keeps an LRU list and evicts its coldest entry when full, so a
// botnet sweeping address space cannot grow the cache without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dnsbl/blacklist_db.h"
#include "obs/metrics.h"

namespace sams::dnsbl {

struct ConcurrentCacheStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> insertions{0};
  std::atomic<std::uint64_t> expirations{0};  // stale entries dropped on probe
  std::atomic<std::uint64_t> evictions{0};    // LRU entries displaced when full
};

class ConcurrentPrefixCache {
 public:
  // `capacity` bounds the total entry count across all lock shards
  // (0 = unbounded); `ttl_ns` is wall-clock freshness. `lock_shards`
  // is rounded up to a power of two.
  ConcurrentPrefixCache(std::size_t capacity, std::int64_t ttl_ns,
                        std::size_t lock_shards = 16);

  ConcurrentPrefixCache(const ConcurrentPrefixCache&) = delete;
  ConcurrentPrefixCache& operator=(const ConcurrentPrefixCache&) = delete;

  // Fresh bitmap for `prefix` at `now_ns`, or nullopt. A hit refreshes
  // the entry's LRU position; a stale entry is erased on the spot.
  std::optional<PrefixBitmap> Lookup(Prefix25 prefix, std::int64_t now_ns);

  // Inserts/overwrites; evicts the shard's LRU entry when at capacity.
  void Insert(Prefix25 prefix, const PrefixBitmap& bitmap,
              std::int64_t now_ns);

  std::size_t size() const;
  const ConcurrentCacheStats& stats() const { return stats_; }

  // Publishes sams_dnsbl_ccache_* counters; live totals, no collector
  // needed. The registry must outlive the cache's users.
  void BindMetrics(obs::Registry& registry);

 private:
  struct Entry {
    PrefixBitmap bitmap;
    std::int64_t expires_ns = 0;
    std::list<Prefix25>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Prefix25, Entry> map;
    std::list<Prefix25> lru;  // front = most recently used
  };

  Shard& ShardFor(Prefix25 prefix) {
    // Multiplicative hash: /25 values are sequential for adjacent
    // networks, so masking the raw value would pile a /17's worth of
    // neighbours onto one lock.
    const std::uint64_t h = prefix.value() * 0x9E3779B97F4A7C15ULL;
    return shards_[(h >> 32) & shard_mask_];
  }

  std::size_t capacity_per_shard_;  // 0 = unbounded
  std::int64_t ttl_ns_;
  std::size_t shard_mask_;
  std::vector<Shard> shards_;
  ConcurrentCacheStats stats_;

  // Optional observability (null until BindMetrics).
  obs::Counter* lookups_counter_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* insertions_counter_ = nullptr;
  obs::Counter* expirations_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

}  // namespace sams::dnsbl
