// DNS wire format (RFC 1035 subset) for the real DNSBL daemon.
//
// The paper *emulated* DNSBLv6 ("Since DNSBLv6 is not implemented, we
// emulated DNS caching...", §7.2). This module implements it for real:
// the scheme needs nothing beyond standard DNS — a classic blacklist
// answer is an A record (127.0.0.x), and the /25 bitmap rides in the
// 128 bits of an AAAA record, exactly as §7.1 observes. Covers query
// and response encoding/parsing for QTYPE A and AAAA, QCLASS IN,
// single-question messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnsbl/blacklist_db.h"
#include "util/result.h"

namespace sams::dnsbl {

enum class QType : std::uint16_t {
  kA = 1,
  kAaaa = 28,
};

enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct DnsQuestion {
  std::string qname;  // dotted, no trailing dot
  QType qtype = QType::kA;
};

struct DnsQuery {
  std::uint16_t id = 0;
  DnsQuestion question;
};

struct DnsAnswer {
  RCode rcode = RCode::kNoError;
  // For A answers: 4 bytes; for AAAA: 16 bytes. Empty on NXDOMAIN.
  std::vector<std::uint8_t> rdata;
  std::uint32_t ttl = 0;
};

// --- encoding ----------------------------------------------------------

// Encodes a standard recursive-desired query.
util::Result<std::vector<std::uint8_t>> EncodeQuery(const DnsQuery& query);

// Encodes a response to `query`: one answer RR when rcode is NoError
// and rdata is non-empty, otherwise an answerless response with the
// given rcode.
util::Result<std::vector<std::uint8_t>> EncodeResponse(const DnsQuery& query,
                                                       const DnsAnswer& answer);

// --- parsing -----------------------------------------------------------

// Parses a query datagram (one question).
util::Result<DnsQuery> ParseQuery(const std::uint8_t* data, std::size_t size);

struct ParsedResponse {
  std::uint16_t id = 0;
  RCode rcode = RCode::kNoError;
  DnsQuestion question;
  std::vector<DnsAnswer> answers;
};

// Parses a response datagram (compression pointers supported in
// answer names).
util::Result<ParsedResponse> ParseResponse(const std::uint8_t* data,
                                           std::size_t size);

// Convenience: pack/unpack a PrefixBitmap into AAAA rdata.
std::vector<std::uint8_t> BitmapToRdata(const PrefixBitmap& bitmap);
util::Result<PrefixBitmap> RdataToBitmap(const std::vector<std::uint8_t>& rdata);

}  // namespace sams::dnsbl
