// DNS blacklist database (§4.3, §7).
//
// A DNSBL maps listed IPv4 addresses to an answer of the form
// 127.0.0.x, where x encodes the kind of spamming activity. The
// DNSBLv6 extension (§7.1) additionally answers a whole /25 at once as
// a 128-bit bitmap — one bit per address, exactly identifying each
// listed IP (no false positives by construction).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/ipv4.h"

namespace sams::dnsbl {

using util::Ipv4;
using util::Prefix24;
using util::Prefix25;

// 128-bit /25 bitmap, bit i = blacklist status of the i-th address.
class PrefixBitmap {
 public:
  bool Test(int bit) const {
    return (bytes_[static_cast<std::size_t>(bit) / 8] >> (bit % 8)) & 1;
  }
  void Set(int bit) {
    bytes_[static_cast<std::size_t>(bit) / 8] |=
        static_cast<std::uint8_t>(1u << (bit % 8));
  }
  bool TestIp(Ipv4 ip) const { return Test(Prefix25::BitIndex(ip)); }
  int PopCount() const;
  bool Any() const;
  PrefixBitmap& operator|=(const PrefixBitmap& other);
  bool operator==(const PrefixBitmap&) const = default;

  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

class BlacklistDb {
 public:
  // Lists `ip` with answer code 127.0.0.<code> (code in [1, 255]).
  void Add(Ipv4 ip, std::uint8_t code = 2);
  void Remove(Ipv4 ip);

  // Per-IP lookup: the classic DNSBL answer. 0 = not listed.
  std::uint8_t Lookup(Ipv4 ip) const;
  bool IsListed(Ipv4 ip) const { return Lookup(ip) != 0; }

  // DNSBLv6 lookup: the /25 bitmap.
  PrefixBitmap LookupPrefix(Prefix25 prefix) const;

  // Number of listed IPs inside a /24 (Figure 12's x-axis).
  int CountInPrefix24(Prefix24 prefix) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Ipv4, std::uint8_t> entries_;
  // Secondary index: /25 -> bitmap, kept in sync with entries_.
  std::unordered_map<Prefix25, PrefixBitmap> by_prefix_;
  std::unordered_map<Prefix24, int> count24_;
};

}  // namespace sams::dnsbl
