// UdpDnsblDaemon — a real DNSBL server over UDP.
//
// Implements what the paper proposes but only emulates (§7.2): a
// blacklist daemon that answers
//
//   A    w.z.y.x.<zone>       -> 127.0.0.code   (classic, §4.3)
//   AAAA {0|1}.z.y.x.<zone>   -> 128-bit /25 bitmap (DNSBLv6, §7.1)
//
// over genuine DNS datagrams on a loopback UDP socket, plus the
// matching blocking client used by tests and the dnsbl_daemon example.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "dnsbl/blacklist_db.h"
#include "dnsbl/dns_wire.h"
#include "util/fd.h"
#include "util/result.h"

namespace sams::dnsbl {

struct DaemonStats {
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> ip_queries{0};
  std::atomic<std::uint64_t> prefix_queries{0};
  std::atomic<std::uint64_t> listed_answers{0};
  std::atomic<std::uint64_t> nxdomain_answers{0};
  std::atomic<std::uint64_t> malformed{0};
};

class UdpDnsblDaemon {
 public:
  // The database must outlive the daemon. `response_delay_ms` > 0
  // emulates WAN RTT to a remote blacklist: each answer is held back
  // that long, without serializing concurrent queries (the serve loop
  // keeps receiving while answers age in a delay queue) — this is how
  // bench_dnsbl_overlap injects a controlled DNS RTT.
  UdpDnsblDaemon(std::string zone, const BlacklistDb& db,
                 std::uint32_t ttl_seconds = 24 * 3600,
                 int response_delay_ms = 0);
  ~UdpDnsblDaemon();

  UdpDnsblDaemon(const UdpDnsblDaemon&) = delete;
  UdpDnsblDaemon& operator=(const UdpDnsblDaemon&) = delete;

  // Binds 127.0.0.1:0 (ephemeral) and starts serving; returns the port.
  util::Result<std::uint16_t> Start();
  void Stop();

  const std::string& zone() const { return zone_; }
  const DaemonStats& stats() const { return stats_; }

 private:
  void ServeLoop();

  std::string zone_;
  const BlacklistDb& db_;
  std::uint32_t ttl_seconds_;
  int response_delay_ms_;
  util::UniqueFd socket_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  DaemonStats stats_;
};

// Blocking UDP DNSBL client. Query ids start at a random point (a
// predictable id stream makes off-path response forgery trivial), and
// RoundTrip keeps listening until its deadline when a datagram arrives
// whose id or question doesn't match the outstanding query — late
// retransmits and alien datagrams are ignored, not fatal.
class UdpDnsblClient {
 public:
  // `server_port` on 127.0.0.1; per-query timeout.
  UdpDnsblClient(std::uint16_t server_port, std::string zone,
                 int timeout_ms = 2'000);

  // Classic lookup: the 127.0.0.x code (0 when not listed / NXDOMAIN).
  util::Result<std::uint8_t> QueryIp(Ipv4 ip);

  // DNSBLv6 lookup: the /25 bitmap for ip's prefix.
  util::Result<PrefixBitmap> QueryPrefix(Ipv4 ip);

  // Datagrams ignored by RoundTrip for id/question mismatch.
  std::uint64_t mismatched() const { return mismatched_; }

 private:
  util::Result<ParsedResponse> RoundTrip(const DnsQuery& query);

  std::uint16_t port_;
  std::string zone_;
  int timeout_ms_;
  std::uint16_t next_id_;
  std::uint64_t mismatched_ = 0;
};

}  // namespace sams::dnsbl
