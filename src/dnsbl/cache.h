// DNS caches for DNSBL answers, in simulated time.
//
// The mail server caches DNSBL replies with a 24 h TTL (the lists
// update infrequently, §7.2). Two granularities:
//   IpCache     — classic: one entry per queried IP.
//   PrefixCache — DNSBLv6: one 128-bit bitmap per /25 prefix; a single
//                 miss fills the entry for 127 neighbour addresses,
//                 which is where the 73.8% -> 83.9% hit-ratio gain
//                 comes from.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "dnsbl/blacklist_db.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace sams::dnsbl {

using util::SimTime;

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t expirations = 0;  // stale entries dropped on probe
  std::uint64_t evictions = 0;    // LRU entries displaced at capacity

  double HitRatio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

// Registry counters a cache dual-writes next to its CacheStats, so the
// hit/miss series is visible in every metrics dump instead of living
// in a private struct. All pointers may be null (unbound).
struct CacheCounters {
  obs::Counter* lookups = nullptr;
  obs::Counter* hits = nullptr;
  obs::Counter* insertions = nullptr;
  obs::Counter* expirations = nullptr;
  obs::Counter* evictions = nullptr;
};

template <typename Key, typename Value>
class TtlCache {
 public:
  // `capacity` > 0 bounds the entry count: at capacity, inserting a
  // new key evicts the least-recently-used entry (a hit or overwrite
  // refreshes recency). 0 = unbounded, the paper's emulation setup.
  explicit TtlCache(SimTime ttl, std::size_t capacity = 0)
      : ttl_(ttl), capacity_(capacity) {}

  // Mirrors every stats update into `counters` from now on.
  void BindCounters(const CacheCounters& counters) { counters_ = counters; }

  // Returns the cached value if present and fresh at `now`.
  const Value* Lookup(const Key& key, SimTime now) {
    ++stats_.lookups;
    if (counters_.lookups != nullptr) counters_.lookups->Inc();
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    if (it->second.expires_at < now) {
      ++stats_.expirations;
      if (counters_.expirations != nullptr) counters_.expirations->Inc();
      if (capacity_ > 0) lru_.erase(it->second.lru_pos);
      map_.erase(it);
      return nullptr;
    }
    ++stats_.hits;
    if (counters_.hits != nullptr) counters_.hits->Inc();
    if (capacity_ > 0) lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return &it->second.value;
  }

  void Insert(const Key& key, Value value, SimTime now) {
    ++stats_.insertions;
    if (counters_.insertions != nullptr) counters_.insertions->Inc();
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      it->second.expires_at = now + ttl_;
      if (capacity_ > 0) lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    if (capacity_ > 0) {
      if (map_.size() >= capacity_) {
        ++stats_.evictions;
        if (counters_.evictions != nullptr) counters_.evictions->Inc();
        map_.erase(lru_.back());
        lru_.pop_back();
      }
      lru_.push_front(key);
      map_.emplace(key, Entry{std::move(value), now + ttl_, lru_.begin()});
      return;
    }
    map_.emplace(key, Entry{std::move(value), now + ttl_, {}});
  }

  void Clear() {
    map_.clear();
    lru_.clear();
  }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    Value value;
    SimTime expires_at;
    typename std::list<Key>::iterator lru_pos;  // valid iff capacity_ > 0
  };
  SimTime ttl_;
  std::size_t capacity_;
  std::unordered_map<Key, Entry> map_;
  std::list<Key> lru_;  // front = most recently used; empty if unbounded
  CacheStats stats_;
  CacheCounters counters_;
};

// Cached combined verdict for one IP across all queried lists.
struct IpVerdict {
  bool blacklisted = false;
};

using IpCache = TtlCache<Ipv4, IpVerdict>;
using PrefixCache = TtlCache<Prefix25, PrefixBitmap>;

}  // namespace sams::dnsbl
