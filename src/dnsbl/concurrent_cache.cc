#include "dnsbl/concurrent_cache.h"

namespace sams::dnsbl {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ConcurrentPrefixCache::ConcurrentPrefixCache(std::size_t capacity,
                                             std::int64_t ttl_ns,
                                             std::size_t lock_shards)
    : ttl_ns_(ttl_ns) {
  const std::size_t n = RoundUpPow2(lock_shards == 0 ? 1 : lock_shards);
  shard_mask_ = n - 1;
  shards_ = std::vector<Shard>(n);
  // Ceiling division: a capacity smaller than the shard count still
  // bounds every shard to at least one entry.
  capacity_per_shard_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
}

std::optional<PrefixBitmap> ConcurrentPrefixCache::Lookup(
    Prefix25 prefix, std::int64_t now_ns) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  if (lookups_counter_ != nullptr) lookups_counter_->Inc();
  Shard& shard = ShardFor(prefix);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(prefix);
  if (it == shard.map.end()) return std::nullopt;
  if (it->second.expires_ns < now_ns) {
    stats_.expirations.fetch_add(1, std::memory_order_relaxed);
    if (expirations_counter_ != nullptr) expirations_counter_->Inc();
    shard.lru.erase(it->second.lru_pos);
    shard.map.erase(it);
    return std::nullopt;
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  if (hits_counter_ != nullptr) hits_counter_->Inc();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.bitmap;
}

void ConcurrentPrefixCache::Insert(Prefix25 prefix, const PrefixBitmap& bitmap,
                                   std::int64_t now_ns) {
  stats_.insertions.fetch_add(1, std::memory_order_relaxed);
  if (insertions_counter_ != nullptr) insertions_counter_->Inc();
  Shard& shard = ShardFor(prefix);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(prefix);
  if (it != shard.map.end()) {
    it->second.bitmap = bitmap;
    it->second.expires_ns = now_ns + ttl_ns_;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return;
  }
  if (capacity_per_shard_ > 0 && shard.map.size() >= capacity_per_shard_) {
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    if (evictions_counter_ != nullptr) evictions_counter_->Inc();
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
  }
  shard.lru.push_front(prefix);
  shard.map.emplace(prefix,
                    Entry{bitmap, now_ns + ttl_ns_, shard.lru.begin()});
}

std::size_t ConcurrentPrefixCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void ConcurrentPrefixCache::BindMetrics(obs::Registry& registry) {
  lookups_counter_ = &registry.GetCounter(
      "sams_dnsbl_ccache_lookups_total",
      "concurrent prefix-cache probes (all reactor shards)");
  hits_counter_ = &registry.GetCounter("sams_dnsbl_ccache_hits_total",
                                       "concurrent prefix-cache fresh hits");
  insertions_counter_ = &registry.GetCounter(
      "sams_dnsbl_ccache_insertions_total", "concurrent prefix-cache fills");
  expirations_counter_ = &registry.GetCounter(
      "sams_dnsbl_ccache_expirations_total",
      "concurrent prefix-cache entries dropped stale on probe");
  evictions_counter_ = &registry.GetCounter(
      "sams_dnsbl_ccache_evictions_total",
      "concurrent prefix-cache LRU entries displaced at capacity");
}

}  // namespace sams::dnsbl
