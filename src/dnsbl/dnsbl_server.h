// Simulated DNSBL servers.
//
// Figure 5 measures the query-time CDF of six public blacklists for
// ~19,000 spammer IPs: the curves differ in median and in how much
// mass sits beyond 100 ms (16%–50%). Each server here pairs a
// blacklist database with a two-component latency mixture (a "near"
// lognormal body and a heavy "far/overloaded" tail) whose parameters
// are calibrated per list; EXPERIMENTS.md records the resulting CDFs
// against the figure.
//
// A server answers either classic per-IP queries (A record, 127.0.0.x)
// or DNSBLv6 /25-bitmap queries (§7.1) — the bitmap is served from the
// same database, so bitmap answers are exactly consistent with per-IP
// answers (a property test pins this).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dnsbl/blacklist_db.h"
#include "util/rng.h"
#include "util/time.h"

namespace sams::dnsbl {

using util::SimTime;

// Latency mixture: with probability tail_prob, sample the tail
// (uniform in [tail_lo, tail_hi]); otherwise lognormal body.
struct LatencyProfile {
  double body_mu = 3.0;     // ln(ms)
  double body_sigma = 0.6;  // ln(ms)
  double tail_prob = 0.25;
  double tail_lo_ms = 100.0;
  double tail_hi_ms = 900.0;

  SimTime Sample(util::Rng& rng) const;
};

class DnsblServer {
 public:
  DnsblServer(std::string zone, std::shared_ptr<const BlacklistDb> db,
              LatencyProfile profile)
      : zone_(std::move(zone)), db_(std::move(db)), profile_(profile) {}

  const std::string& zone() const { return zone_; }
  const BlacklistDb& db() const { return *db_; }

  // Classic lookup: answer code (0 = NXDOMAIN / not listed) plus the
  // simulated resolution latency for this query.
  struct IpAnswer {
    std::uint8_t code = 0;
    SimTime latency;
  };
  IpAnswer QueryIp(Ipv4 ip, util::Rng& rng) const;

  // DNSBLv6 lookup: the /25 bitmap (same latency model — it is one DNS
  // query either way, which is the whole point of the scheme).
  struct PrefixAnswer {
    PrefixBitmap bitmap;
    SimTime latency;
  };
  PrefixAnswer QueryPrefix(Prefix25 prefix, util::Rng& rng) const;

  std::uint64_t queries_received() const { return queries_; }

 private:
  std::string zone_;
  std::shared_ptr<const BlacklistDb> db_;
  LatencyProfile profile_;
  mutable std::uint64_t queries_ = 0;
};

// The six blacklists of Figure 5 with calibrated latency profiles.
// Each list independently includes every IP of `listed_ips` with a
// deterministic pseudo-random per-list coverage probability, because
// real lists overlap but do not coincide.
std::vector<std::unique_ptr<DnsblServer>> MakeFigureFiveServers(
    std::span<const Ipv4> listed_ips, util::Rng& rng);

// The per-list names & coverage used above, exposed for benches.
struct ListSpec {
  const char* zone;
  double coverage;     // fraction of the full bot population listed
  LatencyProfile latency;
};
const std::vector<ListSpec>& FigureFiveListSpecs();

}  // namespace sams::dnsbl
