#include "dnsbl/dnsbl_server.h"

namespace sams::dnsbl {

SimTime LatencyProfile::Sample(util::Rng& rng) const {
  double ms;
  if (rng.Bernoulli(tail_prob)) {
    ms = rng.Uniform(tail_lo_ms, tail_hi_ms);
  } else {
    ms = rng.LogNormal(body_mu, body_sigma);
    if (ms > tail_lo_ms) ms = tail_lo_ms;  // body stays below the tail knee
  }
  return SimTime::MillisF(ms);
}

DnsblServer::IpAnswer DnsblServer::QueryIp(Ipv4 ip, util::Rng& rng) const {
  ++queries_;
  return IpAnswer{db_->Lookup(ip), profile_.Sample(rng)};
}

DnsblServer::PrefixAnswer DnsblServer::QueryPrefix(Prefix25 prefix,
                                                   util::Rng& rng) const {
  ++queries_;
  return PrefixAnswer{db_->LookupPrefix(prefix), profile_.Sample(rng)};
}

const std::vector<ListSpec>& FigureFiveListSpecs() {
  // Calibration targets (Figure 5): fraction of queries > 100 ms per
  // list ranges from ~16% (cbl) to ~50% (dul.dnsbl.sorbs); medians sit
  // between ~20 and ~80 ms. Coverage differences reflect that the
  // aggregate (sbl-xbl) lists most bots while policy lists (dul) list
  // dialup ranges more selectively.
  static const std::vector<ListSpec> kSpecs = {
      {"cbl.abuseat.org", 0.90, {3.0, 0.55, 0.16, 100.0, 600.0}},
      {"list.dsbl.org", 0.70, {3.3, 0.60, 0.22, 100.0, 700.0}},
      {"dnsbl.sorbs.net", 0.75, {3.5, 0.60, 0.28, 100.0, 800.0}},
      {"bl.spamcop.net", 0.80, {3.6, 0.65, 0.33, 100.0, 800.0}},
      {"sbl-xbl.spamhaus.org", 0.92, {3.8, 0.65, 0.40, 100.0, 900.0}},
      {"dul.dnsbl.sorbs.net", 0.60, {4.0, 0.70, 0.50, 100.0, 1000.0}},
  };
  return kSpecs;
}

std::vector<std::unique_ptr<DnsblServer>> MakeFigureFiveServers(
    std::span<const Ipv4> listed_ips, util::Rng& rng) {
  std::vector<std::unique_ptr<DnsblServer>> servers;
  // Deterministic per-(list, ip) inclusion: hash both so lists overlap
  // the way real lists do, rather than being strict subsets.
  const std::uint64_t run_salt = rng.NextU64();
  for (const ListSpec& spec : FigureFiveListSpecs()) {
    auto db = std::make_shared<BlacklistDb>();
    const std::uint64_t salt = run_salt ^ std::hash<std::string>{}(spec.zone);
    for (const Ipv4 ip : listed_ips) {
      // SplitMix-style mix of (salt, ip) -> uniform in [0,1).
      std::uint64_t x = salt + ip.value() * 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      x ^= x >> 31;
      const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
      if (u < spec.coverage) db->Add(ip);
    }
    servers.push_back(
        std::make_unique<DnsblServer>(spec.zone, std::move(db), spec.latency));
  }
  return servers;
}

}  // namespace sams::dnsbl
