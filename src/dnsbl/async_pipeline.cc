#include "dnsbl/async_pipeline.h"

#include <sys/epoll.h>

#include <algorithm>
#include <limits>
#include <utility>

#include "fault/injector.h"
#include "net/udp.h"
#include "util/time.h"

namespace sams::dnsbl {
namespace {

constexpr std::size_t kMaxDatagram = 512;  // RFC 1035 UDP payload cap

std::uint64_t Relaxed(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

}  // namespace

// --- AsyncDnsblService --------------------------------------------------

AsyncDnsblService::AsyncDnsblService(AsyncDnsblConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_capacity,
             static_cast<std::int64_t>(cfg_.ttl_seconds) * 1'000'000'000,
             cfg_.cache_lock_shards) {}

void AsyncDnsblService::BindMetrics(obs::Registry& registry) {
  cache_.BindMetrics(registry);
  auto* lookups = &registry.GetCounter("sams_dnsbl_async_lookups_total",
                                       "async DNSBL verdict requests");
  auto* cache_hits = &registry.GetCounter(
      "sams_dnsbl_async_cache_hits_total",
      "verdicts answered from the shared prefix cache");
  auto* coalesced = &registry.GetCounter(
      "sams_dnsbl_async_coalesced_total",
      "verdict requests that joined an already-open DNS round");
  auto* queries = &registry.GetCounter("sams_dnsbl_async_queries_sent_total",
                                       "DNS datagrams sent (all zones)");
  auto* retries = &registry.GetCounter("sams_dnsbl_async_retries_total",
                                       "zone queries re-sent after timeout");
  auto* timeouts = &registry.GetCounter(
      "sams_dnsbl_async_timeouts_total",
      "zone queries abandoned past the retry budget");
  auto* degraded = &registry.GetCounter(
      "sams_dnsbl_async_degraded_total",
      "lookups completed with at least one zone unanswered");
  auto* mismatched = &registry.GetCounter(
      "sams_dnsbl_async_mismatched_total",
      "datagrams ignored: unparsable, unknown id, or wrong question");
  auto* listed = &registry.GetCounter("sams_dnsbl_async_blacklisted_total",
                                      "listed verdicts handed to sessions");
  inflight_gauge_ = &registry.GetGauge("sams_dnsbl_async_inflight",
                                       "open DNS rounds across all shards");
  lookup_ms_ = &registry.GetHistogram(
      "sams_dnsbl_async_lookup_ms", "DNS round latency (cache misses only)",
      obs::HistogramSpec{0.05, 2.0, 20});
  registry.AddCollector([this, lookups, cache_hits, coalesced, queries,
                         retries, timeouts, degraded, mismatched, listed]() {
    lookups->Overwrite(Relaxed(stats_.lookups));
    cache_hits->Overwrite(Relaxed(stats_.cache_hits));
    coalesced->Overwrite(Relaxed(stats_.coalesced));
    queries->Overwrite(Relaxed(stats_.queries_sent));
    retries->Overwrite(Relaxed(stats_.retries));
    timeouts->Overwrite(Relaxed(stats_.timeouts));
    degraded->Overwrite(Relaxed(stats_.degraded));
    mismatched->Overwrite(Relaxed(stats_.mismatched));
    listed->Overwrite(Relaxed(stats_.blacklisted));
    inflight_gauge_->Set(stats_.inflight.load(std::memory_order_relaxed));
  });
}

bool AsyncDnsblService::JoinOrOwn(Prefix25 prefix, Waiter waiter) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  auto [it, inserted] = flight_waiters_.try_emplace(prefix);
  it->second.push_back(std::move(waiter));
  return inserted;
}

std::vector<AsyncDnsblService::Waiter> AsyncDnsblService::TakeWaiters(
    Prefix25 prefix) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  auto it = flight_waiters_.find(prefix);
  if (it == flight_waiters_.end()) return {};
  std::vector<Waiter> waiters = std::move(it->second);
  flight_waiters_.erase(it);
  return waiters;
}

// --- AsyncLookupPipeline ------------------------------------------------

AsyncLookupPipeline::AsyncLookupPipeline(AsyncDnsblService& service,
                                         net::EventLoop& loop)
    : service_(service),
      loop_(loop),
      // Per-pipeline stream: DNS ids must differ across shards even
      // though each shard has its own socket (cheap defence in depth).
      rng_(static_cast<std::uint64_t>(util::MonotonicNanos()) ^
           reinterpret_cast<std::uintptr_t>(this)) {}

AsyncLookupPipeline::~AsyncLookupPipeline() {
  // Abandon open rounds: waiters get a degraded verdict, delivered via
  // Post so a stopped loop simply drops it — never a dangling callback
  // running mid-teardown.
  for (auto& [prefix, flight] : flights_) {
    service_.stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
    service_.stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    for (AsyncDnsblService::Waiter& w : service_.TakeWaiters(prefix)) {
      AsyncVerdict verdict;
      verdict.degraded = true;
      verdict.blacklisted =
          flight->bitmap.TestIp(w.ip) || !service_.cfg_.fail_open;
      w.loop->Post(
          [cb = std::move(w.callback), verdict]() { cb(verdict); });
    }
  }
  flights_.clear();
  by_id_.clear();
  if (socket_.valid()) (void)loop_.Remove(socket_.get());
  if (timer_.valid()) (void)loop_.Remove(timer_.get());
}

util::Error AsyncLookupPipeline::Init() {
  util::Result<util::UniqueFd> sock = net::UdpOpenNonBlocking();
  if (!sock.ok()) return sock.error();
  socket_ = std::move(sock).value();
  util::Result<util::UniqueFd> timer = net::CreateTimerFd();
  if (!timer.ok()) return timer.error();
  timer_ = std::move(timer).value();
  SAMS_RETURN_IF_ERROR(loop_.Add(socket_.get(), EPOLLIN,
                                 [this](std::uint32_t) { OnSocketReadable(); }));
  SAMS_RETURN_IF_ERROR(
      loop_.Add(timer_.get(), EPOLLIN, [this](std::uint32_t) { OnTimerFired(); }));
  return util::OkError();
}

std::optional<AsyncVerdict> AsyncLookupPipeline::Begin(
    util::Ipv4 ip, VerdictCallback callback) {
  AsyncDnsblStats& stats = service_.stats_;
  stats.lookups.fetch_add(1, std::memory_order_relaxed);
  const Prefix25 prefix(ip);
  const std::int64_t now = util::MonotonicNanos();

  if (std::optional<PrefixBitmap> bitmap = service_.cache_.Lookup(prefix, now)) {
    AsyncVerdict verdict;
    verdict.cache_hit = true;
    verdict.blacklisted = bitmap->TestIp(ip);
    stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
    if (verdict.blacklisted) {
      stats.blacklisted.fetch_add(1, std::memory_order_relaxed);
    }
    return verdict;
  }

  if (service_.cfg_.zones.empty()) {
    // Nothing to ask: resolve inline as an (uncached) clean verdict.
    return AsyncVerdict{};
  }

  AsyncDnsblService::Waiter waiter;
  waiter.loop = &loop_;
  waiter.ip = ip;
  waiter.callback = std::move(callback);
  if (!service_.JoinOrOwn(prefix, std::move(waiter))) {
    // Another shard (or an earlier connection on this one) already has
    // this /25 in flight; its completion will call us back.
    stats.coalesced.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  stats.inflight.fetch_add(1, std::memory_order_relaxed);
  auto flight = std::make_unique<Flight>();
  flight->prefix = prefix;
  flight->ip = ip;
  flight->begin_ns = now;
  flight->zones.resize(service_.cfg_.zones.size());
  Flight* raw = flight.get();
  flights_.emplace(prefix, std::move(flight));
  for (std::size_t z = 0; z < raw->zones.size(); ++z) {
    SendZoneQuery(*raw, z, /*is_retry=*/false);
  }
  RearmTimer();
  return std::nullopt;
}

void AsyncLookupPipeline::OnSocketReadable() {
  std::uint8_t buf[kMaxDatagram];
  bool completed_any = false;
  for (;;) {
    util::Result<std::size_t> n = net::UdpRecv(socket_.get(), buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    util::Result<ParsedResponse> parsed = ParseResponse(buf, *n);
    if (!parsed.ok()) {
      service_.stats_.mismatched.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto it = by_id_.find(parsed->id);
    if (it == by_id_.end()) {
      // Late answer to a query we already retired (or noise).
      service_.stats_.mismatched.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Flight* flight = it->second.first;
    const std::size_t zone_index = it->second.second;
    ZoneQuery& zq = flight->zones[zone_index];
    // Match the question too: an id collision with a stale retransmit
    // must not complete the wrong zone's query.
    const std::string expected = util::Dnsblv6QueryName(
        flight->ip, service_.cfg_.zones[zone_index].zone);
    if (parsed->question.qtype != QType::kAaaa ||
        parsed->question.qname != expected) {
      service_.stats_.mismatched.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    by_id_.erase(it);
    zq.done = true;
    flight->zones_done++;
    if (parsed->rcode == RCode::kNoError) {
      for (const DnsAnswer& answer : parsed->answers) {
        util::Result<PrefixBitmap> bm = RdataToBitmap(answer.rdata);
        if (bm.ok()) flight->bitmap |= *bm;
      }
    } else if (parsed->rcode != RCode::kNxDomain) {
      // SERVFAIL and friends: the zone answered but not usefully.
      zq.failed = true;
    }
    if (flight->zones_done == static_cast<int>(flight->zones.size())) {
      CompleteFlight(flight->prefix);
      completed_any = true;
    }
  }
  if (completed_any) RearmTimer();
}

void AsyncLookupPipeline::OnTimerFired() {
  net::DrainTimerFd(timer_.get());
  const std::int64_t now = util::MonotonicNanos();
  std::vector<Prefix25> completed;
  for (auto& [prefix, flight] : flights_) {
    for (std::size_t z = 0; z < flight->zones.size(); ++z) {
      ZoneQuery& zq = flight->zones[z];
      if (zq.done || zq.deadline_ns > now) continue;
      if (zq.attempts <= service_.cfg_.max_retries) {
        service_.stats_.retries.fetch_add(1, std::memory_order_relaxed);
        SendZoneQuery(*flight, z, /*is_retry=*/true);
      } else {
        service_.stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
        by_id_.erase(zq.id);
        zq.done = true;
        zq.failed = true;
        flight->zones_done++;
        if (flight->zones_done == static_cast<int>(flight->zones.size())) {
          completed.push_back(prefix);
        }
      }
    }
  }
  for (Prefix25 prefix : completed) CompleteFlight(prefix);
  RearmTimer();
}

void AsyncLookupPipeline::SendZoneQuery(Flight& flight, std::size_t zone_index,
                                        bool is_retry) {
  ZoneQuery& zq = flight.zones[zone_index];
  if (is_retry) by_id_.erase(zq.id);
  zq.id = AllocateQueryId();
  zq.attempts++;
  zq.deadline_ns =
      util::MonotonicNanos() +
      static_cast<std::int64_t>(service_.cfg_.timeout_ms) * 1'000'000;
  by_id_[zq.id] = {&flight, zone_index};

  const ZoneEndpoint& zone = service_.cfg_.zones[zone_index];
  DnsQuery query;
  query.id = zq.id;
  query.question.qname = util::Dnsblv6QueryName(flight.ip, zone.zone);
  query.question.qtype = QType::kAaaa;
  util::Result<std::vector<std::uint8_t>> wire = EncodeQuery(query);
  if (!wire.ok()) return;  // timeout path will mark the zone failed

  // Chaos: kDelay stalls the send (shrinks the overlap window); a drop
  // loses the datagram (exercises timeout → retry → fail-open).
  (void)SAMS_FAULT_ERROR("dnsbl.udp.delay");
  if (!SAMS_FAULT_ERROR("dnsbl.udp.drop").ok()) return;

  service_.stats_.queries_sent.fetch_add(1, std::memory_order_relaxed);
  // A full socket buffer is indistinguishable from loss — the retry
  // budget covers both.
  (void)net::UdpSendToLoopback(socket_.get(), zone.port, wire->data(),
                               wire->size());
}

void AsyncLookupPipeline::CompleteFlight(Prefix25 prefix) {
  auto it = flights_.find(prefix);
  if (it == flights_.end()) return;
  std::unique_ptr<Flight> flight = std::move(it->second);
  flights_.erase(it);
  for (const ZoneQuery& zq : flight->zones) {
    if (!zq.done) by_id_.erase(zq.id);
  }
  bool degraded = false;
  for (const ZoneQuery& zq : flight->zones) degraded |= zq.failed;

  const std::int64_t now = util::MonotonicNanos();
  const std::int64_t latency_ns = now - flight->begin_ns;
  AsyncDnsblStats& stats = service_.stats_;
  stats.inflight.fetch_sub(1, std::memory_order_relaxed);
  if (degraded) {
    // A partial bitmap may still prove listings, but its negatives are
    // unproven — caching it would whitewash the missing zone for a
    // whole TTL. Degraded verdicts are always recomputed.
    stats.degraded.fetch_add(1, std::memory_order_relaxed);
  } else {
    service_.cache_.Insert(prefix, flight->bitmap, now);
  }
  service_.ObserveLookupMs(static_cast<double>(latency_ns) / 1e6);

  for (const AsyncDnsblService::Waiter& waiter : service_.TakeWaiters(prefix)) {
    DispatchVerdict(waiter, flight->bitmap, degraded, latency_ns);
  }
}

void AsyncLookupPipeline::DispatchVerdict(
    const AsyncDnsblService::Waiter& waiter, const PrefixBitmap& bitmap,
    bool degraded, std::int64_t latency_ns) {
  AsyncVerdict verdict;
  verdict.degraded = degraded;
  verdict.latency_ns = latency_ns;
  if (bitmap.TestIp(waiter.ip)) {
    verdict.blacklisted = true;  // a proven listing beats a lost zone
  } else if (degraded) {
    verdict.blacklisted = !service_.cfg_.fail_open;
  }
  if (verdict.blacklisted) {
    service_.stats_.blacklisted.fetch_add(1, std::memory_order_relaxed);
  }
  if (waiter.loop == &loop_) {
    waiter.callback(verdict);
  } else {
    waiter.loop->Post([cb = waiter.callback, verdict]() { cb(verdict); });
  }
}

void AsyncLookupPipeline::RearmTimer() {
  std::int64_t min_deadline = std::numeric_limits<std::int64_t>::max();
  for (const auto& [prefix, flight] : flights_) {
    for (const ZoneQuery& zq : flight->zones) {
      if (!zq.done) min_deadline = std::min(min_deadline, zq.deadline_ns);
    }
  }
  if (min_deadline == std::numeric_limits<std::int64_t>::max()) {
    (void)net::ArmTimerFdOnceMs(timer_.get(), 0);  // disarm
    return;
  }
  std::int64_t ms = (min_deadline - util::MonotonicNanos()) / 1'000'000;
  if (ms < 1) ms = 1;  // already due: fire ASAP, never disarm by accident
  (void)net::ArmTimerFdOnceMs(timer_.get(), ms);
}

std::uint16_t AsyncLookupPipeline::AllocateQueryId() {
  for (;;) {
    const auto id = static_cast<std::uint16_t>(rng_.NextU64());
    if (id != 0 && by_id_.find(id) == by_id_.end()) return id;
  }
}

}  // namespace sams::dnsbl
