#include "dnsbl/dns_wire.h"

#include "util/strings.h"

namespace sams::dnsbl {
namespace {

constexpr std::uint16_t kClassIn = 1;
constexpr std::uint16_t kFlagQr = 0x8000;
constexpr std::uint16_t kFlagAa = 0x0400;
constexpr std::uint16_t kFlagRd = 0x0100;

void PutU16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v & 0xff));
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  PutU16(out, static_cast<std::uint16_t>(v >> 16));
  PutU16(out, static_cast<std::uint16_t>(v & 0xffff));
}

// Encodes "a.b.c" as 1a1b1c0 label sequence.
util::Error PutName(std::vector<std::uint8_t>* out, const std::string& name) {
  if (name.size() > 253) return util::InvalidArgument("name too long");
  for (const std::string& label : util::Split(name, '.')) {
    if (label.empty() || label.size() > 63) {
      return util::InvalidArgument("bad label in name: " + name);
    }
    out->push_back(static_cast<std::uint8_t>(label.size()));
    out->insert(out->end(), label.begin(), label.end());
  }
  out->push_back(0);
  return util::OkError();
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool Need(std::size_t n) const { return pos + n <= size; }
  std::uint8_t U8() { return data[pos++]; }
  std::uint16_t U16() {
    const std::uint16_t v =
        static_cast<std::uint16_t>((data[pos] << 8) | data[pos + 1]);
    pos += 2;
    return v;
  }
  std::uint32_t U32() {
    const std::uint32_t hi = U16();
    return (hi << 16) | U16();
  }
};

// Reads a (possibly compressed) name starting at cursor->pos.
util::Result<std::string> ReadName(Cursor* cursor) {
  std::string name;
  std::size_t jumps = 0;
  std::size_t pos = cursor->pos;
  bool jumped = false;
  for (;;) {
    if (pos >= cursor->size) return util::ProtocolError("name runs off packet");
    const std::uint8_t len = cursor->data[pos];
    if ((len & 0xc0) == 0xc0) {  // compression pointer
      if (pos + 1 >= cursor->size) return util::ProtocolError("bad pointer");
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | cursor->data[pos + 1];
      if (!jumped) cursor->pos = pos + 2;
      jumped = true;
      if (++jumps > 16) return util::ProtocolError("pointer loop");
      pos = target;
      continue;
    }
    if (len == 0) {
      if (!jumped) cursor->pos = pos + 1;
      return name;
    }
    if (len > 63) return util::ProtocolError("bad label length");
    if (pos + 1 + len > cursor->size) return util::ProtocolError("label truncated");
    if (!name.empty()) name.push_back('.');
    name.append(reinterpret_cast<const char*>(cursor->data + pos + 1), len);
    pos += 1 + len;
  }
}

}  // namespace

util::Result<std::vector<std::uint8_t>> EncodeQuery(const DnsQuery& query) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + query.question.qname.size());
  PutU16(&out, query.id);
  PutU16(&out, kFlagRd);  // standard query, recursion desired
  PutU16(&out, 1);        // qdcount
  PutU16(&out, 0);        // ancount
  PutU16(&out, 0);        // nscount
  PutU16(&out, 0);        // arcount
  SAMS_RETURN_IF_ERROR(PutName(&out, query.question.qname));
  PutU16(&out, static_cast<std::uint16_t>(query.question.qtype));
  PutU16(&out, kClassIn);
  return out;
}

util::Result<std::vector<std::uint8_t>> EncodeResponse(const DnsQuery& query,
                                                       const DnsAnswer& answer) {
  const bool has_answer =
      answer.rcode == RCode::kNoError && !answer.rdata.empty();
  std::vector<std::uint8_t> out;
  PutU16(&out, query.id);
  PutU16(&out, static_cast<std::uint16_t>(
                   kFlagQr | kFlagAa | kFlagRd |
                   static_cast<std::uint16_t>(answer.rcode)));
  PutU16(&out, 1);                        // qdcount (echo the question)
  PutU16(&out, has_answer ? 1 : 0);       // ancount
  PutU16(&out, 0);
  PutU16(&out, 0);
  SAMS_RETURN_IF_ERROR(PutName(&out, query.question.qname));
  PutU16(&out, static_cast<std::uint16_t>(query.question.qtype));
  PutU16(&out, kClassIn);
  if (has_answer) {
    // Compression pointer to the question name at offset 12.
    out.push_back(0xc0);
    out.push_back(12);
    PutU16(&out, static_cast<std::uint16_t>(query.question.qtype));
    PutU16(&out, kClassIn);
    PutU32(&out, answer.ttl);
    if (answer.rdata.size() > 0xffff) {
      return util::InvalidArgument("rdata too large");
    }
    PutU16(&out, static_cast<std::uint16_t>(answer.rdata.size()));
    out.insert(out.end(), answer.rdata.begin(), answer.rdata.end());
  }
  return out;
}

util::Result<DnsQuery> ParseQuery(const std::uint8_t* data, std::size_t size) {
  Cursor cursor{data, size};
  if (!cursor.Need(12)) return util::ProtocolError("short DNS header");
  DnsQuery query;
  query.id = cursor.U16();
  const std::uint16_t flags = cursor.U16();
  if (flags & kFlagQr) return util::ProtocolError("not a query");
  const std::uint16_t qdcount = cursor.U16();
  cursor.U16();
  cursor.U16();
  cursor.U16();
  if (qdcount != 1) return util::ProtocolError("expected one question");
  auto name = ReadName(&cursor);
  if (!name.ok()) return name.error();
  if (!cursor.Need(4)) return util::ProtocolError("question truncated");
  const std::uint16_t qtype = cursor.U16();
  const std::uint16_t qclass = cursor.U16();
  if (qclass != kClassIn) return util::ProtocolError("unsupported qclass");
  if (qtype != static_cast<std::uint16_t>(QType::kA) &&
      qtype != static_cast<std::uint16_t>(QType::kAaaa)) {
    return util::ProtocolError("unsupported qtype");
  }
  query.question.qname = std::move(name).value();
  query.question.qtype = static_cast<QType>(qtype);
  return query;
}

util::Result<ParsedResponse> ParseResponse(const std::uint8_t* data,
                                           std::size_t size) {
  Cursor cursor{data, size};
  if (!cursor.Need(12)) return util::ProtocolError("short DNS header");
  ParsedResponse response;
  response.id = cursor.U16();
  const std::uint16_t flags = cursor.U16();
  if (!(flags & kFlagQr)) return util::ProtocolError("not a response");
  response.rcode = static_cast<RCode>(flags & 0x0f);
  const std::uint16_t qdcount = cursor.U16();
  const std::uint16_t ancount = cursor.U16();
  cursor.U16();
  cursor.U16();
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    auto name = ReadName(&cursor);
    if (!name.ok()) return name.error();
    if (!cursor.Need(4)) return util::ProtocolError("question truncated");
    const std::uint16_t qtype = cursor.U16();
    cursor.U16();  // class
    if (q == 0) {
      response.question.qname = std::move(name).value();
      response.question.qtype = static_cast<QType>(qtype);
    }
  }
  for (std::uint16_t a = 0; a < ancount; ++a) {
    auto name = ReadName(&cursor);
    if (!name.ok()) return name.error();
    if (!cursor.Need(10)) return util::ProtocolError("answer truncated");
    cursor.U16();  // type
    cursor.U16();  // class
    DnsAnswer answer;
    answer.ttl = cursor.U32();
    const std::uint16_t rdlength = cursor.U16();
    if (!cursor.Need(rdlength)) return util::ProtocolError("rdata truncated");
    answer.rdata.assign(cursor.data + cursor.pos,
                        cursor.data + cursor.pos + rdlength);
    cursor.pos += rdlength;
    response.answers.push_back(std::move(answer));
  }
  return response;
}

std::vector<std::uint8_t> BitmapToRdata(const PrefixBitmap& bitmap) {
  return {bitmap.bytes().begin(), bitmap.bytes().end()};
}

util::Result<PrefixBitmap> RdataToBitmap(
    const std::vector<std::uint8_t>& rdata) {
  if (rdata.size() != 16) {
    return util::ProtocolError("AAAA rdata must be 16 bytes");
  }
  PrefixBitmap bitmap;
  for (int bit = 0; bit < 128; ++bit) {
    if ((rdata[static_cast<std::size_t>(bit) / 8] >> (bit % 8)) & 1) {
      bitmap.Set(bit);
    }
  }
  return bitmap;
}

}  // namespace sams::dnsbl
