// Resolver — the mail server's DNSBL front-end.
//
// On every incoming connection the server asks: is this client IP
// blacklisted? The resolver consults its cache; on a miss it queries
// all configured DNSBL servers simultaneously (footnote 2 of the
// paper: IP-based blacklisting works well when many lists are queried
// for the same IP) and the SMTP transaction waits for the slowest
// answer. Three modes reproduce Figure 15's three curves:
//
//   kNoCache     — every connection pays the full DNS round.
//   kIpCache     — classic per-IP caching.
//   kPrefixCache — DNSBLv6: cache /25 bitmaps; neighbours hit.
//
// With a QueryPolicy enabled the resolver additionally hardens the
// round: each server's query gets a timeout and a bounded number of
// retries (jittered backoff), and a per-server circuit breaker stops
// querying a list that keeps timing out until a cooldown elapses. A
// lookup that lost any server's answer is "degraded": its verdict is
// synthesized per the fail-open/fail-closed setting and is NOT cached
// (a degraded verdict must not poison the cache for a full TTL).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dnsbl/cache.h"
#include "dnsbl/dnsbl_server.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace sams::dnsbl {

enum class CacheMode { kNoCache, kIpCache, kPrefixCache };

const char* CacheModeName(CacheMode mode);

struct LookupOutcome {
  bool blacklisted = false;
  bool cache_hit = false;
  bool degraded = false;  // at least one server's answer was lost
  SimTime latency;        // 0 on a cache hit (local memory lookup)
  int dns_queries = 0;    // DNS messages sent (0 on a hit)
};

// Per-query hardening knobs. Disabled by default: the legacy behaviour
// (wait for the slowest list, forever) is exactly what Figures 14/15
// model, so simulation paths leave this off.
struct QueryPolicy {
  bool enabled = false;

  // A query unanswered after `timeout` is abandoned and retried up to
  // `max_retries` times, waiting a jittered backoff (0.5x–1.5x of
  // `retry_backoff`) between attempts.
  SimTime timeout = SimTime::Millis(800);
  int max_retries = 1;
  SimTime retry_backoff = SimTime::Millis(40);

  // After `breaker_threshold` consecutive per-server failures the
  // breaker opens: the server is skipped (no query, no waiting) until
  // `breaker_cooldown` has elapsed, then probed again.
  bool breaker_enabled = true;
  int breaker_threshold = 4;
  SimTime breaker_cooldown = SimTime::Seconds(30);

  // Verdict synthesis for a server whose answer was lost or skipped:
  // fail-open treats it as "not listed" (favours availability),
  // fail-closed treats it as "listed" (favours paranoia).
  bool fail_open = true;

  // Worst-case wall a single lookup can wait on one server: every
  // attempt times out and every backoff draws maximum jitter.
  SimTime Budget() const {
    return timeout * (1 + max_retries) +
           retry_backoff.Scaled(1.5 * max_retries);
  }
};

// Breaker/health bookkeeping the resolver keeps per configured server.
struct ServerHealth {
  int consecutive_failures = 0;
  SimTime open_until{};  // breaker open while now < open_until
  std::uint64_t timeouts = 0;   // attempts abandoned at the timeout
  std::uint64_t retries = 0;    // re-sends after an abandoned attempt
  std::uint64_t trips = 0;      // times the breaker opened
  std::uint64_t skips = 0;      // lookups that skipped this server
};

struct ResolverStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dns_queries_sent = 0;  // messages to DNSBL servers
  std::uint64_t timeouts = 0;          // per-server attempts timed out
  std::uint64_t retries = 0;           // per-server retries issued
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t degraded_lookups = 0;  // verdict synthesized, uncached

  double HitRatio() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(lookups);
  }
  // Fraction of connections that had to issue DNS queries (the
  // "26.22% -> 16.11%" metric of §7.2 counts query *rounds* per
  // connection).
  double QueryRoundRatio() const {
    return lookups == 0 ? 0.0
                        : 1.0 - static_cast<double>(cache_hits) /
                                    static_cast<double>(lookups);
  }
};

class Resolver {
 public:
  // `cache_capacity` > 0 bounds each cache (LRU eviction at the cap);
  // 0 keeps the paper's unbounded-emulation behaviour.
  Resolver(CacheMode mode, std::vector<const DnsblServer*> servers,
           SimTime ttl, util::Rng& rng, std::size_t cache_capacity = 0)
      : mode_(mode), servers_(std::move(servers)), rng_(rng),
        ip_cache_(ttl, cache_capacity), prefix_cache_(ttl, cache_capacity),
        health_(servers_.size()) {}

  // Installs the hardening policy (timeouts/retries/breaker). Resets
  // all per-server breaker state.
  void SetQueryPolicy(const QueryPolicy& policy);
  const QueryPolicy& query_policy() const { return policy_; }

  // Resolves the blacklist verdict for `ip` at simulated time `now`.
  LookupOutcome Lookup(Ipv4 ip, SimTime now);

  // Publishes resolver + cache counters into `registry`, labelled with
  // the cache mode; the formerly private TtlCache hit/miss stats are
  // dual-written from here on. The registry must outlive the resolver.
  void BindMetrics(obs::Registry& registry);

  CacheMode mode() const { return mode_; }
  const ResolverStats& stats() const { return stats_; }
  const CacheStats& ip_cache_stats() const { return ip_cache_.stats(); }
  const CacheStats& prefix_cache_stats() const { return prefix_cache_.stats(); }
  const ServerHealth& server_health(std::size_t i) const {
    return health_.at(i);
  }

 private:
  void CountVerdict(bool blacklisted);

  // One hardened per-server query round: timeout, retries, breaker
  // accounting. On success fills `answered_latency` + `answer_code`
  // (ip mode) or `answer_bitmap` (prefix mode) and returns true; on an
  // unreachable/skipped server returns false and `answered_latency` is
  // the time burned waiting. `queries` counts DNS messages sent.
  bool QueryServerHardened(std::size_t index, Ipv4 ip, bool prefix_mode,
                           SimTime now, SimTime& answered_latency,
                           std::uint8_t& answer_code,
                           PrefixBitmap& answer_bitmap, int& queries);

  CacheMode mode_;
  std::vector<const DnsblServer*> servers_;
  util::Rng& rng_;
  IpCache ip_cache_;
  PrefixCache prefix_cache_;
  ResolverStats stats_;
  QueryPolicy policy_;
  std::vector<ServerHealth> health_;

  // Optional observability (null until BindMetrics).
  obs::Counter* lookups_counter_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* blacklisted_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* breaker_trips_counter_ = nullptr;
  obs::Counter* breaker_skips_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
  obs::Histogram* miss_latency_ms_ = nullptr;
};

}  // namespace sams::dnsbl
