// Resolver — the mail server's DNSBL front-end.
//
// On every incoming connection the server asks: is this client IP
// blacklisted? The resolver consults its cache; on a miss it queries
// all configured DNSBL servers simultaneously (footnote 2 of the
// paper: IP-based blacklisting works well when many lists are queried
// for the same IP) and the SMTP transaction waits for the slowest
// answer. Three modes reproduce Figure 15's three curves:
//
//   kNoCache     — every connection pays the full DNS round.
//   kIpCache     — classic per-IP caching.
//   kPrefixCache — DNSBLv6: cache /25 bitmaps; neighbours hit.
#pragma once

#include <cstdint>
#include <vector>

#include "dnsbl/cache.h"
#include "dnsbl/dnsbl_server.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace sams::dnsbl {

enum class CacheMode { kNoCache, kIpCache, kPrefixCache };

const char* CacheModeName(CacheMode mode);

struct LookupOutcome {
  bool blacklisted = false;
  bool cache_hit = false;
  SimTime latency;        // 0 on a cache hit (local memory lookup)
  int dns_queries = 0;    // DNS messages sent (0 on a hit)
};

struct ResolverStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dns_queries_sent = 0;  // messages to DNSBL servers

  double HitRatio() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(lookups);
  }
  // Fraction of connections that had to issue DNS queries (the
  // "26.22% -> 16.11%" metric of §7.2 counts query *rounds* per
  // connection).
  double QueryRoundRatio() const {
    return lookups == 0 ? 0.0
                        : 1.0 - static_cast<double>(cache_hits) /
                                    static_cast<double>(lookups);
  }
};

class Resolver {
 public:
  Resolver(CacheMode mode, std::vector<const DnsblServer*> servers,
           SimTime ttl, util::Rng& rng)
      : mode_(mode), servers_(std::move(servers)), rng_(rng),
        ip_cache_(ttl), prefix_cache_(ttl) {}

  // Resolves the blacklist verdict for `ip` at simulated time `now`.
  LookupOutcome Lookup(Ipv4 ip, SimTime now);

  // Publishes resolver + cache counters into `registry`, labelled with
  // the cache mode; the formerly private TtlCache hit/miss stats are
  // dual-written from here on. The registry must outlive the resolver.
  void BindMetrics(obs::Registry& registry);

  CacheMode mode() const { return mode_; }
  const ResolverStats& stats() const { return stats_; }
  const CacheStats& ip_cache_stats() const { return ip_cache_.stats(); }
  const CacheStats& prefix_cache_stats() const { return prefix_cache_.stats(); }

 private:
  void CountVerdict(bool blacklisted);

  CacheMode mode_;
  std::vector<const DnsblServer*> servers_;
  util::Rng& rng_;
  IpCache ip_cache_;
  PrefixCache prefix_cache_;
  ResolverStats stats_;

  // Optional observability (null until BindMetrics).
  obs::Counter* lookups_counter_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* queries_counter_ = nullptr;
  obs::Counter* blacklisted_counter_ = nullptr;
  obs::Histogram* miss_latency_ms_ = nullptr;
};

}  // namespace sams::dnsbl
