#include "dnsbl/blacklist_db.h"

namespace sams::dnsbl {

int PrefixBitmap::PopCount() const {
  int n = 0;
  for (std::uint8_t b : bytes_) n += __builtin_popcount(b);
  return n;
}

bool PrefixBitmap::Any() const {
  for (std::uint8_t b : bytes_) {
    if (b != 0) return true;
  }
  return false;
}

PrefixBitmap& PrefixBitmap::operator|=(const PrefixBitmap& other) {
  for (std::size_t i = 0; i < bytes_.size(); ++i) bytes_[i] |= other.bytes_[i];
  return *this;
}

void BlacklistDb::Add(Ipv4 ip, std::uint8_t code) {
  if (code == 0) code = 2;
  auto [it, inserted] = entries_.emplace(ip, code);
  if (!inserted) {
    it->second = code;
    return;
  }
  by_prefix_[Prefix25(ip)].Set(Prefix25::BitIndex(ip));
  ++count24_[Prefix24(ip)];
}

void BlacklistDb::Remove(Ipv4 ip) {
  if (entries_.erase(ip) == 0) return;
  // Rebuild the /25 bitmap for this prefix (removals are rare —
  // delisting — so the 128-probe rebuild is fine).
  const Prefix25 p25(ip);
  PrefixBitmap bm;
  for (int i = 0; i < 128; ++i) {
    const Ipv4 candidate(p25.First().value() + static_cast<std::uint32_t>(i));
    if (entries_.contains(candidate)) bm.Set(i);
  }
  if (bm.Any()) {
    by_prefix_[p25] = bm;
  } else {
    by_prefix_.erase(p25);
  }
  if (--count24_[Prefix24(ip)] == 0) count24_.erase(Prefix24(ip));
}

std::uint8_t BlacklistDb::Lookup(Ipv4 ip) const {
  auto it = entries_.find(ip);
  return it == entries_.end() ? 0 : it->second;
}

PrefixBitmap BlacklistDb::LookupPrefix(Prefix25 prefix) const {
  auto it = by_prefix_.find(prefix);
  return it == by_prefix_.end() ? PrefixBitmap{} : it->second;
}

int BlacklistDb::CountInPrefix24(Prefix24 prefix) const {
  auto it = count24_.find(prefix);
  return it == count24_.end() ? 0 : it->second;
}

}  // namespace sams::dnsbl
