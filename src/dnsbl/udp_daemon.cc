#include "dnsbl/udp_daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/ipv4.h"
#include "util/logging.h"

namespace sams::dnsbl {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

util::Result<util::UniqueFd> BindUdpLoopback(std::uint16_t port) {
  util::UniqueFd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::IoError(Errno("bind"));
  }
  return fd;
}

}  // namespace

UdpDnsblDaemon::UdpDnsblDaemon(std::string zone, const BlacklistDb& db,
                               std::uint32_t ttl_seconds)
    : zone_(std::move(zone)), db_(db), ttl_seconds_(ttl_seconds) {}

UdpDnsblDaemon::~UdpDnsblDaemon() { Stop(); }

util::Result<std::uint16_t> UdpDnsblDaemon::Start() {
  auto fd = BindUdpLoopback(0);
  if (!fd.ok()) return fd.error();
  socket_ = std::move(fd).value();
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket_.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return util::IoError(Errno("getsockname"));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

void UdpDnsblDaemon::Stop() {
  if (!running_.exchange(false)) return;
  // A self-addressed datagram unblocks recvfrom.
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket_.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    const std::uint8_t poke = 0;
    (void)::sendto(socket_.get(), &poke, 1, 0,
                   reinterpret_cast<struct sockaddr*>(&addr), len);
  }
  if (thread_.joinable()) thread_.join();
  socket_.Reset();
}

void UdpDnsblDaemon::ServeLoop() {
  std::uint8_t buf[1500];
  while (running_.load(std::memory_order_acquire)) {
    struct sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        ::recvfrom(socket_.get(), buf, sizeof(buf), 0,
                   reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;

    auto query = ParseQuery(buf, static_cast<std::size_t>(n));
    if (!query.ok()) {
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.queries.fetch_add(1, std::memory_order_relaxed);

    DnsAnswer answer;
    answer.ttl = ttl_seconds_;
    if (query->question.qtype == QType::kA) {
      stats_.ip_queries.fetch_add(1, std::memory_order_relaxed);
      auto ip = util::ParseDnsblQueryName(query->question.qname, zone_);
      if (!ip) {
        answer.rcode = RCode::kNxDomain;
      } else if (const std::uint8_t code = db_.Lookup(*ip); code != 0) {
        answer.rdata = {127, 0, 0, code};
        stats_.listed_answers.fetch_add(1, std::memory_order_relaxed);
      } else {
        answer.rcode = RCode::kNxDomain;  // not listed
        stats_.nxdomain_answers.fetch_add(1, std::memory_order_relaxed);
      }
    } else {  // AAAA: DNSBLv6 prefix bitmap
      stats_.prefix_queries.fetch_add(1, std::memory_order_relaxed);
      auto prefix = util::ParseDnsblv6QueryName(query->question.qname, zone_);
      if (!prefix) {
        answer.rcode = RCode::kNxDomain;
      } else {
        answer.rdata = BitmapToRdata(db_.LookupPrefix(*prefix));
      }
    }

    auto response = EncodeResponse(*query, answer);
    if (!response.ok()) continue;
    (void)::sendto(socket_.get(), response->data(), response->size(), 0,
                   reinterpret_cast<struct sockaddr*>(&peer), peer_len);
  }
}

// --- client -------------------------------------------------------------

UdpDnsblClient::UdpDnsblClient(std::uint16_t server_port, std::string zone,
                               int timeout_ms)
    : port_(server_port), zone_(std::move(zone)), timeout_ms_(timeout_ms) {}

util::Result<ParsedResponse> UdpDnsblClient::RoundTrip(const DnsQuery& query) {
  util::UniqueFd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));
  struct timeval tv;
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);

  auto wire = EncodeQuery(query);
  if (!wire.ok()) return wire.error();
  if (::sendto(fd.get(), wire->data(), wire->size(), 0,
               reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return util::IoError(Errno("sendto"));
  }
  std::uint8_t buf[1500];
  const ssize_t n = ::recvfrom(fd.get(), buf, sizeof(buf), 0, nullptr, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::Unavailable("DNS query timed out");
    }
    return util::IoError(Errno("recvfrom"));
  }
  auto response = ParseResponse(buf, static_cast<std::size_t>(n));
  if (!response.ok()) return response.error();
  if (response->id != query.id) {
    return util::ProtocolError("response id mismatch");
  }
  return response;
}

util::Result<std::uint8_t> UdpDnsblClient::QueryIp(Ipv4 ip) {
  DnsQuery query;
  query.id = next_id_++;
  query.question.qname = util::DnsblQueryName(ip, zone_);
  query.question.qtype = QType::kA;
  auto response = RoundTrip(query);
  if (!response.ok()) return response.error();
  if (response->rcode == RCode::kNxDomain || response->answers.empty()) {
    return static_cast<std::uint8_t>(0);
  }
  const auto& rdata = response->answers[0].rdata;
  if (rdata.size() != 4) return util::ProtocolError("bad A rdata");
  return rdata[3];
}

util::Result<PrefixBitmap> UdpDnsblClient::QueryPrefix(Ipv4 ip) {
  DnsQuery query;
  query.id = next_id_++;
  query.question.qname = util::Dnsblv6QueryName(ip, zone_);
  query.question.qtype = QType::kAaaa;
  auto response = RoundTrip(query);
  if (!response.ok()) return response.error();
  if (response->rcode != RCode::kNoError || response->answers.empty()) {
    return util::ProtocolError("prefix query failed");
  }
  return RdataToBitmap(response->answers[0].rdata);
}

}  // namespace sams::dnsbl
