#include "dnsbl/udp_daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>

#include "util/ipv4.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/time.h"

namespace sams::dnsbl {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

util::Result<util::UniqueFd> BindUdpLoopback(std::uint16_t port) {
  util::UniqueFd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::IoError(Errno("bind"));
  }
  return fd;
}

}  // namespace

UdpDnsblDaemon::UdpDnsblDaemon(std::string zone, const BlacklistDb& db,
                               std::uint32_t ttl_seconds,
                               int response_delay_ms)
    : zone_(std::move(zone)),
      db_(db),
      ttl_seconds_(ttl_seconds),
      response_delay_ms_(response_delay_ms) {}

UdpDnsblDaemon::~UdpDnsblDaemon() { Stop(); }

util::Result<std::uint16_t> UdpDnsblDaemon::Start() {
  auto fd = BindUdpLoopback(0);
  if (!fd.ok()) return fd.error();
  socket_ = std::move(fd).value();
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket_.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return util::IoError(Errno("getsockname"));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

void UdpDnsblDaemon::Stop() {
  if (!running_.exchange(false)) return;
  // A self-addressed datagram unblocks recvfrom.
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket_.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    const std::uint8_t poke = 0;
    (void)::sendto(socket_.get(), &poke, 1, 0,
                   reinterpret_cast<struct sockaddr*>(&addr), len);
  }
  if (thread_.joinable()) thread_.join();
  socket_.Reset();
}

void UdpDnsblDaemon::ServeLoop() {
  std::uint8_t buf[1500];
  // Answers aging toward their injected-RTT due time. Fixed delay means
  // FIFO order is also due order, so a deque suffices. Receiving keeps
  // going while answers wait here — concurrent queries see the delay in
  // parallel, not summed.
  struct Pending {
    std::int64_t due_ns;
    std::vector<std::uint8_t> datagram;
    struct sockaddr_in peer;
    socklen_t peer_len;
  };
  std::deque<Pending> pending;
  const std::int64_t delay_ns =
      static_cast<std::int64_t>(response_delay_ms_) * 1'000'000;

  while (running_.load(std::memory_order_acquire)) {
    int wait_ms = -1;  // nothing pending: block until a query arrives
    if (!pending.empty()) {
      const std::int64_t until_due =
          (pending.front().due_ns - util::MonotonicNanos()) / 1'000'000;
      wait_ms = static_cast<int>(std::clamp<std::int64_t>(until_due, 0, 1000));
    }
    struct pollfd pfd {socket_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const std::int64_t now = util::MonotonicNanos();
    while (!pending.empty() && pending.front().due_ns <= now) {
      Pending& due = pending.front();
      (void)::sendto(socket_.get(), due.datagram.data(), due.datagram.size(),
                     0, reinterpret_cast<struct sockaddr*>(&due.peer),
                     due.peer_len);
      pending.pop_front();
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;

    struct sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        ::recvfrom(socket_.get(), buf, sizeof(buf), 0,
                   reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;

    auto query = ParseQuery(buf, static_cast<std::size_t>(n));
    if (!query.ok()) {
      stats_.malformed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.queries.fetch_add(1, std::memory_order_relaxed);

    DnsAnswer answer;
    answer.ttl = ttl_seconds_;
    if (query->question.qtype == QType::kA) {
      stats_.ip_queries.fetch_add(1, std::memory_order_relaxed);
      auto ip = util::ParseDnsblQueryName(query->question.qname, zone_);
      if (!ip) {
        answer.rcode = RCode::kNxDomain;
      } else if (const std::uint8_t code = db_.Lookup(*ip); code != 0) {
        answer.rdata = {127, 0, 0, code};
        stats_.listed_answers.fetch_add(1, std::memory_order_relaxed);
      } else {
        answer.rcode = RCode::kNxDomain;  // not listed
        stats_.nxdomain_answers.fetch_add(1, std::memory_order_relaxed);
      }
    } else {  // AAAA: DNSBLv6 prefix bitmap
      stats_.prefix_queries.fetch_add(1, std::memory_order_relaxed);
      auto prefix = util::ParseDnsblv6QueryName(query->question.qname, zone_);
      if (!prefix) {
        answer.rcode = RCode::kNxDomain;
      } else {
        answer.rdata = BitmapToRdata(db_.LookupPrefix(*prefix));
      }
    }

    auto response = EncodeResponse(*query, answer);
    if (!response.ok()) continue;
    if (delay_ns > 0) {
      pending.push_back(Pending{util::MonotonicNanos() + delay_ns,
                                std::move(*response), peer, peer_len});
      continue;
    }
    (void)::sendto(socket_.get(), response->data(), response->size(), 0,
                   reinterpret_cast<struct sockaddr*>(&peer), peer_len);
  }
}

// --- client -------------------------------------------------------------

UdpDnsblClient::UdpDnsblClient(std::uint16_t server_port, std::string zone,
                               int timeout_ms)
    : port_(server_port),
      zone_(std::move(zone)),
      timeout_ms_(timeout_ms),
      // Random starting id: a predictable stream (the old "start at 1")
      // lets an off-path attacker forge "not listed" answers by racing
      // the real daemon with guessed ids.
      next_id_(static_cast<std::uint16_t>(
          util::Rng(static_cast<std::uint64_t>(util::MonotonicNanos()) ^
                    reinterpret_cast<std::uintptr_t>(this))
              .NextU64())) {}

util::Result<ParsedResponse> UdpDnsblClient::RoundTrip(const DnsQuery& query) {
  util::UniqueFd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);

  auto wire = EncodeQuery(query);
  if (!wire.ok()) return wire.error();
  if (::sendto(fd.get(), wire->data(), wire->size(), 0,
               reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    return util::IoError(Errno("sendto"));
  }

  // Receive until the deadline, not just once: a duplicate of last
  // query's answer (late daemon retransmit, delay-queue straggler) must
  // be skipped, not returned as this query's verdict or treated as a
  // protocol error.
  const std::int64_t deadline_ns =
      util::MonotonicNanos() + static_cast<std::int64_t>(timeout_ms_) * 1'000'000;
  std::uint8_t buf[1500];
  for (;;) {
    const std::int64_t remaining_ns = deadline_ns - util::MonotonicNanos();
    if (remaining_ns <= 0) return util::Unavailable("DNS query timed out");
    struct timeval tv;
    tv.tv_sec = remaining_ns / 1'000'000'000;
    tv.tv_usec = static_cast<long>((remaining_ns / 1'000) % 1'000'000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    const ssize_t n =
        ::recvfrom(fd.get(), buf, sizeof(buf), 0, nullptr, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::Unavailable("DNS query timed out");
      }
      return util::IoError(Errno("recvfrom"));
    }
    auto response = ParseResponse(buf, static_cast<std::size_t>(n));
    if (!response.ok()) {
      ++mismatched_;  // unparsable noise; keep waiting for the answer
      continue;
    }
    if (response->id != query.id ||
        response->question.qtype != query.question.qtype ||
        response->question.qname != query.question.qname) {
      ++mismatched_;
      continue;
    }
    return response;
  }
}

util::Result<std::uint8_t> UdpDnsblClient::QueryIp(Ipv4 ip) {
  DnsQuery query;
  query.id = next_id_++;
  query.question.qname = util::DnsblQueryName(ip, zone_);
  query.question.qtype = QType::kA;
  auto response = RoundTrip(query);
  if (!response.ok()) return response.error();
  if (response->rcode == RCode::kNxDomain || response->answers.empty()) {
    return static_cast<std::uint8_t>(0);
  }
  const auto& rdata = response->answers[0].rdata;
  if (rdata.size() != 4) return util::ProtocolError("bad A rdata");
  return rdata[3];
}

util::Result<PrefixBitmap> UdpDnsblClient::QueryPrefix(Ipv4 ip) {
  DnsQuery query;
  query.id = next_id_++;
  query.question.qname = util::Dnsblv6QueryName(ip, zone_);
  query.question.qtype = QType::kAaaa;
  auto response = RoundTrip(query);
  if (!response.ok()) return response.error();
  if (response->rcode != RCode::kNoError || response->answers.empty()) {
    return util::ProtocolError("prefix query failed");
  }
  return RdataToBitmap(response->answers[0].rdata);
}

}  // namespace sams::dnsbl
