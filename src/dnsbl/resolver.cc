#include "dnsbl/resolver.h"

#include <algorithm>

namespace sams::dnsbl {

const char* CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kNoCache: return "no-cache";
    case CacheMode::kIpCache: return "ip-cache";
    case CacheMode::kPrefixCache: return "prefix-cache";
  }
  return "?";
}

LookupOutcome Resolver::Lookup(Ipv4 ip, SimTime now) {
  ++stats_.lookups;
  LookupOutcome out;

  switch (mode_) {
    case CacheMode::kIpCache: {
      if (const IpVerdict* v = ip_cache_.Lookup(ip, now)) {
        ++stats_.cache_hits;
        out.blacklisted = v->blacklisted;
        out.cache_hit = true;
        return out;
      }
      break;
    }
    case CacheMode::kPrefixCache: {
      if (const PrefixBitmap* bm = prefix_cache_.Lookup(Prefix25(ip), now)) {
        ++stats_.cache_hits;
        out.blacklisted = bm->TestIp(ip);
        out.cache_hit = true;
        return out;
      }
      break;
    }
    case CacheMode::kNoCache:
      break;
  }

  // Miss: query all lists concurrently; the transaction waits for the
  // slowest reply.
  SimTime slowest{};
  if (mode_ == CacheMode::kPrefixCache) {
    PrefixBitmap combined;
    for (const DnsblServer* server : servers_) {
      const auto answer = server->QueryPrefix(Prefix25(ip), rng_);
      combined |= answer.bitmap;
      slowest = std::max(slowest, answer.latency);
      ++out.dns_queries;
    }
    out.blacklisted = combined.TestIp(ip);
    prefix_cache_.Insert(Prefix25(ip), combined, now);
  } else {
    bool listed = false;
    for (const DnsblServer* server : servers_) {
      const auto answer = server->QueryIp(ip, rng_);
      listed = listed || answer.code != 0;
      slowest = std::max(slowest, answer.latency);
      ++out.dns_queries;
    }
    out.blacklisted = listed;
    if (mode_ == CacheMode::kIpCache) {
      ip_cache_.Insert(ip, IpVerdict{listed}, now);
    }
  }
  out.latency = slowest;
  stats_.dns_queries_sent += static_cast<std::uint64_t>(out.dns_queries);
  return out;
}

}  // namespace sams::dnsbl
