#include "dnsbl/resolver.h"

#include <algorithm>

#include "fault/injector.h"

namespace sams::dnsbl {

const char* CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kNoCache: return "no-cache";
    case CacheMode::kIpCache: return "ip-cache";
    case CacheMode::kPrefixCache: return "prefix-cache";
  }
  return "?";
}

void Resolver::SetQueryPolicy(const QueryPolicy& policy) {
  policy_ = policy;
  health_.assign(servers_.size(), ServerHealth{});
}

void Resolver::BindMetrics(obs::Registry& registry) {
  const obs::Labels mode_label = {{"mode", CacheModeName(mode_)}};
  lookups_counter_ = &registry.GetCounter(
      "sams_dnsbl_lookups_total", "client-IP verdict lookups", mode_label);
  hits_counter_ = &registry.GetCounter(
      "sams_dnsbl_cache_hits_total", "lookups answered from cache",
      mode_label);
  queries_counter_ = &registry.GetCounter(
      "sams_dnsbl_queries_sent_total", "DNS messages sent to DNSBL servers",
      mode_label);
  blacklisted_counter_ = &registry.GetCounter(
      "sams_dnsbl_blacklisted_total", "lookups with a listed verdict",
      mode_label);
  timeouts_counter_ = &registry.GetCounter(
      "sams_dnsbl_query_timeouts_total",
      "per-server query attempts abandoned at the timeout", mode_label);
  retries_counter_ = &registry.GetCounter(
      "sams_dnsbl_query_retries_total",
      "per-server query re-sends after a timeout", mode_label);
  breaker_trips_counter_ = &registry.GetCounter(
      "sams_dnsbl_breaker_trips_total",
      "per-server circuit breakers opened", mode_label);
  breaker_skips_counter_ = &registry.GetCounter(
      "sams_dnsbl_breaker_skips_total",
      "server queries skipped on an open breaker", mode_label);
  degraded_counter_ = &registry.GetCounter(
      "sams_dnsbl_degraded_lookups_total",
      "lookups that lost a server and synthesized a verdict", mode_label);
  miss_latency_ms_ = &registry.GetHistogram(
      "sams_dnsbl_miss_latency_millis",
      "slowest-list DNS round latency on a miss (ms)", {0.5, 2.0, 12},
      mode_label);
  ip_cache_.BindCounters({
      &registry.GetCounter("sams_dnsbl_cache_lookups_total",
                           "TTL-cache probes", {{"cache", "ip"}}),
      &registry.GetCounter("sams_dnsbl_cache_entry_hits_total",
                           "TTL-cache fresh hits", {{"cache", "ip"}}),
      &registry.GetCounter("sams_dnsbl_cache_insertions_total",
                           "TTL-cache fills", {{"cache", "ip"}}),
      &registry.GetCounter("sams_dnsbl_cache_expirations_total",
                           "TTL-cache entries expired on probe",
                           {{"cache", "ip"}}),
  });
  prefix_cache_.BindCounters({
      &registry.GetCounter("sams_dnsbl_cache_lookups_total",
                           "TTL-cache probes", {{"cache", "prefix"}}),
      &registry.GetCounter("sams_dnsbl_cache_entry_hits_total",
                           "TTL-cache fresh hits", {{"cache", "prefix"}}),
      &registry.GetCounter("sams_dnsbl_cache_insertions_total",
                           "/25-bitmap fills (127 neighbours per fill)",
                           {{"cache", "prefix"}}),
      &registry.GetCounter("sams_dnsbl_cache_expirations_total",
                           "TTL-cache entries expired on probe",
                           {{"cache", "prefix"}}),
  });
}

LookupOutcome Resolver::Lookup(Ipv4 ip, SimTime now) {
  ++stats_.lookups;
  if (lookups_counter_ != nullptr) lookups_counter_->Inc();
  LookupOutcome out;

  switch (mode_) {
    case CacheMode::kIpCache: {
      if (const IpVerdict* v = ip_cache_.Lookup(ip, now)) {
        ++stats_.cache_hits;
        if (hits_counter_ != nullptr) hits_counter_->Inc();
        out.blacklisted = v->blacklisted;
        out.cache_hit = true;
        CountVerdict(out.blacklisted);
        return out;
      }
      break;
    }
    case CacheMode::kPrefixCache: {
      if (const PrefixBitmap* bm = prefix_cache_.Lookup(Prefix25(ip), now)) {
        ++stats_.cache_hits;
        if (hits_counter_ != nullptr) hits_counter_->Inc();
        out.blacklisted = bm->TestIp(ip);
        out.cache_hit = true;
        CountVerdict(out.blacklisted);
        return out;
      }
      break;
    }
    case CacheMode::kNoCache:
      break;
  }

  // Miss: query all lists concurrently; the transaction waits for the
  // slowest reply (bounded by QueryPolicy::Budget() when hardening is
  // on — an unresponsive list can no longer stall the round forever).
  SimTime slowest{};
  const bool prefix_mode = mode_ == CacheMode::kPrefixCache;
  if (prefix_mode) {
    PrefixBitmap combined;
    bool closed_listed = false;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!policy_.enabled) {
        const auto answer = servers_[i]->QueryPrefix(Prefix25(ip), rng_);
        combined |= answer.bitmap;
        slowest = std::max(slowest, answer.latency);
        ++out.dns_queries;
        continue;
      }
      SimTime waited{};
      std::uint8_t code = 0;
      PrefixBitmap bitmap;
      if (QueryServerHardened(i, ip, /*prefix_mode=*/true, now, waited, code,
                              bitmap, out.dns_queries)) {
        combined |= bitmap;
      } else {
        out.degraded = true;
        if (!policy_.fail_open) closed_listed = true;
      }
      slowest = std::max(slowest, waited);
    }
    out.blacklisted = combined.TestIp(ip) || closed_listed;
    if (!out.degraded) prefix_cache_.Insert(Prefix25(ip), combined, now);
  } else {
    bool listed = false;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!policy_.enabled) {
        const auto answer = servers_[i]->QueryIp(ip, rng_);
        listed = listed || answer.code != 0;
        slowest = std::max(slowest, answer.latency);
        ++out.dns_queries;
        continue;
      }
      SimTime waited{};
      std::uint8_t code = 0;
      PrefixBitmap bitmap;
      if (QueryServerHardened(i, ip, /*prefix_mode=*/false, now, waited, code,
                              bitmap, out.dns_queries)) {
        listed = listed || code != 0;
      } else {
        out.degraded = true;
        if (!policy_.fail_open) listed = true;
      }
      slowest = std::max(slowest, waited);
    }
    out.blacklisted = listed;
    if (mode_ == CacheMode::kIpCache && !out.degraded) {
      ip_cache_.Insert(ip, IpVerdict{listed}, now);
    }
  }
  if (out.degraded) {
    ++stats_.degraded_lookups;
    if (degraded_counter_ != nullptr) degraded_counter_->Inc();
  }
  out.latency = slowest;
  stats_.dns_queries_sent += static_cast<std::uint64_t>(out.dns_queries);
  if (queries_counter_ != nullptr) {
    queries_counter_->Inc(static_cast<std::uint64_t>(out.dns_queries));
    miss_latency_ms_->Observe(slowest.millis());
  }
  CountVerdict(out.blacklisted);
  return out;
}

bool Resolver::QueryServerHardened(std::size_t index, Ipv4 ip,
                                   bool prefix_mode, SimTime now,
                                   SimTime& answered_latency,
                                   std::uint8_t& answer_code,
                                   PrefixBitmap& answer_bitmap, int& queries) {
  const DnsblServer* server = servers_[index];
  ServerHealth& health = health_[index];

  // Open breaker: skip the server outright — no query, no waiting.
  if (policy_.breaker_enabled && now < health.open_until) {
    ++health.skips;
    ++stats_.breaker_skips;
    if (breaker_skips_counter_ != nullptr) breaker_skips_counter_->Inc();
    answered_latency = SimTime{};
    return false;
  }

  // The chaos hook: an injected error on "dnsbl.query.<zone>" models a
  // blackholed query — the message is sent but no answer ever comes.
  const std::string point = "dnsbl.query." + server->zone();

  SimTime waited{};
  const int attempts = 1 + std::max(0, policy_.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      waited += policy_.retry_backoff.Scaled(rng_.Uniform(0.5, 1.5));
      ++health.retries;
      ++stats_.retries;
      if (retries_counter_ != nullptr) retries_counter_->Inc();
    }
    ++queries;
    const bool blackholed = !SAMS_FAULT_ERROR(point.c_str()).ok();
    if (!blackholed) {
      SimTime latency;
      if (prefix_mode) {
        const auto answer = server->QueryPrefix(Prefix25(ip), rng_);
        latency = answer.latency;
        if (latency <= policy_.timeout) {
          answer_bitmap = answer.bitmap;
          answered_latency = waited + latency;
          health.consecutive_failures = 0;
          return true;
        }
      } else {
        const auto answer = server->QueryIp(ip, rng_);
        latency = answer.latency;
        if (latency <= policy_.timeout) {
          answer_code = answer.code;
          answered_latency = waited + latency;
          health.consecutive_failures = 0;
          return true;
        }
      }
    }
    // Blackholed, or the sampled reply was slower than the timeout:
    // the attempt burns the full timeout before giving up.
    waited += policy_.timeout;
    ++health.timeouts;
    ++stats_.timeouts;
    if (timeouts_counter_ != nullptr) timeouts_counter_->Inc();
  }

  // Every attempt lost. Count a consecutive failure; maybe trip.
  ++health.consecutive_failures;
  if (policy_.breaker_enabled &&
      health.consecutive_failures >= policy_.breaker_threshold) {
    health.open_until = now + policy_.breaker_cooldown;
    health.consecutive_failures = 0;
    ++health.trips;
    ++stats_.breaker_trips;
    if (breaker_trips_counter_ != nullptr) breaker_trips_counter_->Inc();
  }
  answered_latency = waited;
  return false;
}

void Resolver::CountVerdict(bool blacklisted) {
  if (blacklisted && blacklisted_counter_ != nullptr) {
    blacklisted_counter_->Inc();
  }
}

}  // namespace sams::dnsbl
