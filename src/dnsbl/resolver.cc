#include "dnsbl/resolver.h"

#include <algorithm>

namespace sams::dnsbl {

const char* CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kNoCache: return "no-cache";
    case CacheMode::kIpCache: return "ip-cache";
    case CacheMode::kPrefixCache: return "prefix-cache";
  }
  return "?";
}

void Resolver::BindMetrics(obs::Registry& registry) {
  const obs::Labels mode_label = {{"mode", CacheModeName(mode_)}};
  lookups_counter_ = &registry.GetCounter(
      "sams_dnsbl_lookups_total", "client-IP verdict lookups", mode_label);
  hits_counter_ = &registry.GetCounter(
      "sams_dnsbl_cache_hits_total", "lookups answered from cache",
      mode_label);
  queries_counter_ = &registry.GetCounter(
      "sams_dnsbl_queries_sent_total", "DNS messages sent to DNSBL servers",
      mode_label);
  blacklisted_counter_ = &registry.GetCounter(
      "sams_dnsbl_blacklisted_total", "lookups with a listed verdict",
      mode_label);
  miss_latency_ms_ = &registry.GetHistogram(
      "sams_dnsbl_miss_latency_millis",
      "slowest-list DNS round latency on a miss (ms)", {0.5, 2.0, 12},
      mode_label);
  ip_cache_.BindCounters({
      &registry.GetCounter("sams_dnsbl_cache_lookups_total",
                           "TTL-cache probes", {{"cache", "ip"}}),
      &registry.GetCounter("sams_dnsbl_cache_entry_hits_total",
                           "TTL-cache fresh hits", {{"cache", "ip"}}),
      &registry.GetCounter("sams_dnsbl_cache_insertions_total",
                           "TTL-cache fills", {{"cache", "ip"}}),
      &registry.GetCounter("sams_dnsbl_cache_expirations_total",
                           "TTL-cache entries expired on probe",
                           {{"cache", "ip"}}),
  });
  prefix_cache_.BindCounters({
      &registry.GetCounter("sams_dnsbl_cache_lookups_total",
                           "TTL-cache probes", {{"cache", "prefix"}}),
      &registry.GetCounter("sams_dnsbl_cache_entry_hits_total",
                           "TTL-cache fresh hits", {{"cache", "prefix"}}),
      &registry.GetCounter("sams_dnsbl_cache_insertions_total",
                           "/25-bitmap fills (127 neighbours per fill)",
                           {{"cache", "prefix"}}),
      &registry.GetCounter("sams_dnsbl_cache_expirations_total",
                           "TTL-cache entries expired on probe",
                           {{"cache", "prefix"}}),
  });
}

LookupOutcome Resolver::Lookup(Ipv4 ip, SimTime now) {
  ++stats_.lookups;
  if (lookups_counter_ != nullptr) lookups_counter_->Inc();
  LookupOutcome out;

  switch (mode_) {
    case CacheMode::kIpCache: {
      if (const IpVerdict* v = ip_cache_.Lookup(ip, now)) {
        ++stats_.cache_hits;
        if (hits_counter_ != nullptr) hits_counter_->Inc();
        out.blacklisted = v->blacklisted;
        out.cache_hit = true;
        CountVerdict(out.blacklisted);
        return out;
      }
      break;
    }
    case CacheMode::kPrefixCache: {
      if (const PrefixBitmap* bm = prefix_cache_.Lookup(Prefix25(ip), now)) {
        ++stats_.cache_hits;
        if (hits_counter_ != nullptr) hits_counter_->Inc();
        out.blacklisted = bm->TestIp(ip);
        out.cache_hit = true;
        CountVerdict(out.blacklisted);
        return out;
      }
      break;
    }
    case CacheMode::kNoCache:
      break;
  }

  // Miss: query all lists concurrently; the transaction waits for the
  // slowest reply.
  SimTime slowest{};
  if (mode_ == CacheMode::kPrefixCache) {
    PrefixBitmap combined;
    for (const DnsblServer* server : servers_) {
      const auto answer = server->QueryPrefix(Prefix25(ip), rng_);
      combined |= answer.bitmap;
      slowest = std::max(slowest, answer.latency);
      ++out.dns_queries;
    }
    out.blacklisted = combined.TestIp(ip);
    prefix_cache_.Insert(Prefix25(ip), combined, now);
  } else {
    bool listed = false;
    for (const DnsblServer* server : servers_) {
      const auto answer = server->QueryIp(ip, rng_);
      listed = listed || answer.code != 0;
      slowest = std::max(slowest, answer.latency);
      ++out.dns_queries;
    }
    out.blacklisted = listed;
    if (mode_ == CacheMode::kIpCache) {
      ip_cache_.Insert(ip, IpVerdict{listed}, now);
    }
  }
  out.latency = slowest;
  stats_.dns_queries_sent += static_cast<std::uint64_t>(out.dns_queries);
  if (queries_counter_ != nullptr) {
    queries_counter_->Inc(static_cast<std::uint64_t>(out.dns_queries));
    miss_latency_ms_->Observe(slowest.millis());
  }
  CountVerdict(out.blacklisted);
  return out;
}

void Resolver::CountVerdict(bool blacklisted) {
  if (blacklisted && blacklisted_counter_ != nullptr) {
    blacklisted_counter_->Inc();
  }
}

}  // namespace sams::dnsbl
