// AsyncLookupPipeline — the real server's non-blocking DNSBL client
// (DESIGN.md §10).
//
// §4.3/Figure 5 show the DNSBL round trip dominating per-connection
// latency. The paper's fix is architectural: start the lookup the
// moment the connection is accepted, let the DNS datagrams fly while
// the SMTP dialog (banner → HELO → MAIL FROM) proceeds, and harvest
// the verdict at RCPT — by which time it has usually long arrived, so
// the common case pays ~0 visible DNSBL latency (the Flash trick:
// overlap remote I/O with protocol work instead of blocking on it).
//
// Two cooperating classes:
//
//   AsyncDnsblService — ONE per server. Owns the ConcurrentPrefixCache
//     shared by every reactor shard and the singleflight table that
//     coalesces concurrent misses: when a botnet /24 bursts, N shards
//     asking about the same /25 produce ONE in-flight DNS round; the
//     other N-1 callers are parked as waiters and completed when the
//     owner's answer lands (groupcache-style keyed coalescing).
//
//   AsyncLookupPipeline — one per reactor shard. Owns a non-blocking
//     UDP socket and a timerfd registered directly on the shard's
//     net::EventLoop (EPOLLIN + loop timer; no thread per lookup),
//     issues AAAA /25-bitmap queries to every configured zone in
//     parallel, matches answers by DNS id *and* question name (a late
//     retransmit cannot complete the wrong flight), and times out /
//     retries per zone. A lookup that lost any zone is "degraded": its
//     verdict is synthesized per fail-open and NEVER cached.
//
// Thread model: all pipeline methods (Begin, socket/timer callbacks,
// destructor) run on the owning shard's loop thread. Cross-shard
// verdict delivery goes through net::EventLoop::Post, so callbacks
// always fire on the thread that registered them.
//
// Fault points: "dnsbl.udp.delay" (stalls a send — chaos makes the
// overlap window visible) and "dnsbl.udp.drop" (loses the datagram —
// chaos exercises the timeout/retry/fail-open path).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnsbl/concurrent_cache.h"
#include "dnsbl/dns_wire.h"
#include "net/event_loop.h"
#include "obs/metrics.h"
#include "util/fd.h"
#include "util/ipv4.h"
#include "util/result.h"
#include "util/rng.h"

namespace sams::dnsbl {

// A DNSBL zone served on 127.0.0.1:<port> (UdpDnsblDaemon or any real
// DNS speaker answering AAAA bitmap queries).
struct ZoneEndpoint {
  std::string zone;
  std::uint16_t port = 0;
};

struct AsyncDnsblConfig {
  bool enabled = false;
  std::vector<ZoneEndpoint> zones;
  // Per-zone attempt timeout and bounded retries (a lost datagram is
  // re-sent; after the budget the zone is marked failed → degraded).
  int timeout_ms = 800;
  int max_retries = 1;
  // Degraded verdict synthesis: fail-open treats unanswered zones as
  // "not listed" (availability), fail-closed as "listed" (paranoia).
  bool fail_open = true;
  std::uint32_t ttl_seconds = 24 * 3600;   // cache TTL (wall clock)
  std::size_t cache_capacity = 1u << 16;   // /25 entries, LRU-bounded
  std::size_t cache_lock_shards = 16;
};

struct AsyncVerdict {
  bool blacklisted = false;
  bool degraded = false;   // a zone's answer was lost; NOT cached
  bool cache_hit = false;
  std::int64_t latency_ns = 0;  // DNS round latency (0 on a cache hit)
};

using VerdictCallback = std::function<void(const AsyncVerdict&)>;

struct AsyncDnsblStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> coalesced{0};     // joined an in-flight round
  std::atomic<std::uint64_t> queries_sent{0};  // DNS datagrams sent
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> timeouts{0};      // zone attempts abandoned
  std::atomic<std::uint64_t> degraded{0};      // flights missing a zone
  std::atomic<std::uint64_t> mismatched{0};    // late/alien answers ignored
  std::atomic<std::uint64_t> blacklisted{0};   // listed verdicts handed out
  std::atomic<int> inflight{0};                // open DNS rounds (all shards)
};

class AsyncLookupPipeline;

class AsyncDnsblService {
 public:
  explicit AsyncDnsblService(AsyncDnsblConfig cfg);

  AsyncDnsblService(const AsyncDnsblService&) = delete;
  AsyncDnsblService& operator=(const AsyncDnsblService&) = delete;

  const AsyncDnsblConfig& config() const { return cfg_; }
  ConcurrentPrefixCache& cache() { return cache_; }
  const AsyncDnsblStats& stats() const { return stats_; }

  // Publishes sams_dnsbl_async_* and the shared cache's counters.
  void BindMetrics(obs::Registry& registry);

 private:
  friend class AsyncLookupPipeline;

  struct Waiter {
    net::EventLoop* loop = nullptr;  // where the callback must run
    util::Ipv4 ip;                   // verdict is per-IP within the /25
    VerdictCallback callback;
  };

  // Singleflight: appends the waiter to the prefix's round. Returns
  // true when the caller opened the round and must issue the queries.
  bool JoinOrOwn(Prefix25 prefix, Waiter waiter);
  std::vector<Waiter> TakeWaiters(Prefix25 prefix);

  void ObserveLookupMs(double ms) {
    if (lookup_ms_ != nullptr) lookup_ms_->Observe(ms);
  }

  AsyncDnsblConfig cfg_;
  ConcurrentPrefixCache cache_;
  AsyncDnsblStats stats_;

  std::mutex flights_mutex_;
  std::unordered_map<Prefix25, std::vector<Waiter>> flight_waiters_;

  // Optional observability (null until BindMetrics).
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* lookup_ms_ = nullptr;
};

class AsyncLookupPipeline {
 public:
  // Construct + Init on the loop's thread, before loop.Run() or from a
  // task running inside it. The service and loop must outlive the
  // pipeline; the pipeline must be destroyed on the loop thread after
  // the loop stopped (its dtor completes abandoned rounds fail-open).
  AsyncLookupPipeline(AsyncDnsblService& service, net::EventLoop& loop);
  ~AsyncLookupPipeline();

  AsyncLookupPipeline(const AsyncLookupPipeline&) = delete;
  AsyncLookupPipeline& operator=(const AsyncLookupPipeline&) = delete;

  // Opens the UDP socket + timer and registers both on the loop.
  util::Error Init();

  // Starts (or joins) the verdict lookup for `ip`. On a cache hit the
  // verdict is returned immediately and `callback` is never invoked;
  // otherwise `callback` fires exactly once, later, on this pipeline's
  // loop thread (even when another shard's round answers it).
  std::optional<AsyncVerdict> Begin(util::Ipv4 ip, VerdictCallback callback);

  // Open DNS rounds owned by THIS pipeline (tests/teardown checks).
  std::size_t owned_flights() const { return flights_.size(); }

 private:
  struct ZoneQuery {
    std::uint16_t id = 0;
    int attempts = 0;            // send attempts so far
    std::int64_t deadline_ns = 0;
    bool done = false;
    bool failed = false;         // timed out past the retry budget
  };
  struct Flight {
    Prefix25 prefix;
    util::Ipv4 ip;               // representative address (query names)
    std::int64_t begin_ns = 0;
    PrefixBitmap bitmap;         // union of zone answers so far
    int zones_done = 0;
    std::vector<ZoneQuery> zones;
  };

  void OnSocketReadable();
  void OnTimerFired();
  void SendZoneQuery(Flight& flight, std::size_t zone_index, bool is_retry);
  void CompleteFlight(Prefix25 prefix);
  void DispatchVerdict(const AsyncDnsblService::Waiter& waiter,
                       const PrefixBitmap& bitmap, bool degraded,
                       std::int64_t latency_ns);
  void RearmTimer();
  std::uint16_t AllocateQueryId();

  AsyncDnsblService& service_;
  net::EventLoop& loop_;
  util::UniqueFd socket_;
  util::UniqueFd timer_;
  std::unordered_map<Prefix25, std::unique_ptr<Flight>> flights_;
  // DNS id -> (flight, zone index); ids are per-pipeline (per-socket).
  std::unordered_map<std::uint16_t, std::pair<Flight*, std::size_t>> by_id_;
  util::Rng rng_;
};

}  // namespace sams::dnsbl
