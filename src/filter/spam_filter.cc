#include "filter/spam_filter.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace sams::filter {
namespace {

struct PhraseRule {
  const char* phrase;  // matched case-insensitively against the body
  double score;
  const char* name;
};

constexpr PhraseRule kPhrases[] = {
    {"viagra", 3.5, "DRUG_SPAM"},
    {"v1agra", 4.0, "OBFUSCATED_DRUG"},
    {"buy now", 2.0, "BUY_NOW"},
    {"click here", 1.5, "CLICK_HERE"},
    {"free money", 3.0, "FREE_MONEY"},
    {"make money fast", 3.5, "MMF"},
    {"limited time offer", 2.0, "LIMITED_TIME"},
    {"no prescription", 3.0, "NO_RX"},
    {"winner", 1.0, "WINNER"},
    {"lottery", 2.5, "LOTTERY"},
    {"nigerian prince", 5.0, "419_SCAM"},
    {"unsubscribe", 0.5, "LIST_MAIL"},
    {"100% free", 2.5, "HUNDRED_PCT_FREE"},
    {"act now", 1.5, "ACT_NOW"},
    {"cheap", 1.0, "CHEAP"},
};

// Case-insensitive substring search.
bool ContainsCi(std::string_view haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (util::AsciiToLower(haystack[i + j]) !=
          util::AsciiToLower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

// Extracts the Subject: header line from the body, if present.
std::string_view SubjectOf(std::string_view body) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    std::string_view line = body.substr(pos, eol - pos);
    if (line.empty() || line == "\r") break;  // end of headers
    if (util::IStartsWith(line, "Subject:")) {
      return util::Trim(line.substr(8));
    }
    pos = eol + 1;
  }
  return {};
}

}  // namespace

SpamFilter::SpamFilter(FilterConfig cfg) : cfg_(cfg) {}

Verdict SpamFilter::Classify(const smtp::Envelope& envelope) const {
  Verdict verdict;
  const std::string& body = envelope.body;

  for (const PhraseRule& rule : kPhrases) {
    if (ContainsCi(body, rule.phrase)) {
      verdict.score += rule.score;
      verdict.hits.push_back(rule.name);
    }
  }

  // Shouting subject: > 60% uppercase letters among >= 8 alphabetics.
  const std::string_view subject = SubjectOf(body);
  int upper = 0, alpha = 0;
  for (char c : subject) {
    if (c >= 'A' && c <= 'Z') {
      ++upper;
      ++alpha;
    } else if (c >= 'a' && c <= 'z') {
      ++alpha;
    }
  }
  if (alpha >= 8 && upper * 10 > alpha * 6) {
    verdict.score += 2.0;
    verdict.hits.push_back("SHOUTING_SUBJECT");
  }

  // URL density: one fired rule regardless of count, scaled mildly.
  int urls = 0;
  for (std::size_t pos = 0;
       (pos = body.find("http", pos)) != std::string::npos; pos += 4) {
    ++urls;
  }
  if (urls >= 3) {
    verdict.score += std::min(3.0, 1.0 + 0.5 * urls);
    verdict.hits.push_back("MANY_URLS");
  }

  // Recipient fan-out (§4.2: spam averages ~7 RCPTs, ham 1.02).
  if (envelope.rcpt_to.size() >= 5) {
    verdict.score += 1.5;
    verdict.hits.push_back("MANY_RCPTS");
  }

  // Bayes contribution: log-odds capped to +-6, weighted.
  if (bayes_.spam_documents() > 0 && bayes_.ham_documents() > 0) {
    const double p = bayes_.Score(body);
    const double log_odds =
        std::log(std::clamp(p, 1e-9, 1.0 - 1e-9) /
                 (1.0 - std::clamp(p, 1e-9, 1.0 - 1e-9)));
    const double contribution =
        cfg_.bayes_weight * std::clamp(log_odds, -6.0, 6.0);
    verdict.score += contribution;
    if (contribution > 2.0) verdict.hits.push_back("BAYES_SPAM");
    if (contribution < -2.0) verdict.hits.push_back("BAYES_HAM");
  }

  verdict.spam = verdict.score >= cfg_.tag_threshold;
  verdict.reject = verdict.score >= cfg_.reject_threshold;
  return verdict;
}

}  // namespace sams::filter
