// Synthetic mail corpus for training/evaluating the content filter:
// spam-flavoured and ham-flavoured bodies built from disjoint-ish word
// pools with realistic overlap (common English filler appears in both).
#pragma once

#include <string>

#include "util/rng.h"

namespace sams::filter {

// A promotional/scam-flavoured mail body with headers.
std::string MakeSpamBody(util::Rng& rng);

// A work/personal-flavoured mail body with headers.
std::string MakeHamBody(util::Rng& rng);

}  // namespace sams::filter
