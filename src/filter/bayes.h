// Naive-Bayes spam classifier — the "content-based filtering [5]"
// family of techniques the paper's introduction catalogues, and the
// SpamAssassin-style body test that flagged 67% of the Univ trace as
// spam (Table 1). Implemented Graham-style: per-token spam/ham counts,
// Laplace smoothing, log-odds summed over the document's distinct
// tokens.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "filter/tokenizer.h"
#include "util/result.h"

namespace sams::filter {

class BayesClassifier {
 public:
  // Feeds one labelled document into the model.
  void Train(std::string_view text, bool is_spam);

  // P(spam | text) in [0, 1]. 0.5 when the model is empty or the text
  // has no known tokens.
  double Score(std::string_view text) const;

  std::uint64_t spam_documents() const { return spam_docs_; }
  std::uint64_t ham_documents() const { return ham_docs_; }
  std::size_t vocabulary_size() const { return tokens_.size(); }

  // Model persistence (text format: counts per token).
  util::Error Save(const std::string& path) const;
  static util::Result<BayesClassifier> Load(const std::string& path);

 private:
  struct Counts {
    std::uint32_t spam = 0;
    std::uint32_t ham = 0;
  };
  std::unordered_map<std::string, Counts> tokens_;
  std::uint64_t spam_docs_ = 0;
  std::uint64_t ham_docs_ = 0;
};

}  // namespace sams::filter
