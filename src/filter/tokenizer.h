// Word tokenizer for the content filter: lowercased alphanumeric
// tokens, 2..24 chars, with a cap on tokens per document so hostile
// megabyte bodies cannot blow up classification cost.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sams::filter {

struct TokenizerConfig {
  std::size_t min_len = 2;
  std::size_t max_len = 24;
  std::size_t max_tokens = 2'000;
};

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerConfig& cfg = {});

}  // namespace sams::filter
