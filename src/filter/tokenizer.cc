#include "filter/tokenizer.h"

#include "util/strings.h"

namespace sams::filter {

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerConfig& cfg) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() >= cfg.min_len && current.size() <= cfg.max_len &&
        tokens.size() < cfg.max_tokens) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char c : text) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      current.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      current.push_back(util::AsciiToLower(c));
    } else {
      flush();
      if (tokens.size() >= cfg.max_tokens) return tokens;
    }
  }
  flush();
  return tokens;
}

}  // namespace sams::filter
