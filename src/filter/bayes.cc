#include "filter/bayes.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

#include "util/strings.h"

namespace sams::filter {

void BayesClassifier::Train(std::string_view text, bool is_spam) {
  if (is_spam) {
    ++spam_docs_;
  } else {
    ++ham_docs_;
  }
  // Count each distinct token once per document (Bernoulli NB — robust
  // against token-stuffing).
  std::set<std::string> seen;
  for (std::string& token : Tokenize(text)) {
    if (!seen.insert(token).second) continue;
    Counts& counts = tokens_[std::move(token)];
    if (is_spam) {
      ++counts.spam;
    } else {
      ++counts.ham;
    }
  }
}

double BayesClassifier::Score(std::string_view text) const {
  if (spam_docs_ == 0 || ham_docs_ == 0) return 0.5;
  const double spam_total = static_cast<double>(spam_docs_);
  const double ham_total = static_cast<double>(ham_docs_);
  // Prior log-odds plus per-token likelihood log-odds with Laplace
  // smoothing.
  double log_odds = std::log(spam_total / ham_total);
  std::set<std::string> seen;
  for (std::string& token : Tokenize(text)) {
    if (!seen.insert(token).second) continue;
    auto it = tokens_.find(token);
    if (it == tokens_.end()) continue;  // unseen tokens are neutral
    const double p_spam = (it->second.spam + 1.0) / (spam_total + 2.0);
    const double p_ham = (it->second.ham + 1.0) / (ham_total + 2.0);
    log_odds += std::log(p_spam / p_ham);
  }
  // Clamp to avoid exp overflow on long, strongly-scored documents.
  log_odds = std::min(std::max(log_odds, -30.0), 30.0);
  const double odds = std::exp(log_odds);
  return odds / (1.0 + odds);
}

util::Error BayesClassifier::Save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::fprintf(file, "sams-bayes-v1 %llu %llu\n",
               static_cast<unsigned long long>(spam_docs_),
               static_cast<unsigned long long>(ham_docs_));
  for (const auto& [token, counts] : tokens_) {
    std::fprintf(file, "%s %u %u\n", token.c_str(), counts.spam, counts.ham);
  }
  if (std::fclose(file) != 0) return util::IoError("close " + path);
  return util::OkError();
}

util::Result<BayesClassifier> BayesClassifier::Load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return util::IoError("open " + path + ": " + std::strerror(errno));
  }
  BayesClassifier model;
  char line[512];
  bool first = true;
  util::Error error;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (first) {
      unsigned long long spam = 0, ham = 0;
      if (std::sscanf(line, "sams-bayes-v1 %llu %llu", &spam, &ham) != 2) {
        error = util::InvalidArgument(path + ": not a sams-bayes-v1 model");
        break;
      }
      model.spam_docs_ = spam;
      model.ham_docs_ = ham;
      first = false;
      continue;
    }
    char token[256];
    unsigned spam = 0, ham = 0;
    if (std::sscanf(line, "%255s %u %u", token, &spam, &ham) != 3) {
      error = util::Corruption(path + ": bad token record");
      break;
    }
    model.tokens_[token] = Counts{spam, ham};
  }
  std::fclose(file);
  if (!error.ok()) return error;
  if (first) return util::InvalidArgument(path + ": empty model file");
  return model;
}

}  // namespace sams::filter
