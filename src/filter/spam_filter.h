// SpamFilter — the post-DATA content check of §5.2 ("after receiving
// the data part of the mail, many body tests are performed by various
// third-party spam filter modules such as keyword matching"), combined
// from:
//   * heuristic rules (keyword/phrase hits, shouting subject, URL
//     density, recipient fan-out), each contributing a weighted score;
//   * the naive-Bayes classifier's log-odds, mapped onto the same
//     scale.
// Under the fork-after-trust architecture these tests stay inside the
// per-connection smtpd worker, preserving process isolation (§5.2) —
// the SmtpServer wires Classify() into its post-DATA hook.
#pragma once

#include <string>
#include <vector>

#include "filter/bayes.h"
#include "smtp/server_session.h"

namespace sams::filter {

struct FilterConfig {
  // Score at which mail is tagged (X-Spam-Flag) and counted spammy.
  double tag_threshold = 5.0;
  // Score at which mail is rejected outright after DATA (554).
  double reject_threshold = 10.0;
  // Weight of the Bayes contribution (its log-odds, capped, times this).
  double bayes_weight = 1.0;
};

struct Verdict {
  double score = 0.0;
  bool spam = false;    // score >= tag_threshold
  bool reject = false;  // score >= reject_threshold
  std::vector<std::string> hits;  // fired rule names
};

class SpamFilter {
 public:
  explicit SpamFilter(FilterConfig cfg = {});

  // Optional: attach a trained Bayes model (filter keeps a copy).
  void SetBayesModel(BayesClassifier model) { bayes_ = std::move(model); }
  BayesClassifier& bayes() { return bayes_; }

  Verdict Classify(const smtp::Envelope& envelope) const;

 private:
  FilterConfig cfg_;
  BayesClassifier bayes_;
};

}  // namespace sams::filter
