#include "filter/corpus.h"

#include <array>

namespace sams::filter {
namespace {

constexpr std::array kSpamWords = {
    "offer",    "discount", "pills",     "pharmacy",  "casino",
    "jackpot",  "deal",     "exclusive", "guarantee", "refinance",
    "mortgage", "rolex",    "replica",   "enlarge",   "miracle",
    "investment", "bitcoin", "prize",    "claim",     "urgent",
    "congratulations", "selected", "approval", "credit", "loan",
};

constexpr std::array kHamWords = {
    "meeting",  "tomorrow", "project",  "review",   "semester",
    "homework", "deadline", "budget",   "committee", "lecture",
    "seminar",  "draft",    "revision", "dataset",  "benchmark",
    "kernel",   "compile",  "paper",    "figure",   "experiment",
    "lunch",    "coffee",   "weekend",  "family",   "photos",
};

constexpr std::array kCommonWords = {
    "the",  "and",  "for",  "you",   "with", "that", "this",  "have",
    "from", "will", "your", "about", "time", "just", "please", "thanks",
};

template <std::size_t N>
const char* Pick(const std::array<const char*, N>& pool, util::Rng& rng) {
  return pool[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(N) - 1))];
}

std::string MakeBody(util::Rng& rng, bool spam) {
  std::string body;
  body += spam ? "Subject: " : "Subject: Re: ";
  for (int i = 0; i < 4; ++i) {
    body += spam ? Pick(kSpamWords, rng) : Pick(kHamWords, rng);
    body += ' ';
  }
  body += "\n\n";
  const int sentences = static_cast<int>(rng.UniformInt(3, 10));
  for (int s = 0; s < sentences; ++s) {
    const int words = static_cast<int>(rng.UniformInt(6, 14));
    for (int w = 0; w < words; ++w) {
      const double u = rng.NextDouble();
      if (u < 0.4) {
        body += Pick(kCommonWords, rng);
      } else if (u < 0.85) {
        body += spam ? Pick(kSpamWords, rng) : Pick(kHamWords, rng);
      } else {
        // Cross-contamination: real mail mentions offers, spam quotes
        // real text.
        body += spam ? Pick(kHamWords, rng) : Pick(kSpamWords, rng);
      }
      body += ' ';
    }
    body += "\n";
  }
  if (spam && rng.Bernoulli(0.6)) {
    body += "click here http://promo.example/deal now\n";
  }
  return body;
}

}  // namespace

std::string MakeSpamBody(util::Rng& rng) { return MakeBody(rng, true); }
std::string MakeHamBody(util::Rng& rng) { return MakeBody(rng, false); }

}  // namespace sams::filter
