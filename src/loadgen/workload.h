// Deterministic SMTP workload synthesis for the load-storm harness.
//
// A WorkloadModel turns a seeded PRNG into a reproducible stream of
// SessionPlans — complete SMTP dialogs (command bytes, expected reply
// counts, inter-step gaps) for ham, spam, and bounce traffic. Message
// sizes and dialog shapes follow the flow-level spam-vs-ham
// characteristics of Schatzmann et al. (PAPERS.md, arXiv 0808.4104):
// spam flows are small and tightly clustered (log-normal around ~2 KiB)
// and probe many recipients per connection (dictionary attacks), while
// ham is heavier-tailed (~8 KiB median, long tail) and targets one or
// two valid recipients. Bounce traffic uses the null reverse-path.
//
// Everything here is pure computation on the Rng — no sockets, no
// clocks — so the same seed yields byte-identical plans on every
// platform, which is what makes the CI smoke gates and the determinism
// test possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace sams::loadgen {

enum class TrafficClass { kHam, kSpam, kBounce };

const char* TrafficClassName(TrafficClass klass);

// One write the client performs, and what it waits for afterwards.
struct DialogStep {
  std::string bytes;       // goes on the wire verbatim
  int expect_replies = 0;  // final SMTP reply lines to collect before
                           // advancing (0 = fire and advance)
  std::int64_t gap_ns = 0;  // delay before this step's write
                            // (slow-talker pacing; 0 = immediate)
  bool is_body = false;  // DATA payload: skipped when the server never
                         // granted 354 (all RCPTs rejected/greylisted)
  // One char per expected reply naming the command it answers —
  // H(ELO) M(AIL) R(CPT) D(ATA) B(ody end) Q(UIT) — so the driver can
  // classify reply codes exactly even when a pipelined blast fuses the
  // whole dialog into one step.
  std::string reply_tags;
};

// A full scripted session. The driver connects, waits for the banner
// (unless pregreeting), then walks the steps.
struct SessionPlan {
  TrafficClass klass = TrafficClass::kHam;
  bool pregreet = false;   // blast the first step before the banner
  bool pipelined = false;  // whole command dialog fused into one write
  bool slow = false;       // inter-step gaps armed
  std::vector<DialogStep> steps;
  // FNV-1a over the plan's shape (class, flags, step bytes). The storm
  // folds these, in launch order, into a schedule digest the
  // determinism test compares across runs.
  std::uint64_t digest = 0;
};

struct WorkloadConfig {
  // Traffic mix weights (normalized internally; all-zero = ham only).
  double ham_weight = 0.3;
  double spam_weight = 0.6;
  double bounce_weight = 0.1;

  // Share of spam sessions that pregreet (blast before the banner) and
  // that pipeline the whole dialog in one segment — postscreen's two
  // classic tells.
  double spam_pregreet_frac = 0.15;
  double spam_pipeline_frac = 0.5;

  // Share of sessions (any class) that talk slowly, and the inter-step
  // gap they use. Slow ham models a congested relay; slow spam is a
  // slow-loris probe.
  double slow_frac = 0.0;
  std::int64_t slow_gap_ns = 20'000'000;  // 20 ms

  // Schatzmann flow-level size models: log-normal parameters of the
  // *underlying* normal. Spam ~2 KiB tight; ham ~8 KiB heavy-tailed.
  double spam_size_mu = 7.6;
  double spam_size_sigma = 0.55;
  double ham_size_mu = 9.0;
  double ham_size_sigma = 1.1;
  std::size_t max_body_bytes = 256 * 1024;  // tail clamp

  // Recipients the server considers valid (RecipientDb contents).
  // Spam probes beyond them with dictionary guesses.
  std::vector<std::string> valid_rcpts = {"alice@dept.test"};
  std::string guess_domain = "dept.test";  // dictionary-attack target

  // Spam RCPT probing: geometric-ish count in [1, spam_rcpt_max], most
  // of them invalid guesses.
  int spam_rcpt_max = 6;
};

class WorkloadModel {
 public:
  WorkloadModel(WorkloadConfig cfg, std::uint64_t seed);

  // The next scripted session in the deterministic sequence.
  SessionPlan Next();

  const WorkloadConfig& config() const { return cfg_; }

 private:
  SessionPlan MakeHam();
  SessionPlan MakeSpam();
  SessionPlan MakeBounce();
  std::string Body(std::size_t bytes) const;
  void Finish(SessionPlan& plan);  // pipelining fusion, gaps, digest

  WorkloadConfig cfg_;
  util::Rng rng_;
  std::vector<double> mix_weights_;
  std::uint64_t serial_ = 0;  // varies MAIL FROM / HELO per session
};

// FNV-1a, the digest primitive shared by plans and the storm schedule.
std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t n);
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

}  // namespace sams::loadgen
