#include "loadgen/workload.h"

#include <algorithm>
#include <cstring>

namespace sams::loadgen {

const char* TrafficClassName(TrafficClass klass) {
  switch (klass) {
    case TrafficClass::kHam: return "ham";
    case TrafficClass::kSpam: return "spam";
    case TrafficClass::kBounce: return "bounce";
  }
  return "?";
}

std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

WorkloadModel::WorkloadModel(WorkloadConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {
  mix_weights_ = {cfg_.ham_weight, cfg_.spam_weight, cfg_.bounce_weight};
  if (cfg_.ham_weight + cfg_.spam_weight + cfg_.bounce_weight <= 0) {
    mix_weights_ = {1.0, 0.0, 0.0};
  }
  if (cfg_.valid_rcpts.empty()) cfg_.valid_rcpts = {"alice@dept.test"};
}

std::string WorkloadModel::Body(std::size_t bytes) const {
  // Reproducible filler: 72-char lines, no leading dots, terminated by
  // the dot-stuffing end marker. Content does not matter to the server
  // (the content filter sees no spammy tokens), size does.
  static constexpr char kLine[] =
      "the quick brown fox jumps over the lazy dog 0123456789 lorem ip\r\n";
  std::string body = "Subject: storm\r\n\r\n";
  while (body.size() < bytes) body.append(kLine, sizeof(kLine) - 1);
  body += ".\r\n";
  return body;
}

namespace {
DialogStep Cmd(std::string bytes, char tag) {
  DialogStep step;
  step.bytes = std::move(bytes);
  step.expect_replies = 1;
  step.reply_tags.push_back(tag);
  return step;
}

DialogStep BodyStep(std::string bytes) {
  DialogStep step;
  step.bytes = std::move(bytes);
  step.expect_replies = 1;
  step.is_body = true;
  step.reply_tags = "B";
  return step;
}
}  // namespace

SessionPlan WorkloadModel::MakeHam() {
  SessionPlan plan;
  plan.klass = TrafficClass::kHam;
  const std::uint64_t id = ++serial_;
  plan.steps.push_back(
      Cmd("HELO relay" + std::to_string(id % 97) + ".ham.example\r\n", 'H'));
  plan.steps.push_back(
      Cmd("MAIL FROM:<news" + std::to_string(id) + "@ham.example>\r\n", 'M'));
  // One or two valid recipients (distinct — the store rejects a
  // duplicate mailbox in one envelope): real mail knows its audience.
  const int rcpts =
      rng_.Bernoulli(0.25) && cfg_.valid_rcpts.size() >= 2 ? 2 : 1;
  const std::size_t pick = static_cast<std::size_t>(rng_.UniformInt(
      0, static_cast<std::int64_t>(cfg_.valid_rcpts.size()) - 1));
  for (int i = 0; i < rcpts; ++i) {
    const std::size_t rcpt = (pick + static_cast<std::size_t>(i)) %
                             cfg_.valid_rcpts.size();
    plan.steps.push_back(
        Cmd("RCPT TO:<" + cfg_.valid_rcpts[rcpt] + ">\r\n", 'R'));
  }
  plan.steps.push_back(Cmd("DATA\r\n", 'D'));
  const std::size_t size = std::min(
      cfg_.max_body_bytes,
      static_cast<std::size_t>(rng_.LogNormal(cfg_.ham_size_mu,
                                              cfg_.ham_size_sigma)));
  plan.steps.push_back(BodyStep(Body(size)));
  plan.steps.push_back(Cmd("QUIT\r\n", 'Q'));
  return plan;
}

SessionPlan WorkloadModel::MakeSpam() {
  SessionPlan plan;
  plan.klass = TrafficClass::kSpam;
  const std::uint64_t id = ++serial_;
  plan.pregreet = rng_.Bernoulli(cfg_.spam_pregreet_frac);
  plan.pipelined = rng_.Bernoulli(cfg_.spam_pipeline_frac);
  // Bare-IP HELO: a classic bot tell the reputation engine scores.
  plan.steps.push_back(Cmd("HELO 10.66." + std::to_string(id % 200) + "." +
                               std::to_string(2 + id % 250) + "\r\n",
                           'H'));
  plan.steps.push_back(Cmd(
      "MAIL FROM:<promo" + std::to_string(id) + "@storm.example>\r\n", 'M'));
  // Dictionary attack: probe several guesses, land on a valid mailbox
  // some of the time.
  int rcpts = 1;
  while (rcpts < cfg_.spam_rcpt_max && rng_.Bernoulli(0.55)) ++rcpts;
  for (int i = 0; i < rcpts; ++i) {
    if (rng_.Bernoulli(0.3)) {
      const std::size_t pick = static_cast<std::size_t>(rng_.UniformInt(
          0, static_cast<std::int64_t>(cfg_.valid_rcpts.size()) - 1));
      plan.steps.push_back(
          Cmd("RCPT TO:<" + cfg_.valid_rcpts[pick] + ">\r\n", 'R'));
    } else {
      plan.steps.push_back(
          Cmd("RCPT TO:<guess" + std::to_string(rng_.UniformInt(0, 99999)) +
                  "@" + cfg_.guess_domain + ">\r\n",
              'R'));
    }
  }
  plan.steps.push_back(Cmd("DATA\r\n", 'D'));
  const std::size_t size = std::min(
      cfg_.max_body_bytes,
      static_cast<std::size_t>(rng_.LogNormal(cfg_.spam_size_mu,
                                              cfg_.spam_size_sigma)));
  plan.steps.push_back(BodyStep(Body(size)));
  plan.steps.push_back(Cmd("QUIT\r\n", 'Q'));
  return plan;
}

SessionPlan WorkloadModel::MakeBounce() {
  SessionPlan plan;
  plan.klass = TrafficClass::kBounce;
  const std::uint64_t id = ++serial_;
  plan.steps.push_back(
      Cmd("HELO mx" + std::to_string(id % 13) + ".remote.example\r\n", 'H'));
  // Null reverse-path: the DSN envelope sender.
  plan.steps.push_back(Cmd("MAIL FROM:<>\r\n", 'M'));
  const std::size_t pick = static_cast<std::size_t>(rng_.UniformInt(
      0, static_cast<std::int64_t>(cfg_.valid_rcpts.size()) - 1));
  plan.steps.push_back(
      Cmd("RCPT TO:<" + cfg_.valid_rcpts[pick] + ">\r\n", 'R'));
  plan.steps.push_back(Cmd("DATA\r\n", 'D'));
  plan.steps.push_back(BodyStep(Body(512)));
  plan.steps.push_back(Cmd("QUIT\r\n", 'Q'));
  return plan;
}

void WorkloadModel::Finish(SessionPlan& plan) {
  plan.slow = cfg_.slow_frac > 0 && rng_.Bernoulli(cfg_.slow_frac);
  if (plan.slow && !plan.pipelined) {
    for (std::size_t i = 1; i < plan.steps.size(); ++i) {
      plan.steps[i].gap_ns = cfg_.slow_gap_ns;
    }
  }
  if (plan.pipelined && plan.steps.size() > 1) {
    // Fuse the command dialog into single segments; replies are still
    // counted (and tagged) individually. The body stays its own step
    // so it can be skipped when no RCPT stuck.
    SessionPlan fused;
    fused.klass = plan.klass;
    fused.pregreet = plan.pregreet;
    fused.pipelined = true;
    fused.slow = plan.slow;
    DialogStep blast;
    for (auto& step : plan.steps) {
      if (step.is_body) {
        if (!blast.bytes.empty()) fused.steps.push_back(blast);
        blast = DialogStep{};
        fused.steps.push_back(step);
        continue;
      }
      blast.bytes += step.bytes;
      blast.expect_replies += step.expect_replies;
      blast.reply_tags += step.reply_tags;
    }
    if (!blast.bytes.empty()) fused.steps.push_back(blast);
    plan = std::move(fused);
  }
  std::uint64_t h = kFnvOffset;
  const char klass = static_cast<char>(plan.klass);
  h = Fnv1a(h, &klass, 1);
  const char flags = static_cast<char>((plan.pregreet ? 1 : 0) |
                                       (plan.pipelined ? 2 : 0) |
                                       (plan.slow ? 4 : 0));
  h = Fnv1a(h, &flags, 1);
  for (const auto& step : plan.steps) {
    h = Fnv1a(h, step.bytes.data(), step.bytes.size());
  }
  plan.digest = h;
}

SessionPlan WorkloadModel::Next() {
  SessionPlan plan;
  switch (rng_.WeightedIndex(mix_weights_)) {
    case 0: plan = MakeHam(); break;
    case 1: plan = MakeSpam(); break;
    default: plan = MakeBounce(); break;
  }
  Finish(plan);
  return plan;
}

}  // namespace sams::loadgen
