#include "loadgen/load_storm.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "net/event_loop.h"
#include "net/tcp.h"
#include "util/fd.h"
#include "util/time.h"

namespace sams::loadgen {
namespace {

// One scripted client connection walking its SessionPlan.
struct ClientConn {
  util::UniqueFd fd;
  enum class State { kConnecting, kDialog } state = State::kConnecting;
  SessionPlan plan;
  std::size_t next_step = 0;
  int pending = 0;             // final replies awaited
  bool banner_pending = true;  // 220 not yet consumed
  std::string inbuf;           // partial reply line
  std::string pending_tags;    // reply tag per awaited final reply
  std::size_t tag_off = 0;
  std::string outbuf;          // partial-write continuation
  std::size_t out_off = 0;
  bool want_write = false;
  bool data_granted = false;   // last 'D' reply was 354
  bool delivered = false;      // saw 250 after a body
  int last_code = 0;
  std::int64_t wait_since_ns = 0;  // connect start / last progress
  std::int64_t due_ns = 0;         // slow-gap park (0 = not parked)
  std::int64_t rcpt_sent_ns = -1;  // first-RCPT stall measurement
  bool measuring_rcpt = false;
  bool measured_rcpt = false;
};

}  // namespace

struct LoadStorm::Impl {
  explicit Impl(StormConfig config)
      : cfg(std::move(config)), model(cfg.workload, cfg.seed) {}

  StormConfig cfg;
  WorkloadModel model;
  std::unique_ptr<net::EventLoop> loop;
  std::unordered_map<int, std::unique_ptr<ClientConn>> conns;
  // Slow-talker park: due_ns → fd. The conn's own due_ns must match or
  // the entry is stale (connection died / fd reused while parked).
  std::multimap<std::int64_t, int> parked;
  std::optional<SessionPlan> retry_plan;  // stashed after local EMFILE
  StormResult result;
  std::uint64_t schedule_digest = kFnvOffset;
  int active = 0;
  std::int64_t start_ns = 0;
  int ticks = 0;
  bool stopping = false;

  void CountError(const std::string& name) { ++result.errors[name]; }

  void MaybeStop() {
    if (!stopping && active == 0 && result.launched >= cfg.total_sessions) {
      stopping = true;
      loop->Stop();
    }
  }

  // Removes the connection and tops the storm back up to target
  // concurrency. Every teardown funnels through here.
  void Finish(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    (void)loop->Remove(fd);
    conns.erase(it);
    --active;
    LaunchMore();
    MaybeStop();
  }

  // Teardown on a transport event (EOF, reset, EPIPE...). A session the
  // server explicitly turned away first is an SMTP outcome, not a
  // transport failure: 421 was already tallied at reply time, a
  // trailing 5xx becomes rejected_closed here.
  void FinishTransport(int fd, ClientConn& conn, const char* what) {
    if (conn.last_code >= 500) {
      ++result.rejected_closed;
    } else if (conn.last_code != 421) {
      CountError(what);
    }
    Finish(fd);
  }

  bool FlushOut(ClientConn& conn) {
    const int fd = conn.fd.get();
    while (conn.out_off < conn.outbuf.size()) {
      auto sent = net::SendNonBlocking(fd, conn.outbuf.data() + conn.out_off,
                                       conn.outbuf.size() - conn.out_off);
      if (!sent.ok()) return false;
      result.bytes_sent += *sent;
      if (*sent == 0) {
        // Kernel buffer full. Compact the flushed prefix before
        // parking: under sustained backpressure Advance() keeps
        // appending steps, and without the erase the buffer would
        // retain every byte ever sent for the connection's lifetime.
        if (conn.out_off > 0) {
          conn.outbuf.erase(0, conn.out_off);
          conn.out_off = 0;
        }
        if (!conn.want_write) {
          conn.want_write = true;
          (void)loop->Modify(fd, EPOLLIN | EPOLLOUT | EPOLLET);
        }
        return true;
      }
      conn.out_off += *sent;
    }
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.want_write) {
      conn.want_write = false;
      (void)loop->Modify(fd, EPOLLIN | EPOLLET);
    }
    return true;
  }

  // Walks the script: sends every step whose prerequisites (replies
  // collected, slow-talker gap elapsed) are met; finishes the session
  // once the whole plan has run and the wire drained.
  void Advance(int fd, ClientConn& conn) {
    const std::int64_t now = util::MonotonicNanos();
    while (conn.pending == 0 && conn.next_step < conn.plan.steps.size()) {
      DialogStep& step = conn.plan.steps[conn.next_step];
      if (step.is_body && !conn.data_granted) {
        ++conn.next_step;
        ++result.bodies_skipped;
        continue;
      }
      if (step.gap_ns > 0) {
        if (conn.due_ns == 0) {
          conn.due_ns = now + step.gap_ns;
          parked.emplace(conn.due_ns, fd);
          return;  // the tick resumes us
        }
        if (now < conn.due_ns) return;  // spurious wakeup; still parked
        conn.due_ns = 0;
      }
      if (step.reply_tags == "R" && !conn.plan.pipelined &&
          !conn.measured_rcpt && !conn.measuring_rcpt) {
        conn.measuring_rcpt = true;
        conn.rcpt_sent_ns = now;
      }
      conn.outbuf.append(step.bytes);
      conn.pending += step.expect_replies;
      conn.pending_tags += step.reply_tags;
      ++conn.next_step;
      if (!FlushOut(conn)) {
        FinishTransport(fd, conn, net::SocketErrnoName(errno).c_str());
        return;
      }
      conn.wait_since_ns = now;
    }
    if (conn.pending == 0 && conn.next_step >= conn.plan.steps.size() &&
        conn.outbuf.empty()) {
      ++result.completed;
      if (conn.delivered) ++result.delivered;
      Finish(fd);
    }
  }

  // True while `conn` is still the live connection for `fd`. Finish()
  // tops the storm back up, which can REUSE the fd number for a fresh
  // connection — presence in the map alone is not enough.
  bool Alive(int fd, const ClientConn& conn) const {
    auto it = conns.find(fd);
    return it != conns.end() && it->second.get() == &conn;
  }

  // One complete reply line (CR/LF stripped). Returns false when the
  // connection was torn down.
  bool OnReplyLine(int fd, ClientConn& conn, const std::string& line) {
    if (line.size() < 3 || line[0] < '0' || line[0] > '9') return true;
    const int code = (line[0] - '0') * 100 + (line[1] - '0') * 10 +
                     (line[2] - '0');
    if (line.size() > 3 && line[3] == '-') return true;  // continuation
    ++result.replies;
    conn.last_code = code;
    conn.wait_since_ns = util::MonotonicNanos();
    if (code == 421) ++result.shed;
    if (conn.banner_pending) {
      conn.banner_pending = false;
      if (code != 220) return true;  // 421 shed: wait for the server's EOF
      if (!conn.plan.pregreet) Advance(fd, conn);
      return Alive(fd, conn);
    }
    char tag = '?';
    if (conn.tag_off < conn.pending_tags.size()) {
      tag = conn.pending_tags[conn.tag_off++];
    }
    if (conn.pending > 0) --conn.pending;
    switch (tag) {
      case 'R':
        if (code == 250) {
          ++result.rcpt_250;
        } else if (code == 450) {
          ++result.greylist_450;
        } else if (code >= 500) {
          ++result.rcpt_rejected;
        }
        if (conn.measuring_rcpt) {
          conn.measuring_rcpt = false;
          conn.measured_rcpt = true;
          if (conn.plan.klass == TrafficClass::kHam) {
            result.ham_rcpt_stall_ms.Add(
                static_cast<double>(util::MonotonicNanos() -
                                    conn.rcpt_sent_ns) /
                1e6);
          }
        }
        break;
      case 'D':
        conn.data_granted = code == 354;
        break;
      case 'B':
        if (code == 250) conn.delivered = true;
        break;
      default:
        break;
    }
    if (conn.pending == 0) {
      Advance(fd, conn);
      return Alive(fd, conn);
    }
    return true;
  }

  void OnReadable(int fd, ClientConn& conn) {
    char buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        result.bytes_received += static_cast<std::uint64_t>(n);
        for (ssize_t i = 0; i < n; ++i) {
          const char ch = buf[i];
          if (ch == '\n') {
            if (!conn.inbuf.empty() && conn.inbuf.back() == '\r') {
              conn.inbuf.pop_back();
            }
            std::string line;
            line.swap(conn.inbuf);
            if (!OnReplyLine(fd, conn, line)) return;
          } else if (conn.inbuf.size() < 1024) {
            conn.inbuf.push_back(ch);
          }
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && errno == ENOTCONN) return;  // stale event on fresh fd
      if (n == 0) {
        FinishTransport(fd, conn, "closed_by_peer");
      } else {
        FinishTransport(fd, conn, net::SocketErrnoName(errno).c_str());
      }
      return;
    }
  }

  void OnEvent(int fd, std::uint32_t events) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    ClientConn& conn = *it->second;
    if (conn.state == ClientConn::State::kConnecting) {
      // Resolve only on a write/err edge; a stale EPOLLIN delivered to
      // a reused fd number must not fake an established connection.
      if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
      const int err = net::ConnectSocketError(fd);
      if (err == EINPROGRESS) return;
      if (err != 0) {
        CountError(net::SocketErrnoName(err));
        Finish(fd);
        return;
      }
      conn.state = ClientConn::State::kDialog;
      conn.wait_since_ns = util::MonotonicNanos();
      (void)loop->Modify(fd, EPOLLIN | EPOLLET);
      if (conn.plan.pregreet) Advance(fd, conn);
      return;
    }
    if ((events & EPOLLOUT) != 0) {
      if (!FlushOut(conn)) {
        FinishTransport(fd, conn, net::SocketErrnoName(errno).c_str());
        return;
      }
      if (conn.outbuf.empty() && conn.pending == 0) {
        Advance(fd, conn);
        if (!Alive(fd, conn)) return;
      }
    }
    if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
      OnReadable(fd, conn);
    }
  }

  void LaunchOne() {
    SessionPlan plan;
    if (retry_plan.has_value()) {
      plan = std::move(*retry_plan);
      retry_plan.reset();
    } else {
      plan = model.Next();
    }
    int err = 0;
    auto pending = net::TcpConnectNonBlocking(cfg.host, cfg.port, &err);
    if (!pending.ok()) {
      if (err == EMFILE || err == ENFILE) {
        // The GENERATOR is out of descriptors — not a server verdict.
        // Stash the plan (keeping the schedule deterministic) and let
        // the tick retry once sessions finish and free fds.
        CountError("EMFILE_local");
        retry_plan = std::move(plan);
        return;
      }
      ++result.launched;
      schedule_digest = Fnv1a(schedule_digest, &plan.digest,
                              sizeof(plan.digest));
      CountError(err != 0 ? net::SocketErrnoName(err) : "connect");
      return;
    }
    ++result.launched;
    schedule_digest = Fnv1a(schedule_digest, &plan.digest,
                            sizeof(plan.digest));
    auto conn = std::make_unique<ClientConn>();
    const int fd = pending->fd.get();
    conn->fd = std::move(pending->fd);
    conn->plan = std::move(plan);
    conn->wait_since_ns = util::MonotonicNanos();
    const bool connected = pending->connected;
    ClientConn* raw = conn.get();
    conns.emplace(fd, std::move(conn));
    ++active;
    if (active > result.peak_active) result.peak_active = active;
    if (connected) {
      raw->state = ClientConn::State::kDialog;
      (void)loop->Add(fd, EPOLLIN | EPOLLET,
                      [this, fd](std::uint32_t e) { OnEvent(fd, e); });
      if (raw->plan.pregreet) Advance(fd, *raw);
    } else {
      (void)loop->Add(fd, EPOLLOUT,
                      [this, fd](std::uint32_t e) { OnEvent(fd, e); });
    }
  }

  void LaunchMore() {
    while (!stopping && active < cfg.concurrency &&
           result.launched < cfg.total_sessions) {
      const std::uint64_t before = result.launched;
      const bool had_retry = retry_plan.has_value();
      LaunchOne();
      if (result.launched == before && (had_retry || retry_plan.has_value())) {
        break;  // fd-starved; the tick retries
      }
    }
  }

  void OnTick() {
    ++ticks;
    const std::int64_t now = util::MonotonicNanos();
    // Resume slow talkers whose gap elapsed.
    while (!parked.empty() && parked.begin()->first <= now) {
      const int fd = parked.begin()->second;
      const std::int64_t due = parked.begin()->first;
      parked.erase(parked.begin());
      auto it = conns.find(fd);
      if (it == conns.end() || it->second->due_ns != due) continue;  // stale
      Advance(fd, *it->second);
    }
    // Retry a launch parked on local fd exhaustion.
    if (retry_plan.has_value()) LaunchMore();
    // Timeout scan, every ~500 ms.
    const int scan_every = std::max(1, 500 / std::max(1, cfg.tick_ms));
    if (ticks % scan_every == 0) {
      const std::int64_t connect_ns =
          static_cast<std::int64_t>(cfg.connect_timeout_ms) * 1'000'000;
      const std::int64_t reply_ns =
          static_cast<std::int64_t>(cfg.reply_timeout_ms) * 1'000'000;
      std::vector<int> expired_connect;
      std::vector<int> expired_reply;
      for (const auto& [fd, conn] : conns) {
        if (conn->state == ClientConn::State::kConnecting) {
          if (connect_ns > 0 && now - conn->wait_since_ns >= connect_ns) {
            expired_connect.push_back(fd);
          }
        } else if (conn->pending > 0 || conn->banner_pending) {
          if (reply_ns > 0 && now - conn->wait_since_ns >= reply_ns) {
            expired_reply.push_back(fd);
          }
        }
      }
      for (int fd : expired_connect) {
        ++result.connect_timeouts;
        Finish(fd);
      }
      for (int fd : expired_reply) {
        ++result.reply_timeouts;
        Finish(fd);
      }
    }
    if (cfg.deadline_ms > 0 &&
        now - start_ns >=
            static_cast<std::int64_t>(cfg.deadline_ms) * 1'000'000) {
      stopping = true;
      loop->Stop();
    }
    MaybeStop();
  }
};

LoadStorm::LoadStorm(StormConfig cfg) : impl_(new Impl(std::move(cfg))) {}

LoadStorm::~LoadStorm() { delete impl_; }

util::Result<StormResult> LoadStorm::Run() {
  Impl& st = *impl_;
  auto loop = net::EventLoop::Create();
  if (!loop.ok()) return loop.error();
  st.loop = std::move(*loop);

  util::UniqueFd tick_fd(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
  if (!tick_fd.valid()) return util::IoError("timerfd_create failed");
  const int tick_ms = std::max(1, st.cfg.tick_ms);
  struct itimerspec when {};
  when.it_value.tv_nsec = 1'000'000;  // first tick promptly
  when.it_interval.tv_sec = tick_ms / 1000;
  when.it_interval.tv_nsec = static_cast<long>(tick_ms % 1000) * 1'000'000L;
  ::timerfd_settime(tick_fd.get(), 0, &when, nullptr);
  const int raw_tick = tick_fd.get();
  (void)st.loop->Add(raw_tick, EPOLLIN, [&st, raw_tick](std::uint32_t) {
    std::uint64_t expirations = 0;
    (void)::read(raw_tick, &expirations, sizeof(expirations));
    st.OnTick();
  });

  st.start_ns = util::MonotonicNanos();
  st.LaunchMore();
  st.MaybeStop();
  if (!st.stopping) {
    const util::Error err = st.loop->Run();
    if (!err.ok()) return err;
  }

  // Anything still open when the storm ended (deadline) is neither
  // completed nor an error; just account the teardown.
  for (auto& [fd, conn] : st.conns) (void)st.loop->Remove(fd);
  st.conns.clear();

  st.result.duration_s =
      static_cast<double>(util::MonotonicNanos() - st.start_ns) / 1e9;
  st.result.sessions_per_s =
      st.result.duration_s > 0
          ? static_cast<double>(st.result.completed) / st.result.duration_s
          : 0;
  st.result.schedule_digest = st.schedule_digest;
  return std::move(st.result);
}

}  // namespace sams::loadgen
