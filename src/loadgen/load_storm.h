// LoadStorm — the native saturation load generator (DESIGN.md §13).
//
// One epoll reactor (net::EventLoop) drives thousands of concurrent
// scripted SMTP sessions against a real server: non-blocking connects,
// partial-write continuation on the client side, reply-line parsing,
// slow-talker pacing off a coarse tick, connection churn that holds a
// target concurrency until the session budget is spent. The dialog
// scripts come from a seeded WorkloadModel, so the launch schedule is
// bit-reproducible (schedule_digest) even though wire timing is not.
//
// Transport failures are classified per errno (ECONNREFUSED vs
// ETIMEDOUT vs ECONNRESET vs local EMFILE, ...) instead of lumped —
// at saturation those are different findings: the server shedding,
// the backlog overflowing, a session aborted mid-dialog, or the
// GENERATOR running out of descriptors.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "loadgen/workload.h"
#include "util/result.h"
#include "util/stats.h"

namespace sams::loadgen {

struct StormConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int concurrency = 100;            // target concurrently open sessions
  std::uint64_t total_sessions = 1000;  // storm budget
  std::uint64_t seed = 42;
  WorkloadConfig workload;
  int connect_timeout_ms = 10'000;
  int reply_timeout_ms = 15'000;
  int tick_ms = 10;        // pacing/timeout granularity
  int deadline_ms = 0;     // whole-storm wall cap (0 = none)
};

struct StormResult {
  // Session outcomes. completed = the full script ran (rejections
  // included — a spam plan that ate its 554s and QUIT is complete).
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  std::uint64_t delivered = 0;      // 250 after the DATA payload
  std::uint64_t rejected_closed = 0;   // server 554'd then hung up
  std::uint64_t shed = 0;           // 421 (overload / greylist-shed)
  std::uint64_t greylist_450 = 0;   // RCPTs answered 450
  std::uint64_t rcpt_250 = 0;
  std::uint64_t rcpt_rejected = 0;  // 550/554 per-RCPT
  std::uint64_t bodies_skipped = 0;  // DATA never granted 354
  std::uint64_t reply_timeouts = 0;
  std::uint64_t connect_timeouts = 0;

  // errno-name → count for transport-level failures (ECONNREFUSED,
  // ECONNRESET, EPIPE, EMFILE at the generator, ...).
  std::map<std::string, std::uint64_t> errors;

  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t replies = 0;

  // Stall between a (non-pipelined) ham RCPT write and its reply —
  // the latency the paper's architecture protects.
  util::Sampler ham_rcpt_stall_ms;

  int peak_active = 0;
  double duration_s = 0;
  double sessions_per_s = 0;
  // FNV-1a over per-plan digests in launch order: two storms with the
  // same seed and budget must agree byte-for-byte.
  std::uint64_t schedule_digest = 0;
};

class LoadStorm {
 public:
  explicit LoadStorm(StormConfig cfg);
  ~LoadStorm();

  LoadStorm(const LoadStorm&) = delete;
  LoadStorm& operator=(const LoadStorm&) = delete;

  // Runs the storm on the calling thread; returns when the budget is
  // spent (or the deadline hit). Safe to call once.
  util::Result<StormResult> Run();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace sams::loadgen
