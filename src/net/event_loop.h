// Epoll-based event loop — the real counterpart of the paper's
// select/poll loop in the fork-after-trust master (§5.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/fd.h"
#include "util/result.h"

namespace sams::net {

class EventLoop {
 public:
  // Called with the epoll event mask (EPOLLIN etc.).
  using Callback = std::function<void(std::uint32_t events)>;

  static util::Result<std::unique_ptr<EventLoop>> Create();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Publishes loop health into `registry`: iteration count, dispatched
  // events, ready-fd batch sizes and per-callback wall latency. Call
  // before Run(); the registry must outlive the loop.
  void BindMetrics(obs::Registry& registry);

  // Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback
  // runs on the loop thread.
  util::Error Add(int fd, std::uint32_t events, Callback callback);
  util::Error Modify(int fd, std::uint32_t events);
  util::Error Remove(int fd);

  // Runs until Stop() is called (from any thread).
  util::Error Run();

  // Thread-safe: wakes the loop and makes Run() return.
  void Stop();

  std::size_t watched() const { return callbacks_.size(); }

 private:
  EventLoop() = default;

  util::UniqueFd epoll_fd_;
  util::UniqueFd wake_fd_;  // eventfd
  std::unordered_map<int, Callback> callbacks_;
  std::atomic<bool> running_{false};

  // Optional observability (null until BindMetrics).
  obs::Counter* iterations_ = nullptr;
  obs::Counter* dispatched_ = nullptr;
  obs::Histogram* ready_fds_ = nullptr;
  obs::Histogram* callback_us_ = nullptr;
  obs::Gauge* watched_gauge_ = nullptr;
};

}  // namespace sams::net
