// Reactor event loop — the real counterpart of the paper's select/poll
// loop in the fork-after-trust master (§5.1). The readiness engine is
// pluggable (DESIGN.md §14): epoll by default, io_uring opt-in via
// Create(IoBackendKind) / the server's --io-backend flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/reactor.h"
#include "obs/metrics.h"
#include "util/fd.h"
#include "util/result.h"

namespace sams::net {

class EventLoop {
 public:
  // Called with the epoll event mask (EPOLLIN etc.).
  using Callback = std::function<void(std::uint32_t events)>;

  // The no-arg overload is the portable epoll loop every paper-figure
  // bench runs on. kIoUring fails when the ring is unavailable; kAuto
  // falls back to epoll (old kernel, seccomp, rlimits).
  static util::Result<std::unique_ptr<EventLoop>> Create();
  static util::Result<std::unique_ptr<EventLoop>> Create(IoBackendKind kind);

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // "epoll" or "io_uring" — what kAuto actually resolved to.
  const char* backend_name() const { return backend_->name(); }

  // Publishes loop health into `registry`: iteration count, dispatched
  // events, ready-fd batch sizes and per-callback wall latency. Call
  // before Run(); the registry must outlive the loop.
  void BindMetrics(obs::Registry& registry);

  // Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback
  // runs on the loop thread.
  util::Error Add(int fd, std::uint32_t events, Callback callback);
  util::Error Modify(int fd, std::uint32_t events);
  util::Error Remove(int fd);

  // Runs until Stop() is called (from any thread).
  util::Error Run();

  // Thread-safe: wakes the loop and makes Run() return.
  void Stop();

  // Thread-safe: enqueues `task` to run on the loop thread and wakes
  // the loop. The sharded master's single-listener fallback uses this
  // to hand accepted descriptors from the accept thread to a shard's
  // reactor. Tasks enqueued after Stop() never run.
  void Post(std::function<void()> task);

  std::size_t watched() const { return callbacks_.size(); }

 private:
  EventLoop() = default;

  void DrainPosted();

  std::unique_ptr<ReactorBackend> backend_;
  util::UniqueFd wake_fd_;  // eventfd
  std::unordered_map<int, Callback> callbacks_;
  // Ready batch, grown adaptively: a full harvest at the current size
  // means epoll round-robins the overflow into later iterations, which
  // under saturation starves high-numbered fds of their turn. Start at
  // the historical 64, double whenever the vector comes back full.
  std::vector<ReactorEvent> ready_;
  int max_events_ = 64;
  std::atomic<bool> running_{false};
  // One-shot, separate from running_: a Stop() that lands before the
  // loop thread reaches Run() must still win (Run() then returns
  // immediately instead of overwriting the flag and polling forever).
  std::atomic<bool> stop_requested_{false};
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  // Optional observability (null until BindMetrics).
  obs::Counter* iterations_ = nullptr;
  obs::Counter* dispatched_ = nullptr;
  obs::Counter* ready_saturated_ = nullptr;
  obs::Histogram* ready_fds_ = nullptr;
  obs::Histogram* callback_us_ = nullptr;
  obs::Gauge* watched_gauge_ = nullptr;
};

}  // namespace sams::net
