#include "net/smtp_client.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/tcp.h"
#include "util/fd.h"

namespace sams::net {
namespace {

// Reads one CRLF-terminated line from fd into *line (without CRLF),
// using *carry as the cross-call buffer.
util::Error ReadLine(int fd, std::string* carry, std::string* line) {
  for (;;) {
    const std::size_t eol = carry->find('\n');
    if (eol != std::string::npos) {
      *line = carry->substr(0, eol);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      carry->erase(0, eol + 1);
      return util::OkError();
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return util::IoError("read: " + std::string(strerror(errno)));
    if (n == 0) return util::Unavailable("server closed the connection");
    carry->append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

util::Result<SendOutcome> SendMail(const std::string& host, std::uint16_t port,
                                   smtp::MailJob job, smtp::AbortStage abort,
                                   int timeout_ms) {
  auto fd = TcpConnect(host, port);
  if (!fd.ok()) return fd.error();
  SAMS_RETURN_IF_ERROR(SetRecvTimeout(fd->get(), timeout_ms));
  SAMS_RETURN_IF_ERROR(SetSendTimeout(fd->get(), timeout_ms));

  smtp::ClientSession session(std::move(job), abort);
  std::string carry, line;
  while (!session.done()) {
    SAMS_RETURN_IF_ERROR(ReadLine(fd->get(), &carry, &line));
    smtp::Reply reply;
    bool more = false;
    if (!smtp::ParseReply(line, &reply, &more)) {
      return util::ProtocolError("unparseable reply: " + line);
    }
    if (more) continue;  // swallow multi-line continuations
    auto out = session.OnReply(reply);
    if (out) {
      // SendAll, not WriteAll: a server that resets mid-dialog must
      // surface as kUnavailable, not SIGPIPE; SO_SNDTIMEO (set above)
      // bounds a stalled send the same way reads are bounded.
      SAMS_RETURN_IF_ERROR(util::SendAll(fd->get(), out->data(), out->size()));
    }
  }
  SendOutcome outcome;
  outcome.outcome = session.outcome();
  outcome.accepted_rcpts = session.accepted_rcpts();
  outcome.rejected_rcpts = session.rejected_rcpts();
  return outcome;
}

}  // namespace sams::net
