// UDP + timerfd helpers for event-loop clients.
//
// The async DNSBL pipeline (DESIGN.md §10) registers one non-blocking
// UDP socket and one timerfd per reactor shard directly on the shard's
// net::EventLoop; these helpers cover the handful of syscalls that
// path needs without pulling <sys/timerfd.h> and sockaddr plumbing
// into every caller.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/fd.h"
#include "util/result.h"

namespace sams::net {

// AF_INET SOCK_DGRAM socket, non-blocking + close-on-exec, unbound
// (the kernel picks an ephemeral source port on the first send).
util::Result<util::UniqueFd> UdpOpenNonBlocking();

// Sends one datagram to 127.0.0.1:`port`. kUnavailable when the socket
// buffer is full (EAGAIN) — UDP callers treat that like packet loss.
util::Error UdpSendToLoopback(int fd, std::uint16_t port, const void* data,
                              std::size_t size);

// Receives one datagram (non-blocking). Returns the byte count, 0 when
// no datagram is queued (EAGAIN), or an error.
util::Result<std::size_t> UdpRecv(int fd, void* buf, std::size_t capacity);

// CLOCK_MONOTONIC timerfd (non-blocking, close-on-exec), disarmed.
util::Result<util::UniqueFd> CreateTimerFd();

// One-shot: fires once `millis` from now (millis <= 0 disarms). The
// owner re-arms from the expiry callback for periodic behaviour.
util::Error ArmTimerFdOnceMs(int fd, std::int64_t millis);

// Consumes the expiry counter so a level-triggered loop stops polling.
void DrainTimerFd(int fd);

}  // namespace sams::net
