#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sams::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

util::Result<util::UniqueFd> TcpListen(std::uint16_t port, int backlog) {
  ListenOptions options;
  options.backlog = backlog;
  return TcpListen(port, options);
}

util::Result<util::UniqueFd> TcpListen(std::uint16_t port,
                                       const ListenOptions& options) {
  util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options.reuse_port) {
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      return util::IoError(Errno("setsockopt(SO_REUSEPORT)"));
    }
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::IoError(Errno("bind"));
  }
  if (::listen(fd.get(), options.backlog) != 0) {
    return util::IoError(Errno("listen"));
  }
  return fd;
}

util::Result<std::uint16_t> LocalPort(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return util::IoError(Errno("getsockname"));
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

namespace {

util::Result<Accepted> AcceptInternal(int listen_fd, int flags,
                                      int* errno_out) {
  struct sockaddr_in peer;
  socklen_t len = sizeof(peer);
  int fd;
  do {
    len = sizeof(peer);
    fd = ::accept4(listen_fd, reinterpret_cast<struct sockaddr*>(&peer), &len,
                   flags);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno_out != nullptr) *errno_out = errno;
    return util::IoError(Errno("accept"));
  }
  if (errno_out != nullptr) *errno_out = 0;
  Accepted accepted;
  accepted.fd.Reset(fd);
  char buf[INET_ADDRSTRLEN];
  if (::inet_ntop(AF_INET, &peer.sin_addr, buf, sizeof(buf)) != nullptr) {
    accepted.peer_ip = buf;
  }
  return accepted;
}

}  // namespace

util::Result<Accepted> TcpAccept(int listen_fd, int* errno_out) {
  return AcceptInternal(listen_fd, 0, errno_out);
}

util::Result<Accepted> TcpAcceptNonBlocking(int listen_fd, int* errno_out) {
  return AcceptInternal(listen_fd, SOCK_NONBLOCK | SOCK_CLOEXEC, errno_out);
}

std::string AcceptErrnoName(int err) {
  switch (err) {
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case ECONNABORTED: return "ECONNABORTED";
    case EPROTO: return "EPROTO";
    case EMFILE: return "EMFILE";
    case ENFILE: return "ENFILE";
    case ENOBUFS: return "ENOBUFS";
    case ENOMEM: return "ENOMEM";
    case EBADF: return "EBADF";
    case EINVAL: return "EINVAL";
    default: return std::to_string(err);
  }
}

util::Result<util::UniqueFd> TcpConnect(const std::string& host,
                                        std::uint16_t port) {
  util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgument("bad IPv4 address: " + host);
  }
  const int rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0) {
    // EINTR leaves the connect in progress; re-calling connect() would
    // fail with EALREADY. Wait for writability and read SO_ERROR.
    if (errno != EINTR) return util::IoError(Errno("connect"));
    struct pollfd pfd;
    pfd.fd = fd.get();
    pfd.events = POLLOUT;
    int prc;
    do {
      prc = ::poll(&pfd, 1, -1);
    } while (prc < 0 && errno == EINTR);
    if (prc < 0) return util::IoError(Errno("poll"));
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return util::IoError(Errno("getsockopt(SO_ERROR)"));
    }
    if (so_error != 0) {
      errno = so_error;
      return util::IoError(Errno("connect"));
    }
  }
  return fd;
}

util::Result<PendingConnect> TcpConnectNonBlocking(const std::string& host,
                                                   std::uint16_t port,
                                                   int* errno_out) {
  if (errno_out != nullptr) *errno_out = 0;
  util::UniqueFd fd(
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (errno_out != nullptr) *errno_out = errno;
    return util::IoError(Errno("socket"));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::InvalidArgument("bad IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  PendingConnect pending;
  if (rc == 0) {
    pending.connected = true;  // loopback fast path
  } else if (errno == EINPROGRESS) {
    pending.connected = false;  // resolve via EPOLLOUT + ConnectSocketError
  } else {
    if (errno_out != nullptr) *errno_out = errno;
    return util::IoError(Errno("connect"));
  }
  pending.fd = std::move(fd);
  return pending;
}

int ConnectSocketError(int fd) {
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    return errno != 0 ? errno : EBADF;
  }
  return so_error;
}

util::Result<std::size_t> SendNonBlocking(int fd, const void* data,
                                          std::size_t n) {
  std::size_t sent = 0;
  const char* bytes = static_cast<const char*>(data);
  while (sent < n) {
    const ssize_t rc = ::send(fd, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return util::Unavailable(Errno("send"));
  }
  return sent;
}

std::string SocketErrnoName(int err) {
  switch (err) {
    case ECONNREFUSED: return "ECONNREFUSED";
    case ETIMEDOUT: return "ETIMEDOUT";
    case ECONNRESET: return "ECONNRESET";
    case EPIPE: return "EPIPE";
    case EHOSTUNREACH: return "EHOSTUNREACH";
    case ENETUNREACH: return "ENETUNREACH";
    case EADDRNOTAVAIL: return "EADDRNOTAVAIL";
    case EINPROGRESS: return "EINPROGRESS";
    default: return AcceptErrnoName(err);
  }
}

util::Error SetRecvTimeout(int fd, int millis) {
  struct timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return util::IoError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return util::OkError();
}

util::Error SetSendTimeout(int fd, int millis) {
  struct timeval tv;
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return util::IoError(Errno("setsockopt(SO_SNDTIMEO)"));
  }
  return util::OkError();
}

}  // namespace sams::net
