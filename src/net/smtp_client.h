// Blocking SMTP client — connects to a server, runs one mail
// transaction via the smtp::ClientSession FSM, and reports the
// outcome. This is the real-network counterpart of the paper's client
// programs, used by the examples and the end-to-end tests.
#pragma once

#include <cstdint>
#include <string>

#include "smtp/client_session.h"
#include "util/result.h"

namespace sams::net {

struct SendOutcome {
  smtp::ClientOutcome outcome = smtp::ClientOutcome::kInProgress;
  int accepted_rcpts = 0;
  int rejected_rcpts = 0;
};

// Sends `job` to host:port (blocking; `timeout_ms` bounds each read).
// A kAllRejected or kAborted outcome is a successful call — inspect
// `outcome`. Errors cover transport failures only.
util::Result<SendOutcome> SendMail(
    const std::string& host, std::uint16_t port, smtp::MailJob job,
    smtp::AbortStage abort = smtp::AbortStage::kNone, int timeout_ms = 10'000);

}  // namespace sams::net
