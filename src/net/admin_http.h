// AdminHttpServer — the wire surface of the telemetry plane
// (DESIGN.md §11): a minimal non-blocking HTTP/1.0 server on its own
// net::EventLoop thread, serving registered GET handlers (the live
// server routes /metrics, /vars, /healthz, /spans, /series).
//
// Deliberately not a general web server: GET only, one request per
// connection (Connection: close), 8 KiB request cap, exact-path
// routing with the query string stripped. Handlers run on the admin
// loop thread — they must only touch thread-safe state (the metrics
// registry, trace sink, time-series rings and health snapshots all
// are). A scrape therefore never contends with the SMTP data plane
// beyond those internal locks.
//
// AddWatch registers auxiliary fds (e.g. the SIGUSR1 eventfd in
// live_smtp_server) on the same loop, so signal handlers stay
// async-signal-safe: the handler writes one byte, the admin loop does
// the real work.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "obs/metrics.h"
#include "util/fd.h"
#include "util/result.h"

namespace sams::net {

struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminHttpServer {
 public:
  using Handler = std::function<AdminResponse()>;

  // port 0 = kernel-assigned ephemeral (reported by Start()).
  explicit AdminHttpServer(std::uint16_t port = 0);
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  // Registers an exact-match GET route ("/metrics"). Call before
  // Start(); later calls are ignored.
  void Route(const std::string& path, Handler handler);

  // Watches `fd` (EPOLLIN, level-triggered) on the admin loop;
  // `on_ready` must drain it. Call before Start(). The fd is borrowed,
  // not owned.
  void AddWatch(int fd, std::function<void()> on_ready);

  // Binds 127.0.0.1 and spawns the loop thread; returns the port.
  util::Result<std::uint16_t> Start();

  // Stops the loop, joins the thread, closes every connection.
  void Stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  // Publishes sams_admin_requests_total{path=…} and
  // sams_admin_http_errors_total. Call before Start().
  void BindMetrics(obs::Registry& registry);

 private:
  struct Conn {
    util::UniqueFd fd;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    bool responding = false;
    std::int64_t accepted_ns = 0;
  };

  void OnListenerReady();
  void OnConnEvent(int fd, std::uint32_t events);
  // True when the buffered request is complete and a response was
  // queued (or the connection must close).
  void MaybeRespond(int fd, Conn& conn);
  void FlushConn(int fd, Conn& conn);
  void CloseConn(int fd);
  AdminResponse Dispatch(const std::string& method, const std::string& path);

  std::uint16_t requested_port_;
  std::uint16_t port_ = 0;
  util::UniqueFd listener_;
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
  bool started_ = false;
  std::map<std::string, Handler> routes_;
  std::vector<std::pair<int, std::function<void()>>> watches_;
  util::UniqueFd idle_timer_;
  // Loop-thread-only state.
  std::unordered_map<int, Conn> conns_;
  std::atomic<std::uint64_t> requests_{0};

  // Optional observability (null until BindMetrics).
  obs::Registry* registry_ = nullptr;
  obs::Counter* http_errors_ = nullptr;
};

}  // namespace sams::net
