#include "net/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sams::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

util::Result<util::UniqueFd> UdpOpenNonBlocking() {
  util::UniqueFd fd(
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return util::IoError(Errno("socket"));
  return fd;
}

util::Error UdpSendToLoopback(int fd, std::uint16_t port, const void* data,
                              std::size_t size) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    const ssize_t n =
        ::sendto(fd, data, size, 0, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr));
    if (n >= 0) return util::OkError();
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::Unavailable("UDP send buffer full");
    }
    return util::IoError(Errno("sendto"));
  }
}

util::Result<std::size_t> UdpRecv(int fd, void* buf, std::size_t capacity) {
  for (;;) {
    const ssize_t n = ::recvfrom(fd, buf, capacity, 0, nullptr, nullptr);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<std::size_t>(0);
    }
    return util::IoError(Errno("recvfrom"));
  }
}

util::Result<util::UniqueFd> CreateTimerFd() {
  util::UniqueFd fd(
      ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK));
  if (!fd.valid()) return util::IoError(Errno("timerfd_create"));
  return fd;
}

util::Error ArmTimerFdOnceMs(int fd, std::int64_t millis) {
  struct itimerspec when {};
  if (millis > 0) {
    when.it_value.tv_sec = millis / 1000;
    when.it_value.tv_nsec = static_cast<long>(millis % 1000) * 1'000'000L;
  }
  if (::timerfd_settime(fd, 0, &when, nullptr) != 0) {
    return util::IoError(Errno("timerfd_settime"));
  }
  return util::OkError();
}

void DrainTimerFd(int fd) {
  std::uint64_t expirations = 0;
  (void)::read(fd, &expirations, sizeof(expirations));
}

}  // namespace sams::net
