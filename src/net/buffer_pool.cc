#include "net/buffer_pool.h"

#include <mutex>
#include <vector>

namespace sams::net {

struct BufferPool::State {
  std::size_t chunk_bytes = 0;
  std::size_t max_free = 0;
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<char[]>> free_list;
  std::uint64_t acquired = 0;
  std::uint64_t minted = 0;
  std::uint64_t recycled = 0;
};

namespace {

// The pin: owns one chunk, shares ownership of the pool state so a pin
// dropped after the pool is destroyed just frees its chunk.
struct ChunkPin {
  std::shared_ptr<BufferPool::State> state;
  std::unique_ptr<char[]> chunk;

  ~ChunkPin() {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->free_list.size() < state->max_free) {
      state->free_list.push_back(std::move(chunk));
      ++state->recycled;
    }
    // else: drop the chunk; a burst must not balloon the pool forever.
  }
};

}  // namespace

BufferPool::BufferPool(std::size_t chunk_bytes, std::size_t max_free)
    : state_(std::make_shared<State>()) {
  state_->chunk_bytes = chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes;
  state_->max_free = max_free;
}

BufferPool::Buffer BufferPool::Acquire() {
  std::unique_ptr<char[]> chunk;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->acquired;
    if (!state_->free_list.empty()) {
      chunk = std::move(state_->free_list.back());
      state_->free_list.pop_back();
    } else {
      ++state_->minted;
    }
  }
  if (chunk == nullptr) {
    chunk = std::make_unique<char[]>(state_->chunk_bytes);
  }
  Buffer buffer;
  buffer.data = chunk.get();
  buffer.capacity = state_->chunk_bytes;
  auto pin = std::make_shared<ChunkPin>();
  pin->state = state_;
  pin->chunk = std::move(chunk);
  buffer.pin = std::shared_ptr<const void>(pin, pin->chunk.get());
  return buffer;
}

std::size_t BufferPool::chunk_bytes() const { return state_->chunk_bytes; }

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  Stats stats;
  stats.acquired = state_->acquired;
  stats.minted = state_->minted;
  stats.recycled = state_->recycled;
  stats.free_chunks = state_->free_list.size();
  return stats;
}

}  // namespace sams::net
