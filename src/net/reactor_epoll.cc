// The epoll reactor backend — the engine EventLoop always ran on,
// extracted behind ReactorBackend. Behavior is unchanged: interest
// masks pass straight through to epoll_ctl and Wait is epoll_wait with
// EINTR retried.
#include <sys/epoll.h>

#include <cerrno>
#include <cstring>

#include "net/reactor.h"
#include "util/fd.h"

namespace sams::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

class EpollBackend final : public ReactorBackend {
 public:
  explicit EpollBackend(util::UniqueFd epoll_fd)
      : epoll_fd_(std::move(epoll_fd)) {}

  const char* name() const override { return "epoll"; }

  util::Error Add(int fd, std::uint32_t events) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      return util::IoError(Errno("epoll_ctl(add)"));
    }
    return util::OkError();
  }

  util::Error Modify(int fd, std::uint32_t events) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
      return util::IoError(Errno("epoll_ctl(mod)"));
    }
    return util::OkError();
  }

  util::Error Remove(int fd) override {
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return util::IoError(Errno("epoll_ctl(del)"));
    }
    return util::OkError();
  }

  util::Result<int> Wait(std::vector<ReactorEvent>& out,
                         int max_events) override {
    if (static_cast<int>(scratch_.size()) < max_events) {
      scratch_.resize(static_cast<std::size_t>(max_events));
    }
    int n;
    do {
      n = ::epoll_wait(epoll_fd_.get(), scratch_.data(), max_events, -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return util::IoError(Errno("epoll_wait"));
    out.clear();
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto& ev = scratch_[static_cast<std::size_t>(i)];
      out.push_back({ev.data.fd, ev.events});
    }
    return n;
  }

 private:
  util::UniqueFd epoll_fd_;
  std::vector<struct epoll_event> scratch_;
};

}  // namespace

util::Result<std::unique_ptr<ReactorBackend>> MakeEpollBackend() {
  util::UniqueFd epoll_fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd.valid()) return util::IoError(Errno("epoll_create1"));
  return std::unique_ptr<ReactorBackend>(
      new EpollBackend(std::move(epoll_fd)));
}

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kEpoll: return "epoll";
    case IoBackendKind::kIoUring: return "io_uring";
    case IoBackendKind::kAuto: return "auto";
  }
  return "?";
}

std::optional<IoBackendKind> ParseIoBackendKind(std::string_view name) {
  if (name == "epoll") return IoBackendKind::kEpoll;
  if (name == "io_uring" || name == "uring") return IoBackendKind::kIoUring;
  if (name == "auto") return IoBackendKind::kAuto;
  return std::nullopt;
}

}  // namespace sams::net
