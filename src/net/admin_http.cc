#include "net/admin_http.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/tcp.h"
#include "util/logging.h"
#include "util/time.h"

namespace sams::net {
namespace {

// A scrape request is one line plus a handful of headers; anything
// bigger is not a scraper.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;
// Connections idle longer than this are reaped (a scraper that opened
// a socket and fell silent must not pin loop state forever).
constexpr std::int64_t kConnIdleNs = 10'000'000'000;  // 10 s

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

}  // namespace

AdminHttpServer::AdminHttpServer(std::uint16_t port) : requested_port_(port) {}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Route(const std::string& path, Handler handler) {
  if (started_) return;
  routes_[path] = std::move(handler);
}

void AdminHttpServer::AddWatch(int fd, std::function<void()> on_ready) {
  if (started_) return;
  watches_.emplace_back(fd, std::move(on_ready));
}

void AdminHttpServer::BindMetrics(obs::Registry& registry) {
  registry_ = &registry;
  http_errors_ = &registry.GetCounter(
      "sams_admin_http_errors_total",
      "admin requests answered with a non-200 status");
}

util::Result<std::uint16_t> AdminHttpServer::Start() {
  if (started_) return port_;
  ListenOptions options;
  auto listener = TcpListen(requested_port_, options);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(*listener);
  auto port = LocalPort(listener_.get());
  if (!port.ok()) return port.error();
  port_ = *port;
  SAMS_RETURN_IF_ERROR(util::SetNonBlocking(listener_.get()));

  auto loop = EventLoop::Create();
  if (!loop.ok()) return loop.error();
  loop_ = std::move(*loop);

  const util::Error listen_err =
      loop_->Add(listener_.get(), EPOLLIN | EPOLLET,
                 [this](std::uint32_t) { OnListenerReady(); });
  if (!listen_err.ok()) return listen_err;
  for (auto& [fd, on_ready] : watches_) {
    // Level-triggered: the callback drains the fd itself.
    const util::Error err = loop_->Add(
        fd, EPOLLIN, [cb = on_ready](std::uint32_t) { cb(); });
    if (!err.ok()) return err;
  }

  // Periodic reaper for half-open scraper connections.
  idle_timer_.Reset(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC));
  if (idle_timer_.valid()) {
    struct itimerspec when {};
    when.it_value.tv_sec = 5;
    when.it_interval = when.it_value;
    ::timerfd_settime(idle_timer_.get(), 0, &when, nullptr);
    const int timer_fd = idle_timer_.get();
    (void)loop_->Add(timer_fd, EPOLLIN, [this, timer_fd](std::uint32_t) {
      std::uint64_t expirations = 0;
      (void)::read(timer_fd, &expirations, sizeof(expirations));
      const std::int64_t now = util::MonotonicNanos();
      std::vector<int> expired;
      for (const auto& [fd, conn] : conns_) {
        if (now - conn.accepted_ns >= kConnIdleNs) expired.push_back(fd);
      }
      for (int fd : expired) CloseConn(fd);
    });
  }

  started_ = true;
  thread_ = std::thread([this] { (void)loop_->Run(); });
  return port_;
}

void AdminHttpServer::Stop() {
  if (!started_) return;
  loop_->Stop();
  if (thread_.joinable()) thread_.join();
  conns_.clear();
  idle_timer_.Reset();
  listener_.Reset();
  loop_.reset();
  started_ = false;
}

void AdminHttpServer::OnListenerReady() {
  for (;;) {
    int err = 0;
    auto accepted = TcpAcceptNonBlocking(listener_.get(), &err);
    if (!accepted.ok()) {
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR || err == ECONNABORTED) continue;
      return;  // EMFILE etc.: wait for the next edge
    }
    const int fd = accepted->fd.get();
    Conn conn;
    conn.fd = std::move(accepted->fd);
    conn.accepted_ns = util::MonotonicNanos();
    conns_.emplace(fd, std::move(conn));
    (void)loop_->Add(fd, EPOLLIN | EPOLLET, [this, fd](std::uint32_t events) {
      OnConnEvent(fd, events);
    });
  }
}

AdminResponse AdminHttpServer::Dispatch(const std::string& method,
                                        const std::string& path) {
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  std::string route = path;
  const std::size_t query = route.find('?');
  if (query != std::string::npos) route.resize(query);
  auto it = routes_.find(route);
  if (it == routes_.end()) {
    std::string known = "not found; routes:";
    for (const auto& [p, handler] : routes_) known += " " + p;
    known += "\n";
    return {404, "text/plain; charset=utf-8", std::move(known)};
  }
  return it->second();
}

void AdminHttpServer::MaybeRespond(int fd, Conn& conn) {
  if (conn.responding) return;
  if (conn.in.size() > kMaxRequestBytes) {
    conn.responding = true;
    conn.out = "HTTP/1.0 431 " + std::string(StatusText(431)) +
               "\r\nConnection: close\r\n\r\nrequest too large\n";
    if (http_errors_ != nullptr) http_errors_->Inc();
    FlushConn(fd, conn);
    return;
  }
  // GET requests carry no body, so the first line is the whole
  // request as far as routing cares; we answer as soon as it is
  // complete instead of waiting for the blank line (tolerates bare-LF
  // clients like `printf | nc`).
  // First line: METHOD SP PATH SP VERSION
  const std::size_t eol = conn.in.find('\n');
  if (eol == std::string::npos) return;
  std::string line = conn.in.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  AdminResponse response;
  std::string route = "?";
  if (sp1 == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string method = line.substr(0, sp1);
    const std::string path = sp2 == std::string::npos
                                 ? line.substr(sp1 + 1)
                                 : line.substr(sp1 + 1, sp2 - sp1 - 1);
    route = path;
    const std::size_t query = route.find('?');
    if (query != std::string::npos) route.resize(query);
    response = Dispatch(method, path);
  }
  conn.responding = true;
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (registry_ != nullptr) {
    registry_
        ->GetCounter("sams_admin_requests_total",
                     "admin HTTP requests served, by route",
                     {{"path", route}})
        .Inc();
  }
  if (response.status != 200 && http_errors_ != nullptr) http_errors_->Inc();
  conn.out = "HTTP/1.0 " + std::to_string(response.status) + " " +
             StatusText(response.status) +
             "\r\nContent-Type: " + response.content_type +
             "\r\nContent-Length: " + std::to_string(response.body.size()) +
             "\r\nConnection: close\r\n\r\n" + response.body;
  FlushConn(fd, conn);
}

void AdminHttpServer::FlushConn(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: finish when writable.
      (void)loop_->Modify(fd, EPOLLOUT | EPOLLET);
      return;
    }
    CloseConn(fd);  // peer gone
    return;
  }
  CloseConn(fd);  // HTTP/1.0: one response, then close
}

void AdminHttpServer::OnConnEvent(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.responding) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) FlushConn(fd, conn);
    return;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (conn.in.size() > kMaxRequestBytes + sizeof(buf)) {
        CloseConn(fd);
        return;
      }
      MaybeRespond(fd, conn);
      if (conns_.find(fd) == conns_.end()) return;  // responded + closed
      if (conn.responding) return;  // response queued, waiting on EPOLLOUT
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(fd);  // EOF or error before a full request
    return;
  }
}

void AdminHttpServer::CloseConn(int fd) {
  (void)loop_->Remove(fd);
  conns_.erase(fd);
}

}  // namespace sams::net
