// Reactor backend interface (DESIGN.md §14) — the readiness engine
// under net::EventLoop, split so the loop's dispatch logic is shared
// between two implementations:
//
//   epoll     The original engine, preserved behavior-for-behavior; the
//             portable default every paper-figure bench runs on.
//   io_uring  Readiness via IORING_OP_POLL_ADD on a raw ring (no
//             liburing dependency): multishot poll for edge-triggered
//             registrations where the kernel supports it, oneshot poll
//             re-armed after dispatch for level-triggered ones. Feature
//             detected at runtime; kAuto falls back to epoll when the
//             ring cannot be set up (old kernel, seccomp, rlimits).
//
// Backends translate between the loop's epoll-style interest masks
// (EPOLLIN/EPOLLOUT/EPOLLET...) and their native arming; callers never
// see backend-specific event types.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sams::net {

enum class IoBackendKind {
  kEpoll,    // portable default
  kIoUring,  // strict: Create fails when the ring is unavailable
  kAuto,     // io_uring when available, epoll otherwise
};

const char* IoBackendKindName(IoBackendKind kind);
// Parses "epoll" | "io_uring" | "auto" (the --io-backend flag values).
std::optional<IoBackendKind> ParseIoBackendKind(std::string_view name);

// One ready descriptor, with epoll-style event bits (EPOLLIN etc.).
struct ReactorEvent {
  int fd = -1;
  std::uint32_t events = 0;
};

class ReactorBackend {
 public:
  virtual ~ReactorBackend() = default;

  virtual const char* name() const = 0;

  // Interest masks use the epoll bit vocabulary, including EPOLLET.
  // Add on an already-registered fd is an error (epoll's EEXIST
  // contract); Modify/Remove on an unknown fd likewise (ENOENT).
  virtual util::Error Add(int fd, std::uint32_t events) = 0;
  virtual util::Error Modify(int fd, std::uint32_t events) = 0;
  virtual util::Error Remove(int fd) = 0;

  // Blocks until at least one event is ready, then fills `out` with up
  // to `max_events` of them and returns the count. EINTR is retried
  // internally. A return equal to `max_events` may mean more events
  // were ready than fit — the loop grows its batch on that signal.
  virtual util::Result<int> Wait(std::vector<ReactorEvent>& out,
                                 int max_events) = 0;

  // Called by the loop after it dispatched (or intentionally skipped)
  // the callback for `fd`. The io_uring backend re-arms oneshot polls
  // here so level-triggered semantics hold; epoll needs nothing.
  virtual void OnDispatched(int fd) { (void)fd; }
};

util::Result<std::unique_ptr<ReactorBackend>> MakeEpollBackend();
util::Result<std::unique_ptr<ReactorBackend>> MakeIoUringBackend();

// Runtime probe: true when an io_uring ring with the features the
// backend needs (NODROP) can actually be set up in this process.
// Smokes and tests use this to SKIP instead of fail on kernels or
// sandboxes without uring support.
bool IoUringAvailable();

}  // namespace sams::net
