// Pooled receive buffers for the zero-copy DATA path (DESIGN.md §14).
//
// A shard's read loop acquires a chunk, reads the socket into it, and
// feeds the bytes down the SMTP session. Downstream consumers that
// want to reference the bytes without copying (the dot-stuff decoder's
// span sink, the MFS iovec staging) hold the chunk's pin — a
// shared_ptr whose final release returns the chunk to the pool's free
// list. Ownership rules:
//
//   - The bytes behind a span stay valid exactly as long as some pin
//     referencing the chunk is alive. Consumers keep the pin alongside
//     the span, never the raw pointer alone.
//   - Acquire never fails: when every pooled chunk is pinned the pool
//     mints a fresh heap chunk (counted, so benches can see pressure)
//     rather than blocking the reactor.
//   - Releases beyond `max_free` free memory instead of growing the
//     free list, so a burst cannot permanently balloon the pool.
//
// Thread-safe; pins may be dropped from any thread (workers release
// after the MFS write while the shard keeps reading).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace sams::net {

class BufferPool {
 public:
  // One receive buffer. `pin` keeps `data` alive; copy it into anything
  // that outlives the current callback.
  struct Buffer {
    char* data = nullptr;
    std::size_t capacity = 0;
    std::shared_ptr<const void> pin;
  };

  struct Stats {
    std::uint64_t acquired = 0;  // total Acquire calls
    std::uint64_t minted = 0;    // chunks newly allocated (pool empty)
    std::uint64_t recycled = 0;  // chunks returned to the free list
    std::size_t free_chunks = 0;
  };

  static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;

  explicit BufferPool(std::size_t chunk_bytes = kDefaultChunkBytes,
                      std::size_t max_free = 64);

  // Pins may outlive the pool: they share ownership of its state and
  // simply free their chunk once the pool itself is gone.
  ~BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  Buffer Acquire();

  std::size_t chunk_bytes() const;
  Stats stats() const;

  struct State;  // opaque; public so the pin deleter can hold it

 private:
  std::shared_ptr<State> state_;
};

}  // namespace sams::net
