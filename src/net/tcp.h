// Minimal TCP helpers for the real (non-simulated) server and client:
// IPv4 listen / accept / connect over the loopback or LAN.
#pragma once

#include <cstdint>
#include <string>

#include "util/fd.h"
#include "util/result.h"

namespace sams::net {

// Listens on 127.0.0.1:`port` (port 0 = kernel-assigned ephemeral).
util::Result<util::UniqueFd> TcpListen(std::uint16_t port, int backlog = 128);

// Listener options for the sharded master: `reuse_port` sets
// SO_REUSEPORT before bind so N per-core reactors can each own a
// listener on the same port and let the kernel load-balance SYNs
// across them. Fails (rather than silently downgrading) when the
// kernel refuses the option, so callers can fall back to a single
// listener with explicit fd handoff.
struct ListenOptions {
  int backlog = 128;
  bool reuse_port = false;
};
util::Result<util::UniqueFd> TcpListen(std::uint16_t port,
                                       const ListenOptions& options);

// The locally bound port of a listening (or connected) socket.
util::Result<std::uint16_t> LocalPort(int fd);

// Accepts one connection (blocking). Returns the connected fd and the
// peer's dotted address. On failure `errno_out` (when non-null)
// receives the accept(2) errno so callers can distinguish transient
// errors (ECONNABORTED) from fd exhaustion (EMFILE/ENFILE) and back
// off instead of busy-spinning.
struct Accepted {
  util::UniqueFd fd;
  std::string peer_ip;
};
util::Result<Accepted> TcpAccept(int listen_fd, int* errno_out = nullptr);

// accept4(2) with SOCK_NONBLOCK | SOCK_CLOEXEC: the accepted socket is
// born non-blocking, saving the fcntl round-trip per connection in the
// sharded master's accept path. Same errno contract as TcpAccept;
// EAGAIN means the (non-blocking) listener's queue is empty.
util::Result<Accepted> TcpAcceptNonBlocking(int listen_fd,
                                            int* errno_out = nullptr);

// Symbolic name for an accept-path errno ("EMFILE", "EINTR", ...);
// falls back to the decimal value for exotic codes. Used as the
// `errno` label on sams_smtp_accept_errors_total.
std::string AcceptErrnoName(int err);

// Connects to host:port (blocking).
util::Result<util::UniqueFd> TcpConnect(const std::string& host,
                                        std::uint16_t port);

// Starts a non-blocking connect. `connected` is true when the kernel
// completed the handshake inline (loopback fast path); otherwise the
// caller registers the fd for EPOLLOUT and, on the writability edge,
// reads the outcome with ConnectSocketError. A synchronous refusal
// (ECONNREFUSED on some kernels) or fd exhaustion (EMFILE) surfaces as
// an error here with `errno_out` set so load generators can classify
// it rather than lumping every failure together.
struct PendingConnect {
  util::UniqueFd fd;
  bool connected = false;
};
util::Result<PendingConnect> TcpConnectNonBlocking(const std::string& host,
                                                   std::uint16_t port,
                                                   int* errno_out = nullptr);

// Resolves a finished non-blocking connect: 0 = established, otherwise
// the socket's errno (ECONNREFUSED, ETIMEDOUT, EHOSTUNREACH, ...).
int ConnectSocketError(int fd);

// One non-blocking send pass with MSG_NOSIGNAL: returns the number of
// bytes accepted by the kernel (possibly 0 when the socket buffer is
// full — EAGAIN is NOT an error here, it is the backpressure signal
// partial-write continuation keys off). A dead peer (EPIPE/ECONNRESET)
// returns kUnavailable. EINTR is retried internally.
util::Result<std::size_t> SendNonBlocking(int fd, const void* data,
                                          std::size_t n);

// Symbolic name for a connect/read/write-path errno ("ECONNREFUSED",
// "ETIMEDOUT", "ECONNRESET", ...); falls back to the decimal value.
// The loadgen's per-error counters and the server's backpressure
// metrics share this mapping.
std::string SocketErrnoName(int err);

// Sets SO_RCVTIMEO so blocking reads give up after `millis`.
util::Error SetRecvTimeout(int fd, int millis);

// Sets SO_SNDTIMEO so blocking writes give up after `millis` — a
// client that stops draining its receive window (slow-loris on the
// reply path) cannot park a worker in write() forever.
util::Error SetSendTimeout(int fd, int millis);

}  // namespace sams::net
