// Minimal TCP helpers for the real (non-simulated) server and client:
// IPv4 listen / accept / connect over the loopback or LAN.
#pragma once

#include <cstdint>
#include <string>

#include "util/fd.h"
#include "util/result.h"

namespace sams::net {

// Listens on 127.0.0.1:`port` (port 0 = kernel-assigned ephemeral).
util::Result<util::UniqueFd> TcpListen(std::uint16_t port, int backlog = 128);

// The locally bound port of a listening (or connected) socket.
util::Result<std::uint16_t> LocalPort(int fd);

// Accepts one connection (blocking). Returns the connected fd and the
// peer's dotted address.
struct Accepted {
  util::UniqueFd fd;
  std::string peer_ip;
};
util::Result<Accepted> TcpAccept(int listen_fd);

// Connects to host:port (blocking).
util::Result<util::UniqueFd> TcpConnect(const std::string& host,
                                        std::uint16_t port);

// Sets SO_RCVTIMEO so blocking reads give up after `millis`.
util::Error SetRecvTimeout(int fd, int millis);

// Sets SO_SNDTIMEO so blocking writes give up after `millis` — a
// client that stops draining its receive window (slow-loris on the
// reply path) cannot park a worker in write() forever.
util::Error SetSendTimeout(int fd, int millis);

}  // namespace sams::net
