// The io_uring reactor backend: a readiness engine built on
// IORING_OP_POLL_ADD over a raw ring (io_uring_setup/io_uring_enter +
// mmap — the container has no liburing, and the ring ABI is stable).
//
// Arming strategy (DESIGN.md §14):
//   - Edge-triggered registrations (EPOLLET) use multishot poll
//     (IORING_POLL_ADD_MULTI): one SQE, a CQE per readiness wakeup,
//     re-armed by the kernel while IORING_CQE_F_MORE stays set. A
//     kernel that rejects multishot (-EINVAL) flips the backend to
//     oneshot arming lazily and re-arms the affected fd in place.
//   - Level-triggered registrations use oneshot poll re-armed from
//     OnDispatched, after the callback ran: poll checks readiness at
//     arm time, so an fd left readable completes again immediately —
//     exactly epoll's level-triggered contract.
//
// Every arm carries user_data = (generation << 32) | fd. Modify bumps
// the generation and cancels the old arm (IORING_OP_POLL_REMOVE), so a
// CQE from a canceled arm — or from a closed fd number the kernel
// recycled — is recognized as stale and dropped instead of being
// misdelivered to the new registration.
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "net/reactor.h"
#include "util/fd.h"

#if defined(__linux__) && defined(__NR_io_uring_setup)
#include <linux/io_uring.h>
#define SAMS_HAVE_IO_URING 1
#endif

namespace sams::net {

#if defined(SAMS_HAVE_IO_URING)

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int SysUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// The ring head/tail words are shared with the kernel; all accesses go
// through acquire/release atomics per the io_uring memory model.
unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

// Poll masks share bit values with epoll for everything we arm;
// EPOLLET (and any other high control bit) must not reach the kernel.
constexpr std::uint32_t kPollMaskBits = EPOLLIN | EPOLLOUT | EPOLLPRI |
                                        EPOLLERR | EPOLLHUP | EPOLLRDHUP;

std::uint64_t PackUserData(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

class UringBackend final : public ReactorBackend {
 public:
  UringBackend() = default;
  ~UringBackend() override {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_size_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_size_);
    }
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_size_);
  }

  util::Error Init() {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int ring = SysUringSetup(kEntries, &params);
    if (ring < 0) return util::Unavailable(Errno("io_uring_setup"));
    ring_fd_.Reset(ring);
    if ((params.features & IORING_FEAT_NODROP) == 0) {
      // Without NODROP a CQ overflow silently drops completions and a
      // oneshot-armed fd would never fire again; treat as unavailable.
      return util::Unavailable("io_uring: kernel lacks IORING_FEAT_NODROP");
    }

    sq_ring_size_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_size_ =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_size_ = cq_ring_size_ =
          sq_ring_size_ > cq_ring_size_ ? sq_ring_size_ : cq_ring_size_;
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_size_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_.get(),
                      IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      return util::Unavailable(Errno("mmap(sq_ring)"));
    }
    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_size_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_.get(),
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        return util::Unavailable(Errno("mmap(cq_ring)"));
      }
    }
    sqes_size_ = params.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_.get(), IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return util::Unavailable(Errno("mmap(sqes)"));
    }

    auto* sq = static_cast<char*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    sq_entries_ = params.sq_entries;
    auto* cq = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    local_tail_ = LoadAcquire(sq_tail_);
    return util::OkError();
  }

  const char* name() const override { return "io_uring"; }

  util::Error Add(int fd, std::uint32_t events) override {
    if (fds_.find(fd) != fds_.end()) {
      return util::IoError("io_uring add: fd already registered");
    }
    // Poll on a bad descriptor only fails asynchronously via its CQE;
    // validate here so Add keeps epoll_ctl's synchronous EBADF contract.
    if (::fcntl(fd, F_GETFD) < 0) {
      return util::IoError(Errno("io_uring add"));
    }
    FdState state;
    state.events = events;
    state.gen = next_gen_++;
    SAMS_RETURN_IF_ERROR(Arm(fd, state));
    fds_.emplace(fd, state);
    return util::OkError();
  }

  util::Error Modify(int fd, std::uint32_t events) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return util::IoError("io_uring mod: unknown fd");
    FdState& state = it->second;
    if (state.armed) SAMS_RETURN_IF_ERROR(Cancel(fd, state.gen));
    state.events = events;
    state.gen = next_gen_++;
    state.armed = false;
    return Arm(fd, state);
  }

  util::Error Remove(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return util::IoError("io_uring del: unknown fd");
    const util::Error err =
        it->second.armed ? Cancel(fd, it->second.gen) : util::OkError();
    fds_.erase(it);
    return err;
  }

  util::Result<int> Wait(std::vector<ReactorEvent>& out,
                         int max_events) override {
    out.clear();
    for (;;) {
      SAMS_RETURN_IF_ERROR(Flush());
      while (LoadAcquire(cq_tail_) == LoadAcquire(cq_head_)) {
        const int rc = SysUringEnter(ring_fd_.get(), 0, 1,
                                     IORING_ENTER_GETEVENTS);
        if (rc < 0 && errno != EINTR && errno != EAGAIN) {
          return util::IoError(Errno("io_uring_enter(wait)"));
        }
      }
      Harvest(out, max_events);
      if (!out.empty()) return static_cast<int>(out.size());
      // Every CQE drained was stale or internal (cancel completions,
      // multishot ends); any re-arms it queued flush on the next pass.
    }
  }

  void OnDispatched(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end() || it->second.armed) return;
    // Arm failures (ring exhaustion) surface as a lost registration;
    // the SQ is flushed whenever it fills, so this cannot trigger
    // short of the kernel rejecting submission outright.
    (void)Arm(fd, it->second);
  }

 private:
  struct FdState {
    std::uint32_t events = 0;
    std::uint32_t gen = 0;
    bool armed = false;
    bool multishot = false;
  };

  static constexpr unsigned kEntries = 256;

  unsigned PendingSubmit() const {
    return local_tail_ - LoadAcquire(sq_head_);
  }

  // Pushes every queued SQE to the kernel without waiting. to_submit
  // is recomputed from the ring each try: the kernel advances sq head
  // as it consumes, so an EINTR retry never resubmits consumed slots.
  util::Error Flush() {
    while (PendingSubmit() > 0) {
      const int rc = SysUringEnter(ring_fd_.get(), PendingSubmit(), 0, 0);
      if (rc < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
        return util::IoError(Errno("io_uring_enter(submit)"));
      }
    }
    return util::OkError();
  }

  util::Result<struct io_uring_sqe*> GetSqe() {
    if (PendingSubmit() >= sq_entries_) {
      SAMS_RETURN_IF_ERROR(Flush());
      if (PendingSubmit() >= sq_entries_) {
        return util::IoError("io_uring: submission ring full");
      }
    }
    const unsigned idx = local_tail_ & sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    ++local_tail_;
    StoreRelease(sq_tail_, local_tail_);
    return sqe;
  }

  util::Error Arm(int fd, FdState& state) {
    auto sqe = GetSqe();
    if (!sqe.ok()) return sqe.error();
    state.multishot = multishot_ok_ && (state.events & EPOLLET) != 0;
    (*sqe)->opcode = IORING_OP_POLL_ADD;
    (*sqe)->fd = fd;
    (*sqe)->poll32_events = state.events & kPollMaskBits;
    (*sqe)->len = state.multishot ? IORING_POLL_ADD_MULTI : 0;
    (*sqe)->user_data = PackUserData(fd, state.gen);
    state.armed = true;
    return util::OkError();
  }

  util::Error Cancel(int fd, std::uint32_t gen) {
    auto sqe = GetSqe();
    if (!sqe.ok()) return sqe.error();
    (*sqe)->opcode = IORING_OP_POLL_REMOVE;
    (*sqe)->fd = -1;
    (*sqe)->addr = PackUserData(fd, gen);
    // gen 0 is never assigned to an arm, so the cancel's own completion
    // is recognized as internal and dropped at harvest.
    (*sqe)->user_data = PackUserData(fd, 0);
    return util::OkError();
  }

  void Harvest(std::vector<ReactorEvent>& out, int max_events) {
    unsigned head = LoadAcquire(cq_head_);
    const unsigned tail = LoadAcquire(cq_tail_);
    while (head != tail && static_cast<int>(out.size()) < max_events) {
      const struct io_uring_cqe& cqe = cqes_[head & cq_mask_];
      ++head;
      StoreRelease(cq_head_, head);
      const int fd = static_cast<int>(cqe.user_data & 0xFFFFFFFFu);
      const std::uint32_t gen =
          static_cast<std::uint32_t>(cqe.user_data >> 32);
      if (gen == 0) continue;  // cancel completion
      auto it = fds_.find(fd);
      if (it == fds_.end() || it->second.gen != gen) continue;  // stale arm
      FdState& state = it->second;
      if (cqe.res < 0) {
        if (cqe.res == -EINVAL && state.multishot && multishot_ok_) {
          // Kernel predates multishot poll: fall back to oneshot arming
          // for every fd from here on and re-arm this one in place.
          multishot_ok_ = false;
          state.armed = false;
          (void)Arm(fd, state);
          continue;
        }
        if (cqe.res == -ECANCELED) {
          // Canceled under us (e.g. the kernel tearing down the target);
          // re-arm so the registration does not silently die.
          state.armed = false;
          (void)Arm(fd, state);
          continue;
        }
        // Hard failure (EBADF...): surface as an error event; the
        // callback tears the registration down.
        state.armed = false;
        out.push_back({fd, EPOLLERR});
        continue;
      }
      if (state.multishot) {
        if ((cqe.flags & IORING_CQE_F_MORE) == 0) state.armed = false;
      } else {
        state.armed = false;
      }
      if (cqe.res == 0) continue;  // spurious wakeup; OnDispatched re-arms
      out.push_back({fd, static_cast<std::uint32_t>(cqe.res)});
    }
  }

  util::UniqueFd ring_fd_;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_size_ = 0;
  std::size_t cq_ring_size_ = 0;
  std::size_t sqes_size_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned local_tail_ = 0;  // our view of *sq_tail_
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;

  std::unordered_map<int, FdState> fds_;
  std::uint32_t next_gen_ = 1;
  bool multishot_ok_ = true;
};

}  // namespace

util::Result<std::unique_ptr<ReactorBackend>> MakeIoUringBackend() {
  auto backend = std::make_unique<UringBackend>();
  SAMS_RETURN_IF_ERROR(backend->Init());
  return std::unique_ptr<ReactorBackend>(std::move(backend));
}

bool IoUringAvailable() {
  return MakeIoUringBackend().ok();
}

#else  // !SAMS_HAVE_IO_URING

util::Result<std::unique_ptr<ReactorBackend>> MakeIoUringBackend() {
  return util::Unavailable("io_uring: not supported by this build");
}

bool IoUringAvailable() { return false; }

#endif

}  // namespace sams::net
