#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/time.h"

namespace sams::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

util::Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  std::unique_ptr<EventLoop> loop(new EventLoop());
  loop->epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!loop->epoll_fd_.valid()) return util::IoError(Errno("epoll_create1"));
  loop->wake_fd_.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!loop->wake_fd_.valid()) return util::IoError(Errno("eventfd"));
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = loop->wake_fd_.get();
  if (::epoll_ctl(loop->epoll_fd_.get(), EPOLL_CTL_ADD, loop->wake_fd_.get(),
                  &ev) != 0) {
    return util::IoError(Errno("epoll_ctl(wake)"));
  }
  return loop;
}

void EventLoop::BindMetrics(obs::Registry& registry) {
  iterations_ = &registry.GetCounter("sams_net_loop_iterations_total",
                                     "epoll_wait wakeups");
  dispatched_ = &registry.GetCounter("sams_net_loop_events_total",
                                     "callbacks dispatched");
  ready_fds_ = &registry.GetHistogram("sams_net_loop_ready_fds",
                                      "fds ready per epoll_wait",
                                      {1.0, 2.0, 8});
  callback_us_ = &registry.GetHistogram("sams_net_loop_callback_micros",
                                        "callback wall latency (us)",
                                        {1.0, 4.0, 10});
  watched_gauge_ =
      &registry.GetGauge("sams_net_loop_watched_fds", "registered fds");
}

util::Error EventLoop::Add(int fd, std::uint32_t events, Callback callback) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return util::IoError(Errno("epoll_ctl(add)"));
  }
  callbacks_[fd] = std::move(callback);
  if (watched_gauge_ != nullptr) {
    watched_gauge_->Set(static_cast<double>(callbacks_.size()));
  }
  return util::OkError();
}

util::Error EventLoop::Modify(int fd, std::uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return util::IoError(Errno("epoll_ctl(mod)"));
  }
  return util::OkError();
}

util::Error EventLoop::Remove(int fd) {
  callbacks_.erase(fd);
  if (watched_gauge_ != nullptr) {
    watched_gauge_->Set(static_cast<double>(callbacks_.size()));
  }
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return util::IoError(Errno("epoll_ctl(del)"));
  }
  return util::OkError();
}

util::Error EventLoop::Run() {
  running_.store(true, std::memory_order_release);
  std::array<struct epoll_event, 64> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    int n;
    do {
      n = ::epoll_wait(epoll_fd_.get(), events.data(),
                       static_cast<int>(events.size()), -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      running_.store(false, std::memory_order_release);
      return util::IoError(Errno("epoll_wait"));
    }
    if (iterations_ != nullptr) {
      iterations_->Inc();
      ready_fds_->Observe(static_cast<double>(n));
    }
    for (int i = 0;
         i < n && !stop_requested_.load(std::memory_order_acquire); ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_.get()) {
        std::uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        DrainPosted();
        continue;
      }
      auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) {
        // Copy: the callback may Remove(fd) and invalidate the entry.
        Callback callback = it->second;
        if (dispatched_ != nullptr) {
          const std::int64_t start = util::MonotonicNanos();
          callback(events[static_cast<std::size_t>(i)].events);
          dispatched_->Inc();
          callback_us_->Observe(
              static_cast<double>(util::MonotonicNanos() - start) / 1e3);
        } else {
          callback(events[static_cast<std::size_t>(i)].events);
        }
      }
    }
  }
  running_.store(false, std::memory_order_release);
  return util::OkError();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace sams::net
