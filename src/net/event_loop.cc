#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/time.h"

namespace sams::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Cap for the adaptive ready batch. 4096 events per wakeup is far past
// the point where dispatch cost, not harvest size, is the bottleneck.
constexpr int kMaxReadyBatch = 4096;

}  // namespace

util::Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  return Create(IoBackendKind::kEpoll);
}

util::Result<std::unique_ptr<EventLoop>> EventLoop::Create(
    IoBackendKind kind) {
  std::unique_ptr<EventLoop> loop(new EventLoop());
  switch (kind) {
    case IoBackendKind::kEpoll: {
      SAMS_ASSIGN_OR_RETURN(loop->backend_, MakeEpollBackend());
      break;
    }
    case IoBackendKind::kIoUring: {
      SAMS_ASSIGN_OR_RETURN(loop->backend_, MakeIoUringBackend());
      break;
    }
    case IoBackendKind::kAuto: {
      auto uring = MakeIoUringBackend();
      if (uring.ok()) {
        loop->backend_ = std::move(uring).value();
      } else {
        SAMS_ASSIGN_OR_RETURN(loop->backend_, MakeEpollBackend());
      }
      break;
    }
  }
  loop->wake_fd_.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!loop->wake_fd_.valid()) return util::IoError(Errno("eventfd"));
  SAMS_RETURN_IF_ERROR(loop->backend_->Add(loop->wake_fd_.get(), EPOLLIN));
  return loop;
}

void EventLoop::BindMetrics(obs::Registry& registry) {
  iterations_ = &registry.GetCounter("sams_net_loop_iterations_total",
                                     "epoll_wait wakeups");
  dispatched_ = &registry.GetCounter("sams_net_loop_events_total",
                                     "callbacks dispatched");
  ready_saturated_ = &registry.GetCounter(
      "sams_net_ready_saturated_total",
      "ready batches that came back full (batch then doubled)");
  ready_fds_ = &registry.GetHistogram("sams_net_loop_ready_fds",
                                      "fds ready per epoll_wait",
                                      {1.0, 2.0, 8});
  callback_us_ = &registry.GetHistogram("sams_net_loop_callback_micros",
                                        "callback wall latency (us)",
                                        {1.0, 4.0, 10});
  watched_gauge_ =
      &registry.GetGauge("sams_net_loop_watched_fds", "registered fds");
}

util::Error EventLoop::Add(int fd, std::uint32_t events, Callback callback) {
  SAMS_RETURN_IF_ERROR(backend_->Add(fd, events));
  callbacks_[fd] = std::move(callback);
  if (watched_gauge_ != nullptr) {
    watched_gauge_->Set(static_cast<double>(callbacks_.size()));
  }
  return util::OkError();
}

util::Error EventLoop::Modify(int fd, std::uint32_t events) {
  return backend_->Modify(fd, events);
}

util::Error EventLoop::Remove(int fd) {
  callbacks_.erase(fd);
  if (watched_gauge_ != nullptr) {
    watched_gauge_->Set(static_cast<double>(callbacks_.size()));
  }
  return backend_->Remove(fd);
}

util::Error EventLoop::Run() {
  running_.store(true, std::memory_order_release);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    auto waited = backend_->Wait(ready_, max_events_);
    if (!waited.ok()) {
      running_.store(false, std::memory_order_release);
      return waited.error();
    }
    const int n = *waited;
    if (iterations_ != nullptr) {
      iterations_->Inc();
      ready_fds_->Observe(static_cast<double>(n));
    }
    if (n == max_events_ && max_events_ < kMaxReadyBatch) {
      // A full batch may have left ready fds behind; grow so repeat
      // saturation cannot starve high-numbered fds across iterations.
      if (ready_saturated_ != nullptr) ready_saturated_->Inc();
      max_events_ *= 2;
    }
    for (int i = 0;
         i < n && !stop_requested_.load(std::memory_order_acquire); ++i) {
      const ReactorEvent event = ready_[static_cast<std::size_t>(i)];
      if (event.fd == wake_fd_.get()) {
        std::uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        DrainPosted();
        backend_->OnDispatched(event.fd);
        continue;
      }
      auto it = callbacks_.find(event.fd);
      if (it != callbacks_.end()) {
        // Copy: the callback may Remove(fd) and invalidate the entry.
        Callback callback = it->second;
        if (dispatched_ != nullptr) {
          const std::int64_t start = util::MonotonicNanos();
          callback(event.events);
          dispatched_->Inc();
          callback_us_->Observe(
              static_cast<double>(util::MonotonicNanos() - start) / 1e3);
        } else {
          callback(event.events);
        }
      }
      backend_->OnDispatched(event.fd);
    }
  }
  running_.store(false, std::memory_order_release);
  return util::OkError();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace sams::net
