#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace sams::net {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

util::Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  std::unique_ptr<EventLoop> loop(new EventLoop());
  loop->epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!loop->epoll_fd_.valid()) return util::IoError(Errno("epoll_create1"));
  loop->wake_fd_.Reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!loop->wake_fd_.valid()) return util::IoError(Errno("eventfd"));
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = loop->wake_fd_.get();
  if (::epoll_ctl(loop->epoll_fd_.get(), EPOLL_CTL_ADD, loop->wake_fd_.get(),
                  &ev) != 0) {
    return util::IoError(Errno("epoll_ctl(wake)"));
  }
  return loop;
}

util::Error EventLoop::Add(int fd, std::uint32_t events, Callback callback) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return util::IoError(Errno("epoll_ctl(add)"));
  }
  callbacks_[fd] = std::move(callback);
  return util::OkError();
}

util::Error EventLoop::Modify(int fd, std::uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return util::IoError(Errno("epoll_ctl(mod)"));
  }
  return util::OkError();
}

util::Error EventLoop::Remove(int fd) {
  callbacks_.erase(fd);
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return util::IoError(Errno("epoll_ctl(del)"));
  }
  return util::OkError();
}

util::Error EventLoop::Run() {
  running_.store(true, std::memory_order_release);
  std::array<struct epoll_event, 64> events;
  while (running_.load(std::memory_order_acquire)) {
    int n;
    do {
      n = ::epoll_wait(epoll_fd_.get(), events.data(),
                       static_cast<int>(events.size()), -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return util::IoError(Errno("epoll_wait"));
    for (int i = 0; i < n && running_.load(std::memory_order_acquire); ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_.get()) {
        std::uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) {
        // Copy: the callback may Remove(fd) and invalidate the entry.
        Callback callback = it->second;
        callback(events[static_cast<std::size_t>(i)].events);
      }
    }
  }
  return util::OkError();
}

void EventLoop::Stop() {
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace sams::net
