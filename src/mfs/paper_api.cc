#include "mfs/paper_api.h"

#include <cstring>
#include <string>
#include <vector>

namespace sams::mfs {
namespace {

thread_local std::string t_last_error;

int Fail(const util::Error& err) {
  t_last_error = err.ToString();
  return MFS_ERR;
}

int Fail(const char* message) {
  t_last_error = message;
  return MFS_ERR;
}

}  // namespace

// The C handle owns the C++ handle plus streaming-read state.
struct mail_file {
  MfsVolume* volume;
  std::unique_ptr<MailFile> handle;
  // In-progress mail_read drain state.
  bool draining = false;
  std::string pending_body;
  std::string pending_id;
  std::size_t drained = 0;
};

const char* mfs_last_error() { return t_last_error.c_str(); }

mail_file* mail_open(MfsVolume* vol, const char* filename, const char* mode) {
  if (vol == nullptr || filename == nullptr || mode == nullptr) {
    Fail("mail_open: null argument");
    return nullptr;
  }
  auto handle = vol->MailOpen(filename, mode);
  if (!handle.ok()) {
    Fail(handle.error());
    return nullptr;
  }
  return new mail_file{vol, std::move(handle).value()};
}

int mail_seek(mail_file* mfd, int offset, int whence) {
  if (mfd == nullptr) return Fail("mail_seek: null handle");
  Whence w;
  switch (whence) {
    case MFS_SEEK_SET: w = Whence::kSet; break;
    case MFS_SEEK_CUR: w = Whence::kCur; break;
    case MFS_SEEK_END: w = Whence::kEnd; break;
    default: return Fail("mail_seek: bad whence");
  }
  mfd->draining = false;  // seeking abandons a partial read
  const util::Error err = mfd->volume->MailSeek(*mfd->handle, offset, w);
  return err.ok() ? MFS_OK : Fail(err);
}

int mail_nwrite(mail_file** mfd, int nmfd, const char* buf,
                const char* mail_id, int buf_len, int mail_id_len) {
  if (mfd == nullptr || buf == nullptr || mail_id == nullptr || nmfd <= 0 ||
      buf_len < 0 || mail_id_len <= 0) {
    return Fail("mail_nwrite: bad arguments");
  }
  auto id = MailId::Parse(std::string_view(mail_id,
                                           static_cast<std::size_t>(mail_id_len)));
  if (!id) return Fail("mail_nwrite: invalid mail id");
  std::vector<MailFile*> boxes;
  boxes.reserve(static_cast<std::size_t>(nmfd));
  MfsVolume* volume = nullptr;
  for (int i = 0; i < nmfd; ++i) {
    if (mfd[i] == nullptr) return Fail("mail_nwrite: null handle in array");
    if (volume == nullptr) volume = mfd[i]->volume;
    if (mfd[i]->volume != volume) {
      return Fail("mail_nwrite: handles from different volumes");
    }
    boxes.push_back(mfd[i]->handle.get());
  }
  const util::Error err = volume->MailNWrite(
      boxes, std::string_view(buf, static_cast<std::size_t>(buf_len)), *id);
  return err.ok() ? MFS_OK : Fail(err);
}

int mail_read(mail_file* mfd, char* buf, char* mail_id, int* buf_len,
              int* mail_id_len) {
  if (mfd == nullptr || buf == nullptr || mail_id == nullptr ||
      buf_len == nullptr || mail_id_len == nullptr || *buf_len < 0 ||
      *mail_id_len < 0) {
    return Fail("mail_read: bad arguments");
  }
  if (!mfd->draining) {
    auto result = mfd->volume->MailRead(*mfd->handle);
    if (!result.ok()) return Fail(result.error());
    mfd->pending_body = std::move(result->body);
    mfd->pending_id = result->id.str();
    mfd->drained = 0;
    mfd->draining = true;
  }
  // Copy the id (callers typically size this generously; a short id
  // buffer is an argument error to keep semantics simple).
  if (static_cast<std::size_t>(*mail_id_len) < mfd->pending_id.size()) {
    return Fail("mail_read: mail_id buffer too small");
  }
  std::memcpy(mail_id, mfd->pending_id.data(), mfd->pending_id.size());
  *mail_id_len = static_cast<int>(mfd->pending_id.size());

  const std::size_t remaining = mfd->pending_body.size() - mfd->drained;
  const std::size_t n = std::min(remaining, static_cast<std::size_t>(*buf_len));
  std::memcpy(buf, mfd->pending_body.data() + mfd->drained, n);
  mfd->drained += n;
  *buf_len = static_cast<int>(n);
  if (mfd->drained < mfd->pending_body.size()) return MFS_MORE;
  mfd->draining = false;
  return MFS_OK;
}

int mail_delete(mail_file* mfd, const char* mail_id, int mail_id_len) {
  if (mfd == nullptr || mail_id == nullptr || mail_id_len <= 0) {
    return Fail("mail_delete: bad arguments");
  }
  auto id = MailId::Parse(std::string_view(mail_id,
                                           static_cast<std::size_t>(mail_id_len)));
  if (!id) return Fail("mail_delete: invalid mail id");
  const util::Error err = mfd->volume->MailDelete(*mfd->handle, *id);
  return err.ok() ? MFS_OK : Fail(err);
}

int mail_close(mail_file* mfd) {
  if (mfd == nullptr) return Fail("mail_close: null handle");
  mfd->volume->MailClose(std::move(mfd->handle));
  delete mfd;
  return MFS_OK;
}

}  // namespace sams::mfs
