#include "mfs/mail_id.h"

#include <atomic>
#include <cstdio>

namespace sams::mfs {
namespace {

std::atomic<std::uint64_t> g_counter{0};

}  // namespace

MailId MailId::Generate(util::Rng& rng) {
  const std::uint64_t seq = g_counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t tag = rng.NextU64();
  char buf[kMaxLen + 1];
  std::snprintf(buf, sizeof(buf), "%08llX%016llX",
                static_cast<unsigned long long>(seq & 0xffffffff),
                static_cast<unsigned long long>(tag));
  return MailId(std::string(buf));
}

std::optional<MailId> MailId::Parse(std::string_view s) {
  if (s.empty() || s.size() > kMaxLen) return std::nullopt;
  for (char c : s) {
    if (c <= 0x20 || c > 0x7e) return std::nullopt;
  }
  return MailId(std::string(s));
}

}  // namespace sams::mfs
