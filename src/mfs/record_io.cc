#include "mfs/record_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sams::mfs {
namespace {

using util::Error;
using util::Result;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

void EncodeU64(std::uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

std::uint64_t DecodeU64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

void EncodeU32(std::uint32_t v, char* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

std::uint32_t DecodeU32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

void EncodeKeyRecord(const KeyRecord& rec, char* buf) {
  std::memset(buf, 0, KeyRecord::kWireSize);
  std::memcpy(buf, rec.id.str().data(), rec.id.str().size());
  EncodeU64(static_cast<std::uint64_t>(rec.offset), buf + MailId::kMaxLen);
  EncodeU32(static_cast<std::uint32_t>(rec.refcount), buf + MailId::kMaxLen + 8);
}

Result<KeyRecord> DecodeKeyRecord(const char* buf) {
  // Id is NUL-padded to kMaxLen.
  std::size_t len = 0;
  while (len < MailId::kMaxLen && buf[len] != '\0') ++len;
  auto id = MailId::Parse(std::string_view(buf, len));
  if (!id) return util::Corruption("key file: invalid mail id");
  KeyRecord rec;
  rec.id = *id;
  rec.offset = static_cast<std::int64_t>(DecodeU64(buf + MailId::kMaxLen));
  rec.refcount = static_cast<std::int32_t>(DecodeU32(buf + MailId::kMaxLen + 8));
  return rec;
}

}  // namespace

Result<KeyFile> KeyFile::Open(const std::string& path) {
  KeyFile kf;
  kf.path_ = path;
  kf.fd_.Reset(::open(path.c_str(), O_RDWR | O_CREAT, 0600));
  if (!kf.fd_.valid()) return util::IoError(Errno("open", path));

  struct stat st;
  if (::fstat(kf.fd_.get(), &st) != 0) return util::IoError(Errno("fstat", path));
  if (st.st_size % static_cast<off_t>(KeyRecord::kWireSize) != 0) {
    return util::Corruption("key file " + path + ": truncated record");
  }
  const std::size_t count =
      static_cast<std::size_t>(st.st_size) / KeyRecord::kWireSize;
  kf.records_.reserve(count);
  char buf[KeyRecord::kWireSize];
  for (std::size_t i = 0; i < count; ++i) {
    const ssize_t n = ::pread(kf.fd_.get(), buf, sizeof(buf),
                              static_cast<off_t>(i * KeyRecord::kWireSize));
    if (n != static_cast<ssize_t>(sizeof(buf))) {
      return util::IoError(Errno("pread", path));
    }
    auto rec = DecodeKeyRecord(buf);
    if (!rec.ok()) return rec.error();
    kf.records_.push_back(std::move(rec).value());
  }
  return kf;
}

Result<std::size_t> KeyFile::Append(const KeyRecord& record) {
  if (record.id.empty()) return util::InvalidArgument("empty mail id");
  char buf[KeyRecord::kWireSize];
  EncodeKeyRecord(record, buf);
  const off_t at = static_cast<off_t>(records_.size() * KeyRecord::kWireSize);
  const ssize_t n = ::pwrite(fd_.get(), buf, sizeof(buf), at);
  if (n != static_cast<ssize_t>(sizeof(buf))) {
    return util::IoError(Errno("pwrite", path_));
  }
  records_.push_back(record);
  return records_.size() - 1;
}

Error KeyFile::SetRefcount(std::size_t index, std::int32_t refcount) {
  if (index >= records_.size()) return util::OutOfRange("key record index");
  char buf[4];
  EncodeU32(static_cast<std::uint32_t>(refcount), buf);
  const off_t at = static_cast<off_t>(index * KeyRecord::kWireSize +
                                      MailId::kMaxLen + 8);
  if (::pwrite(fd_.get(), buf, sizeof(buf), at) != 4) {
    return util::IoError(Errno("pwrite", path_));
  }
  records_[index].refcount = refcount;
  return util::OkError();
}

Error KeyFile::SetOffset(std::size_t index, std::int64_t offset) {
  if (index >= records_.size()) return util::OutOfRange("key record index");
  char buf[8];
  EncodeU64(static_cast<std::uint64_t>(offset), buf);
  const off_t at =
      static_cast<off_t>(index * KeyRecord::kWireSize + MailId::kMaxLen);
  if (::pwrite(fd_.get(), buf, sizeof(buf), at) != 8) {
    return util::IoError(Errno("pwrite", path_));
  }
  records_[index].offset = offset;
  return util::OkError();
}

std::size_t KeyFile::Find(const MailId& id) const {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].IsTombstone() && records_[i].id == id) return i;
  }
  return npos;
}

Error KeyFile::Sync() {
  if (::fsync(fd_.get()) != 0) return util::IoError(Errno("fsync", path_));
  return util::OkError();
}

Error KeyFile::Rewrite(const std::string& path,
                       std::vector<KeyRecord> new_records) {
  const std::string tmp = path + ".tmp";
  util::UniqueFd tmp_fd(::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600));
  if (!tmp_fd.valid()) return util::IoError(Errno("open", tmp));
  char buf[KeyRecord::kWireSize];
  off_t at = 0;
  for (const KeyRecord& rec : new_records) {
    EncodeKeyRecord(rec, buf);
    if (::pwrite(tmp_fd.get(), buf, sizeof(buf), at) !=
        static_cast<ssize_t>(sizeof(buf))) {
      return util::IoError(Errno("pwrite", tmp));
    }
    at += static_cast<off_t>(sizeof(buf));
  }
  if (::fsync(tmp_fd.get()) != 0) return util::IoError(Errno("fsync", tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::IoError(Errno("rename", tmp));
  }
  path_ = path;
  fd_ = std::move(tmp_fd);
  records_ = std::move(new_records);
  return util::OkError();
}

Result<DataFile> DataFile::Open(const std::string& path) {
  DataFile df;
  df.path_ = path;
  df.fd_.Reset(::open(path.c_str(), O_RDWR | O_CREAT, 0600));
  if (!df.fd_.valid()) return util::IoError(Errno("open", path));
  struct stat st;
  if (::fstat(df.fd_.get(), &st) != 0) return util::IoError(Errno("fstat", path));
  df.end_ = static_cast<std::int64_t>(st.st_size);
  return df;
}

Result<std::int64_t> DataFile::Append(std::string_view payload) {
  char len_buf[4];
  EncodeU32(static_cast<std::uint32_t>(payload.size()), len_buf);
  const std::int64_t at = end_;
  if (::pwrite(fd_.get(), len_buf, 4, static_cast<off_t>(at)) != 4) {
    return util::IoError(Errno("pwrite", path_));
  }
  if (!payload.empty() &&
      ::pwrite(fd_.get(), payload.data(), payload.size(),
               static_cast<off_t>(at + 4)) !=
          static_cast<ssize_t>(payload.size())) {
    return util::IoError(Errno("pwrite", path_));
  }
  end_ = at + 4 + static_cast<std::int64_t>(payload.size());
  return at;
}

Result<std::string> DataFile::ReadAt(std::int64_t offset) const {
  if (offset < 0 || offset + 4 > end_) {
    return util::OutOfRange("data offset beyond end of file");
  }
  char len_buf[4];
  if (::pread(fd_.get(), len_buf, 4, static_cast<off_t>(offset)) != 4) {
    return util::IoError(Errno("pread", path_));
  }
  const std::uint32_t len = DecodeU32(len_buf);
  if (offset + 4 + static_cast<std::int64_t>(len) > end_) {
    return util::Corruption("data record length exceeds file size");
  }
  std::string out(len, '\0');
  if (len > 0 &&
      ::pread(fd_.get(), out.data(), len, static_cast<off_t>(offset + 4)) !=
          static_cast<ssize_t>(len)) {
    return util::IoError(Errno("pread", path_));
  }
  return out;
}

Error DataFile::Sync() {
  if (::fsync(fd_.get()) != 0) return util::IoError(Errno("fsync", path_));
  return util::OkError();
}

Result<std::vector<std::int64_t>> DataFile::Rewrite(
    const std::string& path, const std::vector<std::string>& payloads) {
  const std::string tmp = path + ".tmp";
  {
    util::UniqueFd tmp_fd(::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600));
    if (!tmp_fd.valid()) return util::IoError(Errno("open", tmp));
    fd_ = std::move(tmp_fd);
  }
  end_ = 0;
  std::vector<std::int64_t> offsets;
  offsets.reserve(payloads.size());
  for (const std::string& payload : payloads) {
    auto off = Append(payload);
    if (!off.ok()) return off.error();
    offsets.push_back(*off);
  }
  if (::fsync(fd_.get()) != 0) return util::IoError(Errno("fsync", tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::IoError(Errno("rename", tmp));
  }
  path_ = path;
  return offsets;
}

}  // namespace sams::mfs
