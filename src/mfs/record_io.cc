#include "mfs/record_io.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "fault/injector.h"

namespace sams::mfs {
namespace {

using util::Error;
using util::Result;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

void EncodeU64(std::uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

std::uint64_t DecodeU64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

void EncodeU32(std::uint32_t v, char* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>(v >> (8 * i));
}

std::uint32_t DecodeU32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

void EncodeKeyRecord(const KeyRecord& rec, char* buf) {
  std::memset(buf, 0, KeyRecord::kWireSize);
  std::memcpy(buf, rec.id.str().data(), rec.id.str().size());
  EncodeU64(static_cast<std::uint64_t>(rec.offset), buf + MailId::kMaxLen);
  EncodeU32(static_cast<std::uint32_t>(rec.refcount), buf + MailId::kMaxLen + 8);
}

Result<KeyRecord> DecodeKeyRecord(const char* buf) {
  // Id is NUL-padded to kMaxLen.
  std::size_t len = 0;
  while (len < MailId::kMaxLen && buf[len] != '\0') ++len;
  auto id = MailId::Parse(std::string_view(buf, len));
  if (!id) return util::Corruption("key file: invalid mail id");
  KeyRecord rec;
  rec.id = *id;
  rec.offset = static_cast<std::int64_t>(DecodeU64(buf + MailId::kMaxLen));
  rec.refcount = static_cast<std::int32_t>(DecodeU32(buf + MailId::kMaxLen + 8));
  return rec;
}

Error PwriteAll(int fd, const void* data, std::size_t n, std::int64_t off,
                const std::string& path) {
  struct iovec iov;
  iov.iov_base = const_cast<void*>(data);
  iov.iov_len = n;
  return PwritevAll(fd, &iov, 1, off, path);
}

}  // namespace

util::Error PwritevAll(int fd, struct iovec* iov, int iovcnt,
                       std::int64_t off, const std::string& path) {
  int idx = 0;
  while (idx < iovcnt) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    ssize_t n;
    if (!SAMS_FAULT_ERROR("mfs.io.pwritev.short").ok()) {
      // Test hook: force a 1-byte short write so the continuation loop
      // below is exercised deterministically.
      n = ::pwrite(fd, iov[idx].iov_base, 1, static_cast<off_t>(off));
    } else {
      n = ::pwritev(fd, iov + idx,
                    std::min(iovcnt - idx, static_cast<int>(IOV_MAX)),
                    static_cast<off_t>(off));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::IoError(Errno("pwritev", path));
    }
    if (n == 0) {
      return util::IoError("pwritev " + path + ": wrote 0 bytes");
    }
    off += n;
    auto remaining = static_cast<std::size_t>(n);
    while (remaining > 0 && idx < iovcnt) {
      if (remaining >= iov[idx].iov_len) {
        remaining -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + remaining;
        iov[idx].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  return util::OkError();
}

Result<KeyFile> KeyFile::Open(const std::string& path) {
  KeyFile kf;
  kf.path_ = path;
  kf.fd_.Reset(::open(path.c_str(), O_RDWR | O_CREAT, 0600));
  if (!kf.fd_.valid()) return util::IoError(Errno("open", path));

  struct stat st;
  if (::fstat(kf.fd_.get(), &st) != 0) return util::IoError(Errno("fstat", path));
  if (st.st_size % static_cast<off_t>(KeyRecord::kWireSize) != 0) {
    return util::Corruption("key file " + path + ": truncated record");
  }
  const std::size_t count =
      static_cast<std::size_t>(st.st_size) / KeyRecord::kWireSize;
  kf.records_.reserve(count);
  char buf[KeyRecord::kWireSize];
  for (std::size_t i = 0; i < count; ++i) {
    const ssize_t n = ::pread(kf.fd_.get(), buf, sizeof(buf),
                              static_cast<off_t>(i * KeyRecord::kWireSize));
    if (n != static_cast<ssize_t>(sizeof(buf))) {
      return util::IoError(Errno("pread", path));
    }
    auto rec = DecodeKeyRecord(buf);
    if (!rec.ok()) return rec.error();
    kf.records_.push_back(std::move(rec).value());
  }
  return kf;
}

Result<std::size_t> KeyFile::Append(const KeyRecord& record) {
  return AppendBatch(std::span<const KeyRecord>(&record, 1));
}

Result<std::size_t> KeyFile::AppendBatch(std::span<const KeyRecord> records) {
  if (records.empty()) return records_.size();  // nothing to write
  std::string buf(records.size() * KeyRecord::kWireSize, '\0');
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].id.empty()) return util::InvalidArgument("empty mail id");
    EncodeKeyRecord(records[i], buf.data() + i * KeyRecord::kWireSize);
  }
  const auto at =
      static_cast<std::int64_t>(records_.size() * KeyRecord::kWireSize);
  SAMS_RETURN_IF_ERROR(PwriteAll(fd_.get(), buf.data(), buf.size(), at, path_));
  const std::size_t first = records_.size();
  records_.insert(records_.end(), records.begin(), records.end());
  return first;
}

Error KeyFile::SetRefcount(std::size_t index, std::int32_t refcount) {
  if (index >= records_.size()) return util::OutOfRange("key record index");
  char buf[4];
  EncodeU32(static_cast<std::uint32_t>(refcount), buf);
  const auto at = static_cast<std::int64_t>(index * KeyRecord::kWireSize +
                                            MailId::kMaxLen + 8);
  SAMS_RETURN_IF_ERROR(PwriteAll(fd_.get(), buf, sizeof(buf), at, path_));
  records_[index].refcount = refcount;
  return util::OkError();
}

Error KeyFile::SetOffset(std::size_t index, std::int64_t offset) {
  if (index >= records_.size()) return util::OutOfRange("key record index");
  char buf[8];
  EncodeU64(static_cast<std::uint64_t>(offset), buf);
  const auto at =
      static_cast<std::int64_t>(index * KeyRecord::kWireSize + MailId::kMaxLen);
  SAMS_RETURN_IF_ERROR(PwriteAll(fd_.get(), buf, sizeof(buf), at, path_));
  records_[index].offset = offset;
  return util::OkError();
}

std::size_t KeyFile::Find(const MailId& id) const {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].IsTombstone() && records_[i].id == id) return i;
  }
  return npos;
}

Error KeyFile::Sync() {
  if (::fsync(fd_.get()) != 0) return util::IoError(Errno("fsync", path_));
  return util::OkError();
}

Error KeyFile::Rewrite(const std::string& path,
                       std::vector<KeyRecord> new_records) {
  const std::string tmp = path + ".tmp";
  util::UniqueFd tmp_fd(::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600));
  if (!tmp_fd.valid()) return util::IoError(Errno("open", tmp));
  std::string buf(new_records.size() * KeyRecord::kWireSize, '\0');
  for (std::size_t i = 0; i < new_records.size(); ++i) {
    EncodeKeyRecord(new_records[i], buf.data() + i * KeyRecord::kWireSize);
  }
  SAMS_RETURN_IF_ERROR(PwriteAll(tmp_fd.get(), buf.data(), buf.size(), 0, tmp));
  if (::fsync(tmp_fd.get()) != 0) return util::IoError(Errno("fsync", tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::IoError(Errno("rename", tmp));
  }
  path_ = path;
  fd_ = std::move(tmp_fd);
  records_ = std::move(new_records);
  return util::OkError();
}

Result<DataFile> DataFile::Open(const std::string& path) {
  DataFile df;
  df.path_ = path;
  df.fd_.Reset(::open(path.c_str(), O_RDWR | O_CREAT, 0600));
  if (!df.fd_.valid()) return util::IoError(Errno("open", path));
  struct stat st;
  if (::fstat(df.fd_.get(), &st) != 0) return util::IoError(Errno("fstat", path));
  df.end_ = static_cast<std::int64_t>(st.st_size);
  return df;
}

Result<std::int64_t> DataFile::Append(std::string_view payload) {
  if (payload.size() > kMaxDataRecordBytes) {
    return util::InvalidArgument(
        "data record of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxDataRecordBytes) +
        "-byte record limit");
  }
  char len_buf[4];
  EncodeU32(static_cast<std::uint32_t>(payload.size()), len_buf);
  const std::int64_t at = end_;
  struct iovec iov[2];
  iov[0].iov_base = len_buf;
  iov[0].iov_len = sizeof(len_buf);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  SAMS_RETURN_IF_ERROR(
      PwritevAll(fd_.get(), iov, payload.empty() ? 1 : 2, at, path_));
  end_ = at + 4 + static_cast<std::int64_t>(payload.size());
  return at;
}

Result<std::int64_t> DataFile::AppendParts(
    std::span<const std::string_view> parts) {
  std::size_t total = 0;
  for (const std::string_view part : parts) total += part.size();
  if (total > kMaxDataRecordBytes) {
    return util::InvalidArgument(
        "data record of " + std::to_string(total) + " bytes exceeds the " +
        std::to_string(kMaxDataRecordBytes) + "-byte record limit");
  }
  char len_buf[4];
  EncodeU32(static_cast<std::uint32_t>(total), len_buf);
  const std::int64_t at = end_;
  std::vector<struct iovec> iov;
  iov.reserve(parts.size() + 1);
  iov.push_back({len_buf, sizeof(len_buf)});
  for (const std::string_view part : parts) {
    if (part.empty()) continue;
    iov.push_back({const_cast<char*>(part.data()), part.size()});
  }
  SAMS_RETURN_IF_ERROR(PwritevAll(fd_.get(), iov.data(),
                                  static_cast<int>(iov.size()), at, path_));
  end_ = at + 4 + static_cast<std::int64_t>(total);
  return at;
}

Result<std::string> DataFile::ReadAt(std::int64_t offset) const {
  if (offset < 0 || offset + 4 > end_) {
    return util::OutOfRange("data offset beyond end of file");
  }
  char len_buf[4];
  if (::pread(fd_.get(), len_buf, 4, static_cast<off_t>(offset)) != 4) {
    return util::IoError(Errno("pread", path_));
  }
  const std::uint32_t len = DecodeU32(len_buf);
  if (offset + 4 + static_cast<std::int64_t>(len) > end_) {
    return util::Corruption("data record length exceeds file size");
  }
  std::string out(len, '\0');
  if (len > 0 &&
      ::pread(fd_.get(), out.data(), len, static_cast<off_t>(offset + 4)) !=
          static_cast<ssize_t>(len)) {
    return util::IoError(Errno("pread", path_));
  }
  return out;
}

Error DataFile::Sync() {
  if (::fsync(fd_.get()) != 0) return util::IoError(Errno("fsync", path_));
  return util::OkError();
}

Result<std::vector<std::int64_t>> DataFile::Rewrite(
    const std::string& path, const std::vector<std::string>& payloads) {
  const std::string tmp = path + ".tmp";
  {
    util::UniqueFd tmp_fd(::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600));
    if (!tmp_fd.valid()) return util::IoError(Errno("open", tmp));
    fd_ = std::move(tmp_fd);
  }
  end_ = 0;
  std::vector<std::int64_t> offsets;
  offsets.reserve(payloads.size());
  for (const std::string& payload : payloads) {
    auto off = Append(payload);
    if (!off.ok()) return off.error();
    offsets.push_back(*off);
  }
  if (::fsync(fd_.get()) != 0) return util::IoError(Errno("fsync", tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::IoError(Errno("rename", tmp));
  }
  path_ = path;
  return offsets;
}

}  // namespace sams::mfs
