#include "mfs/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_set>

#include "util/fd.h"

namespace sams::mfs {
namespace {

using util::Error;
using util::Result;
using util::UniqueFd;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

Error EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0700) == 0 || errno == EEXIST) return util::OkError();
  return util::IoError(Errno("mkdir", path));
}

// fsync through a fresh descriptor. The dirty pages live under the
// inode, so a group-commit flush can sync a file (or directory) that
// no longer has a cached fd — or never had one, as with maildir
// renames.
Error FsyncPath(const std::string& path) {
  UniqueFd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.valid()) return util::IoError(Errno("open", path));
  if (::fsync(fd.get()) != 0) return util::IoError(Errno("fsync", path));
  return util::OkError();
}

// Syncs and drains a set of dirty paths, counting fsync(2) calls.
// Paths that fail stay in the set for the next round.
Error SyncPathSet(std::unordered_set<std::string>& paths, int& fsyncs) {
  while (!paths.empty()) {
    const std::string path = *paths.begin();
    SAMS_RETURN_IF_ERROR(FsyncPath(path));
    ++fsyncs;
    paths.erase(path);
  }
  return util::OkError();
}

Result<std::vector<std::string>> ListDirSorted(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return util::IoError(Errno("opendir", dir));
  // readdir returns nullptr for both end-of-directory and failure;
  // only errno tells them apart. Without this a half-read mailbox
  // listing would be returned as complete.
  errno = 0;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name != "." && name != "..") names.push_back(name);
    errno = 0;
  }
  if (errno != 0) {
    const std::string msg = std::strerror(errno);
    ::closedir(d);
    return util::IoError("readdir " + dir + ": " + msg);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

// /healthz probe: the backing directory must still exist and be
// writable/searchable, or every future delivery is doomed.
Error CheckWritableDir(const std::string& dir) {
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    return util::IoError(Errno("access", dir));
  }
  return util::OkError();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  UniqueFd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.valid()) return util::IoError(Errno("open", path));
  std::string out;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::IoError(Errno("read", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

// --- mbox -------------------------------------------------------------

// Classic mbox framing: "From sams <id>\n" separator, body lines
// beginning with "From " quoted as ">From ".
std::string MboxEncode(const MailId& id, std::string_view body) {
  std::string out = "From sams " + id.str() + "\n";
  std::size_t i = 0;
  while (i < body.size()) {
    std::size_t eol = body.find('\n', i);
    const std::size_t end = eol == std::string_view::npos ? body.size() : eol + 1;
    const std::string_view line = body.substr(i, end - i);
    if (line.substr(0, 5) == "From ") out.push_back('>');
    out.append(line);
    i = end;
  }
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  out.push_back('\n');  // blank line terminates the mbox entry
  return out;
}

class MboxStore final : public MailStore {
 public:
  MboxStore(std::string root, StoreOptions opts)
      : MailStore(opts), root_(std::move(root)) {}
  ~MboxStore() override { StopCommitter(); }

  std::string_view name() const override { return "mbox"; }

  Error HealthCheck() override { return CheckWritableDir(root_); }

  Error DoDeliver(const MailId& id, std::string_view body,
                  std::span<const std::string> mailboxes) override {
    if (mailboxes.empty()) return util::InvalidArgument("no mailboxes");
    stats_.bytes_logical += body.size() * mailboxes.size();
    const std::string encoded = MboxEncode(id, body);
    for (const std::string& box : mailboxes) {
      const std::string path = root_ + "/" + box + ".mbox";
      UniqueFd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0600));
      if (!fd.valid()) return util::IoError(Errno("open", path));
      SAMS_RETURN_IF_ERROR(util::WriteAll(fd.get(), encoded.data(), encoded.size()));
      stats_.bytes_written += encoded.size();
      ++stats_.mailbox_deliveries;
      if (opts_.fsync_each_mail) {
        if (::fsync(fd.get()) != 0) return util::IoError(Errno("fsync", path));
        ++stats_.fsyncs;
      } else if (opts_.group_commit) {
        dirty_files_.insert(path);
      }
    }
    ++stats_.mails_delivered;
    return util::OkError();
  }

  Result<int> SyncDirty() override {
    int fsyncs = 0;
    SAMS_RETURN_IF_ERROR(SyncPathSet(dirty_files_, fsyncs));
    return fsyncs;
  }

  Result<std::vector<std::string>> ReadMailbox(const std::string& box) override {
    const std::string path = root_ + "/" + box + ".mbox";
    auto content = ReadWholeFile(path);
    if (!content.ok()) return content.error();
    std::vector<std::string> mails;
    std::string current;
    bool in_mail = false;
    std::size_t i = 0;
    const std::string& text = *content;
    while (i < text.size()) {
      std::size_t eol = text.find('\n', i);
      const std::size_t end = eol == std::string::npos ? text.size() : eol + 1;
      std::string_view line(text.data() + i, end - i);
      i = end;
      if (line.substr(0, 10) == "From sams ") {
        if (in_mail) mails.push_back(std::move(current));
        current.clear();
        in_mail = true;
        continue;
      }
      if (!in_mail) continue;
      if (line.substr(0, 6) == ">From ") line.remove_prefix(1);
      current.append(line);
    }
    if (in_mail) mails.push_back(std::move(current));
    // Drop the blank-line terminators appended by MboxEncode.
    for (std::string& mail : mails) {
      if (mail.size() >= 1 && mail.back() == '\n') mail.pop_back();
    }
    return mails;
  }

  Error Sync() override {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    auto synced = SyncDirty();
    if (!synced.ok()) return synced.error();
    stats_.fsyncs += static_cast<std::uint64_t>(*synced);
    return util::OkError();
  }

 private:
  std::string root_;
  std::unordered_set<std::string> dirty_files_;
};

// --- maildir ----------------------------------------------------------

class MaildirStore final : public MailStore {
 public:
  MaildirStore(std::string root, StoreOptions opts)
      : MailStore(opts), root_(std::move(root)) {}
  ~MaildirStore() override { StopCommitter(); }

  std::string_view name() const override { return "maildir"; }

  Error HealthCheck() override { return CheckWritableDir(root_); }

  Error EnsureMaildir(const std::string& box) {
    const std::string base = root_ + "/" + box;
    SAMS_RETURN_IF_ERROR(EnsureDir(base));
    SAMS_RETURN_IF_ERROR(EnsureDir(base + "/tmp"));
    SAMS_RETURN_IF_ERROR(EnsureDir(base + "/new"));
    SAMS_RETURN_IF_ERROR(EnsureDir(base + "/cur"));
    return util::OkError();
  }

  Error DoDeliver(const MailId& id, std::string_view body,
                  std::span<const std::string> mailboxes) override {
    if (mailboxes.empty()) return util::InvalidArgument("no mailboxes");
    stats_.bytes_logical += body.size() * mailboxes.size();
    // Monotonic name prefix keeps ReadMailbox in delivery order.
    const std::string fname = SeqName(id);
    for (const std::string& box : mailboxes) {
      SAMS_RETURN_IF_ERROR(EnsureMaildir(box));
      const std::string tmp = root_ + "/" + box + "/tmp/" + fname;
      const std::string dst = root_ + "/" + box + "/new/" + fname;
      {
        UniqueFd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0600));
        if (!fd.valid()) return util::IoError(Errno("open", tmp));
        ++stats_.files_created;
        SAMS_RETURN_IF_ERROR(util::WriteAll(fd.get(), body.data(), body.size()));
        stats_.bytes_written += body.size();
        if (opts_.fsync_each_mail) {
          if (::fsync(fd.get()) != 0) return util::IoError(Errno("fsync", tmp));
          ++stats_.fsyncs;
        }
      }
      if (::rename(tmp.c_str(), dst.c_str()) != 0) {
        return util::IoError(Errno("rename", tmp));
      }
      if (opts_.group_commit) {
        // One fsync per mail file is unavoidable in this layout, but
        // the directory entries batch: one dir fsync covers every
        // rename into that maildir since the last flush.
        dirty_files_.insert(dst);
        dirty_dirs_.insert(root_ + "/" + box + "/new");
      }
      ++stats_.mailbox_deliveries;
    }
    ++stats_.mails_delivered;
    return util::OkError();
  }

  Result<int> SyncDirty() override {
    int fsyncs = 0;
    SAMS_RETURN_IF_ERROR(SyncPathSet(dirty_files_, fsyncs));
    SAMS_RETURN_IF_ERROR(SyncPathSet(dirty_dirs_, fsyncs));
    return fsyncs;
  }

  Result<std::vector<std::string>> ReadMailbox(const std::string& box) override {
    const std::string dir = root_ + "/" + box + "/new";
    auto names = ListDirSorted(dir);
    if (!names.ok()) return names.error();
    std::vector<std::string> mails;
    for (const std::string& name : *names) {
      auto body = ReadWholeFile(dir + "/" + name);
      if (!body.ok()) return body.error();
      mails.push_back(std::move(body).value());
    }
    return mails;
  }

  Error Sync() override {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    auto synced = SyncDirty();
    if (!synced.ok()) return synced.error();
    stats_.fsyncs += static_cast<std::uint64_t>(*synced);
    return util::OkError();
  }

 protected:
  std::string SeqName(const MailId& id) {
    char prefix[24];
    std::snprintf(prefix, sizeof(prefix), "%012llu.",
                  static_cast<unsigned long long>(seq_++));
    return prefix + id.str();
  }

  std::string root_;
  std::uint64_t seq_ = 0;
  std::unordered_set<std::string> dirty_files_;
  std::unordered_set<std::string> dirty_dirs_;
};

// --- hard-link maildir --------------------------------------------------

class HardlinkMaildirStore final : public MailStore {
 public:
  HardlinkMaildirStore(std::string root, StoreOptions opts)
      : MailStore(opts), root_(std::move(root)) {}
  ~HardlinkMaildirStore() override { StopCommitter(); }

  std::string_view name() const override { return "hardlink"; }

  Error HealthCheck() override { return CheckWritableDir(root_); }

  Error DoDeliver(const MailId& id, std::string_view body,
                  std::span<const std::string> mailboxes) override {
    if (mailboxes.empty()) return util::InvalidArgument("no mailboxes");
    stats_.bytes_logical += body.size() * mailboxes.size();
    const std::string fname = SeqName(id);
    // One physical copy in the hidden queue directory...
    const std::string master = root_ + "/.queue/" + fname;
    {
      UniqueFd fd(::open(master.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0600));
      if (!fd.valid()) return util::IoError(Errno("open", master));
      ++stats_.files_created;
      SAMS_RETURN_IF_ERROR(util::WriteAll(fd.get(), body.data(), body.size()));
      stats_.bytes_written += body.size();
      if (opts_.fsync_each_mail) {
        if (::fsync(fd.get()) != 0) return util::IoError(Errno("fsync", master));
        ++stats_.fsyncs;
      }
    }
    // ...hard-linked into every recipient's new/.
    bool content_tracked = false;
    for (const std::string& box : mailboxes) {
      const std::string base = root_ + "/" + box;
      SAMS_RETURN_IF_ERROR(EnsureDir(base));
      SAMS_RETURN_IF_ERROR(EnsureDir(base + "/new"));
      const std::string dst = base + "/new/" + fname;
      if (::link(master.c_str(), dst.c_str()) != 0) {
        return util::IoError(Errno("link", dst));
      }
      if (opts_.group_commit) {
        // The master path is unlinked below; any one link reaches the
        // shared inode for the content fsync.
        if (!content_tracked) {
          dirty_files_.insert(dst);
          content_tracked = true;
        }
        dirty_dirs_.insert(base + "/new");
      }
      ++stats_.hard_links;
      ++stats_.mailbox_deliveries;
    }
    // Drop the queue reference; the per-mailbox links keep the inode.
    if (::unlink(master.c_str()) != 0) {
      return util::IoError(Errno("unlink", master));
    }
    ++stats_.mails_delivered;
    return util::OkError();
  }

  Result<int> SyncDirty() override {
    int fsyncs = 0;
    SAMS_RETURN_IF_ERROR(SyncPathSet(dirty_files_, fsyncs));
    SAMS_RETURN_IF_ERROR(SyncPathSet(dirty_dirs_, fsyncs));
    return fsyncs;
  }

  Result<std::vector<std::string>> ReadMailbox(const std::string& box) override {
    const std::string dir = root_ + "/" + box + "/new";
    auto names = ListDirSorted(dir);
    if (!names.ok()) return names.error();
    std::vector<std::string> mails;
    for (const std::string& name : *names) {
      auto body = ReadWholeFile(dir + "/" + name);
      if (!body.ok()) return body.error();
      mails.push_back(std::move(body).value());
    }
    return mails;
  }

  Error Sync() override {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    auto synced = SyncDirty();
    if (!synced.ok()) return synced.error();
    stats_.fsyncs += static_cast<std::uint64_t>(*synced);
    return util::OkError();
  }

 private:
  std::string SeqName(const MailId& id) {
    char prefix[24];
    std::snprintf(prefix, sizeof(prefix), "%012llu.",
                  static_cast<unsigned long long>(seq_++));
    return prefix + id.str();
  }

  std::string root_;
  std::uint64_t seq_ = 0;
  std::unordered_set<std::string> dirty_files_;
  std::unordered_set<std::string> dirty_dirs_;
};

// --- MFS ----------------------------------------------------------------

class MfsStore final : public MailStore {
 public:
  MfsStore(std::unique_ptr<MfsVolume> volume, StoreOptions opts)
      : MailStore(opts), volume_(std::move(volume)) {}
  ~MfsStore() override { StopCommitter(); }

  std::string_view name() const override { return "mfs"; }

  Error HealthCheck() override { return CheckWritableDir(volume_->root()); }

  Error DoDeliver(const MailId& id, std::string_view body,
                  std::span<const std::string> mailboxes) override {
    if (mailboxes.empty()) return util::InvalidArgument("no mailboxes");
    stats_.bytes_logical += body.size() * mailboxes.size();
    std::vector<std::unique_ptr<MailFile>> handles;
    std::vector<MailFile*> raw;
    handles.reserve(mailboxes.size());
    for (const std::string& box : mailboxes) {
      auto h = volume_->MailOpen(box);
      if (!h.ok()) return h.error();
      raw.push_back(h->get());
      handles.push_back(std::move(h).value());
    }
    SAMS_RETURN_IF_ERROR(volume_->MailNWrite(raw, body, id));
    stats_.bytes_written += body.size();  // single copy regardless of n
    stats_.mailbox_deliveries += mailboxes.size();
    ++stats_.mails_delivered;
    if (opts_.fsync_each_mail) {
      // The volume tracks what this write dirtied; count the actual
      // fsync(2) calls rather than a flat 1.
      auto synced = volume_->SyncDirty();
      if (!synced.ok()) return synced.error();
      stats_.fsyncs += static_cast<std::uint64_t>(*synced);
    }
    for (auto& h : handles) volume_->MailClose(std::move(h));
    return util::OkError();
  }

  Error DoDeliverParts(const MailId& id,
                       std::span<const std::string_view> parts,
                       std::span<const std::string> mailboxes) override {
    // Same shape as DoDeliver, but the body spans go into the data
    // file as one vectored write — no flatten on the trusted path.
    if (mailboxes.empty()) return util::InvalidArgument("no mailboxes");
    std::size_t body_bytes = 0;
    for (const std::string_view part : parts) body_bytes += part.size();
    stats_.bytes_logical += body_bytes * mailboxes.size();
    std::vector<std::unique_ptr<MailFile>> handles;
    std::vector<MailFile*> raw;
    handles.reserve(mailboxes.size());
    for (const std::string& box : mailboxes) {
      auto h = volume_->MailOpen(box);
      if (!h.ok()) return h.error();
      raw.push_back(h->get());
      handles.push_back(std::move(h).value());
    }
    SAMS_RETURN_IF_ERROR(volume_->MailNWriteParts(raw, parts, id));
    stats_.bytes_written += body_bytes;  // single copy regardless of n
    stats_.mailbox_deliveries += mailboxes.size();
    ++stats_.mails_delivered;
    if (opts_.fsync_each_mail) {
      auto synced = volume_->SyncDirty();
      if (!synced.ok()) return synced.error();
      stats_.fsyncs += static_cast<std::uint64_t>(*synced);
    }
    for (auto& h : handles) volume_->MailClose(std::move(h));
    return util::OkError();
  }

  Result<int> SyncDirty() override { return volume_->SyncDirty(); }

  Result<std::vector<std::string>> ReadMailbox(const std::string& box) override {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    auto h = volume_->MailOpen(box);
    if (!h.ok()) return h.error();
    std::vector<std::string> mails;
    for (;;) {
      auto mail = volume_->MailRead(**h);
      if (!mail.ok()) {
        if (mail.error().code() == util::ErrorCode::kOutOfRange) break;
        return mail.error();
      }
      mails.push_back(std::move(mail->body));
    }
    volume_->MailClose(std::move(*h));
    return mails;
  }

  Error Sync() override {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    return volume_->SyncAll();
  }

  void BindBackendMetrics(obs::Registry& registry,
                          const obs::Labels& layout) override {
    auto* hits = &registry.GetCounter("sams_mfs_fd_cache_hits_total",
                                      "mailbox fd cache hits", layout);
    auto* misses = &registry.GetCounter(
        "sams_mfs_fd_cache_misses_total",
        "mailbox fd cache misses (paid open())", layout);
    auto* evictions = &registry.GetCounter(
        "sams_mfs_fd_cache_evictions_total",
        "mailboxes closed by the LRU bound", layout);
    registry.AddCollector([this, hits, misses, evictions] {
      const VolumeStats& vs = volume_->stats();
      hits->Overwrite(vs.fd_cache_hits);
      misses->Overwrite(vs.fd_cache_misses);
      evictions->Overwrite(vs.fd_cache_evictions);
    });
  }

  MfsVolume& volume() { return *volume_; }

 private:
  std::unique_ptr<MfsVolume> volume_;
};

}  // namespace

MailStore::MailStore(StoreOptions opts) : opts_(opts) {
  if (opts_.group_commit) {
    committer_ = std::make_unique<GroupCommitter>(
        [this]() -> Result<int> {
          std::lock_guard<std::mutex> lk(deliver_mutex_);
          auto synced = SyncDirty();
          if (synced.ok()) {
            stats_.fsyncs += static_cast<std::uint64_t>(*synced);
          }
          return synced;
        },
        opts_.commit);
  }
}

Error MailStore::Deliver(const MailId& id, std::string_view body,
                         std::span<const std::string> mailboxes) {
  {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    SAMS_RETURN_IF_ERROR(DoDeliver(id, body, mailboxes));
  }
  // Writes staged; now block until a flush round makes them durable.
  if (committer_ != nullptr) return committer_->Commit();
  return util::OkError();
}

Error MailStore::StageDelivery(const MailId& id, std::string_view body,
                               std::span<const std::string> mailboxes) {
  std::lock_guard<std::mutex> lk(deliver_mutex_);
  return DoDeliver(id, body, mailboxes);
}

Error MailStore::DeliverParts(const MailId& id,
                              std::span<const std::string_view> parts,
                              std::span<const std::string> mailboxes) {
  {
    std::lock_guard<std::mutex> lk(deliver_mutex_);
    SAMS_RETURN_IF_ERROR(DoDeliverParts(id, parts, mailboxes));
  }
  if (committer_ != nullptr) return committer_->Commit();
  return util::OkError();
}

Error MailStore::DoDeliverParts(const MailId& id,
                                std::span<const std::string_view> parts,
                                std::span<const std::string> mailboxes) {
  std::size_t total = 0;
  for (const std::string_view part : parts) total += part.size();
  std::string flat;
  flat.reserve(total);
  for (const std::string_view part : parts) flat.append(part);
  return DoDeliver(id, flat, mailboxes);
}

Error MailStore::Commit() {
  if (committer_ != nullptr) return committer_->Commit();
  return Sync();
}

void MailStore::BindBackendMetrics(obs::Registry&, const obs::Labels&) {}

void MailStore::BindMetrics(obs::Registry& registry) {
  const obs::Labels layout = {{"layout", std::string(name())}};
  auto* mails = &registry.GetCounter("sams_mfs_mails_delivered_total",
                                     "mails made durable", layout);
  auto* mailbox = &registry.GetCounter("sams_mfs_mailbox_deliveries_total",
                                       "mailbox writes (mail x recipient)",
                                       layout);
  auto* physical = &registry.GetCounter(
      "sams_mfs_bytes_physical_total",
      "body bytes physically written (single-copy savings = logical - "
      "physical)",
      layout);
  auto* logical = &registry.GetCounter(
      "sams_mfs_bytes_logical_total",
      "body bytes logically delivered (size x recipients)", layout);
  auto* creates = &registry.GetCounter("sams_mfs_files_created_total",
                                       "mail files created", layout);
  auto* links = &registry.GetCounter("sams_mfs_hard_links_total",
                                     "recipient hard links", layout);
  auto* fsyncs = &registry.GetCounter("sams_mfs_fsyncs_total",
                                      "fsync(2) calls issued", layout);
  auto* per_mail = &registry.GetGauge(
      "sams_mfs_fsyncs_per_mail",
      "fsync(2) calls divided by mails delivered (group commit drives "
      "this below 1)",
      layout);
  registry.AddCollector([this, mails, mailbox, physical, logical, creates,
                         links, fsyncs, per_mail] {
    mails->Overwrite(stats_.mails_delivered);
    mailbox->Overwrite(stats_.mailbox_deliveries);
    physical->Overwrite(stats_.bytes_written);
    logical->Overwrite(stats_.bytes_logical);
    creates->Overwrite(stats_.files_created);
    links->Overwrite(stats_.hard_links);
    fsyncs->Overwrite(stats_.fsyncs);
    per_mail->Set(stats_.mails_delivered == 0
                      ? 0.0
                      : static_cast<double>(stats_.fsyncs) /
                            static_cast<double>(stats_.mails_delivered));
  });
  if (committer_ != nullptr) committer_->BindMetrics(registry, layout);
  BindBackendMetrics(registry, layout);
}

Result<std::unique_ptr<MailStore>> MakeMboxStore(const std::string& root,
                                                 StoreOptions opts) {
  SAMS_RETURN_IF_ERROR(EnsureDir(root));
  return std::unique_ptr<MailStore>(new MboxStore(root, opts));
}

Result<std::unique_ptr<MailStore>> MakeMaildirStore(const std::string& root,
                                                    StoreOptions opts) {
  SAMS_RETURN_IF_ERROR(EnsureDir(root));
  return std::unique_ptr<MailStore>(new MaildirStore(root, opts));
}

Result<std::unique_ptr<MailStore>> MakeHardlinkMaildirStore(
    const std::string& root, StoreOptions opts) {
  SAMS_RETURN_IF_ERROR(EnsureDir(root));
  SAMS_RETURN_IF_ERROR(EnsureDir(root + "/.queue"));
  return std::unique_ptr<MailStore>(new HardlinkMaildirStore(root, opts));
}

Result<std::unique_ptr<MailStore>> MakeMfsStore(const std::string& root,
                                                StoreOptions opts) {
  auto volume = MfsVolume::Open(root, opts.volume);
  if (!volume.ok()) return volume.error();
  return std::unique_ptr<MailStore>(
      new MfsStore(std::move(volume).value(), opts));
}

}  // namespace sams::mfs
