#include "mfs/volume.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_set>

#include "fault/injector.h"
#include "util/logging.h"

namespace sams::mfs {
namespace {

using util::Error;
using util::Result;

Error EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0700) == 0 || errno == EEXIST) return util::OkError();
  return util::IoError("mkdir " + path + ": " + std::strerror(errno));
}

bool ValidMailboxName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_' ||
                    c == '@' || c == '+';
    if (!ok) return false;
  }
  // Forbid collision with the hidden shared mailbox and path tricks.
  return name != "shared" && name.find("..") == std::string::npos;
}

// fsync through a fresh descriptor — used for mailboxes whose cached
// fds were evicted. fsync flushes the file's dirty pages regardless of
// which descriptor issued the earlier writes.
Error FsyncPath(const std::string& path) {
  util::UniqueFd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.valid()) return util::IoError("open " + path + ": " + std::strerror(errno));
  if (::fsync(fd.get()) != 0) {
    return util::IoError("fsync " + path + ": " + std::strerror(errno));
  }
  return util::OkError();
}

}  // namespace

std::string MfsVolume::BoxKeyPath(const std::string& name) const {
  return root_ + "/boxes/" + name + ".key";
}

std::string MfsVolume::BoxDataPath(const std::string& name) const {
  return root_ + "/boxes/" + name + ".dat";
}

Result<std::unique_ptr<MfsVolume>> MfsVolume::Open(const std::string& root) {
  return Open(root, VolumeOptions{});
}

Result<std::unique_ptr<MfsVolume>> MfsVolume::Open(const std::string& root,
                                                   VolumeOptions opts) {
  // LoadBox never evicts the entry it just inserted, so even a bound
  // of 1 is pointer-safe; clamp anyway so delivery + read interleave
  // doesn't degenerate to open()-per-call.
  opts.max_open_boxes = std::max<std::size_t>(opts.max_open_boxes, 2);
  SAMS_RETURN_IF_ERROR(EnsureDir(root));
  SAMS_RETURN_IF_ERROR(EnsureDir(root + "/boxes"));
  std::unique_ptr<MfsVolume> vol(new MfsVolume(root, opts));

  auto shared_key = KeyFile::Open(root + "/shared.key");
  if (!shared_key.ok()) return shared_key.error();
  vol->shared_.key = std::move(shared_key).value();
  auto shared_data = DataFile::Open(root + "/shared.dat");
  if (!shared_data.ok()) return shared_data.error();
  vol->shared_.data = std::move(shared_data).value();

  for (std::size_t i = 0; i < vol->shared_.key.size(); ++i) {
    const KeyRecord& rec = vol->shared_.key.at(i);
    if (!rec.IsTombstone()) vol->shared_index_.emplace(rec.id, i);
  }
  return vol;
}

MfsVolume::~MfsVolume() = default;

Result<MfsVolume::Box*> MfsVolume::LoadBox(const std::string& name) {
  auto it = boxes_.find(name);
  if (it != boxes_.end()) {
    ++stats_.fd_cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second->lru_it);
    return it->second.get();
  }
  ++stats_.fd_cache_misses;
  auto box = std::make_unique<Box>();
  auto key = KeyFile::Open(BoxKeyPath(name));
  if (!key.ok()) return key.error();
  box->key = std::move(key).value();
  auto data = DataFile::Open(BoxDataPath(name));
  if (!data.ok()) return data.error();
  box->data = std::move(data).value();
  lru_.push_front(name);
  box->lru_it = lru_.begin();
  Box* raw = box.get();
  boxes_.emplace(name, std::move(box));
  while (boxes_.size() > opts_.max_open_boxes) {
    const std::string victim = lru_.back();
    if (victim == name) break;  // never evict the box being returned
    lru_.pop_back();
    boxes_.erase(victim);  // closes both fds; dirty_boxes_ keeps any
                           // durability debt for SyncDirty/SyncAll
    ++stats_.fd_cache_evictions;
  }
  return raw;
}

Result<std::unique_ptr<MailFile>> MfsVolume::MailOpen(const std::string& name,
                                                      const std::string& mode) {
  if (!ValidMailboxName(name)) {
    return util::InvalidArgument("invalid mailbox name: " + name);
  }
  if (mode != "r" && mode != "w" && mode != "rw") {
    return util::InvalidArgument("invalid open mode: " + mode);
  }
  auto box = LoadBox(name);
  if (!box.ok()) return box.error();
  return std::unique_ptr<MailFile>(new MailFile(this, name));
}

util::Error MfsVolume::MailSeek(MailFile& mfd, std::int64_t offset,
                                Whence whence) {
  auto box = LoadBox(mfd.name_);
  if (!box.ok()) return box.error();
  std::int64_t live = 0;
  for (const KeyRecord& rec : (*box)->key.records()) {
    if (!rec.IsTombstone()) ++live;
  }
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = static_cast<std::int64_t>(mfd.position_); break;
    case Whence::kEnd: base = live; break;
  }
  const std::int64_t target = base + offset;
  if (target < 0 || target > live) {
    return util::OutOfRange("seek beyond mailbox bounds");
  }
  mfd.position_ = static_cast<std::size_t>(target);
  return util::OkError();
}

util::Error MfsVolume::MailNWrite(std::span<MailFile* const> boxes,
                                  std::string_view body, const MailId& id) {
  const std::string_view parts[1] = {body};
  return MailNWriteParts(boxes, parts, id);
}

util::Error MfsVolume::MailNWriteParts(std::span<MailFile* const> boxes,
                                       std::span<const std::string_view> parts,
                                       const MailId& id) {
  if (boxes.empty()) return util::InvalidArgument("nwrite with no mailboxes");
  if (id.empty()) return util::InvalidArgument("nwrite with empty mail id");
  for (MailFile* mfd : boxes) {
    if (mfd == nullptr || mfd->volume_ != this) {
      return util::InvalidArgument("nwrite with foreign mail_file handle");
    }
  }
  ++stats_.nwrites;

  if (boxes.size() == 1) {
    // Single recipient: the mail is private to this mailbox (Fig. 9).
    auto box = LoadBox(boxes[0]->name_);
    if (!box.ok()) return box.error();
    if ((*box)->key.Find(id) != KeyFile::npos) {
      ++stats_.collisions_rejected;
      return util::AlreadyExists("mail id already present in mailbox");
    }
    auto offset = (*box)->data.AppendParts(parts);
    if (!offset.ok()) return offset.error();
    MarkDirty(boxes[0]->name_);
    SAMS_FAULT_POINT("mfs.nwrite.private.after_data");
    auto idx = (*box)->key.Append(KeyRecord{id, *offset, 1});
    if (!idx.ok()) return idx.error();
    ++stats_.private_writes;
    return util::OkError();
  }

  // Multi-recipient: one copy in the shared mailbox. A colliding id is
  // the §6.4 random-guessing attack — reject before touching disk.
  if (shared_index_.contains(id)) {
    ++stats_.collisions_rejected;
    return util::AlreadyExists("mail id already present in shared mailbox");
  }
  // Reject duplicate handles for the same mailbox (would double-count
  // the refcount).
  std::unordered_set<std::string> names;
  for (MailFile* mfd : boxes) {
    if (!names.insert(mfd->name_).second) {
      return util::InvalidArgument("duplicate recipient mailbox: " + mfd->name_);
    }
  }

  // Crash-safe ordering: payload, then the recipients' redirects, then
  // the shared key record LAST. The shared record is the commit point —
  // a crash before it leaves only dangling redirects, which Recover()
  // rolls back; a crash after it leaves a fully delivered mail.
  auto offset = shared_.data.AppendParts(parts);
  if (!offset.ok()) return offset.error();
  shared_dirty_ = true;
  SAMS_FAULT_POINT("mfs.nwrite.shared.after_data");

  for (MailFile* mfd : boxes) {
    auto box = LoadBox(mfd->name_);
    if (!box.ok()) return box.error();
    auto idx = (*box)->key.Append(KeyRecord{id, *offset, -1});
    if (!idx.ok()) return idx.error();
    MarkDirty(mfd->name_);
    ++stats_.redirects_written;
    SAMS_FAULT_POINT("mfs.nwrite.shared.mid_redirects");
  }

  SAMS_FAULT_POINT("mfs.nwrite.shared.before_commit");
  auto shared_idx = shared_.key.Append(
      KeyRecord{id, *offset, static_cast<std::int32_t>(boxes.size())});
  if (!shared_idx.ok()) return shared_idx.error();
  shared_index_.emplace(id, *shared_idx);
  ++stats_.shared_writes;
  std::size_t body_bytes = 0;
  for (const std::string_view part : parts) body_bytes += part.size();
  stats_.bytes_deduplicated +=
      static_cast<std::uint64_t>(body_bytes) * (boxes.size() - 1);
  return util::OkError();
}

Result<MailReadResult> MfsVolume::MailRead(MailFile& mfd) {
  auto box = LoadBox(mfd.name_);
  if (!box.ok()) return box.error();
  // Locate the position_-th live record.
  std::size_t live = 0;
  const KeyRecord* found = nullptr;
  for (const KeyRecord& rec : (*box)->key.records()) {
    if (rec.IsTombstone()) continue;
    if (live == mfd.position_) {
      found = &rec;
      break;
    }
    ++live;
  }
  if (found == nullptr) return util::OutOfRange("end of mailbox");

  MailReadResult result;
  result.id = found->id;
  result.shared = found->IsRedirect();
  if (found->IsRedirect()) {
    // Permission check: a redirect is only honored if it was installed
    // in this mailbox's own key file (it was — we just read it there)
    // AND the shared record still exists.
    auto it = shared_index_.find(found->id);
    if (it == shared_index_.end()) {
      return util::Corruption("redirect to missing shared record: " +
                              found->id.str());
    }
    auto body = shared_.data.ReadAt(shared_.key.at(it->second).offset);
    if (!body.ok()) return body.error();
    result.body = std::move(body).value();
  } else {
    auto body = (*box)->data.ReadAt(found->offset);
    if (!body.ok()) return body.error();
    result.body = std::move(body).value();
  }
  ++mfd.position_;
  ++stats_.reads;
  return result;
}

util::Error MfsVolume::MailDelete(MailFile& mfd, const MailId& id) {
  auto box = LoadBox(mfd.name_);
  if (!box.ok()) return box.error();
  const std::size_t idx = (*box)->key.Find(id);
  if (idx == KeyFile::npos) {
    return util::NotFound("mail " + id.str() + " not in mailbox " + mfd.name_);
  }
  const KeyRecord rec = (*box)->key.at(idx);
  SAMS_RETURN_IF_ERROR((*box)->key.SetRefcount(idx, 0));  // tombstone
  MarkDirty(mfd.name_);
  SAMS_FAULT_POINT("mfs.delete.after_tombstone");

  if (rec.IsRedirect()) {
    shared_dirty_ = true;
    auto it = shared_index_.find(id);
    if (it == shared_index_.end()) {
      return util::Corruption("redirect to missing shared record: " + id.str());
    }
    const std::size_t shared_idx = it->second;
    const std::int32_t refs = shared_.key.at(shared_idx).refcount;
    SAMS_RETURN_IF_ERROR(shared_.key.SetRefcount(shared_idx, refs - 1));
    if (refs - 1 <= 0) {
      SAMS_RETURN_IF_ERROR(shared_.key.SetRefcount(shared_idx, 0));
      shared_index_.erase(it);
    }
  }
  ++stats_.deletes;
  return util::OkError();
}

void MfsVolume::MailClose(std::unique_ptr<MailFile> mfd) { mfd.reset(); }

Result<std::size_t> MfsVolume::MailCount(const std::string& name) {
  auto box = LoadBox(name);
  if (!box.ok()) return box.error();
  std::size_t live = 0;
  for (const KeyRecord& rec : (*box)->key.records()) {
    if (!rec.IsTombstone()) ++live;
  }
  return live;
}

void MfsVolume::MarkDirty(const std::string& name) {
  dirty_boxes_.insert(name);
}

util::Error MfsVolume::SyncBoxByName(const std::string& name, int& fsyncs) {
  auto it = boxes_.find(name);
  if (it != boxes_.end()) {
    SAMS_RETURN_IF_ERROR(it->second->data.Sync());
    ++fsyncs;
    SAMS_RETURN_IF_ERROR(it->second->key.Sync());
    ++fsyncs;
    return util::OkError();
  }
  // Evicted: the writes are in the page cache under the inode, not the
  // old fd — a fresh descriptor flushes them just the same.
  SAMS_RETURN_IF_ERROR(FsyncPath(BoxDataPath(name)));
  ++fsyncs;
  SAMS_RETURN_IF_ERROR(FsyncPath(BoxKeyPath(name)));
  ++fsyncs;
  return util::OkError();
}

util::Error MfsVolume::SyncAll() {
  int fsyncs = 0;
  SAMS_RETURN_IF_ERROR(shared_.data.Sync());
  ++fsyncs;
  SAMS_RETURN_IF_ERROR(shared_.key.Sync());
  ++fsyncs;
  shared_dirty_ = false;
  for (auto& [name, box] : boxes_) {
    SAMS_RETURN_IF_ERROR(box->data.Sync());
    ++fsyncs;
    SAMS_RETURN_IF_ERROR(box->key.Sync());
    ++fsyncs;
    dirty_boxes_.erase(name);
  }
  // Evicted mailboxes with unsynced writes.
  while (!dirty_boxes_.empty()) {
    const std::string name = *dirty_boxes_.begin();
    auto err = SyncBoxByName(name, fsyncs);
    if (!err.ok()) {
      stats_.fsyncs += static_cast<std::uint64_t>(fsyncs);
      return err;  // stays dirty for the next attempt
    }
    dirty_boxes_.erase(name);
  }
  stats_.fsyncs += static_cast<std::uint64_t>(fsyncs);
  return util::OkError();
}

Result<int> MfsVolume::SyncDirty() {
  int fsyncs = 0;
  if (shared_dirty_) {
    auto sync_shared = [&]() -> Error {
      SAMS_RETURN_IF_ERROR(shared_.data.Sync());
      ++fsyncs;
      SAMS_RETURN_IF_ERROR(shared_.key.Sync());
      ++fsyncs;
      return util::OkError();
    };
    auto err = sync_shared();
    if (!err.ok()) {
      stats_.fsyncs += static_cast<std::uint64_t>(fsyncs);
      return err;  // shared_dirty_ stays set
    }
    shared_dirty_ = false;
  }
  while (!dirty_boxes_.empty()) {
    const std::string name = *dirty_boxes_.begin();
    auto err = SyncBoxByName(name, fsyncs);
    if (!err.ok()) {
      stats_.fsyncs += static_cast<std::uint64_t>(fsyncs);
      return err;  // stays dirty for the next round
    }
    dirty_boxes_.erase(name);
  }
  stats_.fsyncs += static_cast<std::uint64_t>(fsyncs);
  return fsyncs;
}

Result<std::vector<std::string>> MfsVolume::ListMailboxes() const {
  std::vector<std::string> names;
  const std::string dir = root_ + "/boxes";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return util::IoError("opendir " + dir + ": " + std::strerror(errno));
  }
  // readdir returns nullptr for both end-of-directory and failure;
  // only errno distinguishes them. A half-scanned volume must never be
  // reported as clean by fsck/recovery.
  errno = 0;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string fname = ent->d_name;
    constexpr std::string_view kSuffix = ".key";
    if (fname.size() > kSuffix.size() &&
        fname.compare(fname.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      names.push_back(fname.substr(0, fname.size() - kSuffix.size()));
    }
    errno = 0;
  }
  if (errno != 0) {
    const std::string msg = std::strerror(errno);
    ::closedir(d);
    return util::IoError("readdir " + dir + ": " + msg);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Result<FsckReport> MfsVolume::Fsck() {
  FsckReport report;
  auto names = ListMailboxes();
  if (!names.ok()) return names.error();

  // Expected shared refcounts recomputed from redirect tuples.
  std::unordered_map<MailId, std::int32_t> redirect_counts;

  for (const std::string& name : *names) {
    ++report.mailboxes;
    auto box = LoadBox(name);
    if (!box.ok()) return box.error();
    std::unordered_set<MailId> seen;
    for (const KeyRecord& rec : (*box)->key.records()) {
      if (rec.IsTombstone()) continue;
      ++report.live_records;
      if (!seen.insert(rec.id).second) {
        report.errors.push_back("duplicate id " + rec.id.str() + " in " + name);
      }
      if (rec.IsRedirect()) {
        ++redirect_counts[rec.id];
        if (!shared_index_.contains(rec.id)) {
          report.errors.push_back("dangling redirect " + rec.id.str() + " in " +
                                  name);
        }
      } else {
        auto body = (*box)->data.ReadAt(rec.offset);
        if (!body.ok()) {
          report.errors.push_back("unreadable record " + rec.id.str() + " in " +
                                  name + ": " + body.error().ToString());
        }
      }
    }
  }

  for (const auto& [id, idx] : shared_index_) {
    const KeyRecord& rec = shared_.key.at(idx);
    ++report.shared_records;
    const std::int32_t expected = rec.refcount;
    const std::int32_t actual =
        redirect_counts.contains(id) ? redirect_counts.at(id) : 0;
    if (expected != actual) {
      report.errors.push_back("shared record " + id.str() + " refcount " +
                              std::to_string(expected) + " but " +
                              std::to_string(actual) + " redirects exist");
    }
    auto body = shared_.data.ReadAt(rec.offset);
    if (!body.ok()) {
      report.errors.push_back("unreadable shared record " + id.str());
    }
  }
  // Redirects pointing at ids absent from the shared index were already
  // flagged as dangling above.
  return report;
}

Result<RecoverReport> MfsVolume::Recover() {
  // DataFile record = 4-byte length prefix + payload.
  constexpr std::int64_t kDataHeader = 4;
  RecoverReport report;
  auto names = ListMailboxes();
  if (!names.ok()) return names.error();

  // Pass 1: private mailboxes. Tombstone redirects that never got a
  // shared commit record (torn nwrite) and duplicates from a retry that
  // ran before recovery; census the survivors for refcount repair.
  std::unordered_map<MailId, std::int32_t> redirect_counts;
  for (const std::string& name : *names) {
    auto box_r = LoadBox(name);
    if (!box_r.ok()) return box_r.error();
    Box* box = *box_r;
    std::unordered_set<MailId> seen;
    std::int64_t referenced = 0;
    for (std::size_t i = 0; i < box->key.size(); ++i) {
      const KeyRecord& rec = box->key.at(i);
      if (rec.IsTombstone()) continue;
      if (rec.IsRedirect()) {
        if (!shared_index_.contains(rec.id)) {
          SAMS_RETURN_IF_ERROR(box->key.SetRefcount(i, 0));
          ++report.dangling_redirects_tombstoned;
          continue;
        }
        if (!seen.insert(rec.id).second) {
          SAMS_RETURN_IF_ERROR(box->key.SetRefcount(i, 0));
          ++report.duplicate_redirects_tombstoned;
          continue;
        }
        ++redirect_counts[rec.id];
      } else {
        seen.insert(rec.id);
        auto body = box->data.ReadAt(rec.offset);
        if (!body.ok()) return body.error();
        referenced += kDataHeader + static_cast<std::int64_t>(body->size());
      }
    }
    report.orphaned_data_bytes +=
        static_cast<std::uint64_t>(box->data.end_offset() - referenced);
  }

  // Pass 2: shared mailbox. A live record's refcount must equal its
  // live-redirect population; zero redirects means every reference is
  // gone (torn delete or rolled-back nwrite) and the record itself is
  // reclaimed.
  std::vector<MailId> reclaimed;
  std::int64_t shared_referenced = 0;
  for (const auto& [id, idx] : shared_index_) {
    const KeyRecord& rec = shared_.key.at(idx);
    const std::int32_t actual =
        redirect_counts.contains(id) ? redirect_counts.at(id) : 0;
    if (actual == 0) {
      SAMS_RETURN_IF_ERROR(shared_.key.SetRefcount(idx, 0));
      reclaimed.push_back(id);
      ++report.orphaned_shared_reclaimed;
      continue;
    }
    if (actual != rec.refcount) {
      SAMS_RETURN_IF_ERROR(shared_.key.SetRefcount(idx, actual));
      ++report.refcounts_repaired;
    }
    auto body = shared_.data.ReadAt(rec.offset);
    if (!body.ok()) return body.error();
    shared_referenced += kDataHeader + static_cast<std::int64_t>(body->size());
  }
  for (const MailId& id : reclaimed) shared_index_.erase(id);
  report.orphaned_data_bytes += static_cast<std::uint64_t>(
      shared_.data.end_offset() - shared_referenced);

  SAMS_RETURN_IF_ERROR(SyncAll());
  return report;
}

Result<CompactStats> MfsVolume::Compact() {
  CompactStats cstats;
  auto names = ListMailboxes();
  if (!names.ok()) return names.error();

  // --- shared mailbox -------------------------------------------------
  std::vector<KeyRecord> live_shared;
  std::vector<std::string> payloads;
  const std::int64_t old_shared_bytes = shared_.data.end_offset();
  for (const KeyRecord& rec : shared_.key.records()) {
    if (rec.IsTombstone()) {
      ++cstats.shared_records_dropped;
      continue;
    }
    auto body = shared_.data.ReadAt(rec.offset);
    if (!body.ok()) return body.error();
    live_shared.push_back(rec);
    payloads.push_back(std::move(body).value());
  }
  auto new_offsets = shared_.data.Rewrite(root_ + "/shared.dat", payloads);
  if (!new_offsets.ok()) return new_offsets.error();
  for (std::size_t i = 0; i < live_shared.size(); ++i) {
    live_shared[i].offset = (*new_offsets)[i];
  }
  SAMS_RETURN_IF_ERROR(shared_.key.Rewrite(root_ + "/shared.key", live_shared));
  shared_index_.clear();
  std::unordered_map<MailId, std::int64_t> new_shared_offset;
  for (std::size_t i = 0; i < shared_.key.size(); ++i) {
    shared_index_.emplace(shared_.key.at(i).id, i);
    new_shared_offset.emplace(shared_.key.at(i).id, shared_.key.at(i).offset);
  }
  cstats.bytes_reclaimed += static_cast<std::uint64_t>(
      old_shared_bytes - shared_.data.end_offset());

  // --- private mailboxes ----------------------------------------------
  for (const std::string& name : *names) {
    auto box_r = LoadBox(name);
    if (!box_r.ok()) return box_r.error();
    Box* box = *box_r;
    std::vector<KeyRecord> live;
    std::vector<std::string> box_payloads;
    const std::int64_t old_bytes = box->data.end_offset();
    for (const KeyRecord& rec : box->key.records()) {
      if (rec.IsTombstone()) {
        ++cstats.private_records_dropped;
        continue;
      }
      if (rec.IsRedirect()) {
        KeyRecord patched = rec;
        auto it = new_shared_offset.find(rec.id);
        if (it == new_shared_offset.end()) {
          return util::Corruption("compact: dangling redirect " + rec.id.str());
        }
        patched.offset = it->second;
        live.push_back(patched);
        continue;
      }
      auto body = box->data.ReadAt(rec.offset);
      if (!body.ok()) return body.error();
      live.push_back(rec);
      box_payloads.push_back(std::move(body).value());
    }
    auto offs = box->data.Rewrite(BoxDataPath(name), box_payloads);
    if (!offs.ok()) return offs.error();
    std::size_t next_payload = 0;
    for (KeyRecord& rec : live) {
      if (!rec.IsRedirect()) rec.offset = (*offs)[next_payload++];
    }
    SAMS_RETURN_IF_ERROR(box->key.Rewrite(BoxKeyPath(name), std::move(live)));
    cstats.bytes_reclaimed +=
        static_cast<std::uint64_t>(old_bytes - box->data.end_offset());
  }
  return cstats;
}

}  // namespace sams::mfs
