// Simulated-cost twins of the four mailbox store layouts.
//
// Figures 10/11 measure "mails written per second" with the base file
// system being Ext3 or Reiser. The real backends in mfs/store.h run on
// whatever the host kernel provides, so the figure benches instead
// replay each layout's *operation sequence* against a file-system cost
// model (fskit) bound to the simulated disk. The sequences below are
// exactly what the real backends issue:
//
//   mbox     : per recipient: append(body)
//   maildir  : per recipient: create + append(body) + rename
//   hardlink : create + append(body) once, then per recipient: link;
//              finally: delete (queue reference dropped)
//   mfs      : 1 recipient:  append(body) + append(key tuple)
//              n recipients: append(body) + append(shared key tuple)
//                            + n * append(redirect tuple)
//
// Durability: one fsync per delivered mail (group commit batches
// concurrent deliveries, which is what lets throughput scale with the
// number of concurrent smtpd processes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "fskit/sim_fs.h"
#include "obs/metrics.h"

namespace sams::mfs {

class SimMailStore {
 public:
  using Done = std::function<void()>;

  explicit SimMailStore(fskit::SimFs& fs) : fs_(fs) {}
  virtual ~SimMailStore() = default;
  SimMailStore(const SimMailStore&) = delete;
  SimMailStore& operator=(const SimMailStore&) = delete;

  virtual std::string_view name() const = 0;

  // Issues the layout's operations for one mail of `bytes` destined to
  // `nrcpts` mailboxes, then fsyncs; `done` fires when durable.
  // Non-virtual so single-copy accounting (logical vs physical body
  // bytes, shared-mailbox redirects) is uniform across layouts.
  void Deliver(std::uint64_t bytes, int nrcpts, Done done) {
    bytes_logical_ += bytes * static_cast<std::uint64_t>(nrcpts);
    bytes_physical_ +=
        bytes * static_cast<std::uint64_t>(PhysicalCopies(nrcpts));
    if (nrcpts > 1) shared_refs_ += static_cast<std::uint64_t>(nrcpts);
    if (mails_counter_ != nullptr) {
      mails_counter_->Inc();
      logical_counter_->Inc(bytes * static_cast<std::uint64_t>(nrcpts));
      physical_counter_->Inc(bytes *
                             static_cast<std::uint64_t>(PhysicalCopies(nrcpts)));
      if (nrcpts > 1) {
        shared_refs_counter_->Inc(static_cast<std::uint64_t>(nrcpts));
      }
    }
    DoDeliver(bytes, nrcpts, std::move(done));
  }

  // Publishes the layout's delivery counters (labelled layout=name())
  // into `registry`; call once, after construction. The registry must
  // outlive the store.
  void BindMetrics(obs::Registry& registry) {
    const obs::Labels layout = {{"layout", std::string(name())}};
    mails_counter_ = &registry.GetCounter("sams_mfs_mails_delivered_total",
                                          "mails made durable", layout);
    logical_counter_ = &registry.GetCounter(
        "sams_mfs_bytes_logical_total",
        "body bytes logically delivered (size x recipients)", layout);
    physical_counter_ = &registry.GetCounter(
        "sams_mfs_bytes_physical_total",
        "body bytes physically written (single-copy savings = logical - "
        "physical)",
        layout);
    shared_refs_counter_ = &registry.GetCounter(
        "sams_mfs_shared_refs_total",
        "shared-mailbox references (redirect tuples / links / copies) for "
        "multi-recipient mail",
        layout);
    fsyncs_counter_ = &registry.GetCounter(
        "sams_mfs_fsyncs_total",
        "durability barriers issued by the delivery path", layout);
  }

  // CPU the delivery path spends copying the body through write(2):
  // proportional to the *physical* bytes the layout writes — n copies
  // for mbox/maildir, one for hard-link and MFS. This is the CPU half
  // of the duplicated-I/O cost of §4.2.
  virtual util::SimTime DeliveryCpu(std::uint64_t bytes, int nrcpts) const {
    return kWriteCpuPerByte * static_cast<std::int64_t>(
        PhysicalCopies(nrcpts) * bytes);
  }

  // How many times the body hits write(2) for n recipients.
  virtual int PhysicalCopies(int nrcpts) const = 0;

  std::uint64_t mails_delivered() const { return mails_; }
  std::uint64_t bytes_logical() const { return bytes_logical_; }
  std::uint64_t bytes_physical() const { return bytes_physical_; }
  std::uint64_t shared_refs() const { return shared_refs_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

 protected:
  // Layout-specific operation sequence behind the accounting wrapper.
  virtual void DoDeliver(std::uint64_t bytes, int nrcpts, Done done) = 0;

  void Finish(Done done) {
    ++mails_;
    ++fsyncs_;
    if (fsyncs_counter_ != nullptr) fsyncs_counter_->Inc();
    fs_.Fsync(std::move(done));
  }

  // On-disk width of one MFS key tuple (id + offset + refcount).
  static constexpr std::uint64_t kKeyTupleBytes = 44;
  // write(2) path cost per byte (copy_from_user + page-cache insert).
  static constexpr util::SimTime kWriteCpuPerByte = util::SimTime::Nanos(10);

  fskit::SimFs& fs_;
  std::uint64_t mails_ = 0;
  std::uint64_t bytes_logical_ = 0;
  std::uint64_t bytes_physical_ = 0;
  std::uint64_t shared_refs_ = 0;
  std::uint64_t fsyncs_ = 0;

  // Optional observability (null until BindMetrics).
  obs::Counter* mails_counter_ = nullptr;
  obs::Counter* logical_counter_ = nullptr;
  obs::Counter* physical_counter_ = nullptr;
  obs::Counter* shared_refs_counter_ = nullptr;
  obs::Counter* fsyncs_counter_ = nullptr;
};

class SimMboxStore final : public SimMailStore {
 public:
  using SimMailStore::SimMailStore;
  std::string_view name() const override { return "mbox"; }
  int PhysicalCopies(int nrcpts) const override { return nrcpts; }

 protected:
  void DoDeliver(std::uint64_t bytes, int nrcpts, Done done) override {
    for (int i = 0; i < nrcpts; ++i) fs_.Append(bytes);
    Finish(std::move(done));
  }
};

class SimMaildirStore final : public SimMailStore {
 public:
  using SimMailStore::SimMailStore;
  std::string_view name() const override { return "maildir"; }
  int PhysicalCopies(int nrcpts) const override { return nrcpts; }

 protected:
  void DoDeliver(std::uint64_t bytes, int nrcpts, Done done) override {
    for (int i = 0; i < nrcpts; ++i) {
      fs_.CreateFile();
      fs_.Append(bytes);
      fs_.Rename();
    }
    Finish(std::move(done));
  }
};

class SimHardlinkStore final : public SimMailStore {
 public:
  using SimMailStore::SimMailStore;
  std::string_view name() const override { return "hardlink"; }
  int PhysicalCopies(int) const override { return 1; }

 protected:
  void DoDeliver(std::uint64_t bytes, int nrcpts, Done done) override {
    fs_.CreateFile();
    fs_.Append(bytes);
    for (int i = 0; i < nrcpts; ++i) fs_.HardLink();
    fs_.DeleteFile();  // queue reference dropped after linking
    Finish(std::move(done));
  }
};

class SimMfsStore final : public SimMailStore {
 public:
  using SimMailStore::SimMailStore;
  std::string_view name() const override { return "mfs"; }
  int PhysicalCopies(int) const override { return 1; }

 protected:
  void DoDeliver(std::uint64_t bytes, int nrcpts, Done done) override {
    fs_.Append(bytes);            // single body copy (shared or private)
    fs_.Append(kKeyTupleBytes);   // owning key tuple
    if (nrcpts > 1) {
      for (int i = 0; i < nrcpts; ++i) fs_.Append(kKeyTupleBytes);  // redirects
    }
    Finish(std::move(done));
  }
};

std::unique_ptr<SimMailStore> MakeSimStore(std::string_view layout,
                                           fskit::SimFs& fs);

}  // namespace sams::mfs
