// On-disk building blocks of an MFS file (§6.1, Figure 9):
//
//   KeyFile   — the primary "key" file: fixed-width (key, offset,
//               refcount) tuples, append-mostly with in-place refcount
//               updates (pwrite).
//   DataFile  — the companion "data" file: length-prefixed mail
//               records, append-only, random reads by offset.
//
// Both are plain files of the underlying byte-oriented file system —
// the paper deliberately builds MFS as an application-level extension
// rather than a kernel file system.
//
// All writes go through one shared continuation loop (PwritevAll):
// EINTR restarts, short writes resume where the kernel stopped, and a
// record append issues a single vectored syscall for the length prefix
// plus payload (or a whole batch of key tuples).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mfs/mail_id.h"
#include "util/fd.h"
#include "util/result.h"

struct iovec;  // <sys/uio.h>

namespace sams::mfs {

// Upper bound on one data record's payload (a sane max mail size, far
// below the u32 length-prefix ceiling). Larger payloads are rejected
// with kInvalidArgument before any byte is written.
inline constexpr std::size_t kMaxDataRecordBytes = 64u * 1024 * 1024;

// Writes every byte of `iov[0..iovcnt)` at `off`, restarting after
// EINTR and continuing after short writes. errno is only consulted on
// a true failure (ret < 0), never after a short count. The fault point
// "mfs.io.pwritev.short" (any injected error) clamps one iteration to
// a single byte so tests can drive the continuation path. `iov` is
// consumed (entries are advanced in place).
util::Error PwritevAll(int fd, struct iovec* iov, int iovcnt,
                       std::int64_t off, const std::string& path);

// Refcount conventions (paper Figure 9):
//   > 0 : record lives in THIS file's data file; value = remaining refs
//         (1 for a private mailbox record; N in the shared mailbox).
//   -1  : redirect — record lives in the shared mailbox's data file at
//         `offset`.
//    0  : tombstone (deleted, reclaimable by compaction).
struct KeyRecord {
  MailId id;
  std::int64_t offset = 0;
  std::int32_t refcount = 0;

  bool IsRedirect() const { return refcount == -1; }
  bool IsTombstone() const { return refcount == 0; }

  static constexpr std::size_t kWireSize = MailId::kMaxLen + 8 + 4;
};

class KeyFile {
 public:
  KeyFile() = default;
  KeyFile(KeyFile&&) = default;
  KeyFile& operator=(KeyFile&&) = default;

  // Opens (creating if absent) and loads all records into memory.
  static util::Result<KeyFile> Open(const std::string& path);

  // Appends a record; returns its index.
  util::Result<std::size_t> Append(const KeyRecord& record);

  // Appends several records with ONE vectored write; returns the index
  // of the first. All-or-nothing in memory (a failed write appends no
  // record to records_).
  util::Result<std::size_t> AppendBatch(std::span<const KeyRecord> records);

  // In-place refcount update (pwrite at the record's slot).
  util::Error SetRefcount(std::size_t index, std::int32_t refcount);

  // In-place offset update (compaction patches redirect tuples).
  util::Error SetOffset(std::size_t index, std::int64_t offset);

  const std::vector<KeyRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  const KeyRecord& at(std::size_t i) const { return records_[i]; }

  // Index of the first non-tombstone record with this id, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t Find(const MailId& id) const;

  util::Error Sync();

  // Rewrites the file with exactly `records` (compaction support).
  util::Error Rewrite(const std::string& path,
                      std::vector<KeyRecord> new_records);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  util::UniqueFd fd_;
  std::vector<KeyRecord> records_;
};

class DataFile {
 public:
  DataFile() = default;
  DataFile(DataFile&&) = default;
  DataFile& operator=(DataFile&&) = default;

  static util::Result<DataFile> Open(const std::string& path);

  // Appends one record (length prefix + payload in one vectored
  // write); returns the offset to store in a KeyRecord. Payloads over
  // kMaxDataRecordBytes are rejected before anything is written.
  util::Result<std::int64_t> Append(std::string_view payload);

  // Same record format, but the payload is the in-order concatenation
  // of `parts` — the zero-copy DATA path stages its decoded body spans
  // here so pooled receive buffers flow into one vectored write with
  // no intermediate flatten. (PwritevAll clamps to IOV_MAX per
  // syscall, so any number of parts is fine.)
  util::Result<std::int64_t> AppendParts(
      std::span<const std::string_view> parts);

  // Reads the record at `offset`.
  util::Result<std::string> ReadAt(std::int64_t offset) const;

  std::int64_t end_offset() const { return end_; }

  util::Error Sync();

  // Rewrites with the given payloads; returns their new offsets in
  // order (compaction support).
  util::Result<std::vector<std::int64_t>> Rewrite(
      const std::string& path, const std::vector<std::string>& payloads);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  util::UniqueFd fd_;
  std::int64_t end_ = 0;
};

}  // namespace sams::mfs
