#include "mfs/sim_store.h"

#include "util/strings.h"

namespace sams::mfs {

std::unique_ptr<SimMailStore> MakeSimStore(std::string_view layout,
                                           fskit::SimFs& fs) {
  if (util::IEquals(layout, "mbox")) return std::make_unique<SimMboxStore>(fs);
  if (util::IEquals(layout, "maildir")) {
    return std::make_unique<SimMaildirStore>(fs);
  }
  if (util::IEquals(layout, "hardlink")) {
    return std::make_unique<SimHardlinkStore>(fs);
  }
  if (util::IEquals(layout, "mfs")) return std::make_unique<SimMfsStore>(fs);
  return nullptr;
}

}  // namespace sams::mfs
