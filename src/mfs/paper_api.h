// The exact API surface of §6.2, as C-style functions over MfsVolume.
//
// The paper exposes MFS to postfix through mail_open / mail_seek /
// mail_nwrite / mail_read / mail_delete / mail_close. These wrappers
// preserve those signatures (modulo the volume handle, which the
// paper's prototype kept as process-global state) so the examples can
// be read side-by-side with the paper. New C++ code should prefer the
// MfsVolume methods directly.
#pragma once

#include "mfs/volume.h"

namespace sams::mfs {

// Opaque per-open-file handle (the paper's mail_file*).
struct mail_file;

inline constexpr int MFS_SEEK_SET = 0;
inline constexpr int MFS_SEEK_CUR = 1;
inline constexpr int MFS_SEEK_END = 2;

// Return codes: 0 success, -1 failure (inspect mfs_last_error()), and
// for mail_read, +1 means "buffer filled, more bytes of this mail
// remain — call again".
inline constexpr int MFS_OK = 0;
inline constexpr int MFS_ERR = -1;
inline constexpr int MFS_MORE = 1;

// mail_open: opens `filename` as an MFS mailbox in `vol`; creates the
// proper mailbox_key and mailbox_data files if absent; seek pointer at
// the first mail. Returns nullptr on failure.
mail_file* mail_open(MfsVolume* vol, const char* filename, const char* mode);

// mail_seek: seek at mail granularity.
int mail_seek(mail_file* mfd, int offset, int whence);

// mail_nwrite: writes one mail to the nmfd mailboxes in `mfd`.
int mail_nwrite(mail_file** mfd, int nmfd, const char* buf,
                const char* mail_id, int buf_len, int mail_id_len);

// mail_read: reads the next mail at the seek pointer. On input,
// *buf_len / *mail_id_len give the buffer capacities; on output they
// hold the byte counts written. Returns MFS_MORE while the mail has
// bytes beyond the buffer (call again to continue), MFS_OK when the
// mail completed, MFS_ERR at end-of-mailbox or on error.
int mail_read(mail_file* mfd, char* buf, char* mail_id, int* buf_len,
              int* mail_id_len);

// mail_delete: removes the mail with the given id from this mailbox.
int mail_delete(mail_file* mfd, const char* mail_id, int mail_id_len);

// mail_close: releases the handle.
int mail_close(mail_file* mfd);

// Last error message from an MFS_ERR return on this thread.
const char* mfs_last_error();

}  // namespace sams::mfs
