// MfsVolume — the Mail File System of §6, as a user-space library over
// a conventional byte-oriented file system (exactly how the paper's
// prototype was built and evaluated).
//
// Layout under the volume root:
//   boxes/<mailbox>.key / boxes/<mailbox>.dat   — per-user MFS files
//   shared.key / shared.dat                     — the hidden shared
//                                                 mailbox (multi-
//                                                 recipient mails)
//
// Single-recipient mails append to the recipient's data file with a
// (id, offset, 1) key tuple. Multi-recipient mails append ONCE to the
// shared data file with (id, offset, n_recipients) in shared.key, and
// each recipient's key file gets a redirect tuple (id, offset, -1).
// Deleting a shared mail decrements the shared refcount; compaction
// reclaims zero-ref records. The shared files are only reachable
// through this API (the paper proposes kernel residence for the same
// hiding property).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mfs/mail_id.h"
#include "mfs/record_io.h"
#include "util/result.h"
#include "util/rng.h"

namespace sams::mfs {

class MfsVolume;

// An open MFS mail file (the paper's mail_file* / mfd). Holds a seek
// pointer at mail granularity. Obtained from MfsVolume::MailOpen.
class MailFile {
 public:
  const std::string& name() const { return name_; }
  // Seek position counted in live (non-deleted) mails.
  std::size_t position() const { return position_; }

 private:
  friend class MfsVolume;
  MailFile(MfsVolume* volume, std::string name)
      : volume_(volume), name_(std::move(name)) {}
  MfsVolume* volume_;
  std::string name_;
  std::size_t position_ = 0;
};

enum class Whence { kSet, kCur, kEnd };  // mail_seek whence (§6.2)

struct MailReadResult {
  MailId id;
  std::string body;
  bool shared = false;  // came from the shared mailbox
};

struct VolumeStats {
  std::uint64_t nwrites = 0;
  std::uint64_t shared_writes = 0;   // multi-recipient mails stored once
  std::uint64_t private_writes = 0;  // single-recipient mails
  std::uint64_t redirects_written = 0;
  std::uint64_t bytes_deduplicated = 0;  // body bytes NOT rewritten
  std::uint64_t reads = 0;
  std::uint64_t deletes = 0;
  std::uint64_t collisions_rejected = 0;  // §6.4 attack detections
  std::uint64_t fd_cache_hits = 0;        // LoadBox served from cache
  std::uint64_t fd_cache_misses = 0;      // LoadBox paid open()
  std::uint64_t fd_cache_evictions = 0;   // LRU closed a mailbox
  std::uint64_t fsyncs = 0;               // fsync(2) calls issued
};

struct VolumeOptions {
  // Upper bound on cached open mailboxes (each holds 2 fds). The
  // least-recently-used mailbox is closed when the bound is exceeded;
  // the just-loaded mailbox is never the victim. Unsynced writes in an
  // evicted mailbox stay tracked and are fsynced by SyncDirty/SyncAll
  // through a fresh fd (fsync flushes the inode, not the descriptor).
  std::size_t max_open_boxes = 128;
};

struct FsckReport {
  std::uint64_t mailboxes = 0;
  std::uint64_t live_records = 0;
  std::uint64_t shared_records = 0;
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
};

struct CompactStats {
  std::uint64_t shared_records_dropped = 0;
  std::uint64_t private_records_dropped = 0;
  std::uint64_t bytes_reclaimed = 0;
};

struct RecoverReport {
  std::uint64_t dangling_redirects_tombstoned = 0;  // torn shared nwrite
  std::uint64_t duplicate_redirects_tombstoned = 0; // retry before recovery
  std::uint64_t refcounts_repaired = 0;             // torn shared delete
  std::uint64_t orphaned_shared_reclaimed = 0;      // zero-redirect records
  std::uint64_t orphaned_data_bytes = 0;            // Compact() reclaims
  bool clean() const {
    return dangling_redirects_tombstoned == 0 &&
           duplicate_redirects_tombstoned == 0 && refcounts_repaired == 0 &&
           orphaned_shared_reclaimed == 0;
  }
};

class MfsVolume {
 public:
  // Opens (creating if needed) a volume rooted at `root`.
  static util::Result<std::unique_ptr<MfsVolume>> Open(const std::string& root);
  static util::Result<std::unique_ptr<MfsVolume>> Open(const std::string& root,
                                                       VolumeOptions opts);

  ~MfsVolume();
  MfsVolume(const MfsVolume&) = delete;
  MfsVolume& operator=(const MfsVolume&) = delete;

  // --- the paper's API (§6.2), object form ---------------------------

  // mail_open: opens a mailbox file; creates <name>.key/.dat if absent.
  // `mode` is accepted for API fidelity ("r", "w", "rw"); all handles
  // are read-write internally.
  util::Result<std::unique_ptr<MailFile>> MailOpen(const std::string& name,
                                                   const std::string& mode = "rw");

  // mail_seek: positions the handle at mail granularity.
  util::Error MailSeek(MailFile& mfd, std::int64_t offset, Whence whence);

  // mail_nwrite: writes one mail to `boxes` (1..n recipients). The
  // mail_id must be server-generated; a multi-recipient write whose id
  // already exists in the shared mailbox is rejected as a collision
  // attack (§6.4).
  util::Error MailNWrite(std::span<MailFile* const> boxes, std::string_view body,
                         const MailId& id);

  // mail_nwrite over a discontiguous body: `parts` concatenated in
  // order ARE the mail. The zero-copy DATA path hands its decoded
  // spans (still sitting in pooled receive buffers) straight here;
  // they reach the data file through one vectored write without ever
  // being flattened. Semantics otherwise identical to MailNWrite.
  util::Error MailNWriteParts(std::span<MailFile* const> boxes,
                              std::span<const std::string_view> parts,
                              const MailId& id);

  // mail_read: reads the mail at the seek pointer and advances it.
  // Returns OutOfRange at end of mailbox.
  util::Result<MailReadResult> MailRead(MailFile& mfd);

  // mail_delete: deletes the mail with `id` from this mailbox. Shared
  // mails decrement the shared refcount; the payload is reclaimed by
  // Compact once no mailbox references it.
  util::Error MailDelete(MailFile& mfd, const MailId& id);

  // mail_close: releases the handle (flushes nothing extra; data is
  // written through at nwrite time).
  void MailClose(std::unique_ptr<MailFile> mfd);

  // --- maintenance ----------------------------------------------------

  // Number of live mails visible in a mailbox.
  util::Result<std::size_t> MailCount(const std::string& name);

  // fsync everything (shared files, every open mailbox, and any
  // evicted mailbox with unsynced writes).
  util::Error SyncAll();

  // fsync only what changed since the last sync: the shared files if
  // dirty, plus each dirty mailbox — open or evicted — exactly once.
  // Returns the number of fsync(2) calls issued. This is the group-
  // commit flush primitive: N buffered deliveries cost ~2 fsyncs.
  // Files that fail to sync stay dirty for the next round.
  util::Result<int> SyncDirty();

  // Cross-checks key/data files and shared refcounts across ALL
  // mailboxes in the volume (including ones not currently open).
  util::Result<FsckReport> Fsck();

  // Rewrites the shared mailbox and all private mailboxes, dropping
  // tombstones and zero-ref shared records; patches redirect offsets.
  util::Result<CompactStats> Compact();

  // Crash-recovery scavenger. MailNWrite orders the shared commit so
  // the shared key record is written LAST; a crash at any earlier
  // point leaves only artifacts Recover can roll back unambiguously:
  //   - redirect with no live shared record  -> tombstone (torn nwrite;
  //     retrying the same id then succeeds),
  //   - duplicate redirect in one mailbox    -> tombstone the extra,
  //   - shared refcount != live redirects    -> repair to the actual
  //     count (torn delete), 0 -> reclaim the shared record,
  //   - data-file bytes no key record references are counted; Compact
  //     reclaims them.
  // Run after reopening a volume that may not have shut down cleanly.
  // Idempotent: a second run reports clean().
  util::Result<RecoverReport> Recover();

  const VolumeStats& stats() const { return stats_; }
  const std::string& root() const { return root_; }

 private:
  struct Box {
    KeyFile key;
    DataFile data;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  MfsVolume(std::string root, VolumeOptions opts)
      : root_(std::move(root)), opts_(opts) {}

  // Returns the cached Box, loading (and possibly evicting the LRU
  // entry) on a miss. The returned pointer is invalidated by the NEXT
  // LoadBox call — never hold it across one.
  util::Result<Box*> LoadBox(const std::string& name);
  std::string BoxKeyPath(const std::string& name) const;
  std::string BoxDataPath(const std::string& name) const;
  util::Result<std::vector<std::string>> ListMailboxes() const;
  void MarkDirty(const std::string& name);
  // fsyncs one mailbox through its cached fds or a fresh fd if it was
  // evicted; adds the syscall count to `fsyncs`.
  util::Error SyncBoxByName(const std::string& name, int& fsyncs);

  std::string root_;
  VolumeOptions opts_;
  Box shared_;
  std::unordered_map<std::string, std::unique_ptr<Box>> boxes_;
  std::list<std::string> lru_;  // front = most recently used
  // Shared-id index: id -> record index in shared_.key.
  std::unordered_map<MailId, std::size_t> shared_index_;
  // Mailboxes with writes not yet fsynced (may include evicted ones).
  std::unordered_set<std::string> dirty_boxes_;
  bool shared_dirty_ = false;
  VolumeStats stats_;
};

}  // namespace sams::mfs
