// GroupCommitter — the group-commit engine of the delivery fast path
// (DESIGN.md §8). sim_store.h has always *modelled* group commit ("one
// fsync per batch"); this is the real thing for the real-I/O stores.
//
// Protocol: a delivery finishes its writes (data first, commit record
// last — see MfsVolume::MailNWrite), then calls Commit() to enqueue a
// durability token and block. A flush round captures every pending
// token, fsyncs each dirty file ONCE via the store-provided SyncFn,
// and only then completes the captured tokens. N concurrent
// deliveries therefore cost ~2 fsyncs (key + data) instead of 2N,
// while every acked mail is still durable — exactly the batching the
// paper's §6 evaluation credits for mailbox-store throughput.
//
// Crash semantics: a crash before the flush loses only mails whose
// Commit() had not returned (never acked to the SMTP client, so the
// sender retries); Volume::Recover() rolls back any torn batch. A
// crash after the fsync but before tokens complete loses nothing —
// the mail is durable, merely unacked (at-least-once, deduplicated by
// mail id upstream).
//
// Two modes:
//   background=true  — a flush thread wakes on the first token, waits
//                      up to `window` for joiners (or `max_batch`),
//                      then flushes. Production mode.
//   background=false — no thread; Commit() runs the flush round inline
//                      (still batching with concurrent committers).
//                      Deterministic for tests; Flush() also forces a
//                      round explicitly.
//
// Fault points (sams::fault):
//   mfs.commit.enqueue     — fail a delivery before its token enqueues
//   mfs.commit.flush       — fail/crash a round before any fsync runs
//   mfs.commit.after_fsync — crash after durability, before acks
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/result.h"

namespace sams::mfs {

class GroupCommitter {
 public:
  // Syncs every file the store dirtied since the last call; returns
  // the number of fsync(2) calls issued. Called with no committer
  // lock held; the store is responsible for its own synchronisation
  // (typically its delivery mutex).
  using SyncFn = std::function<util::Result<int>()>;

  struct Options {
    bool background = true;
    std::chrono::microseconds window{500};  // wait for joiners
    std::size_t max_batch = 256;            // flush early at this size
  };

  struct Stats {
    std::uint64_t commits = 0;      // tokens enqueued
    std::uint64_t flushes = 0;      // flush rounds run
    std::uint64_t fsyncs = 0;       // fsync(2) calls issued by SyncFn
    std::uint64_t batch_max = 0;    // largest batch (tokens) seen
  };

  GroupCommitter(SyncFn sync_fn, Options opts);
  ~GroupCommitter();
  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  // Enqueues a durability token and blocks until a flush round that
  // captured it completes. Returns that round's result. (If a LATER
  // successful round completes first, OK is returned — sound, because
  // fsync covers the whole file regardless of which round issued it.)
  util::Error Commit();

  // Forces one flush round NOW (even with no tokens pending) and
  // returns its exact result. The deterministic-test entry point.
  util::Error Flush();

  Stats stats() const;

  // Registers sams_mfs_commit_batch_size (histogram) plus flush/fsync
  // counters. The registry must outlive this committer.
  void BindMetrics(obs::Registry& registry, obs::Labels labels = {});

 private:
  // Captures the pending batch and runs sync_fn_ with `lk` released.
  // Returns the round's result; on return the captured epoch is
  // completed and waiters notified.
  util::Error FlushRound(std::unique_lock<std::mutex>& lk);
  void ThreadMain();

  SyncFn sync_fn_;
  Options opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_flush_;  // wakes the flush thread
  std::condition_variable cv_done_;   // wakes committers
  std::uint64_t epoch_ = 0;            // batch being accumulated
  std::uint64_t completed_epoch_ = 0;  // all batches < this are flushed
  std::size_t pending_tokens_ = 0;     // tokens in batch `epoch_`
  bool flush_in_progress_ = false;
  bool stop_ = false;
  util::Error last_error_;  // result of the most recent round
  Stats stats_;
  obs::Histogram* batch_hist_ = nullptr;  // set by BindMetrics

  std::thread flusher_;  // only when opts_.background
};

}  // namespace sams::mfs
