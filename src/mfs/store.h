// Mailbox store backends — the four delivery layouts of §6.3:
//
//   MboxStore            "Postfix"  — one mbox file per mailbox; a
//                                     multi-recipient mail is appended
//                                     once per recipient (duplicated).
//   MaildirStore         "maildir"  — one file per mail per recipient
//                                     (tmp/ write + rename into new/).
//   HardlinkMaildirStore "hard-link"— one file per mail, hard-linked
//                                     into every recipient's maildir.
//   MfsStore             "MFS"      — the paper's contribution: single
//                                     copy in the shared mailbox.
//
// All four run on the real host file system behind a common interface,
// so unit tests and micro-benchmarks exercise genuine I/O paths; the
// throughput *figures* (10/11) use the cost-model twins in
// mfs/sim_store.h because the base file system there must be Ext3 or
// Reiser specifically.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mfs/mail_id.h"
#include "mfs/volume.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace sams::mfs {

struct StoreStats {
  std::uint64_t mails_delivered = 0;   // logical mails (one per nwrite)
  std::uint64_t mailbox_deliveries = 0;  // mail x recipient
  std::uint64_t bytes_written = 0;     // body bytes physically written
  std::uint64_t bytes_logical = 0;     // body bytes x recipients delivered
  std::uint64_t files_created = 0;
  std::uint64_t hard_links = 0;
  std::uint64_t fsyncs = 0;
};

class MailStore {
 public:
  virtual ~MailStore() = default;

  virtual std::string_view name() const = 0;

  // Delivers one mail (already assigned a server-side id) to one or
  // more recipient mailboxes.
  virtual util::Error Deliver(const MailId& id, std::string_view body,
                              std::span<const std::string> mailboxes) = 0;

  // Reads all mail bodies in a mailbox, in delivery order.
  virtual util::Result<std::vector<std::string>> ReadMailbox(
      const std::string& mailbox) = 0;

  // Forces everything to stable storage.
  virtual util::Error Sync() = 0;

  // Publishes this store's StoreStats as layout-labelled registry
  // counters, refreshed at collect time. The registry must outlive the
  // store; call once, after construction.
  void BindMetrics(obs::Registry& registry);

  const StoreStats& stats() const { return stats_; }

 protected:
  StoreStats stats_;
};

struct StoreOptions {
  bool fsync_each_mail = false;  // durability per delivery (postfix does)
};

// Factories. `root` is created if needed.
util::Result<std::unique_ptr<MailStore>> MakeMboxStore(const std::string& root,
                                                       StoreOptions opts = {});
util::Result<std::unique_ptr<MailStore>> MakeMaildirStore(const std::string& root,
                                                          StoreOptions opts = {});
util::Result<std::unique_ptr<MailStore>> MakeHardlinkMaildirStore(
    const std::string& root, StoreOptions opts = {});
util::Result<std::unique_ptr<MailStore>> MakeMfsStore(const std::string& root,
                                                      StoreOptions opts = {});

}  // namespace sams::mfs
