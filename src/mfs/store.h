// Mailbox store backends — the four delivery layouts of §6.3:
//
//   MboxStore            "Postfix"  — one mbox file per mailbox; a
//                                     multi-recipient mail is appended
//                                     once per recipient (duplicated).
//   MaildirStore         "maildir"  — one file per mail per recipient
//                                     (tmp/ write + rename into new/).
//   HardlinkMaildirStore "hard-link"— one file per mail, hard-linked
//                                     into every recipient's maildir.
//   MfsStore             "MFS"      — the paper's contribution: single
//                                     copy in the shared mailbox.
//
// All four run on the real host file system behind a common interface,
// so unit tests and micro-benchmarks exercise genuine I/O paths; the
// throughput *figures* (10/11) use the cost-model twins in
// mfs/sim_store.h because the base file system there must be Ext3 or
// Reiser specifically.
//
// Durability modes (StoreOptions):
//   fsync_each_mail — fsync inline per delivery (what Postfix does).
//   group_commit    — deliveries stage their writes and block on a
//                     shared GroupCommitter; each flush round fsyncs
//                     every dirty file ONCE, so N concurrent
//                     deliveries cost ~2 fsyncs instead of 2N at the
//                     same "durable before ack" guarantee (DESIGN.md
//                     §8).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "mfs/group_commit.h"
#include "mfs/mail_id.h"
#include "mfs/volume.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace sams::mfs {

struct StoreStats {
  std::uint64_t mails_delivered = 0;   // logical mails (one per nwrite)
  std::uint64_t mailbox_deliveries = 0;  // mail x recipient
  std::uint64_t bytes_written = 0;     // body bytes physically written
  std::uint64_t bytes_logical = 0;     // body bytes x recipients delivered
  std::uint64_t files_created = 0;
  std::uint64_t hard_links = 0;
  std::uint64_t fsyncs = 0;            // fsync(2) calls issued
};

struct StoreOptions {
  bool fsync_each_mail = false;  // durability per delivery (postfix does)
  bool group_commit = false;     // batch durability via GroupCommitter
  GroupCommitter::Options commit;  // used when group_commit is set
  VolumeOptions volume;            // MFS backend only
};

class MailStore {
 public:
  virtual ~MailStore() = default;

  virtual std::string_view name() const = 0;

  // Delivers one mail (already assigned a server-side id) to one or
  // more recipient mailboxes, at the configured durability: with
  // group_commit the call stages the writes and blocks until a flush
  // round covers them; with fsync_each_mail the backend syncs inline.
  // Thread-safe.
  util::Error Deliver(const MailId& id, std::string_view body,
                      std::span<const std::string> mailboxes);

  // Deliver over a discontiguous body: `parts` concatenated in order
  // are the mail. The zero-copy DATA path hands decoded spans (still
  // in pooled receive buffers) here; the MFS backend stages them into
  // one vectored data-file write, the file-per-mail backends flatten
  // first (their write shape is per-recipient anyway). Same durability
  // contract as Deliver.
  util::Error DeliverParts(const MailId& id,
                           std::span<const std::string_view> parts,
                           std::span<const std::string> mailboxes);

  // The stage-only half of Deliver for batched callers (the queue
  // manager's delivery stage): writes the mail but skips the group-
  // commit wait. Call Commit() once per batch to make it durable.
  // Without group_commit this is identical to Deliver.
  util::Error StageDelivery(const MailId& id, std::string_view body,
                            std::span<const std::string> mailboxes);

  // Durability barrier for staged deliveries: joins one group-commit
  // flush round (or Sync() when group_commit is off).
  util::Error Commit();

  // Reads all mail bodies in a mailbox, in delivery order.
  virtual util::Result<std::vector<std::string>> ReadMailbox(
      const std::string& mailbox) = 0;

  // Forces everything to stable storage.
  virtual util::Error Sync() = 0;

  // Cheap readiness probe for /healthz (DESIGN.md §11): verifies the
  // backing volume/root directory still exists and is writable. Does
  // NOT touch mailbox data and issues no I/O beyond access(2).
  virtual util::Error HealthCheck() { return util::OkError(); }

  // Publishes this store's StoreStats as layout-labelled registry
  // counters, refreshed at collect time, plus the group-commit batch
  // histogram and backend extras (MFS fd-cache counters). The registry
  // must outlive the store; call once, after construction.
  void BindMetrics(obs::Registry& registry);

  const StoreStats& stats() const { return stats_; }
  // Null unless group_commit is on.
  const GroupCommitter* committer() const { return committer_.get(); }

 protected:
  explicit MailStore(StoreOptions opts);

  // Backend write path: everything Deliver does except durability.
  // Called with deliver_mutex_ held. A backend in group-commit mode
  // records what it dirtied for the next SyncDirty.
  virtual util::Error DoDeliver(const MailId& id, std::string_view body,
                                std::span<const std::string> mailboxes) = 0;

  // Parts variant of DoDeliver; the default flattens the parts and
  // calls DoDeliver. Backends whose write path can take iovecs (MFS)
  // override it to skip the flatten.
  virtual util::Error DoDeliverParts(const MailId& id,
                                     std::span<const std::string_view> parts,
                                     std::span<const std::string> mailboxes);

  // fsyncs every file dirtied since the last call, once each; returns
  // the fsync(2) count. Called with deliver_mutex_ held (the group-
  // commit SyncFn takes it). Failed files stay dirty.
  virtual util::Result<int> SyncDirty() = 0;

  // Extra per-backend metrics (MFS: fd cache + volume counters).
  virtual void BindBackendMetrics(obs::Registry& registry,
                                  const obs::Labels& layout);

  // Derived destructors MUST call this first: it joins the flush
  // thread while the backend (and its SyncDirty) still exists.
  void StopCommitter() { committer_.reset(); }

  std::mutex deliver_mutex_;
  StoreOptions opts_;
  StoreStats stats_;
  std::unique_ptr<GroupCommitter> committer_;
};

// Factories. `root` is created if needed.
util::Result<std::unique_ptr<MailStore>> MakeMboxStore(const std::string& root,
                                                       StoreOptions opts = {});
util::Result<std::unique_ptr<MailStore>> MakeMaildirStore(const std::string& root,
                                                          StoreOptions opts = {});
util::Result<std::unique_ptr<MailStore>> MakeHardlinkMaildirStore(
    const std::string& root, StoreOptions opts = {});
util::Result<std::unique_ptr<MailStore>> MakeMfsStore(const std::string& root,
                                                      StoreOptions opts = {});

}  // namespace sams::mfs
